/**
 * @file
 * campaign_ctl: orchestrate a manifest of sharded campaigns.
 *
 * Reads a JSON manifest naming campaigns (bench binary + args +
 * shard count each), dispatches every shard as a subprocess over a
 * bounded worker pool, respawns dead workers from their journal
 * checkpoints, speculatively re-issues stragglers once the queue
 * drains, merges each campaign's shard journals and renders its
 * final JSON report — which is byte-identical to what a serial
 * `program args --json=...` run would have written.
 *
 *   campaign_ctl MANIFEST [--workers N] [--out DIR] [--fresh]
 *                [--max-respawns N] [--max-reissues N]
 *                [--inject-kill NAME/SHARD] [--quiet]
 *
 * Exit status: the number of failed campaigns (0 = all good, 2 on
 * usage or manifest errors), so the tool drops straight into CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <sys/stat.h>

#include "common/table.hh"
#include "harness/campaign_ctl.hh"

using namespace pth;

int
main(int argc, char **argv)
{
    const char *usage =
        "usage: campaign_ctl MANIFEST [--workers N] [--out DIR]\n"
        "                    [--fresh] [--max-respawns N]\n"
        "                    [--max-reissues N]\n"
        "                    [--inject-kill NAME/SHARD] [--quiet]\n"
        "  MANIFEST        JSON manifest: {\"campaigns\": [{\"name\","
        " \"program\", \"args\", \"shards\", ...}]}\n"
        "  --workers N     worker pool width (default 2; 0 = one per"
        " core)\n"
        "  --out DIR       directory for derived journals/reports"
        " (default .)\n"
        "  --fresh         discard existing journals; rerun"
        " everything\n"
        "  --max-respawns N  extra attempts for a dead worker"
        " (default 2)\n"
        "  --max-reissues N  speculative backups per straggling shard"
        " once the queue drains (default 1; 0 disables)\n"
        "  --inject-kill NAME/SHARD  SIGKILL that shard's first"
        " attempt right after spawn (fault-injection hook;"
        " repeatable)\n"
        "  --quiet         suppress the dispatch log\n";

    std::string manifestPath;
    CampaignCtlOptions options;
    options.log = &std::cout;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (!std::strncmp(arg, flag, n) && arg[n] == '=')
                return arg + n + 1;
            if (!std::strcmp(arg, flag) && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            std::fputs(usage, stdout);
            return 0;
        } else if (!std::strcmp(arg, "--fresh")) {
            options.fresh = true;
        } else if (!std::strcmp(arg, "--quiet")) {
            options.log = nullptr;
        } else if (const char *workersArg = value("--workers")) {
            options.workers = static_cast<unsigned>(
                std::strtoul(workersArg, nullptr, 10));
        } else if (const char *outArg = value("--out")) {
            options.outDir = outArg;
        } else if (const char *respawnsArg = value("--max-respawns")) {
            options.maxRespawns = static_cast<unsigned>(
                std::strtoul(respawnsArg, nullptr, 10));
        } else if (const char *reissuesArg = value("--max-reissues")) {
            options.maxReissues = static_cast<unsigned>(
                std::strtoul(reissuesArg, nullptr, 10));
        } else if (const char *v = value("--inject-kill")) {
            const char *slash = std::strrchr(v, '/');
            char excess = 0;
            unsigned shard = 0;
            if (!slash || slash == v ||
                std::sscanf(slash + 1, "%u%c", &shard, &excess) !=
                    1) {
                std::fprintf(stderr,
                             "bad --inject-kill '%s' (use"
                             " NAME/SHARD)\n",
                             v);
                return 2;
            }
            options.injectKills.emplace_back(
                std::string(v, slash - v), shard);
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown argument '%s'\n%s", arg,
                         usage);
            return 2;
        } else if (manifestPath.empty()) {
            manifestPath = arg;
        } else {
            std::fprintf(stderr, "extra argument '%s'\n%s", arg,
                         usage);
            return 2;
        }
    }
    if (manifestPath.empty()) {
        std::fputs(usage, stderr);
        return 2;
    }

    Manifest manifest;
    std::string error;
    if (!Manifest::load(manifestPath, manifest, error)) {
        std::fprintf(stderr, "campaign_ctl: %s\n", error.c_str());
        return 2;
    }
    for (const auto &inject : options.injectKills) {
        bool known = false;
        for (const ManifestCampaign &campaign : manifest.campaigns)
            known |= campaign.name == inject.first &&
                     inject.second < campaign.shards;
        if (!known) {
            std::fprintf(stderr,
                         "campaign_ctl: --inject-kill %s/%u names no"
                         " shard of the manifest\n",
                         inject.first.c_str(), inject.second);
            return 2;
        }
    }

    // Best-effort: derived artifact paths live under --out.
    ::mkdir(options.outDir.c_str(), 0755);

    CampaignCtl ctl(std::move(manifest), std::move(options));
    const unsigned failures = ctl.run();

    Table table({"Campaign", "Status", "Spawns", "Reissues", "Runs",
                 "Report"});
    for (const CampaignOutcome &outcome : ctl.outcomes()) {
        // Keep the table rectangular: full multi-line errors (log
        // tails) go to stderr below, the cell gets the first line.
        std::string cell =
            outcome.ok ? outcome.report : outcome.error;
        const std::size_t eol = cell.find('\n');
        if (eol != std::string::npos)
            cell.resize(eol);
        table.addRow({outcome.name, outcome.ok ? "ok" : "FAILED",
                      strfmt("%u", outcome.spawns),
                      strfmt("%u", outcome.reissues),
                      strfmt("%zu", outcome.mergeStats.entries),
                      cell});
    }
    table.print();

    if (failures) {
        for (const CampaignOutcome &outcome : ctl.outcomes())
            if (!outcome.ok)
                std::fprintf(stderr, "campaign %s failed: %s\n",
                             outcome.name.c_str(),
                             outcome.error.c_str());
        std::fprintf(stderr, "campaign_ctl: %u of %zu campaign(s)"
                             " failed\n",
                     failures, ctl.outcomes().size());
    }
    return failures > 255 ? 255 : static_cast<int>(failures);
}
