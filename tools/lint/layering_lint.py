#!/usr/bin/env python3
"""Layering lint: enforce the subsystem include DAG.

src/ is layered — every subsystem may include only subsystems strictly
below it (the order lives in layering_lint.json):

  common → mem → dram → cache → tlb → paging → mmu → kernel → cpu
         → attack → harness

and tools/, bench/, tests/, examples/ sit on top and may include
anything. An include that points *upward* (or sideways into a layer
above, which is what makes subsystem cycles) couples the simulator's
layers into a ball: harness types leaking into attack code, kernel
code reaching into the whole machine. clang-tidy's
misc-header-include-cycle catches header-level cycles; this lint
catches the architectural direction compiler-free, on every CI run,
before a cycle even forms.

Mechanics: every quoted `#include "sub/header.hh"` in a scanned file
is resolved to its target subsystem (first path component) and
checked against the including file's subsystem rank. Upward includes
fail unless allowlisted in the config with a non-empty reason; stale
allowlist entries (the include no longer exists) fail too. A source
subdirectory missing from the configured order is an error — adding
a subsystem means placing it in the DAG, deliberately.

Usage: layering_lint.py [--root ROOT] [--config CONFIG]
Exit 0 clean, 1 findings, 2 config error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SUFFIXES = {".cc", ".cpp", ".hh", ".hpp"}
INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root",
                    default=str(Path(__file__).resolve().parents[2]))
    ap.add_argument("--config",
                    default=str(Path(__file__).parent /
                                "layering_lint.json"))
    args = ap.parse_args()
    root = Path(args.root)
    try:
        config = json.loads(Path(args.config).read_text())
        layers = config["layers"]
        src_dir = config.get("src", "src")
        top_dirs = config.get("top", [])
        allow = config.get("allow", [])
    except (OSError, ValueError, KeyError) as exc:
        print(f"layering_lint: bad config: {exc}", file=sys.stderr)
        return 2

    rank = {}
    for i, layer in enumerate(layers):
        for sub in (layer if isinstance(layer, list) else [layer]):
            if sub in rank:
                print(f"layering_lint: bad config: subsystem '{sub}' "
                      f"listed twice", file=sys.stderr)
                return 2
            rank[sub] = i

    errors: list = []
    allow_index = {}
    for entry in allow:
        key = (entry.get("from", ""), entry.get("to", ""))
        if not str(entry.get("reason", "")).strip():
            errors.append(
                f"allowlist entry {entry.get('from')!r} -> "
                f"{entry.get('to')!r} has an empty reason")
        allow_index[key] = False  # -> True once consumed

    base = root / src_dir
    if not base.is_dir():
        print(f"layering_lint: no {src_dir}/ under {root}",
              file=sys.stderr)
        return 2

    # Every subsystem directory must have a place in the DAG.
    for child in sorted(base.iterdir()):
        if child.is_dir() and child.name not in rank:
            errors.append(
                f"{src_dir}/{child.name}/ is not in the configured "
                f"layer order — place the subsystem in "
                f"layering_lint.json deliberately")

    files = 0
    includes = 0
    for path in sorted(base.rglob("*")):
        if path.suffix not in SUFFIXES:
            continue
        files += 1
        rel = path.relative_to(root).as_posix()
        sub = path.relative_to(base).parts[0]
        src_rank = rank.get(sub)
        if src_rank is None:
            continue  # already reported above
        for m in INCLUDE.finditer(path.read_text()):
            inc = m.group(1)
            target = inc.split("/")[0]
            if target not in rank:
                errors.append(
                    f"{rel}: includes \"{inc}\" — target subsystem "
                    f"'{target}' is not in the configured layer order")
                continue
            includes += 1
            if rank[target] <= src_rank:
                continue  # downward or same-subsystem: fine
            key = (rel, inc)
            if key in allow_index:
                allow_index[key] = True
                continue
            lineno = path.read_text()[:m.start()].count("\n") + 1
            errors.append(
                f"{rel}:{lineno}: upward include \"{inc}\" — "
                f"'{sub}' (layer {src_rank}) must not include "
                f"'{target}' (layer {rank[target]}). Move the shared "
                f"code down (like ThreadPool moved to common/), "
                f"invert the dependency, or allowlist with a reason.")

    # Top-level dirs may include anything from src/, but their quoted
    # includes must still resolve to known subsystems (or their own
    # tree) — a typo'd include path shows up here.
    for d in top_dirs:
        tbase = root / d
        if not tbase.is_dir():
            continue
        for path in sorted(tbase.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            files += 1

    for (src, inc), used in sorted(allow_index.items()):
        if not used:
            errors.append(
                f"allowlist entry {src!r} -> {inc!r} went unused — "
                f"the include is gone; remove the stale entry")

    if errors:
        print(f"layering_lint: {len(errors)} finding(s):")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(f"layering_lint: OK ({includes} cross-checked includes in "
          f"{files} files, {len(rank)} subsystems)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
