#!/usr/bin/env python3
"""Spec-key coverage audit for the campaign journal.

The JSONL journal resumes a campaign by matching each run's
content-addressed spec key. Two failure modes threaten that contract:

  * a RunSpec / AttackConfig field that specKey() forgets — two
    different runs collide on one key and resume silently serves the
    wrong result;
  * a CampaignOptions execution axis that leaks INTO the key — the
    same logical run stops resuming when the user changes thread
    count, sharding or journal path, even though reports are
    byte-identical across those axes.

This audit extracts the fields of RunSpec, AttackConfig (and its
nested PoolBuildOptions) and CampaignOptions and checks them against
the specKey() implementation: spec-side fields must be referenced (or
allowlisted with a reason), execution-side fields must NOT be.

Usage: speckey_audit.py [--config CONFIG] [--root ROOT]
Exit 0 clean, 1 findings, 2 config/parse error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import cpp_model  # noqa: E402
from state_audit import function_text  # noqa: E402


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--config",
                    default=str(Path(__file__).parent /
                                "speckey_audit.json"))
    ap.add_argument("--root",
                    default=str(Path(__file__).resolve().parents[2]))
    args = ap.parse_args()

    root = Path(args.root)
    try:
        config = json.loads(Path(args.config).read_text())
    except (OSError, ValueError) as exc:
        print(f"speckey_audit: bad config: {exc}", file=sys.stderr)
        return 2

    key_conf = config["key_function"]
    try:
        key_text = function_text((root / key_conf["file"]).read_text(),
                                 key_conf["anchor"],
                                 key_conf.get("after"))
    except (OSError, ValueError) as exc:
        print(f"speckey_audit: {exc}", file=sys.stderr)
        return 2

    errors = []

    def check_struct(spec: dict, must_reference: bool) -> None:
        path = root / spec["header"]
        try:
            model = cpp_model.extract_members(path.read_text(),
                                              spec["name"])
        except (OSError, ValueError) as exc:
            errors.append(f"{spec['name']}: cannot extract members: {exc}")
            return
        allow = spec.get("allow", {})
        for member in model.members:
            referenced = re.search(
                r"\b" + re.escape(member.name) + r"\b", key_text)
            if member.name in allow:
                if not str(allow[member.name]).strip():
                    errors.append(f"{spec['name']}.{member.name}: "
                                  f"allowlist entry has an empty reason")
                continue
            if must_reference and not referenced:
                errors.append(
                    f"{spec['name']}.{member.name} "
                    f"({spec['header']}:{member.line}) is not folded "
                    f"into specKey — journal entries for runs differing "
                    f"only in this field would collide. Key it, or "
                    f"allowlist it with a reason.")
            if not must_reference and referenced:
                errors.append(
                    f"{spec['name']}.{member.name} "
                    f"({spec['header']}:{member.line}) is an execution "
                    f"axis but appears in specKey — the same logical "
                    f"run would stop resuming across {member.name} "
                    f"changes. Remove it, or allowlist it with a "
                    f"reason.")
        for name in allow:
            if name not in {m.name for m in model.members}:
                errors.append(f"{spec['name']}: allowlist names unknown "
                              f"member '{name}' — remove the stale entry")

    for spec in config["keyed_structs"]:
        check_struct(spec, must_reference=True)
    for spec in config["execution_structs"]:
        check_struct(spec, must_reference=False)

    if errors:
        print(f"speckey_audit: {len(errors)} finding(s):")
        for err in errors:
            print(f"  - {err}")
        return 1
    total = len(config["keyed_structs"]) + len(config["execution_structs"])
    print(f"speckey_audit: OK ({total} structs audited)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
