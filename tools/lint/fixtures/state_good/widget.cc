#include "widget.hh"

Widget::Widget(const Widget &other)
    : slots(other.slots), cursor(other.cursor), label(other.label)
{
}

std::uint64_t
Widget::stateHash() const
{
    std::uint64_t h = cursor;
    for (std::uint64_t slot : slots)
        h = h * 31 + slot;
    return h;
}
