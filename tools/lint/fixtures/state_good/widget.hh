// Clean fixture: every member is referenced by both aspects or
// carries an allowlist entry with a reason (scratch is a transient
// buffer rebuilt on demand, label is display-only).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

class Widget {
public:
    Widget() = default;
    Widget(const Widget &other);
    std::uint64_t stateHash() const;

private:
    std::vector<std::uint64_t> slots;
    std::uint64_t cursor = 0;
    std::vector<std::uint64_t> scratch;
    std::string label;
};
