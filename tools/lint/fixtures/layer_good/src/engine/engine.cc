// Sanctioned patterns for layering_lint.py (never compiled): the
// downward include is always fine, and the one upward include carries
// a reasoned allowlist entry in the fixture config.
#include "core/core.hh"
#include "ui/ui.hh"

void tick()
{
    drawEverything();
}
