// Top layer of the layering_lint fixture tree (never compiled).
#ifndef LAYER_GOOD_UI_HH
#define LAYER_GOOD_UI_HH
void drawEverything();
#endif
