// Top layer of the layering_lint fixture tree (never compiled).
#ifndef LAYER_BAD_UI_HH
#define LAYER_BAD_UI_HH
void drawEverything();
#endif
