// A subsystem directory absent from the configured layer order —
// layering_lint must demand it be placed in the DAG (never compiled).
#ifndef LAYER_BAD_ROGUE_HH
#define LAYER_BAD_ROGUE_HH
void sneak();
#endif
