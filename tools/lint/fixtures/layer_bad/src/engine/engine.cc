// Seeded violations for layering_lint.py (never compiled):
//   * the include of "ui/ui.hh" points upward — engine sits below ui
//     in the fixture's layer order and has no allowlist entry;
//   * src/rogue/ is a subsystem directory missing from the layer
//     order entirely;
//   * the fixture config allowlists an include in core.hh that does
//     not exist — the stale entry must fail too.
#include "core/core.hh"
#include "ui/ui.hh"

void tick()
{
    drawEverything();
}
