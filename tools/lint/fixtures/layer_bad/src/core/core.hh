// Bottom layer of the layering_lint fixture tree (never compiled).
#ifndef LAYER_BAD_CORE_HH
#define LAYER_BAD_CORE_HH
int coreValue();
#endif
