// Seeded violations: RunSpecF.hammerReps is never folded into the
// key (collision), and ExecOptsF.threads leaks INTO the key (the same
// run would stop resuming when the thread count changes).
#pragma once

#include <cstdint>
#include <string>

struct RunSpecF {
    std::string machine;
    std::uint64_t seed = 0;
    std::uint64_t hammerReps = 0;
};

struct ExecOptsF {
    int threads = 1;
    std::string journalPath;
};
