// Seeded violations for lock_audit.py (never compiled):
//   * mtx_ is a raw std::mutex — invisible to the thread-safety
//     analysis; the audit demands the annotated pth::Mutex wrapper;
//   * lines_ shares the class with a mutex but carries no
//     PTH_GUARDED_BY annotation, is not atomic and not const;
//   * the fixture config allowlists 'BadStore.gone_', a member that
//     does not exist — the stale entry must fail too.
#ifndef LOCK_BAD_STORE_HH
#define LOCK_BAD_STORE_HH

#include <mutex>
#include <string>
#include <vector>

class BadStore
{
  public:
    void put(const std::string &line);
    std::size_t size() const;

  private:
    std::mutex mtx_;
    std::vector<std::string> lines_;
};

#endif // LOCK_BAD_STORE_HH
