// Seeded violations for determinism_lint: one per rule.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <random>
#include <unordered_map>

std::unordered_map<int, int> table;

int
sumTable()
{
    int total = 0;
    for (const auto &item : table)
        total += item.second;
    return total;
}

int
noise()
{
    std::random_device rd;
    return rand() + static_cast<int>(rd());
}

void
stamp()
{
    std::time_t now = time(nullptr);
    std::printf("%s %p\n", ctime(&now), static_cast<void *>(&table));
    std::cout << static_cast<const void *>(&table) << "\n";
}
