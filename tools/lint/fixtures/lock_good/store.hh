// Sanctioned patterns for lock_audit.py (never compiled): the
// annotated pth-style wrappers own the synchronization, every mutable
// sibling is PTH_GUARDED_BY-annotated, atomic, const, or carries a
// reasoned allowlist entry in the fixture config.
#ifndef LOCK_GOOD_STORE_HH
#define LOCK_GOOD_STORE_HH

#include <atomic>
#include <string>
#include <vector>

class GoodStore
{
  public:
    void put(const std::string &line);
    void wake();

  private:
    const std::string path_;
    Mutex mtx_;
    CondVar cv_;
    std::vector<std::string> lines_ PTH_GUARDED_BY(mtx_);
    std::atomic<unsigned> hits_{0};
    std::vector<int> scratch_;
};

#endif // LOCK_GOOD_STORE_HH
