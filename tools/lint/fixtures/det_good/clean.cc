// Clean fixture: the unordered iteration is annotated (commutative
// fold), and words about rand or time inside comments/strings must
// not trip the lint.
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> table;

std::uint64_t
foldTable()
{
    std::uint64_t total = 0;
    // determinism: commutative fold — iteration order of the
    // unordered map cannot affect the sum.
    for (const auto &item : table)
        total += item.first ^ item.second;
    const char *doc = "rand() and time() are banned outside strings";
    return total + doc[0];
}
