#include "spec.hh"

#include <cstdint>

std::uint64_t
specKeyF(const RunSpecF &spec)
{
    std::uint64_t h = spec.seed;
    for (char c : spec.machine)
        h = h * 131 + static_cast<unsigned char>(c);
    h = h * 131 + spec.hammerReps;
    return h;
}
