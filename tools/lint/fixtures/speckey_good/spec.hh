// Clean fixture: every spec field is keyed (or allowlisted with a
// reason) and no execution axis appears in the key.
#pragma once

#include <cstdint>
#include <string>

struct RunSpecF {
    std::string machine;
    std::uint64_t seed = 0;
    std::uint64_t hammerReps = 0;
    std::string note;
};

struct ExecOptsF {
    int threads = 1;
    std::string journalPath;
};
