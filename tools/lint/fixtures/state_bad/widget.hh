// Seeded violation: `gauge` is mutated at runtime but missing from
// both the copy constructor and stateHash(). The audit must flag it
// for both aspects. `label` is allowlisted for hash only, so its
// missing copy reference must be flagged too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

class Widget {
public:
    Widget() = default;
    Widget(const Widget &other);
    std::uint64_t stateHash() const;

private:
    std::vector<std::uint64_t> slots;
    std::uint64_t cursor = 0;
    std::uint64_t gauge = 0;
    std::string label;
};
