#!/usr/bin/env python3
"""Determinism lint: sources of run-to-run divergence.

The repo's core contract is byte-identical reports for identical specs
across serial, threaded, sharded and forked execution. This lint flags
the classic ways C++ code silently breaks that:

  * iteration over std::unordered_{map,set,...} — bucket order is
    implementation- and run-dependent (it depends on the pointer
    values and insertion history), so any loop whose effect is
    order-sensitive (building a report row, folding a non-commutative
    hash, picking "the first" element) diverges between runs. Every
    such loop must either be rewritten over an ordered container or
    carry a `// determinism: <why order cannot matter>` annotation;
  * rand()/srand()/std::random_device — unseeded or global-state
    randomness (the seeded pth::Rng is the only sanctioned source);
  * time()/localtime()/gmtime()/clock() feeding values into results —
    wall-clock state makes reports differ between runs;
  * formatting pointer values (%p, streaming a void*) — ASLR makes
    pointer text differ between runs.

Annotations: the flagged line, or one of the 3 lines above it, must
contain `determinism:` followed by a non-empty justification.

Usage: determinism_lint.py [--root ROOT] [--config CONFIG]
Exit 0 clean, 1 findings, 2 config error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import cpp_model  # noqa: E402

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
DECL_NAME = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<(?:[^<>]|<(?:[^<>]|"
    r"<[^<>]*>)*>)*>\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]")
RANGE_FOR = re.compile(
    r"\bfor\s*\(\s*[^;()]*?:\s*([A-Za-z_][\w.\->\[\]]*)\s*\)")
ANNOTATION = re.compile(r"determinism:\s*\S")

# (pattern, needs_strings, message): rules marked needs_strings run
# against a comment-stripped line with string literals kept, because
# the pattern only ever occurs inside format strings.
CALL_RULES = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), False,
     "rand()/srand(): unseeded global-state randomness; use the "
     "seeded pth::Rng"),
    (re.compile(r"\brandom_device\b"), False,
     "std::random_device: nondeterministic entropy source; use the "
     "seeded pth::Rng"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|0|nullptr)?\s*\)"), False,
     "time(): wall clock feeding simulation or report state"),
    (re.compile(r"\b(?:localtime|gmtime|ctime|asctime)\s*\("), False,
     "calendar time: wall clock feeding simulation or report state"),
    (re.compile(r"%p[^\w%]"), True,
     "%p formats a pointer value; ASLR makes it differ between runs"),
    (re.compile(r"<<\s*(?:static_cast<\s*(?:const\s+)?void\s*\*\s*>|"
                r"\(\s*(?:const\s+)?void\s*\*\s*\))"), False,
     "streaming a pointer value; ASLR makes it differ between runs"),
]

SUFFIXES = {".cc", ".cpp", ".hh", ".hpp"}


def last_component(expr: str) -> str:
    """`other.processes` -> processes; `bankActs[bank]` -> bankActs."""
    expr = re.sub(r"\[[^\]]*\]", "", expr)
    for sep in (".", "->"):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip()


def strip_comments_keep_strings(text: str) -> str:
    """Blank out // and /* */ comments only, leaving string literals
    intact, so rules matching inside format strings (%p) still see
    them while commentary about them stays exempt."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                out.append(text[i])
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i + 1])
                    i += 1
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def annotated(lines: list, idx: int) -> bool:
    for back in range(0, 4):
        if idx - back < 0:
            break
        if ANNOTATION.search(lines[idx - back]):
            return True
    return False


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root",
                    default=str(Path(__file__).resolve().parents[2]))
    ap.add_argument("--config",
                    default=str(Path(__file__).parent /
                                "determinism_lint.json"))
    args = ap.parse_args()
    root = Path(args.root)
    try:
        config = json.loads(Path(args.config).read_text())
    except (OSError, ValueError) as exc:
        print(f"determinism_lint: bad config: {exc}", file=sys.stderr)
        return 2

    scan_dirs = config.get("scan", ["src", "tools", "bench"])
    exclude = [root / e for e in config.get("exclude", [])]

    files = []
    for d in scan_dirs:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            if any(ex in path.parents or ex == path for ex in exclude):
                continue
            files.append(path)

    # Pass 1: every identifier declared anywhere as an unordered
    # container (locals, members, parameters). Name-level matching is
    # deliberately conservative: a same-named ordered container in
    # another file still needs an annotation, which is cheap and keeps
    # the lint single-pass.
    unordered_names = set()
    texts = {}
    for path in files:
        raw = path.read_text()
        texts[path] = raw
        stripped = cpp_model.strip_comments(raw)
        for m in DECL_NAME.finditer(stripped):
            unordered_names.add(m.group(1))

    errors = []
    for path in files:
        raw = texts[path]
        stripped = cpp_model.strip_comments(raw)
        with_strings = strip_comments_keep_strings(raw)
        raw_lines = raw.splitlines()
        for lineno, (stripped_line, strings_line) in enumerate(
                zip(stripped.splitlines(), with_strings.splitlines()),
                start=1):
            rel = path.relative_to(root)
            for m in RANGE_FOR.finditer(stripped_line):
                name = last_component(m.group(1))
                if name not in unordered_names:
                    continue
                if annotated(raw_lines, lineno - 1):
                    continue
                errors.append(
                    f"{rel}:{lineno}: iteration over unordered "
                    f"container '{name}' — bucket order differs "
                    f"between runs. Use an ordered container, sort "
                    f"first, or annotate the loop with "
                    f"'// determinism: <why order cannot matter>'.")
            for pattern, needs_strings, why in CALL_RULES:
                haystack = strings_line if needs_strings else stripped_line
                if pattern.search(haystack) and \
                        not annotated(raw_lines, lineno - 1):
                    errors.append(f"{rel}:{lineno}: {why}")

    if errors:
        print(f"determinism_lint: {len(errors)} finding(s):")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(f"determinism_lint: OK ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
