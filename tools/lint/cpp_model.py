"""Just-enough C++ header parsing for the custom lints.

This is not a compiler front end. It strips comments and string
literals, walks brace nesting, and extracts the data members of a named
class or struct — which is exactly what the state-audit lint needs and
nothing more. Anything it cannot classify it reports as a parse error
rather than silently skipping, so the audit fails loudly when the code
outgrows the parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class Member:
    """One data member of an audited class."""

    name: str
    line: int  # 1-based line in the original file
    text: str  # normalized declaration text


@dataclass
class ClassModel:
    name: str
    members: list = field(default_factory=list)
    nested: list = field(default_factory=list)  # nested class/struct names


def strip_comments(text: str) -> str:
    """Replace comments and string/char literals with spaces.

    Newlines are preserved so line numbers survive, which the lints use
    for reporting.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def find_class_body(text: str, name: str):
    """Return (start, end, open_line) spanning the body of class `name`.

    `text` must already be comment-stripped. The span excludes the
    braces themselves. Raises ValueError when the class is missing.
    """
    pattern = re.compile(r"\b(?:class|struct)\s+" + re.escape(name) +
                         r"\b([^;{]*)\{")
    m = pattern.search(text)
    if not m:
        raise ValueError(f"class {name} not found")
    start = m.end()
    depth = 1
    i = start
    while i < len(text) and depth:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    if depth:
        raise ValueError(f"class {name}: unbalanced braces")
    open_line = text.count("\n", 0, start) + 1
    return start, i - 1, open_line


_SKIP_PREFIXES = (
    "public", "private", "protected", "using", "typedef", "friend",
    "template", "static_assert", "enum",
)

_NAME_RE = re.compile(r"[A-Za-z_]\w*")


def _declarator_names(stmt: str):
    """Names declared by a member statement (already known non-function).

    Handles `T a;`, `T a = x;`, `T a{x};`, `T a, b;`, `T a[2];`.
    """
    # Cut initializers: everything from the first top-level '=' or '{'.
    depth = 0
    cut = len(stmt)
    for i, c in enumerate(stmt):
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif depth == 0 and c in "={":
            cut = i
            break
    head = stmt[:cut].rstrip()
    # Multiple declarators: split on top-level commas, name is the last
    # identifier of each piece (ignoring array suffixes).
    names = []
    depth = 0
    piece = []
    pieces = []
    for c in head:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            pieces.append("".join(piece))
            piece = []
        else:
            piece.append(c)
    pieces.append("".join(piece))
    for idx, piece_text in enumerate(pieces):
        if idx > 0:
            # `T a, b` — the continuation piece is just the name.
            ids = _NAME_RE.findall(piece_text)
        else:
            ids = _NAME_RE.findall(re.sub(r"\[.*\]", "", piece_text))
        if ids:
            names.append(ids[-1])
    return names


def extract_members(text: str, name: str) -> ClassModel:
    """Extract the data members of class `name` from header text.

    Function declarations/definitions, nested types, using aliases and
    static members are skipped; everything else declared at class scope
    is a data member.
    """
    stripped = strip_comments(text)
    start, end, line0 = find_class_body(stripped, name)
    body = stripped[start:end]
    model = ClassModel(name=name)

    i = 0
    n = len(body)
    stmt_start = 0
    depth = 0
    while i < n:
        c = body[i]
        if c == "{":
            # A brace at class scope: function body, nested type body,
            # or a braced initializer. Skip to the matching brace.
            depth = 1
            j = i + 1
            while j < n and depth:
                if body[j] == "{":
                    depth += 1
                elif body[j] == "}":
                    depth -= 1
                j += 1
            prefix = body[stmt_start:i]
            nested = re.search(r"\b(?:class|struct|enum|union)\b[^=(]*$",
                               prefix)
            if nested:
                ids = _NAME_RE.findall(prefix.split("class")[-1]
                                       .split("struct")[-1])
                if ids:
                    model.nested.append(ids[0])
                # `struct S { ... } member;` declares a member too:
                # fall through with the prefix reset so the tail of the
                # statement (up to ';') is parsed as a declarator.
                tail_start = j
                k = tail_start
                while k < n and body[k] not in ";":
                    k += 1
                tail = body[tail_start:k].strip()
                if tail:
                    for member in _declarator_names("X " + tail):
                        model.members.append(Member(
                            member,
                            line0 + body.count("\n", 0, tail_start),
                            tail))
                i = k + 1
                stmt_start = i
                continue
            if "(" in prefix:
                # Function definition: skip body and optional trailing
                # tokens up to ';' or the next statement.
                i = j
                stmt_start = i
                continue
            # Braced initializer of a member: scan on to the ';'.
            i = j
            continue
        if c == ";":
            stmt = body[stmt_start:i].strip()
            stmt_line = line0 + body.count("\n", 0, stmt_start)
            # Leading newlines belong to the previous statement.
            lead = body[stmt_start:i]
            stmt_line += len(lead) - len(lead.lstrip("\n")) \
                if lead.startswith("\n") else 0
            i += 1
            stmt_start = i
            if not stmt:
                continue
            first = _NAME_RE.match(stmt.lstrip())
            if first and first.group(0) in _SKIP_PREFIXES:
                continue
            if ":" in stmt.split("<")[0] and stmt.rstrip().endswith(":"):
                continue  # access specifier
            if re.match(r"^(public|private|protected)\s*:", stmt):
                continue
            if stmt.startswith("static"):
                continue
            # A parenthesis at angle-bracket depth 0 marks a function
            # declaration; parens inside template arguments do not
            # (std::function<bool(PhysFrame)> pred; is a member).
            angle = 0
            is_function = False
            for ch in stmt:
                if ch == "<":
                    angle += 1
                elif ch == ">":
                    angle = max(0, angle - 1)
                elif ch == "(" and angle == 0:
                    is_function = True
                    break
            if is_function:
                continue
            for member in _declarator_names(stmt):
                model.members.append(Member(member, stmt_line, stmt))
            continue
        if c == ":" and body[i:i + 2] != "::" and body[i - 1:i] != ":":
            # Could be an access specifier handled at ';' time; just
            # treat `label:` as statement separator when it ends here.
            label = body[stmt_start:i].strip()
            if label in ("public", "private", "protected"):
                stmt_start = i + 1
        i += 1
    return model


def function_body(text: str, signature_prefix: str) -> str:
    """Body of the first function whose definition starts with
    `signature_prefix` (after comment stripping). Raises ValueError
    when not found."""
    stripped = strip_comments(text)
    idx = stripped.find(signature_prefix)
    if idx < 0:
        raise ValueError(f"definition not found: {signature_prefix}")
    brace = stripped.find("{", idx)
    semi = stripped.find(";", idx)
    if brace < 0 or (0 <= semi < brace):
        raise ValueError(f"no body for: {signature_prefix}")
    depth = 1
    i = brace + 1
    while i < len(stripped) and depth:
        if stripped[i] == "{":
            depth += 1
        elif stripped[i] == "}":
            depth -= 1
        i += 1
    if depth:
        raise ValueError(f"unbalanced body: {signature_prefix}")
    return stripped[brace + 1:i - 1]
