#!/usr/bin/env python3
"""Selftest for the custom lints, run as a ctest case.

Exercises every lint against the seeded fixtures in
tools/lint/fixtures twice over:

  * the *_bad fixtures must FAIL with exactly the expected findings —
    a lint whose parser or patterns silently stop matching fails here,
    so the audits cannot rot into green no-ops;
  * the *_good fixtures must PASS — the sanctioned escape hatches
    (reasoned allowlist entries, `// determinism:` annotations) keep
    working.

Exit 0 when every expectation holds, 1 otherwise.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

LINT_DIR = Path(__file__).resolve().parent
FIXTURES = LINT_DIR / "fixtures"


def run(script: str, config: Path, root: Path):
    proc = subprocess.run(
        [sys.executable, str(LINT_DIR / script),
         "--config", str(config), "--root", str(root)],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


CASES = [
    # (script, fixture subdir, expected exit, substrings that must all
    #  appear in the output)
    ("state_audit.py", "state_bad", 1, [
        "3 finding(s)",
        "Widget.gauge",
        "copy implementation",
        "hash implementation",
        "Widget.label",
    ]),
    ("state_audit.py", "state_good", 0, ["state_audit: OK"]),
    ("speckey_audit.py", "speckey_bad", 1, [
        "2 finding(s)",
        "RunSpecF.hammerReps",
        "would collide",
        "ExecOptsF.threads",
        "execution axis",
    ]),
    ("speckey_audit.py", "speckey_good", 0, ["speckey_audit: OK"]),
    ("determinism_lint.py", "det_bad", 1, [
        "7 finding(s)",
        "iteration over unordered container 'table'",
        "random_device",
        "rand()/srand()",
        "time(): wall clock",
        "calendar time",
        "%p formats a pointer",
        "streaming a pointer",
    ]),
    ("determinism_lint.py", "det_good", 0, ["determinism_lint: OK"]),
    ("lock_audit.py", "lock_bad", 1, [
        "3 finding(s)",
        "BadStore.mtx_ is a raw std::mutex",
        "BadStore.lines_",
        "not PTH_GUARDED_BY-annotated",
        "'BadStore.gone_' went unused",
    ]),
    ("lock_audit.py", "lock_good", 0, ["lock_audit: OK"]),
    ("layering_lint.py", "layer_bad", 1, [
        "3 finding(s)",
        "rogue/ is not in the configured layer order",
        "upward include \"ui/ui.hh\"",
        "went unused",
    ]),
    ("layering_lint.py", "layer_good", 0, ["layering_lint: OK"]),
]


def main() -> int:
    failures = 0
    for script, subdir, expect_exit, expect_texts in CASES:
        config = FIXTURES / subdir / "config.json"
        code, output = run(script, config, FIXTURES)
        problems = []
        if code != expect_exit:
            problems.append(f"exit {code}, expected {expect_exit}")
        for text in expect_texts:
            if text not in output:
                problems.append(f"missing expected output: {text!r}")
        if problems:
            failures += 1
            print(f"FAIL {script} on {subdir}:")
            for p in problems:
                print(f"  - {p}")
            print("  --- lint output ---")
            for line in output.splitlines():
                print(f"  | {line}")
        else:
            print(f"ok   {script} on {subdir}")
    if failures:
        print(f"lint selftest: {failures} case(s) failed")
        return 1
    print(f"lint selftest: OK ({len(CASES)} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
