#!/usr/bin/env python3
"""Lock-discipline audit: every mutex-owning class must be annotated.

Clang Thread Safety Analysis (-DPTH_THREAD_SAFETY=ON) only proves
lock discipline for state it can see: a PTH_GUARDED_BY member of a
pth::Mutex capability. A new std::mutex-guarded member with no
annotation compiles silently and is invisible to the analysis — the
exact gap this audit closes, compiler-free, on every CI run.

For every class or struct (in any scanned .hh/.cc) that owns a
synchronization member, the audit demands:

  * the sync primitive itself is one of the annotated wrappers from
    common/sync.hh (pth::Mutex / pth::CondVar). Raw std::mutex,
    std::condition_variable, std::once_flag and friends carry no
    capability attributes under libstdc++, so the analysis cannot
    check anything about them;
  * every sibling data member is PTH_GUARDED_BY / PTH_PT_GUARDED_BY
    annotated (the macro must textually follow the declarator name:
    `std::deque<Task> queue PTH_GUARDED_BY(mtx);`), or std::atomic,
    or const (immutable after construction), or carries a reasoned
    allowlist entry in lock_audit.json keyed "Class.member".

Stale allowlist entries — naming a class or member that no longer
exists, or a member that is now annotated — fail the audit, so the
list cannot rot. Empty reasons do not suppress.

Usage: lock_audit.py [--root ROOT] [--config CONFIG]
Exit 0 clean, 1 findings, 2 config error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import cpp_model  # noqa: E402

SUFFIXES = {".cc", ".cpp", ".hh", ".hpp"}

# The annotated wrappers (sanctioned) and the raw std primitives
# (findings when owned as members). MutexLock is RAII, not state.
WRAPPED_SYNC = re.compile(
    r"^\s*(?:mutable\s+)?(?:pth::)?(?:Mutex|CondVar)\s")
RAW_SYNC = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable"
    r"|condition_variable_any|once_flag)\b")

ATOMIC = re.compile(r"\bstd::atomic(?:<|\b)")
PAREN_MACRO = re.compile(r"\bPTH_[A-Z_]+\s*\(")
BARE_MACRO = re.compile(r"\bPTH_[A-Z_]+\b")

CLASS_DECL = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)"
                        r"(\s*(?:final)?[^;{()=]*)\{")


def erase_annotations(stripped: str) -> str:
    """Blank every PTH_* macro invocation — PTH_GUARDED_BY(mtx),
    PTH_CAPABILITY("mutex"), bare PTH_SCOPED_CAPABILITY — with
    equal-length spaces (newlines kept), so cpp_model does not
    mistake a macro's parenthesis for a function declaration and the
    class regex sees `class Mutex {` through the type attribute."""
    out = list(stripped)
    spans = []
    for m in PAREN_MACRO.finditer(stripped):
        depth = 0
        i = m.end() - 1
        while i < len(stripped):
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        spans.append((m.start(), min(i + 1, len(stripped))))
    for m in BARE_MACRO.finditer(stripped):
        if not any(s <= m.start() < e for s, e in spans):
            spans.append((m.start(), m.end()))
    for s, e in spans:
        for j in range(s, e):
            if out[j] != "\n":
                out[j] = " "
    return "".join(out)


def is_const_member(text: str) -> bool:
    """`const std::string path_` yes; `std::vector<const T *> v` no —
    only a const before the first template bracket counts."""
    return re.search(r"(?:^|\s)const(?:\s|$)",
                     text.split("<")[0]) is not None


def class_spans(stripped: str):
    """Yield (name, body_start, body_end) for every class/struct with
    a body. Forward declarations have no '{' and never match."""
    for m in CLASS_DECL.finditer(stripped):
        start = m.end()
        depth = 1
        i = start
        while i < len(stripped) and depth:
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
            i += 1
        if not depth:
            yield m.group(2), start, i - 1


def audit_file(root: Path, path: Path, allow: dict, used_allow: set,
               errors: list) -> int:
    raw = path.read_text()
    if not re.search(r"mutex|once_flag|condvar|condition_variable",
                     raw, re.IGNORECASE):
        return 0
    rel = path.relative_to(root)
    stripped = cpp_model.strip_comments(raw)
    erased = erase_annotations(stripped)
    audited = 0

    for name, start, end in class_spans(erased):
        body = stripped[start:end]
        # Cheap pre-filter; extract_members is only paid for classes
        # that plausibly own a sync member.
        if not (RAW_SYNC.search(body) or
                re.search(r"\b(?:pth::)?(?:Mutex|CondVar)\s+\w+\s*;",
                          body)):
            continue
        try:
            model = cpp_model.extract_members(erased, name)
        except ValueError as exc:
            errors.append(f"{rel}: {name}: cannot extract members: "
                          f"{exc}")
            continue

        sync_members = []
        for member in model.members:
            if WRAPPED_SYNC.search(member.text) or \
                    RAW_SYNC.search(member.text):
                sync_members.append(member)
        if not sync_members:
            continue
        audited += 1

        for member in model.members:
            key = f"{name}.{member.name}"
            raw_sync = RAW_SYNC.search(member.text)
            if raw_sync:
                if key in allow and str(allow[key]).strip():
                    used_allow.add(key)
                    continue
                errors.append(
                    f"{rel}:{member.line}: {key} is a raw "
                    f"std::{raw_sync.group(1)} — the thread-safety "
                    f"analysis cannot see it; use the annotated "
                    f"pth::Mutex / pth::CondVar from common/sync.hh "
                    f"(or allowlist with a reason).")
                continue
            if WRAPPED_SYNC.search(member.text):
                continue  # the capability itself
            # Annotated? The macro textually follows the declarator
            # (optionally through an array suffix).
            pattern = re.compile(
                r"\b" + re.escape(member.name) +
                r"\s*(?:\[[^\]]*\])?\s*PTH_(?:PT_)?GUARDED_BY\s*\(")
            if pattern.search(body):
                continue
            if ATOMIC.search(member.text):
                continue
            if is_const_member(member.text):
                continue
            if key in allow:
                if not str(allow[key]).strip():
                    errors.append(
                        f"{rel}:{member.line}: allowlist entry for "
                        f"{key} has an empty reason")
                used_allow.add(key)
                continue
            errors.append(
                f"{rel}:{member.line}: {key} shares a class with a "
                f"mutex but is not PTH_GUARDED_BY-annotated, atomic "
                f"or const. Annotate it (macro after the declarator: "
                f"`T {member.name} PTH_GUARDED_BY(mtx);`), or "
                f"allowlist it in lock_audit.json with a reason.")
    return audited


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root",
                    default=str(Path(__file__).resolve().parents[2]))
    ap.add_argument("--config",
                    default=str(Path(__file__).parent /
                                "lock_audit.json"))
    args = ap.parse_args()
    root = Path(args.root)
    try:
        config = json.loads(Path(args.config).read_text())
    except (OSError, ValueError) as exc:
        print(f"lock_audit: bad config: {exc}", file=sys.stderr)
        return 2

    scan_dirs = config.get("scan", ["src", "tools", "bench", "tests"])
    exclude = [root / e for e in config.get("exclude", [])]
    allow = config.get("allow", {})

    errors: list = []
    used_allow: set = set()
    files = 0
    audited = 0
    for d in scan_dirs:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            if any(ex in path.parents for ex in exclude):
                continue
            files += 1
            audited += audit_file(root, path, allow, used_allow,
                                  errors)

    for key in sorted(allow):
        if key not in used_allow:
            errors.append(
                f"allowlist entry '{key}' went unused — the member is "
                f"gone or now annotated; remove the stale entry")

    if errors:
        print(f"lock_audit: {len(errors)} finding(s):")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(f"lock_audit: OK ({audited} mutex-owning class(es) across "
          f"{files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
