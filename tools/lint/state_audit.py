#!/usr/bin/env python3
"""State-coverage audit for snapshot/fork components.

For every class listed in state_audit.json, this lint extracts the
class's data members from its header (or defining .cc for
anonymous-namespace classes) and demands that each member is
referenced by

  * the class's copy implementation (copy constructor or the function
    the config points at), and
  * the class's state digest (stateHash / stateFingerprint /
    contentHash).

A member that is deliberately excluded — a transient scratch buffer, an
immutable config, a reference rewired at construction — must carry an
explicit allowlist entry with a non-empty reason. Unused allowlist
entries fail the audit too, so the list cannot rot.

Why this exists: the campaign layer's whole determinism contract rests
on "equal stateFingerprint => byte-identical replay". Every member
added to a snapshotted component but forgotten in clone() or
stateHash() silently weakens that contract (this audit was introduced
together with fixes for exactly such gaps in the replacement policies,
flip models and defense allocators).

Usage: state_audit.py [--config CONFIG] [--root REPO_ROOT]
Exit status 0 when clean, 1 on findings, 2 on configuration/parse
errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import cpp_model  # noqa: E402


def function_text(text: str, anchor: str, after: str | None) -> str:
    """Definition text from `anchor` through the end of its brace block,
    including any constructor init list."""
    stripped = cpp_model.strip_comments(text)
    start = 0
    if after:
        start = stripped.find(after)
        if start < 0:
            raise ValueError(f"context not found: {after}")
    idx = stripped.find(anchor, start)
    if idx < 0:
        raise ValueError(f"definition not found: {anchor}")
    # The body is the first brace at parenthesis depth 0 — braces
    # inside the parameter list or constructor init list (lambda
    # bodies, braced arguments) must not be mistaken for it.
    paren = 0
    brace = -1
    for i in range(idx, len(stripped)):
        c = stripped[i]
        if c == "(":
            paren += 1
        elif c == ")":
            paren -= 1
        elif c == "{":
            if paren == 0:
                brace = i
                break
        elif c == ";" and paren == 0:
            raise ValueError(f"no body for: {anchor}")
    if brace < 0:
        raise ValueError(f"no body for: {anchor}")
    depth = 1
    i = brace + 1
    while i < len(stripped) and depth:
        if stripped[i] == "{":
            depth += 1
        elif stripped[i] == "}":
            depth -= 1
        i += 1
    if depth:
        raise ValueError(f"unbalanced body: {anchor}")
    return stripped[idx:i]


def references(text: str, name: str) -> bool:
    return re.search(r"\b" + re.escape(name) + r"\b", text) is not None


def audit_class(root: Path, spec: dict, errors: list) -> None:
    name = spec["name"]
    header = root / spec["header"]
    try:
        model = cpp_model.extract_members(header.read_text(), name)
    except (OSError, ValueError) as exc:
        errors.append(f"{name}: cannot extract members: {exc}")
        return

    allow = spec.get("allow", {})
    used_allow = set()

    aspects = []
    for aspect in ("copy", "hash"):
        conf = spec.get(aspect)
        if conf is None:
            reason = spec.get(f"{aspect}_exempt", "")
            if not reason.strip():
                errors.append(
                    f"{name}: no '{aspect}' function configured and no "
                    f"'{aspect}_exempt' reason given")
            continue
        path = root / conf["file"]
        try:
            text = function_text(path.read_text(), conf["anchor"],
                                 conf.get("after"))
        except (OSError, ValueError) as exc:
            errors.append(f"{name}: {aspect}: {exc}")
            continue
        aspects.append((aspect, conf, text))

    if not model.members and not allow:
        return

    for member in model.members:
        for aspect, conf, text in aspects:
            entry = allow.get(member.name, {})
            if aspect in entry:
                used_allow.add((member.name, aspect))
                if not str(entry[aspect]).strip():
                    errors.append(
                        f"{name}.{member.name}: allowlist entry for "
                        f"'{aspect}' has an empty reason")
                continue
            if not references(text, member.name):
                errors.append(
                    f"{name}.{member.name} "
                    f"({spec['header']}:{member.line}) is not referenced "
                    f"by the {aspect} implementation "
                    f"({conf['file']}, anchor '{conf['anchor']}'). "
                    f"Reference it, or allowlist it with a reason.")

    member_names = {m.name for m in model.members}
    for member_name, entry in allow.items():
        if member_name not in member_names:
            errors.append(
                f"{name}: allowlist names unknown member "
                f"'{member_name}' — remove the stale entry")
            continue
        for aspect in entry:
            if aspect not in ("copy", "hash"):
                errors.append(
                    f"{name}.{member_name}: unknown allowlist aspect "
                    f"'{aspect}'")
            elif (member_name, aspect) not in used_allow and \
                    spec.get(aspect) is not None:
                # The aspect was audited and the entry keyed it: it was
                # consumed above. Reaching here means the aspect is
                # configured but the entry went unused (cannot happen
                # unless the member also matched), so nothing to do.
                pass


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--config",
                    default=str(Path(__file__).parent / "state_audit.json"))
    ap.add_argument("--root", default=str(
        Path(__file__).resolve().parents[2]))
    args = ap.parse_args()

    root = Path(args.root)
    try:
        config = json.loads(Path(args.config).read_text())
    except (OSError, ValueError) as exc:
        print(f"state_audit: bad config: {exc}", file=sys.stderr)
        return 2

    errors: list = []
    for spec in config["classes"]:
        audit_class(root, spec, errors)

    if errors:
        print(f"state_audit: {len(errors)} finding(s):")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(f"state_audit: OK ({len(config['classes'])} classes audited)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
