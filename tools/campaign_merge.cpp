/**
 * @file
 * campaign_merge: fold shard journals into one canonical journal.
 *
 * The multi-host half of sharded dispatch (docs/CAMPAIGN.md): each
 * host runs `bench --shard I/N --journal part.jsonl`, the parts are
 * collected, and this tool merges them so the bench — rerun with the
 * merged journal — emits the full report without executing anything:
 *
 *   campaign_merge s0.jsonl s1.jsonl s2.jsonl -o merged.jsonl
 *   bench_x --journal merged.jsonl --json=report.json
 *
 * Semantics (ResultStore::merge): inputs are read in argument order;
 * when several entries claim the same run index the last one read
 * wins, so list older journals first and fresher shards after.
 * Corrupt lines — the torn writes of killed workers — are skipped
 * and counted, never fatal. The output is re-serialized in ascending
 * run-index order: the same bytes a single process journaling the
 * same results would have written. Without -o the merged journal
 * goes to stdout.
 *
 * Exit status: 0 on success (corrupt lines and missing inputs are
 * warnings), 1 when the output cannot be written or no input
 * contributed anything, 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/result_store.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    const char *usage =
        "usage: campaign_merge SHARD.jsonl... [-o MERGED.jsonl]\n"
        "  SHARD.jsonl...    shard journals, oldest first (on index\n"
        "                    collisions the last listed wins)\n"
        "  -o, --output PATH write the merged journal to PATH\n"
        "                    (default: stdout)\n";

    std::vector<std::string> inputs;
    std::string outPath;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") ||
            !std::strcmp(argv[i], "-h")) {
            std::fputs(usage, stdout);
            return 0;
        }
        if ((!std::strcmp(argv[i], "-o") ||
             !std::strcmp(argv[i], "--output")) &&
            i + 1 < argc) {
            outPath = argv[++i];
            continue;
        }
        if (!std::strncmp(argv[i], "--output=", 9)) {
            outPath = argv[i] + 9;
            continue;
        }
        if (argv[i][0] == '-' && argv[i][1] != '\0') {
            std::fprintf(stderr, "unknown argument '%s'\n%s",
                         argv[i], usage);
            return 2;
        }
        inputs.push_back(argv[i]);
    }
    if (inputs.empty()) {
        std::fputs(usage, stderr);
        return 2;
    }

    // File output is staged and renamed into place only after the
    // merge proves it read something, so a typo'd invocation can
    // never truncate an existing merged journal to nothing.
    const bool toStdout = outPath.empty();
    const std::string staging = outPath + ".merging";
    ResultStore::MergeStats stats;
    std::string error;
    const bool merged =
        toStdout ? ResultStore::merge(inputs, std::cout, &stats)
                 : ResultStore::merge(inputs, staging, &stats,
                                      &error);
    if (!merged) {
        if (!toStdout) {
            std::fprintf(stderr, "%s\n", error.c_str());
            std::remove(staging.c_str());
        } else {
            std::fprintf(stderr, "short write to stdout\n");
        }
        return 1;
    }

    if (stats.missingInputs)
        std::fprintf(stderr,
                     "warning: %u input journal(s) missing (worker"
                     " died before its first checkpoint?)\n",
                     stats.missingInputs);
    if (stats.corruptLines)
        std::fprintf(stderr,
                     "warning: skipped %zu corrupt line(s) (torn"
                     " writes of killed workers)\n",
                     stats.corruptLines);
    std::fprintf(stderr,
                 "merged %zu run(s) from %u journal(s) (%zu"
                 " superseded duplicate(s))\n",
                 stats.entries, stats.inputs, stats.overwritten);

    if (stats.inputs == 0) {
        std::fprintf(stderr, "no readable input journal\n");
        if (!toStdout)
            std::remove(staging.c_str());
        return 1;
    }

    if (!toStdout &&
        std::rename(staging.c_str(), outPath.c_str()) != 0) {
        std::fprintf(stderr, "cannot move %s into place\n",
                     staging.c_str());
        std::remove(staging.c_str());
        return 1;
    }
    return 0;
}
