/**
 * @file
 * campaign_query: ask questions of stored campaign results.
 *
 * Loads any mix of result-store journals and campaign JSON reports
 * into one index (later artifacts supersede earlier ones per run
 * index, exactly like ResultStore::merge), then answers:
 *
 *   campaign_query runs.jsonl                        per-run listing
 *   campaign_query runs.jsonl --filter defense=none  AND-filtering
 *   campaign_query runs.jsonl --group-by strategy    aggregation
 *   campaign_query --trend base.json cur.jsonl       regression diff
 *
 * Filter/group axes: label, machine (alias preset), defense,
 * strategy, seed, dram-model. --trend shares campaign_compare's
 * diff engine (harness/journal_index), so both tools agree on what
 * counts as a regression; its exit status is the regression count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/journal_index.hh"

using namespace pth;

namespace
{

/** Filter-aware selection of every indexed run. */
std::vector<const IndexedRun *>
selectRuns(const JournalIndex &index,
           const std::vector<JournalIndex::Filter> &filters)
{
    return index.select(filters);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *usage =
        "usage: campaign_query ARTIFACT... [--filter AXIS=VALUE]...\n"
        "                      [--group-by AXIS]\n"
        "       campaign_query --trend BASELINE CURRENT\n"
        "                      [--filter AXIS=VALUE]... [--all]\n"
        "                      [--tolerance PCT]\n"
        "  ARTIFACT        campaign JSON report (--json=...) or\n"
        "                  result-store journal; several artifacts\n"
        "                  fold together last-wins, like"
        " campaign_merge\n"
        "  --filter AXIS=VALUE  keep only matching runs (repeatable,"
        " ANDed);\n"
        "                  axes: label, machine (preset), defense,\n"
        "                  strategy, seed, dram-model\n"
        "  --group-by AXIS aggregate the selection per axis value\n"
        "  --trend         diff two artifacts with campaign_compare's\n"
        "                  regression rules; exit status = regressed"
        " runs\n"
        "  --all           with --trend: also list unchanged runs\n"
        "  --tolerance PCT with --trend: sim-seconds growth tolerated"
        " (default 10)\n";

    std::vector<std::string> paths;
    std::vector<JournalIndex::Filter> filters;
    bool trend = false;
    bool showAll = false;
    bool haveGroupBy = false;
    RunAxis groupAxis = RunAxis::Label;
    RunDiffOptions diffOptions;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (!std::strncmp(arg, flag, n) && arg[n] == '=')
                return arg + n + 1;
            if (!std::strcmp(arg, flag) && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            std::fputs(usage, stdout);
            return 0;
        } else if (!std::strcmp(arg, "--trend")) {
            trend = true;
        } else if (!std::strcmp(arg, "--all")) {
            showAll = true;
        } else if (const char *v = value("--filter")) {
            JournalIndex::Filter filter;
            std::string error;
            if (!JournalIndex::parseFilter(v, filter, &error)) {
                std::fprintf(stderr, "campaign_query: %s\n",
                             error.c_str());
                return 2;
            }
            filters.push_back(std::move(filter));
        } else if (const char *axisArg = value("--group-by")) {
            if (!parseRunAxis(axisArg, groupAxis)) {
                std::fprintf(stderr,
                             "campaign_query: unknown axis '%s' (use"
                             " label, machine, defense, strategy,"
                             " seed or dram-model)\n",
                             axisArg);
                return 2;
            }
            haveGroupBy = true;
        } else if (const char *tolArg = value("--tolerance")) {
            diffOptions.tolerancePct = std::strtod(tolArg, nullptr);
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown argument '%s'\n%s", arg,
                         usage);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    if (trend) {
        if (paths.size() != 2 || haveGroupBy) {
            std::fputs(usage, stderr);
            return 2;
        }
        JournalIndex baseline;
        JournalIndex current;
        std::string error;
        if (!baseline.addArtifact(paths[0], &error)) {
            std::fprintf(stderr, "campaign_query: %s\n",
                         error.c_str());
            return 2;
        }
        if (!current.addArtifact(paths[1], &error)) {
            std::fprintf(stderr, "campaign_query: %s\n",
                         error.c_str());
            return 2;
        }
        const RunDiff diff =
            diffRuns(selectRuns(baseline, filters),
                     selectRuns(current, filters), diffOptions);
        std::printf("== campaign_query trend: %s -> %s ==\n",
                    paths[0].c_str(), paths[1].c_str());
        diffTable(diff, showAll).print();
        std::printf("\n%u unchanged, %u changed, %u regressed,"
                    " %u added, %u removed (tolerance %.1f%%"
                    " sim-time)\n",
                    diff.unchanged, diff.changed, diff.regressions,
                    diff.added, diff.removed,
                    diffOptions.tolerancePct);
        return diff.regressions > 255
                   ? 255
                   : static_cast<int>(diff.regressions);
    }

    if (paths.empty()) {
        std::fputs(usage, stderr);
        return 2;
    }
    JournalIndex index;
    for (const std::string &path : paths) {
        std::string error;
        if (!index.addArtifact(path, &error)) {
            std::fprintf(stderr, "campaign_query: %s\n",
                         error.c_str());
            return 2;
        }
    }
    const JournalIndex::LoadStats &stats = index.stats();
    if (stats.corruptLines)
        std::fprintf(stderr,
                     "warning: skipped %zu corrupt journal line(s)\n",
                     stats.corruptLines);

    const std::vector<const IndexedRun *> selection =
        selectRuns(index, filters);
    if (haveGroupBy) {
        JournalIndex::groupTable(
            JournalIndex::groupBy(selection, groupAxis), groupAxis)
            .print();
    } else {
        JournalIndex::runTable(selection).print();
    }
    std::printf("\n%zu run(s) selected of %zu indexed (%u journal(s),"
                " %u report(s), %zu superseded)\n",
                selection.size(), index.size(), stats.journals,
                stats.reports, stats.superseded);
    return 0;
}
