/**
 * @file
 * campaign_compare: diff two stored campaign reports.
 *
 * Accepts either artifact the harness writes — a campaign JSON report
 * (bench --json=report.json) or a result-store journal (bench
 * --journal runs.jsonl) — in any combination, matches runs by label
 * (falling back to index when labels repeat), and prints a per-run
 * delta table plus a regression summary.
 *
 * A run counts as a REGRESSION when, versus the baseline, it stops
 * completing (ok -> failed), stops flipping, stops escalating, loses
 * flips, or its simulated seconds grow by more than --tolerance
 * percent (default 10). The exit status is the number of regressed
 * runs, so the tool drops straight into CI or scripts:
 *
 *   campaign_compare baseline.json current.json [--all]
 *                    [--tolerance PCT]
 *
 * The comparison itself — artifact sniffing, run matching, regression
 * criteria, the delta table — lives in harness/journal_index so
 * campaign_query --trend answers with exactly the same judgement.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/journal_index.hh"

using namespace pth;

namespace
{

/**
 * Load one artifact into its own index, with campaign_compare's
 * stderr reporting: unreadable/empty artifacts say why, torn journals
 * say how many lines were dropped.
 */
bool
loadArtifact(const std::string &path, JournalIndex &index)
{
    std::string error;
    const bool ok = index.addArtifact(path, &error);
    if (!ok)
        std::fprintf(stderr, "%s\n", error.c_str());
    if (index.stats().corruptLines)
        std::fprintf(stderr,
                     "%s: warning: skipped %zu corrupt journal"
                     " line(s)\n",
                     path.c_str(), index.stats().corruptLines);
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *usage =
        "usage: campaign_compare BASELINE CURRENT [--all]"
        " [--tolerance PCT]\n"
        "  BASELINE/CURRENT  campaign JSON report (--json=...) or\n"
        "                    result-store journal (--journal ...)\n"
        "  --all             also list unchanged runs\n"
        "  --tolerance PCT   simulated-seconds growth tolerated\n"
        "                    before a run counts as regressed"
        " (default 10)\n";

    std::vector<std::string> paths;
    bool showAll = false;
    RunDiffOptions options;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--all")) {
            showAll = true;
        } else if (!std::strcmp(argv[i], "--tolerance") &&
                   i + 1 < argc) {
            options.tolerancePct = std::strtod(argv[++i], nullptr);
        } else if (!std::strncmp(argv[i], "--tolerance=", 12)) {
            options.tolerancePct = std::strtod(argv[i] + 12, nullptr);
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            std::fputs(usage, stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown argument '%s'\n%s",
                         argv[i], usage);
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.size() != 2) {
        std::fputs(usage, stderr);
        return 2;
    }

    // One index per artifact: each side deduplicates internally
    // (last-wins by run index) but baseline and current never
    // supersede each other.
    JournalIndex baseline;
    JournalIndex current;
    if (!loadArtifact(paths[0], baseline) ||
        !loadArtifact(paths[1], current))
        return 2;

    const RunDiff diff =
        diffRuns(baseline.runs(), current.runs(), options);

    std::printf("== campaign_compare: %s -> %s ==\n", paths[0].c_str(),
                paths[1].c_str());
    diffTable(diff, showAll).print();
    std::printf("\n%zu baseline runs, %zu current: %u unchanged,"
                " %u changed, %u regressed, %u added, %u removed"
                " (tolerance %.1f%% sim-time)\n",
                baseline.size(), current.size(), diff.unchanged,
                diff.changed, diff.regressions, diff.added,
                diff.removed, options.tolerancePct);

    return diff.regressions > 255
               ? 255
               : static_cast<int>(diff.regressions);
}
