/**
 * @file
 * campaign_compare: diff two stored campaign reports.
 *
 * Accepts either artifact the harness writes — a campaign JSON report
 * (bench --json=report.json) or a result-store journal (bench
 * --journal runs.jsonl) — in any combination, matches runs by label
 * (falling back to index when labels repeat), and prints a per-run
 * delta table plus a regression summary.
 *
 * A run counts as a REGRESSION when, versus the baseline, it stops
 * completing (ok -> failed), stops flipping, stops escalating, loses
 * flips, or its simulated seconds grow by more than --tolerance
 * percent (default 10). The exit status is the number of regressed
 * runs, so the tool drops straight into CI or scripts:
 *
 *   campaign_compare baseline.json current.json [--all]
 *                    [--tolerance PCT]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/table.hh"
#include "harness/result_store.hh"

namespace
{

using namespace pth;

/** One comparable run record, from either artifact format. */
struct Run
{
    std::size_t index = 0;
    std::string label;
    bool ok = true;
    bool flipped = false;
    bool escalated = false;
    std::uint64_t flips = 0;
    std::uint64_t attempts = 0;
    double simSeconds = 0;
    double timeToFlipMinutes = 0;
    std::vector<std::pair<std::string, double>> metrics;
};

Run
fromResult(const RunResult &r)
{
    Run run;
    run.index = r.index;
    run.label = r.label;
    run.ok = r.ok;
    run.flipped = r.flipped;
    run.escalated = r.escalated;
    run.flips = r.flips;
    run.attempts = r.attempts;
    run.simSeconds = r.simSeconds;
    run.timeToFlipMinutes = r.report.timeToFirstFlipMinutes;
    run.metrics = r.metrics;
    return run;
}

/** Parse one object of a report's "runs" array. */
bool
fromReportObject(const JsonValue &obj, Run &run)
{
    if (!obj.isObject())
        return false;
    const JsonValue *label = obj.find("label");
    const JsonValue *index = obj.find("index");
    if (!label || !label->isString() || !index)
        return false;
    run.index = index->asU64();
    run.label = label->asString();
    if (const JsonValue *v = obj.find("ok"))
        run.ok = v->asBool(true);
    if (const JsonValue *v = obj.find("flipped"))
        run.flipped = v->asBool();
    if (const JsonValue *v = obj.find("escalated"))
        run.escalated = v->asBool();
    if (const JsonValue *v = obj.find("flips"))
        run.flips = v->asU64();
    if (const JsonValue *v = obj.find("attempts"))
        run.attempts = v->asU64();
    if (const JsonValue *v = obj.find("sim_seconds"))
        run.simSeconds = v->asDouble();
    if (const JsonValue *v = obj.find("time_to_flip_minutes"))
        run.timeToFlipMinutes = v->asDouble();
    if (const JsonValue *metrics = obj.find("metrics"))
        for (const auto &member : metrics->members())
            run.metrics.emplace_back(member.first,
                                     member.second.asDouble());
    return true;
}

/**
 * Load a campaign artifact: a JSON report (object with "runs") or a
 * JSONL journal. Returns false when the file is unreadable or holds
 * no parsable run at all.
 */
bool
loadRuns(const std::string &path, std::vector<Run> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    JsonValue doc;
    if (JsonValue::parse(text, doc) && doc.isObject() &&
        doc.find("runs")) {
        for (const JsonValue &obj : doc.find("runs")->items()) {
            Run run;
            if (fromReportObject(obj, run))
                out.push_back(std::move(run));
        }
        if (out.empty())
            std::fprintf(stderr,
                         "%s: campaign report contains no runs\n",
                         path.c_str());
        return !out.empty();
    }

    // Journal: ResultStore::load already applies the skip-corrupt /
    // last-valid-index-wins rules; a nonzero corrupt count means the
    // journal is partial, which the comparison should say out loud.
    std::size_t corrupt = 0;
    for (const auto &item : ResultStore::load(path, &corrupt))
        out.push_back(fromResult(item.second.result));
    if (corrupt)
        std::fprintf(stderr,
                     "%s: warning: skipped %zu corrupt journal"
                     " line(s)\n",
                     path.c_str(), corrupt);
    if (out.empty())
        std::fprintf(stderr,
                     "%s: neither a campaign report nor a journal\n",
                     path.c_str());
    return !out.empty();
}

/** Labels appearing more than once in either artifact. */
std::set<std::string>
duplicatedLabels(const std::vector<Run> &a, const std::vector<Run> &b)
{
    std::map<std::string, unsigned> uses;
    for (const Run &run : a)
        ++uses[run.label];
    for (const Run &run : b)
        ++uses[run.label];
    std::set<std::string> duplicated;
    for (const auto &item : uses)
        if (item.second > 1)
            duplicated.insert(item.first);
    return duplicated;
}

/**
 * Key runs by label, appending the index for labels duplicated in
 * either artifact — both sides must disambiguate the same way or a
 * label that repeats on one side only would never match the other.
 */
std::map<std::string, const Run *>
keyByLabel(const std::vector<Run> &runs,
           const std::set<std::string> &duplicated)
{
    std::map<std::string, const Run *> keyed;
    for (const Run &run : runs) {
        std::string key = duplicated.count(run.label)
                              ? run.label + strfmt("#%zu", run.index)
                              : run.label;
        keyed[key] = &run;
    }
    return keyed;
}

/**
 * Equality at the JSON report's precision: reports render doubles
 * with %.9g while journals keep all 17 digits, so a journal and the
 * report of the same campaign differ below ~1e-9 relative. Treat
 * that as equal rather than flagging phantom deltas.
 */
bool
sameValue(double a, double b)
{
    if (a == b)
        return true;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= 1e-8 * scale;
}

bool
sameMetrics(const std::vector<std::pair<std::string, double>> &a,
            const std::vector<std::pair<std::string, double>> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].first != b[i].first ||
            !sameValue(a[i].second, b[i].second))
            return false;
    return true;
}

std::string
deltaCell(double base, double current)
{
    if (sameValue(base, current))
        return "=";
    const double delta = current - base;
    if (base != 0)
        return strfmt("%+.3g (%+.1f%%)", delta, 100.0 * delta / base);
    return strfmt("%+.3g", delta);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *usage =
        "usage: campaign_compare BASELINE CURRENT [--all]"
        " [--tolerance PCT]\n"
        "  BASELINE/CURRENT  campaign JSON report (--json=...) or\n"
        "                    result-store journal (--journal ...)\n"
        "  --all             also list unchanged runs\n"
        "  --tolerance PCT   simulated-seconds growth tolerated\n"
        "                    before a run counts as regressed"
        " (default 10)\n";

    std::vector<std::string> paths;
    bool showAll = false;
    double tolerancePct = 10.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--all")) {
            showAll = true;
        } else if (!std::strcmp(argv[i], "--tolerance") &&
                   i + 1 < argc) {
            tolerancePct = std::strtod(argv[++i], nullptr);
        } else if (!std::strncmp(argv[i], "--tolerance=", 12)) {
            tolerancePct = std::strtod(argv[i] + 12, nullptr);
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            std::fputs(usage, stdout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown argument '%s'\n%s",
                         argv[i], usage);
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.size() != 2) {
        std::fputs(usage, stderr);
        return 2;
    }

    std::vector<Run> baseline;
    std::vector<Run> current;
    if (!loadRuns(paths[0], baseline) || !loadRuns(paths[1], current))
        return 2;

    const std::set<std::string> duplicated =
        duplicatedLabels(baseline, current);
    auto baseByLabel = keyByLabel(baseline, duplicated);
    auto curByLabel = keyByLabel(current, duplicated);

    Table table({"Run", "Flips (base -> cur)", "Sim seconds delta",
                 "Time-to-flip delta", "Status"});
    unsigned regressions = 0;
    unsigned improvements = 0;
    unsigned unchanged = 0;
    unsigned added = 0;
    unsigned removed = 0;

    for (const auto &item : baseByLabel) {
        const Run &b = *item.second;
        auto match = curByLabel.find(item.first);
        if (match == curByLabel.end()) {
            ++removed;
            table.addRow({item.first, "-", "-", "-", "REMOVED"});
            continue;
        }
        const Run &c = *match->second;

        const bool worseOk = b.ok && !c.ok;
        const bool worseFlip = b.flipped && !c.flipped;
        const bool worseEsc = b.escalated && !c.escalated;
        const bool fewerFlips = c.flips < b.flips;
        const bool slower =
            b.simSeconds > 0 &&
            c.simSeconds >
                b.simSeconds * (1.0 + tolerancePct / 100.0);
        const bool regressed =
            worseOk || worseFlip || worseEsc || fewerFlips || slower;

        const bool identical =
            b.ok == c.ok && b.flipped == c.flipped &&
            b.escalated == c.escalated && b.flips == c.flips &&
            b.attempts == c.attempts &&
            sameValue(b.simSeconds, c.simSeconds) &&
            sameValue(b.timeToFlipMinutes, c.timeToFlipMinutes) &&
            sameMetrics(b.metrics, c.metrics);

        std::string status;
        if (regressed) {
            ++regressions;
            status = "REGRESSION";
            if (worseOk)
                status += " (now fails)";
            else if (worseFlip)
                status += " (no flip)";
            else if (worseEsc)
                status += " (no escalation)";
            else if (fewerFlips)
                status += " (fewer flips)";
            else
                status += " (slower)";
        } else if (identical) {
            ++unchanged;
            if (!showAll)
                continue;
            status = "unchanged";
        } else {
            ++improvements;
            status = "changed";
        }

        table.addRow(
            {item.first,
             strfmt("%llu -> %llu",
                    static_cast<unsigned long long>(b.flips),
                    static_cast<unsigned long long>(c.flips)),
             deltaCell(b.simSeconds, c.simSeconds),
             deltaCell(b.timeToFlipMinutes, c.timeToFlipMinutes),
             status});
    }
    for (const auto &item : curByLabel) {
        if (baseByLabel.count(item.first))
            continue;
        ++added;
        table.addRow({item.first, "-", "-", "-", "ADDED"});
    }

    std::printf("== campaign_compare: %s -> %s ==\n", paths[0].c_str(),
                paths[1].c_str());
    table.print();
    std::printf("\n%zu baseline runs, %zu current: %u unchanged,"
                " %u changed, %u regressed, %u added, %u removed"
                " (tolerance %.1f%% sim-time)\n",
                baseline.size(), current.size(), unchanged,
                improvements, regressions, added, removed,
                tolerancePct);

    return regressions > 255 ? 255 : static_cast<int>(regressions);
}
