#!/usr/bin/env python3
"""Docs consistency checks, run by the CI docs job and locally.

1. Markdown link check: every relative link in the repo's *.md files
   must point at an existing file or directory.
2. Reproduce-table coverage: every binary CMake builds (benches,
   examples, tools) must be mentioned in README.md, so the per-binary
   reproduce table cannot silently fall behind the build.
3. Static-analysis coverage: every lint artifact under tools/lint
   (scripts, configs, suppression file) plus .clang-tidy must be
   mentioned in docs/STATIC_ANALYSIS.md, so the analysis reference
   cannot silently fall behind the lint layer.
4. Bench-flag coverage: every flag the shared bench CLI parses
   (extracted from src/harness/bench_cli.cc) must be documented in
   docs/CAMPAIGN.md's flag table, so a new flag cannot ship
   undocumented.

Exits nonzero (with a line per problem) when anything fails.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# PAPERS.md / SNIPPETS.md are retrieval artifacts (their links point
# into the papers they were extracted from); only maintained docs are
# checked.
SKIP = {"PAPERS.md", "SNIPPETS.md", "PAPER.md"}

MD_FILES = sorted(
    p
    for p in list(ROOT.glob("*.md")) + list((ROOT / "docs").glob("*.md"))
    if "build" not in p.parts and p.name not in SKIP
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links() -> list:
    problems = []
    for md in MD_FILES:
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(ROOT)}: broken link -> {target}"
                )
    return problems


def built_binaries() -> list:
    """Every binary name the build produces, parsed from CMakeLists."""
    names = []

    bench_lists = (ROOT / "bench" / "CMakeLists.txt").read_text()
    in_list = False
    for line in bench_lists.splitlines():
        stripped = line.strip()
        if stripped.startswith("set(PTH_BENCHES"):
            in_list = True
            continue
        if in_list:
            if stripped == ")":
                in_list = False
                continue
            if stripped and not stripped.startswith("#"):
                names.append(stripped)
    names += re.findall(r"add_executable\((\w+)", bench_lists)

    example_lists = (ROOT / "examples" / "CMakeLists.txt").read_text()
    for match in re.finditer(
        r"set\(PTH_EXAMPLES(.*?)\)", example_lists, re.S
    ):
        for token in match.group(1).split():
            if not token.startswith("#"):
                names.append(f"example_{token}")

    tools_lists = (ROOT / "tools" / "CMakeLists.txt").read_text()
    names += re.findall(r"add_executable\((\w+)", tools_lists)

    return sorted(set(names))


def check_readme_table() -> list:
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    problems = []
    for name in built_binaries():
        if name not in readme:
            problems.append(
                f"README.md: binary '{name}' has no reproduce-table row"
            )
    return problems


def check_static_analysis_doc() -> list:
    doc_path = ROOT / "docs" / "STATIC_ANALYSIS.md"
    if not doc_path.exists():
        return ["docs/STATIC_ANALYSIS.md is missing"]
    doc = doc_path.read_text(encoding="utf-8")
    problems = []
    lint_dir = ROOT / "tools" / "lint"
    artifacts = sorted(
        p for p in lint_dir.iterdir()
        if p.suffix in (".py", ".json", ".supp")
    ) + [ROOT / ".clang-tidy"]
    for artifact in artifacts:
        if artifact.name not in doc:
            problems.append(
                "docs/STATIC_ANALYSIS.md: lint artifact "
                f"'{artifact.name}' is not documented"
            )
    # The thread-safety annotation layer is analysis configuration in
    # the same sense as the lint configs: the macros, the annotated
    # sync wrappers and the CMake gate must stay documented.
    for required in ("thread_annotations.hh", "sync.hh",
                     "PTH_THREAD_SAFETY"):
        if required not in doc:
            problems.append(
                "docs/STATIC_ANALYSIS.md: thread-safety artifact "
                f"'{required}' is not documented"
            )
    return problems


def bench_cli_flags() -> list:
    """Every --flag the shared bench CLI understands, parsed from the
    flagValue() calls and strcmp literals in bench_cli.cc."""
    source = (ROOT / "src" / "harness" / "bench_cli.cc").read_text()
    flags = set(re.findall(r'flagValue\(argc, argv, i,\s*"(--[\w-]+)"', source))
    flags |= set(re.findall(r'strcmp\(arg, "(--[\w-]+)"\)', source))
    flags.discard("--help")  # documented by every bench's own usage
    flags.discard("-h")
    return sorted(flags)


def check_campaign_flag_table() -> list:
    doc_path = ROOT / "docs" / "CAMPAIGN.md"
    if not doc_path.exists():
        return ["docs/CAMPAIGN.md is missing"]
    doc = doc_path.read_text(encoding="utf-8")
    problems = []
    for flag in bench_cli_flags():
        if f"`{flag}" not in doc:
            problems.append(
                f"docs/CAMPAIGN.md: bench CLI flag '{flag}' is not"
                " documented in the flag table"
            )
    return problems


def main() -> int:
    problems = (
        check_links() + check_readme_table() + check_static_analysis_doc()
        + check_campaign_flag_table()
    )
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} docs problem(s)")
        return 1
    print(
        f"docs OK: {len(MD_FILES)} markdown files, "
        f"{len(built_binaries())} binaries covered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
