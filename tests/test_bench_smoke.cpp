/**
 * @file
 * Smoke coverage for the bench binaries' code paths at tiny scale.
 * Every bench_* program drives the library through one of the entry
 * points exercised here (with paper-scale knobs turned down to
 * seconds), so a change that breaks a bench breaks ctest instead of
 * rotting silently.
 */

#include <gtest/gtest.h>

#include "attack/eviction_pool.hh"
#include "attack/eviction_selection.hh"
#include "attack/explicit_hammer.hh"
#include "attack/pool_build.hh"
#include "attack/pthammer.hh"
#include "attack/spray.hh"
#include "attack/tlb_eviction.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/campaign.hh"
#include "kernel/kernel_module.hh"

namespace pth
{
namespace
{

AttackConfig
tinyAttack()
{
    AttackConfig a;
    a.superpages = true;
    a.sprayBytes = 24ull << 20;
    a.superpageSampleClasses = 2;
    a.maxAttempts = 6;
    a.hammerBudgetSeconds = 36000;
    return a;
}

/** bench_table1_configs: the Table-I presets render. */
TEST(BenchSmoke, Table1Configs)
{
    std::vector<MachineConfig> machines = MachineConfig::paperMachines();
    ASSERT_EQ(machines.size(), 3u);
    Table table({"Machine", "Architecture", "LLC ways"});
    for (const MachineConfig &m : machines)
        table.addRow({m.name, m.architecture,
                      strfmt("%u", m.caches.llc.ways)});
    EXPECT_NE(table.render().find("T420"), std::string::npos);
}

/** bench_fig3_tlb_eviction: profile a TLB eviction set. */
TEST(BenchSmoke, Fig3TlbEvictionPath)
{
    Machine machine(MachineConfig::testSmall());
    AttackConfig attack = tinyAttack();
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    SprayManager sprayer(machine, attack);
    sprayer.spray();
    TlbEvictionTool tlb(machine, attack);
    tlb.prepare();
    KernelModule module(machine);

    VirtAddr target = sprayer.randomTarget(100);
    auto set = tlb.evictionSetFor(target, 13);
    double rate = tlb.profileMissRate(target, set, 20, module);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
}

/** bench_fig4_llc_eviction: profile an LLC eviction set. */
TEST(BenchSmoke, Fig4LlcEvictionPath)
{
    Machine machine(MachineConfig::testSmall());
    AttackConfig attack = tinyAttack();
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    LlcEvictionPool pool(machine, attack);
    pool.allocateBuffer();
    pool.buildSuperpage(/*sampleClasses=*/2);
    ASSERT_FALSE(pool.sets().empty());

    const EvictionSet &set = pool.sets()[0];
    ASSERT_FALSE(set.lines.empty());
    double rate = pool.profileEvictionRate(set.lines.back(),
                                           machine.config().caches.llc.ways
                                               + 1,
                                           /*repeats=*/5);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
}

/** bench_pool_build: every algorithm variant on both page modes. */
TEST(BenchSmoke, PoolBuildBenchPath)
{
    const PoolBuildAlgorithm algorithms[] = {
        PoolBuildAlgorithm::SingleElimination,
        PoolBuildAlgorithm::GroupTesting,
    };
    for (bool superpages : {true, false}) {
        std::uint64_t groupFingerprint = 0;
        for (PoolBuildAlgorithm algorithm : algorithms) {
            for (unsigned threads : {1u, 4u}) {
                if (algorithm ==
                        PoolBuildAlgorithm::SingleElimination &&
                    threads != 1)
                    continue;
                Machine machine(MachineConfig::testSmall());
                AttackConfig attack = tinyAttack();
                attack.superpages = superpages;
                attack.poolBuild.algorithm = algorithm;
                attack.poolBuild.threads = threads;
                Process &proc = machine.kernel().createProcess(1000);
                machine.cpu().setProcess(proc);
                LlcEvictionPool pool(machine, attack);
                pool.allocateBuffer();
                PoolBuildReport report =
                    superpages ? pool.buildSuperpage(2)
                               : pool.buildRegularSampled(1, 2);
                EXPECT_GT(report.conflictTests, 0u);
                EXPECT_GT(report.lineAccesses, 0u);
                EXPECT_GE(report.extrapolatedCycles,
                          report.sampledCycles);
                EXPECT_FALSE(pool.sets().empty());
                if (algorithm == PoolBuildAlgorithm::GroupTesting) {
                    // Serial and multi-threaded pools byte-match.
                    std::uint64_t fp = poolFingerprint(pool.sets());
                    if (threads == 1)
                        groupFingerprint = fp;
                    else
                        EXPECT_EQ(fp, groupFingerprint);
                }
            }
        }
    }
}

/** bench_fig5_hammer_sweep: explicit hammer, one tiny run. */
TEST(BenchSmoke, Fig5ExplicitHammerPath)
{
    Machine machine(MachineConfig::testSmall());
    AttackConfig attack = tinyAttack();
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    ExplicitHammer hammer(machine, attack);
    hammer.setup(8ull << 20);
    double cycles = hammer.measureIterationCycles(/*nopPadding=*/100);
    EXPECT_GT(cycles, 0.0);
    ExplicitHammerResult r = hammer.run(/*nopPadding=*/0,
                                        /*budgetSeconds=*/2.0);
    EXPECT_GT(r.pairsHammered, 0u);
}

/** bench_fig6_hammer_times + bench_ablation: detailed iterations. */
TEST(BenchSmoke, Fig6ImplicitTimingPath)
{
    Machine machine(MachineConfig::testSmall());
    PThammerAttack pthammer(machine, tinyAttack());
    pthammer.prepare();
    auto pair = pthammer.pairs().next();
    ASSERT_TRUE(pair.has_value());
    auto timings = pthammer.hammer().measureRounds(*pair, 5);
    EXPECT_EQ(timings.size(), 5u);
    for (Cycles t : timings)
        EXPECT_GT(t, 0u);
}

/** bench_pair_finding: pair quality against the kernel module. */
TEST(BenchSmoke, PairFindingPath)
{
    Machine machine(MachineConfig::testSmall());
    PThammerAttack pthammer(machine, tinyAttack());
    pthammer.prepare();
    KernelModule module(machine);
    auto pair = pthammer.pairs().next();
    ASSERT_TRUE(pair.has_value());
    Process &proc = machine.cpu().process();
    // The predicates must answer; quality thresholds live in the
    // dedicated attack tests.
    module.l1ptesSameBank(proc, pair->va1, pair->va2);
    EXPECT_GT(pthammer.pairs().candidatesTried(), 0u);
}

/** bench_selection_fp: Algorithm 2 selection round-trips. */
TEST(BenchSmoke, SelectionPath)
{
    Machine machine(MachineConfig::testSmall());
    AttackConfig attack = tinyAttack();
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    SprayManager sprayer(machine, attack);
    sprayer.spray();
    TlbEvictionTool tlb(machine, attack);
    tlb.prepare();
    LlcEvictionPool pool(machine, attack);
    pool.allocateBuffer();
    pool.buildSuperpage(2);
    EvictionSetSelector selector(machine, attack, pool, tlb);
    SetSelection sel = selector.select(sprayer.randomTarget(3000));
    EXPECT_GT(sel.elapsed, 0u);
}

/**
 * bench_table2_attack_times / bench_defenses / bench_ablation all
 * drive their sweeps through the campaign runner now; one tiny
 * campaign per strategy keeps those paths covered.
 */
TEST(BenchSmoke, CampaignStrategiesPath)
{
    Campaign campaign;

    RunSpec explicitSpec;
    explicitSpec.label = "explicit";
    explicitSpec.preset = MachinePreset::TestSmall;
    explicitSpec.strategy = HammerStrategy::Explicit;
    explicitSpec.attack = tinyAttack();
    explicitSpec.attack.hammerBudgetSeconds = 2.0;
    explicitSpec.explicitBufferBytes = 8ull << 20;
    campaign.add(explicitSpec);

    RunSpec implicitSpec;
    implicitSpec.label = "implicit";
    implicitSpec.preset = MachinePreset::TestSmall;
    implicitSpec.strategy = HammerStrategy::Implicit;
    implicitSpec.attack = tinyAttack();
    implicitSpec.attack.hammerIterations = 200;
    campaign.add(implicitSpec);

    RunSpec fullSpec;
    fullSpec.label = "pthammer";
    fullSpec.preset = MachinePreset::TestSmall;
    fullSpec.strategy = HammerStrategy::PThammer;
    fullSpec.attack = tinyAttack();
    campaign.add(fullSpec);

    CampaignOptions options;
    options.threads = 3;
    std::vector<RunResult> results = campaign.run(options);
    ASSERT_EQ(results.size(), 3u);
    for (const RunResult &r : results) {
        EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
        EXPECT_GT(r.simSeconds, 0.0) << r.label;
    }
    EXPECT_EQ(results[0].strategy, "explicit");
    EXPECT_EQ(results[1].strategy, "implicit");
    EXPECT_EQ(results[2].strategy, "pthammer");

    Table table = Campaign::summaryTable(results);
    EXPECT_NE(table.render().find("pthammer"), std::string::npos);
}

/**
 * Every bench accepts --dram-model; this covers the campaign path a
 * bench takes under --dram-model=trr (the CI matrix runs one bench
 * that way for real): the run must complete, install the TRR model,
 * and the mitigation must not report explicit double-sided flips.
 */
TEST(BenchSmoke, CampaignTrrModelPath)
{
    Campaign campaign;

    RunSpec spec;
    spec.label = "explicit/trr";
    spec.preset = MachinePreset::TestSmall;
    spec.strategy = HammerStrategy::Explicit;
    spec.dramModel = FlipModelKind::Trr;
    spec.attack = tinyAttack();
    spec.attack.hammerBudgetSeconds = 2.0;
    spec.explicitBufferBytes = 8ull << 20;
    spec.tweakMachine = [](MachineConfig &config) {
        EXPECT_EQ(config.disturbance.flipModel, FlipModelKind::Trr);
        EXPECT_NE(config.dramModel.find("TRR"), std::string::npos);
    };
    campaign.add(spec);

    std::vector<RunResult> results = campaign.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[0].flipped);
    EXPECT_EQ(results[0].flips, 0u);
}

/**
 * bench_machine_setup: an attack-scoped seed sweep with a custom body
 * runs warm-forked by default and reports byte-identically to a
 * cold-machines rerun (the snapshot contract the bench gates in CI).
 */
TEST(BenchSmoke, MachineSetupPath)
{
    RunSpec base;
    base.label = "setup";
    base.preset = MachinePreset::TestSmall;
    base.body = [](Machine &machine, const AttackConfig &attack,
                   RunResult &res) {
        Process &proc = machine.kernel().createProcess(1000);
        machine.cpu().setProcess(proc);
        machine.kernel().mmapAnon(proc, 0x2400'0000, 8 * kPageBytes);
        machine.cpu().access(0x2400'0000 + (attack.seed % 8) * 64);
        res.metrics.emplace_back(
            "state_fp", static_cast<double>(
                            machine.stateFingerprint() & 0xffffffff));
    };
    Campaign campaign;
    campaign.addAttackSeedSweep(base, /*seedBase=*/100, 3);

    CampaignOptions warm;
    CampaignOptions cold;
    cold.reuseMachines = false;
    std::vector<RunResult> results = campaign.run(warm);
    ASSERT_EQ(results.size(), 3u);
    for (const RunResult &r : results)
        EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_EQ(Campaign::toJson(results),
              Campaign::toJson(campaign.run(cold)));
}

/**
 * bench_multicore_hammer: the multi-hart strategy runs end to end at
 * tiny scale — bank-synchronized pair selection, interleaved detailed
 * phase, analytic bulk — and a victim hart records its latency.
 */
TEST(BenchSmoke, MulticoreHammerPath)
{
    RunSpec spec;
    spec.label = "multihart";
    spec.preset = MachinePreset::TestSmall;
    spec.strategy = HammerStrategy::MultiHart;
    spec.harts = 2;
    spec.attack = tinyAttack();
    spec.attack.victimHarts = 1;
    RunResult res = Campaign::runOne(spec, 0);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.metrics.size(), 5u);
    EXPECT_EQ(res.metrics[0].first, "aggressorHarts");
    EXPECT_EQ(res.metrics[0].second, 1.0);
    EXPECT_EQ(res.metrics[1].second, 1.0);  // victimHarts
    EXPECT_GT(res.metrics[4].second, 0.0);  // victimMeanLatency
    EXPECT_GT(res.attempts, 0u);
}

} // namespace
} // namespace pth
