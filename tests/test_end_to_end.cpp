/**
 * @file
 * End-to-end attack tests on the scaled-down machine: the full
 * PThammer pipeline reaches cross-boundary bit flips (and escalation),
 * and the defense policies behave as Section IV-G reports — including
 * ZebRAM, the one defense the paper concedes it cannot beat.
 */

#include <gtest/gtest.h>

#include "attack/pthammer.hh"
#include "cpu/machine.hh"

namespace pth
{
namespace
{

AttackConfig
smallAttack()
{
    AttackConfig a;
    a.superpages = true;
    a.sprayBytes = 24ull << 20;
    a.superpageSampleClasses = 2;
    a.maxAttempts = 120;
    a.hammerBudgetSeconds = 36000;
    return a;
}

TEST(EndToEnd, PThammerFlipsAcrossTheBoundary)
{
    Machine machine(MachineConfig::testSmall());
    PThammerAttack attack(machine, smallAttack());
    AttackReport report = attack.run();
    EXPECT_TRUE(report.flipped);
    EXPECT_GT(report.flipsObserved, 0u);
    EXPECT_GT(report.attempts, 0u);
    EXPECT_GT(report.hammerMs, 0.0);
    EXPECT_GT(report.checkSeconds, 0.0);
}

TEST(EndToEnd, ReportContainsAllTableIIphases)
{
    Machine machine(MachineConfig::testSmall());
    PThammerAttack attack(machine, smallAttack());
    attack.prepare();
    const AttackReport &prep = attack.prepReport();
    EXPECT_GT(prep.tlbPrepMs, 0.0);
    EXPECT_GT(prep.llcPrepMinutes, 0.0);
    EXPECT_GT(prep.sprayMs, 0.0);
}

TEST(EndToEnd, EscalationOnUndefendedKernel)
{
    // With a large spray fraction, a visible flip lands on an L1PT
    // with good probability; allow several flips.
    MachineConfig config = MachineConfig::testSmall();
    config.disturbance.weakRowProbability = 0.15;
    Machine machine(config);
    AttackConfig a = smallAttack();
    a.sprayBytes = 48ull << 20;
    a.maxAttempts = 400;
    PThammerAttack attack(machine, a);
    AttackReport report = attack.run();
    EXPECT_TRUE(report.flipped);
    EXPECT_TRUE(report.escalated) << "no escalation after "
                                  << report.flipsObserved << " flips";
}

TEST(EndToEnd, CattDoesNotStopImplicitHammer)
{
    MachineConfig config = MachineConfig::testSmall();
    config.defense = DefenseKind::Catt;
    config.disturbance.weakRowProbability = 0.15;
    Machine machine(config);
    AttackConfig a = smallAttack();
    // The kernel zone of the small machine is 64 MiB; leave room for
    // the 24 MiB page-table spray after the exhaustion step.
    a.exhaustKernelFraction = 0.4;
    a.maxAttempts = 200;
    PThammerAttack attack(machine, a);
    AttackReport report = attack.run();
    // Page tables live in CATT's protected kernel zone, yet the
    // processor hammers them for us.
    EXPECT_TRUE(report.flipped);
}

TEST(EndToEnd, ZebRamPreventsExploitableFlips)
{
    MachineConfig config = MachineConfig::testSmall();
    config.defense = DefenseKind::ZebRam;
    config.disturbance.weakRowProbability = 0.15;
    Machine machine(config);
    AttackConfig a = smallAttack();
    a.maxAttempts = 60;
    // ZebRAM halves usable memory and breaks 2 MiB frame contiguity,
    // so the attacker falls back to regular 4 KiB pages.
    a.superpages = false;
    a.regularSampleClasses = 1;
    a.regularSampleGroups = 2;
    PThammerAttack attack(machine, a);
    AttackReport report = attack.run();
    // Victim rows are guard rows: flips may happen physically but
    // never corrupt attacker-visible L1PTEs.
    EXPECT_FALSE(report.flipped);
    EXPECT_FALSE(report.escalated);
}

TEST(EndToEnd, DeterministicAcrossRuns)
{
    AttackConfig a = smallAttack();
    a.maxAttempts = 15;
    Machine m1(MachineConfig::testSmall());
    Machine m2(MachineConfig::testSmall());
    AttackReport r1 = PThammerAttack(m1, a).run();
    AttackReport r2 = PThammerAttack(m2, a).run();
    EXPECT_EQ(r1.attempts, r2.attempts);
    EXPECT_EQ(r1.flipsObserved, r2.flipsObserved);
    EXPECT_DOUBLE_EQ(r1.hammerMs, r2.hammerMs);
}

} // namespace
} // namespace pth
