/**
 * @file
 * CLI-level tests for the operator tools: campaign_merge,
 * campaign_compare, campaign_query and campaign_ctl are exercised as
 * subprocesses — the way CI and operators run them — pinning exit
 * codes (regression counts, usage errors), corrupt-input tolerance
 * and the merge byte contract. Tool paths come from the build via
 * PTH_TOOL_* compile definitions.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "harness/campaign.hh"
#include "harness/result_store.hh"

namespace pth
{
namespace
{

/** One tool invocation: exit code plus captured stdout/stderr. */
struct CliResult
{
    int exit = -1;
    std::string out;
    std::string err;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Run `tool args...` through the shell, capturing everything. Paths
 * in args must not need quoting beyond the double quotes added. */
CliResult
runCli(const std::string &tool,
       const std::vector<std::string> &args)
{
    const std::string outPath = testing::TempDir() + "pth_cli_out";
    const std::string errPath = testing::TempDir() + "pth_cli_err";
    std::string cmd = "\"" + tool + "\"";
    for (const std::string &arg : args)
        cmd += " \"" + arg + "\"";
    cmd += " > \"" + outPath + "\" 2> \"" + errPath + "\"";

    CliResult result;
    const int status = std::system(cmd.c_str());
    result.exit = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    result.out = readFile(outPath);
    result.err = readFile(errPath);
    std::remove(outPath.c_str());
    std::remove(errPath.c_str());
    return result;
}

std::string
tempPath(const char *name)
{
    const std::string path = testing::TempDir() + "pth_cli_" + name;
    std::remove(path.c_str());
    return path;
}

RunResult
makeRun(std::size_t index, std::uint64_t flips)
{
    RunResult r;
    r.index = index;
    r.label = "cli" + std::to_string(index);
    r.machine = "Test Small";
    r.defense = "none";
    r.strategy = "pthammer";
    r.dramModel = "ddr3";
    r.seed = 10 + index;
    r.flips = flips;
    r.flipped = flips > 0;
    r.attempts = 1;
    r.simSeconds = static_cast<double>(index + 1);
    r.report.flipped = r.flipped;
    r.report.timeToFirstFlipMinutes = r.flipped ? 1.0 : 0.0;
    return r;
}

void
writeJournal(const std::string &path,
             const std::vector<RunResult> &runs)
{
    std::ofstream out(path, std::ios::trunc);
    for (const RunResult &r : runs)
        out << ResultStore::serialize(r, 100 + r.index) << '\n';
}

// ---------------------------------------------------------------- //
// campaign_merge                                                   //
// ---------------------------------------------------------------- //

TEST(CampaignMergeCli, MergesShardsAndCountsSupersededDuplicates)
{
    const std::string a = tempPath("merge_a.jsonl");
    const std::string b = tempPath("merge_b.jsonl");
    const std::string out = tempPath("merge_out.jsonl");
    writeJournal(a, {makeRun(0, 1), makeRun(1, 1)});
    writeJournal(b, {makeRun(1, 9), makeRun(2, 2)});

    const CliResult result =
        runCli(PTH_TOOL_CAMPAIGN_MERGE, {a, b, "-o", out});
    EXPECT_EQ(result.exit, 0) << result.err;
    EXPECT_NE(result.err.find("merged 3 run(s) from 2 journal(s)"),
              std::string::npos)
        << result.err;
    EXPECT_NE(result.err.find("1 superseded"), std::string::npos);

    // Byte contract: the file equals the library merge of the same
    // inputs in the same order.
    const std::string expected = tempPath("merge_lib.jsonl");
    ASSERT_TRUE(ResultStore::merge({a, b}, expected));
    EXPECT_EQ(readFile(out), readFile(expected));

    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(out.c_str());
    std::remove(expected.c_str());
}

TEST(CampaignMergeCli, ToleratesCorruptAndMissingInputs)
{
    const std::string a = tempPath("merge_torn.jsonl");
    const std::string out = tempPath("merge_torn_out.jsonl");
    {
        std::ofstream os(a, std::ios::trunc);
        os << ResultStore::serialize(makeRun(0, 1), 100) << '\n';
        os << "{\"torn\":  \n";
    }
    const CliResult result = runCli(
        PTH_TOOL_CAMPAIGN_MERGE, {a, "/nonexistent/s1.jsonl", "-o",
                                  out});
    EXPECT_EQ(result.exit, 0) << result.err;
    EXPECT_NE(result.err.find("skipped 1 corrupt line(s)"),
              std::string::npos)
        << result.err;
    EXPECT_NE(result.err.find("1 input journal(s) missing"),
              std::string::npos);

    // All inputs missing: hard failure, no output left behind.
    const CliResult nothing = runCli(
        PTH_TOOL_CAMPAIGN_MERGE,
        {"/nonexistent/s0.jsonl", "-o", out + ".none"});
    EXPECT_EQ(nothing.exit, 1);
    EXPECT_NE(nothing.err.find("no readable input journal"),
              std::string::npos);
    EXPECT_TRUE(readFile(out + ".none").empty());

    std::remove(a.c_str());
    std::remove(out.c_str());
}

TEST(CampaignMergeCli, UsageErrorsExitTwo)
{
    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_MERGE, {}).exit, 2);
    EXPECT_EQ(
        runCli(PTH_TOOL_CAMPAIGN_MERGE, {"--bogus", "x.jsonl"}).exit,
        2);
    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_MERGE, {"--help"}).exit, 0);
}

// ---------------------------------------------------------------- //
// campaign_compare                                                 //
// ---------------------------------------------------------------- //

TEST(CampaignCompareCli, ExitStatusIsTheRegressionCount)
{
    const std::string base = tempPath("cmp_base.jsonl");
    const std::string same = tempPath("cmp_same.jsonl");
    const std::string worse = tempPath("cmp_worse.jsonl");
    const std::vector<RunResult> runs = {makeRun(0, 3), makeRun(1, 2),
                                         makeRun(2, 0)};
    writeJournal(base, runs);
    writeJournal(same, runs);
    std::vector<RunResult> regressed = runs;
    regressed[0].flips = 1;         // fewer flips
    regressed[1].ok = false;        // now fails
    regressed[1].error = "boom";
    writeJournal(worse, regressed);

    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_COMPARE, {base, same}).exit, 0);
    const CliResult result =
        runCli(PTH_TOOL_CAMPAIGN_COMPARE, {base, worse});
    EXPECT_EQ(result.exit, 2) << result.out;
    EXPECT_NE(result.out.find("2 regressed"), std::string::npos)
        << result.out;
    EXPECT_NE(result.out.find("REGRESSION"), std::string::npos);

    std::remove(base.c_str());
    std::remove(same.c_str());
    std::remove(worse.c_str());
}

TEST(CampaignCompareCli, BadArtifactsAndCorruptLinesAreSurfaced)
{
    const std::string good = tempPath("cmp_good.jsonl");
    writeJournal(good, {makeRun(0, 1)});

    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_COMPARE,
                     {"/nonexistent/a.jsonl", good})
                  .exit,
              2);
    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_COMPARE, {good}).exit, 2);

    // A torn line warns but does not fail the comparison.
    const std::string torn = tempPath("cmp_torn.jsonl");
    {
        std::ofstream os(torn, std::ios::trunc);
        os << ResultStore::serialize(makeRun(0, 1), 100) << '\n';
        os << "{{{\n";
    }
    const CliResult result =
        runCli(PTH_TOOL_CAMPAIGN_COMPARE, {good, torn});
    EXPECT_EQ(result.exit, 0) << result.err;
    EXPECT_NE(result.err.find("skipped 1 corrupt journal line(s)"),
              std::string::npos)
        << result.err;

    std::remove(good.c_str());
    std::remove(torn.c_str());
}

// ---------------------------------------------------------------- //
// campaign_query                                                   //
// ---------------------------------------------------------------- //

TEST(CampaignQueryCli, FiltersGroupsAndFoldsArtifacts)
{
    const std::string a = tempPath("query_a.jsonl");
    const std::string b = tempPath("query_b.jsonl");
    std::vector<RunResult> runs = {makeRun(0, 1), makeRun(1, 0)};
    runs[1].defense = "trr";
    writeJournal(a, runs);
    writeJournal(b, {makeRun(1, 5)}); // supersedes run 1

    CliResult result = runCli(PTH_TOOL_CAMPAIGN_QUERY, {a, b});
    EXPECT_EQ(result.exit, 0) << result.err;
    EXPECT_NE(result.out.find("2 run(s) selected of 2 indexed"),
              std::string::npos)
        << result.out;
    EXPECT_NE(result.out.find("1 superseded"), std::string::npos);

    result = runCli(PTH_TOOL_CAMPAIGN_QUERY,
                    {a, "--filter", "defense=trr"});
    EXPECT_EQ(result.exit, 0);
    EXPECT_NE(result.out.find("cli1"), std::string::npos);
    EXPECT_EQ(result.out.find("cli0"), std::string::npos)
        << result.out;
    EXPECT_NE(result.out.find("1 run(s) selected of 2"),
              std::string::npos);

    result = runCli(PTH_TOOL_CAMPAIGN_QUERY,
                    {a, "--group-by", "defense"});
    EXPECT_EQ(result.exit, 0);
    EXPECT_NE(result.out.find("none"), std::string::npos);
    EXPECT_NE(result.out.find("trr"), std::string::npos);

    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_QUERY,
                     {a, "--filter", "bogus=1"})
                  .exit,
              2);
    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_QUERY,
                     {a, "--group-by", "bogus"})
                  .exit,
              2);
    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_QUERY, {}).exit, 2);

    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(CampaignQueryCli, TrendSharesTheCompareRegressionRules)
{
    const std::string base = tempPath("trend_base.jsonl");
    const std::string worse = tempPath("trend_worse.jsonl");
    writeJournal(base, {makeRun(0, 3)});
    std::vector<RunResult> regressed = {makeRun(0, 1)};
    writeJournal(worse, regressed);

    const CliResult result = runCli(
        PTH_TOOL_CAMPAIGN_QUERY, {"--trend", base, worse});
    EXPECT_EQ(result.exit, 1) << result.out;
    EXPECT_NE(result.out.find("1 regressed"), std::string::npos)
        << result.out;
    EXPECT_EQ(
        runCli(PTH_TOOL_CAMPAIGN_QUERY, {"--trend", base, base}).exit,
        0);
    // --trend needs exactly two artifacts.
    EXPECT_EQ(
        runCli(PTH_TOOL_CAMPAIGN_QUERY, {"--trend", base}).exit, 2);

    std::remove(base.c_str());
    std::remove(worse.c_str());
}

// ---------------------------------------------------------------- //
// campaign_ctl                                                     //
// ---------------------------------------------------------------- //

TEST(CampaignCtlCli, UsageAndManifestErrorsExitTwo)
{
    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_CTL, {"--help"}).exit, 0);
    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_CTL, {}).exit, 2);
    EXPECT_EQ(runCli(PTH_TOOL_CAMPAIGN_CTL,
                     {"/nonexistent/manifest.json"})
                  .exit,
              2);

    const std::string manifest = tempPath("ctl_bad.json");
    {
        std::ofstream os(manifest, std::ios::trunc);
        os << R"({"campaigns": [{"name": "a", "program": "x",
                  "shardz": 2}]})";
    }
    const CliResult result =
        runCli(PTH_TOOL_CAMPAIGN_CTL, {manifest});
    EXPECT_EQ(result.exit, 2);
    EXPECT_NE(result.err.find("unknown key"), std::string::npos)
        << result.err;

    // --inject-kill must name a shard the manifest actually has.
    const std::string ok = tempPath("ctl_ok.json");
    {
        std::ofstream os(ok, std::ios::trunc);
        os << R"({"campaigns": [{"name": "a", "program": "/bin/true",
                  "shards": 2}]})";
    }
    const CliResult inject = runCli(
        PTH_TOOL_CAMPAIGN_CTL, {ok, "--inject-kill", "a/7"});
    EXPECT_EQ(inject.exit, 2);
    EXPECT_NE(inject.err.find("names no shard"), std::string::npos)
        << inject.err;

    std::remove(manifest.c_str());
    std::remove(ok.c_str());
}

TEST(CampaignCtlCli, PermanentWorkerDeathYieldsNonzeroExit)
{
    const std::string outDir = testing::TempDir() + "pth_cli_ctl";
    ::system(("mkdir -p \"" + outDir + "\"").c_str());
    const std::string manifest = tempPath("ctl_dead.json");
    {
        std::ofstream os(manifest, std::ios::trunc);
        os << R"({"campaigns": [{"name": "dead",
                  "program": "/nonexistent/bench"}]})";
    }
    const CliResult result = runCli(
        PTH_TOOL_CAMPAIGN_CTL,
        {manifest, "--out", outDir, "--fresh", "--quiet"});
    EXPECT_EQ(result.exit, 1) << result.err;
    EXPECT_NE(result.err.find("campaign dead failed"),
              std::string::npos)
        << result.err;
    EXPECT_NE(result.err.find("1 of 1 campaign(s) failed"),
              std::string::npos);
    EXPECT_NE(result.out.find("FAILED"), std::string::npos)
        << result.out;
    std::remove(manifest.c_str());
}

} // namespace
} // namespace pth
