/**
 * @file
 * Multi-hart Machine contract tests.
 *
 * The hard contract this suite pins: harts = 1 (the default) behaves
 * byte-identically to the single-hart implementation it replaced —
 * boot fingerprints, workload fingerprints under every DRAM flip
 * model, and a full end-to-end PThammer run are asserted against
 * values captured before the multi-hart refactor. On top of that:
 * per-hart state isolation (private L1/TLB, shared L2/LLC/DRAM),
 * interleaver determinism, journal spec-key compatibility, snapshot
 * fork equality at harts > 1 across all DRAM models, and campaign
 * byte-identity serial vs. threaded for multi-hart sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <vector>

#include "attack/pthammer.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "cpu/interleaver.hh"
#include "cpu/machine.hh"
#include "dram/flip_model.hh"
#include "harness/campaign.hh"
#include "harness/result_store.hh"

namespace pth
{
namespace
{

constexpr VirtAddr kVa = 0x2400'0000;

/** The pre-refactor fingerprint of a freshly booted test machine. */
constexpr std::uint64_t kBootFp = 0x24a8f5ea26469b9bull;

/** Pre-refactor fingerprints of the reference workload per model. */
constexpr std::uint64_t kWorkloadFp[] = {
    0x70f151caa4acdc03ull,  // Ddr3Seeded
    0x4dd934d420c05862ull,  // Trr
    0x70f151caa4acdc03ull,  // Distance2 (same traffic, no flips land)
    0xaee330609e2c5545ull,  // Ecc
};

constexpr FlipModelKind kModels[] = {
    FlipModelKind::Ddr3Seeded,
    FlipModelKind::Trr,
    FlipModelKind::Distance2,
    FlipModelKind::Ecc,
};

/** Pre-refactor journal key of a default-constructed RunSpec. */
constexpr std::uint64_t kDefaultSpecKey = 0x99683127729adf60ull;

/**
 * The reference workload the pre-refactor fingerprints were captured
 * from: translation, cache and DRAM traffic with periodic clflushes,
 * finished by a batched access burst.
 */
void
referenceWorkload(Machine &machine)
{
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    machine.kernel().mmapAnon(proc, kVa, 64 * kPageBytes);
    Rng rng(0xfeed);
    for (int i = 0; i < 400; ++i) {
        VirtAddr va =
            kVa + rng.below(64) * kPageBytes + rng.below(8) * 64;
        machine.cpu().access(va);
        if (i % 23 == 0)
            machine.cpu().clflush(va);
    }
    std::vector<VirtAddr> batch;
    for (int i = 0; i < 32; ++i)
        batch.push_back(kVa + rng.below(64) * kPageBytes);
    machine.cpu().accessBatch(batch);
}

/** Per-hart traffic on a multi-hart machine (hart h, own process). */
void
hartTraffic(Machine &machine, unsigned hart, std::uint64_t salt)
{
    Process &proc =
        machine.kernel().createProcess(2000 + hart);
    machine.kernel().mmapAnon(proc, kVa, 32 * kPageBytes);
    machine.cpu(hart).setProcess(proc);
    Rng rng(0x4a27 + salt);
    for (int i = 0; i < 200; ++i)
        machine.cpu(hart).access(
            kVa + rng.below(32) * kPageBytes + rng.below(8) * 64);
}

} // namespace

// ---------------------------------------------------------------------
// harts = 1 is byte-identical to the pre-refactor implementation.
// ---------------------------------------------------------------------

TEST(MultiHartPins, BootFingerprintUnchanged)
{
    MachineConfig config = MachineConfig::testSmall();
    ASSERT_EQ(config.harts, 1u);
    Machine machine(config);
    EXPECT_EQ(machine.hartCount(), 1u);
    EXPECT_EQ(machine.stateFingerprint(), kBootFp);
}

TEST(MultiHartPins, WorkloadFingerprintsUnchangedAllModels)
{
    for (std::size_t i = 0; i < std::size(kModels); ++i) {
        MachineConfig config = MachineConfig::testSmall();
        if (kModels[i] != FlipModelKind::Ddr3Seeded)
            config.withDramModel(kModels[i]);
        Machine machine(config);
        referenceWorkload(machine);
        EXPECT_EQ(machine.stateFingerprint(), kWorkloadFp[i])
            << "model " << flipModelKindName(kModels[i]);
    }
}

/** The full end-to-end attack replays the pre-refactor capture:
 * same flips, same attempt count, same final machine state. */
TEST(MultiHartPins, PthammerRunUnchanged)
{
    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 24ull << 20;
    attack.superpageSampleClasses = 2;
    attack.maxAttempts = 120;
    attack.hammerBudgetSeconds = 36000;
    Machine machine(MachineConfig::testSmall());
    PThammerAttack pthammer(machine, attack);
    AttackReport report = pthammer.run();
    EXPECT_EQ(report.flipsObserved, 9u);
    EXPECT_EQ(report.attempts, 120u);
    EXPECT_EQ(machine.stateFingerprint(), 0x9e30aa2afe6c2d60ull);
}

// ---------------------------------------------------------------------
// Journal spec keys: defaults unchanged, every new field folds in.
// ---------------------------------------------------------------------

TEST(MultiHartSpecKey, DefaultKeyUnchanged)
{
    RunSpec def;
    EXPECT_EQ(specKey(def), kDefaultSpecKey);
}

TEST(MultiHartSpecKey, NewFieldsPerturbTheKey)
{
    const RunSpec def;
    const std::uint64_t base = specKey(def);

    RunSpec harts = def;
    harts.harts = 2;
    EXPECT_NE(specKey(harts), base);

    RunSpec mode = def;
    mode.interleave = InterleaveMode::Seeded;
    EXPECT_NE(specKey(mode), base);

    RunSpec seed = def;
    seed.interleaveSeed = 7;
    EXPECT_NE(specKey(seed), base);
    EXPECT_NE(specKey(seed), specKey(mode));

    RunSpec victims = def;
    victims.attack.victimHarts = 1;
    EXPECT_NE(specKey(victims), base);

    RunSpec pages = def;
    pages.attack.victimTrafficPages = 16;
    EXPECT_NE(specKey(pages), base);

    RunSpec slot = def;
    slot.attack.victimAccessesPerSlot = 2;
    EXPECT_NE(specKey(slot), base);
}

// ---------------------------------------------------------------------
// Interleaver: deterministic merge order.
// ---------------------------------------------------------------------

TEST(MultiHartInterleaver, RoundRobinCyclesAndFinish)
{
    Interleaver rr(InterleaveMode::RoundRobin, 0, 3);
    EXPECT_EQ(rr.next(), 0u);
    EXPECT_EQ(rr.next(), 1u);
    EXPECT_EQ(rr.next(), 2u);
    EXPECT_EQ(rr.next(), 0u);
    rr.finish(1);
    EXPECT_EQ(rr.activeCount(), 2u);
    EXPECT_EQ(rr.next(), 2u);
    EXPECT_EQ(rr.next(), 0u);
    EXPECT_EQ(rr.next(), 2u);
    rr.finish(0);
    rr.finish(2);
    EXPECT_TRUE(rr.done());
}

TEST(MultiHartInterleaver, SeededIsReproduciblePerSeed)
{
    auto sequence = [](std::uint64_t seed) {
        Interleaver il(InterleaveMode::Seeded, seed, 4);
        std::vector<unsigned> order;
        for (int i = 0; i < 64; ++i)
            order.push_back(il.next());
        return order;
    };
    EXPECT_EQ(sequence(1), sequence(1));
    EXPECT_NE(sequence(1), sequence(2));

    // Every hart gets scheduled (no starvation over a long window).
    std::vector<unsigned> order = sequence(1);
    for (unsigned hart = 0; hart < 4; ++hart)
        EXPECT_NE(std::count(order.begin(), order.end(), hart), 0)
            << "hart " << hart << " never scheduled";
}

TEST(MultiHartInterleaver, ModeNamesRoundTrip)
{
    InterleaveMode mode = InterleaveMode::RoundRobin;
    EXPECT_TRUE(parseInterleaveMode("seeded", mode));
    EXPECT_EQ(mode, InterleaveMode::Seeded);
    EXPECT_TRUE(parseInterleaveMode("random", mode));
    EXPECT_EQ(mode, InterleaveMode::Seeded);
    EXPECT_TRUE(parseInterleaveMode("round-robin", mode));
    EXPECT_EQ(mode, InterleaveMode::RoundRobin);
    EXPECT_TRUE(parseInterleaveMode("rr", mode));
    EXPECT_EQ(mode, InterleaveMode::RoundRobin);
    EXPECT_FALSE(parseInterleaveMode("bogus", mode));
    EXPECT_STREQ(interleaveModeName(InterleaveMode::RoundRobin),
                 "round-robin");
    EXPECT_STREQ(interleaveModeName(InterleaveMode::Seeded), "seeded");
}

// ---------------------------------------------------------------------
// Topology: private L1/TLB per hart, shared L2/LLC/DRAM.
// ---------------------------------------------------------------------

TEST(MultiHartTopology, HartTrafficTouchesOnlyItsOwnL1AndTlb)
{
    MachineConfig config = MachineConfig::testSmall();
    config.harts = 4;
    Machine machine(config);
    ASSERT_EQ(machine.hartCount(), 4u);
    ASSERT_EQ(machine.caches().hartCount(), 4u);

    std::vector<std::uint64_t> l1Before;
    std::vector<std::uint64_t> mmuBefore;
    for (unsigned h = 0; h < 4; ++h) {
        l1Before.push_back(machine.caches().l1d(h).stateHash());
        mmuBefore.push_back(machine.mmu(h).stateHash());
    }
    const std::uint64_t l2Before = machine.caches().l2().stateHash();

    hartTraffic(machine, 2, 0);

    for (unsigned h = 0; h < 4; ++h) {
        if (h == 2)
            continue;
        EXPECT_EQ(machine.caches().l1d(h).stateHash(), l1Before[h])
            << "hart " << h << " L1 touched by hart 2 traffic";
        EXPECT_EQ(machine.mmu(h).stateHash(), mmuBefore[h])
            << "hart " << h << " TLB touched by hart 2 traffic";
    }
    EXPECT_NE(machine.caches().l1d(2).stateHash(), l1Before[2]);
    EXPECT_NE(machine.mmu(2).stateHash(), mmuBefore[2]);
    // The shared levels see the traffic.
    EXPECT_NE(machine.caches().l2().stateHash(), l2Before);
}

TEST(MultiHartTopology, ClflushIsMachineWideCoherent)
{
    MachineConfig config = MachineConfig::testSmall();
    config.harts = 2;
    Machine machine(config);

    Process &proc = machine.kernel().createProcess(1000);
    machine.kernel().mmapAnon(proc, kVa, 4 * kPageBytes);
    machine.cpu(0).setProcess(proc);
    machine.cpu(1).setProcess(proc);

    // Warm the line on hart 1, flush from hart 0: hart 1's next
    // access must miss its L1 again (eviction reached every L1).
    machine.cpu(1).access(kVa);
    const Cycles warm = machine.cpu(1).access(kVa).latency;
    machine.cpu(0).clflush(kVa);
    const Cycles afterFlush = machine.cpu(1).access(kVa).latency;
    EXPECT_GT(afterFlush, warm);
}

/** One-element accessBatch is exactly access — same clock charge,
 * same cache/TLB state — on every hart. The audit behind it: both
 * paths must route data traffic through the same hart L1 now that
 * L2/LLC are shared. */
TEST(MultiHartTopology, AccessBatchSingleMatchesAccess)
{
    MachineConfig config = MachineConfig::testSmall();
    config.harts = 2;
    Machine viaAccess(config);
    Machine viaBatch(config);
    ASSERT_EQ(viaAccess.stateFingerprint(),
              viaBatch.stateFingerprint());

    for (Machine *machine : {&viaAccess, &viaBatch}) {
        Process &proc = machine->kernel().createProcess(1000);
        machine->kernel().mmapAnon(proc, kVa, 32 * kPageBytes);
        machine->cpu(1).setProcess(proc);
    }
    Rng rng(0xba7c4);
    for (int i = 0; i < 150; ++i) {
        VirtAddr va =
            kVa + rng.below(32) * kPageBytes + rng.below(8) * 64;
        viaAccess.cpu(1).access(va);
        viaBatch.cpu(1).accessBatch({va});
    }
    EXPECT_EQ(viaAccess.clock().now(), viaBatch.clock().now());
    EXPECT_EQ(viaAccess.caches().stateHash(),
              viaBatch.caches().stateHash());
    EXPECT_EQ(viaAccess.mmu(1).stateHash(),
              viaBatch.mmu(1).stateHash());
    EXPECT_EQ(viaAccess.stateFingerprint(),
              viaBatch.stateFingerprint());
}

// ---------------------------------------------------------------------
// Snapshot fork at harts > 1, across every DRAM model.
// ---------------------------------------------------------------------

TEST(MultiHartSnapshot, ForkEqualsOriginalAcrossModels)
{
    for (FlipModelKind model : kModels) {
        MachineConfig config = MachineConfig::testSmall();
        config.harts = 2;
        if (model != FlipModelKind::Ddr3Seeded)
            config.withDramModel(model);
        Machine machine(config);
        hartTraffic(machine, 0, 1);
        hartTraffic(machine, 1, 2);

        MachineSnapshot snap(machine);
        std::unique_ptr<Machine> forked = snap.instantiate();
        ASSERT_EQ(forked->hartCount(), 2u);
        EXPECT_EQ(forked->stateFingerprint(),
                  machine.stateFingerprint())
            << "model " << flipModelKindName(model);

        // Divergence isolation: driving the fork's hart 1 must not
        // move the original.
        const std::uint64_t before = machine.stateFingerprint();
        hartTraffic(*forked, 1, 3);
        EXPECT_NE(forked->stateFingerprint(), before);
        EXPECT_EQ(machine.stateFingerprint(), before)
            << "model " << flipModelKindName(model);
    }
}

TEST(MultiHartSnapshot, DistinctHartCountsDistinctFingerprints)
{
    MachineConfig one = MachineConfig::testSmall();
    MachineConfig four = MachineConfig::testSmall();
    four.harts = 4;
    EXPECT_FALSE(one == four);
    Machine a(one);
    Machine b(four);
    EXPECT_NE(a.stateFingerprint(), b.stateFingerprint());
}

// ---------------------------------------------------------------------
// Campaign determinism: multi-hart sweeps, serial vs. threaded.
// ---------------------------------------------------------------------

TEST(MultiHartCampaign, SerialAndThreadedReportsAreByteIdentical)
{
    Campaign campaign;
    for (unsigned harts : {2u, 4u}) {
        RunSpec spec;
        spec.label = strfmt("mh%u", harts);
        spec.strategy = HammerStrategy::MultiHart;
        spec.harts = harts;
        spec.attack.superpages = true;
        spec.attack.sprayBytes = 24ull << 20;
        spec.attack.superpageSampleClasses = 2;
        spec.attack.maxAttempts = 8;
        spec.attack.hammerBudgetSeconds = 36000;
        campaign.add(spec);
        RunSpec victims = spec;
        victims.label += "+victim";
        victims.attack.victimHarts = 1;
        victims.interleave = InterleaveMode::Seeded;
        victims.interleaveSeed = 11;
        campaign.add(victims);
    }
    CampaignOptions serial;
    serial.threads = 1;
    CampaignOptions threaded;
    threaded.threads = 8;
    const std::string serialJson =
        Campaign::toJson(campaign.run(serial));
    const std::string threadedJson =
        Campaign::toJson(campaign.run(threaded));
    EXPECT_EQ(serialJson, threadedJson);
    EXPECT_NE(serialJson.find("multihart"), std::string::npos);
}

} // namespace pth
