/**
 * @file
 * Sharded-dispatch tests: the headline contract is that an N-way
 * sharded-and-merged campaign report is byte-identical to the
 * single-process serial report — including when a worker is killed
 * (SIGKILL, nothing flushed) mid-shard and respawned to resume from
 * its own journal.
 *
 * The test binary is its own shard worker: invoked as
 * `test_shard --pth-worker [--die-at=K] [--die-marker=PATH] <bench
 * flags>` it behaves like a bench binary (BenchCli + runCampaign)
 * over a fixed 9-run campaign, so ShardRunner and the BenchCli
 * --workers parent path are exercised against real subprocesses.
 * --die-at=K makes the worker SIGKILL itself when it reaches run K;
 * with --die-marker the suicide happens only while the marker file
 * does not exist (created just before dying), so the respawned
 * worker survives — without it the worker dies on every attempt,
 * which is how a permanently lost shard is simulated.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/table.hh"
#include "harness/bench_cli.hh"
#include "harness/campaign.hh"
#include "harness/result_store.hh"
#include "harness/shard_runner.hh"

namespace pth
{
namespace shardtest
{

/** Path of this binary (from /proc/self/exe), for spawning workers. */
std::string gProgram;

/** Runs executed in this process (not served from a journal). */
std::atomic<unsigned> gExecutions{0};

constexpr unsigned kRuns = 9;
constexpr unsigned kNoDie = ~0u;

/**
 * The fixed campaign both the tests and the subprocess workers
 * build: custom bodies deriving every result field from the seed, so
 * any execution anywhere yields identical journal bytes.
 */
Campaign
makeCampaign(unsigned dieAtIndex = kNoDie,
             const std::string &dieMarker = std::string())
{
    Campaign campaign;
    for (unsigned i = 0; i < kRuns; ++i) {
        RunSpec spec;
        spec.label = strfmt("point%u", i);
        spec.preset = MachinePreset::TestSmall;
        spec.seed = 50 + i;
        spec.body = [dieAtIndex, dieMarker](Machine &,
                                            const AttackConfig &,
                                            RunResult &res) {
            if (res.index == dieAtIndex) {
                bool die = true;
                if (!dieMarker.empty()) {
                    if (std::ifstream(dieMarker).good()) {
                        die = false; // already died once; survive
                    } else {
                        std::ofstream mark(dieMarker);
                    }
                }
                if (die)
                    std::raise(SIGKILL); // nothing flushed, like kill -9
            }
            ++gExecutions;
            res.flips = (res.seed * 7) % 5;
            res.flipped = res.flips > 0;
            res.attempts = static_cast<unsigned>(res.index) + 1;
            res.metrics.emplace_back(
                "seed_sq", static_cast<double>(res.seed * res.seed));
            res.metrics.emplace_back(
                "inv", 1.0 / static_cast<double>(res.seed));
            res.report.flipped = res.flipped;
            res.report.timeToFirstFlipMinutes =
                res.flipped ? 0.25 * static_cast<double>(res.seed)
                            : 0.0;
        };
        campaign.add(spec);
    }
    return campaign;
}

/** Subprocess entry: argv[1] == "--pth-worker". */
int
workerMain(int argc, char **argv)
{
    unsigned dieAt = kNoDie;
    std::string marker;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 2; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--die-at=", 9))
            dieAt = static_cast<unsigned>(
                std::strtoul(argv[i] + 9, nullptr, 10));
        else if (!std::strncmp(argv[i], "--die-marker=", 13))
            marker = argv[i] + 13;
        else
            args.push_back(argv[i]);
    }
    BenchCli cli =
        BenchCli::parse(static_cast<int>(args.size()), args.data(),
                        "test_shard worker");
    Campaign campaign = makeCampaign(dieAt, marker);
    cli.runCampaign(campaign); // worker mode: exits inside
    return 0;
}

namespace
{

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "pth_shard_" + name;
}

void
removeFile(const std::string &path)
{
    std::remove(path.c_str());
}

std::string
serialReport()
{
    Campaign campaign = makeCampaign();
    CampaignOptions serial;
    serial.threads = 1;
    return Campaign::toJson(campaign.run(serial));
}

/** BenchCli::parse over a string argv (it may exit the process). */
BenchCli
parseArgs(std::vector<std::string> args,
          const std::vector<std::string> &passthrough = {})
{
    std::vector<char *> argv;
    for (std::string &arg : args)
        argv.push_back(arg.data());
    return BenchCli::parse(static_cast<int>(argv.size()),
                           argv.data(), "test_shard parent",
                           passthrough);
}

TEST(Shard, SlicingExecutesOnlyTheResidueClass)
{
    const std::string journal = tempPath("slice.jsonl");
    removeFile(journal);

    Campaign campaign = makeCampaign();
    CampaignOptions options;
    options.threads = 1;
    options.journalPath = journal;
    options.shardIndex = 1;
    options.shardCount = 3;

    gExecutions = 0;
    std::vector<RunResult> results = campaign.run(options);
    EXPECT_EQ(gExecutions.load(), 3u); // indices 1, 4, 7

    auto entries = ResultStore::load(journal);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_TRUE(entries.count(1) && entries.count(4) &&
                entries.count(7));

    // The full index-ordered result vector comes back: the slice is
    // real, everything else visibly not-executed.
    ASSERT_EQ(results.size(), kRuns);
    EXPECT_TRUE(results[4].ok);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("not executed"),
              std::string::npos);
    EXPECT_EQ(results[0].label, "point0"); // identity still filled

    removeFile(journal);
}

TEST(Shard, ShardedAndMergedReportByteIdenticalToSerial)
{
    const std::string expected = serialReport();

    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        Campaign campaign = makeCampaign();
        std::vector<std::string> shardJournals;
        for (unsigned s = 0; s < shards; ++s) {
            const std::string journal =
                tempPath(strfmt("nway%u_%u.jsonl", shards, s).c_str());
            removeFile(journal);
            shardJournals.push_back(journal);

            CampaignOptions options;
            options.threads = s % 2 ? 2 : 1; // mixed pool/serial
            options.journalPath = journal;
            options.shardIndex = s;
            options.shardCount = shards;
            campaign.run(options);
        }

        const std::string merged =
            tempPath(strfmt("nway%u_merged.jsonl", shards).c_str());
        removeFile(merged);
        ResultStore::MergeStats stats;
        ASSERT_TRUE(
            ResultStore::merge(shardJournals, merged, &stats));
        EXPECT_EQ(stats.entries, kRuns);
        EXPECT_EQ(stats.overwritten, 0u); // disjoint slices

        // Serving the merged journal executes nothing and renders
        // the same bytes as the serial uninterrupted run.
        CampaignOptions serve;
        serve.threads = 1;
        serve.journalPath = merged;
        gExecutions = 0;
        EXPECT_EQ(Campaign::toJson(campaign.run(serve)), expected)
            << shards << "-way sharded report diverged";
        EXPECT_EQ(gExecutions.load(), 0u);

        for (const std::string &journal : shardJournals)
            removeFile(journal);
        removeFile(merged);
    }
}

TEST(Shard, MergeIsLastWinsWithStableOrderingAndCorruptTolerance)
{
    const std::string a = tempPath("overlap_a.jsonl");
    const std::string b = tempPath("overlap_b.jsonl");
    const std::string merged = tempPath("overlap_merged.jsonl");
    removeFile(a);
    removeFile(b);
    removeFile(merged);

    auto entry = [](std::size_t index, std::uint64_t flips) {
        RunResult r;
        r.index = index;
        r.label = strfmt("point%zu", index);
        r.flips = flips;
        return r;
    };
    {
        ResultStore store(a, /*truncate=*/true);
        store.record(entry(3, 111), /*key=*/0xaaa);
        store.record(entry(1, 10), 0xbbb);
    }
    {
        ResultStore store(b, /*truncate=*/true);
        store.record(entry(2, 20), 0xccc);
        store.record(entry(3, 999), 0xddd); // overlaps a's run 3
    }
    std::ofstream(b, std::ios::app) << "{\"torn line\n";

    ResultStore::MergeStats stats;
    ASSERT_TRUE(ResultStore::merge({a, b}, merged, &stats));
    EXPECT_EQ(stats.inputs, 2u);
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(stats.overwritten, 1u);
    EXPECT_EQ(stats.corruptLines, 1u);

    // Last listed input wins the overlapped index.
    auto entries = ResultStore::load(merged);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[3].result.flips, 999u);
    EXPECT_EQ(entries[3].key, 0xdddu);

    // Stable ordering: ascending run index, canonical bytes.
    std::ifstream in(merged);
    std::string line;
    std::vector<std::size_t> order;
    while (std::getline(in, line)) {
        ResultStore::Entry parsed;
        ASSERT_TRUE(ResultStore::deserialize(line, parsed));
        order.push_back(parsed.result.index);
        EXPECT_EQ(ResultStore::serialize(parsed.result, parsed.key),
                  line);
    }
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 3}));

    // Reversing the input order flips the winner.
    ASSERT_TRUE(ResultStore::merge({b, a}, merged, &stats));
    entries = ResultStore::load(merged);
    EXPECT_EQ(entries[3].result.flips, 111u);

    removeFile(a);
    removeFile(b);
    removeFile(merged);
}

TEST(Shard, LoadReportsCorruptLineCount)
{
    const std::string journal = tempPath("corrupt_count.jsonl");
    removeFile(journal);
    {
        ResultStore store(journal, /*truncate=*/true);
        RunResult r;
        r.index = 0;
        r.label = "ok";
        store.record(r, 1);
    }
    {
        std::ofstream out(journal, std::ios::app);
        out << "garbage\n";
        out << "{\"v\": 1, \"key\": \"00\", \"index\"\n";
    }
    std::size_t corrupt = 0;
    auto entries = ResultStore::load(journal, &corrupt);
    EXPECT_EQ(entries.size(), 1u);
    EXPECT_EQ(corrupt, 2u);
    removeFile(journal);
}

TEST(Shard, AppendAfterTornLineDoesNotGlueRecords)
{
    const std::string journal = tempPath("torn_append.jsonl");
    removeFile(journal);
    {
        // A journal whose last line was cut mid-write, no newline.
        std::ofstream out(journal);
        out << "{\"v\": 1, \"key\": \"00";
    }
    {
        ResultStore store(journal, /*truncate=*/false);
        RunResult r;
        r.index = 5;
        r.label = "after-torn";
        store.record(r, 42);
    }
    std::size_t corrupt = 0;
    auto entries = ResultStore::load(journal, &corrupt);
    EXPECT_EQ(corrupt, 1u);       // the torn prefix, alone
    ASSERT_EQ(entries.size(), 1u); // the new record, intact
    EXPECT_EQ(entries[5].result.label, "after-torn");
    removeFile(journal);
}

TEST(Shard, KilledWorkerRespawnsResumesAndReportMatchesSerial)
{
    const std::string base = tempPath("kill.jsonl");
    const std::string marker = tempPath("kill.marker");
    const std::string merged = tempPath("kill_merged.jsonl");
    for (unsigned s = 0; s < 3; ++s) {
        removeFile(base + strfmt(".shard%u", s));
        removeFile(base + strfmt(".shard%u.log", s));
    }
    removeFile(marker);
    removeFile(merged);

    ShardRunnerOptions options;
    options.program = gProgram;
    // Worker 1 owns run 4 (4 % 3 == 1): it SIGKILLs itself there on
    // the first attempt, after checkpointing run 1.
    options.args = {"--pth-worker", "--die-at=4",
                    "--die-marker=" + marker};
    options.workers = 3;
    options.journalBase = base;
    options.fresh = true;
    ShardRunner runner(options);
    std::vector<ShardWorkerReport> reports = runner.run();

    ASSERT_EQ(reports.size(), 3u);
    unsigned respawned = 0;
    for (const ShardWorkerReport &report : reports) {
        EXPECT_TRUE(report.ok)
            << "worker " << report.shard << ": " << report.error;
        respawned += report.spawns > 1;
    }
    EXPECT_EQ(respawned, 1u);

    // The killed worker's journal holds its pre-death checkpoint AND
    // the resumed remainder — merged, the report is byte-identical
    // to serial.
    std::vector<std::string> shardJournals;
    for (unsigned s = 0; s < 3; ++s)
        shardJournals.push_back(runner.shardJournalPath(s));
    ASSERT_TRUE(ResultStore::merge(shardJournals, merged, nullptr));

    const std::string expected = serialReport();
    Campaign campaign = makeCampaign();
    CampaignOptions serve;
    serve.threads = 1;
    serve.journalPath = merged;
    gExecutions = 0;
    EXPECT_EQ(Campaign::toJson(campaign.run(serve)), expected);
    EXPECT_EQ(gExecutions.load(), 0u);

    for (const std::string &journal : shardJournals) {
        removeFile(journal);
        removeFile(journal + ".log");
    }
    removeFile(marker);
    removeFile(merged);
}

TEST(Shard, WorkersParentPathIsByteIdenticalAndResumable)
{
    const std::string journal = tempPath("parent.jsonl");
    for (unsigned s = 0; s < 4; ++s) {
        removeFile(journal + strfmt(".shard%u", s));
        removeFile(journal + strfmt(".shard%u.log", s));
    }
    removeFile(journal);

    Campaign campaign = makeCampaign();

    BenchCli first = parseArgs(
        {gProgram, "--workers=4", "--journal=" + journal, "--fresh"},
        {"--pth-worker"});
    std::vector<RunResult> results = first.runCampaign(campaign);
    EXPECT_EQ(first.workerDeaths, 0u);
    ASSERT_EQ(first.workerReports.size(), 4u);
    EXPECT_EQ(Campaign::toJson(results), serialReport());

    // Again without --fresh: workers resume their complete shard
    // journals, execute nothing, and the merge still serves the
    // identical report.
    BenchCli second = parseArgs(
        {gProgram, "--workers=4", "--journal=" + journal},
        {"--pth-worker"});
    EXPECT_EQ(Campaign::toJson(second.runCampaign(campaign)),
              serialReport());
    EXPECT_EQ(second.workerDeaths, 0u);

    for (unsigned s = 0; s < 4; ++s) {
        removeFile(journal + strfmt(".shard%u", s));
        removeFile(journal + strfmt(".shard%u.log", s));
    }
    removeFile(journal);
}

TEST(Shard, WorkersResumeFromTheParentJournal)
{
    const std::string journal = tempPath("seeded.jsonl");
    for (unsigned s = 0; s < 3; ++s) {
        removeFile(journal + strfmt(".shard%u", s));
        removeFile(journal + strfmt(".shard%u.log", s));
    }
    removeFile(journal);

    // Complete the campaign single-process into the parent journal.
    Campaign campaign = makeCampaign();
    CampaignOptions serial;
    serial.threads = 1;
    serial.journalPath = journal;
    const std::string expected =
        Campaign::toJson(campaign.run(serial));

    // Now run it with --workers, with workers rigged to die if they
    // ever EXECUTE run 4: the shard journals are seeded from the
    // parent journal, so nothing executes and nobody dies.
    BenchCli cli = parseArgs(
        {gProgram, "--workers=3", "--journal=" + journal},
        {"--pth-worker", "--die-at=4"});
    std::vector<RunResult> results = cli.runCampaign(campaign);
    EXPECT_EQ(cli.workerDeaths, 0u);
    EXPECT_EQ(Campaign::toJson(results), expected);

    for (unsigned s = 0; s < 3; ++s) {
        removeFile(journal + strfmt(".shard%u", s));
        removeFile(journal + strfmt(".shard%u.log", s));
    }
    removeFile(journal);
}

TEST(Shard, DeadWorkerSurfacesInReportAndFailureCount)
{
    const std::string journal = tempPath("dead.jsonl");
    for (unsigned s = 0; s < 3; ++s) {
        removeFile(journal + strfmt(".shard%u", s));
        removeFile(journal + strfmt(".shard%u.log", s));
    }
    removeFile(journal);

    Campaign campaign = makeCampaign();

    // No --die-marker: worker 1 dies at run 4 on every attempt.
    BenchCli cli = parseArgs(
        {gProgram, "--workers=3", "--journal=" + journal, "--fresh"},
        {"--pth-worker", "--die-at=4"});
    std::vector<RunResult> results = cli.runCampaign(campaign);

    EXPECT_EQ(cli.workerDeaths, 1u);
    ASSERT_EQ(cli.workerReports.size(), 3u);
    EXPECT_FALSE(cli.workerReports[1].ok);
    EXPECT_NE(cli.workerReports[1].error.find("signal"),
              std::string::npos);

    // Run 1 was checkpointed before the death; 4 and 7 were lost and
    // carry the death reason, so reportFailures (plus workerDeaths,
    // as every bench now sums) drives a nonzero exit.
    ASSERT_EQ(results.size(), kRuns);
    EXPECT_TRUE(results[1].ok);
    EXPECT_FALSE(results[4].ok);
    EXPECT_FALSE(results[7].ok);
    EXPECT_NE(results[4].error.find("died"), std::string::npos);
    EXPECT_GT(cli.failureCount(results), 0u);

    for (unsigned s = 0; s < 3; ++s) {
        removeFile(journal + strfmt(".shard%u", s));
        removeFile(journal + strfmt(".shard%u.log", s));
    }
    removeFile(journal);
}

TEST(ShardCliDeath, ShardRequiresJournalAndValidFormat)
{
    EXPECT_EXIT(parseArgs({gProgram, "--shard=0/3"}),
                testing::ExitedWithCode(2), "requires --journal");
    EXPECT_EXIT(parseArgs({gProgram, "--shard=3/3",
                           "--journal=x.jsonl"}),
                testing::ExitedWithCode(2), "bad --shard");
    EXPECT_EXIT(parseArgs({gProgram, "--shard=0/3",
                           "--journal=x.jsonl", "--workers=2"}),
                testing::ExitedWithCode(2), "mutually exclusive");
}

} // namespace
} // namespace shardtest
} // namespace pth

int
main(int argc, char **argv)
{
    // Resolve the binary's own path for fork/exec of shard workers;
    // argv[0] may be bare ("test_shard") under some launchers.
    char self[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    pth::shardtest::gProgram =
        n > 0 ? std::string(self, static_cast<std::size_t>(n))
              : std::string(argv[0]);

    if (argc > 1 && !std::strcmp(argv[1], "--pth-worker"))
        return pth::shardtest::workerMain(argc, argv);

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
