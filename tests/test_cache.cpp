/**
 * @file
 * Cache and hierarchy tests: set/slice indexing, fills and evictions,
 * the inclusion invariant with back-invalidation, and clflush.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/cache_hierarchy.hh"
#include "cache/slice_hash.hh"
#include "common/random.hh"
#include "dram/dram.hh"
#include "mem/physical_memory.hh"

namespace pth
{
namespace
{

CacheConfig
smallCache(unsigned ways = 4, std::uint64_t sets = 16, unsigned slices = 1)
{
    CacheConfig c;
    c.sets = sets;
    c.ways = ways;
    c.slices = slices;
    c.latency = 10;
    c.replacement = ReplacementKind::Lru;
    return c;
}

TEST(SliceHash, DeterministicAndInRange)
{
    for (unsigned slices : {1u, 2u, 4u, 8u}) {
        SliceHash hash(slices);
        Rng rng(slices);
        for (int i = 0; i < 1000; ++i) {
            PhysAddr pa = rng.next() & ((1ull << 33) - 1);
            unsigned s = hash.slice(pa);
            EXPECT_LT(s, slices);
            EXPECT_EQ(s, hash.slice(pa));
        }
    }
}

TEST(CacheStateHash, SeesReplacementOrder)
{
    // Three caches end up holding the same lines with the same
    // hit/miss counters; a and b reached them in opposite access
    // order, so their next victims differ and the digests must too.
    // Pins the snapshot-audit bug where Cache::stateHash ignored
    // replacement metadata.
    Cache a(smallCache(2), "a");
    Cache b(smallCache(2), "b");
    Cache c(smallCache(2), "c");
    PhysAddr x = 0;        // set 0, tag 0
    PhysAddr y = 16 * 64;  // set 0, tag 16
    for (Cache *cache : {&a, &b, &c}) {
        cache->fill(x);
        cache->fill(y);
    }
    a.access(x);
    a.access(y);
    b.access(y);
    b.access(x);
    c.access(x);
    c.access(y);
    EXPECT_NE(a.stateHash(), b.stateHash());
    EXPECT_EQ(a.stateHash(), c.stateHash());
}

TEST(SliceHash, SpreadsAcrossSlices)
{
    SliceHash hash(2);
    std::uint64_t counts[2] = {0, 0};
    for (PhysAddr pa = 0; pa < (1 << 22); pa += 64)
        ++counts[hash.slice(pa)];
    double ratio = static_cast<double>(counts[0]) /
                   static_cast<double>(counts[0] + counts[1]);
    EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(SliceHash, LowBitsDoNotAffectSlice)
{
    // The masks only tap bits >= 6, so a line's bytes share a slice.
    SliceHash hash(4);
    for (PhysAddr base = 0; base < (1 << 20); base += 4096) {
        unsigned s = hash.slice(base);
        EXPECT_EQ(hash.slice(base + 63), s);
    }
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallCache(), "t");
    EXPECT_FALSE(cache.access(0x1000));
    cache.fill(0x1000);
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1008));  // same line
    EXPECT_FALSE(cache.access(0x1040)); // next line
}

TEST(Cache, FillEvictsWhenSetFull)
{
    Cache cache(smallCache(4, 16));
    // 5 lines in the same set (stride = sets * 64).
    std::uint64_t stride = 16 * 64;
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(cache.fill(i * stride).has_value());
    auto evicted = cache.fill(4 * stride);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0u);  // LRU
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(4 * stride));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache(smallCache(), "t");
    cache.fill(0x2000);
    EXPECT_TRUE(cache.invalidate(0x2000));
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_FALSE(cache.invalidate(0x2000));
}

TEST(Cache, ValidLinesCounts)
{
    Cache cache(smallCache(), "t");
    EXPECT_EQ(cache.validLines(), 0u);
    cache.fill(0);
    cache.fill(64);
    cache.fill(128);
    EXPECT_EQ(cache.validLines(), 3u);
    cache.flushAll();
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(Cache, GlobalSetIncludesSlice)
{
    Cache cache(smallCache(4, 16, 2));
    bool sawDifferent = false;
    for (PhysAddr pa = 0; pa < (1 << 20); pa += 1024) {
        std::uint64_t gs = cache.globalSet(pa);
        EXPECT_LT(gs, 32u);
        if (gs >= 16)
            sawDifferent = true;
    }
    EXPECT_TRUE(sawDifferent);
}

TEST(Cache, SetIndexUsesLineBits)
{
    Cache cache(smallCache(4, 16));
    EXPECT_EQ(cache.setIndex(0), 0u);
    EXPECT_EQ(cache.setIndex(64), 1u);
    EXPECT_EQ(cache.setIndex(64 * 16), 0u);
}

struct HierarchyFixture : public ::testing::Test
{
    HierarchyFixture()
    {
        geometry.sizeBytes = 64ull << 20;
        geometry.banks = 32;
        geometry.rowBytes = 8192;
        mem = std::make_unique<PhysicalMemory>(geometry.sizeBytes);
        DisturbanceConfig dc;
        dc.refreshWindowCycles = 1'000'000;
        dram = std::make_unique<Dram>(geometry, DramTiming{100, 150, 200},
                                      dc, *mem);
        config.l1d = {16, 2, 1, 4, ReplacementKind::Lru};
        config.l2 = {32, 4, 1, 12, ReplacementKind::Lru};
        config.llc = {64, 8, 1, 30, ReplacementKind::Lru};
        caches = std::make_unique<CacheHierarchy>(config, *dram);
    }

    DramGeometry geometry;
    CacheHierarchyConfig config;
    std::unique_ptr<PhysicalMemory> mem;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<CacheHierarchy> caches;
};

TEST_F(HierarchyFixture, ColdMissGoesToDram)
{
    auto r = caches->access(0x10000, 0);
    EXPECT_EQ(r.servedBy, ServedBy::Dram);
    EXPECT_GE(r.latency, 100u);
}

TEST_F(HierarchyFixture, SecondAccessHitsL1)
{
    caches->access(0x10000, 0);
    auto r = caches->access(0x10000, 10);
    EXPECT_EQ(r.servedBy, ServedBy::L1);
    EXPECT_EQ(r.latency, config.l1d.latency);
}

TEST_F(HierarchyFixture, LatencyOrderingAcrossLevels)
{
    caches->access(0x20000, 0);
    Cycles l1 = caches->access(0x20000, 1).latency;
    // Evict from L1 only by filling its set.
    std::uint64_t l1Stride = 16 * 64;
    caches->access(0x20000 + l1Stride, 2);
    caches->access(0x20000 + 2 * l1Stride, 3);
    auto r = caches->access(0x20000, 4);
    EXPECT_GT(r.latency, l1);
    EXPECT_NE(r.servedBy, ServedBy::Dram);
}

TEST_F(HierarchyFixture, InclusionL1SubsetOfLlc)
{
    // Property: after arbitrary traffic, every L1/L2 line is in LLC.
    Rng rng(3);
    std::vector<PhysAddr> addrs;
    for (int i = 0; i < 400; ++i) {
        PhysAddr pa = (rng.below(1 << 18)) & ~63ull;
        addrs.push_back(pa);
        caches->access(pa, i);
    }
    for (PhysAddr pa : addrs) {
        if (caches->l1d().contains(pa) || caches->l2().contains(pa)) {
            EXPECT_TRUE(caches->llc().contains(pa))
                << "inclusion violated for 0x" << std::hex << pa;
        }
    }
}

TEST_F(HierarchyFixture, LlcEvictionBackInvalidates)
{
    // Fill one LLC set past capacity; the displaced line must leave
    // L1 and L2 as well.
    std::uint64_t llcStride = 64 * 64;  // 64 sets
    PhysAddr victim = 0x40000;
    caches->access(victim, 0);
    ASSERT_TRUE(caches->l1d().contains(victim));
    for (unsigned i = 1; i <= 8; ++i)
        caches->access(victim + i * llcStride, i);
    EXPECT_FALSE(caches->llc().contains(victim));
    EXPECT_FALSE(caches->l1d().contains(victim));
    EXPECT_FALSE(caches->l2().contains(victim));
}

TEST_F(HierarchyFixture, EvictedLineRefetchesFromDram)
{
    std::uint64_t llcStride = 64 * 64;
    PhysAddr victim = 0x40000;
    caches->access(victim, 0);
    for (unsigned i = 1; i <= 8; ++i)
        caches->access(victim + i * llcStride, i);
    auto r = caches->access(victim, 100);
    EXPECT_EQ(r.servedBy, ServedBy::Dram);
}

TEST_F(HierarchyFixture, ClflushRemovesFromAllLevels)
{
    caches->access(0x30000, 0);
    caches->clflush(0x30000);
    EXPECT_FALSE(caches->l1d().contains(0x30000));
    EXPECT_FALSE(caches->l2().contains(0x30000));
    EXPECT_FALSE(caches->llc().contains(0x30000));
    auto r = caches->access(0x30000, 10);
    EXPECT_EQ(r.servedBy, ServedBy::Dram);
}

TEST_F(HierarchyFixture, LlcMissCounterTracksDramAccesses)
{
    std::uint64_t before = caches->llcMisses();
    caches->access(0x50000, 0);
    caches->access(0x50000, 1);
    EXPECT_EQ(caches->llcMisses(), before + 1);
}

} // namespace
} // namespace pth
