/**
 * @file
 * Spray bookkeeping and flip-checker accounting: region arithmetic,
 * marker distinctness, visible-vs-invisible flip classification and
 * the checker's cache side effects.
 */

#include <gtest/gtest.h>

#include "attack/flip_checker.hh"
#include "attack/spray.hh"
#include "cpu/machine.hh"

namespace pth
{
namespace
{

struct SprayFixture : public ::testing::Test
{
    SprayFixture() : machine(MachineConfig::testSmall())
    {
        attack.superpages = true;
        attack.sprayBytes = 8ull << 20;
        proc = &machine.kernel().createProcess(1000);
        machine.cpu().setProcess(*proc);
        sprayer = std::make_unique<SprayManager>(machine, attack);
        sprayer->spray();
    }

    Machine machine;
    AttackConfig attack;
    Process *proc;
    std::unique_ptr<SprayManager> sprayer;
};

TEST_F(SprayFixture, RegionMathRoundTrips)
{
    for (std::uint64_t r : {0ull, 7ull, 100ull}) {
        VirtAddr base = sprayer->regionBase(r);
        EXPECT_EQ(sprayer->regionOf(base), r);
        EXPECT_EQ(sprayer->regionOf(base + kSuperPageBytes - 1), r);
    }
}

TEST_F(SprayFixture, MarkersRotateAcrossSharedFrames)
{
    // Neighbouring regions map different shared frames, so their
    // markers differ — that is what makes a redirected page visible.
    std::uint64_t m0 = sprayer->expectedMarker(0);
    std::uint64_t m1 = sprayer->expectedMarker(1);
    EXPECT_NE(m0, m1);
    EXPECT_EQ(sprayer->expectedMarker(attack.userSharedFrames),
              m0);  // rotation period
}

TEST_F(SprayFixture, AllMarkersNonZero)
{
    for (unsigned i = 0; i < attack.userSharedFrames; ++i)
        EXPECT_NE(sprayer->expectedMarker(i), 0u)
            << "a zero marker cannot be told apart from empty memory";
}

TEST_F(SprayFixture, CheckerCostScalesWithSpraySize)
{
    FlipChecker checker(machine, attack, *sprayer);
    Cycles before = machine.clock().now();
    checker.check();
    Cycles cost = machine.clock().now() - before;
    EXPECT_EQ(cost, sprayer->sprayedPages() * attack.checkCyclesPerPage);
}

TEST_F(SprayFixture, CheckerFlushesCaches)
{
    machine.cpu().access(sprayer->regionBase(0) + kPageBytes);
    FlipChecker checker(machine, attack, *sprayer);
    checker.check();
    EXPECT_EQ(machine.caches().l1d().validLines(), 0u);
    EXPECT_EQ(machine.caches().llc().validLines(), 0u);
}

TEST_F(SprayFixture, FlagBitFlipIsInvisible)
{
    // A flip in an ignored PTE bit changes no translation: the checker
    // must not report it (and counts it as invisible). Emulate by
    // checking the content comparison directly.
    VirtAddr victim = sprayer->regionBase(5) + 2 * kPageBytes;
    auto pteAddr = proc->pageTables()->l1pteAddress(victim);
    ASSERT_TRUE(pteAddr.has_value());
    machine.memory().flipBit(*pteAddr + 7, 3);  // PTE bit 59: ignored
    std::uint64_t value = 0;
    ASSERT_TRUE(machine.cpu().readUser64(victim, value));
    EXPECT_EQ(value, sprayer->expectedMarker(5));
}

TEST_F(SprayFixture, PresentBitFlipUnmapsPage)
{
    VirtAddr victim = sprayer->regionBase(6) + 3 * kPageBytes;
    auto pteAddr = proc->pageTables()->l1pteAddress(victim);
    machine.memory().flipBit(*pteAddr, 0);  // present bit
    std::uint64_t value = 0;
    EXPECT_FALSE(machine.cpu().readUser64(victim, value));
}

TEST_F(SprayFixture, PfnFlipRedirectsToOtherContent)
{
    VirtAddr victim = sprayer->regionBase(7) + 4 * kPageBytes;
    auto pteAddr = proc->pageTables()->l1pteAddress(victim);
    machine.memory().flipBit(*pteAddr + 2, 0);  // PFN bit 4
    std::uint64_t value = 0;
    bool mapped = machine.cpu().readUser64(victim, value);
    EXPECT_TRUE(!mapped || value != sprayer->expectedMarker(7));
}

TEST_F(SprayFixture, SprayUsesCompressedPtPages)
{
    // Host-memory invariant: the sprayed page tables must stay in the
    // pattern representation, not one dense 4 KiB buffer per L1PT.
    std::uint64_t materialized = machine.memory().materializedPages();
    // Materialized pages: PT pages (pattern-compressed, still counted)
    // plus a handful of user/upper-table pages — but the host bytes per
    // PT page are O(1). Sanity: count stays in the same order as the
    // number of PT pages.
    EXPECT_LT(materialized, sprayer->ptPages() + 4096);
}

} // namespace
} // namespace pth
