/**
 * @file
 * Unit tests for the common utilities: bit operations, deterministic
 * RNG, statistics and the table printer.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace pth
{
namespace
{

TEST(Bitops, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xff00ull, 15, 8), 0xffull);
    EXPECT_EQ(bits(0xdeadbeefull, 7, 0), 0xefull);
    EXPECT_EQ(bits(0xdeadbeefull, 31, 28), 0xdull);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(Bitops, SingleBit)
{
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bit(1ull << 63, 63), 1u);
}

TEST(Bitops, InsertBitsRoundTrips)
{
    std::uint64_t v = insertBits(0, 19, 12, 0xabull);
    EXPECT_EQ(bits(v, 19, 12), 0xabull);
    EXPECT_EQ(bits(v, 11, 0), 0ull);
    v = insertBits(~0ull, 19, 12, 0);
    EXPECT_EQ(bits(v, 19, 12), 0ull);
    EXPECT_EQ(bits(v, 11, 0), 0xfffull);
}

TEST(Bitops, MaskedParity)
{
    EXPECT_EQ(maskedParity(0b1011, 0b1111), 1u);
    EXPECT_EQ(maskedParity(0b1011, 0b1000), 1u);
    EXPECT_EQ(maskedParity(0b1011, 0b0100), 0u);
}

TEST(Bitops, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(4096), 12u);
}

TEST(Random, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Random, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, ChanceApproximatesProbability)
{
    Rng rng(9);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        if (rng.chance(0.25))
            ++hits;
    double rate = static_cast<double>(hits) / trials;
    EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Random, Mix64ChangesEveryInput)
{
    EXPECT_NE(mix64(0), mix64(1));
    EXPECT_NE(mix64(42), mix64(43));
    EXPECT_NE(hashCombine(1, 2, 3), hashCombine(1, 3, 2));
}

TEST(RunningStat, TracksMinMeanMax)
{
    RunningStat s;
    s.sample(1.0);
    s.sample(2.0);
    s.sample(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndQuantiles)
{
    Histogram h(0, 100, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.bucketCount(0), 10u);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.fractionBelow(25.0), 0.25, 0.02);
}

TEST(Histogram, OutOfRangeClampsToEdges)
{
    Histogram h(0, 10, 5);
    h.sample(-5);
    h.sample(100);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(Table, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%d-%s", 5, "x"), "5-x");
}

} // namespace
} // namespace pth
