/**
 * @file
 * Replacement-policy properties, swept across associativities.
 */

#include <gtest/gtest.h>

#include "cache/replacement_policy.hh"

namespace pth
{
namespace
{

class ReplacementParam
    : public ::testing::TestWithParam<std::tuple<ReplacementKind, unsigned>>
{
  protected:
    ReplacementKind kind() { return std::get<0>(GetParam()); }
    unsigned ways() { return std::get<1>(GetParam()); }
};

TEST_P(ReplacementParam, VictimAlwaysInRange)
{
    auto policy = ReplacementPolicy::create(kind(), 4, ways(), 1);
    for (int i = 0; i < 500; ++i) {
        unsigned v = policy->victim(i % 4);
        EXPECT_LT(v, ways());
        policy->insert(i % 4, v);
    }
}

TEST_P(ReplacementParam, StateHashSeesMetadataAndRngPosition)
{
    // A clone starts digest-identical; one victim/insert round must
    // move the digest for every kind (age stamps, tree bits, reference
    // bits, or just the RNG position for random replacement).
    auto policy = ReplacementPolicy::create(kind(), 4, ways(), 1);
    auto copy = policy->clone();
    ASSERT_EQ(policy->stateHash(), copy->stateHash());
    unsigned v = policy->victim(0);
    policy->insert(0, v);
    EXPECT_NE(policy->stateHash(), copy->stateHash());
}

TEST(ReplacementStateHash, LruTouchOrderChangesDigest)
{
    // Same set of touched ways in opposite order: the resident lines
    // are identical but the next victim differs, and the digest must
    // expose that. Pins the snapshot-audit gap where replacement
    // metadata was invisible to Cache/Tlb stateHash, so equal
    // fingerprints could still replay differently.
    LruPolicy a(1, 2);
    LruPolicy b(1, 2);
    a.touch(0, 0);
    a.touch(0, 1);
    b.touch(0, 1);
    b.touch(0, 0);
    EXPECT_NE(a.stateHash(), b.stateHash());
    EXPECT_NE(a.victim(0), b.victim(0));
}

TEST_P(ReplacementParam, SetsAreIndependent)
{
    auto policy = ReplacementPolicy::create(kind(), 2, ways(), 1);
    // Drive set 0 hard; set 1's state must be untouched, so its first
    // victims mirror a fresh policy's.
    auto fresh = ReplacementPolicy::create(kind(), 2, ways(), 1);
    for (int i = 0; i < 100; ++i)
        policy->insert(0, static_cast<unsigned>(i % ways()));
    // Replay identical operations on set 1 of both policies.
    std::vector<unsigned> a;
    std::vector<unsigned> b;
    for (int i = 0; i < 20; ++i) {
        unsigned va = policy->victim(1);
        policy->insert(1, va);
        a.push_back(va);
    }
    // Seeded policies draw from one stream, so only compare the
    // deterministic kinds exactly.
    if (kind() == ReplacementKind::Lru ||
        kind() == ReplacementKind::TreePlru) {
        for (int i = 0; i < 20; ++i) {
            unsigned vb = fresh->victim(1);
            fresh->insert(1, vb);
            b.push_back(vb);
        }
        EXPECT_EQ(a, b);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ReplacementParam,
    ::testing::Combine(::testing::Values(ReplacementKind::Lru,
                                         ReplacementKind::TreePlru,
                                         ReplacementKind::Random,
                                         ReplacementKind::Nru,
                                         ReplacementKind::Aging),
                       ::testing::Values(4u, 8u, 12u, 16u)));

TEST(LruPolicy, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.insert(0, w);
    lru.touch(0, 0);  // way 1 is now LRU
    EXPECT_EQ(lru.victim(0), 1u);
    lru.touch(0, 1);
    EXPECT_EQ(lru.victim(0), 2u);
}

TEST(LruPolicy, RetainsMostRecentNLines)
{
    // Property: after touching ways in a known order, the victim
    // sequence is the reverse order.
    LruPolicy lru(1, 8);
    for (unsigned w = 0; w < 8; ++w)
        lru.insert(0, w);
    std::vector<unsigned> touchOrder = {3, 1, 4, 0, 5, 2, 7, 6};
    for (unsigned w : touchOrder)
        lru.touch(0, w);
    EXPECT_EQ(lru.victim(0), 3u);
}

TEST(TreePlru, NeverEvictsJustTouchedWay)
{
    TreePlruPolicy plru(1, 8);
    for (unsigned w = 0; w < 8; ++w)
        plru.insert(0, w);
    for (int i = 0; i < 100; ++i) {
        unsigned touched = static_cast<unsigned>(i * 5 % 8);
        plru.touch(0, touched);
        EXPECT_NE(plru.victim(0), touched);
    }
}

TEST(TreePlru, NonPowerOfTwoWaysStayInRange)
{
    TreePlruPolicy plru(1, 12);
    for (int i = 0; i < 1000; ++i) {
        unsigned v = plru.victim(0);
        EXPECT_LT(v, 12u);
        plru.insert(0, v);
    }
}

TEST(Nru, TouchedEntrySurvivesSomeFills)
{
    // Statistical property: an entry touched before every fill burst
    // survives a burst of `ways` fills some of the time (NRU is not
    // true LRU).
    NruPolicy nru(1, 4, 77);
    unsigned survived = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        nru.touch(0, 0);
        bool evicted = false;
        for (int f = 0; f < 4; ++f) {
            unsigned v = nru.victim(0);
            if (v == 0)
                evicted = true;
            nru.insert(0, v);
        }
        if (!evicted)
            ++survived;
    }
    // True LRU would never let it survive `ways` fills; NRU does,
    // occasionally.
    EXPECT_GT(survived, 0u);
}

TEST(Aging, FreshlyTouchedWaySurvivesAssociativityFills)
{
    // The Figure-3 mechanism: evicting a just-touched entry takes
    // noticeably more fills than the associativity.
    AgingPolicy aging(1, 4, 99);
    unsigned evictedWithinWays = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        aging.touch(0, 0);
        for (int f = 0; f < 4; ++f) {
            unsigned v = aging.victim(0);
            if (v == 0) {
                ++evictedWithinWays;
                break;
            }
            aging.insert(0, v);
        }
    }
    // Eviction within `ways` fills should be rare.
    EXPECT_LT(evictedWithinWays, 60u);
}

TEST(Aging, EventuallyEvictsEverything)
{
    AgingPolicy aging(1, 4, 100);
    aging.touch(0, 2);
    bool evicted = false;
    for (int f = 0; f < 64 && !evicted; ++f) {
        unsigned v = aging.victim(0);
        evicted = (v == 2);
        aging.insert(0, v);
    }
    EXPECT_TRUE(evicted);
}

TEST(RandomPolicy, CoversAllWays)
{
    RandomPolicy random(8, 5);
    std::vector<bool> seen(8, false);
    for (int i = 0; i < 500; ++i)
        seen[random.victim(0)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(ReplacementFactory, NamesAllKinds)
{
    EXPECT_EQ(replacementKindName(ReplacementKind::Lru), "lru");
    EXPECT_EQ(replacementKindName(ReplacementKind::TreePlru), "tree-plru");
    EXPECT_EQ(replacementKindName(ReplacementKind::Random), "random");
    EXPECT_EQ(replacementKindName(ReplacementKind::Nru), "nru");
    EXPECT_EQ(replacementKindName(ReplacementKind::Aging), "aging");
}

} // namespace
} // namespace pth
