/**
 * @file
 * Defense placement-contract tests, swept across all policies, plus
 * policy-specific invariants: CATT's guard rows, CTA's top-of-memory
 * true-cell L1PT zone, ZebRAM's even-row restriction.
 */

#include <gtest/gtest.h>

#include "dram/address_mapping.hh"
#include "dram/vulnerability_model.hh"
#include "kernel/defense.hh"

namespace pth
{
namespace
{

struct DefenseEnv
{
    DefenseEnv()
    {
        geometry.sizeBytes = 512ull << 20;
        geometry.banks = 32;
        geometry.rowBytes = 8192;
        mapping = std::make_unique<AddressMapping>(geometry);
        DisturbanceConfig dc;
        dc.weakRowProbability = 0.05;
        dc.trueCellFraction = 0.5;
        vuln = std::make_unique<VulnerabilityModel>(dc,
                                                    geometry.rowBytes);
    }

    std::uint64_t frames() const { return geometry.sizeBytes >> 12; }

    DramGeometry geometry;
    std::unique_ptr<AddressMapping> mapping;
    std::unique_ptr<VulnerabilityModel> vuln;
};

class DefenseParam : public ::testing::TestWithParam<DefenseKind>
{
  protected:
    DefenseEnv env;
};

TEST_P(DefenseParam, StateHashTracksAllocatorPosition)
{
    // Allocate one L1PT frame and free it again. The free-frame
    // population is back to the starting point, but cursor-based
    // zones (CTA's true-cell pool, ZebRAM) now sit at an advanced
    // cursor with a recycled-frame list, so they hand out frames in a
    // different order from a fresh defense — the digest must see
    // that. Buddy-backed policies coalesce back to exactly the
    // initial state and must digest equal. Pins Kernel::stateHash
    // ignoring allocator positions.
    auto a = Defense::create(GetParam(), *env.mapping, *env.vuln,
                             env.frames(), 1);
    auto b = Defense::create(GetParam(), *env.mapping, *env.vuln,
                             env.frames(), 1);
    ASSERT_EQ(a->stateHash(), b->stateHash());

    PhysFrame f = a->alloc(AllocIntent::PageTableL1, 1);
    ASSERT_NE(f, kInvalidFrame);
    a->free(f, AllocIntent::PageTableL1, 1);
    if (GetParam() == DefenseKind::Cta || GetParam() == DefenseKind::ZebRam)
        EXPECT_NE(a->stateHash(), b->stateHash());
    else
        EXPECT_EQ(a->stateHash(), b->stateHash());
}

TEST_P(DefenseParam, AllocationsRespectOwnPredicate)
{
    auto defense = Defense::create(GetParam(), *env.mapping, *env.vuln,
                                   env.frames(), 1);
    for (AllocIntent intent :
         {AllocIntent::UserData, AllocIntent::PageTableL1,
          AllocIntent::PageTableUpper, AllocIntent::KernelData}) {
        for (int i = 0; i < 200; ++i) {
            PhysFrame f = defense->alloc(intent, 7);
            ASSERT_NE(f, kInvalidFrame);
            EXPECT_TRUE(defense->frameAllowed(intent, f))
                << defense->name() << " intent "
                << static_cast<int>(intent) << " frame " << f;
        }
    }
}

TEST_P(DefenseParam, NoDoubleAllocationAcrossIntents)
{
    auto defense = Defense::create(GetParam(), *env.mapping, *env.vuln,
                                   env.frames(), 1);
    std::set<PhysFrame> seen;
    for (int i = 0; i < 500; ++i) {
        AllocIntent intent = static_cast<AllocIntent>(i % 4);
        PhysFrame f = defense->alloc(intent, i % 3);
        ASSERT_NE(f, kInvalidFrame);
        EXPECT_TRUE(seen.insert(f).second);
    }
}

TEST_P(DefenseParam, FreedFramesAreReusable)
{
    auto defense = Defense::create(GetParam(), *env.mapping, *env.vuln,
                                   env.frames(), 1);
    PhysFrame f = defense->alloc(AllocIntent::UserData, 1);
    defense->free(f, AllocIntent::UserData, 1);
    PhysFrame g = defense->alloc(AllocIntent::UserData, 1);
    EXPECT_EQ(f, g);
}

INSTANTIATE_TEST_SUITE_P(AllDefenses, DefenseParam,
                         ::testing::Values(DefenseKind::None,
                                           DefenseKind::Catt,
                                           DefenseKind::RipRh,
                                           DefenseKind::Cta,
                                           DefenseKind::ZebRam));

TEST(CattDefense, UserRowsNeverAdjacentToKernelRows)
{
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::Catt, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    // Collect row extremes per bank for both zones.
    std::uint64_t maxKernelRow = 0;
    std::uint64_t minUserRow = ~0ull;
    for (int i = 0; i < 3000; ++i) {
        PhysFrame k = defense->alloc(AllocIntent::PageTableL1, 0);
        PhysFrame u = defense->alloc(AllocIntent::UserData, 0);
        maxKernelRow = std::max(
            maxKernelRow, env.mapping->decompose(k << kPageShift).row);
        minUserRow = std::min(
            minUserRow, env.mapping->decompose(u << kPageShift).row);
    }
    // At least one full guard row separates the zones.
    EXPECT_GT(minUserRow, maxKernelRow + 1);
}

TEST(CattDefense, UserDataNeverEntersKernelZone)
{
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::Catt, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    PhysFrame k = defense->alloc(AllocIntent::KernelData, 0);
    EXPECT_FALSE(defense->frameAllowed(AllocIntent::UserData, k));
    // Kernel allocations prefer their own zone while it lasts...
    PhysFrame pt = defense->alloc(AllocIntent::PageTableL1, 0);
    PhysFrame u = defense->alloc(AllocIntent::UserData, 0);
    EXPECT_LT(pt, u);
}

TEST(CattDefense, ExhaustionSpillsKernelIntoUserZone)
{
    // The CATTmew fallback the paper's CATT attack provokes: once the
    // kernel zone runs dry, page tables land in user memory.
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::Catt, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    std::uint64_t zone = defense->zoneFrames(AllocIntent::KernelData);
    for (std::uint64_t i = 0; i < zone; ++i)
        defense->alloc(AllocIntent::KernelData, 0);
    PhysFrame spilled = defense->alloc(AllocIntent::PageTableL1, 0);
    ASSERT_NE(spilled, kInvalidFrame);
    EXPECT_TRUE(defense->frameAllowed(AllocIntent::UserData, spilled));
}

TEST(RipRhDefense, DifferentOwnersGetDifferentRegions)
{
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::RipRh, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    PhysFrame a = defense->alloc(AllocIntent::UserData, 1);
    PhysFrame b = defense->alloc(AllocIntent::UserData, 2);
    // Frames from distinct partitions are far apart.
    std::uint64_t distance = a > b ? a - b : b - a;
    EXPECT_GT(distance, 256u);
}

TEST(RipRhDefense, KernelNotProtected)
{
    // RIP-RH segregates users only; page tables share the kernel pool.
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::RipRh, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    PhysFrame pt = defense->alloc(AllocIntent::PageTableL1, 1);
    PhysFrame kd = defense->alloc(AllocIntent::KernelData, 2);
    EXPECT_TRUE(defense->frameAllowed(AllocIntent::KernelData, pt));
    EXPECT_TRUE(defense->frameAllowed(AllocIntent::PageTableL1, kd));
    EXPECT_LT(pt, defense->zoneFrames(AllocIntent::KernelData) + 256);
}

TEST(CtaDefense, L1ptsLiveAboveEveryUserFrame)
{
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::Cta, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    PhysFrame maxUser = 0;
    PhysFrame minPt = ~0ull;
    for (int i = 0; i < 2000; ++i) {
        maxUser = std::max(maxUser,
                           defense->alloc(AllocIntent::UserData, 0));
        minPt = std::min(minPt,
                         defense->alloc(AllocIntent::PageTableL1, 0));
    }
    EXPECT_GT(minPt, maxUser);
}

TEST(CtaDefense, L1ptRowsContainOnlyTrueCells)
{
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::Cta, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    for (int i = 0; i < 2000; ++i) {
        PhysFrame f = defense->alloc(AllocIntent::PageTableL1, 0);
        DramLocation loc = env.mapping->decompose(f << kPageShift);
        EXPECT_TRUE(env.vuln->rowHasOnlyTrueCells(loc.bank, loc.row))
            << "frame " << f << " row has anti cells";
    }
}

TEST(CtaDefense, TrueCellFlipCannotReachPtZone)
{
    // The CTA security argument: clearing any PFN bit of an entry that
    // points below the PT zone keeps it below the PT zone.
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::Cta, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    PhysFrame pt = defense->alloc(AllocIntent::PageTableL1, 0);
    for (int i = 0; i < 500; ++i) {
        PhysFrame user = defense->alloc(AllocIntent::UserData, 0);
        for (unsigned bitPos = 0; bitPos < 21; ++bitPos) {
            PhysFrame flipped = user & ~(1ull << bitPos);  // 1 -> 0 only
            EXPECT_LT(flipped, pt);
        }
    }
}

TEST(ZebRamDefense, OnlyEvenRowsAllocated)
{
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::ZebRam, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    for (int i = 0; i < 2000; ++i) {
        PhysFrame f = defense->alloc(AllocIntent::UserData, 0);
        EXPECT_EQ(env.mapping->decompose(f << kPageShift).row % 2, 0u);
    }
}

TEST(ZebRamDefense, NeighboursOfDataRowsHoldNoData)
{
    // The zebra property: rows adjacent to any allocated row are never
    // allocatable.
    DefenseEnv env;
    auto defense = Defense::create(DefenseKind::ZebRam, *env.mapping,
                                   *env.vuln, env.frames(), 1);
    PhysFrame f = defense->alloc(AllocIntent::PageTableL1, 0);
    DramLocation loc = env.mapping->decompose(f << kPageShift);
    for (long long delta : {-1ll, 1ll}) {
        DramLocation neighbour = loc;
        neighbour.row = loc.row + static_cast<std::uint64_t>(delta);
        PhysFrame nf =
            env.mapping->compose(neighbour) >> kPageShift;
        EXPECT_FALSE(defense->frameAllowed(AllocIntent::UserData, nf));
        EXPECT_FALSE(defense->frameAllowed(AllocIntent::PageTableL1, nf));
    }
}

TEST(DefenseNames, AllDistinct)
{
    std::set<std::string> names;
    for (DefenseKind kind :
         {DefenseKind::None, DefenseKind::Catt, DefenseKind::RipRh,
          DefenseKind::Cta, DefenseKind::ZebRam})
        names.insert(defenseKindName(kind));
    EXPECT_EQ(names.size(), 5u);
}

} // namespace
} // namespace pth
