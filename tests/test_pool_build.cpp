/**
 * @file
 * Pool-build equivalence and sampling-path regression tests.
 *
 * The group-testing pool builder (serial and multi-threaded) must
 * produce exactly the pools the single-elimination baseline produces,
 * and both must coincide with the hardware's ground-truth set
 * mapping: per-set line membership is compared at zero measurement
 * noise on a true-LRU LLC, across all four supported slice counts
 * (exercising every SliceHash configuration). Separate regressions
 * pin the three sampled-build bugfixes: sampleClasses=0 meaning "all"
 * in both build paths, per-class bucket sizes in the quadratic
 * extrapolation, and overflow-free cost extrapolation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "attack/eviction_pool.hh"
#include "attack/pool_build.hh"
#include "cpu/machine.hh"

namespace pth
{
namespace
{

/** testSmall with the LLC re-sliced at constant 768 KiB capacity and
 * true-LRU replacement, so zero-noise conflict tests classify exactly
 * by (set, slice) congruence. The L2 index is shrunk to the line-
 * offset bits: on the paper machines (and stock testSmall) one
 * candidate class always thrashes one L2 set, and the re-sliced
 * 128-set LLC would otherwise leave bit 13 free, letting a survivor
 * set nest L2-resident where the LLC never sees it. */
MachineConfig
sliceConfig(unsigned slices)
{
    MachineConfig config = MachineConfig::testSmall();
    config.caches.llc.slices = slices;
    config.caches.llc.sets = 1024 / slices;
    config.caches.llc.replacement = ReplacementKind::Lru;
    config.caches.l2.sets = 64;
    return config;
}

AttackConfig
noiselessAttack(PoolBuildAlgorithm algorithm, unsigned threads,
                bool superpages)
{
    AttackConfig attack;
    attack.superpages = superpages;
    attack.timingNoiseProbability = 0;
    attack.poolBuild.algorithm = algorithm;
    attack.poolBuild.threads = threads;
    return attack;
}

/** A pool plus everything that keeps it alive. */
struct BuiltPool
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<AttackConfig> attack;
    std::unique_ptr<LlcEvictionPool> pool;
    PoolBuildReport report;
};

BuiltPool
buildPool(const MachineConfig &config, const AttackConfig &attackConfig,
          unsigned sampleClasses, unsigned groupsPerClass = 0)
{
    BuiltPool built;
    built.machine = std::make_unique<Machine>(config);
    built.attack = std::make_unique<AttackConfig>(attackConfig);
    Process &proc = built.machine->kernel().createProcess(1000);
    built.machine->cpu().setProcess(proc);
    built.pool =
        std::make_unique<LlcEvictionPool>(*built.machine, *built.attack);
    built.pool->allocateBuffer();
    built.report =
        built.attack->superpages
            ? built.pool->buildSuperpage(sampleClasses)
            : built.pool->buildRegularSampled(sampleClasses,
                                              groupsPerClass);
    return built;
}

PhysAddr
physOf(Machine &machine, VirtAddr line)
{
    auto tr = machine.cpu().process().pageTables()->translate(line);
    EXPECT_TRUE(tr.has_value());
    return (tr->frame << kPageShift) | (line & (kPageBytes - 1));
}

/** Ground-truth (set, slice) -> sorted member lines of a pool. */
std::map<std::uint64_t, std::vector<VirtAddr>>
membershipByGlobalSet(BuiltPool &built)
{
    std::map<std::uint64_t, std::vector<VirtAddr>> groups;
    for (const EvictionSet &set : built.pool->sets()) {
        PhysAddr pa = physOf(*built.machine, set.lines.front());
        std::uint64_t globalSet =
            built.machine->caches().llc().globalSet(pa);
        // Exactly one pool set per global set.
        EXPECT_EQ(groups.count(globalSet), 0u)
            << "two pool sets share global set " << globalSet;
        std::vector<VirtAddr> lines = set.lines;
        std::sort(lines.begin(), lines.end());
        groups[globalSet] = std::move(lines);
    }
    return groups;
}

/** Every line of every set maps to its set's ground-truth group. */
void
expectOracleExact(BuiltPool &built)
{
    std::uint64_t totalLines = 0;
    for (const EvictionSet &set : built.pool->sets()) {
        PhysAddr pa0 = physOf(*built.machine, set.lines.front());
        std::uint64_t expected =
            built.machine->caches().llc().globalSet(pa0);
        for (VirtAddr line : set.lines) {
            PhysAddr pa = physOf(*built.machine, line);
            ASSERT_EQ(built.machine->caches().llc().globalSet(pa),
                      expected)
                << "set contaminated";
        }
        totalLines += set.lines.size();
    }
    // Complete partition: every buffer line (2x LLC capacity,
    // superpage-rounded when mapped huge) is a member of exactly one
    // set.
    const MachineConfig &config = built.machine->config();
    std::uint64_t bytes = 2 * config.caches.llc.capacity();
    if (built.attack->superpages)
        bytes = (bytes + kSuperPageBytes - 1) & ~(kSuperPageBytes - 1);
    EXPECT_EQ(totalLines, bytes / kLineBytes);
}

void
expectBytesIdentical(const BuiltPool &a, const BuiltPool &b)
{
    ASSERT_EQ(a.pool->sets().size(), b.pool->sets().size());
    for (std::size_t i = 0; i < a.pool->sets().size(); ++i) {
        EXPECT_EQ(a.pool->sets()[i].classIndex,
                  b.pool->sets()[i].classIndex);
        ASSERT_EQ(a.pool->sets()[i].lines, b.pool->sets()[i].lines)
            << "set " << i << " differs";
    }
    EXPECT_EQ(poolFingerprint(a.pool->sets()),
              poolFingerprint(b.pool->sets()));
}

TEST(PoolEquivalence, SuperpageAllSliceCountsMatchBaselineAndOracle)
{
    for (unsigned slices : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(testing::Message() << "slices=" << slices);
        MachineConfig config = sliceConfig(slices);

        BuiltPool baseline = buildPool(
            config,
            noiselessAttack(PoolBuildAlgorithm::SingleElimination, 1,
                            true),
            /*sampleClasses=*/0);
        BuiltPool serial = buildPool(
            config,
            noiselessAttack(PoolBuildAlgorithm::GroupTesting, 1, true),
            0);
        BuiltPool threaded = buildPool(
            config,
            noiselessAttack(PoolBuildAlgorithm::GroupTesting, 4, true),
            0);

        // The multi-threaded build is byte-identical to the serial
        // one: same sets, same order, same line order, same cost.
        expectBytesIdentical(serial, threaded);
        EXPECT_EQ(serial.report.sampledCycles,
                  threaded.report.sampledCycles);
        EXPECT_EQ(serial.report.conflictTests,
                  threaded.report.conflictTests);

        // Both algorithms partition the buffer exactly along the
        // ground-truth mapping...
        expectOracleExact(baseline);
        expectOracleExact(serial);

        // ...and therefore agree set-for-set on line membership.
        EXPECT_EQ(membershipByGlobalSet(baseline),
                  membershipByGlobalSet(serial));
    }
}

TEST(PoolEquivalence, RegularPageMatchesBaselineAndOracle)
{
    MachineConfig config = sliceConfig(2);

    BuiltPool baseline = buildPool(
        config,
        noiselessAttack(PoolBuildAlgorithm::SingleElimination, 1,
                        false),
        /*sampleClasses=*/2, /*groupsPerClass=*/3);
    BuiltPool serial = buildPool(
        config, noiselessAttack(PoolBuildAlgorithm::GroupTesting, 1,
                                false),
        2, 3);
    BuiltPool threaded = buildPool(
        config, noiselessAttack(PoolBuildAlgorithm::GroupTesting, 4,
                                false),
        2, 3);

    expectBytesIdentical(serial, threaded);
    expectOracleExact(baseline);
    expectOracleExact(serial);
    EXPECT_EQ(membershipByGlobalSet(baseline),
              membershipByGlobalSet(serial));

    // The reduction win the bench tracks at paper scale holds at
    // test scale too.
    EXPECT_GE(baseline.report.conflictTests,
              3 * serial.report.conflictTests);
    EXPECT_GT(serial.report.conflictTests, 0u);
}

TEST(PoolEquivalence, ThreadedBuildDeterministicUnderNoise)
{
    // Determinism must not depend on noise being disabled: the noise
    // streams are per-class, so scheduling cannot reorder draws.
    MachineConfig config = MachineConfig::testSmall();
    AttackConfig attack;
    attack.superpages = true;
    attack.poolBuild.algorithm = PoolBuildAlgorithm::GroupTesting;

    AttackConfig serialCfg = attack;
    serialCfg.poolBuild.threads = 1;
    AttackConfig threadedCfg = attack;
    threadedCfg.poolBuild.threads = 4;

    BuiltPool serial = buildPool(config, serialCfg, 6);
    BuiltPool threaded = buildPool(config, threadedCfg, 6);
    expectBytesIdentical(serial, threaded);
    EXPECT_EQ(serial.report.sampledCycles,
              threaded.report.sampledCycles);
}

TEST(PoolSamplingRegression, ZeroSampleClassesMeansAllInBothPaths)
{
    MachineConfig config = MachineConfig::testSmall();

    AttackConfig superCfg;
    superCfg.superpages = true;
    BuiltPool super = buildPool(config, superCfg, /*sampleClasses=*/0);
    EXPECT_EQ(super.report.classesSampled, super.report.classesTotal);
    EXPECT_GT(super.report.classesSampled, 0u);
    // No sampling happened, so there is nothing to extrapolate.
    EXPECT_EQ(super.report.extrapolatedCycles,
              super.report.sampledCycles);

    // The regular path used to sample ZERO classes here (and then
    // extrapolate from nothing); 0 must mean "all 64", like above.
    AttackConfig regularCfg;
    regularCfg.superpages = false;
    BuiltPool regular =
        buildPool(config, regularCfg, /*sampleClasses=*/0,
                  /*groupsPerClass=*/1);
    EXPECT_EQ(regular.report.classesSampled,
              regular.report.classesTotal);
    EXPECT_EQ(regular.report.classesTotal, 64u);
    EXPECT_GT(regular.report.sampledCycles, 0u);
}

TEST(PoolSamplingRegression, UniformQuadraticExtrapolationUnchanged)
{
    // Uniform buckets reproduce the original closed form: per-class
    // weights scaled by classes-total / classes-sampled.
    const Cycles sampled = 1'000'000;
    const std::vector<std::size_t> classes(4, 100);
    const std::vector<unsigned> done{2};
    const unsigned ways = 5;

    double full = 0;
    double measured = 0;
    for (unsigned g = 0; g < 10; ++g) {
        double w = (100.0 - 10.0 * g) * (100.0 - 10.0 * g);
        full += w;
        if (g < 2)
            measured += w;
    }
    const Cycles expected = static_cast<Cycles>(
        static_cast<double>(sampled) * (4 * full) / measured + 0.5);
    EXPECT_EQ(extrapolateQuadratic(sampled, classes, done, ways),
              expected);
}

TEST(PoolSamplingRegression, QuadraticExtrapolationUsesPerClassSizes)
{
    // A non-64-aligned buffer leaves tail classes smaller; the old
    // formula billed every class at buckets[0]'s size and
    // over-extrapolated.
    const Cycles sampled = 1'000'000;
    const std::vector<std::size_t> classes{100, 50, 50, 50};
    const std::vector<unsigned> done{2};
    const unsigned ways = 5;

    double fullBig = 0;
    double measured = 0;
    for (unsigned g = 0; g < 10; ++g) {
        double w = (100.0 - 10.0 * g) * (100.0 - 10.0 * g);
        fullBig += w;
        if (g < 2)
            measured += w;
    }
    double fullSmall = 0;
    for (unsigned g = 0; g < 5; ++g)
        fullSmall += (50.0 - 10.0 * g) * (50.0 - 10.0 * g);

    const Cycles expected = static_cast<Cycles>(
        static_cast<double>(sampled) *
            (fullBig + 3 * fullSmall) / measured +
        0.5);
    EXPECT_EQ(extrapolateQuadratic(sampled, classes, done, ways),
              expected);

    // Strictly below the uniform-bucket misbill.
    const std::vector<std::size_t> uniform(4, 100);
    EXPECT_LT(extrapolateQuadratic(sampled, classes, done, ways),
              extrapolateQuadratic(sampled, uniform, done, ways));
}

TEST(PoolSamplingRegression, LinearModelMatchesGroupTestingDecay)
{
    // The group-testing path's per-group cost decays linearly with
    // the remaining candidates (every test traverses the whole
    // class), so its extrapolation weights (N - 2*ways*g) directly.
    const Cycles sampled = 1'000'000;
    const std::vector<std::size_t> classes(4, 100);
    const std::vector<unsigned> done{2};
    const unsigned ways = 5;

    double full = 0;
    double measured = 0;
    for (unsigned g = 0; g < 10; ++g) {
        full += 100.0 - 10.0 * g;
        if (g < 2)
            measured += 100.0 - 10.0 * g;
    }
    const Cycles expected = static_cast<Cycles>(
        static_cast<double>(sampled) * (4 * full) / measured + 0.5);
    EXPECT_EQ(extrapolateLinear(sampled, classes, done, ways),
              expected);

    // Late groups are cheaper than early ones but not quadratically
    // so: the linear estimate of the remaining work is larger.
    EXPECT_GT(extrapolateLinear(sampled, classes, done, ways),
              extrapolateQuadratic(sampled, classes, done, ways));
}

TEST(PoolSamplingRegression, UniformExtrapolationSurvivesPaperScale)
{
    // 5e17 sampled cycles x 2048 classes used to overflow the u64
    // product and wrap to garbage; the double path scales cleanly.
    const Cycles sampled = 500'000'000'000'000'000ull;
    const Cycles full = extrapolateUniformClasses(sampled, 2048, 96);
    EXPECT_GT(full, sampled);
    EXPECT_NEAR(static_cast<double>(full),
                static_cast<double>(sampled) * 2048 / 96,
                1e-9 * static_cast<double>(full));

    // Rounds to nearest, consistently with the quadratic path.
    EXPECT_EQ(extrapolateUniformClasses(7, 3, 2), 11u);
    EXPECT_EQ(extrapolateUniformClasses(10, 3, 2), 15u);
}

} // namespace
} // namespace pth
