/**
 * @file
 * Campaign-orchestrator tests. The headline contract mirrors
 * test_shard's, one level up: a manifest of campaigns dispatched by
 * CampaignCtl over a bounded worker pool — including with a worker
 * SIGKILLed mid-campaign, or a worker hung and speculatively
 * re-issued — renders final reports byte-identical to serial
 * single-process runs.
 *
 * The test binary is its own bench: invoked as
 * `test_campaign_ctl --pth-worker [--die-at=K] [--die-marker=PATH]
 * [--hang-at=K --hang-marker=PATH] [--fail-at=K] <bench flags>` it
 * behaves like a bench binary over a fixed 9-run campaign whose every
 * result field derives from the seed.
 *
 *  - --die-at=K: SIGKILL self when executing run K; with
 *    --die-marker, only while the marker file does not exist
 *    (created just before dying) — so the respawn survives.
 *  - --hang-at=K + --hang-marker: the first process to execute run K
 *    creates the marker (O_EXCL) and hangs forever; any later
 *    instance sails past — a deterministic straggler for the
 *    re-issue path, whichever instance reaches K first.
 *  - --fail-at=K: run K fails inside the simulation (ok = false) —
 *    journaled, worker still exits 0, the render pass re-executes it
 *    and exits nonzero.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/table.hh"
#include "harness/bench_cli.hh"
#include "harness/campaign.hh"
#include "harness/campaign_ctl.hh"
#include "harness/result_store.hh"

namespace pth
{
namespace ctltest
{

/** Path of this binary (from /proc/self/exe), for manifests. */
std::string gProgram;

constexpr unsigned kRuns = 9;
constexpr unsigned kNone = ~0u;

/** The fixed campaign the workers and the serial baseline build. */
Campaign
makeCampaign(unsigned dieAt = kNone,
             const std::string &dieMarker = std::string(),
             unsigned hangAt = kNone,
             const std::string &hangMarker = std::string(),
             unsigned failAt = kNone)
{
    Campaign campaign;
    for (unsigned i = 0; i < kRuns; ++i) {
        RunSpec spec;
        spec.label = strfmt("point%u", i);
        spec.preset = MachinePreset::TestSmall;
        spec.seed = 90 + i;
        spec.body = [dieAt, dieMarker, hangAt, hangMarker,
                     failAt](Machine &, const AttackConfig &,
                             RunResult &res) {
            if (res.index == dieAt) {
                bool die = true;
                if (!dieMarker.empty()) {
                    if (std::ifstream(dieMarker).good()) {
                        die = false; // already died once; survive
                    } else {
                        std::ofstream mark(dieMarker);
                    }
                }
                if (die)
                    std::raise(SIGKILL);
            }
            if (res.index == hangAt && !hangMarker.empty()) {
                const int fd =
                    ::open(hangMarker.c_str(),
                           O_CREAT | O_EXCL | O_WRONLY, 0644);
                if (fd >= 0) {
                    // We claimed the straggler role: hang until the
                    // orchestrator supersedes (SIGKILLs) us.
                    ::close(fd);
                    for (;;)
                        ::usleep(100000);
                }
                // Marker exists: a sibling is the straggler; proceed.
            }
            if (res.index == failAt)
                throw std::runtime_error("injected run failure");
            res.flips = (res.seed * 3) % 4;
            res.flipped = res.flips > 0;
            res.attempts = static_cast<unsigned>(res.index) + 1;
            res.metrics.emplace_back(
                "seed_sq", static_cast<double>(res.seed * res.seed));
            res.report.flipped = res.flipped;
            res.report.timeToFirstFlipMinutes =
                res.flipped ? 0.125 * static_cast<double>(res.seed)
                            : 0.0;
        };
        campaign.add(spec);
    }
    return campaign;
}

/** Subprocess entry: argv[1] == "--pth-worker". Unlike test_shard's
 * worker this one also serves the render pass (no --shard), so it
 * honors --json and exits nonzero on failing runs, like a real
 * bench. */
int
workerMain(int argc, char **argv)
{
    unsigned dieAt = kNone;
    unsigned hangAt = kNone;
    unsigned failAt = kNone;
    std::string dieMarker;
    std::string hangMarker;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 2; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--die-at=", 9))
            dieAt = static_cast<unsigned>(
                std::strtoul(argv[i] + 9, nullptr, 10));
        else if (!std::strncmp(argv[i], "--die-marker=", 13))
            dieMarker = argv[i] + 13;
        else if (!std::strncmp(argv[i], "--hang-at=", 10))
            hangAt = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 10));
        else if (!std::strncmp(argv[i], "--hang-marker=", 14))
            hangMarker = argv[i] + 14;
        else if (!std::strncmp(argv[i], "--fail-at=", 10))
            failAt = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 10));
        else
            args.push_back(argv[i]);
    }
    BenchCli cli =
        BenchCli::parse(static_cast<int>(args.size()), args.data(),
                        "test_campaign_ctl worker");
    Campaign campaign =
        makeCampaign(dieAt, dieMarker, hangAt, hangMarker, failAt);
    std::vector<RunResult> results = cli.runCampaign(campaign);
    if (!cli.emitJson(results))
        return 1;
    return cli.failureCount(results) ? 1 : 0;
}

namespace
{

std::string
tempDir(const char *name)
{
    const std::string dir = testing::TempDir() + "pth_ctl_" + name;
    ::mkdir(dir.c_str(), 0755);
    // Scrub artifacts of a previous run of this very test.
    for (const char *suffix :
         {".jsonl", ".json", ".jsonl.merging"})
        for (const char *campaign : {"alpha", "beta"})
            std::remove((dir + "/" + campaign + suffix).c_str());
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
serialReport()
{
    Campaign campaign = makeCampaign();
    CampaignOptions serial;
    serial.threads = 1;
    return Campaign::toJson(campaign.run(serial));
}

/** A two-campaign manifest over this test binary; extraArgs are
 * appended to the named campaign's worker args. */
Manifest
makeManifest(const std::string &outDir,
             const std::vector<std::string> &alphaExtra = {},
             const std::vector<std::string> &betaExtra = {},
             unsigned alphaShards = 3, unsigned betaShards = 2)
{
    Manifest manifest;
    ManifestCampaign alpha;
    alpha.name = "alpha";
    alpha.program = gProgram;
    alpha.args = {"--pth-worker"};
    alpha.args.insert(alpha.args.end(), alphaExtra.begin(),
                      alphaExtra.end());
    alpha.shards = alphaShards;
    ManifestCampaign beta;
    beta.name = "beta";
    beta.program = gProgram;
    beta.args = {"--pth-worker"};
    beta.args.insert(beta.args.end(), betaExtra.begin(),
                     betaExtra.end());
    beta.shards = betaShards;
    manifest.campaigns = {alpha, beta};
    (void)outDir;
    return manifest;
}

CampaignCtlOptions
makeOptions(const std::string &outDir, std::ostream *log = nullptr)
{
    CampaignCtlOptions options;
    options.outDir = outDir;
    options.workers = 3;
    options.fresh = true;
    options.log = log;
    // Speculative re-issue is timing-dependent; the tests that pin
    // exact spawn counts turn it off and the straggler test turns it
    // back on.
    options.maxReissues = 0;
    return options;
}

TEST(CtlManifest, ParsesCampaignsWithDefaultsAndOverrides)
{
    Manifest manifest;
    std::string error;
    ASSERT_TRUE(Manifest::parse(
        R"({"campaigns": [
              {"name": "t1", "program": "/bin/a",
               "args": ["--tiny", "--dram-model=trr"], "shards": 4,
               "journal": "x.jsonl", "report": "x.json"},
              {"name": "t2", "program": "/bin/b"}
            ]})",
        manifest, error))
        << error;
    ASSERT_EQ(manifest.campaigns.size(), 2u);
    EXPECT_EQ(manifest.campaigns[0].name, "t1");
    EXPECT_EQ(manifest.campaigns[0].shards, 4u);
    EXPECT_EQ(manifest.campaigns[0].args,
              (std::vector<std::string>{"--tiny",
                                        "--dram-model=trr"}));
    EXPECT_EQ(manifest.campaigns[0].journal, "x.jsonl");
    EXPECT_EQ(manifest.campaigns[1].shards, 1u);
    EXPECT_TRUE(manifest.campaigns[1].journal.empty());
}

TEST(CtlManifest, RejectsMalformedManifests)
{
    const std::vector<std::pair<const char *, const char *>> cases = {
        {"not json at all", "not a JSON object"},
        {R"({"campaigns": []})", "no campaigns"},
        {R"({"campaignz": [1]})", "unknown key"},
        {R"({"campaigns": [{"program": "/bin/a"}]})",
         "missing or empty \"name\""},
        {R"({"campaigns": [{"name": "a"}]})",
         "missing or empty \"program\""},
        {R"({"campaigns": [{"name": "a/b", "program": "x"}]})",
         "may not contain"},
        {R"({"campaigns": [{"name": "a", "program": "x",
                            "shards": 0}]})",
         "positive integer"},
        {R"({"campaigns": [{"name": "a", "program": "x",
                            "shards": 1.5}]})",
         "positive integer"},
        {R"({"campaigns": [{"name": "a", "program": "x",
                            "args": [1]}]})",
         "non-string"},
        {R"({"campaigns": [{"name": "a", "program": "x",
                            "shardz": 2}]})",
         "unknown key"},
        {R"({"campaigns": [{"name": "a", "program": "x"},
                           {"name": "a", "program": "y"}]})",
         "duplicate campaign name"},
    };
    for (const auto &item : cases) {
        Manifest manifest;
        std::string error;
        EXPECT_FALSE(Manifest::parse(item.first, manifest, error))
            << item.first;
        EXPECT_NE(error.find(item.second), std::string::npos)
            << "error was: " << error;
    }
}

TEST(CtlManifestDeathTest, InvalidManifestFileExitsLikeTheTool)
{
    // The tool's load-or-exit path: a validation failure must be a
    // hard usage error (exit 2, reason on stderr), never a silently
    // empty suite.
    auto loadOrDie = [](const std::string &text) {
        Manifest manifest;
        std::string error;
        if (!Manifest::parse(text, manifest, error)) {
            std::fprintf(stderr, "campaign_ctl: %s\n", error.c_str());
            std::exit(2);
        }
        std::exit(0);
    };
    EXPECT_EXIT(loadOrDie(R"({"campaigns": [{"name": "a",
                              "program": "x"},
                             {"name": "a", "program": "y"}]})"),
                testing::ExitedWithCode(2),
                "duplicate campaign name");
    EXPECT_EXIT(loadOrDie("{"), testing::ExitedWithCode(2),
                "not a JSON object");
    Manifest missing;
    std::string error;
    EXPECT_FALSE(
        Manifest::load("/nonexistent/manifest.json", missing, error));
    EXPECT_NE(error.find("cannot read"), std::string::npos);
}

TEST(CampaignCtl, DispatchOrderIsManifestOrderForAnyPoolWidth)
{
    const std::string outDir = tempDir("order");

    // First-attempt shard spawns must appear in manifest order in
    // the dispatch log whatever the pool width — the queue is built
    // up front and drained in order; only respawn/re-issue/render
    // lines may interleave on timing.
    std::vector<std::string> expected;
    for (unsigned s = 0; s < 3; ++s)
        expected.push_back(strfmt("[ctl] spawn alpha/%u", s));
    for (unsigned s = 0; s < 2; ++s)
        expected.push_back(strfmt("[ctl] spawn beta/%u", s));

    for (unsigned poolWidth : {1u, 2u, 8u}) {
        std::ostringstream log;
        CampaignCtlOptions options = makeOptions(outDir, &log);
        options.workers = poolWidth;
        CampaignCtl ctl(makeManifest(outDir), options);
        ASSERT_EQ(ctl.run(), 0u) << "pool width " << poolWidth;

        std::vector<std::string> spawns;
        std::istringstream lines(log.str());
        std::string line;
        while (std::getline(lines, line))
            if (line.rfind("[ctl] spawn ", 0) == 0 &&
                line.find("/render") == std::string::npos)
                spawns.push_back(line);
        EXPECT_EQ(spawns, expected) << "pool width " << poolWidth;
    }
}

TEST(CampaignCtl, ManifestReportsAreByteIdenticalToSerial)
{
    const std::string outDir = tempDir("serial");
    CampaignCtl ctl(makeManifest(outDir), makeOptions(outDir));
    ASSERT_EQ(ctl.run(), 0u);

    const std::string expected = serialReport();
    ASSERT_EQ(ctl.outcomes().size(), 2u);
    for (const CampaignOutcome &outcome : ctl.outcomes()) {
        EXPECT_TRUE(outcome.ok) << outcome.error;
        EXPECT_EQ(outcome.mergeStats.entries, kRuns);
        EXPECT_EQ(readFile(outcome.report), expected)
            << outcome.name << " report diverged from serial";
    }
}

TEST(CampaignCtl, KilledWorkerIsRespawnedAndReportMatchesSerial)
{
    const std::string outDir = tempDir("kill");
    const std::string marker = outDir + "/die.marker";
    std::remove(marker.c_str());

    // Two fault styles at once: alpha shard 1 is SIGKILLed by the
    // orchestrator right at spawn (inject-kill), and whichever beta
    // worker owns run 4 kills itself MID-CAMPAIGN after
    // checkpointing earlier runs (die-at + marker to survive the
    // respawn). Both recover to byte-identical reports.
    CampaignCtlOptions options = makeOptions(outDir);
    options.injectKills.emplace_back("alpha", 1u);
    CampaignCtl ctl(
        makeManifest(outDir, {},
                     {"--die-at=4", "--die-marker=" + marker}),
        options);
    ASSERT_EQ(ctl.run(), 0u);

    const std::string expected = serialReport();
    for (const CampaignOutcome &outcome : ctl.outcomes()) {
        EXPECT_TRUE(outcome.ok) << outcome.error;
        EXPECT_EQ(readFile(outcome.report), expected)
            << outcome.name;
    }
    // Beta's self-kill is deterministic: exactly one extra spawn on
    // top of 2 shards + 1 render. Alpha's inject-kill races the
    // (tiny) shard's own exit — almost always 5 spawns, but a worker
    // that wins the race needs no respawn, so 4 is also legal.
    EXPECT_GE(ctl.outcomes()[0].spawns, 4u);
    EXPECT_LE(ctl.outcomes()[0].spawns, 5u);
    EXPECT_EQ(ctl.outcomes()[1].spawns, 4u);

    // The mid-campaign kill left a pre-death checkpoint behind and
    // the respawn resumed rather than recomputed: the dead attempt's
    // journal entries survive into the merge (die-at=4 with 2 shards
    // puts runs 0 and 2 before the death on the same worker).
    EXPECT_EQ(ctl.outcomes()[1].mergeStats.entries, kRuns);
    std::remove(marker.c_str());
}

TEST(CampaignCtl, PermanentlyDeadShardFailsItsCampaignOnly)
{
    const std::string outDir = tempDir("dead");

    // No die-marker: the beta worker owning run 4 dies on every
    // attempt. Its campaign must fail loudly; alpha is unaffected.
    std::ostringstream log;
    CampaignCtl ctl(makeManifest(outDir, {}, {"--die-at=4"}),
                    makeOptions(outDir, &log));
    EXPECT_EQ(ctl.run(), 1u);

    const CampaignOutcome &alpha = ctl.outcomes()[0];
    const CampaignOutcome &beta = ctl.outcomes()[1];
    EXPECT_TRUE(alpha.ok) << alpha.error;
    EXPECT_EQ(readFile(alpha.report), serialReport());
    EXPECT_FALSE(beta.ok);
    EXPECT_NE(beta.error.find("died"), std::string::npos);
    EXPECT_NE(beta.error.find("signal"), std::string::npos);
    // Death after exhausting 1 + maxRespawns attempts.
    EXPECT_NE(log.str().find("dead beta/0"), std::string::npos);
    // No report was rendered for the failed campaign.
    EXPECT_NE(log.str().find("campaign beta FAILED"),
              std::string::npos);
    EXPECT_TRUE(readFile(beta.report).empty());
}

TEST(CampaignCtl, HungWorkerIsReissuedAndBackupWins)
{
    const std::string outDir = tempDir("hang");
    const std::string marker = outDir + "/hang.marker";
    std::remove(marker.c_str());

    // One 2-shard campaign; whichever instance first executes run 4
    // claims the marker and hangs forever. With the queue drained
    // the orchestrator re-issues the straggling shard; the backup
    // (or the primary, if the backup claimed the marker first) sails
    // past and wins, the loser is superseded and killed.
    Manifest manifest;
    ManifestCampaign alpha;
    alpha.name = "alpha";
    alpha.program = gProgram;
    alpha.args = {"--pth-worker", "--hang-at=4",
                  "--hang-marker=" + marker};
    alpha.shards = 2;
    manifest.campaigns = {alpha};

    std::ostringstream log;
    CampaignCtlOptions options = makeOptions(outDir, &log);
    options.workers = 2;
    options.maxReissues = 1;
    CampaignCtl ctl(manifest, options);
    ASSERT_EQ(ctl.run(), 0u);

    const CampaignOutcome &outcome = ctl.outcomes()[0];
    EXPECT_TRUE(outcome.ok) << outcome.error;
    EXPECT_EQ(outcome.reissues, 1u);
    EXPECT_EQ(readFile(outcome.report), serialReport());
    EXPECT_NE(log.str().find("reissue alpha/0 instance 1"),
              std::string::npos);
    EXPECT_NE(log.str().find("supersede alpha/0"),
              std::string::npos);
    std::remove(marker.c_str());
}

TEST(CampaignCtl, SimulationFailureSurfacesThroughTheRenderPass)
{
    const std::string outDir = tempDir("simfail");

    // Run 4 of beta fails INSIDE the simulation: the shard worker
    // journals the failure and exits 0 (failure isolation), the
    // merge succeeds, and the render pass — which re-executes failed
    // runs — exits nonzero. The campaign must be surfaced as failed
    // without any respawn churn (the verdict is deterministic).
    std::ostringstream log;
    CampaignCtl ctl(makeManifest(outDir, {}, {"--fail-at=4"}),
                    makeOptions(outDir, &log));
    EXPECT_EQ(ctl.run(), 1u);

    const CampaignOutcome &beta = ctl.outcomes()[1];
    EXPECT_FALSE(beta.ok);
    EXPECT_NE(beta.error.find("render exited with status"),
              std::string::npos);
    // The shards themselves all completed; only the render failed.
    EXPECT_NE(log.str().find("merge beta"), std::string::npos);
    // The report WAS written (emitJson runs before the exit status):
    // it records the failing run rather than pretending success.
    EXPECT_NE(readFile(beta.report).find("injected run failure"),
              std::string::npos);
}

TEST(CampaignCtl, RerunResumesFromMergedJournalsWithoutRecompute)
{
    const std::string outDir = tempDir("resume");
    Manifest manifest =
        makeManifest(outDir, {"--die-at=4"}, {"--die-at=4"});

    // First pass: clean run WITHOUT the die flag to build journals.
    CampaignCtl first(makeManifest(outDir), makeOptions(outDir));
    ASSERT_EQ(first.run(), 0u);
    const std::string alphaReport =
        readFile(first.outcomes()[0].report);

    // Second pass resumes (fresh = false) with workers rigged to die
    // if they ever EXECUTE run 4: every shard journal is seeded from
    // the merged campaign journal, so nothing executes, nobody dies,
    // and the reports come out identical.
    CampaignCtlOptions options = makeOptions(outDir);
    options.fresh = false;
    CampaignCtl second(manifest, options);
    ASSERT_EQ(second.run(), 0u);
    for (const CampaignOutcome &outcome : second.outcomes()) {
        EXPECT_TRUE(outcome.ok) << outcome.error;
        // One spawn per shard plus the render — no respawns.
        EXPECT_EQ(outcome.spawns,
                  (outcome.name == "alpha" ? 3u : 2u) + 1u);
    }
    EXPECT_EQ(readFile(second.outcomes()[0].report), alphaReport);
}

} // namespace
} // namespace ctltest
} // namespace pth

int
main(int argc, char **argv)
{
    char self[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    pth::ctltest::gProgram =
        n > 0 ? std::string(self, static_cast<std::size_t>(n))
              : std::string(argv[0]);

    if (argc > 1 && !std::strcmp(argv[1], "--pth-worker"))
        return pth::ctltest::workerMain(argc, argv);

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
