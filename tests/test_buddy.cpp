/**
 * @file
 * Buddy-allocator property tests: no double allocation, coalescing,
 * lowest-first (consecutive) allocation — the behaviour the paper's
 * pair-selection step depends on — plus the frame-list allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "kernel/buddy_allocator.hh"

namespace pth
{
namespace
{

TEST(Buddy, AllocatesLowestFirst)
{
    BuddyAllocator buddy(100, 1024);
    EXPECT_EQ(buddy.alloc(), 100u);
    EXPECT_EQ(buddy.alloc(), 101u);
    EXPECT_EQ(buddy.alloc(), 102u);
}

TEST(Buddy, StreamingAllocationIsConsecutive)
{
    // The property the spray exploits: most allocations are adjacent.
    BuddyAllocator buddy(0, 4096);
    PhysFrame prev = buddy.alloc();
    unsigned consecutive = 0;
    for (int i = 0; i < 1000; ++i) {
        PhysFrame f = buddy.alloc();
        if (f == prev + 1)
            ++consecutive;
        prev = f;
    }
    EXPECT_EQ(consecutive, 1000u);
}

TEST(Buddy, NoDoubleAllocation)
{
    BuddyAllocator buddy(0, 2048);
    std::set<PhysFrame> seen;
    for (int i = 0; i < 2048; ++i) {
        PhysFrame f = buddy.alloc();
        ASSERT_NE(f, kInvalidFrame);
        EXPECT_TRUE(seen.insert(f).second) << "frame " << f << " twice";
    }
    EXPECT_EQ(buddy.alloc(), kInvalidFrame);
}

TEST(Buddy, FreeRestoresCapacity)
{
    BuddyAllocator buddy(0, 256);
    std::vector<PhysFrame> frames;
    for (int i = 0; i < 256; ++i)
        frames.push_back(buddy.alloc());
    EXPECT_EQ(buddy.freeFrames(), 0u);
    for (PhysFrame f : frames)
        buddy.free(f);
    EXPECT_EQ(buddy.freeFrames(), 256u);
}

TEST(Buddy, CoalescingRebuildsLargeBlocks)
{
    BuddyAllocator buddy(0, 1024);
    std::vector<PhysFrame> singles;
    for (int i = 0; i < 1024; ++i)
        singles.push_back(buddy.alloc());
    for (PhysFrame f : singles)
        buddy.free(f);
    // After full free + coalescing, an order-8 block must be available.
    PhysFrame big = buddy.alloc(8);
    EXPECT_NE(big, kInvalidFrame);
    EXPECT_EQ(big % 256, 0u);
}

TEST(Buddy, HigherOrderAllocationsAreAligned)
{
    BuddyAllocator buddy(0, 4096);
    for (unsigned order : {1u, 3u, 5u, 9u}) {
        PhysFrame f = buddy.alloc(order);
        ASSERT_NE(f, kInvalidFrame);
        EXPECT_EQ(f & ((1ull << order) - 1), 0u)
            << "order " << order << " block misaligned";
    }
}

TEST(Buddy, NonPowerOfTwoRangeFullyUsable)
{
    BuddyAllocator buddy(10, 1000);
    unsigned count = 0;
    while (buddy.alloc() != kInvalidFrame)
        ++count;
    EXPECT_EQ(count, 1000u);
}

TEST(Buddy, RandomAllocFreeStress)
{
    // Property: under random alloc/free, free-frame accounting stays
    // exact and nothing is handed out twice.
    BuddyAllocator buddy(0, 512);
    Rng rng(1234);
    std::set<PhysFrame> live;
    for (int step = 0; step < 5000; ++step) {
        if (rng.chance(0.55) && buddy.freeFrames() > 0) {
            PhysFrame f = buddy.alloc();
            ASSERT_NE(f, kInvalidFrame);
            EXPECT_TRUE(live.insert(f).second);
        } else if (!live.empty()) {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            buddy.free(*it);
            live.erase(it);
        }
        EXPECT_EQ(buddy.freeFrames(), 512 - live.size());
    }
}

TEST(Buddy, ContainsChecksRange)
{
    BuddyAllocator buddy(100, 50);
    EXPECT_TRUE(buddy.contains(100));
    EXPECT_TRUE(buddy.contains(149));
    EXPECT_FALSE(buddy.contains(99));
    EXPECT_FALSE(buddy.contains(150));
}

TEST(FrameList, AllocatesLowestFirst)
{
    FrameListAllocator list({5, 3, 9, 7});
    EXPECT_EQ(list.alloc(), 3u);
    EXPECT_EQ(list.alloc(), 5u);
    EXPECT_EQ(list.alloc(), 7u);
    EXPECT_EQ(list.alloc(), 9u);
    EXPECT_EQ(list.alloc(), kInvalidFrame);
}

TEST(FrameList, FreeReturnsToPool)
{
    FrameListAllocator list({1, 2});
    PhysFrame a = list.alloc();
    list.free(a);
    EXPECT_EQ(list.alloc(), a);
}

TEST(FrameList, ContainsTracksUniverse)
{
    FrameListAllocator list({4, 8});
    EXPECT_TRUE(list.contains(4));
    EXPECT_FALSE(list.contains(5));
}

} // namespace
} // namespace pth
