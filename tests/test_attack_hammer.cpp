/**
 * @file
 * Hammering-pipeline tests: pair finding with ground-truth checks,
 * the implicit hammer's DRAM-fetch rate and extrapolation, the flip
 * checker, the exploit stage (with rigged corruptions) and the
 * explicit clflush baseline.
 */

#include <gtest/gtest.h>

#include "attack/explicit_hammer.hh"
#include "attack/pthammer.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"
#include "paging/pte.hh"

namespace pth
{
namespace
{

struct HammerEnv : public ::testing::Test
{
    HammerEnv() : machine(MachineConfig::testSmall())
    {
        attack.superpages = true;
        attack.sprayBytes = 16ull << 20;
        attack.superpageSampleClasses = 2;
        attack.maxAttempts = 50;
        pthammer = std::make_unique<PThammerAttack>(machine, attack);
        pthammer->prepare();
    }

    Machine machine;
    AttackConfig attack;
    std::unique_ptr<PThammerAttack> pthammer;
};

TEST_F(HammerEnv, PairFinderProducesProvisionedPairs)
{
    auto pair = pthammer->pairs().next();
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->va2 - pair->va1, pthammer->pairs().pairStride());
    EXPECT_FALSE(pair->tlbSet1.empty());
    EXPECT_FALSE(pair->llcSet1.empty());
    EXPECT_EQ(pair->llcSet1.size(),
              machine.config().caches.llc.ways + attack.llcSetSizeMargin);
    EXPECT_GT(pair->llcSelectCycles, 0u);
}

TEST_F(HammerEnv, AcceptedPairsAreMostlySameBank)
{
    // Section IV-D: >95 % of timing-accepted pairs share a bank.
    KernelModule module(machine);
    unsigned sameBank = 0;
    unsigned oneRowApart = 0;
    const unsigned pairs = 12;
    for (unsigned i = 0; i < pairs; ++i) {
        auto pair = pthammer->pairs().next();
        ASSERT_TRUE(pair.has_value());
        Process &proc = machine.cpu().process();
        if (module.l1ptesSameBank(proc, pair->va1, pair->va2))
            ++sameBank;
        if (module.l1pteRowDistance(proc, pair->va1, pair->va2) == 2)
            ++oneRowApart;
    }
    EXPECT_GE(sameBank, pairs - 1);
    EXPECT_GE(oneRowApart, pairs * 3 / 4);
}

TEST_F(HammerEnv, ImplicitAccessFetchesL1pteFromDram)
{
    auto pair = pthammer->pairs().next();
    ASSERT_TRUE(pair.has_value());
    HammerRunResult r = pthammer->hammer().run(*pair, 256);
    EXPECT_GT(r.dramFetchRate, 0.7);
    EXPECT_GT(r.meanCyclesPerIteration, 100.0);
}

TEST_F(HammerEnv, HammerRunAdvancesSimulatedTime)
{
    auto pair = pthammer->pairs().next();
    ASSERT_TRUE(pair.has_value());
    Cycles before = machine.clock().now();
    HammerRunResult r = pthammer->hammer().run(*pair, 100000);
    EXPECT_EQ(machine.clock().now() - before, r.totalCycles);
    // Extrapolation must scale with iteration count.
    EXPECT_NEAR(static_cast<double>(r.totalCycles),
                r.meanCyclesPerIteration * 100000,
                r.meanCyclesPerIteration * 100000 * 0.2);
}

TEST_F(HammerEnv, MeasureRoundsReturnsPlausibleTimings)
{
    auto pair = pthammer->pairs().next();
    ASSERT_TRUE(pair.has_value());
    auto timings = pthammer->hammer().measureRounds(*pair, 50);
    ASSERT_EQ(timings.size(), 50u);
    for (Cycles t : timings) {
        EXPECT_GT(t, 200u);
        EXPECT_LT(t, 4000u);
    }
}

TEST_F(HammerEnv, RepeatedHammeringEventuallyFlips)
{
    // testSmall has dense weak rows, so a handful of pairs suffices.
    std::uint64_t flips = 0;
    for (int i = 0; i < 40 && !flips; ++i) {
        auto pair = pthammer->pairs().next();
        if (!pair)
            break;
        HammerRunResult r =
            pthammer->hammer().run(*pair, attack.hammerIterations);
        flips += r.flips;
    }
    EXPECT_GT(flips, 0u);
}

TEST_F(HammerEnv, CheckerChargesFullScan)
{
    Cycles before = machine.clock().now();
    pthammer->checker().check();
    Cycles elapsed = machine.clock().now() - before;
    EXPECT_GE(elapsed, pthammer->sprayer().sprayedPages() *
                           attack.checkCyclesPerPage);
}

TEST_F(HammerEnv, CheckerSeesInjectedPfnFlip)
{
    // Rig a flip through the DRAM device on a sprayed L1PTE line so it
    // lands in the flip log, then verify the checker reports the
    // affected virtual page.
    SprayManager &spray = pthammer->sprayer();
    VirtAddr victim = spray.regionBase(10) + 3 * kPageBytes;
    auto pteAddr =
        machine.cpu().process().pageTables()->l1pteAddress(victim);
    ASSERT_TRUE(pteAddr.has_value());
    machine.memory().flipBit(*pteAddr + 2, 3);  // PFN bit

    // The checker consumes the DRAM flip log, so inject a matching
    // event by flipping via the disturbance path is not possible here;
    // instead verify detection logic directly through readUser64.
    std::uint64_t value = 0;
    bool mapped = machine.cpu().readUser64(victim, value);
    EXPECT_TRUE(!mapped || value != spray.expectedMarker(10));
}

TEST_F(HammerEnv, ExploitTakesOverOwnPageTable)
{
    // Rig the corruption the hammer would produce: point one sprayed
    // PTE at another sprayed L1PT page.
    SprayManager &spray = pthammer->sprayer();
    Process &proc = machine.cpu().process();
    VirtAddr flippedVa = spray.regionBase(20) + 7 * kPageBytes;
    auto targetPt = proc.pageTables()->l1ptFrame(spray.regionBase(40));
    ASSERT_TRUE(targetPt.has_value());
    auto pteAddr = proc.pageTables()->l1pteAddress(flippedVa);
    machine.memory().write64(*pteAddr, makePte(*targetPt));

    Exploit exploit(machine, attack, spray);
    FlipFinding finding{flippedVa, 20};
    ExploitOutcome outcome = exploit.attempt(finding);
    EXPECT_TRUE(outcome.escalated);
    EXPECT_EQ(outcome.path, ExploitPath::OwnPtTakeover);
    EXPECT_TRUE(machine.kernel().processIsRoot(proc));
}

TEST_F(HammerEnv, ExploitOverwritesExposedCred)
{
    SprayManager &spray = pthammer->sprayer();
    Process &proc = machine.cpu().process();
    Process &victimProc = machine.kernel().createProcess(1000, true);
    PhysFrame credFrame =
        machine.kernel().credAddress(victimProc) >> kPageShift;

    VirtAddr flippedVa = spray.regionBase(21) + 9 * kPageBytes;
    auto pteAddr = proc.pageTables()->l1pteAddress(flippedVa);
    machine.memory().write64(*pteAddr, makePte(credFrame));

    Exploit exploit(machine, attack, spray);
    ExploitOutcome outcome = exploit.attempt({flippedVa, 21});
    EXPECT_TRUE(outcome.escalated);
    EXPECT_EQ(outcome.path, ExploitPath::CredOverwrite);
    EXPECT_TRUE(machine.kernel().processIsRoot(victimProc));
}

TEST_F(HammerEnv, ExploitRejectsUselessFlip)
{
    SprayManager &spray = pthammer->sprayer();
    Process &proc = machine.cpu().process();
    VirtAddr flippedVa = spray.regionBase(22) + 11 * kPageBytes;
    // Point the PTE at plain zero memory.
    auto pteAddr = proc.pageTables()->l1pteAddress(flippedVa);
    PhysFrame boring = machine.kernel().allocUserFrame(proc);
    machine.memory().write64(*pteAddr, makePte(boring));

    Exploit exploit(machine, attack, spray);
    ExploitOutcome outcome = exploit.attempt({flippedVa, 22});
    EXPECT_FALSE(outcome.escalated);
}

TEST(ExplicitHammerTest, PaddingIncreasesIterationCost)
{
    Machine machine(MachineConfig::testSmall());
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    AttackConfig attack;
    ExplicitHammer hammer(machine, attack);
    hammer.setup(8ull << 20);
    double base = hammer.measureIterationCycles(0);
    double padded = hammer.measureIterationCycles(500);
    EXPECT_NEAR(padded - base, 500.0, 60.0);
}

TEST(ExplicitHammerTest, FastHammeringFlips)
{
    Machine machine(MachineConfig::testSmall());
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    AttackConfig attack;
    ExplicitHammer hammer(machine, attack);
    hammer.setup(8ull << 20);
    ExplicitHammerResult r = hammer.run(0, /*budgetSeconds=*/600);
    EXPECT_TRUE(r.flipped);
    EXPECT_GT(r.secondsToFirstFlip, 0.0);
}

TEST(ExplicitHammerTest, SingleSidedIsWeakerThanDoubleSided)
{
    // Single-sided hammering halves the victim's disturbance, so at a
    // padding where double-sided still flips, single-sided may not —
    // and it must never flip where double-sided cannot.
    Machine machine(MachineConfig::testSmall());
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    AttackConfig attack;
    ExplicitHammer hammer(machine, attack);
    hammer.setup(8ull << 20);
    // testSmall window = 128M cycles, thresholds 50k-80k: at ~3800
    // cycles/iteration each row sees ~34k activations per window —
    // enough for a double-sided victim (68k summed) but not for a
    // single-sided one (34k < 50k).
    ExplicitHammerResult doubleSided = hammer.run(3500, 400);
    ExplicitHammerResult singleSided = hammer.runSingleSided(3500, 400);
    EXPECT_TRUE(doubleSided.flipped);
    EXPECT_FALSE(singleSided.flipped);
}

TEST(ExplicitHammerTest, SingleSidedStillFlipsAtFullSpeed)
{
    Machine machine(MachineConfig::testSmall());
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    AttackConfig attack;
    ExplicitHammer hammer(machine, attack);
    hammer.setup(8ull << 20);
    ExplicitHammerResult r = hammer.runSingleSided(0, 600);
    EXPECT_TRUE(r.flipped);
}

TEST(ExplicitHammerTest, ExtremePaddingPreventsFlips)
{
    Machine machine(MachineConfig::testSmall());
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    AttackConfig attack;
    ExplicitHammer hammer(machine, attack);
    hammer.setup(8ull << 20);
    // testSmall thresholds (~50k-80k per window of 128M cycles) stop
    // flipping past ~128e6/50000 = 2560-cycle iterations... pad far
    // beyond that.
    ExplicitHammerResult r = hammer.run(8000, /*budgetSeconds=*/120);
    EXPECT_FALSE(r.flipped);
}

} // namespace
} // namespace pth
