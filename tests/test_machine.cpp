/**
 * @file
 * Machine preset tests: the Table-I configurations and the CPU's
 * timed-access / batch / clflush semantics.
 */

#include <gtest/gtest.h>

#include "cpu/machine.hh"

namespace pth
{
namespace
{

TEST(MachineConfig, PaperMachinesMatchTableI)
{
    MachineConfig t420 = MachineConfig::lenovoT420();
    EXPECT_EQ(t420.caches.llc.ways, 12u);
    EXPECT_EQ(t420.caches.llc.capacity(), 3ull << 20);
    EXPECT_EQ(t420.dramGeometry.sizeBytes, 8ull << 30);
    EXPECT_EQ(t420.tlb.l1d.ways, 4u);
    EXPECT_EQ(t420.tlb.l2s.ways, 4u);

    MachineConfig x230 = MachineConfig::lenovoX230();
    EXPECT_EQ(x230.architecture, "IvyBridge");
    EXPECT_EQ(x230.caches.llc.capacity(), 3ull << 20);

    MachineConfig dell = MachineConfig::dellE6420();
    EXPECT_EQ(dell.caches.llc.ways, 16u);
    EXPECT_EQ(dell.caches.llc.capacity(), 4ull << 20);
    EXPECT_EQ(MachineConfig::paperMachines().size(), 3u);
}

TEST(MachineConfig, RowIndexStrideIs256KiB)
{
    // Table II / Section IV-D: RowsSize on the test machines.
    MachineConfig m = MachineConfig::lenovoT420();
    EXPECT_EQ(m.dramGeometry.rowIndexStride(), 256ull * 1024);
}

TEST(MachineConfig, SecondsCyclesRoundTrip)
{
    MachineConfig m = MachineConfig::lenovoT420();
    EXPECT_NEAR(m.seconds(m.cycles(1.5)), 1.5, 1e-9);
    EXPECT_EQ(m.cycles(1.0), static_cast<Cycles>(2.6e9));
}

TEST(MachineConfig, RefreshWindowIs64Ms)
{
    for (const MachineConfig &m : MachineConfig::paperMachines())
        EXPECT_NEAR(m.seconds(m.disturbance.refreshWindowCycles), 0.064,
                    1e-9);
}

struct CpuFixture : public ::testing::Test
{
    CpuFixture() : machine(MachineConfig::testSmall())
    {
        proc = &machine.kernel().createProcess(1000);
        machine.cpu().setProcess(*proc);
        machine.kernel().mmapAnon(*proc, kVa, 64 * kPageBytes);
    }

    static constexpr VirtAddr kVa = 0x1000'0000;
    Machine machine;
    Process *proc;
};

TEST_F(CpuFixture, AccessAdvancesClock)
{
    Cycles before = machine.clock().now();
    AccessOutcome out = machine.cpu().access(kVa);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(machine.clock().now(), before + out.latency);
}

TEST_F(CpuFixture, RepeatAccessGetsFaster)
{
    AccessOutcome cold = machine.cpu().access(kVa);
    AccessOutcome warm = machine.cpu().access(kVa);
    EXPECT_LT(warm.latency, cold.latency);
    EXPECT_FALSE(warm.causedWalk);
}

TEST_F(CpuFixture, BatchOverlapsLatencies)
{
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 16; ++i)
        addrs.push_back(kVa + i * kPageBytes);
    // Cold serial cost for comparison.
    Machine fresh(MachineConfig::testSmall());
    Process &p2 = fresh.kernel().createProcess(1000);
    fresh.cpu().setProcess(p2);
    fresh.kernel().mmapAnon(p2, kVa, 64 * kPageBytes);
    Cycles serial = 0;
    for (VirtAddr va : addrs)
        serial += fresh.cpu().access(va).latency;

    Cycles batched = machine.cpu().accessBatch(addrs);
    EXPECT_LT(batched, serial);
    EXPECT_GT(batched, 0u);
}

TEST_F(CpuFixture, ClflushForcesNextAccessToDram)
{
    machine.cpu().access(kVa);
    machine.cpu().clflush(kVa);
    AccessOutcome out = machine.cpu().access(kVa);
    EXPECT_GE(out.latency,
              machine.config().dramTiming.rowHit);
}

TEST_F(CpuFixture, NopsCostConfiguredCycles)
{
    Cycles before = machine.clock().now();
    machine.cpu().nops(100);
    EXPECT_EQ(machine.clock().now(), before + 100 *
              machine.config().nopCycles);
}

TEST_F(CpuFixture, RdtscChargesAndReturnsTime)
{
    Cycles t1 = machine.cpu().rdtsc();
    Cycles t2 = machine.cpu().rdtsc();
    EXPECT_GT(t2, t1);
}

TEST_F(CpuFixture, UserReadsFollowPageTables)
{
    PhysFrame frame = proc->pageTables()->translate(kVa)->frame;
    machine.memory().write64(frame << kPageShift, 0xabcdef);
    std::uint64_t value = 0;
    EXPECT_TRUE(machine.cpu().readUser64(kVa, value));
    EXPECT_EQ(value, 0xabcdefull);
    EXPECT_FALSE(machine.cpu().readUser64(0xdeadULL << 32, value));
}

TEST_F(CpuFixture, UserWritesLandInPhysicalMemory)
{
    EXPECT_TRUE(machine.cpu().writeUser64(kVa + 8, 0x42));
    PhysFrame frame = proc->pageTables()->translate(kVa)->frame;
    EXPECT_EQ(machine.memory().read64((frame << kPageShift) + 8), 0x42u);
}

TEST_F(CpuFixture, ContextSwitchFlushesTlb)
{
    machine.cpu().access(kVa);
    Process &other = machine.kernel().createProcess(1001);
    machine.cpu().setProcess(other);
    machine.cpu().setProcess(*proc);
    AccessOutcome out = machine.cpu().access(kVa);
    EXPECT_TRUE(out.causedWalk);
}

} // namespace
} // namespace pth
