/**
 * @file
 * Kernel substrate tests: processes, creds, mmap flavours, the
 * spraying fast path, and privilege checks.
 */

#include <gtest/gtest.h>

#include "cpu/machine.hh"

namespace pth
{
namespace
{

struct KernelFixture : public ::testing::Test
{
    KernelFixture() : machine(MachineConfig::testSmall()) {}
    Machine machine;
};

TEST_F(KernelFixture, ProcessesGetDistinctPids)
{
    Process &a = machine.kernel().createProcess(1000);
    Process &b = machine.kernel().createProcess(1001);
    EXPECT_NE(a.pid(), b.pid());
    EXPECT_EQ(machine.kernel().process(a.pid()).uid(), 1000u);
}

TEST_F(KernelFixture, LightweightProcessHasNoAddressSpace)
{
    Process &p = machine.kernel().createProcess(1000, true);
    EXPECT_EQ(p.pageTables(), nullptr);
}

TEST_F(KernelFixture, CredsWrittenToKernelMemory)
{
    Process &p = machine.kernel().createProcess(1234);
    PhysAddr cred = machine.kernel().credAddress(p);
    EXPECT_EQ(machine.memory().read64(cred),
              machine.kernel().config().credMagic);
    std::uint64_t uidWord = machine.memory().read64(cred + 8);
    EXPECT_EQ(static_cast<std::uint32_t>(uidWord), 1234u);
    EXPECT_EQ(machine.memory().read64(cred + 16), p.pid());
}

TEST_F(KernelFixture, RootCheckReadsMemory)
{
    Process &p = machine.kernel().createProcess(1000);
    EXPECT_FALSE(machine.kernel().processIsRoot(p));
    // The rowhammer threat in one line: whoever can write this word is
    // root.
    machine.memory().write64(machine.kernel().credAddress(p) + 8, 0);
    EXPECT_TRUE(machine.kernel().processIsRoot(p));
}

TEST_F(KernelFixture, CredPagesTracked)
{
    Process &p = machine.kernel().createProcess(1000);
    PhysFrame credFrame = machine.kernel().credAddress(p) >> kPageShift;
    EXPECT_TRUE(machine.kernel().frameIsCredPage(credFrame));
}

TEST_F(KernelFixture, MmapAnonCreatesDistinctFrames)
{
    Process &p = machine.kernel().createProcess(1000);
    machine.kernel().mmapAnon(p, 0x1000'0000, 8 * kPageBytes);
    std::set<PhysFrame> frames;
    for (int i = 0; i < 8; ++i) {
        auto t = p.pageTables()->translate(0x1000'0000 + i * kPageBytes);
        ASSERT_TRUE(t.has_value());
        frames.insert(t->frame);
    }
    EXPECT_EQ(frames.size(), 8u);
}

TEST_F(KernelFixture, MmapSharedMapsOneFrameEverywhere)
{
    Process &p = machine.kernel().createProcess(1000);
    PhysFrame shared = machine.kernel().allocUserFrame(p);
    machine.kernel().mmapSharedSameFrame(p, 0x2000'0000, 64 * kPageBytes,
                                         shared);
    for (int i = 0; i < 64; i += 7) {
        auto t = p.pageTables()->translate(0x2000'0000 + i * kPageBytes);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->frame, shared);
    }
}

TEST_F(KernelFixture, SprayCountsL1ptPages)
{
    Process &p = machine.kernel().createProcess(1000);
    PhysFrame shared = machine.kernel().allocUserFrame(p);
    std::uint64_t before = machine.kernel().l1ptCount();
    // 8 MiB of VA = 4 L1PT pages.
    machine.kernel().mmapSharedSameFrame(p, 0x4000'0000'0000,
                                         4 * kSuperPageBytes, shared);
    EXPECT_EQ(machine.kernel().l1ptCount(), before + 4);
}

TEST_F(KernelFixture, L1ptFramesAreIdentified)
{
    Process &p = machine.kernel().createProcess(1000);
    machine.kernel().mmapAnon(p, 0x1000'0000, kPageBytes);
    auto l1pt = p.pageTables()->l1ptFrame(0x1000'0000);
    ASSERT_TRUE(l1pt.has_value());
    EXPECT_TRUE(machine.kernel().frameIsL1pt(*l1pt));
    EXPECT_FALSE(machine.kernel().frameIsL1pt(1));
}

TEST_F(KernelFixture, MmapChargesTime)
{
    Process &p = machine.kernel().createProcess(1000);
    Cycles before = machine.clock().now();
    machine.kernel().mmapAnon(p, 0x1000'0000, 64 * kPageBytes);
    Cycles elapsed = machine.clock().now() - before;
    EXPECT_GE(elapsed, 64 * machine.kernel().config().pageFaultCycles);
}

TEST_F(KernelFixture, MmapHugeBuildsAlignedSuperpage)
{
    Process &p = machine.kernel().createProcess(1000);
    machine.kernel().mmapHuge(p, 0x6000'0000'0000, kSuperPageBytes);
    auto t = p.pageTables()->translate(0x6000'0000'0000);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->huge);
    EXPECT_EQ(t->frame & 0x1ff, 0u);
    // Virtual bits 0-20 equal physical bits 0-20 (what the superpage
    // pool build relies on).
    auto t2 = p.pageTables()->translate(0x6000'0000'0000 + 0x12345);
    EXPECT_EQ((t2->frame << kPageShift | 0x345) & (kSuperPageBytes - 1),
              0x12345u);
}

TEST_F(KernelFixture, ExhaustKernelZoneConsumesFrames)
{
    Machine m(MachineConfig::testSmall());
    std::uint64_t zone =
        m.kernel().defense().zoneFrames(AllocIntent::KernelData);
    m.kernel().exhaustKernelZone(0.5);
    // Subsequent kernel allocations continue from past the burn mark.
    PhysFrame f = m.kernel().defense().alloc(AllocIntent::KernelData, 0);
    EXPECT_GT(f, zone / 4);
}

TEST_F(KernelFixture, BootNoiseLeavesHoles)
{
    // Consecutive allocation right after boot is good but not perfect.
    Process &p = machine.kernel().createProcess(1000);
    machine.kernel().mmapAnon(p, 0x1000'0000, 512 * kPageBytes);
    unsigned jumps = 0;
    PhysFrame prev = p.pageTables()->translate(0x1000'0000)->frame;
    for (int i = 1; i < 512; ++i) {
        PhysFrame f =
            p.pageTables()->translate(0x1000'0000 + i * kPageBytes)->frame;
        if (f != prev + 1)
            ++jumps;
        prev = f;
    }
    EXPECT_GT(jumps, 0u);
    EXPECT_LT(jumps, 128u);
}

} // namespace
} // namespace pth
