/**
 * @file
 * Cross-machine invariants, swept over all three Table-I presets: the
 * PThammer fast path, eviction-set machinery, pair provisioning,
 * per-iteration cycle bands and the flip-ceiling physics must hold on
 * every evaluated machine, not just the T420.
 */

#include <gtest/gtest.h>

#include "attack/pthammer.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"

namespace pth
{
namespace
{

class PaperMachine : public ::testing::TestWithParam<int>
{
  protected:
    MachineConfig
    config() const
    {
        return MachineConfig::paperMachines()[static_cast<std::size_t>(
            GetParam())];
    }
};

TEST_P(PaperMachine, GeometryIsSelfConsistent)
{
    MachineConfig m = config();
    // LLC capacity decomposes exactly.
    EXPECT_EQ(m.caches.llc.capacity(),
              m.caches.llc.sets * m.caches.llc.ways *
                  m.caches.llc.slices * kLineBytes);
    // The refresh window is 64 ms at the machine's own clock.
    EXPECT_NEAR(m.seconds(m.disturbance.refreshWindowCycles), 0.064,
                1e-9);
    // The flip ceiling implied by the weakest cells sits in the
    // 1400-1800 cycles/iteration range the paper measures (Figure 5):
    // disturbance = 2 * window / cyclesPerIter >= thresholdMin.
    double ceiling = 2.0 *
                     static_cast<double>(
                         m.disturbance.refreshWindowCycles) /
                     static_cast<double>(m.disturbance.thresholdMin);
    EXPECT_GT(ceiling, 1400.0);
    EXPECT_LT(ceiling, 1800.0);
}

TEST_P(PaperMachine, WalkerTakesShortPathAfterWarmup)
{
    Machine machine(config());
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    machine.kernel().mmapAnon(proc, 0x1000'0000, 4 * kPageBytes);
    machine.cpu().access(0x1000'0000);
    machine.mmu().invalidatePage(0x1000'0000);
    TranslateResult r = machine.mmu().translate(0x1000'0000,
                                                machine.clock().now());
    EXPECT_TRUE(r.causedWalk);
    EXPECT_EQ(r.walkStartLevel, 1u)
        << "PDE cache must short-circuit the walk";
}

TEST_P(PaperMachine, ImplicitAccessHitsDramOnEveryMachine)
{
    Machine machine(config());
    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 256ull << 20;
    attack.superpageSampleClasses = 4;
    PThammerAttack pthammer(machine, attack);
    pthammer.prepare();
    auto pair = pthammer.pairs().next();
    ASSERT_TRUE(pair.has_value());
    HammerRunResult r = pthammer.hammer().run(*pair, 128);
    EXPECT_GT(r.dramFetchRate, 0.7);
}

TEST_P(PaperMachine, IterationCostBelowFlipCeiling)
{
    Machine machine(config());
    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 256ull << 20;
    attack.superpageSampleClasses = 4;
    PThammerAttack pthammer(machine, attack);
    pthammer.prepare();
    auto pair = pthammer.pairs().next();
    ASSERT_TRUE(pair.has_value());
    auto timings = pthammer.hammer().measureRounds(*pair, 20);
    double ceiling = 2.0 *
                     static_cast<double>(
                         config().disturbance.refreshWindowCycles) /
                     static_cast<double>(
                         config().disturbance.thresholdMin);
    for (Cycles t : timings) {
        EXPECT_LT(static_cast<double>(t), ceiling)
            << "hammering too slow to ever flip";
        EXPECT_GT(t, 400u);
    }
}

TEST_P(PaperMachine, DellIsSlowerThanLenovos)
{
    // Figure 6's cross-machine ordering: the 16-way LLC needs larger
    // eviction sets, so the Dell hammers more slowly.
    if (GetParam() != 2)
        GTEST_SKIP() << "comparison runs once, on the Dell instance";
    std::vector<double> means;
    for (const MachineConfig &cfg : MachineConfig::paperMachines()) {
        Machine machine(cfg);
        AttackConfig attack;
        attack.superpages = true;
        attack.sprayBytes = 256ull << 20;
        attack.superpageSampleClasses = 4;
        PThammerAttack pthammer(machine, attack);
        pthammer.prepare();
        auto pair = pthammer.pairs().next();
        ASSERT_TRUE(pair.has_value());
        auto timings = pthammer.hammer().measureRounds(*pair, 12);
        double sum = 0;
        for (Cycles t : timings)
            sum += static_cast<double>(t);
        means.push_back(sum / static_cast<double>(timings.size()));
    }
    EXPECT_GT(means[2], means[0]);
    EXPECT_GT(means[2], means[1]);
}

TEST_P(PaperMachine, TlbMinimalSizeExceedsAssociativity)
{
    Machine machine(config());
    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 64ull << 20;
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    SprayManager sprayer(machine, attack);
    sprayer.spray();
    TlbEvictionTool tlb(machine, attack);
    tlb.prepare();
    KernelModule module(machine);
    unsigned minimal =
        tlb.findMinimalSetSize(sprayer.randomTarget(3), module);
    EXPECT_GT(minimal, config().tlb.l2s.ways);
    EXPECT_LE(minimal, 16u);
}

TEST_P(PaperMachine, PairStrideIs256MiB)
{
    Machine machine(config());
    AttackConfig attack;
    attack.sprayBytes = 64ull << 20;
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    SprayManager sprayer(machine, attack);
    TlbEvictionTool tlb(machine, attack);
    LlcEvictionPool pool(machine, attack);
    EvictionSetSelector selector(machine, attack, pool, tlb);
    PairFinder pairs(machine, attack, sprayer, tlb, selector);
    // 2 * RowsSize * 512 with RowsSize = 256 KiB.
    EXPECT_EQ(pairs.pairStride(), 256ull << 20);
}

TEST_P(PaperMachine, BankConflictThresholdSeparatesTimings)
{
    Machine machine(config());
    AttackConfig attack;
    LatencyProbe probe(machine.cpu(), machine.config(), attack);
    // The threshold must sit strictly between the fast (different
    // bank) and slow (same bank, row conflict) L1PTE fetch paths.
    Cycles overhead = machine.config().caches.l1d.latency +
                      machine.config().caches.l2.latency +
                      machine.config().caches.llc.latency;
    EXPECT_GT(probe.bankConflictThreshold(),
              overhead + machine.config().dramTiming.rowClosed);
    EXPECT_LT(probe.bankConflictThreshold(),
              overhead + machine.config().dramTiming.rowConflict +
                  machine.config().tlb.l2HitLatency + 20);
    EXPECT_GT(probe.dramThreshold(), overhead);
    EXPECT_LT(probe.dramThreshold(),
              overhead + machine.config().dramTiming.rowHit + 100);
}

INSTANTIATE_TEST_SUITE_P(AllThree, PaperMachine,
                         ::testing::Values(0, 1, 2));

} // namespace
} // namespace pth
