/**
 * @file
 * Tests for the DRAM device: row-buffer timing, refresh-window
 * disturbance accounting, flip orientation (true/anti cells), and the
 * equivalence of detailed and bulk (extrapolated) hammering.
 */

#include <gtest/gtest.h>

#include "dram/dram.hh"
#include "mem/physical_memory.hh"

namespace pth
{
namespace
{

struct DramFixture : public ::testing::Test
{
    DramFixture()
    {
        geometry.sizeBytes = 256ull << 20;
        geometry.banks = 32;
        geometry.rowBytes = 8192;
        timing = {100, 150, 200};
        disturbance.refreshWindowCycles = 1'000'000;
        disturbance.weakRowProbability = 0.05;
        disturbance.thresholdMin = 1000;
        disturbance.thresholdMax = 1200;
        disturbance.seed = 0xd0d0;
        mem = std::make_unique<PhysicalMemory>(geometry.sizeBytes);
        dram = std::make_unique<Dram>(geometry, timing, disturbance, *mem);
    }

    /** First row >= startRow in bank 0 that is weak / not weak. */
    std::uint64_t
    findRow(bool weak, std::uint64_t startRow = 1)
    {
        for (std::uint64_t row = startRow; row < geometry.rows() - 2;
             ++row)
            if (dram->vulnerability().rowIsWeak(0, row) == weak)
                return row;
        return 0;
    }

    PhysAddr
    addrOf(unsigned bank, std::uint64_t row, std::uint64_t col = 0)
    {
        return dram->mapping().compose({bank, row, col});
    }

    DramGeometry geometry;
    DramTiming timing;
    DisturbanceConfig disturbance;
    std::unique_ptr<PhysicalMemory> mem;
    std::unique_ptr<Dram> dram;
};

TEST_F(DramFixture, FirstAccessActivatesClosedBank)
{
    auto r = dram->access(addrOf(0, 10), 0);
    EXPECT_EQ(r.latency, timing.rowClosed);
    EXPECT_TRUE(r.activated);
    EXPECT_FALSE(r.rowHit);
}

TEST_F(DramFixture, SameRowHitsRowBuffer)
{
    dram->access(addrOf(0, 10), 0);
    auto r = dram->access(addrOf(0, 10, 128), 10);
    EXPECT_EQ(r.latency, timing.rowHit);
    EXPECT_TRUE(r.rowHit);
    EXPECT_FALSE(r.activated);
}

TEST_F(DramFixture, DifferentRowSameBankConflicts)
{
    dram->access(addrOf(0, 10), 0);
    auto r = dram->access(addrOf(0, 11), 10);
    EXPECT_EQ(r.latency, timing.rowConflict);
    EXPECT_TRUE(r.activated);
}

TEST_F(DramFixture, DifferentBanksDoNotConflict)
{
    dram->access(addrOf(0, 10), 0);
    auto r = dram->access(addrOf(1, 11), 10);
    EXPECT_EQ(r.latency, timing.rowClosed);
}

TEST_F(DramFixture, AlternatingRowsAlwaysActivate)
{
    // The double-sided hammering pattern: every access activates.
    PhysAddr a = addrOf(0, 20);
    PhysAddr b = addrOf(0, 22);
    std::uint64_t before = dram->totalActivations();
    for (int i = 0; i < 100; ++i) {
        dram->access(a, i * 10);
        dram->access(b, i * 10 + 5);
    }
    EXPECT_EQ(dram->totalActivations() - before, 200u);
}

TEST_F(DramFixture, BulkHammerFlipsWeakNeighbour)
{
    std::uint64_t victim = findRow(true);
    ASSERT_GT(victim, 0u);
    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    EXPECT_FALSE(flips.empty());
    for (const FlipEvent &f : flips) {
        EXPECT_EQ(f.bank, 0u);
        EXPECT_EQ(f.row, victim);
    }
}

TEST_F(DramFixture, BulkHammerBelowThresholdNoFlips)
{
    std::uint64_t victim = findRow(true);
    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMin / 2 - 1, 4);
    EXPECT_TRUE(flips.empty());
}

TEST_F(DramFixture, SingleSidedNeedsFullThreshold)
{
    // One aggressor contributes half the disturbance of double-sided.
    std::uint64_t victim = findRow(true);
    auto cells = dram->vulnerability().weakCells(0, victim);
    ASSERT_FALSE(cells.empty());
    auto none = dram->hammerBulk(0, {victim - 1},
                                 disturbance.thresholdMin - 1, 1);
    EXPECT_TRUE(none.empty());
    auto some = dram->hammerBulk(0, {victim - 1},
                                 disturbance.thresholdMax + 1, 1);
    EXPECT_FALSE(some.empty());
}

TEST_F(DramFixture, TrueCellsOnlyDischarge)
{
    std::uint64_t victim = findRow(true);
    // Prefill the victim row with all-ones so true cells can flip.
    PhysFrame frames[2];
    dram->mapping().framesInRow(0, victim, frames);
    for (PhysFrame f : frames)
        mem->fillFramePattern(f, ~0ull);

    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    for (const FlipEvent &f : flips) {
        // All-ones data: only true cells (1 -> 0) may flip.
        EXPECT_TRUE(f.wasOne);
        EXPECT_EQ((mem->read8(f.address) >> f.bitInByte) & 1, 0u);
    }
}

TEST_F(DramFixture, AntiCellsOnlyCharge)
{
    std::uint64_t victim = findRow(true);
    // Zero-filled rows: only anti cells (0 -> 1) may flip.
    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    for (const FlipEvent &f : flips) {
        EXPECT_FALSE(f.wasOne);
        EXPECT_EQ((mem->read8(f.address) >> f.bitInByte) & 1, 1u);
    }
}

TEST_F(DramFixture, CellsFlipAtMostOnce)
{
    std::uint64_t victim = findRow(true);
    auto first = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    auto second = dram->hammerBulk(0, {victim - 1, victim + 1},
                                   disturbance.thresholdMax + 1, 1);
    EXPECT_FALSE(first.empty());
    EXPECT_TRUE(second.empty());
}

TEST_F(DramFixture, RefreshWindowResetsDisturbance)
{
    std::uint64_t victim = findRow(true);
    PhysAddr a = addrOf(0, victim - 1);
    PhysAddr b = addrOf(0, victim + 1);
    // Spread the activations over many refresh windows: no single
    // window accumulates the threshold, so nothing flips.
    Cycles window = disturbance.refreshWindowCycles;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        Cycles t = i * (window / 10);
        dram->access(a, t);
        dram->access(b, t + 1);
    }
    EXPECT_EQ(dram->totalFlips(), 0u);
}

TEST_F(DramFixture, DetailedHammeringAlsoFlips)
{
    // The detailed per-access path must produce the same flips the
    // bulk path does when the rate is equivalent.
    std::uint64_t victim = findRow(true);
    PhysAddr a = addrOf(0, victim - 1);
    PhysAddr b = addrOf(0, victim + 1);
    // All activations inside one refresh window, above threshold.
    for (std::uint64_t i = 0; i <= disturbance.thresholdMax; ++i) {
        dram->access(a, i * 2);
        dram->access(b, i * 2 + 1);
    }
    EXPECT_GT(dram->totalFlips(), 0u);
}

TEST_F(DramFixture, DrainFlipsEmptiesQueue)
{
    std::uint64_t victim = findRow(true);
    dram->hammerBulk(0, {victim - 1, victim + 1},
                     disturbance.thresholdMax + 1, 1);
    auto drained = dram->drainFlips();
    EXPECT_FALSE(drained.empty());
    EXPECT_TRUE(dram->drainFlips().empty());
}

TEST_F(DramFixture, FlipsAreMonotoneInActivationCount)
{
    // Property: more activations can only flip a superset of cells.
    std::uint64_t victim = findRow(true);
    for (std::uint64_t acts :
         {disturbance.thresholdMin - 1, disturbance.thresholdMin,
          disturbance.thresholdMax, disturbance.thresholdMax * 2}) {
        DramGeometry g = geometry;
        PhysicalMemory freshMem(g.sizeBytes);
        Dram freshDram(g, timing, disturbance, freshMem);
        auto flips = freshDram.hammerBulk(0, {victim - 1, victim + 1},
                                          acts / 2, 1);
        std::size_t expectedAtLeast = 0;
        for (const WeakCell &cell :
             freshDram.vulnerability().weakCells(0, victim)) {
            if (cell.threshold <= acts && !cell.trueCell)
                ++expectedAtLeast;  // zero-filled memory: anti cells
        }
        EXPECT_EQ(flips.size(), expectedAtLeast);
    }
}

TEST_F(DramFixture, ResetClosesBanksAndClearsCounters)
{
    dram->access(addrOf(0, 5), 0);
    dram->reset();
    auto r = dram->access(addrOf(0, 5), 10);
    EXPECT_EQ(r.latency, timing.rowClosed);
}

} // namespace
} // namespace pth
