/**
 * @file
 * Tests for the DRAM device: row-buffer timing, refresh-window
 * disturbance accounting, flip orientation (true/anti cells), and the
 * equivalence of detailed and bulk (extrapolated) hammering.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hh"
#include "dram/dram.hh"
#include "mem/physical_memory.hh"

namespace pth
{
namespace
{

struct DramFixture : public ::testing::Test
{
    DramFixture()
    {
        geometry.sizeBytes = 256ull << 20;
        geometry.banks = 32;
        geometry.rowBytes = 8192;
        timing = {100, 150, 200};
        disturbance.refreshWindowCycles = 1'000'000;
        disturbance.weakRowProbability = 0.05;
        disturbance.thresholdMin = 1000;
        disturbance.thresholdMax = 1200;
        disturbance.seed = 0xd0d0;
        mem = std::make_unique<PhysicalMemory>(geometry.sizeBytes);
        dram = std::make_unique<Dram>(geometry, timing, disturbance, *mem);
    }

    /** First row >= startRow in bank 0 that is weak / not weak. */
    std::uint64_t
    findRow(bool weak, std::uint64_t startRow = 1)
    {
        for (std::uint64_t row = startRow; row < geometry.rows() - 2;
             ++row)
            if (dram->vulnerability().rowIsWeak(0, row) == weak)
                return row;
        return 0;
    }

    /** First weak row >= startRow in bank 0 holding an anti cell (the
     * orientation that flips in zero-filled memory). */
    std::uint64_t
    findAntiRow(std::uint64_t startRow = 1)
    {
        for (std::uint64_t row = startRow; row < geometry.rows() - 2;
             ++row)
            for (const WeakCell &cell :
                 dram->vulnerability().weakCells(0, row))
                if (!cell.trueCell)
                    return row;
        return 0;
    }

    PhysAddr
    addrOf(unsigned bank, std::uint64_t row, std::uint64_t col = 0)
    {
        return dram->mapping().compose({bank, row, col});
    }

    DramGeometry geometry;
    DramTiming timing;
    DisturbanceConfig disturbance;
    std::unique_ptr<PhysicalMemory> mem;
    std::unique_ptr<Dram> dram;
};

TEST_F(DramFixture, FirstAccessActivatesClosedBank)
{
    auto r = dram->access(addrOf(0, 10), 0);
    EXPECT_EQ(r.latency, timing.rowClosed);
    EXPECT_TRUE(r.activated);
    EXPECT_FALSE(r.rowHit);
}

TEST_F(DramFixture, SameRowHitsRowBuffer)
{
    dram->access(addrOf(0, 10), 0);
    auto r = dram->access(addrOf(0, 10, 128), 10);
    EXPECT_EQ(r.latency, timing.rowHit);
    EXPECT_TRUE(r.rowHit);
    EXPECT_FALSE(r.activated);
}

TEST_F(DramFixture, DifferentRowSameBankConflicts)
{
    dram->access(addrOf(0, 10), 0);
    auto r = dram->access(addrOf(0, 11), 10);
    EXPECT_EQ(r.latency, timing.rowConflict);
    EXPECT_TRUE(r.activated);
}

TEST_F(DramFixture, DifferentBanksDoNotConflict)
{
    dram->access(addrOf(0, 10), 0);
    auto r = dram->access(addrOf(1, 11), 10);
    EXPECT_EQ(r.latency, timing.rowClosed);
}

TEST_F(DramFixture, AlternatingRowsAlwaysActivate)
{
    // The double-sided hammering pattern: every access activates.
    PhysAddr a = addrOf(0, 20);
    PhysAddr b = addrOf(0, 22);
    std::uint64_t before = dram->totalActivations();
    for (int i = 0; i < 100; ++i) {
        dram->access(a, i * 10);
        dram->access(b, i * 10 + 5);
    }
    EXPECT_EQ(dram->totalActivations() - before, 200u);
}

TEST_F(DramFixture, BulkHammerFlipsWeakNeighbour)
{
    std::uint64_t victim = findRow(true);
    ASSERT_GT(victim, 0u);
    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    EXPECT_FALSE(flips.empty());
    for (const FlipEvent &f : flips) {
        EXPECT_EQ(f.bank, 0u);
        EXPECT_EQ(f.row, victim);
    }
}

TEST_F(DramFixture, BulkHammerBelowThresholdNoFlips)
{
    std::uint64_t victim = findRow(true);
    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMin / 2 - 1, 4);
    EXPECT_TRUE(flips.empty());
}

TEST_F(DramFixture, SingleSidedNeedsFullThreshold)
{
    // One aggressor contributes half the disturbance of double-sided.
    std::uint64_t victim = findRow(true);
    auto cells = dram->vulnerability().weakCells(0, victim);
    ASSERT_FALSE(cells.empty());
    auto none = dram->hammerBulk(0, {victim - 1},
                                 disturbance.thresholdMin - 1, 1);
    EXPECT_TRUE(none.empty());
    auto some = dram->hammerBulk(0, {victim - 1},
                                 disturbance.thresholdMax + 1, 1);
    EXPECT_FALSE(some.empty());
}

TEST_F(DramFixture, TrueCellsOnlyDischarge)
{
    std::uint64_t victim = findRow(true);
    // Prefill the victim row with all-ones so true cells can flip.
    for (PhysFrame f : dram->mapping().framesInRow(0, victim))
        mem->fillFramePattern(f, ~0ull);

    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    for (const FlipEvent &f : flips) {
        // All-ones data: only true cells (1 -> 0) may flip.
        EXPECT_TRUE(f.wasOne);
        EXPECT_EQ((mem->read8(f.address) >> f.bitInByte) & 1, 0u);
    }
}

TEST_F(DramFixture, AntiCellsOnlyCharge)
{
    std::uint64_t victim = findRow(true);
    // Zero-filled rows: only anti cells (0 -> 1) may flip.
    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    for (const FlipEvent &f : flips) {
        EXPECT_FALSE(f.wasOne);
        EXPECT_EQ((mem->read8(f.address) >> f.bitInByte) & 1, 1u);
    }
}

TEST_F(DramFixture, CellsFlipAtMostOnce)
{
    std::uint64_t victim = findRow(true);
    auto first = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    auto second = dram->hammerBulk(0, {victim - 1, victim + 1},
                                   disturbance.thresholdMax + 1, 1);
    EXPECT_FALSE(first.empty());
    EXPECT_TRUE(second.empty());
}

TEST_F(DramFixture, RefreshWindowResetsDisturbance)
{
    std::uint64_t victim = findRow(true);
    PhysAddr a = addrOf(0, victim - 1);
    PhysAddr b = addrOf(0, victim + 1);
    // Spread the activations over many refresh windows: no single
    // window accumulates the threshold, so nothing flips.
    Cycles window = disturbance.refreshWindowCycles;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        Cycles t = i * (window / 10);
        dram->access(a, t);
        dram->access(b, t + 1);
    }
    EXPECT_EQ(dram->totalFlips(), 0u);
}

TEST_F(DramFixture, DetailedHammeringAlsoFlips)
{
    // The detailed per-access path must produce the same flips the
    // bulk path does when the rate is equivalent.
    std::uint64_t victim = findRow(true);
    PhysAddr a = addrOf(0, victim - 1);
    PhysAddr b = addrOf(0, victim + 1);
    // All activations inside one refresh window, above threshold.
    for (std::uint64_t i = 0; i <= disturbance.thresholdMax; ++i) {
        dram->access(a, i * 2);
        dram->access(b, i * 2 + 1);
    }
    EXPECT_GT(dram->totalFlips(), 0u);
}

TEST_F(DramFixture, DrainFlipsEmptiesQueue)
{
    std::uint64_t victim = findRow(true);
    dram->hammerBulk(0, {victim - 1, victim + 1},
                     disturbance.thresholdMax + 1, 1);
    auto drained = dram->drainFlips();
    EXPECT_FALSE(drained.empty());
    EXPECT_TRUE(dram->drainFlips().empty());
}

TEST_F(DramFixture, FlipsAreMonotoneInActivationCount)
{
    // Property: more activations can only flip a superset of cells.
    std::uint64_t victim = findRow(true);
    for (std::uint64_t acts :
         {disturbance.thresholdMin - 1, disturbance.thresholdMin,
          disturbance.thresholdMax, disturbance.thresholdMax * 2}) {
        DramGeometry g = geometry;
        PhysicalMemory freshMem(g.sizeBytes);
        Dram freshDram(g, timing, disturbance, freshMem);
        auto flips = freshDram.hammerBulk(0, {victim - 1, victim + 1},
                                          acts / 2, 1);
        std::size_t expectedAtLeast = 0;
        for (const WeakCell &cell :
             freshDram.vulnerability().weakCells(0, victim)) {
            if (cell.threshold <= acts && !cell.trueCell)
                ++expectedAtLeast;  // zero-filled memory: anti cells
        }
        EXPECT_EQ(flips.size(), expectedAtLeast);
    }
}

TEST_F(DramFixture, StateHashSeesFlipModelAccounting)
{
    // Identical single access, placed in different refresh windows:
    // every visible counter matches (one activation, no row hits, the
    // same open row), but the in-window disturbance accounting does
    // not — replay from here flips at different activation counts.
    // Pins Dram::stateHash ignoring FlipModel state.
    std::uint64_t row = findRow(false);
    PhysicalMemory memB(geometry.sizeBytes);
    Dram other(geometry, timing, disturbance, memB);
    PhysicalMemory memC(geometry.sizeBytes);
    Dram same(geometry, timing, disturbance, memC);

    dram->access(addrOf(0, row), 0);
    other.access(addrOf(0, row), disturbance.refreshWindowCycles);
    same.access(addrOf(0, row), 0);

    EXPECT_NE(dram->stateHash(), other.stateHash());
    EXPECT_EQ(dram->stateHash(), same.stateHash());
}

TEST_F(DramFixture, ResetClosesBanksAndClearsCounters)
{
    dram->access(addrOf(0, 5), 0);
    dram->reset();
    auto r = dram->access(addrOf(0, 5), 10);
    EXPECT_EQ(r.latency, timing.rowClosed);
}

TEST_F(DramFixture, ResetClearsPendingFlipsAndCounters)
{
    // Regression: reset() used to leave pendingFlips and the lifetime
    // counters intact, so flips from before a reset were drained into
    // (and attributed to) the next experiment.
    std::uint64_t victim = findRow(true);
    dram->hammerBulk(0, {victim - 1, victim + 1},
                     disturbance.thresholdMax + 1, 1);
    dram->access(addrOf(0, 5), 0);
    dram->access(addrOf(0, 5, 64), 10);
    ASSERT_GT(dram->totalFlips(), 0u);
    ASSERT_GT(dram->totalActivations(), 0u);
    ASSERT_GT(dram->totalRowHits(), 0u);

    dram->reset();
    EXPECT_TRUE(dram->drainFlips().empty());
    EXPECT_EQ(dram->totalFlips(), 0u);
    EXPECT_EQ(dram->totalActivations(), 0u);
    EXPECT_EQ(dram->totalRowHits(), 0u);
}

TEST_F(DramFixture, BulkHammerVictimsDeduped)
{
    // Regression: a victim sandwiched between two aggressors was
    // listed twice and ran the threshold check twice per call. The
    // flip list must hold each cell at most once.
    std::uint64_t victim = findRow(true, 30);
    ASSERT_GT(victim, 0u);
    auto flips = dram->hammerBulk(0, {victim - 1, victim + 1},
                                  disturbance.thresholdMax + 1, 1);
    ASSERT_FALSE(flips.empty());
    for (std::size_t i = 0; i < flips.size(); ++i)
        for (std::size_t j = i + 1; j < flips.size(); ++j)
            EXPECT_FALSE(flips[i].address == flips[j].address &&
                         flips[i].bitInByte == flips[j].bitInByte);
}

/**
 * Byte-identity pin: the default (DDR3) flip model must reproduce the
 * pre-FlipModel-interface Dram exactly. The fingerprint below was
 * captured by running this exact scenario against the monolithic
 * implementation (commit e723019); every FlipEvent field is folded in,
 * so order, addresses, orientations and counts are all pinned.
 */
TEST_F(DramFixture, DefaultModelByteIdenticalToPreRefactorSeed)
{
    auto fold = [](std::uint64_t h, const std::vector<FlipEvent> &flips) {
        for (const FlipEvent &f : flips) {
            h = hashCombine(h, f.address, f.bitInByte, f.wasOne ? 1 : 0);
            h = hashCombine(h, f.bank, f.row);
        }
        return h;
    };

    std::uint64_t h = 0x5eedf00d;
    std::uint64_t count = 0;

    // Bulk double-sided over the first 400 rows of banks 0..3, with
    // alternating data patterns so both cell orientations flip.
    for (unsigned bank = 0; bank < 4; ++bank) {
        for (std::uint64_t victim = 1; victim + 1 < 400; victim += 3) {
            if (bank & 1) {
                for (PhysFrame f :
                     dram->mapping().framesInRow(bank, victim))
                    mem->fillFramePattern(f, 0xa5a5a5a5a5a5a5a5ull);
            }
            auto flips = dram->hammerBulk(
                bank, {victim - 1, victim + 1}, 1100 + victim % 150, 1);
            count += flips.size();
            h = fold(h, flips);
        }
    }

    // Single-sided bulk.
    for (std::uint64_t agg = 400; agg < 500; ++agg) {
        auto flips = dram->hammerBulk(0, {agg}, 1250, 2);
        count += flips.size();
        h = fold(h, flips);
    }

    // Detailed per-access path inside one refresh window.
    PhysAddr a = addrOf(5, 600);
    PhysAddr b = addrOf(5, 602);
    for (std::uint64_t i = 0; i <= 1300; ++i) {
        dram->access(a, i * 2);
        dram->access(b, i * 2 + 1);
    }
    auto drained = dram->drainFlips();
    count += drained.size();
    h = fold(h, drained);

    EXPECT_EQ(count, 140u);
    EXPECT_EQ(dram->totalFlips(), 70u);
    EXPECT_EQ(h, 0x6e3e0f1f5bfb27f0ull);
}

/** Fixture over a non-default flip model, same geometry/seed. */
struct FlipModelFixture : public DramFixture
{
    void
    install(FlipModelKind kind)
    {
        disturbance.flipModel = kind;
        mem = std::make_unique<PhysicalMemory>(geometry.sizeBytes);
        dram = std::make_unique<Dram>(geometry, timing, disturbance, *mem);
    }
};

TEST_F(FlipModelFixture, TrrSuppressesDoubleSidedBulk)
{
    // The same double-sided pattern that flips under DDR3...
    std::uint64_t victim = findRow(true);
    auto baseline = dram->hammerBulk(0, {victim - 1, victim + 1},
                                     disturbance.thresholdMax + 1, 1);
    ASSERT_FALSE(baseline.empty());

    // ...is fully mitigated by the TRR sampler on the same config.
    install(FlipModelKind::Trr);
    auto mitigated = dram->hammerBulk(0, {victim - 1, victim + 1},
                                      disturbance.thresholdMax + 1, 1);
    EXPECT_TRUE(mitigated.empty());
    EXPECT_EQ(dram->totalFlips(), 0u);
}

TEST_F(FlipModelFixture, TrrManySidedDefeatsSampler)
{
    install(FlipModelKind::Trr);
    std::uint64_t victim = findAntiRow(40);
    ASSERT_GT(victim, 0u);

    // More distinct aggressors than the 4 tracker entries: the
    // Misra-Gries counts never reach the service threshold, so the
    // full double-sided disturbance lands on the victim.
    std::vector<std::uint64_t> aggressors = {victim - 1, victim + 1};
    for (std::uint64_t decoy = 0; decoy < 6; ++decoy)
        aggressors.push_back(victim + 20 + 2 * decoy);
    auto flips = dram->hammerBulk(0, aggressors,
                                  disturbance.thresholdMax + 1, 1);
    bool victimFlipped = false;
    for (const FlipEvent &f : flips)
        victimFlipped |= f.row == victim;
    EXPECT_TRUE(victimFlipped);
}

TEST_F(FlipModelFixture, TrrSuppressesDoubleSidedDetailedPath)
{
    install(FlipModelKind::Trr);
    std::uint64_t victim = findRow(true);
    PhysAddr a = addrOf(0, victim - 1);
    PhysAddr b = addrOf(0, victim + 1);
    // All activations inside one refresh window, well above threshold
    // — flips under DDR3 (DetailedHammeringAlsoFlips), none here: the
    // sampler tracks both aggressors and keeps refreshing the victim.
    for (std::uint64_t i = 0; i <= disturbance.thresholdMax; ++i) {
        dram->access(a, i * 2);
        dram->access(b, i * 2 + 1);
    }
    EXPECT_EQ(dram->totalFlips(), 0u);
}

TEST_F(FlipModelFixture, Distance2FlipsTwoRowsAway)
{
    install(FlipModelKind::Distance2);
    // A weak victim with both aggressors two rows away: only the
    // attenuated far contribution reaches it.
    std::uint64_t victim = findAntiRow(60);
    ASSERT_GT(victim, 2u);
    std::uint64_t needed =
        disturbance.thresholdMax * disturbance.distance2Divisor + 2;
    auto flips =
        dram->hammerBulk(0, {victim - 2, victim + 2}, needed / 2, 1);
    bool farVictim = false;
    for (const FlipEvent &f : flips)
        farVictim |= f.row == victim;
    EXPECT_TRUE(farVictim);

    // The DDR3 model sees nothing at distance 2 from the same rows.
    install(FlipModelKind::Ddr3Seeded);
    auto none = dram->hammerBulk(0, {victim - 2, victim + 2},
                                 needed / 2, 1);
    for (const FlipEvent &f : none)
        EXPECT_NE(f.row, victim);
}

TEST_F(FlipModelFixture, Distance2FarContributionIsAttenuated)
{
    install(FlipModelKind::Distance2);
    std::uint64_t victim = findRow(true, 90);
    ASSERT_GT(victim, 2u);
    // Below threshold * divisor the far pair must not flip anything.
    auto flips = dram->hammerBulk(0, {victim - 2, victim + 2},
                                  disturbance.thresholdMin / 2, 1);
    for (const FlipEvent &f : flips)
        EXPECT_NE(f.row, victim);
}

TEST_F(FlipModelFixture, Distance2DetailedPathReachesRowPlusTwo)
{
    install(FlipModelKind::Distance2);
    std::uint64_t victim = findAntiRow(120);
    ASSERT_GT(victim, 2u);
    PhysAddr a = addrOf(0, victim - 2);
    PhysAddr b = addrOf(0, victim + 2);
    std::uint64_t iterations =
        disturbance.thresholdMax * disturbance.distance2Divisor;
    for (std::uint64_t i = 0; i <= iterations / 2 + 2; ++i) {
        dram->access(a, i * 2);
        dram->access(b, i * 2 + 1);
    }
    bool farVictim = false;
    for (const FlipEvent &f : dram->drainFlips())
        farVictim |= f.row == victim;
    EXPECT_TRUE(farVictim);
}

TEST_F(FlipModelFixture, EccCorrectsSingleCellPerCodeword)
{
    // One codeword per row: a weak row needs two tripped cells before
    // anything surfaces. Zero-filled memory trips anti cells only.
    disturbance.eccCodewordBytes = geometry.rowBytes;
    install(FlipModelKind::Ecc);
    const VulnerabilityModel &vuln = dram->vulnerability();

    auto antiCells = [&vuln](std::uint64_t row) {
        unsigned anti = 0;
        for (const WeakCell &cell : vuln.weakCells(0, row))
            anti += !cell.trueCell;
        return anti;
    };

    // The candidate's ±2 rows must be quiet: they are victims of the
    // same aggressor pair and would add their own codewords' flips.
    std::uint64_t loneRow = 0;
    std::uint64_t pairRow = 0;
    for (std::uint64_t row = 3; row + 3 < geometry.rows(); ++row) {
        if (vuln.rowIsWeak(0, row - 2) || vuln.rowIsWeak(0, row + 2))
            continue;
        unsigned anti = antiCells(row);
        if (anti == 1 && !loneRow)
            loneRow = row;
        if (anti >= 2 && !pairRow)
            pairRow = row;
        if (loneRow && pairRow)
            break;
    }
    ASSERT_GT(loneRow, 0u);
    ASSERT_GT(pairRow, 0u);

    // A single tripped cell stays corrected...
    auto lone = dram->hammerBulk(0, {loneRow - 1, loneRow + 1},
                                 disturbance.thresholdMax + 1, 1);
    EXPECT_TRUE(lone.empty());

    // ...while a second error in the word defeats the code: every
    // tripped cell of the word lands at once.
    auto pair = dram->hammerBulk(0, {pairRow - 1, pairRow + 1},
                                 disturbance.thresholdMax + 1, 1);
    EXPECT_EQ(pair.size(), antiCells(pairRow));
    for (const FlipEvent &f : pair)
        EXPECT_EQ(f.row, pairRow);
}

TEST_F(FlipModelFixture, EccLatentCellRestoredByRewriteDoesNotFlip)
{
    // A tripped-but-corrected cell whose word is rewritten has its
    // charge restored: when a second error later breaks the word, the
    // stale latent cell must not flip against its only direction.
    disturbance.eccCodewordBytes = geometry.rowBytes;
    install(FlipModelKind::Ecc);
    const VulnerabilityModel &vuln = dram->vulnerability();

    // A row (with quiet ±2 neighbours) whose weakest anti cell trips
    // strictly before any other anti cell.
    std::uint64_t row = 0;
    WeakCell weakest{};
    for (std::uint64_t r = 3; r + 3 < geometry.rows() && !row; ++r) {
        if (vuln.rowIsWeak(0, r - 2) || vuln.rowIsWeak(0, r + 2))
            continue;
        std::vector<WeakCell> anti;
        for (const WeakCell &cell : vuln.weakCells(0, r))
            if (!cell.trueCell)
                anti.push_back(cell);
        if (anti.size() < 2)
            continue;
        std::sort(anti.begin(), anti.end(),
                  [](const WeakCell &a, const WeakCell &b) {
                      return a.threshold < b.threshold;
                  });
        if (anti[0].threshold < anti[1].threshold) {
            row = r;
            weakest = anti[0];
        }
    }
    ASSERT_GT(row, 0u);

    // Single-sided: disturbance equals acts exactly. Trip only the
    // weakest anti cell — latent, corrected, nothing surfaces.
    auto first = dram->hammerBulk(0, {row - 1}, weakest.threshold, 1);
    EXPECT_TRUE(first.empty());

    // Software rewrites the word: the latent cell now stores 1 and an
    // anti cell cannot charge any further.
    PhysAddr cellAddr =
        dram->mapping().compose({0, row, weakest.byteInRow});
    mem->write8(cellAddr, 0xff);

    // A second error defeats the code; the restored cell stays put.
    auto second = dram->hammerBulk(0, {row - 1},
                                   disturbance.thresholdMax + 1, 1);
    EXPECT_FALSE(second.empty());
    for (const FlipEvent &f : second)
        EXPECT_FALSE(f.address == cellAddr &&
                     f.bitInByte == weakest.bitInByte);
}

TEST_F(FlipModelFixture, ModelsReportTheirKind)
{
    EXPECT_EQ(dram->flipModel().kind(), FlipModelKind::Ddr3Seeded);
    EXPECT_STREQ(dram->flipModel().name(), "ddr3");
    install(FlipModelKind::Trr);
    EXPECT_STREQ(dram->flipModel().name(), "trr");
    install(FlipModelKind::Distance2);
    EXPECT_STREQ(dram->flipModel().name(), "distance2");
    install(FlipModelKind::Ecc);
    EXPECT_STREQ(dram->flipModel().name(), "ecc");
}

TEST(DramGeometryModels, SixteenKiBRowsAreFirstClass)
{
    // The DDR3 8 KiB row assumption is gone: a 16 KiB-row device
    // places weak cells over the whole row and flips in its far half.
    DramGeometry geometry;
    geometry.sizeBytes = 512ull << 20;
    geometry.banks = 32;
    geometry.rowBytes = 16384;
    DramTiming timing{100, 150, 200};
    DisturbanceConfig disturbance;
    disturbance.refreshWindowCycles = 1'000'000;
    disturbance.weakRowProbability = 0.2;
    disturbance.thresholdMin = 1000;
    disturbance.thresholdMax = 1200;
    disturbance.seed = 0xdd44;

    PhysicalMemory mem(geometry.sizeBytes);
    Dram dram(geometry, timing, disturbance, mem);
    EXPECT_EQ(dram.mapping().framesInRow(0, 1).size(), 4u);

    bool farHalf = false;
    std::uint64_t flips = 0;
    for (std::uint64_t victim = 1;
         victim + 1 < geometry.rows() && !farHalf; ++victim) {
        if (!dram.vulnerability().rowIsWeak(0, victim))
            continue;
        for (const FlipEvent &f :
             dram.hammerBulk(0, {victim - 1, victim + 1},
                             disturbance.thresholdMax + 1, 1)) {
            ++flips;
            std::uint64_t column =
                dram.mapping().decompose(f.address).column;
            EXPECT_LT(column, geometry.rowBytes);
            farHalf |= column >= 8192;
        }
    }
    EXPECT_GT(flips, 0u);
    EXPECT_TRUE(farHalf);
}

} // namespace
} // namespace pth
