/**
 * @file
 * Property/fuzz-style tests for the persistence substrate the
 * sharded campaign workflow rests on:
 *
 *  - randomized RunResult round-trips through the result-store
 *    journal line format, bit-exact for every field — including
 *    64-bit integers above 2^53 (which must never pass through a
 *    double) and doubles drawn from raw random bit patterns
 *    (denormals, -0.0, infinities, NaNs);
 *  - malformed-input rejection: truncations, byte mutations and
 *    pathological nesting must be rejected (or parsed) without
 *    crashing — a torn shard journal may contain anything;
 *  - spec-key stability: pinned hashes for a table of representative
 *    RunSpecs, so an accidental change to the key derivation (which
 *    would silently invalidate every existing journal, or worse,
 *    collide) fails loudly. Extending RunSpec/AttackConfig changes
 *    these values BY DESIGN — that invalidates old journals, so
 *    repin deliberately and say so in the commit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "harness/campaign.hh"
#include "harness/result_store.hh"

namespace pth
{
namespace
{

std::uint64_t
bitsOf(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
doubleOf(std::uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

/** Bit-exact comparison, except NaN payloads (the journal writes
 * every NaN as the token "nan" by design). */
void
expectSameDouble(double back, double orig, const char *what)
{
    if (std::isnan(orig))
        EXPECT_TRUE(std::isnan(back)) << what;
    else
        EXPECT_EQ(bitsOf(back), bitsOf(orig)) << what;
}

/** Random string over a troublesome alphabet (quotes, escapes,
 * control chars, high bytes, multi-byte UTF-8 fragments). */
std::string
randomString(Rng &rng, std::size_t maxLen)
{
    static const char alphabet[] =
        "ab\"\\\n\t\r\x01\x1f\x7f\xc3\xa9 {}[]:,0.5e+";
    const std::size_t len = rng.next() % (maxLen + 1);
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        s.push_back(
            alphabet[rng.next() % (sizeof(alphabet) - 1)]);
    return s;
}

/** A double worth round-tripping: raw random bits hit denormals,
 * NaNs and infinities; the curated list hits the classic edges. */
double
randomDouble(Rng &rng)
{
    static const double curated[] = {
        0.0,
        -0.0,
        1.0 / 3.0,
        0.1,
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::epsilon(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        1e308,
        -4.9406564584124654e-324,
        1.0000000000000002,
    };
    if (rng.next() % 4 == 0)
        return curated[rng.next() %
                       (sizeof(curated) / sizeof(curated[0]))];
    return doubleOf(rng.next());
}

RunResult
randomResult(Rng &rng)
{
    RunResult r;
    r.index = rng.next() % 10000;
    r.label = randomString(rng, 24);
    r.machine = randomString(rng, 12);
    r.defense = randomString(rng, 12);
    r.strategy = randomString(rng, 12);
    r.seed = rng.next(); // full 64-bit range, often > 2^53
    r.ok = rng.next() % 2;
    r.error = randomString(rng, 16);
    r.flipped = rng.next() % 2;
    r.escalated = rng.next() % 2;
    r.flips = rng.next();
    r.attempts = static_cast<unsigned>(rng.next());
    r.flipsUntilEscalation = static_cast<unsigned>(rng.next());
    r.exploitPath = randomString(rng, 16);
    r.simSeconds = randomDouble(rng);
    r.wallSeconds = randomDouble(rng);
    const std::size_t metrics = rng.next() % 5;
    for (std::size_t i = 0; i < metrics; ++i)
        r.metrics.emplace_back(randomString(rng, 10),
                               randomDouble(rng));
    r.report.machine = randomString(rng, 12);
    r.report.superpages = rng.next() % 2;
    r.report.defense = randomString(rng, 8);
    r.report.sprayMs = randomDouble(rng);
    r.report.tlbPrepMs = randomDouble(rng);
    r.report.llcPrepMinutes = randomDouble(rng);
    r.report.tlbSelectMicros = randomDouble(rng);
    r.report.llcSelectMs = randomDouble(rng);
    r.report.hammerMs = randomDouble(rng);
    r.report.checkSeconds = randomDouble(rng);
    r.report.timeToFirstFlipMinutes = randomDouble(rng);
    r.report.flipped = rng.next() % 2;
    r.report.escalated = rng.next() % 2;
    r.report.attempts = static_cast<unsigned>(rng.next());
    r.report.flipsObserved = static_cast<unsigned>(rng.next());
    r.report.flipsUntilEscalation =
        static_cast<unsigned>(rng.next());
    r.report.exploitPath = randomString(rng, 16);
    return r;
}

TEST(PersistenceFuzz, RandomRunResultsRoundTripBitExactly)
{
    Rng rng(0x5eeded);
    for (unsigned iter = 0; iter < 300; ++iter) {
        const RunResult r = randomResult(rng);
        const std::uint64_t key = rng.next();

        ResultStore::Entry entry;
        ASSERT_TRUE(ResultStore::deserialize(
            ResultStore::serialize(r, key), entry))
            << "iteration " << iter;
        EXPECT_EQ(entry.key, key);

        const RunResult &b = entry.result;
        EXPECT_EQ(b.index, r.index);
        EXPECT_EQ(b.label, r.label);
        EXPECT_EQ(b.machine, r.machine);
        EXPECT_EQ(b.defense, r.defense);
        EXPECT_EQ(b.strategy, r.strategy);
        EXPECT_EQ(b.seed, r.seed);
        EXPECT_EQ(b.ok, r.ok);
        EXPECT_EQ(b.error, r.error);
        EXPECT_EQ(b.flipped, r.flipped);
        EXPECT_EQ(b.escalated, r.escalated);
        EXPECT_EQ(b.flips, r.flips);
        EXPECT_EQ(b.attempts, r.attempts);
        EXPECT_EQ(b.flipsUntilEscalation, r.flipsUntilEscalation);
        EXPECT_EQ(b.exploitPath, r.exploitPath);
        expectSameDouble(b.simSeconds, r.simSeconds, "simSeconds");
        expectSameDouble(b.wallSeconds, r.wallSeconds,
                         "wallSeconds");
        ASSERT_EQ(b.metrics.size(), r.metrics.size());
        for (std::size_t i = 0; i < r.metrics.size(); ++i) {
            EXPECT_EQ(b.metrics[i].first, r.metrics[i].first);
            expectSameDouble(b.metrics[i].second,
                             r.metrics[i].second, "metric");
        }
        EXPECT_EQ(b.report.machine, r.report.machine);
        EXPECT_EQ(b.report.superpages, r.report.superpages);
        EXPECT_EQ(b.report.defense, r.report.defense);
        expectSameDouble(b.report.sprayMs, r.report.sprayMs,
                         "sprayMs");
        expectSameDouble(b.report.tlbPrepMs, r.report.tlbPrepMs,
                         "tlbPrepMs");
        expectSameDouble(b.report.llcPrepMinutes,
                         r.report.llcPrepMinutes, "llcPrepMinutes");
        expectSameDouble(b.report.tlbSelectMicros,
                         r.report.tlbSelectMicros,
                         "tlbSelectMicros");
        expectSameDouble(b.report.llcSelectMs, r.report.llcSelectMs,
                         "llcSelectMs");
        expectSameDouble(b.report.hammerMs, r.report.hammerMs,
                         "hammerMs");
        expectSameDouble(b.report.checkSeconds,
                         r.report.checkSeconds, "checkSeconds");
        expectSameDouble(b.report.timeToFirstFlipMinutes,
                         r.report.timeToFirstFlipMinutes,
                         "timeToFirstFlipMinutes");
        EXPECT_EQ(b.report.flipped, r.report.flipped);
        EXPECT_EQ(b.report.escalated, r.report.escalated);
        EXPECT_EQ(b.report.attempts, r.report.attempts);
        EXPECT_EQ(b.report.flipsObserved, r.report.flipsObserved);
        EXPECT_EQ(b.report.flipsUntilEscalation,
                  r.report.flipsUntilEscalation);
        EXPECT_EQ(b.report.exploitPath, r.report.exploitPath);
    }
}

TEST(PersistenceFuzz, TruncationsNeverCrashAndNeverHalfParse)
{
    Rng rng(0xabc);
    RunResult r = randomResult(rng);
    r.label = "truncation victim";
    const std::string line = ResultStore::serialize(r, 0x1234);

    // Every strict prefix must be rejected cleanly (a torn write is
    // exactly such a prefix).
    for (std::size_t len = 0; len < line.size(); ++len) {
        ResultStore::Entry entry;
        EXPECT_FALSE(
            ResultStore::deserialize(line.substr(0, len), entry))
            << "prefix length " << len;
    }
    ResultStore::Entry entry;
    EXPECT_TRUE(ResultStore::deserialize(line, entry));
}

TEST(PersistenceFuzz, RandomMutationsNeverCrash)
{
    Rng rng(0xf002);
    RunResult base = randomResult(rng);
    const std::string line = ResultStore::serialize(base, 7);

    for (unsigned iter = 0; iter < 2000; ++iter) {
        std::string mutated = line;
        const unsigned edits = 1 + rng.next() % 4;
        for (unsigned e = 0; e < edits; ++e) {
            const std::size_t at = rng.next() % mutated.size();
            switch (rng.next() % 3) {
            case 0:
                mutated[at] =
                    static_cast<char>(rng.next() & 0xff);
                break;
            case 1:
                mutated.erase(at, 1 + rng.next() % 8);
                break;
            default:
                mutated.insert(at, 1, static_cast<char>(
                                          rng.next() & 0xff));
                break;
            }
            if (mutated.empty())
                break;
        }
        // Must not crash; parse-success is fine, half-parse is not
        // observable from here (deserialize is all-or-nothing).
        ResultStore::Entry entry;
        ResultStore::deserialize(mutated, entry);
        JsonValue doc;
        JsonValue::parse(mutated, doc);
    }
}

TEST(PersistenceFuzz, PathologicalNestingIsRejectedNotOverflowed)
{
    // 100k-deep nesting would smash the stack of a naive recursive
    // parser; the depth guard must reject it instead.
    JsonValue doc;
    EXPECT_FALSE(
        JsonValue::parse(std::string(100000, '['), doc));
    EXPECT_FALSE(
        JsonValue::parse(std::string(100000, '{'), doc));
    std::string alternating;
    for (int i = 0; i < 50000; ++i)
        alternating += "[{\"k\": ";
    EXPECT_FALSE(JsonValue::parse(alternating, doc));

    // The writer's dialect nests 3 deep; give the guard headroom.
    std::string shallow = "{\"a\": [[[{\"b\": [1, 2]}]]]}";
    EXPECT_TRUE(JsonValue::parse(shallow, doc));
}

TEST(PersistenceFuzz, HugeIntegersSurviveWithoutDoubleDetour)
{
    for (std::uint64_t value :
         {std::uint64_t(1) << 53, (std::uint64_t(1) << 53) + 1,
          std::uint64_t(0xdeadbeefcafef00d),
          std::numeric_limits<std::uint64_t>::max()}) {
        RunResult r;
        r.index = 1;
        r.label = "u64";
        r.seed = value;
        r.flips = value;
        ResultStore::Entry entry;
        ASSERT_TRUE(ResultStore::deserialize(
            ResultStore::serialize(r, value), entry));
        EXPECT_EQ(entry.key, value);
        EXPECT_EQ(entry.result.seed, value);
        EXPECT_EQ(entry.result.flips, value);
    }
}

/**
 * Pinned spec keys. These values are what every existing journal on
 * disk is keyed under; if this test fails, the key derivation
 * changed and ALL stored campaigns will silently re-execute (or
 * worse). Repin only for a deliberate, called-out format break.
 */
TEST(SpecKeyPin, RepresentativeSpecTableIsStable)
{
    struct Pinned
    {
        const char *name;
        std::uint64_t key;
    };
    const Pinned pins[] = {
        {"default", 0x99683127729adf60ull},
        {"labeled-seeded", 0xdfac904b39ffffc2ull},
        {"paper-catt", 0xd79379a1de60f93cull},
        {"explicit-nops", 0x896ca8028e2c5ab3ull},
        {"paper-catt-trr", 0x7821ee147d645f27ull},
        {"hooked", 0x225a85a07a16f85full},
        {"pool-single", 0x27b9d17bf0395815ull},
    };

    std::vector<RunSpec> specs(7);
    specs[0].label = "";

    specs[1].label = "t420/seed3";
    specs[1].seed = 3;

    specs[2].label = "Lenovo T420";
    specs[2].preset = MachinePreset::LenovoT420;
    specs[2].defense = DefenseKind::Catt;
    specs[2].strategy = HammerStrategy::PThammer;
    specs[2].seed = 42;
    specs[2].attack.sprayBytes = 1ull << 30;
    specs[2].attack.maxAttempts = 150;

    specs[3].label = "explicit";
    specs[3].strategy = HammerStrategy::Explicit;
    specs[3].nopPadding = 32;
    specs[3].explicitBufferBytes = 128ull << 20;

    specs[4] = specs[2];
    specs[4].dramModel = FlipModelKind::Trr;

    specs[5].label = "hooked";
    specs[5].tweakMachine = [](MachineConfig &) {};
    specs[5].body = [](Machine &, const AttackConfig &,
                       RunResult &) {};

    specs[6].label = "pool";
    specs[6].attack.poolBuild.algorithm =
        PoolBuildAlgorithm::SingleElimination;

    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(specKey(specs[i]), pins[i].key)
            << pins[i].name << ": spec-key derivation changed —"
            << " every stored journal is invalidated";

    // And none of the representatives may collide with another.
    for (std::size_t i = 0; i < specs.size(); ++i)
        for (std::size_t j = i + 1; j < specs.size(); ++j)
            EXPECT_NE(specKey(specs[i]), specKey(specs[j]))
                << pins[i].name << " vs " << pins[j].name;
}

/** Key stability is per-field sensitivity too: a sweep over single-
 * field perturbations must produce all-distinct keys (no aliasing
 * between neighbouring grid points). */
TEST(SpecKeyPin, SingleFieldPerturbationsNeverAlias)
{
    RunSpec base;
    base.label = "grid";
    base.seed = 1;

    std::vector<std::uint64_t> keys;
    keys.push_back(specKey(base));
    for (unsigned i = 1; i <= 32; ++i) {
        RunSpec s = base;
        s.seed = 1 + i;
        keys.push_back(specKey(s));
    }
    for (unsigned i = 0; i < 8; ++i) {
        RunSpec s = base;
        s.attack.hammerIterations += i + 1;
        keys.push_back(specKey(s));
        RunSpec t = base;
        t.attack.sprayBytes += i + 1;
        keys.push_back(specKey(t));
    }
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
}

} // namespace
} // namespace pth
