/**
 * @file
 * Regression tests pinning the concrete findings of the thread-safety
 * annotation pass (common/thread_annotations.hh, common/sync.hh), and
 * the lock discipline the annotations now encode. Each test is an
 * honest race when the guarded invariant is broken — run the suite
 * under -DPTH_SANITIZE=thread and TSan reports the data race the
 * finding described; with the fixes in place the suite is
 * sanitizer-clean.
 *
 * Findings pinned here:
 *  1. ThreadPool::threadCount() used to read workers.size() with no
 *     lock, racing shutdown()'s workers.clear() — fixed by making the
 *     count an immutable member set at construction.
 *  2. Campaign's shared-snapshot lazy init used std::once_flag, which
 *     Clang Thread Safety Analysis cannot see through — refactored to
 *     a Mutex-guarded slot with identical semantics (racing workers
 *     serialize; a throw leaves the slot empty so the next run
 *     retries). The threaded-vs-serial byte-identity test exercises
 *     exactly that contended first-touch path.
 *  3. ResultStore::record() is the one mutation every worker performs
 *     concurrently; its Mutex (PTH_GUARDED_BY(mtx_) on the stream)
 *     must serialize whole journal lines.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "harness/campaign.hh"
#include "harness/result_store.hh"
#include "harness/scratch_dir.hh"

namespace pth
{
namespace
{

/**
 * Finding 1: threadCount() concurrent with shutdown(). Before the
 * fix this was a read of workers.size() racing workers.clear();
 * TSan flagged it and the value could transiently read 0. Now the
 * count is a const member: always the constructed value, no lock,
 * no race — and shutdown() stays an owner-thread call while other
 * threads only query the count.
 */
TEST(ThreadSafety, ThreadCountStableAcrossShutdown)
{
    for (int round = 0; round < 8; ++round) {
        ThreadPool pool(3);
        std::atomic<bool> go{false};
        std::atomic<unsigned> bad{0};
        std::thread reader([&] {
            while (!go.load())
                ;
            for (int i = 0; i < 10000; ++i)
                if (pool.threadCount() != 3u)
                    ++bad;
        });
        for (int i = 0; i < 16; ++i)
            pool.submit([] { return 0; });
        go.store(true);
        pool.shutdown();
        reader.join();
        EXPECT_EQ(bad.load(), 0u);
        EXPECT_EQ(pool.threadCount(), 3u);
    }
}

/**
 * Finding 3: concurrent record() from as many threads as the
 * campaign would use. Every journal line must parse and every
 * (index, key) pair must survive — interleaved writes would corrupt
 * lines, which load() counts.
 */
TEST(ThreadSafety, ResultStoreConcurrentRecord)
{
    auto scratch = ScratchDirGuard::create("/tmp/pth_tsafetyXXXXXX");
    const std::string path = scratch.path() + "/journal.jsonl";
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 50;
    {
        ResultStore store(path, /*truncate=*/true);
        std::vector<std::thread> writers;
        for (unsigned t = 0; t < kThreads; ++t)
            writers.emplace_back([&store, t] {
                for (unsigned i = 0; i < kPerThread; ++i) {
                    RunResult r;
                    r.index = t * kPerThread + i;
                    r.label = "w" + std::to_string(t);
                    r.seed = r.index;
                    r.flips = t;
                    store.record(r, /*key=*/1000 + r.index);
                }
            });
        for (auto &w : writers)
            w.join();
    }
    std::size_t corrupt = 0;
    auto entries = ResultStore::load(path, &corrupt);
    EXPECT_EQ(corrupt, 0u);
    ASSERT_EQ(entries.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    for (const auto &[index, entry] : entries) {
        EXPECT_EQ(entry.key, 1000 + index);
        EXPECT_EQ(entry.result.index, index);
        EXPECT_EQ(entry.result.seed, index);
    }
}

/**
 * Finding 2: the shared-snapshot slot's lazy init under maximum
 * contention. An attack-scoped seed sweep makes every run share one
 * derived machine config, so with reuseMachines all eight workers
 * race to first-touch the same SnapshotSlot. The Mutex-guarded init
 * must both serialize construction (TSan-clean) and preserve the
 * byte-identity contract against the serial run.
 */
TEST(ThreadSafety, SharedSnapshotInitRaceKeepsReportsIdentical)
{
    RunSpec base;
    base.label = "snapshot-race";
    base.preset = MachinePreset::TestSmall;
    base.strategy = HammerStrategy::PThammer;
    base.attack.superpages = true;
    base.attack.sprayBytes = 24ull << 20;
    base.attack.superpageSampleClasses = 2;
    base.attack.maxAttempts = 4;
    base.attack.hammerBudgetSeconds = 36000;

    Campaign campaign;
    campaign.addAttackSeedSweep(base, /*seedBase=*/42, /*count=*/16);

    CampaignOptions serial;
    serial.threads = 1;
    serial.reuseMachines = true;
    const auto serialResults = campaign.run(serial);

    CampaignOptions threaded;
    threaded.threads = 8;
    threaded.reuseMachines = true;
    const auto threadedResults = campaign.run(threaded);

    EXPECT_EQ(Campaign::toJson(serialResults),
              Campaign::toJson(threadedResults));
}

} // namespace
} // namespace pth
