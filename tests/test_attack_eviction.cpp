/**
 * @file
 * Attack-side eviction machinery tests: the TLB pool and Algorithm 1,
 * the LLC eviction-pool builders (checked against the hardware's
 * ground-truth set mapping) and Algorithm 2's selection.
 */

#include <gtest/gtest.h>

#include "attack/eviction_pool.hh"
#include "attack/eviction_selection.hh"
#include "attack/spray.hh"
#include "attack/tlb_eviction.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"

namespace pth
{
namespace
{

struct AttackEnv : public ::testing::Test
{
    AttackEnv() : machine(MachineConfig::testSmall())
    {
        attack.superpages = true;
        attack.sprayBytes = 8ull << 20;
        proc = &machine.kernel().createProcess(1000);
        machine.cpu().setProcess(*proc);
        sprayer = std::make_unique<SprayManager>(machine, attack);
        sprayer->spray();
    }

    Machine machine;
    AttackConfig attack;
    Process *proc;
    std::unique_ptr<SprayManager> sprayer;
};

TEST_F(AttackEnv, SprayCreatesExpectedPtPages)
{
    EXPECT_EQ(sprayer->ptPages(), (8ull << 20) / kPageBytes);
    EXPECT_EQ(sprayer->sprayedPages(), sprayer->ptPages() * kPtesPerPage);
}

TEST_F(AttackEnv, SprayedPagesReadTheirMarkers)
{
    for (std::uint64_t r = 0; r < sprayer->ptPages(); r += 113) {
        std::uint64_t value = 0;
        ASSERT_TRUE(machine.cpu().readUser64(
            sprayer->regionBase(r) + 5 * kPageBytes, value));
        EXPECT_EQ(value, sprayer->expectedMarker(r));
    }
}

TEST_F(AttackEnv, RandomTargetsAreValidAndNotSuperpageAligned)
{
    for (int i = 0; i < 200; ++i) {
        VirtAddr va = sprayer->randomTarget(i);
        EXPECT_EQ(va & (kPageBytes - 1), 0u);
        EXPECT_NE(va & (kSuperPageBytes - 1), 0u);
        std::uint64_t value = 0;
        EXPECT_TRUE(machine.cpu().readUser64(va, value));
    }
}

TEST_F(AttackEnv, PtFrameReverseLookup)
{
    auto frame = proc->pageTables()->l1ptFrame(sprayer->regionBase(3));
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(sprayer->regionOfPtFrame(*frame), 3u);
    EXPECT_EQ(sprayer->regionOfPtFrame(0), ~0ull);
}

TEST_F(AttackEnv, TlbPoolCoversEverySet)
{
    TlbEvictionTool tlb(machine, attack);
    tlb.prepare();
    // Any target must get a full eviction set whose pages share its
    // sTLB set under the linear mapping.
    const Tlb &stlb = machine.mmu().tlb().l2();
    for (int i = 0; i < 50; ++i) {
        VirtAddr target = sprayer->randomTarget(1000 + i);
        auto set = tlb.evictionSetFor(target, 12);
        ASSERT_EQ(set.size(), 12u);
        for (VirtAddr page : set)
            EXPECT_EQ(stlb.setOf(page >> kPageShift),
                      stlb.setOf(target >> kPageShift));
    }
}

TEST_F(AttackEnv, Algorithm1FindsSizeAboveAssociativity)
{
    TlbEvictionTool tlb(machine, attack);
    tlb.prepare();
    KernelModule module(machine);
    unsigned minimal =
        tlb.findMinimalSetSize(sprayer->randomTarget(7), module);
    // The paper's core observation: more pages than the 4-way
    // associativity are needed.
    EXPECT_GT(minimal, machine.config().tlb.l2s.ways);
    EXPECT_LE(minimal, 16u);
}

TEST_F(AttackEnv, TlbEvictionActuallyEvicts)
{
    TlbEvictionTool tlb(machine, attack);
    tlb.prepare();
    KernelModule module(machine);
    VirtAddr target = sprayer->randomTarget(9);
    auto set = tlb.evictionSetFor(target, 14);
    double rate = tlb.profileMissRate(target, set, 100, module);
    EXPECT_GT(rate, 0.9);
}

TEST_F(AttackEnv, SmallTlbSetFailsToEvict)
{
    TlbEvictionTool tlb(machine, attack);
    tlb.prepare();
    KernelModule module(machine);
    VirtAddr target = sprayer->randomTarget(11);
    auto set = tlb.evictionSetFor(target, 4);
    double rate = tlb.profileMissRate(target, set, 100, module);
    EXPECT_LT(rate, 0.5);
}

struct PoolEnv : public AttackEnv
{
    PoolEnv() : pool(machine, attack)
    {
        pool.allocateBuffer();
    }

    LlcEvictionPool pool;
};

TEST_F(PoolEnv, SampledBuildGroupsAreTrulyCongruent)
{
    pool.buildSuperpage(/*sampleClasses=*/6);
    unsigned algorithmic = 0;
    for (const EvictionSet &set : pool.sets()) {
        if (set.lines.size() < machine.config().caches.llc.ways)
            continue;
        // Lines of one set share the ground-truth (set, slice).
        auto tr0 = machine.cpu().process().pageTables()->translate(
            set.lines.front());
        ASSERT_TRUE(tr0.has_value());
        PhysAddr pa0 = (tr0->frame << kPageShift) |
                       (set.lines.front() & (kPageBytes - 1));
        std::uint64_t expected = machine.caches().llc().globalSet(pa0);
        unsigned mismatches = 0;
        for (VirtAddr line : set.lines) {
            auto tr = machine.cpu().process().pageTables()->translate(line);
            PhysAddr pa = (tr->frame << kPageShift) |
                          (line & (kPageBytes - 1));
            if (machine.caches().llc().globalSet(pa) != expected)
                ++mismatches;
        }
        EXPECT_LE(mismatches, set.lines.size() / 8)
            << "group contaminated";
        ++algorithmic;
        if (algorithmic > 8)
            break;
    }
    EXPECT_GT(algorithmic, 0u);
}

TEST_F(PoolEnv, OracleFillCompletesPool)
{
    pool.buildSuperpage(/*sampleClasses=*/2);
    // Complete pool: one set per (set-index, slice).
    std::uint64_t llcSets = machine.config().caches.llc.sets *
                            machine.config().caches.llc.slices;
    EXPECT_GE(pool.sets().size(), llcSets * 9 / 10);
}

TEST_F(PoolEnv, CandidatesShareLineOffset)
{
    pool.buildSuperpage(2);
    auto candidates = pool.candidatesForLineOffset(0x13);
    EXPECT_FALSE(candidates.empty());
    for (const EvictionSet *set : candidates)
        EXPECT_EQ(set->classIndex & 0x3f, 0x13u);
}

TEST_F(PoolEnv, WorkingSetEvictsReliably)
{
    pool.buildSuperpage(4);
    // Figure 4's plateau: a set one larger than the associativity
    // evicts with high probability.
    VirtAddr target = pool.sets().front().lines.back();
    double rate = pool.profileEvictionRate(target,
                                           pool.workingSetSize(), 100);
    EXPECT_GT(rate, 0.85);
}

TEST_F(PoolEnv, UndersizedSetEvictsRarely)
{
    pool.buildSuperpage(4);
    VirtAddr target = pool.sets().front().lines.back();
    double rate = pool.profileEvictionRate(
        target, machine.config().caches.llc.ways / 2, 100);
    EXPECT_LT(rate, 0.4);
}

TEST_F(PoolEnv, RegularBuildReportsSlowerThanSuperpage)
{
    LlcEvictionPool superPool(machine, attack);
    AttackConfig regularCfg = attack;
    regularCfg.superpages = false;

    superPool.allocateBuffer();
    PoolBuildReport fast = superPool.buildSuperpage(4);

    Machine m2(MachineConfig::testSmall());
    Process &p2 = m2.kernel().createProcess(1000);
    m2.cpu().setProcess(p2);
    LlcEvictionPool slowPool(m2, regularCfg);
    slowPool.allocateBuffer();
    PoolBuildReport slow = slowPool.buildRegularSampled(1, 2);

    EXPECT_GT(slow.extrapolatedCycles, fast.extrapolatedCycles);
}

TEST_F(PoolEnv, Algorithm2SelectsTheCongruentSet)
{
    pool.buildSuperpage(2);
    TlbEvictionTool tlb(machine, attack);
    tlb.prepare();
    EvictionSetSelector selector(machine, attack, pool, tlb);
    KernelModule module(machine);

    unsigned correct = 0;
    const unsigned targets = 6;
    for (unsigned i = 0; i < targets; ++i) {
        VirtAddr target = sprayer->randomTarget(500 + i);
        SetSelection sel = selector.select(target);
        ASSERT_NE(sel.set, nullptr);
        auto truth = module.l1pteLlcSet(*proc, target);
        ASSERT_TRUE(truth.has_value());
        // The selected set's lines live in the L1PTE's (set, slice).
        auto tr = proc->pageTables()->translate(sel.set->lines.front());
        PhysAddr pa = (tr->frame << kPageShift) |
                      (sel.set->lines.front() & (kPageBytes - 1));
        if (machine.caches().llc().globalSet(pa) == *truth)
            ++correct;
    }
    // Section IV-C: no more than 6 % false positives; with 6 samples,
    // demand at least 5 correct.
    EXPECT_GE(correct, targets - 1);
}

} // namespace
} // namespace pth
