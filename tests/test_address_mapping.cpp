/**
 * @file
 * Property tests for the DRAM address mapping: bijectivity, the
 * 256 KiB row-index stride the attack's pair selection relies on, and
 * frame/row bookkeeping — swept across memory geometries.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "dram/address_mapping.hh"

namespace pth
{
namespace
{

DramGeometry
geom(std::uint64_t sizeMiB)
{
    DramGeometry g;
    g.sizeBytes = sizeMiB * 1024 * 1024;
    g.banks = 32;
    g.rowBytes = 8192;
    return g;
}

class AddressMappingParam : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AddressMappingParam, DecomposeComposeRoundTrips)
{
    AddressMapping map(geom(GetParam()));
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        PhysAddr pa = rng.below(GetParam() * 1024 * 1024) & ~0x7ull;
        DramLocation loc = map.decompose(pa);
        EXPECT_EQ(map.compose(loc), pa);
    }
}

TEST_P(AddressMappingParam, ComposeDecomposeRoundTrips)
{
    AddressMapping map(geom(GetParam()));
    Rng rng(GetParam() + 1);
    for (int i = 0; i < 2000; ++i) {
        DramLocation loc;
        loc.bank = static_cast<unsigned>(rng.below(map.banks()));
        loc.row = rng.below(map.rowsPerBank());
        loc.column = rng.below(map.rowBytes());
        EXPECT_EQ(map.decompose(map.compose(loc)), loc);
    }
}

TEST_P(AddressMappingParam, RowIndexStridePreservesBankMostly)
{
    // The property the paper's 2 * RowsSize * 512 stride exploits:
    // +256 KiB usually keeps the bank and advances the row index by
    // one. "Usually": the DRAMA-style XOR taps row bits 5-9, so every
    // 32nd row the bank changes — one reason pair candidates need the
    // timing verification of Section IV-D.
    AddressMapping map(geom(GetParam()));
    DramGeometry g = geom(GetParam());
    Rng rng(GetParam() + 2);
    unsigned preserved = 0;
    const unsigned samples = 500;
    for (unsigned i = 0; i < samples; ++i) {
        PhysAddr pa = rng.below(g.sizeBytes - 4 * g.rowIndexStride());
        DramLocation a = map.decompose(pa);
        DramLocation b = map.decompose(pa + g.rowIndexStride());
        DramLocation c = map.decompose(pa + 2 * g.rowIndexStride());
        EXPECT_EQ(b.row, a.row + 1);
        EXPECT_EQ(c.row, a.row + 2);
        if (a.bank == b.bank && a.bank == c.bank)
            ++preserved;
        // Away from the 32-row carry boundary the bank is preserved
        // deterministically.
        if (a.row % 32 < 30) {
            EXPECT_EQ(a.bank, b.bank);
            EXPECT_EQ(a.bank, c.bank);
        }
    }
    EXPECT_GT(preserved, samples * 85 / 100);
}

TEST_P(AddressMappingParam, ColumnIsLowBits)
{
    AddressMapping map(geom(GetParam()));
    DramLocation loc = map.decompose(0x12345);
    EXPECT_EQ(loc.column, 0x12345ull & (map.rowBytes() - 1));
}

TEST_P(AddressMappingParam, AllBanksReachable)
{
    AddressMapping map(geom(GetParam()));
    std::vector<bool> seen(map.banks(), false);
    for (PhysAddr pa = 0; pa < map.banks() * map.rowBytes() * 4;
         pa += map.rowBytes())
        seen[map.decompose(pa).bank] = true;
    for (unsigned b = 0; b < map.banks(); ++b)
        EXPECT_TRUE(seen[b]) << "bank " << b << " unreachable";
}

INSTANTIATE_TEST_SUITE_P(Geometries, AddressMappingParam,
                         ::testing::Values(256, 1024, 8192));

TEST(AddressMapping, FramesInRowAreDistinctAndConsistent)
{
    AddressMapping map(geom(1024));
    for (unsigned bank = 0; bank < 4; ++bank) {
        for (std::uint64_t row = 0; row < 8; ++row) {
            std::vector<PhysFrame> frames = map.framesInRow(bank, row);
            ASSERT_EQ(frames.size(), 2u);
            EXPECT_NE(frames[0], frames[1]);
            for (PhysFrame f : frames) {
                DramLocation loc = map.decompose(f << kPageShift);
                EXPECT_EQ(loc.bank, bank);
                EXPECT_EQ(loc.row, row);
            }
        }
    }
}

TEST(AddressMapping, FramesInRowFollowsRowSize)
{
    // rowBytes is no longer pinned to 8 KiB: a 16 KiB row holds four
    // frames, a 4 KiB row exactly one, all within their (bank, row).
    for (std::uint64_t rowBytes : {4096ull, 16384ull}) {
        DramGeometry g = geom(1024);
        g.rowBytes = rowBytes;
        AddressMapping map(g);
        for (unsigned bank = 0; bank < 4; ++bank) {
            std::vector<PhysFrame> frames = map.framesInRow(bank, 3);
            ASSERT_EQ(frames.size(), rowBytes / kPageBytes);
            for (std::size_t i = 0; i < frames.size(); ++i) {
                DramLocation loc =
                    map.decompose(frames[i] << kPageShift);
                EXPECT_EQ(loc.bank, bank);
                EXPECT_EQ(loc.row, 3u);
                for (std::size_t j = i + 1; j < frames.size(); ++j)
                    EXPECT_NE(frames[i], frames[j]);
            }
        }
    }
}

TEST(AddressMapping, FrameIsFullyWithinOneRow)
{
    // Every byte of a 4 KiB frame maps to the same (bank, row).
    AddressMapping map(geom(1024));
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        PhysFrame frame = rng.below((1024ull << 20) >> kPageShift);
        DramLocation first = map.decompose(frame << kPageShift);
        DramLocation last =
            map.decompose((frame << kPageShift) + kPageBytes - 1);
        EXPECT_EQ(first.bank, last.bank);
        EXPECT_EQ(first.row, last.row);
    }
}

TEST(AddressMapping, XorHashSpreadsHighRows)
{
    // Rows far apart (bit 5+ of the row index) land in different banks
    // for the same low address bits, as in DRAMA-style mappings.
    AddressMapping map(geom(8192));
    DramLocation a = map.decompose(0);
    DramLocation b = map.decompose(32ull * 256 * 1024);  // row +32
    EXPECT_NE(a.bank, b.bank);
}

} // namespace
} // namespace pth
