/**
 * @file
 * Tests for the compressed physical pages and sparse physical memory,
 * including the pattern-page/flip equivalence invariant.
 */

#include <gtest/gtest.h>

#include "mem/phys_page.hh"
#include "mem/physical_memory.hh"

namespace pth
{
namespace
{

TEST(PhysPage, StartsZero)
{
    PhysPage p;
    EXPECT_EQ(p.kind(), PhysPage::Kind::Zero);
    EXPECT_EQ(p.read64(0), 0u);
    EXPECT_EQ(p.read8(4095), 0u);
    EXPECT_TRUE(p.isZero());
}

TEST(PhysPage, PatternFillReadsEverywhere)
{
    PhysPage p;
    p.fillPattern(0x1122334455667788ull);
    EXPECT_EQ(p.kind(), PhysPage::Kind::Pattern);
    for (std::uint64_t off = 0; off < kPageBytes; off += 512)
        EXPECT_EQ(p.read64(off), 0x1122334455667788ull);
    EXPECT_EQ(p.read8(0), 0x88);
    EXPECT_EQ(p.read8(7), 0x11);
}

TEST(PhysPage, WritingPatternValueKeepsCompressed)
{
    PhysPage p;
    p.fillPattern(0xaaull);
    p.write64(64, 0xaaull);
    EXPECT_EQ(p.kind(), PhysPage::Kind::Pattern);
}

TEST(PhysPage, HeterogeneousWriteDensifies)
{
    PhysPage p;
    p.fillPattern(0xaaull);
    p.write64(64, 0xbbull);
    EXPECT_EQ(p.kind(), PhysPage::Kind::Dense);
    EXPECT_EQ(p.read64(64), 0xbbull);
    EXPECT_EQ(p.read64(128), 0xaaull);
}

TEST(PhysPage, FlipBitMatchesDenseSemantics)
{
    // Property: flipping bits on a pattern page must agree with the
    // same flips on an explicitly dense page.
    PhysPage pattern;
    pattern.fillPattern(0x00ff00ff00ff00ffull);
    PhysPage dense;
    for (std::uint64_t off = 0; off < kPageBytes; off += 8)
        dense.write64(off, 0x00ff00ff00ff00ffull);
    dense.write64(kPageBytes - 8, 0x1);  // force dense representation

    pattern.flipBit(100, 3);
    dense.flipBit(100, 3);
    EXPECT_EQ(pattern.read8(100), dense.read8(100));
    // Flip back restores.
    pattern.flipBit(100, 3);
    EXPECT_EQ(pattern.read8(100), 0x00ff00ff00ff00ffull >> (8 * (100 % 8))
                                      & 0xff);
}

TEST(PhysPage, FlipChangesExactlyOneBit)
{
    PhysPage p;
    p.fillPattern(0);
    std::uint8_t after = p.flipBit(10, 5);
    EXPECT_EQ(after, 1u << 5);
    EXPECT_EQ(p.read8(9), 0u);
    EXPECT_EQ(p.read8(11), 0u);
}

TEST(PhysicalMemory, UnmaterializedReadsZero)
{
    PhysicalMemory mem(1 << 20);
    EXPECT_EQ(mem.read64(0x1000), 0u);
    EXPECT_EQ(mem.materializedPages(), 0u);
}

TEST(PhysicalMemory, WriteMaterializesOnePage)
{
    PhysicalMemory mem(1 << 20);
    mem.write64(0x2000, 0xdead);
    EXPECT_EQ(mem.read64(0x2000), 0xdeadull);
    EXPECT_EQ(mem.materializedPages(), 1u);
    EXPECT_TRUE(mem.isMaterialized(2));
    EXPECT_FALSE(mem.isMaterialized(3));
}

TEST(PhysicalMemory, FramePatternFill)
{
    PhysicalMemory mem(1 << 20);
    mem.fillFramePattern(5, 0x42);
    EXPECT_EQ(mem.read64(5 * kPageBytes + 3000 / 8 * 8), 0x42ull);
}

TEST(PhysicalMemory, FlipBitOnUntouchedPage)
{
    PhysicalMemory mem(1 << 20);
    mem.flipBit(0x3000, 7);
    EXPECT_EQ(mem.read8(0x3000), 0x80);
}

TEST(PhysicalMemory, ByteAndWordViewsAgree)
{
    PhysicalMemory mem(1 << 20);
    mem.write64(0x100, 0x0807060504030201ull);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(mem.read8(0x100 + i), i + 1);
    mem.write8(0x100, 0xff);
    EXPECT_EQ(mem.read64(0x100) & 0xff, 0xffull);
}

TEST(PhysicalMemory, SizeAccounting)
{
    PhysicalMemory mem(8ull << 30);
    EXPECT_EQ(mem.size(), 8ull << 30);
    EXPECT_EQ(mem.frames(), (8ull << 30) / 4096);
}

TEST(PhysicalMemoryDeath, OutOfRangeAccessPanics)
{
    PhysicalMemory mem(1 << 20);
    EXPECT_DEATH(mem.read64(1 << 20), "beyond memory end");
}

} // namespace
} // namespace pth
