/**
 * @file
 * TLB tests: linear set mapping (Gras et al.), two-level behaviour,
 * invalidation and flush semantics.
 */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"
#include "tlb/two_level_tlb.hh"

namespace pth
{
namespace
{

TlbLevelConfig
level(std::uint64_t sets, unsigned ways,
      ReplacementKind kind = ReplacementKind::Lru)
{
    return {sets, ways, kind};
}

TEST(Tlb, LinearSetMapping)
{
    Tlb tlb(level(16, 4));
    EXPECT_EQ(tlb.setOf(0), 0u);
    EXPECT_EQ(tlb.setOf(5), 5u);
    EXPECT_EQ(tlb.setOf(16), 0u);
    EXPECT_EQ(tlb.setOf(21), 5u);
}

TEST(Tlb, InsertThenLookup)
{
    Tlb tlb(level(16, 4));
    tlb.insert({100, 7, false});
    auto hit = tlb.lookup(100, false);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->pfn, 7u);
    EXPECT_FALSE(tlb.lookup(101, false).has_value());
}

TEST(Tlb, HugeAndRegularAreDistinct)
{
    Tlb tlb(level(16, 4));
    tlb.insert({100, 7, false});
    EXPECT_FALSE(tlb.lookup(100, true).has_value());
    tlb.insert({100, 9, true});
    EXPECT_EQ(tlb.lookup(100, true)->pfn, 9u);
    EXPECT_EQ(tlb.lookup(100, false)->pfn, 7u);
}

TEST(Tlb, ReinsertUpdatesInPlace)
{
    Tlb tlb(level(16, 4));
    tlb.insert({100, 7, false});
    tlb.insert({100, 8, false});
    EXPECT_EQ(tlb.validEntries(), 1u);
    EXPECT_EQ(tlb.lookup(100, false)->pfn, 8u);
}

TEST(Tlb, CongruentInsertsEvict)
{
    Tlb tlb(level(16, 4, ReplacementKind::Lru));
    // 5 translations in the same set (vpn stride 16).
    for (std::uint64_t i = 0; i < 5; ++i)
        tlb.insert({i * 16, i, false});
    EXPECT_FALSE(tlb.contains(0, false));  // LRU victim
    EXPECT_TRUE(tlb.contains(4 * 16, false));
}

TEST(Tlb, DifferentSetsDoNotInterfere)
{
    Tlb tlb(level(16, 4));
    tlb.insert({3, 1, false});
    for (std::uint64_t i = 0; i < 32; ++i)
        tlb.insert({4 + i * 16, i, false});  // set 4 only
    EXPECT_TRUE(tlb.contains(3, false));
}

TEST(Tlb, InvalidateIsExact)
{
    Tlb tlb(level(16, 4));
    tlb.insert({100, 7, false});
    tlb.insert({116, 8, false});
    tlb.invalidate(100, false);
    EXPECT_FALSE(tlb.contains(100, false));
    EXPECT_TRUE(tlb.contains(116, false));
}

TEST(Tlb, FlushAllEmpties)
{
    Tlb tlb(level(16, 4));
    for (std::uint64_t i = 0; i < 10; ++i)
        tlb.insert({i, i, false});
    tlb.flushAll();
    EXPECT_EQ(tlb.validEntries(), 0u);
}

TEST(TwoLevelTlb, MissInBothReportsMiss)
{
    TwoLevelTlb tlb(TlbConfig{});
    auto r = tlb.lookup(42, false);
    EXPECT_FALSE(r.hit);
    EXPECT_GT(r.latency, 0u);  // probed the sTLB
}

TEST(TwoLevelTlb, InsertFillsBothLevels)
{
    TwoLevelTlb tlb(TlbConfig{});
    tlb.insert({42, 7, false});
    EXPECT_TRUE(tlb.l1().contains(42, false));
    EXPECT_TRUE(tlb.l2().contains(42, false));
}

TEST(TwoLevelTlb, L1HitIsFree)
{
    TwoLevelTlb tlb(TlbConfig{});
    tlb.insert({42, 7, false});
    auto r = tlb.lookup(42, false);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 0u);
}

TEST(TwoLevelTlb, L2HitPromotesToL1)
{
    TwoLevelTlb tlb(TlbConfig{});
    tlb.insert({42, 7, false});
    tlb.l1().invalidate(42, false);
    auto r = tlb.lookup(42, false);
    EXPECT_TRUE(r.hit);
    EXPECT_GT(r.latency, 0u);
    EXPECT_TRUE(tlb.l1().contains(42, false));
}

TEST(TwoLevelTlb, InvalidateDropsBothLevels)
{
    TwoLevelTlb tlb(TlbConfig{});
    tlb.insert({42, 7, false});
    tlb.invalidate(42, false);
    EXPECT_FALSE(tlb.contains(42, false));
}

TEST(TwoLevelTlb, TotalEntriesMatchesGeometry)
{
    TlbConfig config;
    config.l1d = {16, 4, ReplacementKind::Lru};
    config.l2s = {128, 4, ReplacementKind::Lru};
    TwoLevelTlb tlb(config);
    EXPECT_EQ(tlb.totalEntries(), 16 * 4 + 128 * 4u);
}

} // namespace
} // namespace pth
