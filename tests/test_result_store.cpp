/**
 * @file
 * Result-store and checkpoint/resume tests: journal lines round-trip
 * every report-feeding field exactly, a resumed campaign skips runs
 * its journal already holds and still renders a byte-identical JSON
 * report, and corrupt journal lines (the artifact of a kill mid-
 * write) are skipped instead of poisoning the resume.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hh"
#include "common/table.hh"
#include "harness/campaign.hh"
#include "harness/result_store.hh"

namespace pth
{
namespace
{

std::string
tempPath(const char *name)
{
    return testing::TempDir() + "pth_result_store_" + name;
}

/** Delete a file if present (test setup/teardown). */
void
removeFile(const std::string &path)
{
    std::remove(path.c_str());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * A campaign of count custom-body runs on the tiny machine. Each
 * body bumps executions (when given) so tests can count how many
 * runs actually executed vs. were served from the journal.
 */
Campaign
countingCampaign(unsigned count, std::atomic<unsigned> *executions)
{
    Campaign campaign;
    for (unsigned i = 0; i < count; ++i) {
        RunSpec spec;
        spec.label = strfmt("run%u", i);
        spec.preset = MachinePreset::TestSmall;
        spec.seed = 40 + i;
        spec.body = [executions](Machine &, const AttackConfig &,
                                 RunResult &res) {
            if (executions)
                ++*executions;
            res.flips = res.seed * 3;
            res.flipped = true;
            res.metrics.emplace_back(
                "third", static_cast<double>(res.seed) / 3.0);
        };
        campaign.add(spec);
    }
    return campaign;
}

/** A small real-strategy campaign (same shape as test_harness's). */
Campaign
pthammerCampaign(unsigned seeds)
{
    RunSpec base;
    base.label = "smoke";
    base.preset = MachinePreset::TestSmall;
    base.strategy = HammerStrategy::PThammer;
    base.attack.superpages = true;
    base.attack.sprayBytes = 24ull << 20;
    base.attack.superpageSampleClasses = 2;
    base.attack.maxAttempts = 10;
    base.attack.hammerBudgetSeconds = 36000;

    Campaign campaign;
    campaign.addSeedSweep(base, /*seedBase=*/100, seeds);
    return campaign;
}

TEST(SpecKey, StableAndSensitive)
{
    RunSpec a;
    a.label = "x";
    a.seed = 7;
    RunSpec copy = a;
    EXPECT_EQ(specKey(a), specKey(copy));

    RunSpec differentSeed = a;
    differentSeed.seed = 8;
    EXPECT_NE(specKey(a), specKey(differentSeed));

    RunSpec differentLabel = a;
    differentLabel.label = "y";
    EXPECT_NE(specKey(a), specKey(differentLabel));

    RunSpec differentAttack = a;
    differentAttack.attack.sprayBytes += 1;
    EXPECT_NE(specKey(a), specKey(differentAttack));

    RunSpec differentStrategy = a;
    differentStrategy.strategy = HammerStrategy::Explicit;
    EXPECT_NE(specKey(a), specKey(differentStrategy));

    // Journals from different DRAM flip models must never satisfy
    // each other's resume, and the non-default kinds must not
    // collide among themselves either.
    RunSpec trr = a;
    trr.dramModel = FlipModelKind::Trr;
    RunSpec distance2 = a;
    distance2.dramModel = FlipModelKind::Distance2;
    EXPECT_NE(specKey(a), specKey(trr));
    EXPECT_NE(specKey(a), specKey(distance2));
    EXPECT_NE(specKey(trr), specKey(distance2));
}

TEST(Json, ParsesWriterDialect)
{
    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(
        "{\"a\": 1, \"b\": [true, \"x\\n\\u0041\"], \"c\": {\"d\":"
        " -2.5e3}}",
        doc));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("a")->asU64(), 1u);
    ASSERT_TRUE(doc.find("b")->isArray());
    EXPECT_TRUE(doc.find("b")->items()[0].asBool());
    EXPECT_EQ(doc.find("b")->items()[1].asString(), "x\nA");
    EXPECT_DOUBLE_EQ(doc.find("c")->find("d")->asDouble(), -2500.0);

    // 64-bit integers survive without a double detour.
    ASSERT_TRUE(JsonValue::parse("18446744073709551615", doc));
    EXPECT_EQ(doc.asU64(), 18446744073709551615ull);

    // Corrupt documents are rejected, not half-parsed.
    EXPECT_FALSE(JsonValue::parse("{\"a\": 1", doc));
    EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing", doc));
    EXPECT_FALSE(JsonValue::parse("", doc));
}

TEST(ResultStore, JournalLineRoundTripsExactly)
{
    RunResult r;
    r.index = 11;
    r.label = "odd \"label\"\nwith\tescapes";
    r.machine = "Lenovo T420";
    r.defense = "CATT";
    r.strategy = "pthammer";
    r.seed = 0xdeadbeefcafef00dull; // > 2^53: must not pass through a double
    r.ok = false;
    r.error = "boom";
    r.flipped = true;
    r.escalated = true;
    r.flips = (1ull << 60) + 3;
    r.attempts = 450;
    r.flipsUntilEscalation = 3;
    r.exploitPath = "page-table takeover";
    r.simSeconds = 0.1; // not exactly representable
    r.wallSeconds = 2.25;
    r.metrics.emplace_back("cycles", 1234.5678e-9);
    r.metrics.emplace_back("rate", 1.0 / 3.0);
    r.report.machine = "Lenovo T420";
    r.report.superpages = true;
    r.report.defense = "CATT";
    r.report.sprayMs = 1e-20;
    r.report.tlbPrepMs = 11.0;
    r.report.llcPrepMinutes = 0.3;
    r.report.tlbSelectMicros = 1.0000000000000002;
    r.report.llcSelectMs = 285.5;
    r.report.hammerMs = 285.1;
    r.report.checkSeconds = 4.4;
    r.report.timeToFirstFlipMinutes = 10.7;
    r.report.flipped = true;
    r.report.escalated = true;
    r.report.attempts = 450;
    r.report.flipsObserved = 9;
    r.report.flipsUntilEscalation = 3;
    r.report.exploitPath = "page-table takeover";

    const std::uint64_t key = 0x0123456789abcdefull;
    ResultStore::Entry entry;
    ASSERT_TRUE(
        ResultStore::deserialize(ResultStore::serialize(r, key),
                                 entry));
    EXPECT_EQ(entry.key, key);

    const RunResult &b = entry.result;
    EXPECT_EQ(b.index, r.index);
    EXPECT_EQ(b.label, r.label);
    EXPECT_EQ(b.machine, r.machine);
    EXPECT_EQ(b.defense, r.defense);
    EXPECT_EQ(b.strategy, r.strategy);
    EXPECT_EQ(b.seed, r.seed);
    EXPECT_EQ(b.ok, r.ok);
    EXPECT_EQ(b.error, r.error);
    EXPECT_EQ(b.flipped, r.flipped);
    EXPECT_EQ(b.escalated, r.escalated);
    EXPECT_EQ(b.flips, r.flips);
    EXPECT_EQ(b.attempts, r.attempts);
    EXPECT_EQ(b.flipsUntilEscalation, r.flipsUntilEscalation);
    EXPECT_EQ(b.exploitPath, r.exploitPath);
    // Doubles must be bit-exact (==, not near) for report identity.
    EXPECT_EQ(b.simSeconds, r.simSeconds);
    EXPECT_EQ(b.wallSeconds, r.wallSeconds);
    ASSERT_EQ(b.metrics.size(), r.metrics.size());
    for (std::size_t i = 0; i < r.metrics.size(); ++i) {
        EXPECT_EQ(b.metrics[i].first, r.metrics[i].first);
        EXPECT_EQ(b.metrics[i].second, r.metrics[i].second);
    }
    EXPECT_EQ(b.report.machine, r.report.machine);
    EXPECT_EQ(b.report.superpages, r.report.superpages);
    EXPECT_EQ(b.report.defense, r.report.defense);
    EXPECT_EQ(b.report.sprayMs, r.report.sprayMs);
    EXPECT_EQ(b.report.tlbPrepMs, r.report.tlbPrepMs);
    EXPECT_EQ(b.report.llcPrepMinutes, r.report.llcPrepMinutes);
    EXPECT_EQ(b.report.tlbSelectMicros, r.report.tlbSelectMicros);
    EXPECT_EQ(b.report.llcSelectMs, r.report.llcSelectMs);
    EXPECT_EQ(b.report.hammerMs, r.report.hammerMs);
    EXPECT_EQ(b.report.checkSeconds, r.report.checkSeconds);
    EXPECT_EQ(b.report.timeToFirstFlipMinutes,
              r.report.timeToFirstFlipMinutes);
    EXPECT_EQ(b.report.flipped, r.report.flipped);
    EXPECT_EQ(b.report.escalated, r.report.escalated);
    EXPECT_EQ(b.report.attempts, r.report.attempts);
    EXPECT_EQ(b.report.flipsObserved, r.report.flipsObserved);
    EXPECT_EQ(b.report.flipsUntilEscalation,
              r.report.flipsUntilEscalation);
    EXPECT_EQ(b.report.exploitPath, r.report.exploitPath);
}

TEST(ResultStore, NonFiniteDoublesSurviveTheJournal)
{
    RunResult r;
    r.index = 0;
    r.label = "nonfinite";
    r.metrics.emplace_back("a_nan", std::nan(""));
    r.metrics.emplace_back("an_inf", INFINITY);
    r.metrics.emplace_back("neg_inf", -INFINITY);
    r.simSeconds = INFINITY;

    ResultStore::Entry entry;
    ASSERT_TRUE(ResultStore::deserialize(
        ResultStore::serialize(r, 1), entry));
    ASSERT_EQ(entry.result.metrics.size(), 3u);
    EXPECT_TRUE(std::isnan(entry.result.metrics[0].second));
    EXPECT_EQ(entry.result.metrics[1].second, INFINITY);
    EXPECT_EQ(entry.result.metrics[2].second, -INFINITY);
    EXPECT_EQ(entry.result.simSeconds, INFINITY);
}

TEST(ResultStore, MistypedFieldRejectsTheLine)
{
    RunResult r;
    r.index = 0;
    r.label = "typed";
    const std::string line = ResultStore::serialize(r, 42);

    ResultStore::Entry entry;
    EXPECT_TRUE(ResultStore::deserialize(line, entry));

    // A numeric field decayed to a string must mark the line corrupt
    // rather than quietly parsing as zero.
    std::string bad = line;
    const auto pos = bad.find("\"flips\": 0");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 10, "\"flips\": \"0\"");
    EXPECT_FALSE(ResultStore::deserialize(bad, entry));
}

TEST(ResultStore, ResumeSkipsCompletedRuns)
{
    const std::string journal = tempPath("resume_skips.jsonl");
    removeFile(journal);

    std::atomic<unsigned> executions{0};
    Campaign campaign = countingCampaign(4, &executions);

    CampaignOptions options;
    options.threads = 2;
    options.journalPath = journal;
    std::vector<RunResult> first = campaign.run(options);
    EXPECT_EQ(executions.load(), 4u);

    // Same campaign again: everything is served from the journal.
    std::vector<RunResult> second = campaign.run(options);
    EXPECT_EQ(executions.load(), 4u);
    EXPECT_EQ(Campaign::toJson(first), Campaign::toJson(second));

    // resume = false truncates and reruns.
    options.resume = false;
    campaign.run(options);
    EXPECT_EQ(executions.load(), 8u);

    removeFile(journal);
}

TEST(ResultStore, ResumedReportIsByteIdenticalToUninterrupted)
{
    const std::string full = tempPath("uninterrupted.jsonl");
    const std::string partial = tempPath("interrupted.jsonl");
    removeFile(full);
    removeFile(partial);

    Campaign campaign = pthammerCampaign(6);

    // The uninterrupted reference, serial.
    CampaignOptions reference;
    reference.threads = 1;
    reference.journalPath = full;
    std::string uninterrupted =
        Campaign::toJson(campaign.run(reference));

    // Simulate a campaign killed after three runs: keep the first
    // three journal lines only.
    std::istringstream journal(readFile(full));
    std::ofstream truncated(partial);
    std::string line;
    for (int i = 0; i < 3 && std::getline(journal, line); ++i)
        truncated << line << '\n';
    truncated.close();

    // Resume from the partial journal, parallel this time.
    CampaignOptions resumed;
    resumed.threads = 4;
    resumed.journalPath = partial;
    std::string resumedReport =
        Campaign::toJson(campaign.run(resumed));

    EXPECT_EQ(uninterrupted, resumedReport);

    // The journal now holds all six runs: one more resume executes
    // nothing and still matches (journal load path end-to-end).
    std::string again = Campaign::toJson(campaign.run(resumed));
    EXPECT_EQ(uninterrupted, again);

    removeFile(full);
    removeFile(partial);
}

TEST(ResultStore, CorruptJournalLinesAreSkippedAndRecovered)
{
    const std::string journal = tempPath("corrupt.jsonl");
    removeFile(journal);

    std::atomic<unsigned> executions{0};
    Campaign campaign = countingCampaign(3, &executions);

    CampaignOptions options;
    options.threads = 1;
    options.journalPath = journal;
    std::string clean = Campaign::toJson(campaign.run(options));
    EXPECT_EQ(executions.load(), 3u);

    // Vandalize the journal: truncate the last line mid-write (the
    // kill-mid-write artifact) and add plain garbage.
    std::istringstream lines(readFile(journal));
    std::vector<std::string> kept;
    std::string line;
    while (std::getline(lines, line))
        kept.push_back(line);
    ASSERT_EQ(kept.size(), 3u);
    {
        std::ofstream out(journal, std::ios::trunc);
        out << kept[0] << '\n';
        out << "not json at all\n";
        out << kept[1] << '\n';
        out << kept[2].substr(0, kept[2].size() / 2); // torn write
    }

    // Resume: runs 0 and 1 come from the journal, run 2 re-executes.
    std::string recovered = Campaign::toJson(campaign.run(options));
    EXPECT_EQ(executions.load(), 4u);
    EXPECT_EQ(clean, recovered);

    removeFile(journal);
}

TEST(ResultStore, ChangedSpecInvalidatesJournalEntry)
{
    const std::string journal = tempPath("spec_change.jsonl");
    removeFile(journal);

    std::atomic<unsigned> executions{0};
    Campaign campaign = countingCampaign(2, &executions);

    CampaignOptions options;
    options.journalPath = journal;
    campaign.run(options);
    EXPECT_EQ(executions.load(), 2u);

    // Same labels/indices, different seeds: the stored key no longer
    // matches, so both runs execute again.
    Campaign changed;
    for (unsigned i = 0; i < 2; ++i) {
        RunSpec spec;
        spec.label = strfmt("run%u", i);
        spec.preset = MachinePreset::TestSmall;
        spec.seed = 90 + i;
        spec.body = [&executions](Machine &, const AttackConfig &,
                                  RunResult &res) {
            ++executions;
            res.flips = res.seed;
        };
        changed.add(spec);
    }
    std::vector<RunResult> results = changed.run(options);
    EXPECT_EQ(executions.load(), 4u);
    EXPECT_EQ(results[0].flips, 90u);

    removeFile(journal);
}

TEST(ResultStore, FailedRunsAreJournaledButReExecuted)
{
    const std::string journal = tempPath("failed_rerun.jsonl");
    removeFile(journal);

    std::atomic<unsigned> executions{0};
    Campaign campaign;
    RunSpec bad;
    bad.label = "bad";
    bad.preset = MachinePreset::TestSmall;
    bad.body = [&executions](Machine &, const AttackConfig &,
                             RunResult &) {
        ++executions;
        throw std::runtime_error("deterministic boom");
    };
    campaign.add(bad);

    CampaignOptions options;
    options.journalPath = journal;
    std::vector<RunResult> first = campaign.run(options);
    EXPECT_FALSE(first[0].ok);
    EXPECT_EQ(executions.load(), 1u);

    // The failure is journaled (for the record)...
    auto loaded = ResultStore::load(journal);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_FALSE(loaded.begin()->second.result.ok);
    EXPECT_EQ(loaded.begin()->second.result.error,
              "deterministic boom");

    // ...but a resume retries it rather than pinning the failure.
    campaign.run(options);
    EXPECT_EQ(executions.load(), 2u);

    removeFile(journal);
}

} // namespace
} // namespace pth
