/**
 * @file
 * Campaign runner and thread-pool tests: parallel campaigns must be
 * bit-identical to serial ones (same seeds, same aggregate flip
 * counts, same JSON), and the pool must drain on shutdown and deliver
 * worker exceptions through its futures.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <stdexcept>

#include <sys/stat.h>
#include <unistd.h>

#include "common/stats.hh"
#include "harness/campaign.hh"
#include "harness/scratch_dir.hh"
#include "harness/self_exe.hh"
#include "common/thread_pool.hh"

namespace pth
{
namespace
{

/** A fast campaign: small machine, tiny spray, few attempts. */
Campaign
smallCampaign(unsigned seeds)
{
    RunSpec base;
    base.label = "smoke";
    base.preset = MachinePreset::TestSmall;
    base.strategy = HammerStrategy::PThammer;
    base.attack.superpages = true;
    base.attack.sprayBytes = 24ull << 20;
    base.attack.superpageSampleClasses = 2;
    base.attack.maxAttempts = 10;
    base.attack.hammerBudgetSeconds = 36000;

    Campaign campaign;
    campaign.addSeedSweep(base, /*seedBase=*/100, seeds);
    return campaign;
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ++ran; });
        pool.shutdown();
        EXPECT_EQ(ran.load(), 64);
        pool.shutdown();  // idempotent
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SubmitAfterShutdownThrows)
{
    ThreadPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("worker boom"); });
    auto good = pool.submit([] { return 7; });
    EXPECT_EQ(good.get(), 7);
    try {
        bad.get();
        FAIL() << "expected the worker exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker boom");
    }
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(RunningStat, MergeMatchesCombinedSampling)
{
    RunningStat a;
    RunningStat b;
    RunningStat whole;
    for (double v : {3.0, 1.0, 4.0}) {
        a.sample(v);
        whole.sample(v);
    }
    for (double v : {1.0, 5.0, 9.0, 2.0}) {
        b.sample(v);
        whole.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_DOUBLE_EQ(a.total(), whole.total());
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());

    RunningStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), whole.count());
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), whole.mean());
}

TEST(Campaign, SeedSweepLabelsAndSeeds)
{
    Campaign campaign = smallCampaign(4);
    ASSERT_EQ(campaign.size(), 4u);
    EXPECT_EQ(campaign.specs()[0].seed, 100u);
    EXPECT_EQ(campaign.specs()[3].seed, 103u);
    EXPECT_EQ(campaign.specs()[2].label, "smoke/seed2");
}

TEST(Campaign, ParallelIsBitIdenticalToSerial)
{
    Campaign campaign = smallCampaign(8);

    CampaignOptions serial;
    serial.threads = 1;
    std::vector<RunResult> serialResults = campaign.run(serial);

    CampaignOptions parallel;
    parallel.threads = 8;
    std::vector<RunResult> parallelResults = campaign.run(parallel);

    ASSERT_EQ(serialResults.size(), parallelResults.size());
    for (std::size_t i = 0; i < serialResults.size(); ++i) {
        const RunResult &s = serialResults[i];
        const RunResult &p = parallelResults[i];
        EXPECT_TRUE(s.ok) << s.error;
        EXPECT_EQ(s.index, p.index);
        EXPECT_EQ(s.seed, p.seed);
        EXPECT_EQ(s.flips, p.flips);
        EXPECT_EQ(s.attempts, p.attempts);
        EXPECT_EQ(s.flipped, p.flipped);
        EXPECT_EQ(s.escalated, p.escalated);
        EXPECT_DOUBLE_EQ(s.simSeconds, p.simSeconds);
        EXPECT_DOUBLE_EQ(s.report.hammerMs, p.report.hammerMs);
    }

    CampaignAggregate sa = Campaign::aggregate(serialResults);
    CampaignAggregate pa = Campaign::aggregate(parallelResults);
    EXPECT_EQ(sa.totalFlips, pa.totalFlips);
    EXPECT_EQ(sa.fingerprint(), pa.fingerprint());

    // The rendered artifacts are byte-identical too (wall-clock is
    // deliberately excluded from them).
    EXPECT_EQ(Campaign::toJson(serialResults),
              Campaign::toJson(parallelResults));
}

TEST(Campaign, DifferentSeedsDecorrelateRuns)
{
    Campaign campaign = smallCampaign(4);
    CampaignOptions options;
    options.threads = 2;
    std::vector<RunResult> results = campaign.run(options);
    // Distinct seeds re-key the weak-cell map; simulated time lines up
    // only if the seed wiring is broken.
    bool anyDifferent = false;
    for (std::size_t i = 1; i < results.size(); ++i)
        anyDifferent |= results[i].simSeconds != results[0].simSeconds;
    EXPECT_TRUE(anyDifferent);
}

TEST(Campaign, RunFailuresAreRecordedNotFatal)
{
    Campaign campaign;
    RunSpec bad;
    bad.label = "bad";
    bad.preset = MachinePreset::TestSmall;
    bad.strategy = HammerStrategy::PThammer;
    bad.tweakMachine = [](MachineConfig &) {
        throw std::runtime_error("tweak boom");
    };
    campaign.add(bad);

    std::vector<RunResult> results = campaign.run({});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].error, "tweak boom");

    CampaignAggregate agg = Campaign::aggregate(results);
    EXPECT_EQ(agg.failedRuns, 1u);

    CampaignOptions strict;
    strict.rethrow = true;
    EXPECT_THROW(campaign.run(strict), std::runtime_error);
}

TEST(Campaign, JsonReportsRunsAndAggregate)
{
    Campaign campaign = smallCampaign(2);
    CampaignOptions options;
    options.threads = 2;
    std::vector<RunResult> results = campaign.run(options);
    std::string json = Campaign::toJson(results);
    EXPECT_NE(json.find("\"runs\": ["), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"smoke/seed0\""), std::string::npos);
    EXPECT_NE(json.find("\"aggregate\": {"), std::string::npos);
    EXPECT_NE(json.find("\"fingerprint\": \""), std::string::npos);
    EXPECT_EQ(json.find("wall"), std::string::npos);
}

bool
pathExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

TEST(ScratchDirGuard, RemovesNonEmptyDirectoryOnDestruction)
{
    // Regression: the --workers scratch dir was only removed on the
    // all-success path, and a bare rmdir would have failed anyway
    // because the per-worker journals/logs were still inside.
    std::string dir;
    {
        ScratchDirGuard guard =
            ScratchDirGuard::create("/tmp/pth_testguardXXXXXX");
        dir = guard.path();
        ASSERT_TRUE(pathExists(dir));
        std::ofstream(dir + "/shard0.jsonl") << "{}\n";
        std::ofstream(dir + "/shard0.jsonl.log") << "tail\n";
    }
    EXPECT_FALSE(pathExists(dir));
}

TEST(ScratchDirGuard, KeepLeavesArtifactsOnDisk)
{
    std::string dir;
    {
        ScratchDirGuard guard =
            ScratchDirGuard::create("/tmp/pth_testguardXXXXXX");
        dir = guard.path();
        std::ofstream(dir + "/evidence.log") << "kept\n";
        guard.keep();
        EXPECT_FALSE(guard.active());
    }
    ASSERT_TRUE(pathExists(dir));
    ASSERT_TRUE(pathExists(dir + "/evidence.log"));
    std::remove((dir + "/evidence.log").c_str());
    ::rmdir(dir.c_str());
}

TEST(ScratchDirGuard, MoveTransfersOwnershipOnce)
{
    std::string dir;
    {
        ScratchDirGuard outer;
        EXPECT_FALSE(outer.active());
        {
            ScratchDirGuard inner =
                ScratchDirGuard::create("/tmp/pth_testguardXXXXXX");
            dir = inner.path();
            outer = std::move(inner);
            EXPECT_FALSE(inner.active());
        }
        // inner's death must not have removed the moved-from dir.
        EXPECT_TRUE(pathExists(dir));
    }
    EXPECT_FALSE(pathExists(dir));
}

TEST(SelfExe, ResolvesToAnExistingBinary)
{
    const std::string path = resolveSelfExe("fallback-argv0");
    ASSERT_NE(path, "fallback-argv0");
    EXPECT_EQ(path.front(), '/');
    EXPECT_TRUE(pathExists(path));

    // Regression pin for the truncation fix: /proc/self/exe of this
    // process fits the 4096-byte buffer with room to spare, so the
    // result must be the real link target, not a truncated prefix —
    // readlink against the same buffer size must agree exactly.
    char self[4096];
    const ssize_t len =
        ::readlink("/proc/self/exe", self, sizeof(self));
    ASSERT_GT(len, 0);
    ASSERT_LT(static_cast<std::size_t>(len), sizeof(self));
    EXPECT_EQ(path, std::string(self, static_cast<std::size_t>(len)));
}

} // namespace
} // namespace pth
