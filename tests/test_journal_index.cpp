/**
 * @file
 * JournalIndex tests: filter/group-by answers checked against
 * hand-computed aggregates over hand-built journals, multi-journal
 * last-wins folding checked for consistency with ResultStore::merge,
 * corrupt-line tolerance, artifact sniffing (journal vs. campaign
 * JSON report), and the shared two-artifact diff engine behind
 * campaign_compare / campaign_query --trend.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/journal_index.hh"
#include "harness/result_store.hh"

namespace pth
{
namespace
{

std::string
tempPath(const char *name)
{
    const std::string path = testing::TempDir() + "pth_jidx_" + name;
    std::remove(path.c_str());
    return path;
}

/** A deterministic run record: every field derives from the index so
 * hand-computed expectations stay readable. */
RunResult
makeRun(std::size_t index, const std::string &machine,
        const std::string &defense, std::uint64_t seed,
        std::uint64_t flips, bool ok = true)
{
    RunResult r;
    r.index = index;
    r.label = "pt" + std::to_string(index);
    r.machine = machine;
    r.defense = defense;
    r.strategy = "pthammer";
    r.dramModel = "ddr3";
    r.seed = seed;
    r.ok = ok;
    if (!ok)
        r.error = "synthetic failure";
    r.flips = flips;
    r.flipped = flips > 0;
    r.escalated = flips > 2;
    r.attempts = static_cast<unsigned>(index) + 1;
    r.simSeconds = 1.5 * static_cast<double>(index + 1);
    r.report.flipped = r.flipped;
    r.report.timeToFirstFlipMinutes =
        r.flipped ? 0.5 * static_cast<double>(seed) : 0.0;
    r.metrics.emplace_back("idx", static_cast<double>(index));
    return r;
}

/** The six-run fixture the filter/group tests hand-verify:
 *   0: T420 none   seed=1 flips=0
 *   1: T420 none   seed=2 flips=3  (escalated)
 *   2: T420 trr    seed=3 flips=1
 *   3: X230 none   seed=4 flips=0  FAILED
 *   4: X230 trr    seed=5 flips=2
 *   5: X230 trr    seed=6 flips=4  (escalated) */
std::vector<RunResult>
fixtureRuns()
{
    return {
        makeRun(0, "Lenovo T420", "none", 1, 0),
        makeRun(1, "Lenovo T420", "none", 2, 3),
        makeRun(2, "Lenovo T420", "trr", 3, 1),
        makeRun(3, "Lenovo X230", "none", 4, 0, /*ok=*/false),
        makeRun(4, "Lenovo X230", "trr", 5, 2),
        makeRun(5, "Lenovo X230", "trr", 6, 4),
    };
}

void
writeJournal(const std::string &path,
             const std::vector<RunResult> &runs,
             std::uint64_t keyBase = 100)
{
    std::ofstream out(path, std::ios::trunc);
    for (const RunResult &r : runs)
        out << ResultStore::serialize(r, keyBase + r.index) << '\n';
}

TEST(RunAxisTest, NamesAndAliasesRoundTrip)
{
    const std::vector<std::pair<std::string, RunAxis>> cases = {
        {"label", RunAxis::Label},       {"machine", RunAxis::Machine},
        {"preset", RunAxis::Machine},    {"defense", RunAxis::Defense},
        {"strategy", RunAxis::Strategy}, {"seed", RunAxis::Seed},
        {"dram-model", RunAxis::DramModel},
        {"dram_model", RunAxis::DramModel},
        {"model", RunAxis::DramModel},
    };
    for (const auto &item : cases) {
        RunAxis axis = RunAxis::Label;
        EXPECT_TRUE(parseRunAxis(item.first, axis)) << item.first;
        EXPECT_EQ(axis, item.second) << item.first;
    }
    RunAxis axis = RunAxis::Seed;
    EXPECT_FALSE(parseRunAxis("bogus", axis));
    EXPECT_EQ(axis, RunAxis::Seed); // untouched on failure
    // Canonical names parse back to themselves.
    for (RunAxis a : {RunAxis::Label, RunAxis::Machine, RunAxis::Defense,
                      RunAxis::Strategy, RunAxis::Seed,
                      RunAxis::DramModel}) {
        RunAxis parsed;
        EXPECT_TRUE(parseRunAxis(runAxisName(a), parsed));
        EXPECT_EQ(parsed, a);
    }
}

TEST(RunAxisTest, AxisValueRendersSeedAndUnrecordedModel)
{
    IndexedRun run = indexedRunFromResult(
        makeRun(7, "Lenovo T420", "none", 42, 1), 123);
    EXPECT_EQ(run.key, 123u);
    EXPECT_EQ(run.axisValue(RunAxis::Label), "pt7");
    EXPECT_EQ(run.axisValue(RunAxis::Machine), "Lenovo T420");
    EXPECT_EQ(run.axisValue(RunAxis::Seed), "42");
    EXPECT_EQ(run.axisValue(RunAxis::DramModel), "ddr3");
    run.dramModel.clear(); // pre-dram-model journals
    EXPECT_EQ(run.axisValue(RunAxis::DramModel), "unrecorded");
}

TEST(JournalIndexTest, ParseFilterAcceptsAxisEqualsValue)
{
    JournalIndex::Filter filter;
    std::string error;
    ASSERT_TRUE(JournalIndex::parseFilter("defense=none", filter,
                                          &error))
        << error;
    EXPECT_EQ(filter.axis, RunAxis::Defense);
    EXPECT_EQ(filter.value, "none");
    // Values may contain '=' (split at the first one) and spaces.
    ASSERT_TRUE(JournalIndex::parseFilter("machine=Lenovo T420",
                                          filter, &error));
    EXPECT_EQ(filter.value, "Lenovo T420");
    EXPECT_FALSE(JournalIndex::parseFilter("defense", filter, &error));
    EXPECT_FALSE(JournalIndex::parseFilter("bogus=1", filter, &error));
    EXPECT_FALSE(error.empty());
}

TEST(JournalIndexTest, SelectAppliesFiltersAsConjunction)
{
    const std::string journal = tempPath("select.jsonl");
    writeJournal(journal, fixtureRuns());

    JournalIndex index;
    ASSERT_TRUE(index.addJournal(journal));
    EXPECT_EQ(index.size(), 6u);
    EXPECT_EQ(index.stats().journals, 1u);
    EXPECT_EQ(index.stats().corruptLines, 0u);

    auto labels = [](const std::vector<const IndexedRun *> &runs) {
        std::vector<std::string> out;
        for (const IndexedRun *run : runs)
            out.push_back(run->label);
        return out;
    };

    // No filters: everything, ascending index.
    EXPECT_EQ(labels(index.select({})),
              (std::vector<std::string>{"pt0", "pt1", "pt2", "pt3",
                                        "pt4", "pt5"}));
    // One axis.
    EXPECT_EQ(labels(index.select({{RunAxis::Defense, "trr"}})),
              (std::vector<std::string>{"pt2", "pt4", "pt5"}));
    // AND of two axes.
    EXPECT_EQ(labels(index.select({{RunAxis::Defense, "trr"},
                                   {RunAxis::Machine, "Lenovo X230"}})),
              (std::vector<std::string>{"pt4", "pt5"}));
    // Seed matches its decimal rendering.
    EXPECT_EQ(labels(index.select({{RunAxis::Seed, "5"}})),
              (std::vector<std::string>{"pt4"}));
    // Contradiction selects nothing.
    EXPECT_TRUE(index
                    .select({{RunAxis::Defense, "none"},
                             {RunAxis::Defense, "trr"}})
                    .empty());
    std::remove(journal.c_str());
}

TEST(JournalIndexTest, GroupByMatchesHandComputedAggregates)
{
    const std::string journal = tempPath("group.jsonl");
    writeJournal(journal, fixtureRuns());
    JournalIndex index;
    ASSERT_TRUE(index.addJournal(journal));

    const auto groups =
        JournalIndex::groupBy(index.select({}), RunAxis::Machine);
    ASSERT_EQ(groups.size(), 2u);

    // Lexicographic order: T420 before X230.
    EXPECT_EQ(groups[0].value, "Lenovo T420");
    EXPECT_EQ(groups[0].agg.runs, 3u);
    EXPECT_EQ(groups[0].agg.failedRuns, 0u);
    EXPECT_EQ(groups[0].agg.flippedRuns, 2u);   // pt1, pt2
    EXPECT_EQ(groups[0].agg.escalatedRuns, 1u); // pt1
    EXPECT_EQ(groups[0].agg.totalFlips, 4u);    // 0 + 3 + 1
    EXPECT_EQ(groups[0].agg.totalAttempts, 6u); // 1 + 2 + 3
    // Mean sim seconds over pt0..pt2 = 1.5 * (1+2+3) / 3.
    EXPECT_DOUBLE_EQ(groups[0].agg.simSeconds.mean(), 3.0);
    // Mean time-to-flip over flipped runs = 0.5*(2+3)/2.
    EXPECT_DOUBLE_EQ(groups[0].agg.timeToFlipMinutes.mean(), 1.25);

    EXPECT_EQ(groups[1].value, "Lenovo X230");
    EXPECT_EQ(groups[1].agg.runs, 3u);
    EXPECT_EQ(groups[1].agg.failedRuns, 1u);    // pt3
    EXPECT_EQ(groups[1].agg.flippedRuns, 2u);   // pt4, pt5
    EXPECT_EQ(groups[1].agg.escalatedRuns, 1u); // pt5
    EXPECT_EQ(groups[1].agg.totalFlips, 6u);    // failed pt3 excluded
    // Failed runs contribute to no completion-side stat.
    EXPECT_EQ(groups[1].agg.simSeconds.count(), 2u);

    // Group-by composes with select: trr-only, grouped by machine.
    const auto trr = JournalIndex::groupBy(
        index.select({{RunAxis::Defense, "trr"}}), RunAxis::Machine);
    ASSERT_EQ(trr.size(), 2u);
    EXPECT_EQ(trr[0].agg.runs, 1u);
    EXPECT_EQ(trr[1].agg.runs, 2u);
    EXPECT_EQ(trr[1].agg.totalFlips, 6u);

    // Seed groups sort numerically (2 before 10), not textually.
    const std::string seedJournal = tempPath("group_seed.jsonl");
    writeJournal(seedJournal, {makeRun(0, "m", "none", 10, 1),
                               makeRun(1, "m", "none", 2, 1)});
    JournalIndex seedIndex;
    ASSERT_TRUE(seedIndex.addJournal(seedJournal));
    const auto seeds =
        JournalIndex::groupBy(seedIndex.select({}), RunAxis::Seed);
    ASSERT_EQ(seeds.size(), 2u);
    EXPECT_EQ(seeds[0].value, "2");
    EXPECT_EQ(seeds[1].value, "10");
    std::remove(journal.c_str());
    std::remove(seedJournal.c_str());
}

TEST(JournalIndexTest, MultiJournalFoldMatchesResultStoreMerge)
{
    // Two overlapping shard-era journals: the second supersedes runs
    // 1 and 2. Indexing them in order must answer exactly like
    // querying their ResultStore::merge.
    const std::string first = tempPath("fold_a.jsonl");
    const std::string second = tempPath("fold_b.jsonl");
    writeJournal(first, {makeRun(0, "m", "none", 1, 1),
                         makeRun(1, "m", "none", 2, 1),
                         makeRun(2, "m", "none", 3, 1)});
    RunResult newer1 = makeRun(1, "m", "trr", 20, 7);
    RunResult newer2 = makeRun(2, "m", "trr", 30, 0);
    writeJournal(second, {newer1, newer2}, /*keyBase=*/500);

    JournalIndex direct;
    ASSERT_TRUE(direct.addJournal(first));
    ASSERT_TRUE(direct.addJournal(second));
    EXPECT_EQ(direct.size(), 3u);
    EXPECT_EQ(direct.stats().entries, 5u);
    EXPECT_EQ(direct.stats().superseded, 2u);

    const std::string merged = tempPath("fold_merged.jsonl");
    ResultStore::MergeStats stats;
    ASSERT_TRUE(ResultStore::merge({first, second}, merged, &stats));
    EXPECT_EQ(stats.overwritten, 2u);
    JournalIndex viaMerge;
    ASSERT_TRUE(viaMerge.addJournal(merged));

    const auto a = direct.runs();
    const auto b = viaMerge.runs();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i]->index, b[i]->index);
        EXPECT_EQ(a[i]->label, b[i]->label);
        EXPECT_EQ(a[i]->seed, b[i]->seed);
        EXPECT_EQ(a[i]->key, b[i]->key);
        EXPECT_EQ(a[i]->flips, b[i]->flips);
        EXPECT_EQ(a[i]->defense, b[i]->defense);
    }
    // The superseding entries won.
    EXPECT_EQ(a[1]->seed, 20u);
    EXPECT_EQ(a[1]->flips, 7u);
    EXPECT_EQ(a[2]->defense, "trr");
    std::remove(first.c_str());
    std::remove(second.c_str());
    std::remove(merged.c_str());
}

TEST(JournalIndexTest, CorruptLinesAreSkippedAndCounted)
{
    const std::string journal = tempPath("corrupt.jsonl");
    {
        std::ofstream out(journal, std::ios::trunc);
        out << ResultStore::serialize(makeRun(0, "m", "none", 1, 1),
                                      100)
            << '\n';
        out << "{\"torn\": \n"; // mid-write kill artifact
        out << "not json at all\n";
        out << ResultStore::serialize(makeRun(1, "m", "none", 2, 2),
                                      101)
            << '\n';
        // Torn final line without newline: the snapshot-copy case.
        const std::string full =
            ResultStore::serialize(makeRun(2, "m", "none", 3, 3), 102);
        out << full.substr(0, full.size() / 2);
    }
    JournalIndex index;
    ASSERT_TRUE(index.addJournal(journal));
    EXPECT_EQ(index.size(), 2u);
    EXPECT_EQ(index.stats().corruptLines, 3u);
    EXPECT_EQ(index.select({})[1]->label, "pt1");

    // An unreadable path indexes nothing and reports failure.
    JournalIndex missing;
    std::string error;
    EXPECT_FALSE(missing.addJournal("/nonexistent/x.jsonl"));
    EXPECT_TRUE(missing.empty());
    EXPECT_FALSE(missing.addArtifact("/nonexistent/x.jsonl", &error));
    EXPECT_NE(error.find("cannot read"), std::string::npos);
    std::remove(journal.c_str());
}

TEST(JournalIndexTest, ArtifactSniffingReadsReportsAndJournals)
{
    // Render a real campaign report and journal the same results; the
    // sniffing loader must classify each correctly and index the same
    // run facts from both.
    std::vector<RunResult> runs = fixtureRuns();
    const std::string report = tempPath("sniff.json");
    {
        std::ofstream out(report, std::ios::trunc);
        out << Campaign::toJson(runs);
    }
    const std::string journal = tempPath("sniff.jsonl");
    writeJournal(journal, runs);

    JournalIndex fromReport;
    JournalIndex fromJournal;
    std::string error;
    ASSERT_TRUE(fromReport.addArtifact(report, &error)) << error;
    ASSERT_TRUE(fromJournal.addArtifact(journal, &error)) << error;
    EXPECT_EQ(fromReport.stats().reports, 1u);
    EXPECT_EQ(fromReport.stats().journals, 0u);
    EXPECT_EQ(fromJournal.stats().journals, 1u);

    const auto a = fromReport.runs();
    const auto b = fromJournal.runs();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i]->label, b[i]->label);
        EXPECT_EQ(a[i]->machine, b[i]->machine);
        EXPECT_EQ(a[i]->ok, b[i]->ok);
        EXPECT_EQ(a[i]->flips, b[i]->flips);
        EXPECT_TRUE(sameReportValue(a[i]->simSeconds,
                                    b[i]->simSeconds));
    }
    // Reports carry no spec keys or dram model.
    EXPECT_EQ(a[0]->key, 0u);
    EXPECT_EQ(a[0]->axisValue(RunAxis::DramModel), "unrecorded");
    EXPECT_EQ(b[0]->axisValue(RunAxis::DramModel), "ddr3");

    // A JSON object without "runs" is neither artifact kind.
    const std::string bogus = tempPath("sniff_bogus.json");
    {
        std::ofstream out(bogus, std::ios::trunc);
        out << "{\"hello\": 1}\n";
    }
    JournalIndex broken;
    EXPECT_FALSE(broken.addArtifact(bogus, &error));
    EXPECT_FALSE(error.empty());
    std::remove(report.c_str());
    std::remove(journal.c_str());
    std::remove(bogus.c_str());
}

/** Diff fixture: pointers into locally-owned IndexedRuns. */
std::vector<IndexedRun>
indexRuns(const std::vector<RunResult> &runs)
{
    std::vector<IndexedRun> out;
    for (const RunResult &r : runs)
        out.push_back(indexedRunFromResult(r));
    return out;
}

std::vector<const IndexedRun *>
pointers(const std::vector<IndexedRun> &runs)
{
    std::vector<const IndexedRun *> out;
    for (const IndexedRun &r : runs)
        out.push_back(&r);
    return out;
}

TEST(RunDiffTest, ClassifiesEveryDeltaStatus)
{
    std::vector<RunResult> base = fixtureRuns();
    std::vector<RunResult> cur = fixtureRuns();

    cur[0].flips = 5; // pt0: 0 -> 5 flips, improvement = Changed
    cur[0].flipped = true;
    cur[0].report.flipped = true;
    cur[0].report.timeToFirstFlipMinutes = 0.5;
    cur[1].flips = 1; // pt1: 3 -> 1 flips = Regressed (fewer flips)
    cur[2].simSeconds *= 2.0; // pt2: slower beyond tolerance
    cur[3].ok = true;         // pt3: fixed = Changed
    cur[3].error.clear();
    cur[4].ok = false;        // pt4: now fails = Regressed
    cur[4].error = "boom";
    // pt5 removed from current; pt6 added.
    cur.erase(cur.begin() + 5);
    cur.push_back(makeRun(6, "Lenovo X230", "trr", 7, 1));

    const std::vector<IndexedRun> baseIdx = indexRuns(base);
    const std::vector<IndexedRun> curIdx = indexRuns(cur);
    const RunDiff diff =
        diffRuns(pointers(baseIdx), pointers(curIdx));

    EXPECT_EQ(diff.regressions, 3u); // pt1, pt2, pt4
    EXPECT_EQ(diff.changed, 2u);     // pt0, pt3
    EXPECT_EQ(diff.unchanged, 0u);
    EXPECT_EQ(diff.added, 1u);       // pt6
    EXPECT_EQ(diff.removed, 1u);     // pt5

    ASSERT_EQ(diff.deltas.size(), 7u);
    auto statusOf = [&](const std::string &name) {
        for (const RunDelta &delta : diff.deltas)
            if (delta.name == name)
                return delta.status;
        ADD_FAILURE() << "no delta named " << name;
        return RunDeltaStatus::Unchanged;
    };
    // Labels present on both sides are disambiguated "label#index"
    // (campaign_compare's long-standing matching rule); one-sided
    // labels stay bare.
    EXPECT_EQ(statusOf("pt0#0"), RunDeltaStatus::Changed);
    EXPECT_EQ(statusOf("pt1#1"), RunDeltaStatus::Regressed);
    EXPECT_EQ(statusOf("pt2#2"), RunDeltaStatus::Regressed);
    EXPECT_EQ(statusOf("pt3#3"), RunDeltaStatus::Changed);
    EXPECT_EQ(statusOf("pt4#4"), RunDeltaStatus::Regressed);
    EXPECT_EQ(statusOf("pt5"), RunDeltaStatus::Removed);
    EXPECT_EQ(statusOf("pt6"), RunDeltaStatus::Added);

    // The regression reasons are named.
    for (const RunDelta &delta : diff.deltas) {
        if (delta.name == "pt1#1") {
            EXPECT_NE(delta.detail.find("fewer flips"),
                      std::string::npos);
        } else if (delta.name == "pt2#2") {
            EXPECT_NE(delta.detail.find("slower"), std::string::npos);
        } else if (delta.name == "pt4#4") {
            EXPECT_NE(delta.detail.find("now fails"),
                      std::string::npos);
        }
    }

    // Identical sets: all unchanged, nothing else.
    const RunDiff same =
        diffRuns(pointers(baseIdx), pointers(baseIdx));
    EXPECT_EQ(same.regressions, 0u);
    EXPECT_EQ(same.changed, 0u);
    EXPECT_EQ(same.unchanged, baseIdx.size());
}

TEST(RunDiffTest, ToleranceGatesTheSlowerCriterion)
{
    std::vector<RunResult> base = {makeRun(0, "m", "none", 1, 1)};
    std::vector<RunResult> cur = {makeRun(0, "m", "none", 1, 1)};
    cur[0].simSeconds = base[0].simSeconds * 1.15; // +15%

    const std::vector<IndexedRun> baseIdx = indexRuns(base);
    const std::vector<IndexedRun> curIdx = indexRuns(cur);

    RunDiffOptions strict;
    strict.tolerancePct = 10.0;
    EXPECT_EQ(diffRuns(pointers(baseIdx), pointers(curIdx), strict)
                  .regressions,
              1u);
    RunDiffOptions loose;
    loose.tolerancePct = 20.0;
    const RunDiff ok =
        diffRuns(pointers(baseIdx), pointers(curIdx), loose);
    EXPECT_EQ(ok.regressions, 0u);
    EXPECT_EQ(ok.changed, 1u); // still different, just tolerated
}

TEST(RunDiffTest, DuplicatedLabelsAreDisambiguatedByIndex)
{
    // Two baseline runs share a label; matching must key on
    // "label#index" so each pairs with its own counterpart instead of
    // colliding.
    std::vector<RunResult> base = {makeRun(0, "m", "none", 1, 1),
                                   makeRun(1, "m", "none", 2, 2)};
    base[1].label = base[0].label = "dup";
    std::vector<RunResult> cur = base;
    cur[1].flips = 0; // only dup#1 regresses
    cur[1].flipped = false;
    cur[1].report.flipped = false;
    cur[1].report.timeToFirstFlipMinutes = 0.0;

    const std::vector<IndexedRun> baseIdx = indexRuns(base);
    const std::vector<IndexedRun> curIdx = indexRuns(cur);
    const RunDiff diff =
        diffRuns(pointers(baseIdx), pointers(curIdx));
    EXPECT_EQ(diff.regressions, 1u);
    EXPECT_EQ(diff.added, 0u);
    EXPECT_EQ(diff.removed, 0u);
    ASSERT_EQ(diff.deltas.size(), 2u);
    EXPECT_EQ(diff.deltas[0].name, "dup#0");
    EXPECT_EQ(diff.deltas[1].name, "dup#1");
    EXPECT_EQ(diff.deltas[0].status, RunDeltaStatus::Unchanged);
    EXPECT_EQ(diff.deltas[1].status, RunDeltaStatus::Regressed);
}

} // namespace
} // namespace pth
