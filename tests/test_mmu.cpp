/**
 * @file
 * MMU tests: the Figure-2 translation flow, TLB/PSC fill behaviour,
 * performance counters and invalidation.
 */

#include <gtest/gtest.h>

#include "cpu/machine.hh"

namespace pth
{
namespace
{

struct MmuFixture : public ::testing::Test
{
    MmuFixture() : machine(MachineConfig::testSmall())
    {
        proc = &machine.kernel().createProcess(1000);
        machine.cpu().setProcess(*proc);
        machine.kernel().mmapAnon(*proc, kVa, 16 * kPageBytes);
    }

    static constexpr VirtAddr kVa = 0x5000'0000'0000;
    Machine machine;
    Process *proc;
};

TEST_F(MmuFixture, ColdTranslationWalks)
{
    auto before = machine.mmu().counters().dtlbLoadMissesWalk;
    TranslateResult r = machine.mmu().translate(kVa, machine.clock().now());
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.causedWalk);
    EXPECT_EQ(machine.mmu().counters().dtlbLoadMissesWalk, before + 1);
}

TEST_F(MmuFixture, WarmTranslationHitsTlb)
{
    machine.mmu().translate(kVa, 0);
    TranslateResult r = machine.mmu().translate(kVa, 10);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.causedWalk);
    EXPECT_EQ(r.latency, 0u);
}

TEST_F(MmuFixture, TranslationMatchesFunctionalWalk)
{
    TranslateResult r = machine.mmu().translate(kVa + 0x123, 0);
    auto functional = proc->pageTables()->translate(kVa + 0x123);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(functional.has_value());
    EXPECT_EQ(r.pa, (functional->frame << kPageShift) | 0x123u);
}

TEST_F(MmuFixture, InvlpgForcesRewalk)
{
    machine.mmu().translate(kVa, 0);
    machine.mmu().invalidatePage(kVa);
    TranslateResult r = machine.mmu().translate(kVa, 10);
    EXPECT_TRUE(r.causedWalk);
    // Thanks to the PDE cache, the re-walk is the short path.
    EXPECT_EQ(r.walkStartLevel, 1u);
}

TEST_F(MmuFixture, Cr3WriteFlushesEverything)
{
    machine.mmu().translate(kVa, 0);
    machine.mmu().setRoot(proc->pageTables()->root());
    TranslateResult r = machine.mmu().translate(kVa, 10);
    EXPECT_TRUE(r.causedWalk);
    EXPECT_EQ(r.walkStartLevel, 4u);  // PSCs flushed too
}

TEST_F(MmuFixture, UnmappedTranslationFails)
{
    TranslateResult r = machine.mmu().translate(0xdead0000, 0);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.causedWalk);
}

TEST_F(MmuFixture, HugePageTranslation)
{
    VirtAddr hugeVa = 0x6000'0000'0000;
    machine.kernel().mmapHuge(*proc, hugeVa, kSuperPageBytes);
    TranslateResult cold = machine.mmu().translate(hugeVa + 0x5123, 0);
    ASSERT_TRUE(cold.ok);
    EXPECT_TRUE(cold.huge);
    TranslateResult warm = machine.mmu().translate(hugeVa + 0x7000, 10);
    EXPECT_TRUE(warm.ok);
    EXPECT_FALSE(warm.causedWalk);  // hits the 2 MiB TLB entry
}

TEST_F(MmuFixture, TlbLookupCounterAdvances)
{
    auto before = machine.mmu().counters().tlbLookups;
    machine.mmu().translate(kVa, 0);
    machine.mmu().translate(kVa, 1);
    EXPECT_EQ(machine.mmu().counters().tlbLookups, before + 2);
}

TEST_F(MmuFixture, WalkerCountsPdeStarts)
{
    machine.mmu().translate(kVa, 0);
    machine.mmu().invalidatePage(kVa);
    auto before = machine.mmu().walker().pdeCacheStarts();
    machine.mmu().translate(kVa, 10);
    EXPECT_EQ(machine.mmu().walker().pdeCacheStarts(), before + 1);
}

} // namespace
} // namespace pth
