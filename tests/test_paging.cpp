/**
 * @file
 * Page-table, paging-structure-cache and walker tests — including the
 * PThammer fast path: with a PDE-cache hit, a walk performs exactly
 * one fetch (the Level-1 PTE).
 */

#include <gtest/gtest.h>

#include "cache/cache_hierarchy.hh"
#include "dram/dram.hh"
#include "mem/physical_memory.hh"
#include "paging/page_table_walker.hh"
#include "paging/page_tables.hh"
#include "paging/paging_structure_cache.hh"
#include "paging/pte.hh"

namespace pth
{
namespace
{

TEST(Pte, EncodeDecode)
{
    std::uint64_t e = makePte(0x1234, true, true, false);
    EXPECT_TRUE(ptePresent(e));
    EXPECT_FALSE(pteHuge(e));
    EXPECT_EQ(pteFrame(e), 0x1234u);
    EXPECT_TRUE(e & kPteUser);
    EXPECT_TRUE(e & kPteWritable);
}

TEST(Pte, IndexExtraction)
{
    VirtAddr va = (3ull << 39) | (5ull << 30) | (7ull << 21) | (9ull << 12);
    EXPECT_EQ(pteIndex(va, PtLevel::Pml4e), 3u);
    EXPECT_EQ(pteIndex(va, PtLevel::Pdpte), 5u);
    EXPECT_EQ(pteIndex(va, PtLevel::Pde), 7u);
    EXPECT_EQ(pteIndex(va, PtLevel::Pte), 9u);
}

struct PagingFixture : public ::testing::Test
{
    PagingFixture()
    {
        mem = std::make_unique<PhysicalMemory>(64ull << 20);
        nextFrame = 16;
        tables = std::make_unique<PageTables>(
            *mem, [this](PtLevel) { return nextFrame++; });

        DramGeometry g;
        g.sizeBytes = 64ull << 20;
        DisturbanceConfig dc;
        dc.refreshWindowCycles = 1'000'000;
        dram = std::make_unique<Dram>(g, DramTiming{100, 150, 200}, dc,
                                      *mem);
        CacheHierarchyConfig cc;
        caches = std::make_unique<CacheHierarchy>(cc, *dram);
        pscs = std::make_unique<PagingStructureCaches>(PscConfig{});
        walker = std::make_unique<PageTableWalker>(*mem, *caches, *pscs);
    }

    std::unique_ptr<PhysicalMemory> mem;
    PhysFrame nextFrame;
    std::unique_ptr<PageTables> tables;
    std::unique_ptr<Dram> dram;
    std::unique_ptr<CacheHierarchy> caches;
    std::unique_ptr<PagingStructureCaches> pscs;
    std::unique_ptr<PageTableWalker> walker;
};

TEST_F(PagingFixture, Map4kTranslates)
{
    tables->map4k(0x7000'0000'0000, 0x123);
    auto t = tables->translate(0x7000'0000'0123);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->frame, 0x123u);
    EXPECT_FALSE(t->huge);
}

TEST_F(PagingFixture, UnmappedIsNullopt)
{
    EXPECT_FALSE(tables->translate(0xdead000).has_value());
}

TEST_F(PagingFixture, Map2mTranslatesWithOffset)
{
    tables->map2m(0x4000'0000'0000, 0x200);  // frame 512-aligned
    auto t = tables->translate(0x4000'0000'0000 + 5 * kPageBytes + 7);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->huge);
    EXPECT_EQ(t->frame, 0x200u + 5);
}

TEST_F(PagingFixture, Unmap4kRemoves)
{
    tables->map4k(0x1000, 0x50);
    tables->unmap4k(0x1000);
    EXPECT_FALSE(tables->translate(0x1000).has_value());
}

TEST_F(PagingFixture, SprayRangeSharesOneFrame)
{
    tables->mapRange4kSameFrame(0x2000'0000'0000, 1024, 0x99);
    for (std::uint64_t i = 0; i < 1024; i += 97) {
        auto t = tables->translate(0x2000'0000'0000 + i * kPageBytes);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->frame, 0x99u);
    }
}

TEST_F(PagingFixture, SprayUsesPatternPages)
{
    // A fully-populated, single-frame L1PT page must stay compressed.
    tables->mapRange4kSameFrame(0x2000'0000'0000, kPtesPerPage, 0x99);
    auto l1pt = tables->l1ptFrame(0x2000'0000'0000);
    ASSERT_TRUE(l1pt.has_value());
    // Reading any entry gives the same PTE.
    PhysAddr base = *l1pt << kPageShift;
    EXPECT_EQ(mem->read64(base), mem->read64(base + 8 * 100));
    EXPECT_EQ(pteFrame(mem->read64(base)), 0x99u);
}

TEST_F(PagingFixture, L1pteAddressPointsAtRealEntry)
{
    VirtAddr va = 0x7000'0000'0000 + 37 * kPageBytes;
    tables->map4k(va, 0x777);
    auto pteAddr = tables->l1pteAddress(va);
    ASSERT_TRUE(pteAddr.has_value());
    EXPECT_EQ(pteFrame(mem->read64(*pteAddr)), 0x777u);
}

TEST_F(PagingFixture, CorruptedPteRedirectsTranslation)
{
    VirtAddr va = 0x7000'0000'0000;
    tables->map4k(va, 0x100);
    auto pteAddr = tables->l1pteAddress(va);
    // Simulate a rowhammer flip in a PFN bit.
    mem->flipBit(*pteAddr + 1, 0);  // PTE bit 8... byte1 bit0 = bit 8
    auto t = tables->translate(va);
    // Bit 8 is below the PFN, so translation is unchanged; flip a PFN
    // bit instead.
    mem->flipBit(*pteAddr + 2, 0);  // bit 16 = PFN bit 4
    t = tables->translate(va);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->frame, 0x100u ^ 0x10u);
}

TEST_F(PagingFixture, OutOfRangePfnFaults)
{
    VirtAddr va = 0x7000'0000'0000;
    tables->map4k(va, 0x100);
    auto pteAddr = tables->l1pteAddress(va);
    // Set a PFN bit far above installed memory.
    mem->flipBit(*pteAddr + 5, 0);  // PTE bit 40 -> frame bit 28
    EXPECT_FALSE(tables->translate(va).has_value());
}

TEST_F(PagingFixture, TableFramesTracked)
{
    std::size_t before = tables->tableFrames().size();
    tables->map4k(0x1000, 0x10);
    // root already existed; map added PDPT + PD + PT = 3 frames.
    EXPECT_EQ(tables->tableFrames().size(), before + 3);
}

TEST(PagingStructureCache, LruEviction)
{
    PagingStructureCache psc(2);
    psc.insert(1, 10);
    psc.insert(2, 20);
    psc.lookup(1);      // 2 becomes LRU
    psc.insert(3, 30);  // evicts 2
    EXPECT_TRUE(psc.contains(1));
    EXPECT_FALSE(psc.contains(2));
    EXPECT_TRUE(psc.contains(3));
}

TEST(PagingStructureCache, InsertUpdatesExisting)
{
    PagingStructureCache psc(4);
    psc.insert(1, 10);
    psc.insert(1, 11);
    EXPECT_EQ(psc.validEntries(), 1u);
    EXPECT_EQ(*psc.lookup(1), 11u);
}

TEST(PagingStructureCaches, TagsPerLevel)
{
    VirtAddr va = 0x7fff'ffff'f000;
    EXPECT_EQ(PagingStructureCaches::tagFor(va, PtLevel::Pml4e), va >> 39);
    EXPECT_EQ(PagingStructureCaches::tagFor(va, PtLevel::Pdpte), va >> 30);
    EXPECT_EQ(PagingStructureCaches::tagFor(va, PtLevel::Pde), va >> 21);
}

TEST_F(PagingFixture, ColdWalkFetchesFourLevels)
{
    VirtAddr va = 0x7000'0000'0000;
    tables->map4k(va, 0x100);
    WalkResult r = walker->walk(tables->root(), va, 0);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.frame, 0x100u);
    EXPECT_EQ(r.fetches, 4u);
    EXPECT_EQ(r.startLevel, 4u);
}

TEST_F(PagingFixture, WarmWalkUsesPdeCache)
{
    // The PThammer path: after one walk, the PDE cache holds the
    // partial translation, so the next walk fetches only the L1PTE.
    VirtAddr va = 0x7000'0000'0000;
    tables->map4k(va, 0x100);
    walker->walk(tables->root(), va, 0);
    WalkResult r = walker->walk(tables->root(), va, 100);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.fetches, 1u);
    EXPECT_EQ(r.startLevel, 1u);
}

TEST_F(PagingFixture, PdeCacheCoversNeighbouring4kPages)
{
    VirtAddr va = 0x7000'0000'0000;
    tables->mapRange4kSameFrame(va, kPtesPerPage, 0x42);
    walker->walk(tables->root(), va, 0);
    // A different page in the same 2 MiB region shares the PDE entry.
    WalkResult r = walker->walk(tables->root(), va + 17 * kPageBytes, 10);
    EXPECT_EQ(r.fetches, 1u);
}

TEST_F(PagingFixture, LeafFromDramTracksCacheState)
{
    VirtAddr va = 0x7000'0000'0000;
    tables->map4k(va, 0x100);
    WalkResult cold = walker->walk(tables->root(), va, 0);
    EXPECT_TRUE(cold.leafFromDram);
    WalkResult warm = walker->walk(tables->root(), va, 10);
    EXPECT_FALSE(warm.leafFromDram);  // PTE line now cached

    // Evict the PTE line from the hierarchy: the fetch returns to DRAM.
    auto pteAddr = tables->l1pteAddress(va);
    caches->clflush(*pteAddr);
    WalkResult evicted = walker->walk(tables->root(), va, 20);
    EXPECT_TRUE(evicted.leafFromDram);
    EXPECT_EQ(evicted.fetches, 1u);  // still the short path
}

TEST_F(PagingFixture, NonPresentWalkFails)
{
    WalkResult r = walker->walk(tables->root(), 0xdead000, 0);
    EXPECT_FALSE(r.ok);
    EXPECT_GE(r.fetches, 1u);
}

TEST_F(PagingFixture, HugeWalkStopsAtPde)
{
    tables->map2m(0x4000'0000'0000, 0x200);
    WalkResult r = walker->walk(tables->root(), 0x4000'0000'0000, 0);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.huge);
    EXPECT_EQ(r.fetches, 3u);  // PML4E, PDPTE, PDE
}

} // namespace
} // namespace pth
