/**
 * @file
 * Machine snapshot/fork contract tests. The hard contract: a run on a
 * machine forked from a snapshot is byte-identical to the same run on
 * a cold-constructed machine — across DRAM flip models, machine
 * presets, clone-of-clone chains, and the campaign's warm/cold
 * execution modes (serial and threaded). Also audits that every
 * counter (cache hits/misses, LLC misses, perf counters, kernel
 * bookkeeping) restores to its captured value.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/random.hh"
#include "cpu/machine.hh"
#include "harness/campaign.hh"
#include "harness/result_store.hh"

namespace pth
{
namespace
{

constexpr VirtAddr kVa = 0x2000'0000;

/**
 * Deterministically exercise every machine component: process +
 * address space creation, TLB/cache/DRAM traffic, clflushes, user
 * writes. salt decorrelates drives so two different drives diverge.
 */
void
drive(Machine &m, std::uint64_t salt)
{
    Process &proc = m.kernel().createProcess(1000);
    m.cpu().setProcess(proc);
    m.kernel().mmapAnon(proc, kVa, 32 * kPageBytes);
    Rng rng(0xd21fe + salt);
    for (int i = 0; i < 300; ++i) {
        VirtAddr va = kVa + rng.below(32) * kPageBytes +
                      rng.below(8) * 64;
        m.cpu().access(va);
        if (i % 17 == 0)
            m.cpu().clflush(va);
        if (i % 29 == 0)
            m.cpu().writeUser64(va & ~0x7ull, rng.next());
    }
}

const FlipModelKind kAllModels[] = {
    FlipModelKind::Ddr3Seeded, FlipModelKind::Trr,
    FlipModelKind::Distance2, FlipModelKind::Ecc};

TEST(MachineSnapshot, ForkMatchesColdConstructionEveryDramModel)
{
    for (FlipModelKind kind : kAllModels) {
        MachineConfig config = MachineConfig::testSmall();
        config.withDramModel(kind);

        Machine original(config);
        MachineSnapshot snap = original.snapshot();
        std::unique_ptr<Machine> forked = snap.instantiate();
        Machine cold(config);

        // Construction is deterministic, so a fork of a just-built
        // machine must land exactly where a cold build does.
        ASSERT_EQ(forked->stateFingerprint(), cold.stateFingerprint())
            << "model " << static_cast<int>(kind);

        // And the fork replays identically from there on.
        drive(*forked, 1);
        drive(cold, 1);
        EXPECT_EQ(forked->stateFingerprint(), cold.stateFingerprint())
            << "model " << static_cast<int>(kind);
    }
}

TEST(MachineSnapshot, ForkMatchesColdConstructionEveryPreset)
{
    const MachinePreset presets[] = {
        MachinePreset::TestSmall, MachinePreset::LenovoT420,
        MachinePreset::LenovoX230, MachinePreset::DellE6420};
    for (MachinePreset preset : presets) {
        MachineConfig config = makeMachineConfig(preset);
        Machine original(config);
        std::unique_ptr<Machine> forked = original.clone();
        Machine cold(config);
        ASSERT_EQ(forked->stateFingerprint(), cold.stateFingerprint())
            << machinePresetName(preset);
        drive(*forked, 2);
        drive(cold, 2);
        EXPECT_EQ(forked->stateFingerprint(), cold.stateFingerprint())
            << machinePresetName(preset);
    }
}

TEST(MachineSnapshot, CloneOfCloneReplaysIdentically)
{
    Machine original(MachineConfig::testSmall());
    drive(original, 3);

    std::unique_ptr<Machine> first = original.clone();
    std::unique_ptr<Machine> second = first->clone();
    ASSERT_EQ(original.stateFingerprint(), first->stateFingerprint());
    ASSERT_EQ(original.stateFingerprint(), second->stateFingerprint());

    // All three must evolve in lockstep under the same inputs.
    drive(original, 4);
    drive(*first, 4);
    drive(*second, 4);
    EXPECT_EQ(original.stateFingerprint(), first->stateFingerprint());
    EXPECT_EQ(original.stateFingerprint(), second->stateFingerprint());
}

TEST(MachineSnapshot, ForksDoNotAliasState)
{
    Machine original(MachineConfig::testSmall());
    drive(original, 5);
    MachineSnapshot snap = original.snapshot();

    std::unique_ptr<Machine> a = snap.instantiate();
    std::unique_ptr<Machine> b = snap.instantiate();
    drive(*a, 6);  // diverge a only
    EXPECT_NE(a->stateFingerprint(), b->stateFingerprint());
    // b and the frozen state are untouched by a's run.
    EXPECT_EQ(b->stateFingerprint(), snap.machine().stateFingerprint());
    EXPECT_EQ(b->stateFingerprint(), original.stateFingerprint());
}

TEST(MachineSnapshot, CountersRestoreToCapturedValues)
{
    Machine m(MachineConfig::testSmall());
    drive(m, 7);

    const std::uint64_t llcMisses = m.caches().llcMisses();
    const std::uint64_t l1Hits = m.caches().l1d().hits();
    const std::uint64_t l1Misses = m.caches().l1d().misses();
    const std::uint64_t walks = m.mmu().counters().pageWalks;
    const std::uint64_t tlbLookups = m.mmu().counters().tlbLookups;
    const std::uint64_t l1pts = m.kernel().l1ptCount();
    const Cycles now = m.clock().now();
    const std::uint64_t fp = m.stateFingerprint();
    ASSERT_GT(llcMisses, 0u);
    ASSERT_GT(walks, 0u);

    MachineSnapshot snap = m.snapshot();
    drive(m, 8);  // push the original far past the capture point
    ASSERT_NE(m.stateFingerprint(), fp);

    std::unique_ptr<Machine> restored = snap.instantiate();
    EXPECT_EQ(restored->caches().llcMisses(), llcMisses);
    EXPECT_EQ(restored->caches().l1d().hits(), l1Hits);
    EXPECT_EQ(restored->caches().l1d().misses(), l1Misses);
    EXPECT_EQ(restored->mmu().counters().pageWalks, walks);
    EXPECT_EQ(restored->mmu().counters().tlbLookups, tlbLookups);
    EXPECT_EQ(restored->kernel().l1ptCount(), l1pts);
    EXPECT_EQ(restored->clock().now(), now);
    EXPECT_EQ(restored->stateFingerprint(), fp);
}

/** A fast PThammer campaign over one shared machine configuration. */
Campaign
attackSweep(unsigned seeds)
{
    RunSpec base;
    base.label = "warmfork";
    base.preset = MachinePreset::TestSmall;
    base.strategy = HammerStrategy::PThammer;
    base.attack.superpages = true;
    base.attack.sprayBytes = 24ull << 20;
    base.attack.superpageSampleClasses = 2;
    base.attack.maxAttempts = 10;
    base.attack.hammerBudgetSeconds = 36000;

    Campaign campaign;
    campaign.addAttackSeedSweep(base, /*seedBase=*/100, seeds);
    return campaign;
}

TEST(CampaignSnapshot, WarmForkReportByteIdenticalToColdSerial)
{
    Campaign campaign = attackSweep(3);

    CampaignOptions warm;   // reuseMachines defaults to true
    CampaignOptions cold;
    cold.reuseMachines = false;

    const std::string warmJson =
        Campaign::toJson(campaign.run(warm));
    const std::string coldJson =
        Campaign::toJson(campaign.run(cold));
    EXPECT_EQ(warmJson, coldJson);
}

TEST(CampaignSnapshot, WarmForkReportByteIdenticalThreaded)
{
    Campaign campaign = attackSweep(3);

    CampaignOptions serial;
    CampaignOptions threaded;
    threaded.threads = 3;

    const std::string serialJson =
        Campaign::toJson(campaign.run(serial));
    const std::string threadedJson =
        Campaign::toJson(campaign.run(threaded));
    EXPECT_EQ(serialJson, threadedJson);
}

TEST(CampaignSnapshot, AttackScopedSeedsShareOneMachineConfig)
{
    // Attack-scoped sweep: the sharing bit flips the journal keys.
    Campaign shared = attackSweep(3);
    CampaignOptions warm;
    CampaignOptions cold;
    cold.reuseMachines = false;
    const auto warmKeys = shared.specKeys(warm);
    const auto coldKeys = shared.specKeys(cold);
    ASSERT_EQ(warmKeys.size(), 3u);
    for (std::size_t i = 0; i < warmKeys.size(); ++i) {
        EXPECT_NE(warmKeys[i], coldKeys[i]);
        EXPECT_EQ(coldKeys[i], specKey(shared.specs()[i]));
        EXPECT_EQ(warmKeys[i], specKey(shared.specs()[i], true));
    }

    // All-streams sweep: every run derives a different machine, so
    // nothing shares and both modes key identically.
    RunSpec base;
    base.label = "allstreams";
    base.preset = MachinePreset::TestSmall;
    Campaign distinct;
    distinct.addSeedSweep(base, /*seedBase=*/100, 3);
    EXPECT_EQ(distinct.specKeys(warm), distinct.specKeys(cold));

    // Attack-scoped seeding changes the run, so it must change the
    // base key too (a journaled all-streams result can never satisfy
    // an attack-scoped resume).
    RunSpec scoped = base;
    scoped.seed = 100;
    RunSpec unscoped = scoped;
    scoped.seedScope = SeedScope::AttackOnly;
    EXPECT_NE(specKey(scoped), specKey(unscoped));
}

TEST(CampaignSnapshot, IdenticalSpecsShareEvenWithoutSweep)
{
    RunSpec base;
    base.label = "same";
    base.preset = MachinePreset::TestSmall;
    Campaign campaign;
    campaign.add(base);
    RunSpec second = base;
    second.label = "same-again";  // label is not part of the machine
    campaign.add(second);

    CampaignOptions warm;
    const auto keys = campaign.specKeys(warm);
    EXPECT_EQ(keys[0], specKey(campaign.specs()[0], true));
    EXPECT_EQ(keys[1], specKey(campaign.specs()[1], true));
}

} // namespace
} // namespace pth
