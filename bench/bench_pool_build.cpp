/**
 * @file
 * LLC eviction-pool construction shoot-out: the paper's
 * single-elimination baseline vs the group-testing reduction, serial
 * and multi-threaded, on both the superpage (Liu et al.) and
 * regular-page (Genkin et al.) paths — the dominant cost of
 * paper-scale campaigns.
 *
 * One campaign run per (machine, page mode, algorithm variant); each
 * run builds its own pool and reports conflict tests, line accesses,
 * sampled/extrapolated cycles and a pool fingerprint. The bench then
 * checks the tracked perf contract: the group-testing pool must be
 * byte-identical serial vs multi-threaded, and the regular-page
 * reduction must run >= 5x fewer conflict tests than the baseline at
 * paper scale.
 *
 * Conflict tests and line accesses compare the algorithms exactly;
 * the cycle columns compare two timing models — the baseline runs on
 * the machine (TLB walks and all), the group-testing path on the
 * per-class LLC+DRAM replica (dTLB-hit translation, rest-of-class
 * churn) — so treat cycle speedups as indicative, tests as exact.
 * The gain is the regular-page path's; superpage classes are a few
 * dozen lines and land near 1x by design.
 *
 * Standard bench flags (PTH_THREADS / --threads, --json,
 * --journal/--fresh) plus --tiny: test-small machine and smaller
 * samples, the scale the CI perf gate pins against
 * bench/baselines/pool_build.json.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attack/eviction_pool.hh"
#include "attack/pool_build.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"

namespace
{

using namespace pth;

struct Variant
{
    const char *name;
    PoolBuildAlgorithm algorithm;
    unsigned threads;
};

const Variant kVariants[] = {
    {poolBuildAlgorithmName(PoolBuildAlgorithm::SingleElimination),
     PoolBuildAlgorithm::SingleElimination, 1},
    {poolBuildAlgorithmName(PoolBuildAlgorithm::GroupTesting),
     PoolBuildAlgorithm::GroupTesting, 1},
    {"group-testing-mt4", PoolBuildAlgorithm::GroupTesting, 4},
};
constexpr unsigned kVariantCount = 3;
constexpr const char *kModeNames[] = {"superpage", "regular"};
constexpr std::size_t kMetricCount = 7;

/** Acceptance floor: regular-page group testing vs baseline. */
constexpr double kMinRegularTestRatio = 5.0;

double
metric(const RunResult &run, const char *name)
{
    for (const auto &m : run.metrics)
        if (m.first == name)
            return m.second;
    return -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool tiny = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && !std::strcmp(argv[i], "--tiny"))
            tiny = true;
        else
            args.push_back(argv[i]);
    }
    // --tiny is consumed here, before BenchCli; pass it through so
    // --workers shard subprocesses rebuild the identical campaign.
    std::vector<std::string> passthrough;
    if (tiny)
        passthrough.push_back("--tiny");
    BenchCli cli = BenchCli::parse(
        static_cast<int>(args.size()), args.data(),
        "LLC pool construction: single-elimination vs group-testing"
        " (--tiny for the CI perf-gate scale; --pool-algo and"
        " --pool-threads are ignored here — the algorithm variants"
        " ARE this bench's sweep axis)",
        passthrough);

    std::vector<MachinePreset> presets;
    if (tiny)
        presets.push_back(MachinePreset::TestSmall);
    else
        presets.assign(paperPresets().begin(), paperPresets().end());

    const unsigned superpageClasses = tiny ? 2 : 16;
    const unsigned regularGroups = tiny ? 2 : 4;

    Campaign campaign;
    for (MachinePreset preset : presets) {
        for (unsigned mode = 0; mode < 2; ++mode) {
            for (const Variant &variant : kVariants) {
                RunSpec spec;
                spec.label = machinePresetName(preset) + std::string("/") +
                             kModeNames[mode] + "/" + variant.name;
                spec.preset = preset;
                spec.dramModel = cli.dramModel;
                spec.attack.superpages = mode == 0;
                spec.attack.poolBuild.algorithm = variant.algorithm;
                spec.attack.poolBuild.threads = variant.threads;
                spec.body = [mode, superpageClasses, regularGroups](
                                Machine &machine,
                                const AttackConfig &attack,
                                RunResult &res) {
                    Process &proc =
                        machine.kernel().createProcess(1000);
                    machine.cpu().setProcess(proc);
                    LlcEvictionPool pool(machine, attack);
                    pool.allocateBuffer();
                    PoolBuildReport report =
                        mode == 0
                            ? pool.buildSuperpage(superpageClasses)
                            : pool.buildRegularSampled(1, regularGroups);
                    res.metrics.emplace_back(
                        "conflict_tests",
                        static_cast<double>(report.conflictTests));
                    res.metrics.emplace_back(
                        "line_accesses",
                        static_cast<double>(report.lineAccesses));
                    res.metrics.emplace_back(
                        "sampled_cycles",
                        static_cast<double>(report.sampledCycles));
                    res.metrics.emplace_back(
                        "extrapolated_cycles",
                        static_cast<double>(report.extrapolatedCycles));
                    res.metrics.emplace_back(
                        "build_minutes",
                        machine.seconds(report.extrapolatedCycles) /
                            60.0);
                    res.metrics.emplace_back(
                        "pool_sets",
                        static_cast<double>(pool.sets().size()));
                    // 32-bit slice of the pool digest: metrics travel
                    // as doubles, which hold 53 bits exactly.
                    res.metrics.emplace_back(
                        "pool_fp",
                        static_cast<double>(
                            poolFingerprint(pool.sets()) & 0xffffffff));
                };
                campaign.add(spec);
            }
        }
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf("== LLC eviction-pool construction: conflict tests"
                " per algorithm ==\n");
    Table table({"Run", "Conflict tests", "Test ratio", "Line accesses",
                 "Build minutes", "Cycle speedup", "Pool sets"});
    unsigned contractViolations = 0;
    for (std::size_t g = 0; g + kVariantCount <= results.size();
         g += kVariantCount) {
        const RunResult &base = results[g];
        const bool baseUsable =
            base.ok && !BenchCli::staleMetrics(base, kMetricCount);
        for (std::size_t v = 0; v < kVariantCount; ++v) {
            const RunResult &run = results[g + v];
            if (!run.ok || BenchCli::staleMetrics(run, kMetricCount)) {
                table.addRow({run.label, "-", "-", "-", "-", "-", "-"});
                continue;
            }
            const double tests = metric(run, "conflict_tests");
            const double ratio =
                baseUsable && tests > 0
                    ? metric(base, "conflict_tests") / tests
                    : 0.0;
            const double speedup =
                baseUsable && metric(run, "extrapolated_cycles") > 0
                    ? metric(base, "extrapolated_cycles") /
                          metric(run, "extrapolated_cycles")
                    : 0.0;
            table.addRow(
                {run.label, strfmt("%.0f", tests),
                 ratio > 0 ? strfmt("%.1fx", ratio) : std::string("-"),
                 strfmt("%.0f", metric(run, "line_accesses")),
                 strfmt("%.2f", metric(run, "build_minutes")),
                 speedup > 0 ? strfmt("%.1fx", speedup)
                             : std::string("-"),
                 strfmt("%.0f", metric(run, "pool_sets"))});
        }

        // Contract 1: group-testing pools are byte-identical serial
        // vs multi-threaded.
        const RunResult &serial = results[g + 1];
        const RunResult &threaded = results[g + 2];
        if (serial.ok && threaded.ok &&
            !BenchCli::staleMetrics(serial, kMetricCount) &&
            !BenchCli::staleMetrics(threaded, kMetricCount) &&
            (metric(serial, "pool_fp") != metric(threaded, "pool_fp") ||
             metric(serial, "pool_sets") !=
                 metric(threaded, "pool_sets"))) {
            std::printf("CONTRACT VIOLATION: %s and %s built"
                        " different pools\n",
                        serial.label.c_str(), threaded.label.c_str());
            ++contractViolations;
        }

        // Contract 2: the regular-page reduction does >= 5x fewer
        // conflict tests than single elimination at paper scale.
        const bool regularMode =
            serial.label.find("/regular/") != std::string::npos;
        if (!tiny && regularMode && baseUsable && serial.ok &&
            !BenchCli::staleMetrics(serial, kMetricCount) &&
            metric(serial, "conflict_tests") > 0) {
            const double ratio = metric(base, "conflict_tests") /
                                 metric(serial, "conflict_tests");
            if (ratio < kMinRegularTestRatio) {
                std::printf("CONTRACT VIOLATION: %s conflict-test"
                            " ratio %.1fx < %.0fx\n",
                            serial.label.c_str(), ratio,
                            kMinRegularTestRatio);
                ++contractViolations;
            }
        }
    }
    table.print();
    std::printf("\ncontract: group-testing pools byte-identical"
                " serial vs mt; regular-page reduction >= %.0fx fewer"
                " conflict tests than single elimination\n",
                kMinRegularTestRatio);

    if (!cli.emitJson(results))
        return 1;
    return failures || contractViolations ? 1 : 0;
}
