/**
 * @file
 * Table I: system configurations of the three evaluated machines.
 */

#include <cstdio>

#include "common/table.hh"
#include "cpu/machine_config.hh"

int
main()
{
    using namespace pth;

    std::printf("== Table I: System Configurations ==\n");
    Table table({"Machine", "Architecture", "CPU", "TLB Assoc.",
                 "LLC Assoc. & Size", "DRAM"});
    for (const MachineConfig &m : MachineConfig::paperMachines()) {
        table.addRow(
            {m.name, m.architecture, m.cpuModel,
             strfmt("%u-way L1d, %u-way L2s", m.tlb.l1d.ways,
                    m.tlb.l2s.ways),
             strfmt("%u-way, %llu MiB", m.caches.llc.ways,
                    static_cast<unsigned long long>(
                        m.caches.llc.capacity() >> 20)),
             m.dramModel});
    }
    table.print();
    std::printf("\npaper: T420/X230 4-way TLBs + 12-way 3 MiB LLC;"
                " E6420 16-way 4 MiB LLC; all 8 GiB Samsung DDR3\n");
    return 0;
}
