/**
 * @file
 * Table I: system configurations of the three evaluated machines.
 *
 * Even this config table runs through the campaign runner: one run
 * per preset boots the Machine and records its key parameters as
 * metrics, so a preset that stops constructing fails the bench (and
 * the run is journaled like any other). Standard bench flags:
 * PTH_THREADS / --threads, --json, --journal/--fresh.
 */

#include <cstdio>

#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv, "Table I: system configurations");

    Campaign campaign;
    for (MachinePreset preset : paperPresets()) {
        RunSpec spec;
        spec.label = machinePresetName(preset);
        spec.preset = preset;
        spec.dramModel = cli.dramModel;
        spec.body = [](Machine &machine, const AttackConfig &,
                       RunResult &res) {
            const MachineConfig &m = machine.config();
            res.metrics.emplace_back("tlb_l1d_ways", m.tlb.l1d.ways);
            res.metrics.emplace_back("tlb_l2s_ways", m.tlb.l2s.ways);
            res.metrics.emplace_back("llc_ways", m.caches.llc.ways);
            res.metrics.emplace_back(
                "llc_mib", static_cast<double>(
                               m.caches.llc.capacity() >> 20));
        };
        campaign.add(spec);
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf("== Table I: System Configurations ==\n");
    Table table({"Machine", "Architecture", "CPU", "TLB Assoc.",
                 "LLC Assoc. & Size", "DRAM"});
    for (const RunResult &run : results) {
        if (!run.ok || BenchCli::staleMetrics(run, 4))
            continue;
        // The string-valued columns come straight from the preset's
        // MachineConfig; the campaign metrics carry the numbers.
        const MachineConfig m =
            makeMachineConfig(campaign.specs()[run.index].preset);
        table.addRow(
            {m.name, m.architecture, m.cpuModel,
             strfmt("%u-way L1d, %u-way L2s",
                    static_cast<unsigned>(run.metrics[0].second),
                    static_cast<unsigned>(run.metrics[1].second)),
             strfmt("%u-way, %u MiB",
                    static_cast<unsigned>(run.metrics[2].second),
                    static_cast<unsigned>(run.metrics[3].second)),
             m.dramModel});
    }
    table.print();
    std::printf("\npaper: T420/X230 4-way TLBs + 12-way 3 MiB LLC;"
                " E6420 16-way 4 MiB LLC; all 8 GiB Samsung DDR3\n");

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
