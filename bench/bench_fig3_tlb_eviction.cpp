/**
 * @file
 * Figure 3: TLB miss rate vs eviction-set size (pages), on the three
 * machines. Paper: sets of 12 or more achieve consistently high
 * eviction rates; below 12 the success drops significantly.
 */

#include <cstdio>

#include "attack/spray.hh"
#include "attack/tlb_eviction.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"

int
main()
{
    using namespace pth;

    std::printf("== Figure 3: TLB miss rate (%%) vs eviction-set size ==\n");
    Table table({"Size", "Lenovo T420", "Lenovo X230", "Dell E6420"});

    std::vector<std::vector<double>> rates;
    for (const MachineConfig &config : MachineConfig::paperMachines()) {
        Machine machine(config);
        AttackConfig attack;
        attack.superpages = true;
        attack.sprayBytes = 64ull << 20;
        Process &proc = machine.kernel().createProcess(1000);
        machine.cpu().setProcess(proc);
        SprayManager sprayer(machine, attack);
        sprayer.spray();
        TlbEvictionTool tlb(machine, attack);
        tlb.prepare();
        KernelModule module(machine);

        std::vector<double> machineRates;
        // Average over several targets to smooth per-set noise.
        for (unsigned size = 11; size <= 16; ++size) {
            double total = 0;
            const unsigned targets = 5;
            for (unsigned t = 0; t < targets; ++t) {
                VirtAddr target = sprayer.randomTarget(100 + t);
                auto set = tlb.evictionSetFor(target, size);
                total += tlb.profileMissRate(target, set, 200, module);
            }
            machineRates.push_back(100.0 * total / targets);
        }
        rates.push_back(machineRates);
    }

    for (unsigned i = 0; i < 6; ++i) {
        table.addRow({strfmt("%u", 11 + i), strfmt("%.1f", rates[0][i]),
                      strfmt("%.1f", rates[1][i]),
                      strfmt("%.1f", rates[2][i])});
    }
    table.print();
    std::printf("\npaper: miss rate drops below size 12; 12+ gives"
                " consistently high eviction on all machines\n");
    return 0;
}
