/**
 * @file
 * Figure 3: TLB miss rate vs eviction-set size (pages), on the three
 * machines. Paper: sets of 12 or more achieve consistently high
 * eviction rates; below 12 the success drops significantly.
 *
 * One campaign run per machine (each sprays and prepares its own
 * attacker, then profiles all six set sizes), fanned across host
 * cores. Standard bench flags: PTH_THREADS / --threads, --json,
 * --journal/--fresh (checkpoint/resume).
 */

#include <cstdio>

#include "attack/spray.hh"
#include "attack/tlb_eviction.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"
#include "kernel/kernel_module.hh"

namespace
{

constexpr unsigned kMinSize = 11;
constexpr unsigned kMaxSize = 16;

} // namespace

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv,
        "Figure 3: TLB miss rate vs eviction-set size");

    Campaign campaign;
    for (MachinePreset preset : paperPresets()) {
        RunSpec spec;
        spec.label = machinePresetName(preset);
        spec.preset = preset;
        spec.dramModel = cli.dramModel;
        spec.attack.superpages = true;
        spec.attack.sprayBytes = 64ull << 20;
        spec.body = [](Machine &machine, const AttackConfig &attack,
                       RunResult &res) {
            Process &proc = machine.kernel().createProcess(1000);
            machine.cpu().setProcess(proc);
            SprayManager sprayer(machine, attack);
            sprayer.spray();
            TlbEvictionTool tlb(machine, attack);
            tlb.prepare();
            KernelModule module(machine);

            // Average over several targets to smooth per-set noise.
            for (unsigned size = kMinSize; size <= kMaxSize; ++size) {
                double total = 0;
                const unsigned targets = 5;
                for (unsigned t = 0; t < targets; ++t) {
                    VirtAddr target = sprayer.randomTarget(100 + t);
                    auto set = tlb.evictionSetFor(target, size);
                    total +=
                        tlb.profileMissRate(target, set, 200, module);
                }
                res.metrics.emplace_back(
                    strfmt("miss_rate_pct_size%u", size),
                    100.0 * total / targets);
            }
        };
        campaign.add(spec);
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf(
        "== Figure 3: TLB miss rate (%%) vs eviction-set size ==\n");
    Table table({"Size", "Lenovo T420", "Lenovo X230", "Dell E6420"});
    // A journal from an older body shape can carry a different
    // metric count; render "-" rather than indexing past the end.
    constexpr std::size_t kMetrics = kMaxSize - kMinSize + 1;
    std::vector<char> usable(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        usable[i] = results[i].ok &&
                    !BenchCli::staleMetrics(results[i], kMetrics);
    for (unsigned size = kMinSize; size <= kMaxSize; ++size) {
        std::vector<std::string> row{strfmt("%u", size)};
        for (std::size_t i = 0; i < results.size(); ++i)
            row.push_back(
                usable[i]
                    ? strfmt("%.1f",
                             results[i]
                                 .metrics[size - kMinSize]
                                 .second)
                    : std::string("-"));
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\npaper: miss rate drops below size 12; 12+ gives"
                " consistently high eviction on all machines\n");

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
