/**
 * @file
 * Ablation of PThammer's design choices (DESIGN.md §5): what happens
 * to the implicit-access rate and iteration cost when each ingredient
 * of the shortest-walk path is removed.
 *
 *  - no TLB eviction  : the translation stays cached; no walks at all.
 *  - no LLC eviction  : walks happen but the L1PTE is cache-served.
 *  - undersized LLC set: partial eviction, degraded DRAM rate.
 *  - full path        : TLB miss + PDE-cache hit + L1PTE from DRAM.
 *
 * This is the paper's Section III-B argument, quantified. Each
 * variant is an independent campaign run with a custom measurement
 * body (its own machine, prepared from the same seed), so the five
 * variants fan out across cores and the table is reproducible
 * bit-for-bit. Standard bench flags: PTH_THREADS / --threads,
 * --json, --journal/--fresh (checkpoint/resume).
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"

namespace
{

using namespace pth;

/** One hammer iteration with configurable eviction stages. */
Cycles
iterationVariant(Machine &m, const HammerPair &pair, bool evictTlb,
                 bool evictLlc, unsigned llcLines, unsigned &dramFetches)
{
    Cycles start = m.clock().now();
    std::vector<VirtAddr> stream;
    if (evictTlb) {
        stream.insert(stream.end(), pair.tlbSet1.begin(),
                      pair.tlbSet1.end());
        stream.insert(stream.end(), pair.tlbSet2.begin(),
                      pair.tlbSet2.end());
    }
    if (evictLlc) {
        for (unsigned i = 0; i < llcLines && i < pair.llcSet1.size(); ++i)
            stream.push_back(pair.llcSet1[i]);
        for (unsigned i = 0; i < llcLines && i < pair.llcSet2.size(); ++i)
            stream.push_back(pair.llcSet2[i]);
    }
    if (!stream.empty())
        m.cpu().accessBatch(stream);
    AccessOutcome a1 = m.cpu().access(pair.va1);
    AccessOutcome a2 = m.cpu().access(pair.va2);
    dramFetches += a1.l1pteFromDram + a2.l1pteFromDram;
    return m.clock().now() - start;
}

/** Variant descriptor; llcFraction scales the discovered set size. */
struct Variant
{
    const char *name;
    bool tlb;
    bool llc;
    double llcFraction;
};

/** Measure one variant on a freshly prepared machine. */
void
measureVariant(const Variant &variant, Machine &machine,
               const AttackConfig &attack, RunResult &res)
{
    PThammerAttack pthammer(machine, attack);
    pthammer.prepare();
    auto pair = pthammer.pairs().next();
    if (!pair)
        throw std::runtime_error("no hammer pair found");
    unsigned fullSet = static_cast<unsigned>(pair->llcSet1.size());
    unsigned lines = variant.llc
                         ? static_cast<unsigned>(fullSet *
                                                 variant.llcFraction)
                         : 0;

    // Settle, then measure.
    unsigned dramFetches = 0;
    for (int i = 0; i < 16; ++i)
        iterationVariant(machine, *pair, variant.tlb, variant.llc,
                         lines, dramFetches);
    dramFetches = 0;
    Cycles total = 0;
    const unsigned rounds = 64;
    for (unsigned i = 0; i < rounds; ++i)
        total += iterationVariant(machine, *pair, variant.tlb,
                                  variant.llc, lines, dramFetches);
    double cyclesPerIter = static_cast<double>(total) / rounds;
    double rate = dramFetches / (2.0 * rounds);
    double actsPerWindow =
        rate *
        static_cast<double>(
            machine.config().disturbance.refreshWindowCycles) /
        cyclesPerIter;

    res.attempts = rounds;
    res.metrics.emplace_back("cycles_per_iteration", cyclesPerIter);
    res.metrics.emplace_back("l1pte_dram_rate", rate);
    res.metrics.emplace_back("activations_per_window", actsPerWindow);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli = BenchCli::parse(
        argc, argv,
        "Section III-B ablation: eviction stages vs DRAM access");

    std::printf("== Ablation: which eviction stage buys the implicit"
                " DRAM access (Lenovo T420) ==\n");

    const Variant variants[] = {
        {"full PThammer path", true, true, 1.0},
        {"no TLB eviction", false, true, 1.0},
        {"no LLC eviction", true, false, 0.0},
        {"LLC set undersized (1/2)", true, true, 0.5},
        {"no eviction at all", false, false, 0.0},
    };

    Campaign campaign;
    for (const Variant &variant : variants) {
        RunSpec spec;
        spec.label = variant.name;
        spec.preset = MachinePreset::LenovoT420;
        spec.dramModel = cli.dramModel;
        spec.attack.superpages = true;
        spec.attack.poolBuild = cli.pool;
        spec.attack.sprayBytes = 256ull << 20;
        spec.attack.superpageSampleClasses = 4;
        spec.body = [variant](Machine &machine,
                              const AttackConfig &attack,
                              RunResult &res) {
            measureVariant(variant, machine, attack, res);
        };
        campaign.add(spec);
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    Table table({"Variant", "Cycles/iter", "L1PTE-from-DRAM rate",
                 "Aggressor activations / 64 ms"});
    for (const RunResult &run : results) {
        if (!run.ok || BenchCli::staleMetrics(run, 3))
            continue;
        table.addRow({run.label,
                      strfmt("%.0f", run.metrics[0].second),
                      strfmt("%.2f", run.metrics[1].second),
                      strfmt("%.0f k", run.metrics[2].second / 1000.0)});
    }
    table.print();

    MachineConfig reference = MachineConfig::lenovoT420();
    std::printf("\nthreshold for flips: >= %llu k activations per"
                " window on the weakest cells (double-sided sums both"
                " aggressors)\n",
                static_cast<unsigned long long>(
                    reference.disturbance.thresholdMin / 2000));
    std::printf("only the full path sustains DRAM-rate hammering;"
                " removing either eviction stage starves it —"
                " Section III-B's requirement, quantified\n");

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
