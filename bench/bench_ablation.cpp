/**
 * @file
 * Ablation of PThammer's design choices (DESIGN.md §5): what happens
 * to the implicit-access rate and iteration cost when each ingredient
 * of the shortest-walk path is removed.
 *
 *  - no TLB eviction  : the translation stays cached; no walks at all.
 *  - no LLC eviction  : walks happen but the L1PTE is cache-served.
 *  - undersized LLC set: partial eviction, degraded DRAM rate.
 *  - full path        : TLB miss + PDE-cache hit + L1PTE from DRAM.
 *
 * This is the paper's Section III-B argument, quantified.
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "common/table.hh"
#include "cpu/machine.hh"

namespace
{

using namespace pth;

/** One hammer iteration with configurable eviction stages. */
Cycles
iterationVariant(Machine &m, const HammerPair &pair, bool evictTlb,
                 bool evictLlc, unsigned llcLines, unsigned &dramFetches)
{
    Cycles start = m.clock().now();
    std::vector<VirtAddr> stream;
    if (evictTlb) {
        stream.insert(stream.end(), pair.tlbSet1.begin(),
                      pair.tlbSet1.end());
        stream.insert(stream.end(), pair.tlbSet2.begin(),
                      pair.tlbSet2.end());
    }
    if (evictLlc) {
        for (unsigned i = 0; i < llcLines && i < pair.llcSet1.size(); ++i)
            stream.push_back(pair.llcSet1[i]);
        for (unsigned i = 0; i < llcLines && i < pair.llcSet2.size(); ++i)
            stream.push_back(pair.llcSet2[i]);
    }
    if (!stream.empty())
        m.cpu().accessBatch(stream);
    AccessOutcome a1 = m.cpu().access(pair.va1);
    AccessOutcome a2 = m.cpu().access(pair.va2);
    dramFetches += a1.l1pteFromDram + a2.l1pteFromDram;
    return m.clock().now() - start;
}

} // namespace

int
main()
{
    using namespace pth;

    std::printf("== Ablation: which eviction stage buys the implicit"
                " DRAM access (Lenovo T420) ==\n");

    Machine machine(MachineConfig::lenovoT420());
    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 256ull << 20;
    attack.superpageSampleClasses = 4;
    PThammerAttack pthammer(machine, attack);
    pthammer.prepare();
    auto pair = pthammer.pairs().next();
    if (!pair) {
        std::printf("no pair\n");
        return 1;
    }
    unsigned fullSet =
        static_cast<unsigned>(pair->llcSet1.size());

    struct Variant
    {
        const char *name;
        bool tlb;
        bool llc;
        unsigned lines;
    };
    const Variant variants[] = {
        {"full PThammer path", true, true, fullSet},
        {"no TLB eviction", false, true, fullSet},
        {"no LLC eviction", true, false, 0},
        {"LLC set undersized (1/2)", true, true, fullSet / 2},
        {"no eviction at all", false, false, 0},
    };

    Table table({"Variant", "Cycles/iter", "L1PTE-from-DRAM rate",
                 "Aggressor activations / 64 ms"});
    for (const Variant &v : variants) {
        // Settle, then measure.
        unsigned dramFetches = 0;
        for (int i = 0; i < 16; ++i)
            iterationVariant(machine, *pair, v.tlb, v.llc, v.lines,
                             dramFetches);
        dramFetches = 0;
        Cycles total = 0;
        const unsigned rounds = 64;
        for (unsigned i = 0; i < rounds; ++i)
            total += iterationVariant(machine, *pair, v.tlb, v.llc,
                                      v.lines, dramFetches);
        double cyclesPerIter = static_cast<double>(total) / rounds;
        double rate = dramFetches / (2.0 * rounds);
        double actsPerWindow =
            rate *
            static_cast<double>(
                machine.config().disturbance.refreshWindowCycles) /
            cyclesPerIter;
        table.addRow({v.name, strfmt("%.0f", cyclesPerIter),
                      strfmt("%.2f", rate),
                      strfmt("%.0f k", actsPerWindow / 1000.0)});
    }
    table.print();
    std::printf("\nthreshold for flips: >= %llu k activations per"
                " window on the weakest cells (double-sided sums both"
                " aggressors)\n",
                static_cast<unsigned long long>(
                    machine.config().disturbance.thresholdMin / 2000));
    std::printf("only the full path sustains DRAM-rate hammering;"
                " removing either eviction stage starves it —"
                " Section III-B's requirement, quantified\n");
    return 0;
}
