/**
 * @file
 * Figure 4: LLC miss rate vs eviction-set size (memory lines), on the
 * three machines. Paper: above the associativity the miss rate is
 * consistently >94-95 %; it drops when the set size reaches the
 * associativity and falls sharply below it.
 *
 * One campaign run per machine (each builds its own eviction pool,
 * then profiles all 22 set sizes), fanned across host cores.
 * Standard bench flags: PTH_THREADS / --threads, --json,
 * --journal/--fresh (checkpoint/resume).
 */

#include <cstdio>

#include "attack/eviction_pool.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"

namespace
{

constexpr unsigned kMinSize = 11;
constexpr unsigned kMaxSize = 32;

} // namespace

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv,
        "Figure 4: LLC miss rate vs eviction-set size");

    Campaign campaign;
    for (MachinePreset preset : paperPresets()) {
        RunSpec spec;
        spec.label = machinePresetName(preset);
        spec.preset = preset;
        spec.dramModel = cli.dramModel;
        spec.attack.superpages = true;
        spec.attack.poolBuild = cli.pool;
        spec.body = [](Machine &machine, const AttackConfig &attack,
                       RunResult &res) {
            Process &proc = machine.kernel().createProcess(1000);
            machine.cpu().setProcess(proc);
            LlcEvictionPool pool(machine, attack);
            pool.allocateBuffer();
            pool.buildSuperpage(/*sampleClasses=*/4);

            for (unsigned size = kMinSize; size <= kMaxSize; ++size) {
                double total = 0;
                const unsigned targets = 4;
                for (unsigned t = 0; t < targets; ++t) {
                    const EvictionSet &set = pool.sets()[t];
                    VirtAddr target = set.lines.back();
                    total += pool.profileEvictionRate(target, size, 60);
                }
                res.metrics.emplace_back(
                    strfmt("miss_rate_pct_size%u", size),
                    100.0 * total / targets);
            }
        };
        campaign.add(spec);
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf(
        "== Figure 4: LLC miss rate (%%) vs eviction-set size ==\n");
    Table table({"Size", "Lenovo T420 (12-way)", "Lenovo X230 (12-way)",
                 "Dell E6420 (16-way)"});
    // A journal from an older body shape can carry a different
    // metric count; render "-" rather than indexing past the end.
    constexpr std::size_t kMetrics = kMaxSize - kMinSize + 1;
    std::vector<char> usable(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        usable[i] = results[i].ok &&
                    !BenchCli::staleMetrics(results[i], kMetrics);
    for (unsigned size = kMinSize; size <= kMaxSize; ++size) {
        std::vector<std::string> row{strfmt("%u", size)};
        for (std::size_t i = 0; i < results.size(); ++i)
            row.push_back(
                usable[i]
                    ? strfmt("%.1f",
                             results[i]
                                 .metrics[size - kMinSize]
                                 .second)
                    : std::string("-"));
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\npaper: rate >94%% once the set exceeds the"
                " associativity (12/12/16); drops at/below it."
                " chosen working sizes: 13 / 13 / 17\n");

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
