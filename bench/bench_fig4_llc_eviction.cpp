/**
 * @file
 * Figure 4: LLC miss rate vs eviction-set size (memory lines), on the
 * three machines. Paper: above the associativity the miss rate is
 * consistently >94-95 %; it drops when the set size reaches the
 * associativity and falls sharply below it.
 */

#include <cstdio>

#include "attack/eviction_pool.hh"
#include "common/table.hh"
#include "cpu/machine.hh"

int
main()
{
    using namespace pth;

    std::printf(
        "== Figure 4: LLC miss rate (%%) vs eviction-set size ==\n");
    Table table({"Size", "Lenovo T420 (12-way)", "Lenovo X230 (12-way)",
                 "Dell E6420 (16-way)"});

    std::vector<std::vector<double>> rates;
    for (const MachineConfig &config : MachineConfig::paperMachines()) {
        Machine machine(config);
        AttackConfig attack;
        attack.superpages = true;
        Process &proc = machine.kernel().createProcess(1000);
        machine.cpu().setProcess(proc);
        LlcEvictionPool pool(machine, attack);
        pool.allocateBuffer();
        pool.buildSuperpage(/*sampleClasses=*/4);

        std::vector<double> machineRates;
        for (unsigned size = 11; size <= 32; ++size) {
            double total = 0;
            const unsigned targets = 4;
            for (unsigned t = 0; t < targets; ++t) {
                const EvictionSet &set = pool.sets()[t];
                VirtAddr target = set.lines.back();
                total += pool.profileEvictionRate(target, size, 60);
            }
            machineRates.push_back(100.0 * total / targets);
        }
        rates.push_back(machineRates);
    }

    for (unsigned i = 0; i < rates[0].size(); ++i) {
        table.addRow({strfmt("%u", 11 + i), strfmt("%.1f", rates[0][i]),
                      strfmt("%.1f", rates[1][i]),
                      strfmt("%.1f", rates[2][i])});
    }
    table.print();
    std::printf("\npaper: rate >94%% once the set exceeds the"
                " associativity (12/12/16); drops at/below it."
                " chosen working sizes: 13 / 13 / 17\n");
    return 0;
}
