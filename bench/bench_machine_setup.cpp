/**
 * @file
 * Machine setup cost: cold construction vs snapshot fork.
 *
 * Every campaign run used to pay full Machine construction — buddy
 * carving, boot-noise fragmentation, device wiring — even when the
 * sweep only varied the attacker seed. The campaign now builds one
 * warm machine per shared configuration and forks it per run
 * (MachineSnapshot); this bench measures both sides of that trade and
 * pins the contracts:
 *
 *  - byte identity: the campaign report of a warm-forked sweep must
 *    equal the cold-constructed report exactly (checked in-process by
 *    rerunning with reuseMachines off, and in CI by diffing --json
 *    output against a --cold-machines run);
 *  - setup speedup: at paper scale, forking must be >= 5x cheaper in
 *    host time than cold construction.
 *
 * The campaign portion (one attack-scoped seed sweep per machine) is
 * fully deterministic and is what the CI perf gate pins against
 * bench/baselines/machine_setup.json at --tiny scale. Host-time
 * numbers are printed but never journaled — they vary by host.
 *
 * Standard bench flags (PTH_THREADS / --threads, --json,
 * --journal/--fresh, --cold-machines) plus --tiny.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"

namespace
{

using namespace pth;

constexpr std::size_t kMetricCount = 4;

/** Acceptance floor: cold construction / fork host time, paper scale. */
constexpr double kMinSetupSpeedup = 5.0;

constexpr VirtAddr kVa = 0x2400'0000;

/**
 * Deterministic post-setup workload: enough translation, cache and
 * DRAM traffic that any state the fork failed to carry over shows up
 * in the fingerprint and counters.
 */
void
driveBody(Machine &machine, const AttackConfig &attack, RunResult &res)
{
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    machine.kernel().mmapAnon(proc, kVa, 64 * kPageBytes);
    Rng rng(attack.seed);
    std::uint64_t latency = 0;
    for (int i = 0; i < 400; ++i) {
        VirtAddr va = kVa + rng.below(64) * kPageBytes +
                      rng.below(8) * 64;
        latency += machine.cpu().access(va).latency;
        if (i % 23 == 0)
            machine.cpu().clflush(va);
    }
    res.metrics.emplace_back("latency_cycles",
                             static_cast<double>(latency));
    res.metrics.emplace_back(
        "llc_misses",
        static_cast<double>(machine.caches().llcMisses()));
    res.metrics.emplace_back(
        "page_walks",
        static_cast<double>(machine.mmu().counters().pageWalks));
    // 32-bit slice of the full machine-state digest: metrics travel
    // as doubles, which hold 53 bits exactly.
    res.metrics.emplace_back(
        "state_fp", static_cast<double>(machine.stateFingerprint() &
                                        0xffffffff));
}

double
hostMs(std::chrono::steady_clock::time_point from,
       std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool tiny = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && !std::strcmp(argv[i], "--tiny"))
            tiny = true;
        else
            args.push_back(argv[i]);
    }
    // --tiny is consumed here, before BenchCli; pass it through so
    // --workers shard subprocesses rebuild the identical campaign.
    std::vector<std::string> passthrough;
    if (tiny)
        passthrough.push_back("--tiny");
    BenchCli cli = BenchCli::parse(
        static_cast<int>(args.size()), args.data(),
        "machine setup cost: cold construction vs snapshot fork"
        " (--tiny for the CI perf-gate scale)",
        passthrough);

    std::vector<MachinePreset> presets;
    if (tiny)
        presets.push_back(MachinePreset::TestSmall);
    else
        presets.assign(paperPresets().begin(), paperPresets().end());

    const unsigned seeds = 3;
    Campaign campaign;
    for (MachinePreset preset : presets) {
        RunSpec base;
        base.label = machinePresetName(preset);
        base.preset = preset;
        base.dramModel = cli.dramModel;
        base.attack.poolBuild = cli.pool;
        base.body = driveBody;
        campaign.addAttackSeedSweep(base, /*seedBase=*/100, seeds);
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);
    unsigned contractViolations = 0;

    std::printf("== campaign sweep (%u attack seeds per machine,"
                " %s) ==\n",
                seeds,
                cli.options.reuseMachines ? "warm-forked machines"
                                          : "cold machines");
    Table table({"Run", "Latency cycles", "LLC misses", "Page walks",
                 "State fp"});
    for (const RunResult &run : results) {
        if (!run.ok || BenchCli::staleMetrics(run, kMetricCount)) {
            table.addRow({run.label, "-", "-", "-", "-"});
            continue;
        }
        table.addRow({run.label,
                      strfmt("%.0f", run.metrics[0].second),
                      strfmt("%.0f", run.metrics[1].second),
                      strfmt("%.0f", run.metrics[2].second),
                      strfmt("%08llx",
                             static_cast<unsigned long long>(
                                 run.metrics[3].second))});
    }
    table.print();

    // Contract 1: the warm-forked report is byte-identical to a
    // cold-constructed one. Checked in-process when this invocation
    // both executed the runs itself and ran them warm.
    if (cli.options.reuseMachines && cli.options.shardCount <= 1 &&
        cli.workers <= 1 && cli.options.journalPath.empty()) {
        CampaignOptions warm;
        warm.threads = cli.options.threads;
        CampaignOptions cold = warm;
        cold.reuseMachines = false;
        const std::string warmJson =
            Campaign::toJson(campaign.run(warm));
        const std::string coldJson =
            Campaign::toJson(campaign.run(cold));
        if (warmJson != coldJson) {
            std::printf("CONTRACT VIOLATION: warm-forked report"
                        " differs from cold-constructed report\n");
            ++contractViolations;
        }
    }

    // Contract 2: forking beats cold construction by >= 5x in host
    // time at paper scale. Printed at every scale, gated only at
    // paper scale — test-small machines are cheap enough that the
    // fixed cost of a fork can dominate.
    std::printf("\n== setup cost, host time (never journaled) ==\n");
    Table setup({"Machine", "Cold ms/machine", "Fork ms/machine",
                 "Speedup"});
    const unsigned reps = 3;
    for (MachinePreset preset : presets) {
        const MachineConfig config = makeMachineConfig(preset);

        auto t0 = std::chrono::steady_clock::now();
        for (unsigned r = 0; r < reps; ++r)
            Machine cold(config);
        auto t1 = std::chrono::steady_clock::now();
        const double coldMs = hostMs(t0, t1) / reps;

        Machine warm(config);
        MachineSnapshot snap = warm.snapshot();
        auto t2 = std::chrono::steady_clock::now();
        for (unsigned r = 0; r < reps; ++r)
            std::unique_ptr<Machine> forked = snap.instantiate();
        auto t3 = std::chrono::steady_clock::now();
        const double forkMs = hostMs(t2, t3) / reps;

        const double speedup = forkMs > 0 ? coldMs / forkMs : 0.0;
        setup.addRow({machinePresetName(preset),
                      strfmt("%.2f", coldMs), strfmt("%.2f", forkMs),
                      strfmt("%.1fx", speedup)});
        if (!tiny && speedup < kMinSetupSpeedup) {
            std::printf("CONTRACT VIOLATION: %s setup speedup %.1fx"
                        " < %.0fx\n",
                        machinePresetName(preset).c_str(), speedup,
                        kMinSetupSpeedup);
            ++contractViolations;
        }
    }
    setup.print();
    std::printf("\ncontract: warm-forked campaign report"
                " byte-identical to cold; fork >= %.0fx cheaper than"
                " cold construction at paper scale\n",
                kMinSetupSpeedup);

    if (!cli.emitJson(results))
        return 1;
    return failures || contractViolations ? 1 : 0;
}
