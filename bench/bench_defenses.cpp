/**
 * @file
 * Section IV-G: PThammer versus the software-only defenses.
 *
 *  - none   : baseline privilege escalation (Section IV-F).
 *  - CATT   : kernel/user DRAM partitioning — PThammer hammers the
 *             protected kernel zone via the page-table walker; the
 *             paper escalates within three bit flips (after buddy
 *             exhaustion concentrates L1PTs).
 *  - RIP-RH : per-user partitioning, kernel unprotected — trivially
 *             bypassed.
 *  - CTA    : true-cell L1PT region at the top of memory — the PT
 *             takeover is blocked, but spraying struct cred and
 *             flipping into a cred page gives root (paper: 7 flips).
 *  - ZebRAM : guard rows between all data rows — the one defense the
 *             paper concedes PThammer does not overcome.
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "common/table.hh"
#include "cpu/machine.hh"

int
main()
{
    using namespace pth;

    std::printf("== Section IV-G: PThammer vs software-only"
                " defenses (Lenovo T420) ==\n");
    Table table({"Defense", "Flips observed", "Escalated", "Via",
                 "Flips used", "Paper"});

    struct Row
    {
        DefenseKind kind;
        const char *paper;
    };
    const Row rows[] = {
        {DefenseKind::None, "escalation (IV-F)"},
        {DefenseKind::Catt, "escalation within 3 flips"},
        {DefenseKind::RipRh, "trivially bypassed"},
        {DefenseKind::Cta, "root after 7 flips (cred spray)"},
        {DefenseKind::ZebRam, "not overcome (paper limitation)"},
    };

    for (const Row &row : rows) {
        MachineConfig config = MachineConfig::lenovoT420();
        config.defense = row.kind;
        // Denser weak cells keep the host-side bench fast while
        // preserving who-beats-whom; see EXPERIMENTS.md.
        config.disturbance.weakRowProbability = 0.3;
        if (row.kind == DefenseKind::Cta) {
            // Evaluate CTA on a true-cell-dominant module (the case it
            // is designed for): screening then keeps the PT zone
            // contiguous, and its monotonic-pointer defense is fully
            // in force — yet the cred spray still wins.
            config.disturbance.trueCellFraction = 1.0;
        }
        Machine machine(config);

        AttackConfig attack;
        attack.sprayBytes = 1ull << 30;
        // Under RIP-RH the kernel fallback lands inside the attacker's
        // own 96 MiB partition; size the spray to fit (density in the
        // partition is what drives the exploit).
        if (row.kind == DefenseKind::RipRh)
            attack.sprayBytes = 48ull << 20;
        attack.maxAttempts = 150;
        attack.hammerBudgetSeconds = 36000;
        if (row.kind == DefenseKind::ZebRam) {
            attack.superpages = false;  // no contiguous superpages
            attack.regularSampleClasses = 1;
            attack.regularSampleGroups = 1;
            attack.maxAttempts = 40;
        } else {
            attack.superpages = true;
        }
        // Exhaust the kernel zone completely so page tables spill
        // into user memory (the CATTmew fallback; Section IV-G1).
        if (row.kind == DefenseKind::Catt ||
            row.kind == DefenseKind::RipRh)
            attack.exhaustKernelFraction = 1.0;
        if (row.kind == DefenseKind::Cta)
            attack.credSprayProcesses = 32000;

        PThammerAttack pthammer(machine, attack);
        AttackReport r = pthammer.run();
        table.addRow({defenseKindName(row.kind),
                      strfmt("%u", r.flipsObserved),
                      r.escalated ? "YES" : "no", r.exploitPath,
                      r.escalated ? strfmt("%u", r.flipsUntilEscalation)
                                  : "-",
                      row.paper});
    }
    table.print();
    return 0;
}
