/**
 * @file
 * Section IV-G: PThammer versus the software-only defenses.
 *
 *  - none   : baseline privilege escalation (Section IV-F).
 *  - CATT   : kernel/user DRAM partitioning — PThammer hammers the
 *             protected kernel zone via the page-table walker; the
 *             paper escalates within three bit flips (after buddy
 *             exhaustion concentrates L1PTs).
 *  - RIP-RH : per-user partitioning, kernel unprotected — trivially
 *             bypassed.
 *  - CTA    : true-cell L1PT region at the top of memory — the PT
 *             takeover is blocked, but spraying struct cred and
 *             flipping into a cred page gives root (paper: 7 flips).
 *  - ZebRAM : guard rows between all data rows — the one defense the
 *             paper concedes PThammer does not overcome.
 *
 * The five defense scenarios run as one campaign across host cores.
 * Standard bench flags: PTH_THREADS / --threads, --json,
 * --journal/--fresh (checkpoint/resume).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/bench_cli.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv,
        "Section IV-G: PThammer vs software-only defenses");

    struct Scenario
    {
        DefenseKind kind;
        const char *paper;
    };
    const Scenario scenarios[] = {
        {DefenseKind::None, "escalation (IV-F)"},
        {DefenseKind::Catt, "escalation within 3 flips"},
        {DefenseKind::RipRh, "trivially bypassed"},
        {DefenseKind::Cta, "root after 7 flips (cred spray)"},
        {DefenseKind::ZebRam, "not overcome (paper limitation)"},
    };

    Campaign campaign;
    for (const Scenario &scenario : scenarios) {
        RunSpec spec;
        spec.label = defenseKindName(scenario.kind);
        spec.preset = MachinePreset::LenovoT420;
        spec.dramModel = cli.dramModel;
        spec.defense = scenario.kind;
        spec.strategy = HammerStrategy::PThammer;
        spec.attack.poolBuild = cli.pool;
        const DefenseKind kind = scenario.kind;
        spec.tweakMachine = [kind](MachineConfig &config) {
            // Denser weak cells keep the host-side bench fast while
            // preserving who-beats-whom; see EXPERIMENTS.md.
            config.disturbance.weakRowProbability = 0.3;
            if (kind == DefenseKind::Cta) {
                // Evaluate CTA on a true-cell-dominant module (the
                // case it is designed for): screening then keeps the
                // PT zone contiguous, and its monotonic-pointer
                // defense is fully in force — yet the cred spray
                // still wins.
                config.disturbance.trueCellFraction = 1.0;
            }
        };

        AttackConfig &attack = spec.attack;
        attack.sprayBytes = 1ull << 30;
        // Under RIP-RH the kernel fallback lands inside the attacker's
        // own 96 MiB partition; size the spray to fit (density in the
        // partition is what drives the exploit).
        if (kind == DefenseKind::RipRh)
            attack.sprayBytes = 48ull << 20;
        attack.maxAttempts = 150;
        attack.hammerBudgetSeconds = 36000;
        if (kind == DefenseKind::ZebRam) {
            attack.superpages = false;  // no contiguous superpages
            attack.regularSampleClasses = 1;
            attack.regularSampleGroups = 1;
            attack.maxAttempts = 40;
        } else {
            attack.superpages = true;
        }
        // Exhaust the kernel zone completely so page tables spill
        // into user memory (the CATTmew fallback; Section IV-G1).
        if (kind == DefenseKind::Catt || kind == DefenseKind::RipRh)
            attack.exhaustKernelFraction = 1.0;
        if (kind == DefenseKind::Cta)
            attack.credSprayProcesses = 32000;

        campaign.add(spec);
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf("== Section IV-G: PThammer vs software-only"
                " defenses (Lenovo T420) ==\n");
    Table table({"Defense", "Flips observed", "Escalated", "Via",
                 "Flips used", "Paper"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &run = results[i];
        if (!run.ok)
            continue;
        table.addRow(
            {run.defense,
             strfmt("%llu", static_cast<unsigned long long>(run.flips)),
             run.escalated ? "YES" : "no", run.exploitPath,
             run.escalated ? strfmt("%u", run.flipsUntilEscalation)
                           : "-",
             scenarios[i].paper});
    }
    table.print();

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
