/**
 * @file
 * Section IV-C: false-positive rate of Algorithm 2's LLC eviction-set
 * selection, measured against the evaluation-only kernel module's
 * ground truth (the paper reports no more than 6 %, and ~1 us TLB /
 * ~290 ms LLC selection costs).
 */

#include <cstdio>

#include "attack/eviction_selection.hh"
#include "attack/spray.hh"
#include "attack/tlb_eviction.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"

int
main()
{
    using namespace pth;

    std::printf("== Section IV-C: eviction-set selection accuracy ==\n");
    Table table({"Machine", "Page size", "Targets", "False positives",
                 "FP rate", "Mean selection time"});

    for (const MachineConfig &config : MachineConfig::paperMachines()) {
        for (bool superpages : {true, false}) {
            Machine machine(config);
            AttackConfig attack;
            attack.superpages = superpages;
            attack.sprayBytes = 256ull << 20;
            attack.regularSampleClasses = 1;
            attack.regularSampleGroups = 2;
            Process &proc = machine.kernel().createProcess(1000);
            machine.cpu().setProcess(proc);
            SprayManager sprayer(machine, attack);
            sprayer.spray();
            TlbEvictionTool tlb(machine, attack);
            tlb.prepare();
            LlcEvictionPool pool(machine, attack);
            pool.allocateBuffer();
            if (superpages)
                pool.buildSuperpage(2);
            else
                pool.buildRegularSampled(1, 1);
            EvictionSetSelector selector(machine, attack, pool, tlb);
            KernelModule module(machine);

            const unsigned targets = 24;
            unsigned falsePositives = 0;
            double totalMs = 0;
            for (unsigned i = 0; i < targets; ++i) {
                VirtAddr target = sprayer.randomTarget(3000 + i);
                SetSelection sel = selector.select(target);
                totalMs += machine.seconds(sel.elapsed) * 1e3;
                auto truth = module.l1pteLlcSet(proc, target);
                if (!sel.set || !truth)
                    continue;
                auto tr = proc.pageTables()->translate(
                    sel.set->lines.front());
                PhysAddr pa = (tr->frame << kPageShift) |
                              (sel.set->lines.front() & (kPageBytes - 1));
                if (machine.caches().llc().globalSet(pa) != *truth)
                    ++falsePositives;
            }
            table.addRow({config.name,
                          superpages ? "superpage" : "regular",
                          strfmt("%u", targets),
                          strfmt("%u", falsePositives),
                          strfmt("%.1f%%",
                                 100.0 * falsePositives / targets),
                          strfmt("%.0f ms", totalMs / targets)});
        }
    }
    table.print();
    std::printf("\npaper: <=6%% false positives in every setting;"
                " ~1 us TLB selection, ~290 ms LLC selection\n");
    return 0;
}
