/**
 * @file
 * Section IV-C: false-positive rate of Algorithm 2's LLC eviction-set
 * selection, measured against the evaluation-only kernel module's
 * ground truth (the paper reports no more than 6 %, and ~1 us TLB /
 * ~290 ms LLC selection costs).
 *
 * The 3 machines x 2 page sizes form one six-run campaign fanned
 * across host cores. Standard bench flags: PTH_THREADS / --threads,
 * --json, --journal/--fresh (checkpoint/resume).
 */

#include <cstdio>

#include "attack/eviction_selection.hh"
#include "attack/spray.hh"
#include "attack/tlb_eviction.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"
#include "kernel/kernel_module.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv,
        "Section IV-C: eviction-set selection accuracy");

    Campaign campaign;
    for (MachinePreset preset : paperPresets()) {
        for (bool superpages : {true, false}) {
            RunSpec spec;
            spec.label = machinePresetName(preset) +
                         (superpages ? "/superpage" : "/regular");
            spec.preset = preset;
            spec.dramModel = cli.dramModel;
            spec.attack.superpages = superpages;
            spec.attack.poolBuild = cli.pool;
            spec.attack.sprayBytes = 256ull << 20;
            spec.attack.regularSampleClasses = 1;
            spec.attack.regularSampleGroups = 2;
            spec.body = [superpages](Machine &machine,
                                     const AttackConfig &attack,
                                     RunResult &res) {
                Process &proc =
                    machine.kernel().createProcess(1000);
                machine.cpu().setProcess(proc);
                SprayManager sprayer(machine, attack);
                sprayer.spray();
                TlbEvictionTool tlb(machine, attack);
                tlb.prepare();
                LlcEvictionPool pool(machine, attack);
                pool.allocateBuffer();
                if (superpages)
                    pool.buildSuperpage(2);
                else
                    pool.buildRegularSampled(1, 1);
                EvictionSetSelector selector(machine, attack, pool,
                                             tlb);
                KernelModule module(machine);

                const unsigned targets = 24;
                unsigned falsePositives = 0;
                double totalMs = 0;
                for (unsigned i = 0; i < targets; ++i) {
                    VirtAddr target =
                        sprayer.randomTarget(3000 + i);
                    SetSelection sel = selector.select(target);
                    totalMs += machine.seconds(sel.elapsed) * 1e3;
                    auto truth = module.l1pteLlcSet(proc, target);
                    if (!sel.set || !truth)
                        continue;
                    auto tr = proc.pageTables()->translate(
                        sel.set->lines.front());
                    PhysAddr pa =
                        (tr->frame << kPageShift) |
                        (sel.set->lines.front() & (kPageBytes - 1));
                    if (machine.caches().llc().globalSet(pa) != *truth)
                        ++falsePositives;
                }
                res.attempts = targets;
                res.metrics.emplace_back("targets", targets);
                res.metrics.emplace_back("false_positives",
                                         falsePositives);
                res.metrics.emplace_back(
                    "fp_rate_pct",
                    100.0 * falsePositives / targets);
                res.metrics.emplace_back("mean_select_ms",
                                         totalMs / targets);
            };
            campaign.add(spec);
        }
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf(
        "== Section IV-C: eviction-set selection accuracy ==\n");
    Table table({"Machine", "Page size", "Targets", "False positives",
                 "FP rate", "Mean selection time"});
    for (const RunResult &run : results) {
        if (!run.ok || BenchCli::staleMetrics(run, 4))
            continue;
        const bool superpages =
            campaign.specs()[run.index].attack.superpages;
        table.addRow({run.machine,
                      superpages ? "superpage" : "regular",
                      strfmt("%.0f", run.metrics[0].second),
                      strfmt("%.0f", run.metrics[1].second),
                      strfmt("%.1f%%", run.metrics[2].second),
                      strfmt("%.0f ms", run.metrics[3].second)});
    }
    table.print();
    std::printf("\npaper: <=6%% false positives in every setting;"
                " ~1 us TLB selection, ~290 ms LLC selection\n");

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
