/**
 * @file
 * Section IV-D: quality of the double-sided pair selection. Paper:
 * over 95 % of timing-accepted pairs are in the same bank, and 90 %
 * of those are exactly one victim row apart.
 *
 * One campaign run per machine, fanned across host cores. Standard
 * bench flags: PTH_THREADS / --threads, --json, --journal/--fresh
 * (checkpoint/resume).
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"
#include "kernel/kernel_module.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv, "Section IV-D: double-sided pair quality");

    Campaign campaign;
    for (MachinePreset preset : paperPresets()) {
        RunSpec spec;
        spec.label = machinePresetName(preset);
        spec.preset = preset;
        spec.dramModel = cli.dramModel;
        spec.attack.superpages = true;
        spec.attack.poolBuild = cli.pool;
        spec.attack.sprayBytes = 512ull << 20;
        spec.body = [](Machine &machine, const AttackConfig &attack,
                       RunResult &res) {
            PThammerAttack pthammer(machine, attack);
            pthammer.prepare();
            KernelModule module(machine);

            const unsigned wanted = 30;
            unsigned sameBank = 0;
            unsigned oneApart = 0;
            unsigned accepted = 0;
            for (unsigned i = 0; i < wanted; ++i) {
                auto pair = pthammer.pairs().next();
                if (!pair)
                    break;
                ++accepted;
                Process &proc = machine.cpu().process();
                if (module.l1ptesSameBank(proc, pair->va1,
                                          pair->va2)) {
                    ++sameBank;
                    if (module.l1pteRowDistance(proc, pair->va1,
                                                pair->va2) == 2)
                        ++oneApart;
                }
            }
            res.attempts = accepted;
            res.metrics.emplace_back("accepted_pairs", accepted);
            res.metrics.emplace_back(
                "same_bank_pct",
                accepted ? 100.0 * sameBank / accepted : 0);
            res.metrics.emplace_back(
                "one_row_apart_pct",
                sameBank ? 100.0 * oneApart / sameBank : 0);
            res.metrics.emplace_back(
                "candidates_tried",
                static_cast<double>(
                    pthammer.pairs().candidatesTried()));
        };
        campaign.add(spec);
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf("== Section IV-D: double-sided pair quality ==\n");
    Table table({"Machine", "Accepted pairs", "Same bank",
                 "One row apart (of same-bank)", "Candidates tried"});
    for (const RunResult &run : results) {
        if (!run.ok || BenchCli::staleMetrics(run, 4))
            continue;
        table.addRow({run.machine,
                      strfmt("%.0f", run.metrics[0].second),
                      strfmt("%.0f%%", run.metrics[1].second),
                      strfmt("%.0f%%", run.metrics[2].second),
                      strfmt("%.0f", run.metrics[3].second)});
    }
    table.print();
    std::printf("\npaper: >95%% of accepted pairs share a bank; 90%% of"
                " those are one (victim) row apart\n");

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
