/**
 * @file
 * Section IV-D: quality of the double-sided pair selection. Paper:
 * over 95 % of timing-accepted pairs are in the same bank, and 90 %
 * of those are exactly one victim row apart.
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"

int
main()
{
    using namespace pth;

    std::printf("== Section IV-D: double-sided pair quality ==\n");
    Table table({"Machine", "Accepted pairs", "Same bank",
                 "One row apart (of same-bank)", "Candidates tried"});

    for (const MachineConfig &config : MachineConfig::paperMachines()) {
        Machine machine(config);
        AttackConfig attack;
        attack.superpages = true;
        attack.sprayBytes = 512ull << 20;
        PThammerAttack pthammer(machine, attack);
        pthammer.prepare();
        KernelModule module(machine);

        const unsigned wanted = 30;
        unsigned sameBank = 0;
        unsigned oneApart = 0;
        unsigned accepted = 0;
        for (unsigned i = 0; i < wanted; ++i) {
            auto pair = pthammer.pairs().next();
            if (!pair)
                break;
            ++accepted;
            Process &proc = machine.cpu().process();
            if (module.l1ptesSameBank(proc, pair->va1, pair->va2)) {
                ++sameBank;
                if (module.l1pteRowDistance(proc, pair->va1, pair->va2) ==
                    2)
                    ++oneApart;
            }
        }
        table.addRow(
            {config.name, strfmt("%u", accepted),
             strfmt("%.0f%%", accepted ? 100.0 * sameBank / accepted : 0),
             strfmt("%.0f%%", sameBank ? 100.0 * oneApart / sameBank : 0),
             strfmt("%llu", static_cast<unsigned long long>(
                                pthammer.pairs().candidatesTried()))});
    }
    table.print();
    std::printf("\npaper: >95%% of accepted pairs share a bank; 90%% of"
                " those are one (victim) row apart\n");
    return 0;
}
