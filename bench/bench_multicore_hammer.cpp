/**
 * @file
 * Multi-hart interleaved hammering over the shared cache hierarchy.
 *
 * The single-hart implicit hammer drives one pair of aggressor rows —
 * two rows per refresh window — which a TRR-style in-DRAM tracker
 * absorbs without breaking a sweat. This bench reproduces the
 * multi-core escalation: N harts hammer bank-synchronized pairs
 * concurrently through the shared L2/LLC, stacking their activation
 * rates in one bank until the tracker's capacity is overwhelmed, while
 * an optional victim hart measures the collateral noisy-neighbor
 * latency.
 *
 * Sweep: hart counts {1, 2, --harts} against the seeded DDR3 model
 * and the TRR model, plus a noisy-neighbor run (one victim hart).
 * Contracts, checked at every scale:
 *
 *  - the multi-hart attack flips against DDR3 AND against TRR;
 *  - the single-hart attack cannot defeat TRR (0 flips) — the
 *    tracker covers one pair, multi-hart stacking is what breaks it;
 *  - the stacked activation rate at --harts is at least twice the
 *    single-hart rate;
 *  - the victim hart observes nonzero mean latency under attack.
 *
 * The campaign is deterministic (byte-identical serial, --threads N,
 * --workers N, sharded) and CI pins the --tiny report against
 * bench/baselines/multicore_hammer.json via campaign_compare.
 *
 * Standard bench flags plus --tiny. The DRAM model is this bench's
 * sweep axis, so --dram-model is rejected here.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/bench_cli.hh"

namespace
{

using namespace pth;

constexpr std::size_t kMetricCount = 5;

/** Stacking floor: multi-hart acts/window vs the single-hart rate. */
constexpr double kMinStackingFactor = 2.0;

double
metric(const RunResult &run, const char *name)
{
    for (const auto &entry : run.metrics)
        if (entry.first == name)
            return entry.second;
    return 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool tiny = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && !std::strcmp(argv[i], "--tiny"))
            tiny = true;
        else
            args.push_back(argv[i]);
    }
    std::vector<std::string> passthrough;
    if (tiny)
        passthrough.push_back("--tiny");
    BenchCli cli = BenchCli::parse(
        static_cast<int>(args.size()), args.data(),
        "multi-hart interleaved hammering: TRR defeat and"
        " noisy-neighbor latency (--tiny for the CI scale)",
        passthrough);
    if (cli.dramModel != FlipModelKind::Ddr3Seeded) {
        std::fprintf(stderr,
                     "%s: the DRAM model is this bench's sweep axis;"
                     " --dram-model is not supported here\n",
                     argv[0]);
        return 2;
    }

    // --harts is the top of the hart sweep (default 4); {1, 2} below
    // it provide the single-hart reference and the scaling midpoint.
    const unsigned topHarts = cli.harts > 1 ? cli.harts : 4;

    RunSpec base;
    base.strategy = HammerStrategy::MultiHart;
    base.interleave = cli.interleave;
    base.interleaveSeed = cli.interleaveSeed;
    base.attack.poolBuild = cli.pool;
    if (tiny) {
        base.preset = MachinePreset::TestSmall;
        base.attack.superpages = true;
        base.attack.sprayBytes = 24ull << 20;
        base.attack.superpageSampleClasses = 2;
        base.attack.maxAttempts = 120;
        base.attack.hammerBudgetSeconds = 36000;
    } else {
        base.preset = MachinePreset::LenovoT420;
        base.attack.superpages = true;
    }

    Campaign campaign;
    std::vector<unsigned> hartSweep{1, 2};
    if (topHarts != 2)
        hartSweep.push_back(topHarts);
    std::size_t singleDdr3 = 0;
    std::size_t multiDdr3 = 0;
    for (unsigned harts : hartSweep) {
        RunSpec spec = base;
        spec.harts = harts;
        spec.label = strfmt("ddr3/harts%u", harts);
        std::size_t index = campaign.add(spec);
        if (harts == 1)
            singleDdr3 = index;
        if (harts == topHarts)
            multiDdr3 = index;
    }
    std::size_t singleTrr = 0;
    std::size_t multiTrr = 0;
    for (unsigned harts : {1u, topHarts}) {
        RunSpec spec = base;
        spec.harts = harts;
        spec.dramModel = FlipModelKind::Trr;
        spec.label = strfmt("trr/harts%u", harts);
        std::size_t index = campaign.add(spec);
        (harts == 1 ? singleTrr : multiTrr) = index;
    }
    RunSpec noisy = base;
    noisy.harts = topHarts;
    noisy.attack.victimHarts = 1;
    noisy.label = strfmt("ddr3/harts%u+victim", topHarts);
    const std::size_t victimRun = campaign.add(noisy);

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);
    unsigned contractViolations = 0;

    Table table({"Run", "Aggr", "Victims", "Flips", "Attempts",
                 "Acts/window", "Victim lat"});
    for (const RunResult &run : results) {
        if (!run.ok || BenchCli::staleMetrics(run, kMetricCount)) {
            table.addRow({run.label, "-", "-", "-", "-", "-", "-"});
            continue;
        }
        table.addRow({run.label,
                      strfmt("%.0f", metric(run, "aggressorHarts")),
                      strfmt("%.0f", metric(run, "victimHarts")),
                      strfmt("%llu", static_cast<unsigned long long>(
                                         run.flips)),
                      strfmt("%u", run.attempts),
                      strfmt("%.0f",
                             metric(run, "stackedActsPerWindow")),
                      strfmt("%.1f",
                             metric(run, "victimMeanLatency"))});
    }
    table.print();

    auto okRun = [&](std::size_t index) {
        return index < results.size() && results[index].ok;
    };
    if (okRun(multiDdr3) && results[multiDdr3].flips == 0) {
        std::printf("CONTRACT VIOLATION: %u-hart attack produced no"
                    " flips against ddr3\n",
                    topHarts);
        ++contractViolations;
    }
    if (okRun(multiTrr) && results[multiTrr].flips == 0) {
        std::printf("CONTRACT VIOLATION: %u-hart attack produced no"
                    " flips against trr\n",
                    topHarts);
        ++contractViolations;
    }
    if (okRun(singleTrr) && results[singleTrr].flips != 0) {
        std::printf("CONTRACT VIOLATION: single-hart attack defeated"
                    " trr (%llu flips) — the tracker should absorb"
                    " one pair\n",
                    static_cast<unsigned long long>(
                        results[singleTrr].flips));
        ++contractViolations;
    }
    if (okRun(singleDdr3) && okRun(multiDdr3)) {
        const double single =
            metric(results[singleDdr3], "stackedActsPerWindow");
        const double multi =
            metric(results[multiDdr3], "stackedActsPerWindow");
        if (single <= 0 || multi < kMinStackingFactor * single) {
            std::printf("CONTRACT VIOLATION: stacked activation rate"
                        " %.0f at %u harts < %.1fx the single-hart"
                        " rate %.0f\n",
                        multi, topHarts, kMinStackingFactor, single);
            ++contractViolations;
        }
    }
    if (okRun(victimRun) &&
        metric(results[victimRun], "victimMeanLatency") <= 0) {
        std::printf("CONTRACT VIOLATION: victim hart measured no"
                    " latency under attack\n");
        ++contractViolations;
    }

    std::printf("\ncontract: %u-hart attack flips vs ddr3 and trr;"
                " single-hart cannot defeat trr; stacked acts/window"
                " >= %.1fx single-hart; victim latency measured\n",
                topHarts, kMinStackingFactor);

    if (!cli.emitJson(results))
        return 1;
    return failures || contractViolations ? 1 : 0;
}
