/**
 * @file
 * Figure 5: time until the first bit flip as a function of the
 * per-iteration cost of (explicit, clflush-based) double-sided
 * hammering, stretched with NOP padding — the experiment the paper
 * uses to find the maximum tolerable hammer cost (~1500 cycles on the
 * Lenovos, ~1600 on the Dell).
 */

#include <cstdio>

#include "attack/explicit_hammer.hh"
#include "common/table.hh"
#include "cpu/machine.hh"

int
main()
{
    using namespace pth;

    std::printf("== Figure 5: seconds to first flip vs cycles per"
                " hammer iteration ==\n");
    Table table({"Machine", "NOP pad", "Cycles/iter", "First flip"});

    for (const MachineConfig &config : MachineConfig::paperMachines()) {
        for (unsigned nops = 0; nops <= 1300; nops += 130) {
            Machine machine(config);
            Process &proc = machine.kernel().createProcess(1000);
            machine.cpu().setProcess(proc);
            AttackConfig attack;
            ExplicitHammer hammer(machine, attack);
            hammer.setup(64ull << 20);
            double cycles = hammer.measureIterationCycles(nops);
            // The paper declares "no flip" after two hours.
            ExplicitHammerResult r = hammer.run(nops, 7200);
            table.addRow({config.name, strfmt("%u", nops),
                          strfmt("%.0f", cycles),
                          r.flipped
                              ? strfmt("%.0f s", r.secondsToFirstFlip)
                              : "none within 2 h"});
        }
    }
    table.print();
    std::printf("\npaper: time to first flip grows with the iteration"
                " cost; no flips within 2 h beyond ~1500 cycles"
                " (Lenovos) / ~1600 cycles (Dell)\n");
    return 0;
}
