/**
 * @file
 * Figure 5: time until the first bit flip as a function of the
 * per-iteration cost of (explicit, clflush-based) double-sided
 * hammering, stretched with NOP padding — the experiment the paper
 * uses to find the maximum tolerable hammer cost (~1500 cycles on the
 * Lenovos, ~1600 on the Dell).
 *
 * The 3 machines x 11 padding levels form one 33-run campaign fanned
 * across host cores. Standard bench flags: PTH_THREADS / --threads,
 * --json, --journal/--fresh (checkpoint/resume).
 */

#include <cstdio>

#include "attack/explicit_hammer.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv,
        "Figure 5: time to first flip vs hammer iteration cost");

    Campaign campaign;
    for (MachinePreset preset : paperPresets()) {
        for (unsigned nops = 0; nops <= 1300; nops += 130) {
            RunSpec spec;
            spec.label =
                machinePresetName(preset) + strfmt("/nop%u", nops);
            spec.preset = preset;
            spec.dramModel = cli.dramModel;
            spec.strategy = HammerStrategy::Explicit;
            spec.nopPadding = nops;
            spec.body = [nops](Machine &machine,
                               const AttackConfig &attack,
                               RunResult &res) {
                Process &proc = machine.kernel().createProcess(1000);
                machine.cpu().setProcess(proc);
                ExplicitHammer hammer(machine, attack);
                hammer.setup(64ull << 20);
                double cycles = hammer.measureIterationCycles(nops);
                // The paper declares "no flip" after two hours.
                ExplicitHammerResult r = hammer.run(nops, 7200);
                res.flipped = r.flipped;
                res.flips = r.flipped ? 1 : 0;
                res.attempts = static_cast<unsigned>(r.pairsHammered);
                res.metrics.emplace_back("cycles_per_iteration", cycles);
                res.metrics.emplace_back("seconds_to_first_flip",
                                         r.secondsToFirstFlip);
            };
            campaign.add(spec);
        }
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf("== Figure 5: seconds to first flip vs cycles per"
                " hammer iteration ==\n");
    Table table({"Machine", "NOP pad", "Cycles/iter", "First flip"});
    for (const RunResult &run : results) {
        if (!run.ok || BenchCli::staleMetrics(run, 2))
            continue;
        const unsigned nops = campaign.specs()[run.index].nopPadding;
        table.addRow({run.machine, strfmt("%u", nops),
                      strfmt("%.0f", run.metrics[0].second),
                      run.flipped
                          ? strfmt("%.0f s", run.metrics[1].second)
                          : "none within 2 h"});
    }
    table.print();
    std::printf("\npaper: time to first flip grows with the iteration"
                " cost; no flips within 2 h beyond ~1500 cycles"
                " (Lenovos) / ~1600 cycles (Dell)\n");

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
