/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * host-side throughput of DRAM accesses, cache-hierarchy accesses,
 * address translation and full hammer iterations.
 */

#include <benchmark/benchmark.h>

#include "attack/pthammer.hh"
#include "cpu/machine.hh"

namespace
{

using namespace pth;

void
BM_DramAccess(benchmark::State &state)
{
    DramGeometry geometry;
    geometry.sizeBytes = 256ull << 20;
    PhysicalMemory mem(geometry.sizeBytes);
    DisturbanceConfig dc;
    dc.refreshWindowCycles = 1'000'000;
    Dram dram(geometry, DramTiming{}, dc, mem);
    Cycles now = 0;
    PhysAddr pa = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dram.access(pa, now));
        pa = (pa + 8192) & (geometry.sizeBytes - 1);
        now += 100;
    }
}
BENCHMARK(BM_DramAccess);

void
BM_CacheHierarchyHit(benchmark::State &state)
{
    DramGeometry geometry;
    geometry.sizeBytes = 256ull << 20;
    PhysicalMemory mem(geometry.sizeBytes);
    DisturbanceConfig dc;
    dc.refreshWindowCycles = 1'000'000;
    Dram dram(geometry, DramTiming{}, dc, mem);
    CacheHierarchyConfig cc;
    CacheHierarchy caches(cc, dram);
    caches.access(0x1000, 0);
    Cycles now = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(caches.access(0x1000, ++now));
}
BENCHMARK(BM_CacheHierarchyHit);

void
BM_TranslateTlbHit(benchmark::State &state)
{
    Machine machine(MachineConfig::testSmall());
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    machine.kernel().mmapAnon(proc, 0x10000000, kPageBytes);
    machine.mmu().translate(0x10000000, 0);
    Cycles now = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            machine.mmu().translate(0x10000000, ++now));
}
BENCHMARK(BM_TranslateTlbHit);

void
BM_TranslateWalk(benchmark::State &state)
{
    Machine machine(MachineConfig::testSmall());
    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    machine.kernel().mmapAnon(proc, 0x10000000, kPageBytes);
    Cycles now = 0;
    for (auto _ : state) {
        machine.mmu().invalidatePage(0x10000000);
        benchmark::DoNotOptimize(
            machine.mmu().translate(0x10000000, ++now));
    }
}
BENCHMARK(BM_TranslateWalk);

void
BM_HammerIteration(benchmark::State &state)
{
    Machine machine(MachineConfig::testSmall());
    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 16ull << 20;
    attack.superpageSampleClasses = 1;
    PThammerAttack pthammer(machine, attack);
    pthammer.prepare();
    auto pair = pthammer.pairs().next();
    if (!pair) {
        state.SkipWithError("no hammer pair");
        return;
    }
    unsigned dramFetches = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pthammer.hammer().iteration(*pair, dramFetches));
}
BENCHMARK(BM_HammerIteration);

} // namespace

BENCHMARK_MAIN();
