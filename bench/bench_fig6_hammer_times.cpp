/**
 * @file
 * Figure 6: per-iteration cost of implicit double-sided hammering
 * over 50 measured rounds, in the default (regular-page) setting (6a)
 * and with superpages (6b). Paper: Lenovos mostly 600-900 cycles
 * (<=1000/1100), Dell 900-1400 — all below the Figure-5 maxima.
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "cpu/machine.hh"

int
main()
{
    using namespace pth;

    std::printf("== Figure 6: cycles per double-sided hammer,"
                " 50 rounds ==\n");
    Table table({"Machine", "Setting", "min", "p25", "median", "p75",
                 "max", "% in 400-1000", "% in 900-1400"});

    for (bool superpages : {false, true}) {
        for (const MachineConfig &config : MachineConfig::paperMachines()) {
            Machine machine(config);
            AttackConfig attack;
            attack.superpages = superpages;
            attack.sprayBytes = 512ull << 20;
            attack.regularSampleClasses = 1;
            attack.regularSampleGroups = 2;
            PThammerAttack pthammer(machine, attack);
            pthammer.prepare();
            auto pair = pthammer.pairs().next();
            if (!pair) {
                std::printf("no pair found for %s\n", config.name.c_str());
                continue;
            }
            auto timings = pthammer.hammer().measureRounds(*pair, 50);

            Histogram hist(0, 2000, 100);
            for (Cycles t : timings)
                hist.sample(static_cast<double>(t));
            double inLow = hist.fractionBelow(1000) -
                           hist.fractionBelow(400);
            double inHigh = hist.fractionBelow(1400) -
                            hist.fractionBelow(900);
            table.addRow(
                {config.name, superpages ? "superpage (6b)" : "default (6a)",
                 strfmt("%.0f", hist.quantile(0.0)),
                 strfmt("%.0f", hist.quantile(0.25)),
                 strfmt("%.0f", hist.quantile(0.5)),
                 strfmt("%.0f", hist.quantile(0.75)),
                 strfmt("%.0f", hist.quantile(1.0)),
                 strfmt("%.0f%%", 100 * inLow),
                 strfmt("%.0f%%", 100 * inHigh)});
        }
    }
    table.print();
    std::printf("\npaper: Lenovos 600-900 cycles for the vast majority"
                " (all <1000-1100); Dell 900-1400 — well below the"
                " 1500/1600-cycle flip ceiling\n");
    return 0;
}
