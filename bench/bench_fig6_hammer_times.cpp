/**
 * @file
 * Figure 6: per-iteration cost of implicit double-sided hammering
 * over 50 measured rounds, in the default (regular-page) setting (6a)
 * and with superpages (6b). Paper: Lenovos mostly 600-900 cycles
 * (<=1000/1100), Dell 900-1400 — all below the Figure-5 maxima.
 *
 * The 2 settings x 3 machines form one six-run campaign fanned
 * across host cores. Standard bench flags: PTH_THREADS / --threads,
 * --json, --journal/--fresh (checkpoint/resume).
 */

#include <cstdio>
#include <stdexcept>

#include "attack/pthammer.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "cpu/machine.hh"
#include "harness/bench_cli.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv,
        "Figure 6: cycles per double-sided hammer iteration");

    Campaign campaign;
    for (bool superpages : {false, true}) {
        for (MachinePreset preset : paperPresets()) {
            RunSpec spec;
            spec.label = machinePresetName(preset) +
                         (superpages ? "/superpage" : "/default");
            spec.preset = preset;
            spec.dramModel = cli.dramModel;
            spec.attack.superpages = superpages;
            spec.attack.poolBuild = cli.pool;
            spec.attack.sprayBytes = 512ull << 20;
            spec.attack.regularSampleClasses = 1;
            spec.attack.regularSampleGroups = 2;
            spec.body = [](Machine &machine,
                           const AttackConfig &attack,
                           RunResult &res) {
                PThammerAttack pthammer(machine, attack);
                pthammer.prepare();
                auto pair = pthammer.pairs().next();
                if (!pair)
                    throw std::runtime_error("no hammer pair found");
                auto timings =
                    pthammer.hammer().measureRounds(*pair, 50);

                Histogram hist(0, 2000, 100);
                for (Cycles t : timings)
                    hist.sample(static_cast<double>(t));
                res.attempts =
                    static_cast<unsigned>(timings.size());
                res.metrics.emplace_back("cycles_min",
                                         hist.quantile(0.0));
                res.metrics.emplace_back("cycles_p25",
                                         hist.quantile(0.25));
                res.metrics.emplace_back("cycles_median",
                                         hist.quantile(0.5));
                res.metrics.emplace_back("cycles_p75",
                                         hist.quantile(0.75));
                res.metrics.emplace_back("cycles_max",
                                         hist.quantile(1.0));
                res.metrics.emplace_back(
                    "pct_in_400_1000",
                    100.0 * (hist.fractionBelow(1000) -
                             hist.fractionBelow(400)));
                res.metrics.emplace_back(
                    "pct_in_900_1400",
                    100.0 * (hist.fractionBelow(1400) -
                             hist.fractionBelow(900)));
            };
            campaign.add(spec);
        }
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf("== Figure 6: cycles per double-sided hammer,"
                " 50 rounds ==\n");
    Table table({"Machine", "Setting", "min", "p25", "median", "p75",
                 "max", "% in 400-1000", "% in 900-1400"});
    for (const RunResult &run : results) {
        if (!run.ok || BenchCli::staleMetrics(run, 7))
            continue;
        const bool superpages =
            campaign.specs()[run.index].attack.superpages;
        table.addRow(
            {run.machine,
             superpages ? "superpage (6b)" : "default (6a)",
             strfmt("%.0f", run.metrics[0].second),
             strfmt("%.0f", run.metrics[1].second),
             strfmt("%.0f", run.metrics[2].second),
             strfmt("%.0f", run.metrics[3].second),
             strfmt("%.0f", run.metrics[4].second),
             strfmt("%.0f%%", run.metrics[5].second),
             strfmt("%.0f%%", run.metrics[6].second)});
    }
    table.print();
    std::printf("\npaper: Lenovos 600-900 cycles for the vast majority"
                " (all <1000-1100); Dell 900-1400 — well below the"
                " 1500/1600-cycle flip ceiling\n");

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
