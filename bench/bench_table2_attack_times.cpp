/**
 * @file
 * Table II: average PThammer phase times per machine, with and
 * without superpages, at the paper's scale (2 GiB L1PT spray out of
 * 8 GiB). Pool construction is algorithmically sampled and its cost
 * extrapolated (see DESIGN.md); everything else runs in full.
 *
 * The six machine x page-size configurations are dispatched through
 * the campaign runner, so they fan out across host cores and the
 * reported rows are identical no matter how many workers ran them.
 * Standard bench flags: PTH_THREADS / --threads, --json,
 * --journal/--fresh (checkpoint/resume).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/bench_cli.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv, "Table II: average PThammer phase times");

    Campaign campaign;
    for (MachinePreset preset : paperPresets()) {
        for (bool superpages : {true, false}) {
            RunSpec spec;
            spec.label = machinePresetName(preset) +
                         (superpages ? "/superpage" : "/regular");
            spec.preset = preset;
            spec.dramModel = cli.dramModel;
            spec.strategy = HammerStrategy::PThammer;
            spec.attack.superpages = superpages;
            spec.attack.poolBuild = cli.pool;
            spec.attack.sprayBytes = 2ull << 30;
            spec.attack.maxAttempts = 450;
            campaign.add(spec);
        }
    }

    std::vector<RunResult> results = cli.runCampaign(campaign);
    unsigned failures = cli.failureCount(results);

    std::printf("== Table II: average PThammer times ==\n");
    Table table({"Machine", "Page Size", "Prep TLB", "Prep LLC",
                 "Sel TLB", "Sel LLC", "Hammer", "Check",
                 "Time to Bit Flip"});
    for (const RunResult &run : results) {
        if (!run.ok)
            continue;
        const AttackReport &r = run.report;
        table.addRow(
            {r.machine, r.superpages ? "superpage" : "regular",
             strfmt("%.0f ms", r.tlbPrepMs),
             strfmt("%.2f m", r.llcPrepMinutes),
             strfmt("%.0f us", r.tlbSelectMicros),
             strfmt("%.0f ms", r.llcSelectMs),
             strfmt("%.0f ms", r.hammerMs),
             strfmt("%.1f s", r.checkSeconds),
             r.flipped ? strfmt("%.1f m", r.timeToFirstFlipMinutes)
                       : strfmt("none in %.0f m",
                                r.timeToFirstFlipMinutes)});
    }
    table.print();
    std::printf(
        "\npaper (T420 superpage): 11 ms / 0.3 m / 1 us / 285 ms /"
        " 285 ms / 4.4 s / 10 m\n"
        "paper (T420 regular)  : 11 ms / 18.0 m / 1 us / 283 ms /"
        " 287 ms / 4.4 s / 10 m\n"
        "paper (X230)          : 7 ms / 0.3-19 m / 1 us / ~285 ms /"
        " ~282 ms / 4.2-4.4 s / 15 m\n"
        "paper (E6420)         : 7 ms / 0.3-38 m / 1 us / ~264 ms /"
        " ~390 ms / 4.0-4.1 s / 12-14 m\n");

    double serialEquivalent = 0;
    for (const RunResult &run : results)
        serialEquivalent += run.wallSeconds;
    std::printf("\ncampaign: %zu runs, serial-equivalent %.1f s of"
                " host work\n",
                results.size(), serialEquivalent);

    if (!cli.emitJson(results))
        return 1;
    return failures ? 1 : 0;
}
