/**
 * @file
 * Table II: average PThammer phase times per machine, with and
 * without superpages, at the paper's scale (2 GiB L1PT spray out of
 * 8 GiB). Pool construction is algorithmically sampled and its cost
 * extrapolated (see DESIGN.md); everything else runs in full.
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "common/table.hh"
#include "cpu/machine.hh"

int
main()
{
    using namespace pth;

    std::printf("== Table II: average PThammer times ==\n");
    Table table({"Machine", "Page Size", "Prep TLB", "Prep LLC",
                 "Sel TLB", "Sel LLC", "Hammer", "Check",
                 "Time to Bit Flip"});

    for (const MachineConfig &config : MachineConfig::paperMachines()) {
        for (bool superpages : {true, false}) {
            Machine machine(config);
            AttackConfig attack;
            attack.superpages = superpages;
            attack.sprayBytes = 2ull << 30;
            attack.maxAttempts = 450;
            PThammerAttack pthammer(machine, attack);
            AttackReport r = pthammer.run();

            table.addRow(
                {r.machine, superpages ? "superpage" : "regular",
                 strfmt("%.0f ms", r.tlbPrepMs),
                 strfmt("%.2f m", r.llcPrepMinutes),
                 strfmt("%.0f us", r.tlbSelectMicros),
                 strfmt("%.0f ms", r.llcSelectMs),
                 strfmt("%.0f ms", r.hammerMs),
                 strfmt("%.1f s", r.checkSeconds),
                 r.flipped
                     ? strfmt("%.1f m", r.timeToFirstFlipMinutes)
                     : strfmt("none in %.0f m",
                              r.timeToFirstFlipMinutes)});
        }
    }
    table.print();
    std::printf(
        "\npaper (T420 superpage): 11 ms / 0.3 m / 1 us / 285 ms /"
        " 285 ms / 4.4 s / 10 m\n"
        "paper (T420 regular)  : 11 ms / 18.0 m / 1 us / 283 ms /"
        " 287 ms / 4.4 s / 10 m\n"
        "paper (X230)          : 7 ms / 0.3-19 m / 1 us / ~285 ms /"
        " ~282 ms / 4.2-4.4 s / 15 m\n"
        "paper (E6420)         : 7 ms / 0.3-38 m / 1 us / ~264 ms /"
        " ~390 ms / 4.0-4.1 s / 12-14 m\n");
    return 0;
}
