/**
 * @file
 * Quickstart: build a simulated Lenovo T420, run PThammer end to end,
 * and print the phase timings and the escalation outcome.
 *
 * The spray is scaled down from the paper's 2 GiB to 256 MiB so the
 * example finishes in seconds; bench/bench_table2_attack_times runs
 * the paper-scale configuration.
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "cpu/machine.hh"

int
main()
{
    using namespace pth;

    // 1. A machine from Table I.
    MachineConfig config = MachineConfig::lenovoT420();
    Machine machine(config);

    // 2. Attack configuration: superpage mode, small demo spray.
    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 256ull * 1024 * 1024;
    attack.maxAttempts = 600;

    // 3. Run.
    PThammerAttack pthammer(machine, attack);
    pthammer.prepare();
    const AttackReport &prep = pthammer.prepReport();
    std::printf("machine            : %s\n", prep.machine.c_str());
    std::printf("spray              : %.1f ms (%llu L1PT pages)\n",
                prep.sprayMs,
                static_cast<unsigned long long>(
                    pthammer.sprayer().ptPages()));
    std::printf("TLB pool prep      : %.1f ms\n", prep.tlbPrepMs);
    std::printf("LLC pool prep      : %.2f min\n", prep.llcPrepMinutes);

    AttackReport report = pthammer.run();
    std::printf("TLB set selection  : %.2f us\n", report.tlbSelectMicros);
    std::printf("LLC set selection  : %.1f ms\n", report.llcSelectMs);
    std::printf("hammer time        : %.1f ms per attempt\n",
                report.hammerMs);
    std::printf("check time         : %.2f s per attempt\n",
                report.checkSeconds);
    std::printf("attempts           : %u\n", report.attempts);
    std::printf("first bit flip     : %s (%.1f min)\n",
                report.flipped ? "yes" : "no",
                report.timeToFirstFlipMinutes);
    std::printf("privilege escalated: %s via %s\n",
                report.escalated ? "YES" : "no",
                report.exploitPath.c_str());
    // The scaled-down demo spray makes full escalation a coin toss
    // (the paper-scale run is bench_table2_attack_times); the first
    // cross-boundary flip is the demo's success criterion.
    return report.flipped ? 0 : 1;
}
