/**
 * @file
 * Campaign-runner demo: a 64-run seed sweep of the end-to-end attack
 * on the scaled-down machine, fanned out across every host core, then
 * folded into the flip-probability statistics a single run cannot
 * give you. The aggregate (and the JSON report, with --json) is
 * bit-identical to a serial run of the same campaign — rerun with
 * PTH_THREADS=1 to check. Pass --journal sweep.jsonl, kill it
 * mid-sweep, and rerun with the same flag to watch the campaign
 * resume from its checkpoint and still print the same fingerprint.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/bench_cli.hh"

int
main(int argc, char **argv)
{
    using namespace pth;

    BenchCli cli = BenchCli::parse(
        argc, argv,
        "campaign demo: 64-run seed sweep with checkpoint/resume");

    RunSpec base;
    base.label = "t420-small";
    base.preset = MachinePreset::TestSmall;
    base.dramModel = cli.dramModel;
    base.strategy = HammerStrategy::PThammer;
    base.attack.superpages = true;
    base.attack.sprayBytes = 24ull << 20;
    base.attack.superpageSampleClasses = 2;
    base.attack.maxAttempts = 60;
    base.attack.hammerBudgetSeconds = 36000;

    Campaign campaign;
    campaign.addSeedSweep(base, /*seedBase=*/1, /*count=*/64);

    std::vector<RunResult> results = cli.runCampaign(campaign);

    CampaignAggregate agg = Campaign::aggregate(results);
    std::printf("runs          : %llu (%llu failed)\n",
                static_cast<unsigned long long>(agg.runs),
                static_cast<unsigned long long>(agg.failedRuns));
    std::printf("flip rate     : %.0f%% of runs\n",
                100.0 * static_cast<double>(agg.flippedRuns) /
                    static_cast<double>(agg.runs));
    std::printf("escalation    : %.0f%% of runs\n",
                100.0 * static_cast<double>(agg.escalatedRuns) /
                    static_cast<double>(agg.runs));
    std::printf("flips/run     : mean %.1f (min %.0f, max %.0f)\n",
                agg.flipsPerRun.mean(), agg.flipsPerRun.min(),
                agg.flipsPerRun.max());
    if (agg.timeToFlipMinutes.count())
        std::printf("time to flip  : mean %.1f simulated minutes\n",
                    agg.timeToFlipMinutes.mean());
    std::printf("fingerprint   : %016llx\n",
                static_cast<unsigned long long>(agg.fingerprint()));

    double serialEquivalent = 0;
    for (const RunResult &r : results)
        serialEquivalent += r.wallSeconds;
    std::printf("host work     : %.1f s serial-equivalent\n",
                serialEquivalent);

    if (!cli.emitJson(results))
        return 1;
    return agg.failedRuns == 0 && cli.workerDeaths == 0 ? 0 : 1;
}
