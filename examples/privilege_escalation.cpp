/**
 * @file
 * Full kernel privilege escalation (Section IV-F): spray L1PTs,
 * implicitly hammer them through the page-table walker, catch a
 * corrupted PTE that exposes another L1PT page, rewrite it, and become
 * root — on a simulated Lenovo T420 with no defense.
 *
 * DRAM vulnerability density is raised above the calibrated default so
 * the demo converges in seconds; the paper-scale statistics live in
 * bench_table2_attack_times and bench_defenses.
 */

#include <cstdio>

#include "attack/pthammer.hh"
#include "cpu/machine.hh"

int
main()
{
    using namespace pth;

    MachineConfig config = MachineConfig::lenovoT420();
    config.disturbance.weakRowProbability = 0.10;
    Machine machine(config);

    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 1ull << 30;  // 1 GiB of L1PTs
    attack.maxAttempts = 400;

    PThammerAttack pthammer(machine, attack);
    AttackReport report = pthammer.run();

    std::printf("attempts           : %u\n", report.attempts);
    std::printf("bit flips observed : %u\n", report.flipsObserved);
    std::printf("first flip after   : %.1f simulated minutes\n",
                report.timeToFirstFlipMinutes);
    std::printf("escalated          : %s\n",
                report.escalated ? "YES" : "no");
    std::printf("exploit path       : %s\n", report.exploitPath.c_str());
    std::printf("flips used         : %u\n", report.flipsUntilEscalation);

    if (report.escalated) {
        std::printf("\nThe attacker now owns a writable window onto a "
                    "live Level-1 page table:\nany physical frame — "
                    "including its own struct cred — is one PTE write "
                    "away.\n");
    }
    return report.escalated ? 0 : 1;
}
