/**
 * @file
 * Section IV-G in miniature: run the identical attack against each
 * software-only defense and print who survives. CATT and RIP-RH fall
 * to the standard exploit, CTA falls to the struct-cred spray, and
 * ZebRAM (whose guard rows absorb every flip) holds — exactly the
 * paper's conclusion.
 *
 * The five scenarios are one Campaign, fanned across host cores; the
 * table is identical however many workers ran it.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/campaign.hh"

int
main()
{
    using namespace pth;

    Campaign campaign;
    for (DefenseKind kind :
         {DefenseKind::None, DefenseKind::Catt, DefenseKind::RipRh,
          DefenseKind::Cta, DefenseKind::ZebRam}) {
        RunSpec spec;
        spec.label = defenseKindName(kind);
        spec.preset = MachinePreset::TestSmall;
        spec.defense = kind;
        spec.strategy = HammerStrategy::PThammer;
        spec.tweakMachine = [kind](MachineConfig &config) {
            config.disturbance.weakRowProbability = 0.15;
            if (kind == DefenseKind::Cta) {
                // Evaluate CTA on a true-cell-dominant module (the
                // case it is designed for): screening then keeps the
                // PT zone contiguous, and its monotonic-pointer
                // defense is fully in force — yet the cred spray
                // still wins.
                config.disturbance.trueCellFraction = 1.0;
            }
        };

        AttackConfig &attack = spec.attack;
        // The small machine's kernel zone is 64 MiB under CATT/CTA;
        // keep the page-table spray well inside it.
        attack.sprayBytes = 32ull << 20;
        if (kind == DefenseKind::RipRh)
            attack.sprayBytes = 12ull << 20;  // fits one user partition
        attack.superpageSampleClasses = 2;
        attack.maxAttempts = 300;
        attack.hammerBudgetSeconds = 36000;
        if (kind == DefenseKind::ZebRam) {
            attack.superpages = false;
            attack.regularSampleClasses = 1;
            attack.regularSampleGroups = 1;
            attack.maxAttempts = 40;
        } else {
            attack.superpages = true;
        }
        if (kind == DefenseKind::Catt || kind == DefenseKind::RipRh)
            attack.exhaustKernelFraction = 1.0;
        if (kind == DefenseKind::Cta) {
            attack.credSprayProcesses = 4000;
            attack.maxAttempts = 600;
        }

        campaign.add(spec);
    }

    CampaignOptions options;
    options.threads = 0;  // all cores
    std::vector<RunResult> results = campaign.run(options);

    Table table({"Defense", "Flipped", "Escalated", "Path"});
    for (const RunResult &r : results) {
        if (!r.ok) {
            std::printf("run %s failed: %s\n", r.label.c_str(),
                        r.error.c_str());
            continue;
        }
        table.addRow({r.defense, r.flipped ? "yes" : "no",
                      r.escalated ? "YES" : "no", r.exploitPath});
    }
    table.print();
    return 0;
}
