/**
 * @file
 * Eviction-set construction walkthrough: Algorithm 1 (minimal TLB
 * eviction-set size via the PMC TLB-miss event) and Algorithm 2
 * (selecting the pool set congruent with a target's Level-1 PTE by
 * latency profiling), with the ground truth shown alongside.
 */

#include <cstdio>

#include "attack/eviction_selection.hh"
#include "attack/spray.hh"
#include "attack/tlb_eviction.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"

int
main()
{
    using namespace pth;

    Machine machine(MachineConfig::lenovoT420());
    AttackConfig attack;
    attack.superpages = true;
    attack.sprayBytes = 128ull << 20;

    Process &proc = machine.kernel().createProcess(1000);
    machine.cpu().setProcess(proc);
    SprayManager sprayer(machine, attack);
    sprayer.spray();
    KernelModule module(machine);

    // --- Algorithm 1 ---
    TlbEvictionTool tlb(machine, attack);
    Cycles prep = tlb.prepare();
    std::printf("TLB pool prepared in %.1f ms\n",
                machine.seconds(prep) * 1e3);
    VirtAddr target = sprayer.randomTarget(1);
    unsigned minimal = tlb.findMinimalSetSize(target, module);
    std::printf("Algorithm 1: minimal TLB eviction-set size = %u pages"
                " (associativity is only %u+%u)\n",
                minimal, machine.config().tlb.l1d.ways,
                machine.config().tlb.l2s.ways);
    tlb.setWorkingSetSize(minimal);

    for (unsigned size : {4u, 8u, minimal, minimal + 4}) {
        auto set = tlb.evictionSetFor(target, size);
        double rate = tlb.profileMissRate(target, set, 200, module);
        std::printf("  %2u pages -> %.0f%% TLB miss rate\n", size,
                    100 * rate);
    }

    // --- Algorithm 2 ---
    LlcEvictionPool pool(machine, attack);
    pool.allocateBuffer();
    pool.buildSuperpage(/*sampleClasses=*/8);
    std::printf("\nLLC pool: %zu eviction sets\n", pool.sets().size());

    EvictionSetSelector selector(machine, attack, pool, tlb);
    SetSelection sel = selector.select(target);
    std::printf("Algorithm 2: selected set for the target's L1PTE in"
                " %.0f ms (median latency %.0f cycles)\n",
                machine.seconds(sel.elapsed) * 1e3, sel.maxMedianLatency);

    auto truth = module.l1pteLlcSet(proc, target);
    auto tr = proc.pageTables()->translate(sel.set->lines.front());
    PhysAddr pa = (tr->frame << kPageShift) |
                  (sel.set->lines.front() & (kPageBytes - 1));
    bool correct = truth && machine.caches().llc().globalSet(pa) == *truth;
    std::printf("ground truth (kernel module): selection %s\n",
                correct ? "CORRECT — set is congruent with the L1PTE"
                        : "incorrect (a false positive)");
    return 0;
}
