#include "dram/dram.hh"

#include "common/logging.hh"
#include "mem/physical_memory.hh"

namespace pth
{

Dram::Dram(const DramGeometry &geometry, const DramTiming &timing_,
           const DisturbanceConfig &disturbance, PhysicalMemory &memory)
    : map(geometry), timing(timing_), vuln(disturbance), mem(memory),
      bankState(geometry.banks), refreshWindow(disturbance.refreshWindowCycles)
{
    pth_assert(geometry.rowBytes == 8192,
               "weak-cell placement assumes 8 KiB rows");
    pth_assert(refreshWindow > 0, "refresh window must be nonzero");
}

DramAccessResult
Dram::access(PhysAddr pa, Cycles now)
{
    DramLocation loc = map.decompose(pa);
    BankState &bank = bankState[loc.bank];
    std::uint64_t epoch = now / refreshWindow;

    DramAccessResult result{};
    if (bank.open && bank.openRow == loc.row) {
        result.latency = timing.rowHit;
        result.rowHit = true;
        ++rowHits;
        return result;
    }

    result.latency = bank.open ? timing.rowConflict : timing.rowClosed;
    result.activated = true;
    bank.open = true;
    bank.openRow = loc.row;
    activate(loc.bank, loc.row, epoch);
    return result;
}

void
Dram::activate(unsigned bank, std::uint64_t row, std::uint64_t epoch)
{
    ++activations;
    BankState &state = bankState[bank];
    RowState &rs = state.rowActs[row];
    if (rs.epoch != epoch) {
        // Lazy refresh: the window rolled over, so the charge leaked
        // into the neighbours has been restored.
        rs.epoch = epoch;
        rs.acts = 0;
    }
    ++rs.acts;

    // Disturb the two neighbouring rows. A victim's per-window
    // disturbance is the sum of its neighbours' activations.
    for (long long delta : {-1ll, +1ll}) {
        if (row == 0 && delta < 0)
            continue;
        std::uint64_t victim = row + static_cast<std::uint64_t>(delta);
        if (victim >= map.rowsPerBank())
            continue;
        if (!vuln.rowIsWeak(bank, victim))
            continue;
        std::uint64_t disturbance =
            actsInWindow(bank, victim - 1, epoch) +
            (victim + 1 < map.rowsPerBank()
                 ? actsInWindow(bank, victim + 1, epoch)
                 : 0);
        applyDisturbance(bank, victim, disturbance);
    }
}

std::uint64_t
Dram::actsInWindow(unsigned bank, std::uint64_t row,
                   std::uint64_t epoch) const
{
    if (row >= map.rowsPerBank())
        return 0;
    const BankState &state = bankState[bank];
    auto it = state.rowActs.find(row);
    if (it == state.rowActs.end() || it->second.epoch != epoch)
        return 0;
    return it->second.acts;
}

void
Dram::applyDisturbance(unsigned bank, std::uint64_t victimRow,
                       std::uint64_t disturbance)
{
    for (const WeakCell &cell : vuln.weakCells(bank, victimRow)) {
        if (cell.threshold > disturbance)
            continue;
        DramLocation loc{bank, victimRow, cell.byteInRow};
        PhysAddr pa = map.compose(loc);
        bool storedOne = (mem.read8(pa) >> cell.bitInByte) & 1;
        // A true cell can only discharge (1 -> 0); an anti cell can
        // only charge (0 -> 1). A cell whose stored bit already matches
        // the flip destination cannot flip (again).
        if (storedOne != cell.trueCell)
            continue;
        mem.flipBit(pa, cell.bitInByte);
        FlipEvent ev{pa, cell.bitInByte, storedOne, bank, victimRow};
        pendingFlips.push_back(ev);
        ++flipsInjected;
    }
}

std::vector<FlipEvent>
Dram::hammerBulk(unsigned bank,
                 const std::vector<std::uint64_t> &aggressorRows,
                 std::uint64_t actsPerWindow, std::uint64_t windowCount)
{
    pth_assert(bank < map.banks(), "bank out of range");
    std::vector<FlipEvent> flips;
    if (windowCount == 0 || actsPerWindow == 0)
        return flips;

    // Collect candidate victims: every row adjacent to an aggressor.
    std::vector<std::uint64_t> victims;
    for (std::uint64_t row : aggressorRows) {
        if (row > 0)
            victims.push_back(row - 1);
        if (row + 1 < map.rowsPerBank())
            victims.push_back(row + 1);
    }

    std::size_t before = pendingFlips.size();
    for (std::uint64_t victim : victims) {
        std::uint64_t adjacency = 0;
        for (std::uint64_t row : aggressorRows)
            if (row + 1 == victim || (victim + 1 == row))
                ++adjacency;
        // The per-window disturbance is constant across windows, so a
        // cell either flips in the first whole window or never.
        applyDisturbance(bank, victim, adjacency * actsPerWindow);
    }
    flips.assign(pendingFlips.begin() +
                     static_cast<std::ptrdiff_t>(before),
                 pendingFlips.end());
    return flips;
}

std::vector<FlipEvent>
Dram::drainFlips()
{
    std::vector<FlipEvent> out;
    out.swap(pendingFlips);
    return out;
}

void
Dram::reset()
{
    for (BankState &bank : bankState) {
        bank.open = false;
        bank.rowActs.clear();
    }
}

} // namespace pth
