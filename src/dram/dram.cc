#include "dram/dram.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "mem/physical_memory.hh"

namespace pth
{

Dram::Dram(const DramGeometry &geometry, const DramTiming &timing_,
           const DisturbanceConfig &disturbance, PhysicalMemory &memory)
    : map(geometry), timing(timing_),
      model(makeFlipModel(disturbance, geometry)), mem(memory),
      bankState(geometry.banks), refreshWindow(disturbance.refreshWindowCycles)
{
    pth_assert(refreshWindow > 0, "refresh window must be nonzero");
}

Dram::Dram(const Dram &other, PhysicalMemory &memory)
    : map(other.map), timing(other.timing), model(other.model->clone()),
      mem(memory), bankState(other.bankState),
      pendingFlips(other.pendingFlips), refreshWindow(other.refreshWindow),
      activations(other.activations), rowHits(other.rowHits),
      flipsInjected(other.flipsInjected)
{
}

std::uint64_t
Dram::stateHash() const
{
    std::uint64_t h = hashCombine(0xd7a3, activations, rowHits);
    h = hashCombine(h, flipsInjected, model->stateHash());
    for (const BankState &bank : bankState)
        h = hashCombine(h, bank.open, bank.openRow);
    for (const FlipEvent &flip : pendingFlips) {
        h = hashCombine(h, flip.address, flip.bitInByte, flip.wasOne);
        h = hashCombine(h, flip.bank, flip.row);
    }
    return h;
}

DramAccessResult
Dram::access(PhysAddr pa, Cycles now)
{
    DramLocation loc = map.decompose(pa);
    BankState &bank = bankState[loc.bank];
    std::uint64_t epoch = now / refreshWindow;

    DramAccessResult result{};
    if (bank.open && bank.openRow == loc.row) {
        result.latency = timing.rowHit;
        result.rowHit = true;
        ++rowHits;
        return result;
    }

    result.latency = bank.open ? timing.rowConflict : timing.rowClosed;
    result.activated = true;
    bank.open = true;
    bank.openRow = loc.row;
    activate(loc.bank, loc.row, epoch);
    return result;
}

void
Dram::activate(unsigned bank, std::uint64_t row, std::uint64_t epoch)
{
    ++activations;
    victimScratch.clear();
    model->onActivate(bank, row, epoch, victimScratch);
    for (const FlipModel::Victim &victim : victimScratch)
        applyDisturbance(bank, victim.row, victim.disturbance);
}

void
Dram::applyDisturbance(unsigned bank, std::uint64_t victimRow,
                       std::uint64_t disturbance)
{
    for (const WeakCell &cell :
         model->vulnerability().weakCells(bank, victimRow)) {
        if (cell.threshold > disturbance)
            continue;
        DramLocation loc{bank, victimRow, cell.byteInRow};
        PhysAddr pa = map.compose(loc);
        bool storedOne = (mem.read8(pa) >> cell.bitInByte) & 1;
        // A true cell can only discharge (1 -> 0); an anti cell can
        // only charge (0 -> 1). A cell whose stored bit already matches
        // the flip destination cannot flip (again).
        if (storedOne != cell.trueCell)
            continue;
        injectScratch.clear();
        model->onCellTripped(bank, victimRow, cell, injectScratch);
        for (const FlipModel::Injection &inject : injectScratch) {
            PhysAddr target =
                map.compose({bank, victimRow, inject.byteInRow});
            bool wasOne = (mem.read8(target) >> inject.bitInByte) & 1;
            // A deferred (ECC-latent) cell whose word was rewritten
            // meanwhile had its charge restored; it can no longer
            // flip against its only possible direction.
            if (wasOne != inject.trueCell)
                continue;
            mem.flipBit(target, inject.bitInByte);
            pendingFlips.push_back(
                {target, inject.bitInByte, wasOne, bank, victimRow});
            ++flipsInjected;
        }
    }
}

std::vector<FlipEvent>
Dram::hammerBulk(unsigned bank,
                 const std::vector<std::uint64_t> &aggressorRows,
                 std::uint64_t actsPerWindow, std::uint64_t windowCount)
{
    pth_assert(bank < map.banks(), "bank out of range");
    std::vector<FlipEvent> flips;
    if (windowCount == 0 || actsPerWindow == 0)
        return flips;

    victimScratch.clear();
    model->bulkVictims(bank, aggressorRows, actsPerWindow, victimScratch);

    std::size_t before = pendingFlips.size();
    // The per-window disturbance is constant across windows, so a
    // cell either flips in the first whole window or never.
    for (const FlipModel::Victim &victim : victimScratch)
        applyDisturbance(bank, victim.row, victim.disturbance);
    flips.assign(pendingFlips.begin() +
                     static_cast<std::ptrdiff_t>(before),
                 pendingFlips.end());
    return flips;
}

std::vector<FlipEvent>
Dram::drainFlips()
{
    std::vector<FlipEvent> out;
    out.swap(pendingFlips);
    return out;
}

void
Dram::reset()
{
    for (BankState &bank : bankState) {
        bank.open = false;
        bank.openRow = 0;
    }
    model->reset();
    pendingFlips.clear();
    activations = 0;
    rowHits = 0;
    flipsInjected = 0;
}

} // namespace pth
