#include "dram/address_mapping.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace pth
{

AddressMapping::AddressMapping(const DramGeometry &geometry) : geom(geometry)
{
    pth_assert(isPow2(geom.banks) && isPow2(geom.rowBytes) &&
                   isPow2(geom.sizeBytes),
               "DRAM geometry must be power-of-two");
    pth_assert(geom.rowBytes >= kPageBytes,
               "bank rows must hold at least one 4 KiB frame");
    bankBits = log2i(geom.banks);
    rowOffsetBits = log2i(geom.rowBytes);
    rowShift = rowOffsetBits + bankBits;
    pth_assert(geom.rows() >= 4, "DRAM too small for its row stride");
}

DramLocation
AddressMapping::decompose(PhysAddr pa) const
{
    DramLocation loc;
    loc.column = bits(pa, rowOffsetBits - 1, 0);
    loc.row = pa >> rowShift;

    // DRAMA-style bank hash: each bank bit XORs a low tap with a row
    // bit well above the low row bits, so small row-index deltas
    // preserve the bank.
    std::uint64_t taps = bits(pa, rowShift - 1, rowOffsetBits);
    std::uint64_t rowXor = bits(loc.row, 5 + bankBits - 1, 5);
    loc.bank = static_cast<unsigned>(taps ^ rowXor) &
               static_cast<unsigned>(geom.banks - 1);
    return loc;
}

PhysAddr
AddressMapping::compose(const DramLocation &loc) const
{
    std::uint64_t rowXor = bits(loc.row, 5 + bankBits - 1, 5);
    std::uint64_t taps = (loc.bank ^ rowXor) & (geom.banks - 1);
    return (loc.row << rowShift) | (taps << rowOffsetBits) | loc.column;
}

std::vector<PhysFrame>
AddressMapping::framesInRow(unsigned bank, std::uint64_t row) const
{
    std::uint64_t framesPerRow = geom.framesPerRow();
    pth_assert(framesPerRow >= 1, "rows must hold at least one frame");
    std::vector<PhysFrame> frames(framesPerRow);
    for (std::uint64_t i = 0; i < framesPerRow; ++i) {
        DramLocation loc{bank, row, i * kPageBytes};
        frames[i] = compose(loc) >> kPageShift;
    }
    return frames;
}

} // namespace pth
