/**
 * @file
 * Physical-address to DRAM-location mapping.
 *
 * Models the reverse-engineered DRAMA-style mapping: the bank index is
 * an XOR of low "bank tap" bits with higher row bits, the row index is
 * the high bits, and the column is the low bits. The taps are chosen so
 * that (as on the paper's SandyBridge machines) two addresses 256 KiB
 * apart land in the same bank one row index apart — the property that
 * makes the 2 * RowsSize * 512 virtual stride select L1PTEs that
 * sandwich a victim row.
 */

#ifndef PTH_DRAM_ADDRESS_MAPPING_HH
#define PTH_DRAM_ADDRESS_MAPPING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/dram_config.hh"

namespace pth
{

/** Decomposed location of one physical address in DRAM. */
struct DramLocation
{
    unsigned bank = 0;          //!< global bank index
    std::uint64_t row = 0;      //!< row index within the bank
    std::uint64_t column = 0;   //!< byte offset within the row

    bool operator==(const DramLocation &other) const = default;
};

/** Bijective physical-address <-> (bank, row, column) mapping. */
class AddressMapping
{
  public:
    explicit AddressMapping(const DramGeometry &geometry);

    /** Decompose a physical address. */
    DramLocation decompose(PhysAddr pa) const;

    /** Recompose a physical address (inverse of decompose). */
    PhysAddr compose(const DramLocation &loc) const;

    /** Number of banks. */
    unsigned banks() const { return geom.banks; }

    /** Number of rows per bank. */
    std::uint64_t rowsPerBank() const { return geom.rows(); }

    /** Bytes per bank row. */
    std::uint64_t rowBytes() const { return geom.rowBytes; }

    /**
     * All physical frames stored in (bank, row) — rowBytes/4 KiB of
     * them (two for the default 8 KiB DDR3 rows).
     */
    std::vector<PhysFrame> framesInRow(unsigned bank,
                                       std::uint64_t row) const;

  private:
    DramGeometry geom;
    unsigned bankBits;       //!< log2(banks)
    unsigned rowOffsetBits;  //!< log2(rowBytes)
    unsigned rowShift;       //!< first row-index bit
};

} // namespace pth

#endif // PTH_DRAM_ADDRESS_MAPPING_HH
