/**
 * @file
 * DRAM device model: per-bank row buffers, access timing, and the
 * rowhammer disturbance engine.
 *
 * Disturbance accounting is delegated to a pluggable FlipModel (see
 * flip_model.hh): every activation is reported to the model, which
 * answers with the victim rows whose per-window disturbance must be
 * re-checked against their weak cells' thresholds; a tripped cell is
 * injected when the model's flip filter (ECC, ...) lets it through.
 * Flips land directly in the simulated physical memory, so corrupted
 * page-table entries are observed by the page-table walker with no
 * extra plumbing.
 */

#ifndef PTH_DRAM_DRAM_HH
#define PTH_DRAM_DRAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "dram/address_mapping.hh"
#include "dram/dram_config.hh"
#include "dram/flip_model.hh"

namespace pth
{

class PhysicalMemory;

/** A bit flip injected by the disturbance model. */
struct FlipEvent
{
    PhysAddr address;      //!< physical byte holding the flipped cell
    unsigned bitInByte;    //!< flipped bit position
    bool wasOne;           //!< value before the flip (true cell: 1 -> 0)
    unsigned bank;         //!< victim bank
    std::uint64_t row;     //!< victim row
};

/** Result of one DRAM access. */
struct DramAccessResult
{
    Cycles latency;   //!< access latency in CPU cycles
    bool rowHit;      //!< served from the open row buffer
    bool activated;   //!< caused a row activation
};

/** The DRAM device. */
class Dram
{
  public:
    /**
     * @param geometry Bank/row geometry.
     * @param timing Access latencies.
     * @param disturbance Rowhammer fault-model parameters; the flip
     *        model is instantiated from disturbance.flipModel.
     * @param memory Functional backing store receiving bit flips.
     */
    Dram(const DramGeometry &geometry, const DramTiming &timing,
         const DisturbanceConfig &disturbance, PhysicalMemory &memory);

    /**
     * Deep copy rewired to a new backing store (Machine snapshot/fork):
     * row-buffer state, the flip model (weak cells + window
     * accounting), pending flip events, and lifetime counters all
     * carry over. The scratch vectors start empty — they are cleared
     * at the top of every use, so this is not observable.
     */
    Dram(const Dram &other, PhysicalMemory &memory);

    /**
     * Access (read or write) the line containing pa at simulated time
     * now. Updates row buffers and disturbance counters and may inject
     * bit flips.
     */
    DramAccessResult access(PhysAddr pa, Cycles now);

    /**
     * Apply a long hammering run analytically (measure-then-extrapolate
     * fast path). Each aggressor row is activated actsPerWindow times
     * in each of windowCount refresh windows.
     *
     * @param bank Bank holding the aggressor rows.
     * @param aggressorRows Rows being hammered (1 or 2).
     * @param actsPerWindow Activations of each aggressor per window.
     * @param windowCount Number of whole refresh windows hammered.
     * @return Flips injected (at most once per weak cell).
     */
    std::vector<FlipEvent> hammerBulk(
        unsigned bank, const std::vector<std::uint64_t> &aggressorRows,
        std::uint64_t actsPerWindow, std::uint64_t windowCount);

    /** Address mapping in use. */
    const AddressMapping &mapping() const { return map; }

    /** Weak-cell map of the installed flip model. */
    const VulnerabilityModel &vulnerability() const
    {
        return model->vulnerability();
    }

    /** The installed flip model. */
    const FlipModel &flipModel() const { return *model; }

    /** Flips injected since the last drain. */
    std::vector<FlipEvent> drainFlips();

    /** Total flips injected over the device lifetime. */
    std::uint64_t totalFlips() const { return flipsInjected; }

    /** Total row activations. */
    std::uint64_t totalActivations() const { return activations; }

    /** Total row-buffer hits. */
    std::uint64_t totalRowHits() const { return rowHits; }

    /** Digest of device state — row buffers, pending flips, lifetime
     * counters — for snapshot audits (Machine::stateFingerprint). */
    std::uint64_t stateHash() const;

    /**
     * Reset the device between experiments: close row buffers, forget
     * the flip model's accounting state, drop pending flip events and
     * zero the lifetime counters, so nothing from before the reset is
     * drained into (or attributed to) the next experiment.
     */
    void reset();

  private:
    struct BankState
    {
        bool open = false;
        std::uint64_t openRow = 0;
    };

    /** Record an activation and run the model's disturbance check. */
    void activate(unsigned bank, std::uint64_t row, std::uint64_t epoch);

    /**
     * Flip every not-yet-flipped weak cell of the victim whose
     * threshold is within the given per-window disturbance (subject
     * to the model's flip filter).
     */
    void applyDisturbance(unsigned bank, std::uint64_t victimRow,
                          std::uint64_t disturbance);

    AddressMapping map;
    DramTiming timing;
    std::unique_ptr<FlipModel> model;
    PhysicalMemory &mem;

    std::vector<BankState> bankState;
    std::vector<FlipEvent> pendingFlips;
    Cycles refreshWindow;

    /** Per-call scratch, reused to keep the hot path allocation-free. */
    std::vector<FlipModel::Victim> victimScratch;
    std::vector<FlipModel::Injection> injectScratch;

    std::uint64_t activations = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t flipsInjected = 0;
};

} // namespace pth

#endif // PTH_DRAM_DRAM_HH
