/**
 * @file
 * DRAM device model: per-bank row buffers, access timing, and the
 * rowhammer disturbance engine.
 *
 * Disturbance accounting is refresh-window accurate: every activation
 * of a row adds one disturbance unit to its two neighbours, counters
 * reset when the refresh window rolls over, and a weak cell flips when
 * its per-window accumulated disturbance reaches its threshold while
 * the stored bit matches the cell orientation. Flips are injected
 * directly into the simulated physical memory, so corrupted page-table
 * entries are observed by the page-table walker with no extra plumbing.
 */

#ifndef PTH_DRAM_DRAM_HH
#define PTH_DRAM_DRAM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "dram/address_mapping.hh"
#include "dram/dram_config.hh"
#include "dram/vulnerability_model.hh"

namespace pth
{

class PhysicalMemory;

/** A bit flip injected by the disturbance model. */
struct FlipEvent
{
    PhysAddr address;      //!< physical byte holding the flipped cell
    unsigned bitInByte;    //!< flipped bit position
    bool wasOne;           //!< value before the flip (true cell: 1 -> 0)
    unsigned bank;         //!< victim bank
    std::uint64_t row;     //!< victim row
};

/** Result of one DRAM access. */
struct DramAccessResult
{
    Cycles latency;   //!< access latency in CPU cycles
    bool rowHit;      //!< served from the open row buffer
    bool activated;   //!< caused a row activation
};

/** The DRAM device. */
class Dram
{
  public:
    /**
     * @param geometry Bank/row geometry.
     * @param timing Access latencies.
     * @param disturbance Rowhammer fault-model parameters.
     * @param memory Functional backing store receiving bit flips.
     */
    Dram(const DramGeometry &geometry, const DramTiming &timing,
         const DisturbanceConfig &disturbance, PhysicalMemory &memory);

    /**
     * Access (read or write) the line containing pa at simulated time
     * now. Updates row buffers and disturbance counters and may inject
     * bit flips.
     */
    DramAccessResult access(PhysAddr pa, Cycles now);

    /**
     * Apply a long hammering run analytically (measure-then-extrapolate
     * fast path). Each aggressor row is activated actsPerWindow times
     * in each of windowCount refresh windows.
     *
     * @param bank Bank holding the aggressor rows.
     * @param aggressorRows Rows being hammered (1 or 2).
     * @param actsPerWindow Activations of each aggressor per window.
     * @param windowCount Number of whole refresh windows hammered.
     * @return Flips injected (at most once per weak cell).
     */
    std::vector<FlipEvent> hammerBulk(
        unsigned bank, const std::vector<std::uint64_t> &aggressorRows,
        std::uint64_t actsPerWindow, std::uint64_t windowCount);

    /** Address mapping in use. */
    const AddressMapping &mapping() const { return map; }

    /** Vulnerability model in use. */
    const VulnerabilityModel &vulnerability() const { return vuln; }

    /** Flips injected since the last drain. */
    std::vector<FlipEvent> drainFlips();

    /** Total flips injected over the device lifetime. */
    std::uint64_t totalFlips() const { return flipsInjected; }

    /** Total row activations. */
    std::uint64_t totalActivations() const { return activations; }

    /** Total row-buffer hits. */
    std::uint64_t totalRowHits() const { return rowHits; }

    /** Reset row buffers and disturbance counters (not flip history). */
    void reset();

  private:
    struct RowState
    {
        std::uint64_t epoch = 0;   //!< refresh window of the counter
        std::uint64_t acts = 0;    //!< activations in that window
    };

    struct BankState
    {
        bool open = false;
        std::uint64_t openRow = 0;
        std::unordered_map<std::uint64_t, RowState> rowActs;
    };

    /** Record an activation and run the neighbour disturbance check. */
    void activate(unsigned bank, std::uint64_t row, std::uint64_t epoch);

    /** Activations of (bank, row) within the given window. */
    std::uint64_t actsInWindow(unsigned bank, std::uint64_t row,
                               std::uint64_t epoch) const;

    /**
     * Flip every not-yet-flipped weak cell of the victim whose
     * threshold is within the given per-window disturbance.
     */
    void applyDisturbance(unsigned bank, std::uint64_t victimRow,
                          std::uint64_t disturbance);

    AddressMapping map;
    DramTiming timing;
    VulnerabilityModel vuln;
    PhysicalMemory &mem;

    std::vector<BankState> bankState;
    std::vector<FlipEvent> pendingFlips;
    Cycles refreshWindow;

    std::uint64_t activations = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t flipsInjected = 0;
};

} // namespace pth

#endif // PTH_DRAM_DRAM_HH
