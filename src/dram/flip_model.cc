#include "dram/flip_model.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"

namespace pth
{

const char *
flipModelKindName(FlipModelKind kind)
{
    switch (kind) {
    case FlipModelKind::Ddr3Seeded: return "ddr3";
    case FlipModelKind::Trr: return "trr";
    case FlipModelKind::Distance2: return "distance2";
    case FlipModelKind::Ecc: return "ecc";
    }
    return "unknown";
}

bool
parseFlipModelKind(const char *text, FlipModelKind &out)
{
    auto is = [text](const char *name) {
        return std::strcmp(text, name) == 0;
    };
    if (is("ddr3") || is("seeded") || is("default")) {
        out = FlipModelKind::Ddr3Seeded;
        return true;
    }
    if (is("trr") || is("ddr4") || is("ddr4-trr")) {
        out = FlipModelKind::Trr;
        return true;
    }
    if (is("distance2") || is("d2") || is("half-double")) {
        out = FlipModelKind::Distance2;
        return true;
    }
    if (is("ecc")) {
        out = FlipModelKind::Ecc;
        return true;
    }
    return false;
}

FlipModel::FlipModel(const DisturbanceConfig &config,
                     const DramGeometry &geometry)
    : vuln(config, geometry.rowBytes), rows(geometry.rows()),
      bankActs(geometry.banks)
{
}

void
FlipModel::recordActivation(unsigned bank, std::uint64_t row,
                            std::uint64_t epoch)
{
    RowState &rs = bankActs[bank][row];
    if (rs.epoch != epoch) {
        // Lazy refresh: the window rolled over, so the charge leaked
        // into the neighbours has been restored.
        rs.epoch = epoch;
        rs.acts = 0;
    }
    ++rs.acts;
}

std::uint64_t
FlipModel::actsInWindow(unsigned bank, std::uint64_t row,
                        std::uint64_t epoch) const
{
    if (row >= rows)
        return 0;
    const auto &acts = bankActs[bank];
    auto it = acts.find(row);
    if (it == acts.end() || it->second.epoch != epoch)
        return 0;
    return it->second.acts;
}

std::uint64_t
FlipModel::neighbourActs(unsigned bank, std::uint64_t row,
                         std::uint64_t epoch) const
{
    // row - 1 wraps for row 0; actsInWindow's range check returns 0.
    return actsInWindow(bank, row - 1, epoch) +
           (row + 1 < rows ? actsInWindow(bank, row + 1, epoch) : 0);
}

void
FlipModel::onActivate(unsigned bank, std::uint64_t row, std::uint64_t epoch,
                      std::vector<Victim> &victims)
{
    recordActivation(bank, row, epoch);

    // Disturb the two neighbouring rows. A victim's per-window
    // disturbance is the sum of its neighbours' activations.
    for (long long delta : {-1ll, +1ll}) {
        if (row == 0 && delta < 0)
            continue;
        std::uint64_t victim = row + static_cast<std::uint64_t>(delta);
        if (victim >= rows)
            continue;
        if (!vuln.rowIsWeak(bank, victim))
            continue;
        victims.push_back({victim, neighbourActs(bank, victim, epoch)});
    }
}

void
FlipModel::bulkVictims(unsigned /* bank */,
                       const std::vector<std::uint64_t> &aggressors,
                       std::uint64_t actsPerWindow,
                       std::vector<Victim> &victims) const
{
    // Candidate victims: every row adjacent to an aggressor, each
    // listed once (a victim sandwiched between two aggressors must not
    // run the threshold check twice per call).
    std::vector<std::uint64_t> candidates;
    auto push = [&candidates](std::uint64_t row) {
        if (std::find(candidates.begin(), candidates.end(), row) ==
            candidates.end())
            candidates.push_back(row);
    };
    for (std::uint64_t row : aggressors) {
        if (row > 0)
            push(row - 1);
        if (row + 1 < rows)
            push(row + 1);
    }

    for (std::uint64_t victim : candidates) {
        std::uint64_t adjacency = 0;
        for (std::uint64_t row : aggressors)
            if (row + 1 == victim || victim + 1 == row)
                ++adjacency;
        victims.push_back({victim, adjacency * actsPerWindow});
    }
}

void
FlipModel::onCellTripped(unsigned, std::uint64_t, const WeakCell &cell,
                         std::vector<Injection> &inject)
{
    inject.push_back({cell.byteInRow, cell.bitInByte, cell.trueCell});
}

void
FlipModel::reset()
{
    for (auto &acts : bankActs)
        acts.clear();
}

std::uint64_t
FlipModel::stateHash() const
{
    std::uint64_t h = hashCombine(0xf11b, rows);
    for (std::size_t bank = 0; bank < bankActs.size(); ++bank) {
        // determinism: commutative fold — iteration order of the
        // unordered map cannot affect the sum.
        std::uint64_t fold = 0;
        for (const auto &[row, rs] : bankActs[bank])
            fold += mix64(hashCombine(row, rs.epoch, rs.acts));
        h = hashCombine(h, bank, fold);
    }
    return h;
}

// --- TRR -------------------------------------------------------------

TrrFlipModel::TrrFlipModel(const DisturbanceConfig &config,
                           const DramGeometry &geometry)
    : FlipModel(config, geometry), trackers(geometry.banks),
      refreshed(geometry.banks)
{
    pth_assert(cfg().trrTrackerEntries >= 1, "TRR tracker needs entries");
}

std::uint64_t
TrrFlipModel::refreshThreshold() const
{
    if (cfg().trrRefreshThreshold != 0)
        return cfg().trrRefreshThreshold;
    return std::max<std::uint64_t>(1, cfg().thresholdMin / 8);
}

bool
TrrFlipModel::sample(unsigned bank, std::uint64_t row, std::uint64_t epoch)
{
    BankTracker &tracker = trackers[bank];
    if (tracker.epoch != epoch) {
        // The refresh window restored every row; start sampling anew.
        tracker.epoch = epoch;
        tracker.entries.clear();
    }

    for (TrackerEntry &entry : tracker.entries) {
        if (entry.row != row)
            continue;
        if (++entry.count >= refreshThreshold()) {
            entry.count = 0;  // the aggressor was serviced
            return true;
        }
        return false;
    }
    if (tracker.entries.size() < cfg().trrTrackerEntries) {
        tracker.entries.push_back({row, 1});
        return false;
    }

    // Tracker full and the row is not in it: Misra-Gries decrement.
    // Many-sided patterns keep every count near zero, which is
    // exactly the blind spot that defeats real TRR samplers.
    for (std::size_t i = tracker.entries.size(); i-- > 0;) {
        TrackerEntry &entry = tracker.entries[i];
        if (entry.count > 0)
            --entry.count;
        if (entry.count == 0)
            tracker.entries.erase(tracker.entries.begin() +
                                  static_cast<std::ptrdiff_t>(i));
    }
    return false;
}

std::uint64_t
TrrFlipModel::netDisturbance(unsigned bank, std::uint64_t victim,
                             std::uint64_t epoch) const
{
    std::uint64_t sum = neighbourActs(bank, victim, epoch);
    auto it = refreshed[bank].find(victim);
    if (it == refreshed[bank].end() || it->second.epoch != epoch)
        return sum;
    return sum > it->second.sum ? sum - it->second.sum : 0;
}

void
TrrFlipModel::onActivate(unsigned bank, std::uint64_t row,
                         std::uint64_t epoch, std::vector<Victim> &victims)
{
    recordActivation(bank, row, epoch);

    if (sample(bank, row, epoch)) {
        // Targeted refresh: restore the charge of both neighbours by
        // remembering how much disturbance has been neutralized.
        for (long long delta : {-1ll, +1ll}) {
            if (row == 0 && delta < 0)
                continue;
            std::uint64_t victim = row + static_cast<std::uint64_t>(delta);
            if (victim >= rowsPerBank())
                continue;
            refreshed[bank][victim] = {epoch,
                                       neighbourActs(bank, victim, epoch)};
        }
    }

    for (long long delta : {-1ll, +1ll}) {
        if (row == 0 && delta < 0)
            continue;
        std::uint64_t victim = row + static_cast<std::uint64_t>(delta);
        if (victim >= rowsPerBank())
            continue;
        if (!vuln.rowIsWeak(bank, victim))
            continue;
        victims.push_back({victim, netDisturbance(bank, victim, epoch)});
    }
}

void
TrrFlipModel::bulkVictims(unsigned bank,
                          const std::vector<std::uint64_t> &aggressors,
                          std::uint64_t actsPerWindow,
                          std::vector<Victim> &victims) const
{
    const std::size_t first = victims.size();
    FlipModel::bulkVictims(bank, aggressors, actsPerWindow, victims);

    std::vector<std::uint64_t> distinct;
    for (std::uint64_t row : aggressors)
        if (std::find(distinct.begin(), distinct.end(), row) ==
            distinct.end())
            distinct.push_back(row);

    // With at most trackerEntries distinct aggressors the sampler sees
    // them all (Misra-Gries finds every row whose share exceeds
    // 1/(K+1)), so each aggressor is serviced every refreshThreshold()
    // activations: between two targeted refreshes a victim accumulates
    // at most adjacency * threshold. More aggressors than entries keep
    // every count near zero — no refresh fires and the full
    // disturbance lands, which is why many-sided patterns are needed.
    if (distinct.size() > cfg().trrTrackerEntries)
        return;
    std::uint64_t cap = refreshThreshold();
    for (std::size_t i = first; i < victims.size(); ++i) {
        Victim &victim = victims[i];
        std::uint64_t adjacency =
            actsPerWindow ? victim.disturbance / actsPerWindow : 0;
        victim.disturbance =
            std::min(victim.disturbance, adjacency * cap);
    }
}

std::uint64_t
TrrFlipModel::stateHash() const
{
    std::uint64_t h = hashCombine(FlipModel::stateHash(), 0x77f);
    for (const BankTracker &tracker : trackers) {
        h = hashCombine(h, tracker.epoch, tracker.entries.size());
        for (const TrackerEntry &entry : tracker.entries)
            h = hashCombine(h, entry.row, entry.count);
    }
    for (const auto &bank : refreshed) {
        // determinism: commutative fold — iteration order of the
        // unordered map cannot affect the sum.
        std::uint64_t fold = 0;
        for (const auto &[row, baseline] : bank)
            fold += mix64(hashCombine(row, baseline.epoch, baseline.sum));
        h = hashCombine(h, fold);
    }
    return h;
}

void
TrrFlipModel::reset()
{
    FlipModel::reset();
    for (BankTracker &tracker : trackers) {
        tracker.epoch = 0;
        tracker.entries.clear();
    }
    for (auto &bank : refreshed)
        bank.clear();
}

// --- Distance-2 ------------------------------------------------------

Distance2FlipModel::Distance2FlipModel(const DisturbanceConfig &config,
                                       const DramGeometry &geometry)
    : FlipModel(config, geometry)
{
    pth_assert(cfg().distance2Divisor >= 1, "bad distance-2 divisor");
}

void
Distance2FlipModel::onActivate(unsigned bank, std::uint64_t row,
                               std::uint64_t epoch,
                               std::vector<Victim> &victims)
{
    recordActivation(bank, row, epoch);

    for (long long delta : {-2ll, -1ll, +1ll, +2ll}) {
        if (delta < 0 && row < static_cast<std::uint64_t>(-delta))
            continue;
        std::uint64_t victim = row + static_cast<std::uint64_t>(delta);
        if (victim >= rowsPerBank())
            continue;
        if (!vuln.rowIsWeak(bank, victim))
            continue;
        std::uint64_t far =
            actsInWindow(bank, victim - 2, epoch) +
            (victim + 2 < rowsPerBank()
                 ? actsInWindow(bank, victim + 2, epoch)
                 : 0);
        victims.push_back({victim, neighbourActs(bank, victim, epoch) +
                                       far / cfg().distance2Divisor});
    }
}

void
Distance2FlipModel::bulkVictims(unsigned /* bank */,
                                const std::vector<std::uint64_t> &aggressors,
                                std::uint64_t actsPerWindow,
                                std::vector<Victim> &victims) const
{
    std::vector<std::uint64_t> candidates;
    auto push = [&candidates, this](std::uint64_t row) {
        if (row < rowsPerBank() &&
            std::find(candidates.begin(), candidates.end(), row) ==
                candidates.end())
            candidates.push_back(row);
    };
    for (std::uint64_t row : aggressors) {
        if (row >= 2)
            push(row - 2);
        if (row >= 1)
            push(row - 1);
        push(row + 1);
        push(row + 2);
    }

    for (std::uint64_t victim : candidates) {
        std::uint64_t near = 0;
        std::uint64_t far = 0;
        for (std::uint64_t row : aggressors) {
            if (row + 1 == victim || victim + 1 == row)
                ++near;
            else if (row + 2 == victim || victim + 2 == row)
                ++far;
        }
        victims.push_back({victim,
                           near * actsPerWindow +
                               far * actsPerWindow / cfg().distance2Divisor});
    }
}

// --- ECC -------------------------------------------------------------

EccFlipModel::EccFlipModel(const DisturbanceConfig &config,
                           const DramGeometry &geometry)
    : FlipModel(config, geometry), words(geometry.banks)
{
    pth_assert(cfg().eccCodewordBytes >= 1 &&
                   cfg().eccCodewordBytes <= geometry.rowBytes,
               "bad ECC codeword size");
    // Ceil: a partial tail word must not alias the next row's words.
    wordsPerRow = (geometry.rowBytes + cfg().eccCodewordBytes - 1) /
                  cfg().eccCodewordBytes;
}

void
EccFlipModel::onCellTripped(unsigned bank, std::uint64_t row,
                            const WeakCell &cell,
                            std::vector<Injection> &inject)
{
    std::uint64_t key =
        row * wordsPerRow + cell.byteInRow / cfg().eccCodewordBytes;
    Codeword &word = words[bank][key];
    if (word.uncorrectable) {
        // The word already carries two errors; correction is gone and
        // every further tripped cell lands directly.
        inject.push_back({cell.byteInRow, cell.bitInByte, cell.trueCell});
        return;
    }
    for (const Injection &latent : word.latent)
        if (latent.byteInRow == cell.byteInRow &&
            latent.bitInByte == cell.bitInByte)
            return;  // still latent from an earlier window
    word.latent.push_back({cell.byteInRow, cell.bitInByte, cell.trueCell});
    if (word.latent.size() < 2)
        return;  // a single flipped cell per word is corrected on read
    inject.insert(inject.end(), word.latent.begin(), word.latent.end());
    word.latent.clear();
    word.uncorrectable = true;
}

std::uint64_t
EccFlipModel::stateHash() const
{
    std::uint64_t h = hashCombine(FlipModel::stateHash(), 0xecc);
    for (const auto &bank : words) {
        // determinism: commutative fold — iteration order of the
        // unordered map cannot affect the sum.
        std::uint64_t fold = 0;
        for (const auto &[key, word] : bank) {
            std::uint64_t w = hashCombine(key, word.uncorrectable);
            for (const Injection &cell : word.latent)
                w = hashCombine(w, cell.byteInRow, cell.bitInByte,
                                cell.trueCell);
            fold += mix64(w);
        }
        h = hashCombine(h, fold);
    }
    return h;
}

void
EccFlipModel::reset()
{
    FlipModel::reset();
    for (auto &bank : words)
        bank.clear();
}

std::unique_ptr<FlipModel>
makeFlipModel(const DisturbanceConfig &config, const DramGeometry &geometry)
{
    switch (config.flipModel) {
    case FlipModelKind::Ddr3Seeded:
        return std::make_unique<Ddr3FlipModel>(config, geometry);
    case FlipModelKind::Trr:
        return std::make_unique<TrrFlipModel>(config, geometry);
    case FlipModelKind::Distance2:
        return std::make_unique<Distance2FlipModel>(config, geometry);
    case FlipModelKind::Ecc:
        return std::make_unique<EccFlipModel>(config, geometry);
    }
    return std::make_unique<Ddr3FlipModel>(config, geometry);
}

} // namespace pth
