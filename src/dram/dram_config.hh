/**
 * @file
 * DRAM geometry, timing and disturbance (rowhammer) configuration.
 */

#ifndef PTH_DRAM_DRAM_CONFIG_HH
#define PTH_DRAM_DRAM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pth
{

/**
 * Geometry of the simulated memory system.
 *
 * The default mirrors the paper's test machines: 8 GiB DDR3 as
 * 2 DIMMs x 2 ranks x 8 banks = 32 banks, 8 KiB per bank row, so one
 * "row index" spans 32 x 8 KiB = 256 KiB of physical address space —
 * the RowsSize the paper exploits for pair selection.
 */
struct DramGeometry
{
    std::uint64_t sizeBytes = 8ull * 1024 * 1024 * 1024;
    unsigned banks = 32;            //!< total banks across DIMMs/ranks
    std::uint64_t rowBytes = 8192;  //!< bytes per row within one bank

    /** Physical-address bytes covered by one row index across banks. */
    std::uint64_t rowIndexStride() const { return rowBytes * banks; }

    /** Number of row indices. */
    std::uint64_t rows() const { return sizeBytes / rowIndexStride(); }

    /** 4 KiB frames per bank row. */
    std::uint64_t framesPerRow() const { return rowBytes / kPageBytes; }
};

/** Field-wise equality (campaign snapshot-sharing detection). */
inline bool
operator==(const DramGeometry &a, const DramGeometry &b)
{
    return a.sizeBytes == b.sizeBytes && a.banks == b.banks &&
           a.rowBytes == b.rowBytes;
}

inline bool
operator!=(const DramGeometry &a, const DramGeometry &b)
{
    return !(a == b);
}

/** DRAM access timing in CPU cycles. */
struct DramTiming
{
    Cycles rowHit = 165;      //!< row-buffer hit (CAS only)
    Cycles rowClosed = 215;   //!< bank precharged: activate + CAS
    Cycles rowConflict = 315; //!< row-buffer conflict: precharge+act+CAS
};

inline bool
operator==(const DramTiming &a, const DramTiming &b)
{
    return a.rowHit == b.rowHit && a.rowClosed == b.rowClosed &&
           a.rowConflict == b.rowConflict;
}

inline bool
operator!=(const DramTiming &a, const DramTiming &b)
{
    return !(a == b);
}

/**
 * Which flip/threshold model the DRAM drives (see dram/flip_model.hh).
 *
 * All models share the seeded weak-cell map; they differ in how
 * activations turn into per-victim disturbance and in which tripped
 * cells actually surface as flips.
 */
enum class FlipModelKind
{
    Ddr3Seeded,  //!< the paper's DDR3 machines: distance-1 disturbance
    Trr,         //!< DDR4-style target-row-refresh sampler mitigation
    Distance2,   //!< "half-double"-style: attenuated disturbance at row±2
    Ecc,         //!< DDR3 accounting behind single-error-correcting ECC
};

/**
 * Rowhammer disturbance parameters.
 *
 * A victim row accumulates one disturbance unit per activation of an
 * adjacent row; the counter resets every refresh window. A weak cell
 * flips when the per-window accumulation reaches its threshold and the
 * stored bit matches the cell orientation (true cell: 1 -> 0 only).
 */
struct DisturbanceConfig
{
    /** Refresh window length in CPU cycles (64 ms at the core clock). */
    Cycles refreshWindowCycles = 166'400'000;

    /** Probability that a row contains at least one weak cell. */
    double weakRowProbability = 0.012;

    /** Weak cells within a weak row (1..maxWeakCellsPerRow). */
    unsigned maxWeakCellsPerRow = 3;

    /** Minimum per-window disturbance needed by the weakest cells. */
    std::uint64_t thresholdMin = 222'000;

    /** Threshold of the strongest weak cells (uniform in [min,max]). */
    std::uint64_t thresholdMax = 310'000;

    /** Fraction of weak cells that are true cells (1 -> 0). */
    double trueCellFraction = 0.55;

    /** Deterministic seed for weak-cell placement. */
    std::uint64_t seed = 0x9a70e5;

    /** Flip model the DRAM instantiates. */
    FlipModelKind flipModel = FlipModelKind::Ddr3Seeded;

    /** Trr: sampler entries per bank (aggressors trackable at once). */
    unsigned trrTrackerEntries = 4;

    /**
     * Trr: tracked-row activations before its neighbours get a
     * targeted refresh. 0 = auto (thresholdMin / 8), which suppresses
     * any pattern the sampler can see regardless of cell thresholds.
     */
    std::uint64_t trrRefreshThreshold = 0;

    /** Distance2: attenuation divisor for aggressors two rows away. */
    std::uint64_t distance2Divisor = 4;

    /** Ecc: codeword size; one flipped cell per word is corrected. */
    std::uint64_t eccCodewordBytes = 8;
};

inline bool
operator==(const DisturbanceConfig &a, const DisturbanceConfig &b)
{
    return a.refreshWindowCycles == b.refreshWindowCycles &&
           a.weakRowProbability == b.weakRowProbability &&
           a.maxWeakCellsPerRow == b.maxWeakCellsPerRow &&
           a.thresholdMin == b.thresholdMin &&
           a.thresholdMax == b.thresholdMax &&
           a.trueCellFraction == b.trueCellFraction &&
           a.seed == b.seed && a.flipModel == b.flipModel &&
           a.trrTrackerEntries == b.trrTrackerEntries &&
           a.trrRefreshThreshold == b.trrRefreshThreshold &&
           a.distance2Divisor == b.distance2Divisor &&
           a.eccCodewordBytes == b.eccCodewordBytes;
}

inline bool
operator!=(const DisturbanceConfig &a, const DisturbanceConfig &b)
{
    return !(a == b);
}

} // namespace pth

#endif // PTH_DRAM_DRAM_CONFIG_HH
