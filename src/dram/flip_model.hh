/**
 * @file
 * The pluggable DRAM flip/threshold-model interface.
 *
 * A FlipModel owns everything the Dram device delegates about
 * disturbance errors: the seeded weak-cell map, the per-refresh-window
 * activation accounting that turns aggressor activations into
 * per-victim disturbance, and the decision of whether a tripped cell
 * actually surfaces as a flip. Dram drives it through virtual
 * dispatch, so non-DDR3 devices (TRR-mitigated DDR4, half-double-style
 * distance-2 parts, ECC DIMMs) are campaign scenarios instead of
 * forks of the device model.
 *
 * Implementations shipped here:
 *  - Ddr3FlipModel  : the paper's machines; distance-1 disturbance,
 *    byte-identical to the pre-interface Dram under the default
 *    configuration (pinned by tests/test_dram.cpp).
 *  - TrrFlipModel   : a DDR4-style in-DRAM sampler tracks the top-K
 *    most-activated rows per bank (Misra-Gries) and targeted-refreshes
 *    their neighbours, so double-sided pairs stop flipping while
 *    many-sided patterns (more aggressors than tracker entries) still
 *    land.
 *  - Distance2FlipModel : far aggressors contribute attenuated
 *    disturbance two rows away (1/distance2Divisor per activation).
 *  - EccFlipModel   : DDR3 accounting behind a single-error-correcting
 *    code; a flip surfaces only when a second cell of the same
 *    codeword trips.
 */

#ifndef PTH_DRAM_FLIP_MODEL_HH
#define PTH_DRAM_FLIP_MODEL_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dram/dram_config.hh"
#include "dram/vulnerability_model.hh"

namespace pth
{

/** Canonical CLI/report name of a model kind ("ddr3", "trr", ...). */
const char *flipModelKindName(FlipModelKind kind);

/**
 * Parse a model name (canonical names plus the aliases documented in
 * BenchCli --help). Returns false without touching out on failure.
 */
bool parseFlipModelKind(const char *text, FlipModelKind &out);

/** Abstract flip/threshold model driven by Dram. */
class FlipModel
{
  public:
    /** A victim row whose accumulated disturbance must be re-checked
     * against its weak cells' thresholds. */
    struct Victim
    {
        std::uint64_t row;
        std::uint64_t disturbance;
    };

    /** One cell to inject into physical memory now. */
    struct Injection
    {
        std::uint64_t byteInRow;
        unsigned bitInByte;
        /** Orientation, re-checked at injection time: a deferred cell
         * whose word was rewritten meanwhile had its charge restored
         * and must not flip against its only possible direction. */
        bool trueCell;
    };

    FlipModel(const DisturbanceConfig &config,
              const DramGeometry &geometry);
    virtual ~FlipModel() = default;

    /** The model's kind (folded into campaign spec keys). */
    virtual FlipModelKind kind() const = 0;

    /** Canonical name, for reports and logs. */
    const char *name() const { return flipModelKindName(kind()); }

    /** The shared seeded weak-cell map. */
    const VulnerabilityModel &vulnerability() const { return vuln; }

    /**
     * Record one activation of (bank, row) in refresh window epoch and
     * append the victims whose disturbance changed (already screened
     * to weak rows). The default implements distance-1 accounting: a
     * victim's disturbance is the sum of its two neighbours'
     * activations in the current window.
     */
    virtual void onActivate(unsigned bank, std::uint64_t row,
                            std::uint64_t epoch,
                            std::vector<Victim> &victims);

    /**
     * Victims of an analytic constant-rate hammer: every aggressor row
     * activated actsPerWindow times per refresh window. Stateless —
     * the bulk path models whole steady-state windows, not the live
     * counters. Victims are deduplicated (first-occurrence order).
     */
    virtual void bulkVictims(unsigned bank,
                             const std::vector<std::uint64_t> &aggressors,
                             std::uint64_t actsPerWindow,
                             std::vector<Victim> &victims) const;

    /**
     * A weak cell crossed its threshold while its stored bit matched
     * the flip orientation. Append the cells to actually flip now; the
     * default injects the tripped cell itself. EccFlipModel defers
     * until a codeword holds two tripped cells (single errors are
     * corrected on read).
     */
    virtual void onCellTripped(unsigned bank, std::uint64_t row,
                               const WeakCell &cell,
                               std::vector<Injection> &inject);

    /** Forget all accounting state (device reset between experiments). */
    virtual void reset();

    /**
     * Deep copy — weak-cell map, window accounting, and any
     * model-specific state (TRR trackers, ECC latent cells) — so a
     * snapshot clone trips and injects the same cells at the same
     * accesses (Machine snapshot/fork support).
     */
    virtual std::unique_ptr<FlipModel> clone() const = 0;

    /**
     * Digest of the mutable accounting state — the per-window
     * activation counters plus any model-specific bookkeeping
     * (TrrFlipModel's trackers and refresh baselines, EccFlipModel's
     * latent cells). Folded into Dram::stateHash so equal machine
     * fingerprints also pin future flip behaviour: without it, a
     * half-filled refresh window or a corrected-but-latent ECC error
     * was invisible to snapshot audits.
     */
    virtual std::uint64_t stateHash() const;

  protected:
    /** Bump (bank, row)'s activation counter for the window. */
    void recordActivation(unsigned bank, std::uint64_t row,
                          std::uint64_t epoch);

    /** Activations of (bank, row) within the given window (0 when the
     * row is out of range or its counter belongs to an older window). */
    std::uint64_t actsInWindow(unsigned bank, std::uint64_t row,
                               std::uint64_t epoch) const;

    /** Sum of both neighbours' activations in the window. */
    std::uint64_t neighbourActs(unsigned bank, std::uint64_t row,
                                std::uint64_t epoch) const;

    std::uint64_t rowsPerBank() const { return rows; }

    /** The configured parameters (stored once, inside the cell map). */
    const DisturbanceConfig &cfg() const { return vuln.config(); }

    VulnerabilityModel vuln;

  private:
    struct RowState
    {
        std::uint64_t epoch = 0;
        std::uint64_t acts = 0;
    };

    std::uint64_t rows;
    std::vector<std::unordered_map<std::uint64_t, RowState>> bankActs;
};

/** The seeded DDR3 model of the paper's machines (the default). */
class Ddr3FlipModel : public FlipModel
{
  public:
    using FlipModel::FlipModel;
    FlipModelKind kind() const override { return FlipModelKind::Ddr3Seeded; }

    std::unique_ptr<FlipModel> clone() const override
    {
        return std::make_unique<Ddr3FlipModel>(*this);
    }
};

/** DDR4-style target-row-refresh mitigation over DDR3 accounting. */
class TrrFlipModel : public FlipModel
{
  public:
    TrrFlipModel(const DisturbanceConfig &config,
                 const DramGeometry &geometry);

    FlipModelKind kind() const override { return FlipModelKind::Trr; }

    void onActivate(unsigned bank, std::uint64_t row, std::uint64_t epoch,
                    std::vector<Victim> &victims) override;
    void bulkVictims(unsigned bank,
                     const std::vector<std::uint64_t> &aggressors,
                     std::uint64_t actsPerWindow,
                     std::vector<Victim> &victims) const override;
    void reset() override;
    std::uint64_t stateHash() const override;

    std::unique_ptr<FlipModel> clone() const override
    {
        return std::make_unique<TrrFlipModel>(*this);
    }

    /** Effective refresh threshold (resolves the 0 = auto default). */
    std::uint64_t refreshThreshold() const;

  private:
    struct TrackerEntry
    {
        std::uint64_t row;
        std::uint64_t count;
    };

    struct BankTracker
    {
        std::uint64_t epoch = 0;
        std::vector<TrackerEntry> entries;
    };

    /** Disturbance already neutralized by targeted refreshes. */
    struct RefreshBaseline
    {
        std::uint64_t epoch = 0;
        std::uint64_t sum = 0;
    };

    /** Misra-Gries sampler step; true when (bank, row) just earned a
     * targeted refresh of its neighbours. */
    bool sample(unsigned bank, std::uint64_t row, std::uint64_t epoch);

    /** Victim disturbance net of its last targeted refresh. */
    std::uint64_t netDisturbance(unsigned bank, std::uint64_t victim,
                                 std::uint64_t epoch) const;

    std::vector<BankTracker> trackers;
    std::vector<std::unordered_map<std::uint64_t, RefreshBaseline>>
        refreshed;
};

/** Half-double-style model: distance-2 aggressors disturb too. */
class Distance2FlipModel : public FlipModel
{
  public:
    Distance2FlipModel(const DisturbanceConfig &config,
                       const DramGeometry &geometry);

    FlipModelKind kind() const override { return FlipModelKind::Distance2; }

    void onActivate(unsigned bank, std::uint64_t row, std::uint64_t epoch,
                    std::vector<Victim> &victims) override;
    void bulkVictims(unsigned bank,
                     const std::vector<std::uint64_t> &aggressors,
                     std::uint64_t actsPerWindow,
                     std::vector<Victim> &victims) const override;

    std::unique_ptr<FlipModel> clone() const override
    {
        return std::make_unique<Distance2FlipModel>(*this);
    }
};

/** DDR3 accounting behind a single-error-correcting ECC word. */
class EccFlipModel : public FlipModel
{
  public:
    EccFlipModel(const DisturbanceConfig &config,
                 const DramGeometry &geometry);

    FlipModelKind kind() const override { return FlipModelKind::Ecc; }

    void onCellTripped(unsigned bank, std::uint64_t row,
                       const WeakCell &cell,
                       std::vector<Injection> &inject) override;
    void reset() override;
    std::uint64_t stateHash() const override;

    std::unique_ptr<FlipModel> clone() const override
    {
        return std::make_unique<EccFlipModel>(*this);
    }

  private:
    /** Tripped-but-corrected cells of one codeword. */
    struct Codeword
    {
        std::vector<Injection> latent;
        bool uncorrectable = false;
    };

    std::uint64_t wordsPerRow;
    std::vector<std::unordered_map<std::uint64_t, Codeword>> words;
};

/** Factory keyed on config.flipModel. */
std::unique_ptr<FlipModel> makeFlipModel(const DisturbanceConfig &config,
                                         const DramGeometry &geometry);

} // namespace pth

#endif // PTH_DRAM_FLIP_MODEL_HH
