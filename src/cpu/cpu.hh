/**
 * @file
 * The execution engine an (attacker) program runs on: timed loads
 * through MMU + caches + DRAM, clflush, NOP padding and rdtsc, plus
 * functional user-space reads/writes that honour (possibly corrupted)
 * page tables.
 */

#ifndef PTH_CPU_CPU_HH
#define PTH_CPU_CPU_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "cpu/machine_config.hh"
#include "kernel/kernel.hh"

namespace pth
{

class Mmu;
class CacheHierarchy;
class PhysicalMemory;

/** Outcome of one timed access. */
struct AccessOutcome
{
    bool ok = false;          //!< translation succeeded
    Cycles latency = 0;
    PhysAddr pa = 0;
    bool causedWalk = false;
    bool l1pteFromDram = false;  //!< walk fetched the leaf PTE from DRAM
};

/** The CPU front end. */
class Cpu
{
  public:
    /** @param hart Hart this front end executes on; timed accesses go
     * through that hart's private L1. */
    Cpu(const MachineConfig &config, Clock &clock, Mmu &mmu,
        CacheHierarchy &caches, PhysicalMemory &memory,
        unsigned hart = 0);

    /** Hart index this CPU executes on. */
    unsigned hart() const { return hartIndex; }

    /** Context switch: install a process's address space. */
    void setProcess(Process &proc);

    /** Currently running process. */
    Process &process();

    /** Running process, or null before the first setProcess. */
    const Process *currentOrNull() const { return current; }

    /**
     * Reinstall a process without the context-switch side effects
     * (clock charge, TLB/PSC flush). Machine's copy constructor uses
     * this to point the cloned CPU at the cloned process: the copied
     * MMU state *is* the pre-snapshot state, so flushing it would
     * break byte-identical replay.
     */
    void restoreProcess(Process &proc) { current = &proc; }

    /** Timed load/store of the line at va. Advances the clock. */
    AccessOutcome access(VirtAddr va, bool write = false);

    /**
     * Timed streaming access to many addresses with memory-level
     * parallelism: latencies overlap by the configured factor. Used
     * for eviction-set traversals, matching the paper's 600-1400-cycle
     * hammer iterations that an additive in-order model cannot hit.
     *
     * @return Total cycles charged.
     */
    Cycles accessBatch(const std::vector<VirtAddr> &vas);

    /** Timed clflush of the line at va (translates first). */
    void clflush(VirtAddr va);

    /** Execute n NOPs. */
    void nops(std::uint64_t n);

    /** Read the cycle counter (charges rdtsc cost). */
    Cycles rdtsc();

    /** Current simulated time without charging anything. */
    Cycles now() const;

    /**
     * Functional (untimed) user-space read through the current page
     * tables; reflects rowhammer-corrupted translations.
     * @return false when va is unmapped.
     */
    bool readUser64(VirtAddr va, std::uint64_t &value) const;

    /** Functional user-space write through the current page tables. */
    bool writeUser64(VirtAddr va, std::uint64_t value);

    /** The MMU (for the attack's set-mapping computations). */
    Mmu &mmu() { return mmuRef; }

  private:
    const MachineConfig &cfg;
    Clock &clk;
    Mmu &mmuRef;
    CacheHierarchy &caches;
    PhysicalMemory &mem;
    unsigned hartIndex;
    Process *current = nullptr;
};

} // namespace pth

#endif // PTH_CPU_CPU_HH
