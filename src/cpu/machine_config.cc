#include "cpu/machine_config.hh"

#include "common/random.hh"
#include "dram/flip_model.hh"

namespace pth
{

namespace
{

/** Shared 8 GiB DDR3 layout (Table I: all machines have 8 GiB). */
DramGeometry
paperDram()
{
    DramGeometry g;
    g.sizeBytes = 8ull * 1024 * 1024 * 1024;
    g.banks = 32;
    g.rowBytes = 8192;
    return g;
}

/** Common TLB: 4-way 64-entry L1 dTLB, 4-way 512-entry L2 sTLB. */
TlbConfig
paperTlb(std::uint64_t seed)
{
    TlbConfig t;
    // NRU replacement: the paper observes the TLB is "not true LRU",
    // which is what pushes the minimal eviction set past the
    // associativity (Figure 3).
    t.l1d = {16, 4, ReplacementKind::Aging, mix64(seed ^ 0x11d)};
    t.l2s = {128, 4, ReplacementKind::Aging, mix64(seed ^ 0x125)};
    t.l2HitLatency = 7;
    return t;
}

} // namespace

MachineConfig
MachineConfig::lenovoT420()
{
    MachineConfig m;
    m.name = "Lenovo T420";
    m.architecture = "SandyBridge";
    m.cpuModel = "i5-2540M";
    m.dramModel = "8 GiB Samsung DDR3";
    m.ghz = 2.6;
    m.dramGeometry = paperDram();
    m.dramTiming = {110, 155, 210};
    m.disturbance.refreshWindowCycles = m.cycles(0.064);
    m.disturbance.weakRowProbability = 0.012;
    m.disturbance.thresholdMin = 218'000;
    m.disturbance.thresholdMax = 300'000;
    m.disturbance.seed = 0x7420;
    m.caches.l1d = {64, 8, 1, 4, ReplacementKind::Lru};
    // L2/LLC use tree pseudo-LRU: real SandyBridge LLCs are not true
    // LRU, which is why a cycling 13-line eviction set is mostly
    // cache-served while still displacing the victim PTE (Section IV-E
    // observes exactly this).
    m.caches.l2 = {512, 8, 1, 12, ReplacementKind::TreePlru};
    m.caches.llc = {2048, 12, 2, 30, ReplacementKind::TreePlru};
    m.tlb = paperTlb(0x7420);
    m.kernel.pageFaultCycles = 6200;
    m.kernel.seed = 0x7420b007;
    m.batchOverlap = 16.0;
    return m;
}

MachineConfig
MachineConfig::lenovoX230()
{
    MachineConfig m = lenovoT420();
    m.name = "Lenovo X230";
    m.architecture = "IvyBridge";
    m.cpuModel = "i5-3230M";
    m.ghz = 2.6;
    m.dramTiming = {105, 150, 205};
    m.disturbance.refreshWindowCycles = m.cycles(0.064);
    m.disturbance.seed = 0x2230;
    m.tlb = paperTlb(0x2230);
    m.kernel.pageFaultCycles = 3950;
    m.kernel.seed = 0x2230b007;
    m.batchOverlap = 16.5;
    return m;
}

MachineConfig
MachineConfig::dellE6420()
{
    MachineConfig m;
    m.name = "Dell E6420";
    m.architecture = "SandyBridge";
    m.cpuModel = "i7-2640M";
    m.dramModel = "8 GiB Samsung DDR3";
    m.ghz = 2.8;
    m.dramGeometry = paperDram();
    m.dramTiming = {125, 175, 240};
    m.disturbance.refreshWindowCycles = m.cycles(0.064);
    m.disturbance.weakRowProbability = 0.012;
    m.disturbance.thresholdMin = 224'000;
    m.disturbance.thresholdMax = 310'000;
    m.disturbance.seed = 0x6420;
    m.caches.l1d = {64, 8, 1, 4, ReplacementKind::Lru};
    m.caches.l2 = {512, 8, 1, 14, ReplacementKind::TreePlru};
    // 16-way 4 MiB LLC, slower than the Lenovos' 3 MiB part.
    m.caches.llc = {2048, 16, 2, 38, ReplacementKind::TreePlru};
    m.tlb = paperTlb(0x6420);
    m.kernel.pageFaultCycles = 4250;
    m.kernel.seed = 0x6420b007;
    // The larger LLC eviction sets overlap a little worse.
    m.batchOverlap = 19.0;
    return m;
}

std::vector<MachineConfig>
MachineConfig::paperMachines()
{
    return {lenovoT420(), lenovoX230(), dellE6420()};
}

MachineConfig
MachineConfig::testSmall()
{
    MachineConfig m;
    m.name = "test-small";
    m.cpuModel = "sim-test";
    m.ghz = 2.0;
    m.dramGeometry.sizeBytes = 256ull * 1024 * 1024;
    m.dramGeometry.banks = 32;
    m.dramGeometry.rowBytes = 8192;
    m.dramTiming = {110, 150, 210};
    m.disturbance.refreshWindowCycles = m.cycles(0.064);
    m.disturbance.weakRowProbability = 0.05;
    m.disturbance.thresholdMin = 50'000;
    m.disturbance.thresholdMax = 80'000;
    m.disturbance.seed = 0x7e57;
    m.caches.l1d = {64, 8, 1, 4, ReplacementKind::Lru};
    m.caches.l2 = {256, 8, 1, 12, ReplacementKind::TreePlru};
    m.caches.llc = {512, 12, 2, 30, ReplacementKind::TreePlru};
    m.tlb = paperTlb(0x7e57);
    m.kernel.bootNoiseFraction = 0.02;
    m.kernel.seed = 0x7e57b007;
    return m;
}

MachineConfig &
MachineConfig::withDramModel(FlipModelKind kind)
{
    disturbance.flipModel = kind;
    const std::uint64_t size = dramGeometry.sizeBytes;
    const std::string capacity =
        size >= (1ull << 30)
            ? std::to_string(size >> 30) + " GiB"
            : std::to_string(size >> 20) + " MiB";
    switch (kind) {
    case FlipModelKind::Ddr3Seeded:
        // Generic restore: switching back cannot recover a preset's
        // flavored string ("8 GiB Samsung DDR3"), but must not leave
        // another model's name on a DDR3 device.
        dramModel = capacity + " DDR3";
        break;
    case FlipModelKind::Trr:
        dramModel = capacity + " DDR4 (TRR)";
        break;
    case FlipModelKind::Distance2:
        dramModel = capacity + " DDR4 (distance-2)";
        break;
    case FlipModelKind::Ecc:
        dramModel = capacity + " DDR3 ECC";
        break;
    }
    return *this;
}

} // namespace pth
