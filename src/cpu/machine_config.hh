/**
 * @file
 * Full-machine configurations, including presets for the three
 * Table-I laptops the paper evaluates.
 */

#ifndef PTH_CPU_MACHINE_CONFIG_HH
#define PTH_CPU_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/cache_config.hh"
#include "dram/dram_config.hh"
#include "kernel/defense.hh"
#include "kernel/kernel.hh"
#include "paging/paging_structure_cache.hh"
#include "tlb/tlb_config.hh"

namespace pth
{

/** Everything needed to build a Machine. */
struct MachineConfig
{
    std::string name = "generic";
    std::string architecture = "SandyBridge";
    std::string cpuModel = "generic";
    std::string dramModel = "DDR3";
    double ghz = 2.6;                 //!< core clock, for cycle<->seconds

    DramGeometry dramGeometry;
    DramTiming dramTiming;
    DisturbanceConfig disturbance;
    CacheHierarchyConfig caches;
    TlbConfig tlb;
    PscConfig psc;
    KernelConfig kernel;
    DefenseKind defense = DefenseKind::None;

    /**
     * Hart (hardware thread) count. Every hart gets its own Cpu,
     * two-level TLB/PSC stack and private L1; all harts share the L2,
     * the sliced LLC, the DRAM device and the kernel. The default of 1
     * replays the original single-hart machine byte-identically (the
     * extra-hart state is folded into fingerprints only when > 1).
     */
    unsigned harts = 1;

    /**
     * Memory-level-parallelism divisor applied to batched eviction-set
     * streams (an out-of-order core overlaps their misses; an in-order
     * additive model would be several times too slow).
     */
    double batchOverlap = 6.0;

    Cycles nopCycles = 1;             //!< cost of one NOP
    Cycles rdtscCycles = 30;          //!< cost of a timing read

    /** Convert simulated cycles to seconds at this machine's clock. */
    double seconds(Cycles cycles) const
    {
        return static_cast<double>(cycles) / (ghz * 1e9);
    }

    /** Convert seconds to cycles. */
    Cycles cycles(double secs) const
    {
        return static_cast<Cycles>(secs * ghz * 1e9);
    }

    /** Lenovo T420: SandyBridge i5-2540M, 12-way 3 MiB LLC, 8 GiB. */
    static MachineConfig lenovoT420();

    /** Lenovo X230: IvyBridge i5-3230M, 12-way 3 MiB LLC, 8 GiB. */
    static MachineConfig lenovoX230();

    /** Dell E6420: SandyBridge i7-2640M, 16-way 4 MiB LLC, 8 GiB. */
    static MachineConfig dellE6420();

    /** All three paper machines. */
    static std::vector<MachineConfig> paperMachines();

    /**
     * Scaled-down machine (256 MiB DRAM, small LLC) for unit tests.
     * Geometry ratios and code paths match the real presets.
     */
    static MachineConfig testSmall();

    /**
     * Install a non-default DRAM flip model (see dram/flip_model.hh):
     * sets disturbance.flipModel and rewrites the descriptive
     * dramModel string so reports name the scenario. Returns *this
     * for chaining onto the preset factories.
     */
    MachineConfig &withDramModel(FlipModelKind kind);
};

/**
 * Field-wise equality. Campaign uses this to detect run specs whose
 * derived machines are identical and can therefore fork from one warm
 * snapshot instead of each booting from scratch.
 */
inline bool
operator==(const MachineConfig &a, const MachineConfig &b)
{
    return a.name == b.name && a.architecture == b.architecture &&
           a.cpuModel == b.cpuModel && a.dramModel == b.dramModel &&
           a.ghz == b.ghz && a.dramGeometry == b.dramGeometry &&
           a.dramTiming == b.dramTiming &&
           a.disturbance == b.disturbance && a.caches == b.caches &&
           a.tlb == b.tlb && a.psc == b.psc && a.kernel == b.kernel &&
           a.defense == b.defense && a.harts == b.harts &&
           a.batchOverlap == b.batchOverlap &&
           a.nopCycles == b.nopCycles && a.rdtscCycles == b.rdtscCycles;
}

inline bool
operator!=(const MachineConfig &a, const MachineConfig &b)
{
    return !(a == b);
}

} // namespace pth

#endif // PTH_CPU_MACHINE_CONFIG_HH
