#include "cpu/interleaver.hh"

#include <cstring>

#include "common/logging.hh"

namespace pth
{

const char *
interleaveModeName(InterleaveMode mode)
{
    return mode == InterleaveMode::RoundRobin ? "round-robin" : "seeded";
}

bool
parseInterleaveMode(const char *text, InterleaveMode &out)
{
    if (!std::strcmp(text, "round-robin") || !std::strcmp(text, "rr")) {
        out = InterleaveMode::RoundRobin;
        return true;
    }
    if (!std::strcmp(text, "seeded") || !std::strcmp(text, "random")) {
        out = InterleaveMode::Seeded;
        return true;
    }
    return false;
}

Interleaver::Interleaver(InterleaveMode mode_, std::uint64_t seed,
                         unsigned harts)
    : mode(mode_), rng(hashCombine(0x171e41, seed))
{
    pth_assert(harts >= 1, "interleaver needs at least one hart");
    active.reserve(harts);
    for (unsigned h = 0; h < harts; ++h)
        active.push_back(h);
}

unsigned
Interleaver::next()
{
    pth_assert(!active.empty(), "no active hart to schedule");
    if (mode == InterleaveMode::Seeded)
        cursor = static_cast<std::size_t>(rng.below(active.size()));
    else if (cursor >= active.size())
        cursor = 0;
    unsigned hart = active[cursor];
    if (mode == InterleaveMode::RoundRobin)
        ++cursor;
    return hart;
}

void
Interleaver::finish(unsigned hart)
{
    for (std::size_t i = 0; i < active.size(); ++i) {
        if (active[i] != hart)
            continue;
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(i));
        if (i < cursor)
            --cursor;
        return;
    }
}

} // namespace pth
