#include "cpu/cpu.hh"

#include "cache/cache_hierarchy.hh"
#include "common/logging.hh"
#include "mem/physical_memory.hh"
#include "mmu/mmu.hh"

namespace pth
{

Cpu::Cpu(const MachineConfig &config, Clock &clock, Mmu &mmu,
         CacheHierarchy &caches_, PhysicalMemory &memory, unsigned hart)
    : cfg(config), clk(clock), mmuRef(mmu), caches(caches_),
      mem(memory), hartIndex(hart)
{
}

void
Cpu::setProcess(Process &proc)
{
    pth_assert(proc.pageTables(), "cannot run a lightweight process");
    current = &proc;
    mmuRef.setRoot(proc.pageTables()->root());
    // A context switch also costs time and trashes some cache state;
    // the TLB/PSC flush above is the architecturally required part.
    clk.advance(cfg.kernel.syscallCycles);
}

Process &
Cpu::process()
{
    pth_assert(current, "no process installed");
    return *current;
}

AccessOutcome
Cpu::access(VirtAddr va, bool write)
{
    AccessOutcome out;
    TranslateResult tr = mmuRef.translate(va, clk.now());
    out.latency = tr.latency;
    out.causedWalk = tr.causedWalk;
    out.l1pteFromDram = tr.leafFromDram;
    if (!tr.ok) {
        // Architectural fault; the kernel would deliver SIGSEGV. The
        // latency charged is the walk that discovered the fault.
        clk.advance(out.latency);
        return out;
    }
    out.ok = true;
    out.pa = tr.pa % mem.size();
    MemAccessResult dataAccess =
        caches.access(out.pa, clk.now(), hartIndex);
    (void)write;  // write-allocate: timing identical to a read here
    out.latency += dataAccess.latency;
    clk.advance(out.latency);
    return out;
}

Cycles
Cpu::accessBatch(const std::vector<VirtAddr> &vas)
{
    // Issue all accesses, summing their standalone latencies, then
    // charge the overlapped total: an OoO core sustains several
    // outstanding misses (MLP), so wall-clock is roughly the sum
    // divided by the overlap factor, floored at the longest single
    // access.
    Cycles sum = 0;
    Cycles longest = 0;
    Cycles start = clk.now();
    for (VirtAddr va : vas) {
        TranslateResult tr = mmuRef.translate(va, start);
        Cycles lat = tr.latency;
        if (tr.ok) {
            MemAccessResult dataAccess =
                caches.access(tr.pa % mem.size(), start, hartIndex);
            lat += dataAccess.latency;
        }
        sum += lat;
        longest = std::max(longest, lat);
    }
    Cycles charged = std::max<Cycles>(
        longest,
        static_cast<Cycles>(static_cast<double>(sum) / cfg.batchOverlap));
    clk.advance(charged);
    return charged;
}

void
Cpu::clflush(VirtAddr va)
{
    TranslateResult tr = mmuRef.translate(va, clk.now());
    Cycles lat = tr.latency;
    if (tr.ok)
        lat += caches.clflush(tr.pa % mem.size());
    clk.advance(lat);
}

void
Cpu::nops(std::uint64_t n)
{
    clk.advance(n * cfg.nopCycles);
}

Cycles
Cpu::rdtsc()
{
    clk.advance(cfg.rdtscCycles);
    return clk.now();
}

Cycles
Cpu::now() const
{
    return clk.now();
}

bool
Cpu::readUser64(VirtAddr va, std::uint64_t &value) const
{
    pth_assert(current && current->pageTables(), "no process");
    auto tr = current->pageTables()->translate(va);
    if (!tr)
        return false;
    PhysAddr pa = ((tr->frame << kPageShift) | (va & (kPageBytes - 1))) %
                  mem.size();
    value = mem.read64(pa & ~7ull);
    return true;
}

bool
Cpu::writeUser64(VirtAddr va, std::uint64_t value)
{
    pth_assert(current && current->pageTables(), "no process");
    auto tr = current->pageTables()->translate(va);
    if (!tr)
        return false;
    PhysAddr pa = ((tr->frame << kPageShift) | (va & (kPageBytes - 1))) %
                  mem.size();
    mem.write64(pa & ~7ull, value);
    return true;
}

} // namespace pth
