/**
 * @file
 * The whole simulated machine: clock, physical memory, DRAM, caches,
 * MMU, kernel and CPU, composed from one MachineConfig. This is the
 * library's top-level entry point.
 */

#ifndef PTH_CPU_MACHINE_HH
#define PTH_CPU_MACHINE_HH

#include <memory>

#include "cache/cache_hierarchy.hh"
#include "cpu/cpu.hh"
#include "cpu/machine_config.hh"
#include "dram/dram.hh"
#include "kernel/kernel.hh"
#include "mem/physical_memory.hh"
#include "mmu/mmu.hh"

namespace pth
{

/** A complete machine instance. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /** Configuration this machine was built from. */
    const MachineConfig &config() const { return cfg; }

    Clock &clock() { return clk; }
    PhysicalMemory &memory() { return pmem; }
    Dram &dram() { return dramDev; }
    CacheHierarchy &caches() { return hierarchy; }
    Mmu &mmu() { return mmuDev; }
    Kernel &kernel() { return *kern; }
    Cpu &cpu() { return *processor; }

    /** Simulated seconds elapsed. */
    double seconds() const { return cfg.seconds(clk.now()); }

    /** Convert a cycle count to seconds at this machine's clock. */
    double seconds(Cycles cycles) const { return cfg.seconds(cycles); }

  private:
    MachineConfig cfg;
    Clock clk;
    PhysicalMemory pmem;
    Dram dramDev;
    CacheHierarchy hierarchy;
    Mmu mmuDev;
    std::unique_ptr<Kernel> kern;
    std::unique_ptr<Cpu> processor;
};

} // namespace pth

#endif // PTH_CPU_MACHINE_HH
