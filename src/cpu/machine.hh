/**
 * @file
 * The whole simulated machine: clock, physical memory, DRAM, caches,
 * kernel, and one MMU + CPU per hart, composed from one MachineConfig.
 * Every hart owns a private L1 and a full TLB/PSC/walker stack; the
 * L2, sliced LLC, DRAM and kernel are shared. This is the library's
 * top-level entry point.
 */

#ifndef PTH_CPU_MACHINE_HH
#define PTH_CPU_MACHINE_HH

#include <memory>
#include <vector>

#include "cache/cache_hierarchy.hh"
#include "cpu/cpu.hh"
#include "cpu/machine_config.hh"
#include "dram/dram.hh"
#include "kernel/kernel.hh"
#include "mem/physical_memory.hh"
#include "mmu/mmu.hh"

namespace pth
{

class MachineSnapshot;

/** A complete machine instance. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /**
     * Deep copy (snapshot fork): every component — clock, memory
     * contents, DRAM disturbance accounting and pending flips, cache
     * lines with replacement state, TLBs/PSCs, kernel allocators and
     * processes — is copied and rewired so the clone replays
     * byte-identically to the original from this point on, and neither
     * machine can observe the other.
     */
    Machine(const Machine &other);

    Machine &operator=(const Machine &) = delete;

    /** Deep-copy factory (the fork operation). */
    std::unique_ptr<Machine> clone() const;

    /** Capture the current state as a reusable snapshot. */
    MachineSnapshot snapshot() const;

    /**
     * Digest of the complete observable state (memory contents, cache
     * and TLB arrays, device and kernel counters). Equal fingerprints
     * are a necessary condition for byte-identical replay; tests use
     * this to audit that clones diverge from their source in no
     * component.
     */
    std::uint64_t stateFingerprint() const;

    /** Configuration this machine was built from. */
    const MachineConfig &config() const { return cfg; }

    Clock &clock() { return clk; }
    PhysicalMemory &memory() { return pmem; }
    Dram &dram() { return dramDev; }
    CacheHierarchy &caches() { return hierarchy; }
    Kernel &kernel() { return *kern; }

    /** Hart 0's MMU / CPU — the single-hart machine's components, so
     * all pre-multi-hart code keeps its meaning unchanged. */
    Mmu &mmu() { return *mmus[0]; }
    Cpu &cpu() { return *cpus[0]; }

    /** A specific hart's MMU / CPU. */
    Mmu &mmu(unsigned hart) { return *mmus.at(hart); }
    Cpu &cpu(unsigned hart) { return *cpus.at(hart); }

    /** Number of harts this machine hosts (MachineConfig::harts). */
    unsigned hartCount() const
    {
        return static_cast<unsigned>(cpus.size());
    }

    /** Simulated seconds elapsed. */
    double seconds() const { return cfg.seconds(clk.now()); }

    /** Convert a cycle count to seconds at this machine's clock. */
    double seconds(Cycles cycles) const { return cfg.seconds(cycles); }

  private:
    MachineConfig cfg;
    Clock clk;
    PhysicalMemory pmem;
    Dram dramDev;
    CacheHierarchy hierarchy;
    std::vector<std::unique_ptr<Mmu>> mmus;  //!< one per hart
    std::unique_ptr<Kernel> kern;
    std::vector<std::unique_ptr<Cpu>> cpus;  //!< one per hart
};

/**
 * A frozen machine state that can be instantiated any number of times.
 *
 * The snapshot owns one immutable Machine (shared, so copying a
 * snapshot is cheap); instantiate() deep-copies it into a fresh,
 * runnable Machine. Because instantiate() only *reads* the frozen
 * machine, concurrent instantiation from multiple threads is safe —
 * the property Campaign's per-worker forking relies on.
 *
 * Contract (pinned by tests/test_snapshot.cpp): a run on an
 * instantiated machine produces byte-identical results to the same run
 * on a cold-constructed machine that executed the same pre-snapshot
 * history.
 */
class MachineSnapshot
{
  public:
    /** Freeze a copy of a live machine. */
    explicit MachineSnapshot(const Machine &machine)
        : frozen(std::make_shared<const Machine>(machine))
    {
    }

    /** Adopt a machine wholesale (no copy); it must not be used
     * elsewhere afterwards. */
    explicit MachineSnapshot(std::unique_ptr<Machine> machine)
        : frozen(std::move(machine))
    {
    }

    /** Fork a fresh runnable machine from the frozen state. */
    std::unique_ptr<Machine> instantiate() const
    {
        return std::make_unique<Machine>(*frozen);
    }

    /** The frozen state (read-only). */
    const Machine &machine() const { return *frozen; }

  private:
    std::shared_ptr<const Machine> frozen;
};

} // namespace pth

#endif // PTH_CPU_MACHINE_HH
