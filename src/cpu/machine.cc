#include "cpu/machine.hh"

namespace pth
{

Machine::Machine(const MachineConfig &config)
    : cfg(config), pmem(config.dramGeometry.sizeBytes),
      dramDev(config.dramGeometry, config.dramTiming, config.disturbance,
              pmem),
      hierarchy(config.caches, dramDev),
      mmuDev(config.tlb, config.psc, pmem, hierarchy)
{
    kern = std::make_unique<Kernel>(cfg.kernel, pmem, dramDev.mapping(),
                                    dramDev.vulnerability(), clk,
                                    cfg.defense);
    processor = std::make_unique<Cpu>(cfg, clk, mmuDev, hierarchy, pmem);
}

} // namespace pth
