#include "cpu/machine.hh"

#include "common/random.hh"

namespace pth
{

Machine::Machine(const MachineConfig &config)
    : cfg(config), pmem(config.dramGeometry.sizeBytes),
      dramDev(config.dramGeometry, config.dramTiming, config.disturbance,
              pmem),
      hierarchy(config.caches, dramDev),
      mmuDev(config.tlb, config.psc, pmem, hierarchy)
{
    kern = std::make_unique<Kernel>(cfg.kernel, pmem, dramDev.mapping(),
                                    dramDev.vulnerability(), clk,
                                    cfg.defense);
    processor = std::make_unique<Cpu>(cfg, clk, mmuDev, hierarchy, pmem);
}

Machine::Machine(const Machine &other)
    : cfg(other.cfg), clk(other.clk), pmem(other.pmem),
      dramDev(other.dramDev, pmem), hierarchy(other.hierarchy, dramDev),
      mmuDev(other.mmuDev, pmem, hierarchy)
{
    kern = std::make_unique<Kernel>(*other.kern, pmem, dramDev.mapping(),
                                    dramDev.vulnerability(), clk);
    processor = std::make_unique<Cpu>(cfg, clk, mmuDev, hierarchy, pmem);
    // Point the cloned CPU at the cloned process without context-switch
    // side effects (the copied MMU state must stay untouched).
    if (const Process *cur = other.processor->currentOrNull())
        processor->restoreProcess(kern->process(cur->pid()));
}

std::unique_ptr<Machine>
Machine::clone() const
{
    return std::make_unique<Machine>(*this);
}

MachineSnapshot
Machine::snapshot() const
{
    return MachineSnapshot(*this);
}

std::uint64_t
Machine::stateFingerprint() const
{
    std::uint64_t h = hashCombine(0xf19, clk.now());
    h = hashCombine(h, pmem.contentHash(), pmem.materializedPages());
    h = hashCombine(h, dramDev.stateHash());
    h = hashCombine(h, hierarchy.stateHash());
    h = hashCombine(h, mmuDev.stateHash());
    h = hashCombine(h, kern->stateHash());
    const Process *cur = processor->currentOrNull();
    return hashCombine(h, cur ? cur->pid() + 1 : 0);
}

} // namespace pth
