#include "cpu/machine.hh"

#include "common/random.hh"

namespace pth
{

Machine::Machine(const MachineConfig &config)
    : cfg(config), pmem(config.dramGeometry.sizeBytes),
      dramDev(config.dramGeometry, config.dramTiming, config.disturbance,
              pmem),
      hierarchy(config.caches, dramDev, config.harts)
{
    kern = std::make_unique<Kernel>(cfg.kernel, pmem, dramDev.mapping(),
                                    dramDev.vulnerability(), clk,
                                    cfg.defense);
    mmus.reserve(cfg.harts);
    cpus.reserve(cfg.harts);
    for (unsigned h = 0; h < cfg.harts; ++h) {
        mmus.push_back(std::make_unique<Mmu>(cfg.tlb, cfg.psc, pmem,
                                             hierarchy, h));
        cpus.push_back(std::make_unique<Cpu>(cfg, clk, *mmus[h],
                                             hierarchy, pmem, h));
    }
}

Machine::Machine(const Machine &other)
    : cfg(other.cfg), clk(other.clk), pmem(other.pmem),
      dramDev(other.dramDev, pmem), hierarchy(other.hierarchy, dramDev)
{
    kern = std::make_unique<Kernel>(*other.kern, pmem, dramDev.mapping(),
                                    dramDev.vulnerability(), clk);
    mmus.reserve(other.mmus.size());
    cpus.reserve(other.cpus.size());
    for (unsigned h = 0; h < other.hartCount(); ++h) {
        mmus.push_back(
            std::make_unique<Mmu>(*other.mmus[h], pmem, hierarchy));
        cpus.push_back(std::make_unique<Cpu>(cfg, clk, *mmus[h],
                                             hierarchy, pmem, h));
        // Point each cloned CPU at its cloned process without
        // context-switch side effects (the copied MMU state must stay
        // untouched).
        if (const Process *cur = other.cpus[h]->currentOrNull())
            cpus[h]->restoreProcess(kern->process(cur->pid()));
    }
}

std::unique_ptr<Machine>
Machine::clone() const
{
    return std::make_unique<Machine>(*this);
}

MachineSnapshot
Machine::snapshot() const
{
    return MachineSnapshot(*this);
}

std::uint64_t
Machine::stateFingerprint() const
{
    std::uint64_t h = hashCombine(0xf19, clk.now());
    h = hashCombine(h, pmem.contentHash(), pmem.materializedPages());
    h = hashCombine(h, dramDev.stateHash());
    h = hashCombine(h, hierarchy.stateHash());
    h = hashCombine(h, mmus[0]->stateHash());
    h = hashCombine(h, kern->stateHash());
    const Process *cur = cpus[0]->currentOrNull();
    h = hashCombine(h, cur ? cur->pid() + 1 : 0);
    // Extra harts' MMU state and current process fold in after the
    // single-hart digest, so a harts=1 machine fingerprints
    // byte-identically to the pre-multi-hart code (pinned by
    // tests/test_multihart.cpp).
    for (std::size_t i = 1; i < mmus.size(); ++i) {
        const Process *p = cpus[i]->currentOrNull();
        h = hashCombine(h, mmus[i]->stateHash(), p ? p->pid() + 1 : 0);
    }
    return h;
}

} // namespace pth
