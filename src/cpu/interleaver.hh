/**
 * @file
 * Deterministic hart interleaver: merges per-hart execution streams
 * into one global clock order. Multi-hart scenarios step whichever
 * hart the interleaver names next, so a run's schedule is a pure
 * function of (mode, seed, hart count) — reproducible and
 * byte-identical across threads, workers and shards like everything
 * else in the harness.
 */

#ifndef PTH_CPU_INTERLEAVER_HH
#define PTH_CPU_INTERLEAVER_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace pth
{

/** How the interleaver picks the next hart to step. */
enum class InterleaveMode
{
    RoundRobin,  //!< strict rotation over the active harts
    Seeded,      //!< seeded uniform draw over the active harts
};

/** Canonical CLI/report name ("round-robin" or "seeded"). */
const char *interleaveModeName(InterleaveMode mode);

/** Parse a mode name ("round-robin"/"rr" or "seeded"/"random").
 * @return false without touching out on an unknown name. */
bool parseInterleaveMode(const char *text, InterleaveMode &out);

/** The schedule generator. */
class Interleaver
{
  public:
    /** All harts in [0, harts) start active. */
    Interleaver(InterleaveMode mode, std::uint64_t seed, unsigned harts);

    /** Next hart to step (at least one hart must be active). */
    unsigned next();

    /** Remove a finished hart from the rotation. */
    void finish(unsigned hart);

    /** True once every hart has finished. */
    bool done() const { return active.empty(); }

    /** Harts still in the rotation. */
    unsigned activeCount() const
    {
        return static_cast<unsigned>(active.size());
    }

  private:
    InterleaveMode mode;
    Rng rng;
    std::vector<unsigned> active;
    std::size_t cursor = 0;
};

} // namespace pth

#endif // PTH_CPU_INTERLEAVER_HH
