#include "harness/thread_pool.hh"

#include <algorithm>

namespace pth
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            return;
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
    workers.clear();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;  // stopping, and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();  // packaged_task captures any exception in its future
    }
}

} // namespace pth
