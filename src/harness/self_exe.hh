/**
 * @file
 * Path of the running executable, for re-spawning it (--workers).
 */

#ifndef PTH_HARNESS_SELF_EXE_HH
#define PTH_HARNESS_SELF_EXE_HH

#include <string>

namespace pth
{

/**
 * Absolute path of this binary from /proc/self/exe, falling back to
 * argv0 when the link cannot be read — or when the result fills the
 * buffer completely. readlink truncates silently, so a full buffer
 * means "possibly longer than the buffer", not "fit exactly"; the old
 * inline version treated that as success and could hand execv a
 * truncated path.
 */
std::string resolveSelfExe(const std::string &argv0);

} // namespace pth

#endif // PTH_HARNESS_SELF_EXE_HH
