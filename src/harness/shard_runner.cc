#include "harness/shard_runner.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <utility>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/table.hh"
#include "harness/result_store.hh"

namespace pth
{

ShardRunner::ShardRunner(ShardRunnerOptions options)
    : options_(std::move(options))
{
}

std::string
ShardRunner::shardJournalPath(unsigned shard) const
{
    return shardJournalPath(options_.journalBase, shard);
}

std::string
ShardRunner::shardJournalPath(const std::string &journalBase,
                              unsigned shard)
{
    return journalBase + strfmt(".shard%u", shard);
}

std::string
ShardRunner::describeWaitStatus(int status)
{
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 127)
            return "exec failed (exit 127)";
        return strfmt("exited with status %d", code);
    }
    if (WIFSIGNALED(status))
        return strfmt("killed by signal %d (%s)", WTERMSIG(status),
                      strsignal(WTERMSIG(status)));
    return strfmt("unknown wait status 0x%x", status);
}

std::string
ShardRunner::fileTail(const std::string &path, std::size_t maxBytes)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return std::string();
    const std::streamoff size = in.tellg();
    const std::streamoff start =
        size > static_cast<std::streamoff>(maxBytes)
            ? size - static_cast<std::streamoff>(maxBytes)
            : 0;
    in.seekg(start);
    std::string tail(static_cast<std::size_t>(size - start), '\0');
    in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
    tail.resize(static_cast<std::size_t>(in.gcount()));
    return tail;
}

std::vector<std::string>
ShardRunner::workerArgs(unsigned shard, bool fresh) const
{
    std::vector<std::string> args;
    args.push_back(options_.program);
    args.insert(args.end(), options_.args.begin(),
                options_.args.end());
    args.push_back(
        strfmt("--shard=%u/%u", shard, options_.workers));
    args.push_back("--journal=" + shardJournalPath(shard));
    args.push_back(strfmt("--threads=%u", options_.threadsPerWorker));
    if (fresh)
        args.push_back("--fresh");
    return args;
}

long
ShardRunner::spawn(unsigned shard, bool fresh,
                   bool firstAttempt) const
{
    const std::vector<std::string> args = workerArgs(shard, fresh);
    const std::string logPath =
        shardJournalPath(shard) + ".log";

    const pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid > 0)
        return pid;

    // Child: capture stdout+stderr into the worker log — truncated
    // on the invocation's first attempt so a postmortem tail can
    // never show a previous run's output, appended across respawns
    // so it shows every attempt of THIS run.
    const int fd = ::open(logPath.c_str(),
                          O_WRONLY | O_CREAT |
                              (firstAttempt ? O_TRUNC : O_APPEND),
                          0644);
    if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO)
            ::close(fd);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(options_.program.c_str(), argv.data());
    // Failed-exec path of a just-forked child: single thread by
    // construction.
    std::fprintf(stderr, "shard worker %u: cannot exec %s: %s\n",
                 shard, options_.program.c_str(),
                 std::strerror(errno)); // NOLINT(concurrency-mt-unsafe)
    ::_exit(127);
}

std::vector<ShardWorkerReport>
ShardRunner::run()
{
    const unsigned workers = options_.workers;
    std::vector<ShardWorkerReport> reports(workers);
    std::map<long, unsigned> live; // pid -> worker slot

    for (unsigned w = 0; w < workers; ++w) {
        ShardWorkerReport &report = reports[w];
        report.shard = w;
        report.journalPath = shardJournalPath(w);
        report.logPath = report.journalPath + ".log";
        // A fresh fleet must not resume stale shard journals even if
        // a worker dies before its own --fresh truncation runs.
        if (options_.fresh)
            std::remove(report.journalPath.c_str());
        const long pid =
            spawn(w, options_.fresh, /*firstAttempt=*/true);
        if (pid < 0) {
            // The dispatcher is single-threaded (fork-based fan-out).
            report.error = strfmt(
                "fork failed: %s",
                std::strerror(errno)); // NOLINT(concurrency-mt-unsafe)
            continue;
        }
        report.spawns = 1;
        live[pid] = w;
    }

    while (!live.empty()) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            break; // no children left we know about
        }
        auto it = live.find(pid);
        if (it == live.end())
            continue;
        const unsigned w = it->second;
        live.erase(it);
        ShardWorkerReport &report = reports[w];

        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            report.ok = true;
            continue;
        }
        // Death. Respawn without --fresh: the replacement resumes
        // from the worker's own journal and repeats only the runs
        // the dead attempt had not checkpointed.
        std::string respawnError;
        if (report.spawns <= options_.maxRespawns) {
            const long next =
                spawn(w, /*fresh=*/false, /*firstAttempt=*/false);
            if (next >= 0) {
                ++report.spawns;
                live[next] = w;
                continue;
            }
            // The dispatcher is single-threaded (fork-based fan-out).
            respawnError = strfmt(
                "; respawn fork failed: %s",
                std::strerror(errno)); // NOLINT(concurrency-mt-unsafe)
        }
        report.ok = false;
        report.error = describeWaitStatus(status) + respawnError;
        report.logTail = fileTail(report.logPath);
    }

    return reports;
}

std::size_t
seedShardJournalsFromParent(const std::string &parentJournal,
                            const std::string &journalBase,
                            unsigned workers)
{
    if (workers == 0)
        return 0;
    auto prior = ResultStore::load(parentJournal);
    std::vector<std::unique_ptr<ResultStore>> seeds(workers);
    std::vector<std::map<std::size_t, ResultStore::Entry>> present(
        workers);
    std::vector<char> presentLoaded(workers, 0);
    std::size_t seeded = 0;
    for (auto &item : prior) {
        const unsigned w =
            static_cast<unsigned>(item.first % workers);
        const std::string shardPath =
            ShardRunner::shardJournalPath(journalBase, w);
        if (!presentLoaded[w]) {
            present[w] = ResultStore::load(shardPath);
            presentLoaded[w] = 1;
        }
        auto held = present[w].find(item.first);
        if (held != present[w].end() &&
            held->second.key == item.second.key)
            continue;
        if (!seeds[w])
            seeds[w] = std::make_unique<ResultStore>(
                shardPath, /*truncate=*/false);
        seeds[w]->record(item.second.result, item.second.key);
        ++seeded;
    }
    return seeded;
}

} // namespace pth
