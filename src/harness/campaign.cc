#include "harness/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <sstream>
#include <utility>

#include "attack/explicit_hammer.hh"
#include "attack/multi_hammer.hh"
#include "attack/pthammer.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/sync.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "cpu/machine.hh"
#include "dram/flip_model.hh"
#include "harness/result_store.hh"

namespace pth
{

namespace
{

/** Stream ids keeping the per-run seed derivations independent. */
enum SeedStream : std::uint64_t
{
    kStreamDisturbance = 1,
    kStreamKernel = 2,
    kStreamTlbL1 = 3,
    kStreamTlbL2 = 4,
    kStreamAttack = 5,
};

/** What a spec's declarative fields and seed resolve to. */
struct DerivedRun
{
    MachineConfig config;
    AttackConfig attack;
};

/**
 * Resolve a spec to the MachineConfig and AttackConfig its run uses:
 * preset, defense, DRAM model, seed re-keying per the spec's
 * SeedScope, then the tweakMachine hook. Deterministic — run() calls
 * it again during snapshot-sharing detection and must see the same
 * config runOne builds the machine from.
 */
DerivedRun
deriveRun(const RunSpec &spec)
{
    DerivedRun derived;
    derived.config = makeMachineConfig(spec.preset);
    derived.config.defense = spec.defense;
    if (spec.dramModel != FlipModelKind::Ddr3Seeded)
        derived.config.withDramModel(spec.dramModel);
    derived.config.harts = spec.harts;

    // Re-key every stochastic stream in scope from the run seed so
    // runs with different seeds decorrelate and equal seeds replay.
    // Seed 0 keeps the library defaults (exact replay of a
    // stand-alone, un-swept run).
    derived.attack = spec.attack;
    if (spec.seed != 0) {
        MachineConfig &config = derived.config;
        if (spec.seedScope == SeedScope::AllStreams) {
            config.disturbance.seed =
                hashCombine(config.disturbance.seed, spec.seed,
                            kStreamDisturbance);
            config.kernel.seed = hashCombine(config.kernel.seed,
                                             spec.seed, kStreamKernel);
            config.tlb.l1d.seed = hashCombine(config.tlb.l1d.seed,
                                              spec.seed, kStreamTlbL1);
            config.tlb.l2s.seed = hashCombine(config.tlb.l2s.seed,
                                              spec.seed, kStreamTlbL2);
        }
        derived.attack.seed =
            hashCombine(derived.attack.seed, spec.seed, kStreamAttack);
    }
    if (spec.tweakMachine)
        spec.tweakMachine(derived.config);
    return derived;
}

/** Fill the result fields shared by every strategy. */
void
finishResult(RunResult &res, Machine &machine)
{
    res.simSeconds = machine.seconds();
}

void
runExplicit(const RunSpec &spec, const AttackConfig &attack,
            Machine &machine, RunResult &res)
{
    Process &proc = machine.kernel().createProcess(/*uid=*/1000);
    machine.cpu().setProcess(proc);
    ExplicitHammer hammer(machine, attack);
    hammer.setup(spec.explicitBufferBytes);
    ExplicitHammerResult r =
        hammer.run(spec.nopPadding, attack.hammerBudgetSeconds);
    res.flipped = r.flipped;
    res.flips = r.flipped ? 1 : 0;
    res.attempts = static_cast<unsigned>(r.pairsHammered);
    res.report.machine = machine.config().name;
    res.report.flipped = r.flipped;
    res.report.timeToFirstFlipMinutes = r.secondsToFirstFlip / 60.0;
}

void
runImplicit(const AttackConfig &attack, Machine &machine, RunResult &res)
{
    PThammerAttack attackRun(machine, attack);
    attackRun.prepare();
    res.report = attackRun.prepReport();
    auto pair = attackRun.pairs().next();
    if (!pair)
        return;
    res.attempts = 1;
    HammerRunResult hr =
        attackRun.hammer().run(*pair, attack.hammerIterations);
    res.flips = hr.flips;
    res.flipped = hr.flips > 0;
    res.report.flipped = res.flipped;
    res.report.hammerMs = machine.seconds(hr.totalCycles) * 1e3;
}

void
runMultiHart(const RunSpec &spec, const AttackConfig &attack,
             Machine &machine, RunResult &res)
{
    PThammerAttack attackRun(machine, attack);
    attackRun.prepare();
    res.report = attackRun.prepReport();

    MultiHartHammer hammer(machine, attack, spec.interleave,
                           spec.interleaveSeed);
    const unsigned reserved = std::min(attack.victimHarts,
                                       machine.hartCount() - 1);
    const unsigned batchPairs = machine.hartCount() - reserved;

    // Attempt loop, like the single-hart end-to-end attack: each
    // attempt hammers one bank-synchronized batch of pairs — one per
    // aggressor hart — until a flip lands or the attempt/time budget
    // runs out.
    const double startSeconds = machine.seconds();
    MultiHartHammerResult r;
    Cycles hammered = 0;
    while (res.attempts < attack.maxAttempts &&
           machine.seconds() - startSeconds <
               attack.hammerBudgetSeconds) {
        std::vector<HammerPair> pairs =
            hammer.selectPairs(attackRun.pairs(), batchPairs);
        if (pairs.empty())
            break;
        r = hammer.run(pairs, attack.hammerIterations);
        hammered += r.totalCycles;
        res.attempts += r.aggressors;
        res.flips += r.flips;
        if (r.flips > 0)
            break;
    }
    res.flipped = res.flips > 0;
    res.report.flipped = res.flipped;
    res.report.hammerMs = machine.seconds(hammered) * 1e3;
    res.metrics.emplace_back("aggressorHarts", r.aggressors);
    res.metrics.emplace_back("victimHarts", r.victims);
    res.metrics.emplace_back("meanRoundCycles", r.meanRoundCycles);
    res.metrics.emplace_back("stackedActsPerWindow",
                             r.stackedActsPerWindow);
    res.metrics.emplace_back("victimMeanLatency", r.victimMeanLatency);
}

void
runPthammer(const AttackConfig &attack, Machine &machine, RunResult &res)
{
    PThammerAttack attackRun(machine, attack);
    attackRun.prepare();
    res.report = attackRun.run();
    res.flipped = res.report.flipped;
    res.escalated = res.report.escalated;
    res.flips = res.report.flipsObserved;
    res.attempts = res.report.attempts;
    res.flipsUntilEscalation = res.report.flipsUntilEscalation;
    res.exploitPath = res.report.exploitPath;
}

} // namespace

std::string
machinePresetName(MachinePreset preset)
{
    switch (preset) {
    case MachinePreset::LenovoT420: return "Lenovo T420";
    case MachinePreset::LenovoX230: return "Lenovo X230";
    case MachinePreset::DellE6420: return "Dell E6420";
    case MachinePreset::TestSmall: return "test-small";
    }
    return "unknown";
}

const std::array<MachinePreset, 3> &
paperPresets()
{
    static const std::array<MachinePreset, 3> presets = {
        MachinePreset::LenovoT420, MachinePreset::LenovoX230,
        MachinePreset::DellE6420};
    return presets;
}

std::string
hammerStrategyName(HammerStrategy strategy)
{
    switch (strategy) {
    case HammerStrategy::Explicit: return "explicit";
    case HammerStrategy::Implicit: return "implicit";
    case HammerStrategy::PThammer: return "pthammer";
    case HammerStrategy::MultiHart: return "multihart";
    }
    return "unknown";
}

MachineConfig
makeMachineConfig(MachinePreset preset)
{
    switch (preset) {
    case MachinePreset::LenovoT420: return MachineConfig::lenovoT420();
    case MachinePreset::LenovoX230: return MachineConfig::lenovoX230();
    case MachinePreset::DellE6420: return MachineConfig::dellE6420();
    case MachinePreset::TestSmall: return MachineConfig::testSmall();
    }
    return MachineConfig{};
}

unsigned
CampaignOptions::threadsFromEnv()
{
    // Resolved once before any workers exist; nothing writes the
    // environment concurrently.
    const char *env = std::getenv("PTH_THREADS"); // NOLINT(concurrency-mt-unsafe)
    if (!env)
        return 0;
    long value = std::strtol(env, nullptr, 10);
    return value > 0 ? static_cast<unsigned>(value) : 0;
}

std::size_t
Campaign::add(RunSpec spec)
{
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

void
Campaign::addSeedSweep(const RunSpec &base, std::uint64_t seedBase,
                       unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        RunSpec spec = base;
        spec.seed = seedBase + i;
        spec.label = base.label + strfmt("/seed%u", i);
        add(std::move(spec));
    }
}

void
Campaign::addAttackSeedSweep(const RunSpec &base, std::uint64_t seedBase,
                             unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        RunSpec spec = base;
        spec.seed = seedBase + i;
        spec.seedScope = SeedScope::AttackOnly;
        spec.label = base.label + strfmt("/seed%u", i);
        add(std::move(spec));
    }
}

RunResult
specResultShell(const RunSpec &spec, std::size_t index)
{
    RunResult res;
    res.index = index;
    res.label = spec.label;
    res.seed = spec.seed;
    res.machine = machinePresetName(spec.preset);
    res.defense = defenseKindName(spec.defense);
    res.strategy = hammerStrategyName(spec.strategy);
    res.dramModel = flipModelKindName(spec.dramModel);
    return res;
}

RunResult
Campaign::runOne(const RunSpec &spec, std::size_t index,
                 const MachineSnapshot *snapshot)
{
    RunResult res = specResultShell(spec, index);

    auto wallStart = std::chrono::steady_clock::now();
    try {
        DerivedRun derived = deriveRun(spec);
        const AttackConfig &attack = derived.attack;

        std::unique_ptr<Machine> forked;
        if (snapshot) {
            pth_assert(snapshot->machine().config() == derived.config,
                       "snapshot built from a different machine"
                       " configuration than the spec derives");
            forked = snapshot->instantiate();
        } else {
            forked = std::make_unique<Machine>(derived.config);
        }
        Machine &machine = *forked;
        res.machine = derived.config.name;

        if (spec.body) {
            spec.body(machine, attack, res);
        } else {
            switch (spec.strategy) {
            case HammerStrategy::Explicit:
                runExplicit(spec, attack, machine, res);
                break;
            case HammerStrategy::Implicit:
                runImplicit(attack, machine, res);
                break;
            case HammerStrategy::PThammer:
                runPthammer(attack, machine, res);
                break;
            case HammerStrategy::MultiHart:
                runMultiHart(spec, attack, machine, res);
                break;
            }
        }
        finishResult(res, machine);
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
    } catch (...) {
        res.ok = false;
        res.error = "unknown exception";
    }
    res.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();
    return res;
}

std::vector<int>
Campaign::sharePlan(bool reuseMachines,
                    std::vector<MachineConfig> *configsOut) const
{
    const std::size_t n = specs_.size();
    std::vector<int> groups(n, -1);
    if (!reuseMachines) {
        if (configsOut)
            configsOut->clear();
        return groups;
    }

    // A derivation that throws (a bad tweakMachine hook) must not
    // abort the plan: the spec just cold-constructs, and runOne
    // surfaces the error in that run's result as always.
    std::vector<MachineConfig> configs(n);
    std::vector<char> derivable(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        try {
            configs[i] = deriveRun(specs_[i]).config;
            derivable[i] = 1;
        } catch (...) {
        }
    }

    // Union by config equality: owner[i] is the first index with run
    // i's config. Quadratic in distinct configs, fine at sweep sizes.
    std::vector<std::size_t> owner(n);
    std::vector<std::size_t> members(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        owner[i] = i;
        if (derivable[i]) {
            for (std::size_t j = 0; j < i; ++j) {
                if (owner[j] == j && derivable[j] &&
                    configs[j] == configs[i]) {
                    owner[i] = j;
                    break;
                }
            }
        }
        ++members[owner[i]];
    }

    // A group of one cold-constructs: forking a machine used once is
    // a deep copy with nothing to amortize it over.
    std::vector<int> ids(n, -1);
    int next = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (owner[i] == i && members[i] >= 2)
            ids[i] = next++;
    for (std::size_t i = 0; i < n; ++i)
        groups[i] = ids[owner[i]];

    if (configsOut)
        *configsOut = std::move(configs);
    return groups;
}

std::vector<std::uint64_t>
Campaign::specKeys(const CampaignOptions &options) const
{
    const std::vector<int> groups = sharePlan(options.reuseMachines);
    std::vector<std::uint64_t> keys(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i)
        keys[i] = specKey(specs_[i], /*sharedMachine=*/groups[i] >= 0);
    return keys;
}

std::vector<RunResult>
Campaign::run(const CampaignOptions &options) const
{
    const std::size_t n = specs_.size();
    std::vector<RunResult> results(n);
    std::vector<char> cached(n, 0);

    // Snapshot sharing: runs resolving to the same MachineConfig fork
    // one warm machine, built under the slot mutex by whichever run
    // of the group executes first. A mutex-guarded lazy init rather
    // than std::call_once: the thread-safety analysis cannot see
    // through once_flag (snap would be read unprovably-unlocked), and
    // the semantics are identical — racing workers serialize, a build
    // that throws leaves snap empty so the next group member retries.
    // Once built, the snapshot is immutable; handing the raw pointer
    // out of the lock is safe because run() outlives the pool.
    std::vector<MachineConfig> derivedConfigs;
    const std::vector<int> groups =
        sharePlan(options.reuseMachines, &derivedConfigs);
    struct SnapshotSlot
    {
        Mutex mtx;
        std::unique_ptr<MachineSnapshot> snap PTH_GUARDED_BY(mtx);
    };
    int nGroups = 0;
    for (int g : groups)
        nGroups = std::max(nGroups, g + 1);
    std::vector<std::unique_ptr<SnapshotSlot>> slots;
    slots.reserve(static_cast<std::size_t>(nGroups));
    for (int g = 0; g < nGroups; ++g)
        slots.push_back(std::make_unique<SnapshotSlot>());
    auto snapshotFor = [&groups, &slots,
                        &derivedConfigs](std::size_t i)
        -> const MachineSnapshot * {
        const int group = groups[i];
        if (group < 0)
            return nullptr;
        SnapshotSlot &slot = *slots[static_cast<std::size_t>(group)];
        MutexLock lock(slot.mtx);
        if (!slot.snap)
            slot.snap = std::make_unique<MachineSnapshot>(
                std::make_unique<Machine>(derivedConfigs[i]));
        return slot.snap.get();
    };

    // Shard slicing: this process owns only its residue class; other
    // runs are journal-served or marked "not executed".
    const unsigned shardCount = std::max(1u, options.shardCount);
    const unsigned shardIndex = options.shardIndex % shardCount;
    auto owned = [shardCount, shardIndex](std::size_t i) {
        return shardCount == 1 || i % shardCount == shardIndex;
    };

    // Checkpointing: load completed runs from the journal (resume)
    // and open it for appending the rest. Only an ok result whose
    // stored spec key matches the spec at the same index is reused;
    // anything else — corrupt line, edited spec, failed run — is
    // simply executed again.
    std::unique_ptr<ResultStore> store;
    std::vector<std::uint64_t> keys;
    if (!options.journalPath.empty()) {
        keys.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            keys[i] = specKey(specs_[i],
                              /*sharedMachine=*/groups[i] >= 0);
        if (options.resume) {
            std::size_t corrupt = 0;
            auto done = ResultStore::load(options.journalPath,
                                          &corrupt);
            if (corrupt)
                std::fprintf(stderr,
                             "warning: skipped %zu corrupt line(s) in"
                             " journal %s (truncated by a kill?);"
                             " their runs will re-execute\n",
                             corrupt, options.journalPath.c_str());
            for (auto &item : done) {
                const std::size_t index = item.first;
                ResultStore::Entry &entry = item.second;
                if (index < n && entry.key == keys[index] &&
                    entry.result.ok) {
                    results[index] = std::move(entry.result);
                    cached[index] = 1;
                }
            }
        }
        store = std::make_unique<ResultStore>(options.journalPath,
                                              /*truncate=*/
                                              !options.resume);
    }

    // A run outside this shard's slice that the journal cannot serve:
    // visibly unfinished rather than silently zero-valued.
    auto notExecuted = [this, shardCount](std::size_t i) {
        RunResult res = specResultShell(specs_[i], i);
        res.ok = false;
        res.error = strfmt(
            "not executed: run %zu belongs to shard %zu of %u",
            i, i % shardCount, shardCount);
        return res;
    };

    // Workers journal their own results the moment a run finishes,
    // so the checkpoint granularity is one run even under a pool.
    auto executeOne = [this, &store, &keys,
                       &snapshotFor](std::size_t i) {
        RunResult result = runOne(specs_[i], i, snapshotFor(i));
        if (store)
            store->record(result, keys[i]);
        return result;
    };

    if (options.threads == 1) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!cached[i])
                results[i] = owned(i) ? executeOne(i) : notExecuted(i);
            if (options.rethrow && owned(i) && !results[i].ok)
                throw std::runtime_error(results[i].error);
        }
        return results;
    }

    ThreadPool pool(options.threads);
    std::vector<std::future<RunResult>> futures(n);
    for (std::size_t i = 0; i < n; ++i)
        if (!cached[i] && owned(i))
            futures[i] =
                pool.submit([&executeOne, i] { return executeOne(i); });
    // Joining in submission order makes completion order irrelevant.
    for (std::size_t i = 0; i < n; ++i) {
        if (!cached[i])
            results[i] =
                owned(i) ? futures[i].get() : notExecuted(i);
        if (options.rethrow && owned(i) && !results[i].ok)
            throw std::runtime_error(results[i].error);
    }
    return results;
}

CampaignAggregate
Campaign::aggregate(const std::vector<RunResult> &results)
{
    CampaignAggregate agg;
    for (const RunResult &r : results)
        agg.add(r);
    return agg;
}

std::string
Campaign::toJson(const std::vector<RunResult> &results)
{
    std::ostringstream out;
    out << "{\n  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        out << "    {"
            << "\"index\": " << r.index
            << ", \"label\": \"" << jsonEscape(r.label) << '"'
            << ", \"machine\": \"" << jsonEscape(r.machine) << '"'
            << ", \"defense\": \"" << jsonEscape(r.defense) << '"'
            << ", \"strategy\": \"" << jsonEscape(r.strategy) << '"'
            << ", \"seed\": " << r.seed
            << ", \"ok\": " << (r.ok ? "true" : "false");
        if (!r.ok)
            out << ", \"error\": \"" << jsonEscape(r.error) << '"';
        out << ", \"flipped\": " << (r.flipped ? "true" : "false")
            << ", \"escalated\": " << (r.escalated ? "true" : "false")
            << ", \"flips\": " << r.flips
            << ", \"attempts\": " << r.attempts
            << ", \"exploit_path\": \"" << jsonEscape(r.exploitPath)
            << '"'
            << ", \"sim_seconds\": "
            << strfmt("%.9g", r.simSeconds).c_str()
            << ", \"time_to_flip_minutes\": "
            << strfmt("%.9g", r.report.timeToFirstFlipMinutes).c_str();
        if (!r.metrics.empty()) {
            out << ", \"metrics\": {";
            for (std::size_t k = 0; k < r.metrics.size(); ++k)
                out << (k ? ", " : "") << '"'
                    << jsonEscape(r.metrics[k].first)
                    << "\": " << strfmt("%.9g", r.metrics[k].second).c_str();
            out << '}';
        }
        out << '}' << (i + 1 < results.size() ? "," : "") << '\n';
    }
    CampaignAggregate agg = aggregate(results);
    out << "  ],\n  \"aggregate\": {"
        << "\"runs\": " << agg.runs
        << ", \"failed_runs\": " << agg.failedRuns
        << ", \"flipped_runs\": " << agg.flippedRuns
        << ", \"escalated_runs\": " << agg.escalatedRuns
        << ", \"total_flips\": " << agg.totalFlips
        << ", \"total_attempts\": " << agg.totalAttempts
        << ", \"mean_sim_seconds\": "
        << strfmt("%.9g", agg.simSeconds.mean()).c_str()
        << ", \"mean_time_to_flip_minutes\": "
        << strfmt("%.9g", agg.timeToFlipMinutes.mean()).c_str()
        << ", \"fingerprint\": \"" << strfmt("%016llx",
               static_cast<unsigned long long>(agg.fingerprint())).c_str()
        << "\"}\n}\n";
    return out.str();
}

Table
Campaign::summaryTable(const std::vector<RunResult> &results)
{
    Table table({"Run", "Machine", "Defense", "Strategy", "Seed",
                 "Flips", "Escalated", "Time to flip"});
    for (const RunResult &r : results) {
        if (!r.ok) {
            table.addRow({r.label, r.machine, r.defense, r.strategy,
                          strfmt("%llu",
                                 static_cast<unsigned long long>(r.seed)),
                          "ERROR", "-", r.error});
            continue;
        }
        table.addRow(
            {r.label, r.machine, r.defense, r.strategy,
             strfmt("%llu", static_cast<unsigned long long>(r.seed)),
             strfmt("%llu", static_cast<unsigned long long>(r.flips)),
             r.escalated ? "YES" : "no",
             r.flipped
                 ? strfmt("%.1f m", r.report.timeToFirstFlipMinutes)
                 : "none"});
    }
    return table;
}

} // namespace pth
