/**
 * @file
 * Multi-process campaign dispatch: spawn N shard workers of the
 * current bench binary, each executing the residue class
 * index % N == shard of the same campaign (CampaignOptions::
 * {shardIndex,shardCount}) into its own JSONL journal, then merge the
 * shard journals back into one canonical journal
 * (ResultStore::merge) the parent serves its report from.
 *
 * The runner owns the process plumbing the campaign layer cannot:
 * fork/exec of the worker fleet, per-worker stdout+stderr capture to
 * a log file, death detection (nonzero exit, signal, failed exec)
 * and straggler respawn — a dead worker is re-spawned with the same
 * shard and journal, so it resumes from its own checkpoint and only
 * repeats the runs it lost. A worker that keeps dying past
 * maxRespawns is reported with its decoded wait status and the tail
 * of its captured output, which BenchCli folds into the parent's
 * report so the bench exits nonzero instead of quietly shrinking the
 * sweep.
 *
 * Because every run is executed exactly once by some worker and the
 * journal round-trips every report-feeding field exactly, the merged
 * report is byte-identical to a single-process serial run —
 * tests/test_shard.cpp pins this, including under kill -9.
 */

#ifndef PTH_HARNESS_SHARD_RUNNER_HH
#define PTH_HARNESS_SHARD_RUNNER_HH

#include <string>
#include <vector>

namespace pth
{

/** How to spawn a shard-worker fleet. */
struct ShardRunnerOptions
{
    /** Binary to exec for every worker (normally argv[0]). */
    std::string program;

    /**
     * Arguments forwarded to every worker ahead of the runner's own
     * flags — the bench-specific knobs (--tiny, --dram-model=...)
     * that make the worker rebuild the identical campaign.
     */
    std::vector<std::string> args;

    /** Worker count; each gets --shard i/workers. */
    unsigned workers = 2;

    /** Shard i journals (and logs) at journalBase + ".shard<i>". */
    std::string journalBase;

    /** Worker threads each subprocess runs (--threads N). */
    unsigned threadsPerWorker = 1;

    /** Pass --fresh to the first spawn of every worker (respawns
     * never do — resuming the worker's journal is the point). */
    bool fresh = false;

    /** Extra attempts after a death before giving a worker up. */
    unsigned maxRespawns = 2;
};

/** What one worker slot did, across all its spawn attempts. */
struct ShardWorkerReport
{
    unsigned shard = 0;         //!< --shard shard/workers
    std::string journalPath;    //!< the worker's own journal
    std::string logPath;        //!< captured stdout+stderr
    unsigned spawns = 0;        //!< attempts (1 = never died)
    bool ok = false;            //!< final attempt exited 0
    std::string error;          //!< decoded death reason when !ok
    std::string logTail;        //!< end of the log when !ok
};

/** Spawns, supervises and respawns a shard-worker fleet. */
class ShardRunner
{
  public:
    explicit ShardRunner(ShardRunnerOptions options);

    /**
     * Spawn every worker, wait for the fleet, respawning dead
     * workers (resuming their journals) up to maxRespawns times
     * each. Returns one report per worker; inspect ok/error.
     * POSIX-only (fork/exec) — like the rest of the simulator's
     * host tooling.
     */
    std::vector<ShardWorkerReport> run();

    /** journalBase + ".shard<i>" — where worker i checkpoints. */
    std::string shardJournalPath(unsigned shard) const;

    /** The same path rule without a runner instance. */
    static std::string shardJournalPath(const std::string &journalBase,
                                        unsigned shard);

    /** Human-readable decode of a waitpid status. */
    static std::string describeWaitStatus(int status);

    /** Last maxBytes of a file (worker-log postmortems). */
    static std::string fileTail(const std::string &path,
                                std::size_t maxBytes = 2048);

  private:
    /** argv for one worker attempt. */
    std::vector<std::string> workerArgs(unsigned shard,
                                        bool fresh) const;

    /** fork/exec one attempt; returns the pid or -1. firstAttempt
     * truncates the worker's log, respawns append to it. */
    long spawn(unsigned shard, bool fresh, bool firstAttempt) const;

    ShardRunnerOptions options_;
};

/**
 * Seed each shard journal (journalBase + ".shard<i>", i in
 * [0, workers)) with the parent journal's entries for its residue
 * class, so a campaign previously completed (or partially completed)
 * under another dispatch mode is not recomputed by the worker fleet.
 * Idempotent: an entry the shard journal already holds under the same
 * key is not re-appended, and workers still re-validate every seeded
 * entry by spec key. A missing parent journal seeds nothing.
 *
 * Returns the number of entries appended across all shard journals.
 */
std::size_t seedShardJournalsFromParent(
    const std::string &parentJournal, const std::string &journalBase,
    unsigned workers);

} // namespace pth

#endif // PTH_HARNESS_SHARD_RUNNER_HH
