/**
 * @file
 * The command-line front end shared by every campaign-driven bench
 * binary, so the whole bench suite speaks one dialect:
 *
 *   --json[=PATH]   dump the raw campaign JSON report after the
 *                   summary table (stdout, or clean to PATH)
 *   --journal PATH  checkpoint completed runs to the JSONL journal
 *                   at PATH and resume from it when it exists
 *   --fresh         with --journal: discard the journal and rerun
 *                   everything
 *   --threads N     worker count (overrides PTH_THREADS; 0 = all
 *                   cores, 1 = serial)
 *   --pool-algo A   LLC pool-build algorithm for benches that build
 *                   eviction pools: single[-elimination] or
 *                   group[-testing] (the default)
 *   --pool-threads N  extraction workers inside one pool build
 *                   (1 = serial, 0 = all cores; the pool is
 *                   byte-identical either way)
 *   --dram-model M  DRAM flip model for every run of the sweep:
 *                   ddr3 (the seeded default), trr (DDR4-style
 *                   target-row-refresh), distance2 (half-double) or
 *                   ecc (single-error-correcting DIMMs)
 *   --help          usage
 *
 * Defaults: threads from PTH_THREADS (all cores when unset), no
 * journal, no JSON. parse() exits the process on --help (status 0)
 * and on unknown arguments (status 2), so benches stay one-liners.
 */

#ifndef PTH_HARNESS_BENCH_CLI_HH
#define PTH_HARNESS_BENCH_CLI_HH

#include <string>
#include <vector>

#include "harness/campaign.hh"

namespace pth
{

/** Parsed bench command line. */
struct BenchCli
{
    /** Ready-to-use campaign options (threads, journal, resume). */
    CampaignOptions options;

    bool json = false;      //!< --json given
    std::string jsonPath;   //!< --json=PATH target; empty = stdout

    /** Pool-build knobs (--pool-algo / --pool-threads); benches that
     * build LLC eviction pools copy this into their AttackConfig. */
    PoolBuildOptions pool;

    /** DRAM flip model (--dram-model); benches copy this into every
     * RunSpec so the whole sweep runs the selected scenario. */
    FlipModelKind dramModel = FlipModelKind::Ddr3Seeded;

    /**
     * Parse the standard bench flags. summary is the one-line
     * description printed by --help.
     */
    static BenchCli parse(int argc, char **argv, const char *summary);

    /**
     * Print "run X failed: ..." for every failed run and return the
     * failure count (the bench's exit status is nonzero when > 0 —
     * failure isolation: the sweep completes, the process still
     * reports the breakage).
     */
    static unsigned
    reportFailures(const std::vector<RunResult> &results);

    /**
     * Honor --json: render Campaign::toJson(results) to stdout or to
     * the --json=PATH file. Returns false (with a message on stderr)
     * when the file cannot be written.
     */
    bool emitJson(const std::vector<RunResult> &results) const;

    /**
     * True when an ok run carries fewer metrics than this bench's
     * body records — a resumed journal entry from an older body
     * shape (the spec key cannot see body edits). Prints a
     * "rerun with --fresh" warning so the dropped table row is
     * explained rather than silent.
     */
    static bool staleMetrics(const RunResult &run,
                             std::size_t expected);
};

} // namespace pth

#endif // PTH_HARNESS_BENCH_CLI_HH
