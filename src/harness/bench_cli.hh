/**
 * @file
 * The command-line front end shared by every campaign-driven bench
 * binary, so the whole bench suite speaks one dialect:
 *
 *   --json[=PATH]   dump the raw campaign JSON report after the
 *                   summary table (stdout, or clean to PATH)
 *   --journal PATH  checkpoint completed runs to the JSONL journal
 *                   at PATH and resume from it when it exists
 *   --fresh         with --journal: discard the journal and rerun
 *                   everything
 *   --threads N     worker count (overrides PTH_THREADS; 0 = all
 *                   cores, 1 = serial)
 *   --shard I/N     execute only runs with index % N == I into this
 *                   process's journal (requires --journal) — the
 *                   manual multi-host dispatch building block; merge
 *                   the shard journals with tools/campaign_merge
 *   --workers N     automatic local multi-process dispatch: fork N
 *                   shard workers of this binary, merge their
 *                   journals, report from the merged journal
 *   --pool-algo A   LLC pool-build algorithm for benches that build
 *                   eviction pools: single[-elimination] or
 *                   group[-testing] (the default)
 *   --pool-threads N  extraction workers inside one pool build
 *                   (1 = serial, 0 = all cores; the pool is
 *                   byte-identical either way)
 *   --dram-model M  DRAM flip model for every run of the sweep:
 *                   ddr3 (the seeded default), trr (DDR4-style
 *                   target-row-refresh), distance2 (half-double) or
 *                   ecc (single-error-correcting DIMMs)
 *   --harts N       harts every run's machine hosts (default 1; the
 *                   single-hart configuration replays exactly like
 *                   builds that predate the flag)
 *   --interleave M[:SEED]  multi-hart stream interleaving:
 *                   round-robin (rr, the default) or seeded
 *                   (random), optionally with the Seeded mode's seed
 *   --cold-machines disable machine snapshot sharing
 *                   (CampaignOptions::reuseMachines): every run
 *                   cold-constructs its machine; reports are
 *                   byte-identical either way
 *   --help          usage
 *
 * Defaults: threads from PTH_THREADS (all cores when unset), no
 * journal, no JSON, no sharding. parse() exits the process on --help
 * (status 0) and on unknown or invalid arguments (status 2), so
 * benches stay one-liners.
 *
 * Sharded dispatch runs through runCampaign(), which every bench
 * calls in place of Campaign::run:
 *  - plain invocation: identical to campaign.run(options);
 *  - --shard I/N (worker mode): runs the slice, checkpoints it,
 *    prints a one-line summary and exits — the real report comes
 *    from the merged journal;
 *  - --workers N (parent mode): spawns N shard workers of this very
 *    binary via ShardRunner (crash detection + respawn/resume),
 *    merges their journals, and returns results served from the
 *    merged journal — byte-identical to a single-process serial run.
 *    A worker that dies for good surfaces as failed runs carrying
 *    its death reason and captured stderr, and in workerDeaths, so
 *    the bench exits nonzero.
 */

#ifndef PTH_HARNESS_BENCH_CLI_HH
#define PTH_HARNESS_BENCH_CLI_HH

#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/shard_runner.hh"

namespace pth
{

/** Parsed bench command line. */
struct BenchCli
{
    /** Ready-to-use campaign options (threads, journal, resume,
     * shard slice). */
    CampaignOptions options;

    bool json = false;      //!< --json given
    std::string jsonPath;   //!< --json=PATH target; empty = stdout

    /** --workers N; 1 = no process fan-out, 0 = one per core. */
    unsigned workers = 1;

    /** Pool-build knobs (--pool-algo / --pool-threads); benches that
     * build LLC eviction pools copy this into their AttackConfig. */
    PoolBuildOptions pool;

    /** DRAM flip model (--dram-model); benches copy this into every
     * RunSpec so the whole sweep runs the selected scenario. */
    FlipModelKind dramModel = FlipModelKind::Ddr3Seeded;

    /** Machine topology and interleaving (--harts / --interleave);
     * multi-hart benches copy these into every RunSpec. */
    unsigned harts = 1;
    InterleaveMode interleave = InterleaveMode::RoundRobin;
    std::uint64_t interleaveSeed = 0;

    /** Filled by runCampaign() in --workers parent mode: one report
     * per worker, and how many died for good (each also surfaces as
     * failed runs in the results). Benches add workerDeaths to their
     * failure count so a lost shard always exits nonzero. */
    std::vector<ShardWorkerReport> workerReports;
    unsigned workerDeaths = 0;

    /** The binary (argv[0]) and the arguments a spawned shard worker
     * must receive to rebuild the identical campaign — the parsed
     * passthrough flags plus the sweep-shaping ones (--pool-algo,
     * --pool-threads, --dram-model). Populated by parse(). */
    std::string program;
    std::vector<std::string> forwardArgs;

    /** --threads was given explicitly (parent forwards it per
     * worker; otherwise workers run serial). */
    bool threadsExplicit = false;

    /**
     * Parse the standard bench flags. summary is the one-line
     * description printed by --help. Bench-specific flags the bench
     * consumed before calling parse (e.g. bench_pool_build's
     * --tiny) must be listed in passthrough so --workers can hand
     * them to the shard workers it spawns.
     */
    static BenchCli
    parse(int argc, char **argv, const char *summary,
          const std::vector<std::string> &passthrough = {});

    /**
     * Execute the campaign under the parsed dispatch mode — see the
     * file comment. Every bench calls this instead of
     * Campaign::run(options). In --shard worker mode this does not
     * return (the worker exits after checkpointing its slice).
     */
    std::vector<RunResult> runCampaign(const Campaign &campaign);

    /**
     * Print "run X failed: ..." for every failed run and return the
     * failure count (the bench's exit status is nonzero when > 0 —
     * failure isolation: the sweep completes, the process still
     * reports the breakage).
     */
    static unsigned
    reportFailures(const std::vector<RunResult> &results);

    /**
     * reportFailures plus workerDeaths — the one number every bench
     * turns into its exit status, so a permanently dead shard worker
     * can never exit 0 even if every journaled run looks fine.
     */
    unsigned
    failureCount(const std::vector<RunResult> &results) const
    {
        return reportFailures(results) + workerDeaths;
    }

    /**
     * Honor --json: render Campaign::toJson(results) to stdout or to
     * the --json=PATH file. Returns false (with a message on stderr)
     * when the file cannot be written.
     */
    bool emitJson(const std::vector<RunResult> &results) const;

    /**
     * True when an ok run carries fewer metrics than this bench's
     * body records — a resumed journal entry from an older body
     * shape (the spec key cannot see body edits). Prints a
     * "rerun with --fresh" warning so the dropped table row is
     * explained rather than silent.
     */
    static bool staleMetrics(const RunResult &run,
                             std::size_t expected);
};

} // namespace pth

#endif // PTH_HARNESS_BENCH_CLI_HH
