#include "harness/campaign_ctl.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/table.hh"
#include "harness/shard_runner.hh"

namespace pth
{

// ---------------------------------------------------------------- //
// Manifest                                                         //
// ---------------------------------------------------------------- //

namespace
{

/** Strict key check: manifests are config, and a typoed key that
 * silently does nothing is how a 100-shard campaign runs with the
 * wrong arguments. */
bool
checkKeys(const JsonValue &obj,
          const std::vector<std::string> &allowed,
          const std::string &where, std::string &error)
{
    for (const auto &member : obj.members()) {
        if (std::find(allowed.begin(), allowed.end(),
                      member.first) != allowed.end())
            continue;
        error = where + ": unknown key \"" + member.first + "\"";
        return false;
    }
    return true;
}

bool
parseCampaign(const JsonValue &obj, std::size_t position,
              ManifestCampaign &out, std::string &error)
{
    const std::string where = strfmt("campaign #%zu", position);
    if (!obj.isObject()) {
        error = where + ": not an object";
        return false;
    }
    if (!checkKeys(obj,
                   {"name", "program", "args", "shards", "journal",
                    "report"},
                   where, error))
        return false;

    const JsonValue *name = obj.find("name");
    if (!name || !name->isString() || name->asString().empty()) {
        error = where + ": missing or empty \"name\"";
        return false;
    }
    out.name = name->asString();
    if (out.name.find('/') != std::string::npos ||
        out.name.find_first_of(" \t\n") != std::string::npos) {
        // The name labels dispatch-log lines ("name/shard") and
        // derives artifact paths, so it cannot hold separators.
        error = where + ": name \"" + out.name +
                "\" may not contain '/' or whitespace";
        return false;
    }

    const JsonValue *program = obj.find("program");
    if (!program || !program->isString() ||
        program->asString().empty()) {
        error = where + " (" + out.name +
                "): missing or empty \"program\"";
        return false;
    }
    out.program = program->asString();

    if (const JsonValue *args = obj.find("args")) {
        if (!args->isArray()) {
            error = where + " (" + out.name +
                    "): \"args\" is not an array";
            return false;
        }
        for (const JsonValue &arg : args->items()) {
            if (!arg.isString()) {
                error = where + " (" + out.name +
                        "): \"args\" holds a non-string";
                return false;
            }
            out.args.push_back(arg.asString());
        }
    }

    if (const JsonValue *shards = obj.find("shards")) {
        if (!shards->isNumber() || shards->asU64() == 0 ||
            shards->asDouble() !=
                static_cast<double>(shards->asU64())) {
            error = where + " (" + out.name +
                    "): \"shards\" must be a positive integer";
            return false;
        }
        out.shards = static_cast<unsigned>(shards->asU64());
    }

    if (const JsonValue *journal = obj.find("journal")) {
        if (!journal->isString()) {
            error = where + " (" + out.name +
                    "): \"journal\" is not a string";
            return false;
        }
        out.journal = journal->asString();
    }
    if (const JsonValue *report = obj.find("report")) {
        if (!report->isString()) {
            error = where + " (" + out.name +
                    "): \"report\" is not a string";
            return false;
        }
        out.report = report->asString();
    }
    return true;
}

} // namespace

bool
Manifest::parse(const std::string &text, Manifest &out,
                std::string &error)
{
    JsonValue doc;
    if (!JsonValue::parse(text, doc) || !doc.isObject()) {
        error = "manifest is not a JSON object";
        return false;
    }
    if (!checkKeys(doc, {"campaigns"}, "manifest", error))
        return false;
    const JsonValue *campaigns = doc.find("campaigns");
    if (!campaigns || !campaigns->isArray() ||
        campaigns->items().empty()) {
        error = "manifest has no campaigns";
        return false;
    }

    Manifest parsed;
    for (std::size_t i = 0; i < campaigns->items().size(); ++i) {
        ManifestCampaign campaign;
        if (!parseCampaign(campaigns->items()[i], i, campaign, error))
            return false;
        for (const ManifestCampaign &seen : parsed.campaigns)
            if (seen.name == campaign.name) {
                error = "duplicate campaign name \"" + campaign.name +
                        "\"";
                return false;
            }
        parsed.campaigns.push_back(std::move(campaign));
    }
    out = std::move(parsed);
    return true;
}

bool
Manifest::load(const std::string &path, Manifest &out,
               std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!Manifest::parse(buffer.str(), out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

// ---------------------------------------------------------------- //
// Orchestrator                                                     //
// ---------------------------------------------------------------- //

/** One schedulable unit: a shard slice of a campaign, or the render
 * pass that turns a merged journal into the final report. */
struct CampaignCtl::Task
{
    enum class Kind { Shard, Render };

    /** One subprocess lineage of the task: the primary, or a
     * speculative backup. Respawns stay within the instance (same
     * journal, resumed); re-issue adds an instance. */
    struct Instance
    {
        std::string journal;
        std::string log;
        unsigned spawns = 0;
        bool live = false;
        bool dead = false;       //!< gave up (respawns exhausted)
        bool superseded = false; //!< killed because a sibling won
        std::string error;       //!< last death reason
    };

    Kind kind = Kind::Shard;
    std::size_t campaign = 0;
    unsigned shard = 0;
    std::string label; //!< "name/shard" or "name/render" (logs)

    std::vector<Instance> instances;
    bool done = false;
    bool ok = false;
    std::string winnerJournal;
};

namespace
{

/** fork/exec one worker, stdout+stderr captured to logPath
 * (truncated on an instance's first attempt, appended on respawns so
 * the log shows every attempt). Returns the pid or -1. */
long
spawnWorker(const std::vector<std::string> &args,
            const std::string &logPath, bool firstAttempt)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid > 0)
        return pid;

    const int fd = ::open(logPath.c_str(),
                          O_WRONLY | O_CREAT |
                              (firstAttempt ? O_TRUNC : O_APPEND),
                          0644);
    if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO)
            ::close(fd);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(args[0].c_str(), argv.data());
    // Failed-exec path of a just-forked child: single thread by
    // construction.
    std::fprintf(stderr, "campaign_ctl: cannot exec %s: %s\n",
                 args[0].c_str(),
                 std::strerror(errno)); // NOLINT(concurrency-mt-unsafe)
    ::_exit(127);
}

/** Copy a journal snapshot for a backup instance. The source may be
 * mid-append; a torn final line is exactly what ResultStore::load
 * tolerates, so the backup resumes from the straggler's last complete
 * checkpoint. A missing source yields an empty (fresh) journal. */
bool
copyJournalSnapshot(const std::string &from, const std::string &to)
{
    std::ofstream out(to, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    std::ifstream in(from, std::ios::binary);
    if (in)
        out << in.rdbuf();
    return true;
}

} // namespace

CampaignCtl::CampaignCtl(Manifest manifest, CampaignCtlOptions options)
    : manifest_(std::move(manifest)), options_(std::move(options))
{
}

CampaignCtl::~CampaignCtl() = default;

std::string
CampaignCtl::journalPath(const ManifestCampaign &campaign) const
{
    if (!campaign.journal.empty())
        return campaign.journal;
    return options_.outDir + "/" + campaign.name + ".jsonl";
}

std::string
CampaignCtl::reportPath(const ManifestCampaign &campaign) const
{
    if (!campaign.report.empty())
        return campaign.report;
    return options_.outDir + "/" + campaign.name + ".json";
}

void
CampaignCtl::logLine(const std::string &line) const
{
    if (!options_.log)
        return;
    *options_.log << "[ctl] " << line << '\n';
    options_.log->flush();
}

bool
CampaignCtl::startTask(std::size_t taskId)
{
    Task &task = tasks_[taskId];
    const ManifestCampaign &campaign =
        manifest_.campaigns[task.campaign];

    Task::Instance instance;
    if (task.kind == Task::Kind::Shard) {
        instance.journal = ShardRunner::shardJournalPath(
            journalPath(campaign), task.shard);
        instance.log = instance.journal + ".log";
        // A fresh suite must not resume stale shard journals even if
        // the worker dies before its own --fresh truncation runs.
        if (options_.fresh)
            std::remove(instance.journal.c_str());
    } else {
        instance.journal = journalPath(campaign);
        instance.log = instance.journal + ".render.log";
    }
    task.instances.push_back(std::move(instance));
    Task::Instance &primary = task.instances.back();

    std::vector<std::string> args;
    args.push_back(campaign.program);
    args.insert(args.end(), campaign.args.begin(),
                campaign.args.end());
    if (task.kind == Task::Kind::Shard) {
        args.push_back(strfmt("--shard=%u/%u", task.shard,
                              campaign.shards));
        args.push_back("--journal=" + primary.journal);
        if (options_.fresh)
            args.push_back("--fresh");
    } else {
        args.push_back("--journal=" + primary.journal);
        args.push_back("--json=" + reportPath(campaign));
    }
    args.push_back("--threads=1");

    const long pid =
        spawnWorker(args, primary.log, /*firstAttempt=*/true);
    if (pid < 0) {
        primary.dead = true;
        // The orchestrator is single-threaded (fork-based fan-out).
        primary.error = strfmt(
            "fork failed: %s",
            std::strerror(errno)); // NOLINT(concurrency-mt-unsafe)
        return false;
    }
    primary.spawns = 1;
    primary.live = true;
    ++outcomes_[task.campaign].spawns;
    live_.push_back({pid, {taskId, 0}});
    logLine("spawn " + task.label);

    if (task.kind == Task::Kind::Shard)
        for (const auto &inject : options_.injectKills)
            if (inject.first == campaign.name &&
                inject.second == task.shard) {
                // Deterministic worker-crash injection: the first
                // attempt dies before it can finish, the respawn
                // path has to recover it.
                ::kill(static_cast<pid_t>(pid), SIGKILL);
                logLine("inject-kill " + task.label);
                break;
            }
    return true;
}

bool
CampaignCtl::reissueStraggler()
{
    // Lowest task id first: deterministic given the same set of
    // stragglers, and the longest-queued shard is the most likely to
    // actually be stuck.
    for (std::size_t taskId = 0; taskId < tasks_.size(); ++taskId) {
        Task &task = tasks_[taskId];
        if (task.kind != Task::Kind::Shard || task.done ||
            task.instances.empty())
            continue;
        if (task.instances.size() > options_.maxReissues)
            continue;
        bool anyLive = false;
        for (const Task::Instance &instance : task.instances)
            anyLive |= instance.live;
        if (!anyLive)
            continue;

        const ManifestCampaign &campaign =
            manifest_.campaigns[task.campaign];
        const unsigned index =
            static_cast<unsigned>(task.instances.size());
        Task::Instance backup;
        backup.journal =
            task.instances[0].journal + strfmt(".r%u", index);
        backup.log = backup.journal + ".log";
        if (!copyJournalSnapshot(task.instances[0].journal,
                                 backup.journal))
            continue;

        std::vector<std::string> args;
        args.push_back(campaign.program);
        args.insert(args.end(), campaign.args.begin(),
                    campaign.args.end());
        args.push_back(strfmt("--shard=%u/%u", task.shard,
                              campaign.shards));
        args.push_back("--journal=" + backup.journal);
        args.push_back("--threads=1");

        const long pid =
            spawnWorker(args, backup.log, /*firstAttempt=*/true);
        if (pid < 0)
            continue;
        backup.spawns = 1;
        backup.live = true;
        task.instances.push_back(std::move(backup));
        ++outcomes_[task.campaign].spawns;
        ++outcomes_[task.campaign].reissues;
        live_.push_back({pid, {taskId, index}});
        logLine(strfmt("reissue %s instance %u", task.label.c_str(),
                       index));
        return true;
    }
    return false;
}

void
CampaignCtl::finishCampaign(std::size_t campaignIdx)
{
    const ManifestCampaign &campaign =
        manifest_.campaigns[campaignIdx];
    CampaignOutcome &outcome = outcomes_[campaignIdx];

    std::vector<std::string> inputs;
    bool failed = false;
    for (std::size_t taskId = 0; taskId < tasks_.size(); ++taskId) {
        const Task &task = tasks_[taskId];
        if (task.campaign != campaignIdx ||
            task.kind != Task::Kind::Shard)
            continue;
        if (!task.ok) {
            failed = true;
            continue;
        }
        inputs.push_back(task.winnerJournal);
    }
    if (failed) {
        logLine("campaign " + campaign.name +
                " FAILED: " + outcome.error);
        return;
    }

    // Old campaign journal first (resume), then the winning shard
    // journals — last wins, so fresher shard results supersede.
    if (!options_.fresh) {
        std::ifstream existing(outcome.journal);
        if (existing)
            inputs.insert(inputs.begin(), outcome.journal);
    }

    std::string mergeError;
    const std::string staging = outcome.journal + ".merging";
    if (!ResultStore::merge(inputs, staging, &outcome.mergeStats,
                            &mergeError) ||
        std::rename(staging.c_str(), outcome.journal.c_str()) != 0) {
        std::remove(staging.c_str());
        outcome.error = mergeError.empty()
                            ? "cannot finalize merged journal " +
                                  outcome.journal
                            : mergeError;
        logLine("campaign " + campaign.name +
                " FAILED: " + outcome.error);
        return;
    }
    logLine(strfmt("merge %s: %zu run(s) from %u input(s)%s",
                   campaign.name.c_str(), outcome.mergeStats.entries,
                   outcome.mergeStats.inputs,
                   outcome.mergeStats.corruptLines
                       ? strfmt(", %zu corrupt line(s) skipped",
                                outcome.mergeStats.corruptLines)
                           .c_str()
                       : ""));

    // The report pass re-invokes the bench against the merged
    // journal: every run is served from its checkpoint, so the
    // rendered report is byte-identical to a serial run's.
    Task render;
    render.kind = Task::Kind::Render;
    render.campaign = campaignIdx;
    render.label = campaign.name + "/render";
    tasks_.push_back(std::move(render));
    pending_.push_back(tasks_.size() - 1);
}

unsigned
CampaignCtl::run()
{
    unsigned poolWidth = options_.workers;
    if (poolWidth == 0) {
        poolWidth = std::thread::hardware_concurrency();
        if (poolWidth == 0)
            poolWidth = 1;
    }

    outcomes_.clear();
    tasks_.clear();
    pending_.clear();
    live_.clear();
    nextPending_ = 0;
    shardsLeft_.assign(manifest_.campaigns.size(), 0);

    // Build the queue in manifest order — the deterministic dispatch
    // sequence the log exposes and the tests pin.
    for (std::size_t ci = 0; ci < manifest_.campaigns.size(); ++ci) {
        const ManifestCampaign &campaign = manifest_.campaigns[ci];
        CampaignOutcome outcome;
        outcome.name = campaign.name;
        outcome.journal = journalPath(campaign);
        outcome.report = reportPath(campaign);
        outcomes_.push_back(std::move(outcome));

        if (options_.fresh)
            std::remove(outcomes_[ci].journal.c_str());
        else
            seedShardJournalsFromParent(outcomes_[ci].journal,
                                        outcomes_[ci].journal,
                                        campaign.shards);

        shardsLeft_[ci] = campaign.shards;
        for (unsigned s = 0; s < campaign.shards; ++s) {
            Task task;
            task.kind = Task::Kind::Shard;
            task.campaign = ci;
            task.shard = s;
            task.label = campaign.name + strfmt("/%u", s);
            tasks_.push_back(std::move(task));
            pending_.push_back(tasks_.size() - 1);
        }
    }

    while (true) {
        while (live_.size() < poolWidth &&
               nextPending_ < pending_.size()) {
            const std::size_t taskId = pending_[nextPending_++];
            if (!startTask(taskId)) {
                // Could not even fork: the task fails permanently.
                Task &task = tasks_[taskId];
                task.done = true;
                task.ok = false;
                CampaignOutcome &outcome = outcomes_[task.campaign];
                if (outcome.error.empty())
                    outcome.error =
                        task.label + ": " +
                        task.instances.back().error;
                logLine("dead " + task.label + ": " +
                        task.instances.back().error);
                if (task.kind == Task::Kind::Shard &&
                    --shardsLeft_[task.campaign] == 0)
                    finishCampaign(task.campaign);
            }
        }
        // Queue drained with slots to spare: speculatively back up
        // stragglers instead of idling.
        if (nextPending_ >= pending_.size())
            while (live_.size() < poolWidth && reissueStraggler()) {
            }
        if (live_.empty())
            break;

        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            break; // no children left we know about
        }
        auto it = live_.begin();
        for (; it != live_.end(); ++it)
            if (it->first == pid)
                break;
        if (it == live_.end())
            continue;
        const std::size_t taskId = it->second.first;
        const unsigned instanceIdx = it->second.second;
        live_.erase(it);

        Task &task = tasks_[taskId];
        Task::Instance &instance = task.instances[instanceIdx];
        instance.live = false;
        const ManifestCampaign &campaign =
            manifest_.campaigns[task.campaign];
        CampaignOutcome &outcome = outcomes_[task.campaign];

        if (task.done) {
            // A sibling already won and this instance was killed for
            // it; nothing to account.
            continue;
        }

        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            task.done = true;
            task.ok = true;
            task.winnerJournal = instance.journal;
            if (instanceIdx == 0)
                logLine("exit " + task.label + " ok");
            else
                logLine(strfmt("exit %s ok (backup instance %u won)",
                               task.label.c_str(), instanceIdx));
            // Losing instances are moot now; reap them via the
            // task.done early-out above.
            for (auto &entry : live_)
                if (entry.second.first == taskId) {
                    ::kill(static_cast<pid_t>(entry.first), SIGKILL);
                    task.instances[entry.second.second].superseded =
                        true;
                    logLine(strfmt("supersede %s instance %u",
                                   task.label.c_str(),
                                   entry.second.second));
                }
            if (task.kind == Task::Kind::Shard) {
                if (--shardsLeft_[task.campaign] == 0)
                    finishCampaign(task.campaign);
            } else {
                outcome.ok = outcome.error.empty();
                logLine("report " + campaign.name + ": " +
                        outcome.report);
            }
            continue;
        }

        // Death. A render pass that EXITS nonzero did its work and
        // found failing runs (or could not write the report) — a
        // deterministic verdict a respawn would only repeat.
        if (task.kind == Task::Kind::Render && WIFEXITED(status)) {
            task.done = true;
            task.ok = false;
            if (outcome.error.empty())
                outcome.error = strfmt(
                    "report render exited with status %d (log: %s)",
                    WEXITSTATUS(status), instance.log.c_str());
            logLine("campaign " + campaign.name +
                    " FAILED: " + outcome.error);
            continue;
        }

        if (instance.spawns <= options_.maxRespawns) {
            // Respawn the same instance without --fresh: the
            // replacement resumes the instance's journal and repeats
            // only the runs the dead attempt had not checkpointed.
            std::vector<std::string> args;
            args.push_back(campaign.program);
            args.insert(args.end(), campaign.args.begin(),
                        campaign.args.end());
            if (task.kind == Task::Kind::Shard) {
                args.push_back(strfmt("--shard=%u/%u", task.shard,
                                      campaign.shards));
                args.push_back("--journal=" + instance.journal);
            } else {
                args.push_back("--journal=" + instance.journal);
                args.push_back("--json=" + reportPath(campaign));
            }
            args.push_back("--threads=1");
            const long next = spawnWorker(args, instance.log,
                                          /*firstAttempt=*/false);
            if (next >= 0) {
                ++instance.spawns;
                ++outcome.spawns;
                instance.live = true;
                live_.push_back({next, {taskId, instanceIdx}});
                logLine(strfmt("respawn %s attempt %u",
                               task.label.c_str(), instance.spawns));
                continue;
            }
        }

        // This instance is out of lives.
        instance.dead = true;
        instance.error = ShardRunner::describeWaitStatus(status);
        logLine(strfmt("dead %s instance %u: %s", task.label.c_str(),
                       instanceIdx, instance.error.c_str()));
        bool anyHope = false;
        for (const Task::Instance &other : task.instances)
            anyHope |= other.live;
        if (anyHope)
            continue;

        task.done = true;
        task.ok = false;
        if (outcome.error.empty()) {
            outcome.error = task.label + " died after " +
                            strfmt("%u attempt(s): ", instance.spawns) +
                            instance.error;
            const std::string tail =
                ShardRunner::fileTail(instance.log);
            if (!tail.empty())
                outcome.error += "; log tail: " + tail;
        }
        if (task.kind == Task::Kind::Shard) {
            if (--shardsLeft_[task.campaign] == 0)
                finishCampaign(task.campaign);
        } else {
            logLine("campaign " + campaign.name +
                    " FAILED: " + outcome.error);
        }
    }

    unsigned failures = 0;
    for (CampaignOutcome &outcome : outcomes_) {
        if (!outcome.ok && outcome.error.empty())
            outcome.error = "campaign did not complete";
        failures += !outcome.ok;
    }
    return failures;
}

} // namespace pth
