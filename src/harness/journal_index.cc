#include "harness/journal_index.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/json.hh"
#include "common/table.hh"
#include "harness/result_store.hh"

namespace pth
{

const char *
runAxisName(RunAxis axis)
{
    switch (axis) {
    case RunAxis::Label: return "label";
    case RunAxis::Machine: return "machine";
    case RunAxis::Defense: return "defense";
    case RunAxis::Strategy: return "strategy";
    case RunAxis::Seed: return "seed";
    case RunAxis::DramModel: return "dram-model";
    }
    return "?";
}

bool
parseRunAxis(const std::string &text, RunAxis &out)
{
    if (text == "label") {
        out = RunAxis::Label;
    } else if (text == "machine" || text == "preset") {
        out = RunAxis::Machine;
    } else if (text == "defense") {
        out = RunAxis::Defense;
    } else if (text == "strategy") {
        out = RunAxis::Strategy;
    } else if (text == "seed") {
        out = RunAxis::Seed;
    } else if (text == "dram-model" || text == "dram_model" ||
               text == "model") {
        out = RunAxis::DramModel;
    } else {
        return false;
    }
    return true;
}

std::string
IndexedRun::axisValue(RunAxis axis) const
{
    switch (axis) {
    case RunAxis::Label: return label;
    case RunAxis::Machine: return machine;
    case RunAxis::Defense: return defense;
    case RunAxis::Strategy: return strategy;
    case RunAxis::Seed:
        return strfmt("%llu", static_cast<unsigned long long>(seed));
    case RunAxis::DramModel:
        return dramModel.empty() ? "unrecorded" : dramModel;
    }
    return std::string();
}

IndexedRun
indexedRunFromResult(const RunResult &r, std::uint64_t key)
{
    IndexedRun run;
    run.index = r.index;
    run.label = r.label;
    run.machine = r.machine;
    run.defense = r.defense;
    run.strategy = r.strategy;
    run.dramModel = r.dramModel;
    run.seed = r.seed;
    run.key = key;
    run.ok = r.ok;
    run.flipped = r.flipped;
    run.escalated = r.escalated;
    run.flips = r.flips;
    run.attempts = r.attempts;
    run.simSeconds = r.simSeconds;
    run.timeToFlipMinutes = r.report.timeToFirstFlipMinutes;
    run.metrics = r.metrics;
    return run;
}

namespace
{

/** Parse one object of a report's "runs" array (campaign toJson). */
bool
indexedRunFromReportObject(const JsonValue &obj, IndexedRun &run)
{
    if (!obj.isObject())
        return false;
    const JsonValue *label = obj.find("label");
    const JsonValue *index = obj.find("index");
    if (!label || !label->isString() || !index)
        return false;
    run.index = index->asU64();
    run.label = label->asString();
    if (const JsonValue *v = obj.find("machine"))
        run.machine = v->asString();
    if (const JsonValue *v = obj.find("defense"))
        run.defense = v->asString();
    if (const JsonValue *v = obj.find("strategy"))
        run.strategy = v->asString();
    if (const JsonValue *v = obj.find("dram_model"))
        run.dramModel = v->asString();
    if (const JsonValue *v = obj.find("seed"))
        run.seed = v->asU64();
    if (const JsonValue *v = obj.find("ok"))
        run.ok = v->asBool(true);
    if (const JsonValue *v = obj.find("flipped"))
        run.flipped = v->asBool();
    if (const JsonValue *v = obj.find("escalated"))
        run.escalated = v->asBool();
    if (const JsonValue *v = obj.find("flips"))
        run.flips = v->asU64();
    if (const JsonValue *v = obj.find("attempts"))
        run.attempts = v->asU64();
    if (const JsonValue *v = obj.find("sim_seconds"))
        run.simSeconds = v->asDouble();
    if (const JsonValue *v = obj.find("time_to_flip_minutes"))
        run.timeToFlipMinutes = v->asDouble();
    if (const JsonValue *metrics = obj.find("metrics"))
        for (const auto &member : metrics->members())
            run.metrics.emplace_back(member.first,
                                     member.second.asDouble());
    return true;
}

} // namespace

void
JournalIndex::insert(IndexedRun run)
{
    ++stats_.entries;
    auto it = byIndex_.find(run.index);
    if (it != byIndex_.end()) {
        ++stats_.superseded;
        it->second = std::move(run);
        return;
    }
    byIndex_.emplace(run.index, std::move(run));
}

bool
JournalIndex::addJournal(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    ++stats_.journals;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ResultStore::Entry entry;
        if (!ResultStore::deserialize(line, entry)) {
            ++stats_.corruptLines;
            continue;
        }
        insert(indexedRunFromResult(entry.result, entry.key));
    }
    return true;
}

bool
JournalIndex::addArtifact(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot read " + path;
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    JsonValue doc;
    if (JsonValue::parse(text, doc) && doc.isObject() &&
        doc.find("runs")) {
        ++stats_.reports;
        std::size_t loaded = 0;
        for (const JsonValue &obj : doc.find("runs")->items()) {
            IndexedRun run;
            if (!indexedRunFromReportObject(obj, run))
                continue;
            insert(std::move(run));
            ++loaded;
        }
        if (loaded == 0) {
            if (error)
                *error = path + ": campaign report contains no runs";
            return false;
        }
        return true;
    }

    // Not a report: journal lines. Parse from the text already read
    // so the damage count belongs to this artifact alone.
    ++stats_.journals;
    std::size_t loaded = 0;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        ResultStore::Entry entry;
        if (!ResultStore::deserialize(line, entry)) {
            ++stats_.corruptLines;
            continue;
        }
        insert(indexedRunFromResult(entry.result, entry.key));
        ++loaded;
    }
    if (loaded == 0) {
        if (error)
            *error =
                path + ": neither a campaign report nor a journal";
        return false;
    }
    return true;
}

std::vector<const IndexedRun *>
JournalIndex::runs() const
{
    std::vector<const IndexedRun *> out;
    out.reserve(byIndex_.size());
    for (const auto &item : byIndex_)
        out.push_back(&item.second);
    return out;
}

bool
JournalIndex::parseFilter(const std::string &text, Filter &out,
                          std::string *error)
{
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0) {
        if (error)
            *error = "bad filter '" + text + "' (use AXIS=VALUE)";
        return false;
    }
    const std::string axis = text.substr(0, eq);
    if (!parseRunAxis(axis, out.axis)) {
        if (error)
            *error = "unknown axis '" + axis +
                     "' (use label, machine, defense, strategy,"
                     " seed or dram-model)";
        return false;
    }
    out.value = text.substr(eq + 1);
    return true;
}

std::vector<const IndexedRun *>
JournalIndex::select(const std::vector<Filter> &filters) const
{
    std::vector<const IndexedRun *> out;
    for (const auto &item : byIndex_) {
        const IndexedRun &run = item.second;
        bool match = true;
        for (const Filter &f : filters)
            if (run.axisValue(f.axis) != f.value) {
                match = false;
                break;
            }
        if (match)
            out.push_back(&run);
    }
    return out;
}

void
aggregateIndexedRun(CampaignAggregate &agg, const IndexedRun &run)
{
    // The same fold CampaignAggregate::add applies to a RunResult,
    // over the indexed projection.
    ++agg.runs;
    if (!run.ok) {
        ++agg.failedRuns;
        return;
    }
    agg.flippedRuns += run.flipped;
    agg.escalatedRuns += run.escalated;
    agg.totalFlips += run.flips;
    agg.totalAttempts += run.attempts;
    agg.simSeconds.sample(run.simSeconds);
    agg.flipsPerRun.sample(static_cast<double>(run.flips));
    if (run.flipped)
        agg.timeToFlipMinutes.sample(run.timeToFlipMinutes);
}

std::vector<JournalIndex::Group>
JournalIndex::groupBy(const std::vector<const IndexedRun *> &runs,
                      RunAxis axis)
{
    std::map<std::string, CampaignAggregate> groups;
    for (const IndexedRun *run : runs)
        aggregateIndexedRun(groups[run->axisValue(axis)], *run);

    std::vector<Group> out;
    out.reserve(groups.size());
    for (auto &item : groups)
        out.push_back(Group{item.first, item.second});
    if (axis == RunAxis::Seed)
        std::sort(out.begin(), out.end(),
                  [](const Group &a, const Group &b) {
                      return std::strtoull(a.value.c_str(), nullptr,
                                           10) <
                             std::strtoull(b.value.c_str(), nullptr,
                                           10);
                  });
    return out;
}

Table
JournalIndex::groupTable(const std::vector<Group> &groups,
                         RunAxis axis)
{
    Table table({runAxisName(axis), "Runs", "Failed", "Flipped",
                 "Escalated", "Flips", "Mean sim s",
                 "Mean time-to-flip"});
    for (const Group &group : groups) {
        const CampaignAggregate &agg = group.agg;
        table.addRow(
            {group.value,
             strfmt("%llu", static_cast<unsigned long long>(agg.runs)),
             strfmt("%llu",
                    static_cast<unsigned long long>(agg.failedRuns)),
             strfmt("%llu",
                    static_cast<unsigned long long>(agg.flippedRuns)),
             strfmt("%llu", static_cast<unsigned long long>(
                                agg.escalatedRuns)),
             strfmt("%llu",
                    static_cast<unsigned long long>(agg.totalFlips)),
             strfmt("%.4g", agg.simSeconds.mean()),
             agg.timeToFlipMinutes.count()
                 ? strfmt("%.2f m", agg.timeToFlipMinutes.mean())
                 : "-"});
    }
    return table;
}

Table
JournalIndex::runTable(const std::vector<const IndexedRun *> &runs)
{
    Table table({"Run", "Machine", "Defense", "Strategy", "Dram",
                 "Seed", "Ok", "Flips", "Escalated", "Sim s"});
    for (const IndexedRun *run : runs)
        table.addRow(
            {run->label, run->machine, run->defense, run->strategy,
             run->axisValue(RunAxis::DramModel),
             strfmt("%llu", static_cast<unsigned long long>(run->seed)),
             run->ok ? "yes" : "FAILED",
             strfmt("%llu",
                    static_cast<unsigned long long>(run->flips)),
             run->escalated ? "YES" : "no",
             strfmt("%.4g", run->simSeconds)});
    return table;
}

bool
sameReportValue(double a, double b)
{
    if (a == b)
        return true;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= 1e-8 * scale;
}

namespace
{

bool
sameMetrics(const std::vector<std::pair<std::string, double>> &a,
            const std::vector<std::pair<std::string, double>> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].first != b[i].first ||
            !sameReportValue(a[i].second, b[i].second))
            return false;
    return true;
}

/** Labels appearing more than once across both run sets. */
std::set<std::string>
duplicatedLabels(const std::vector<const IndexedRun *> &a,
                 const std::vector<const IndexedRun *> &b)
{
    std::map<std::string, unsigned> uses;
    for (const IndexedRun *run : a)
        ++uses[run->label];
    for (const IndexedRun *run : b)
        ++uses[run->label];
    std::set<std::string> duplicated;
    for (const auto &item : uses)
        if (item.second > 1)
            duplicated.insert(item.first);
    return duplicated;
}

/**
 * Key runs by label, appending the index for labels duplicated in
 * either artifact — both sides must disambiguate the same way or a
 * label that repeats on one side only would never match the other.
 */
std::map<std::string, const IndexedRun *>
keyByLabel(const std::vector<const IndexedRun *> &runs,
           const std::set<std::string> &duplicated)
{
    std::map<std::string, const IndexedRun *> keyed;
    for (const IndexedRun *run : runs) {
        std::string key =
            duplicated.count(run->label)
                ? run->label + strfmt("#%zu", run->index)
                : run->label;
        keyed[key] = run;
    }
    return keyed;
}

std::string
deltaCell(double base, double current)
{
    if (sameReportValue(base, current))
        return "=";
    const double delta = current - base;
    if (base != 0)
        return strfmt("%+.3g (%+.1f%%)", delta,
                      100.0 * delta / base);
    return strfmt("%+.3g", delta);
}

} // namespace

RunDiff
diffRuns(const std::vector<const IndexedRun *> &baseline,
         const std::vector<const IndexedRun *> &current,
         const RunDiffOptions &options)
{
    RunDiff diff;
    const std::set<std::string> duplicated =
        duplicatedLabels(baseline, current);
    auto baseByLabel = keyByLabel(baseline, duplicated);
    auto curByLabel = keyByLabel(current, duplicated);

    for (const auto &item : baseByLabel) {
        const IndexedRun &b = *item.second;
        RunDelta delta;
        delta.name = item.first;
        delta.base = &b;

        auto match = curByLabel.find(item.first);
        if (match == curByLabel.end()) {
            ++diff.removed;
            delta.status = RunDeltaStatus::Removed;
            diff.deltas.push_back(std::move(delta));
            continue;
        }
        const IndexedRun &c = *match->second;
        delta.current = &c;

        const bool worseOk = b.ok && !c.ok;
        const bool worseFlip = b.flipped && !c.flipped;
        const bool worseEsc = b.escalated && !c.escalated;
        const bool fewerFlips = c.flips < b.flips;
        const bool slower =
            b.simSeconds > 0 &&
            c.simSeconds >
                b.simSeconds * (1.0 + options.tolerancePct / 100.0);

        const bool identical =
            b.ok == c.ok && b.flipped == c.flipped &&
            b.escalated == c.escalated && b.flips == c.flips &&
            b.attempts == c.attempts &&
            sameReportValue(b.simSeconds, c.simSeconds) &&
            sameReportValue(b.timeToFlipMinutes,
                            c.timeToFlipMinutes) &&
            sameMetrics(b.metrics, c.metrics);

        if (worseOk || worseFlip || worseEsc || fewerFlips || slower) {
            ++diff.regressions;
            delta.status = RunDeltaStatus::Regressed;
            delta.detail = worseOk       ? "now fails"
                           : worseFlip   ? "no flip"
                           : worseEsc    ? "no escalation"
                           : fewerFlips  ? "fewer flips"
                                         : "slower";
        } else if (identical) {
            ++diff.unchanged;
            delta.status = RunDeltaStatus::Unchanged;
        } else {
            ++diff.changed;
            delta.status = RunDeltaStatus::Changed;
        }
        diff.deltas.push_back(std::move(delta));
    }

    for (const auto &item : curByLabel) {
        if (baseByLabel.count(item.first))
            continue;
        ++diff.added;
        RunDelta delta;
        delta.name = item.first;
        delta.current = item.second;
        delta.status = RunDeltaStatus::Added;
        diff.deltas.push_back(std::move(delta));
    }
    return diff;
}

Table
diffTable(const RunDiff &diff, bool showAll)
{
    Table table({"Run", "Flips (base -> cur)", "Sim seconds delta",
                 "Time-to-flip delta", "Status"});
    for (const RunDelta &delta : diff.deltas) {
        switch (delta.status) {
        case RunDeltaStatus::Removed:
            table.addRow({delta.name, "-", "-", "-", "REMOVED"});
            continue;
        case RunDeltaStatus::Added:
            table.addRow({delta.name, "-", "-", "-", "ADDED"});
            continue;
        case RunDeltaStatus::Unchanged:
            if (!showAll)
                continue;
            break;
        default:
            break;
        }
        const IndexedRun &b = *delta.base;
        const IndexedRun &c = *delta.current;
        std::string status;
        switch (delta.status) {
        case RunDeltaStatus::Regressed:
            status = "REGRESSION (" + delta.detail + ")";
            break;
        case RunDeltaStatus::Changed:
            status = "changed";
            break;
        default:
            status = "unchanged";
            break;
        }
        table.addRow(
            {delta.name,
             strfmt("%llu -> %llu",
                    static_cast<unsigned long long>(b.flips),
                    static_cast<unsigned long long>(c.flips)),
             deltaCell(b.simSeconds, c.simSeconds),
             deltaCell(b.timeToFlipMinutes, c.timeToFlipMinutes),
             status});
    }
    return table;
}

} // namespace pth
