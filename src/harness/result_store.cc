#include "harness/result_store.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"
#include "common/table.hh"
#include "harness/campaign.hh"

namespace pth
{

namespace
{

/** Fold a string into the hash, length-prefixed. */
std::uint64_t
mixString(std::uint64_t h, const std::string &s)
{
    h = hashCombine(h, s.size());
    for (char c : s)
        h = hashCombine(h, static_cast<unsigned char>(c));
    return h;
}

/** Fold a double's bit pattern into the hash. */
std::uint64_t
mixDouble(std::uint64_t h, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return hashCombine(h, bits);
}

void
writeString(std::ostream &out, const char *name, const std::string &v,
            bool comma = true)
{
    out << '"' << name << "\": \"" << jsonEscape(v) << '"'
        << (comma ? ", " : "");
}

void
writeBool(std::ostream &out, const char *name, bool v,
          bool comma = true)
{
    out << '"' << name << "\": " << (v ? "true" : "false")
        << (comma ? ", " : "");
}

void
writeU64(std::ostream &out, const char *name, std::uint64_t v,
         bool comma = true)
{
    out << '"' << name << "\": " << v << (comma ? ", " : "");
}

void
writeDouble(std::ostream &out, const char *name, double v,
            bool comma = true)
{
    out << '"' << name << "\": " << jsonDouble(v)
        << (comma ? ", " : "");
}

/** Fetch a required member; sets ok = false when absent. */
const JsonValue *
need(const JsonValue &obj, const char *name, bool &ok)
{
    const JsonValue *v = obj.find(name);
    if (!v)
        ok = false;
    return v;
}

// The getters are strict: a present-but-mistyped field marks the
// line corrupt (ok = false) rather than decaying to zero/false and
// letting a mangled journal entry masquerade as a completed run.

std::string
getString(const JsonValue &obj, const char *name, bool &ok)
{
    const JsonValue *v = need(obj, name, ok);
    if (v && !v->isString())
        ok = false;
    return v && v->isString() ? v->asString() : std::string();
}

bool
getBool(const JsonValue &obj, const char *name, bool &ok)
{
    const JsonValue *v = need(obj, name, ok);
    if (v && v->kind() != JsonValue::Kind::Bool)
        ok = false;
    return v ? v->asBool() : false;
}

std::uint64_t
getU64(const JsonValue &obj, const char *name, bool &ok)
{
    const JsonValue *v = need(obj, name, ok);
    if (v && !v->isNumber())
        ok = false;
    return v ? v->asU64() : 0;
}

/**
 * A JSON number, or one of the quoted non-finite tokens jsonDouble
 * emits ("nan"/"inf"/"-inf", read back with strtod).
 */
bool
numberValue(const JsonValue &v, double &out)
{
    if (v.isNumber()) {
        out = v.asDouble();
        return true;
    }
    if (v.isString()) {
        const std::string &s = v.asString();
        if (s == "nan" || s == "inf" || s == "-inf") {
            out = std::strtod(s.c_str(), nullptr);
            return true;
        }
    }
    return false;
}

double
getDouble(const JsonValue &obj, const char *name, bool &ok)
{
    const JsonValue *v = need(obj, name, ok);
    double value = 0.0;
    if (v && !numberValue(*v, value))
        ok = false;
    return value;
}

} // namespace

std::uint64_t
specKey(const RunSpec &spec)
{
    std::uint64_t h = 0x9e5717;
    h = mixString(h, spec.label);
    h = hashCombine(h, static_cast<std::uint64_t>(spec.preset),
                    static_cast<std::uint64_t>(spec.defense),
                    static_cast<std::uint64_t>(spec.strategy));
    h = hashCombine(h, spec.seed, spec.nopPadding,
                    spec.explicitBufferBytes);
    h = hashCombine(h, spec.tweakMachine ? 1 : 0, spec.body ? 1 : 0);
    // Keyed only when non-default so journals written before the flip
    // models existed stay valid, while results from different models
    // can never satisfy each other's resume.
    if (spec.dramModel != FlipModelKind::Ddr3Seeded)
        h = hashCombine(h, 0xd7a11,
                        static_cast<std::uint64_t>(spec.dramModel));
    // Multi-hart fields, keyed only when non-default for the same
    // reason: single-hart journals predate them.
    if (spec.harts != 1)
        h = hashCombine(h, 0x4a2475, spec.harts);
    if (spec.interleave != InterleaveMode::RoundRobin ||
        spec.interleaveSeed != 0)
        h = hashCombine(h, 0x17e8e4,
                        static_cast<std::uint64_t>(spec.interleave),
                        spec.interleaveSeed);

    const AttackConfig &a = spec.attack;
    h = hashCombine(h, a.superpages, a.sprayBytes, a.userSharedFrames);
    h = hashCombine(h, a.tlbProfileCount, a.tlbPoolFactor,
                    a.llcSelectCount);
    h = hashCombine(h, a.llcSelectDetailedCount,
                    a.superpageSampleClasses, a.regularSampleClasses);
    h = hashCombine(h, a.regularSampleGroups, a.llcBuildRepeats,
                    a.llcSetSizeMargin);
    h = hashCombine(h, a.tlbSetSizeMargin, a.hammerIterations,
                    a.hammerWarmupIterations);
    h = hashCombine(h, a.bankProbeCount, a.maxAttempts,
                    a.timingNoiseCycles);
    h = mixDouble(h, a.hammerBudgetSeconds);
    h = mixDouble(h, a.timingNoiseProbability);
    h = mixDouble(h, a.exhaustKernelFraction);
    h = hashCombine(h, a.checkCyclesPerPage, a.credSprayProcesses,
                    a.seed);
    h = hashCombine(h, a.userDataBase, a.sprayBase, a.tlbPoolBase);
    h = hashCombine(h, a.llcBufferBase, a.scratchBase);
    // poolBuild.threads is deliberately excluded: the pool is
    // byte-identical at any worker count, so a journal survives a
    // --pool-threads change.
    h = hashCombine(h,
                    static_cast<std::uint64_t>(a.poolBuild.algorithm));
    // Victim-traffic knobs only matter to the multi-hart strategy;
    // each keyed only when non-default so pre-existing journals keep
    // their keys.
    if (a.victimHarts != 0)
        h = hashCombine(h, 0x71c711, a.victimHarts);
    if (a.victimTrafficPages != 64)
        h = hashCombine(h, 0x71c712, a.victimTrafficPages);
    if (a.victimAccessesPerSlot != 8)
        h = hashCombine(h, 0x71c713, a.victimAccessesPerSlot);
    // Keyed only when non-default, like dramModel: attack-scoped
    // seeding changes what a nonzero seed means for the run.
    if (spec.seedScope != SeedScope::AllStreams)
        h = hashCombine(h, 0x5eed5c,
                        static_cast<std::uint64_t>(spec.seedScope));
    return h;
}

std::uint64_t
specKey(const RunSpec &spec, bool sharedMachine)
{
    std::uint64_t h = specKey(spec);
    if (sharedMachine)
        h = hashCombine(h, 0x54a9ed);
    return h;
}

ResultStore::ResultStore(const std::string &path, bool truncate)
    : path_(path)
{
    // A journal whose process was killed mid-write can end in a torn
    // line with no newline. Appending straight after it would glue
    // the next record onto the torn prefix, corrupting that record
    // too — terminate the torn line first.
    bool needNewline = false;
    if (!truncate) {
        std::ifstream in(path_, std::ios::binary | std::ios::ate);
        if (in && in.tellg() > 0) {
            in.seekg(-1, std::ios::end);
            char last = '\n';
            in.get(last);
            needNewline = last != '\n';
        }
    }
    out_.open(path_, truncate ? (std::ios::out | std::ios::trunc)
                              : (std::ios::out | std::ios::app));
    if (!out_)
        throw std::runtime_error("cannot open campaign journal: " +
                                 path_);
    if (needNewline)
        out_ << '\n';
}

void
ResultStore::record(const RunResult &result, std::uint64_t key)
{
    std::string line = serialize(result, key);
    MutexLock lock(mtx_);
    out_ << line << '\n';
    out_.flush();
}

std::string
ResultStore::serialize(const RunResult &r, std::uint64_t key)
{
    std::ostringstream out;
    out << '{';
    writeU64(out, "v", 1);
    out << "\"key\": \""
        << strfmt("%016llx", static_cast<unsigned long long>(key))
        << "\", ";
    writeU64(out, "index", r.index);
    writeString(out, "label", r.label);
    writeString(out, "machine", r.machine);
    writeString(out, "defense", r.defense);
    writeString(out, "strategy", r.strategy);
    // Optional (written only when known) so journals from before the
    // field existed keep their bytes: an old line re-serializes
    // identically, and a default-constructed result round-trips.
    if (!r.dramModel.empty())
        writeString(out, "dram_model", r.dramModel);
    writeU64(out, "seed", r.seed);
    writeBool(out, "ok", r.ok);
    writeString(out, "error", r.error);
    writeBool(out, "flipped", r.flipped);
    writeBool(out, "escalated", r.escalated);
    writeU64(out, "flips", r.flips);
    writeU64(out, "attempts", r.attempts);
    writeU64(out, "flips_until_escalation", r.flipsUntilEscalation);
    writeString(out, "exploit_path", r.exploitPath);
    writeDouble(out, "sim_seconds", r.simSeconds);
    writeDouble(out, "wall_seconds", r.wallSeconds);

    out << "\"metrics\": [";
    for (std::size_t i = 0; i < r.metrics.size(); ++i)
        out << (i ? ", " : "") << "[\""
            << jsonEscape(r.metrics[i].first) << "\", "
            << jsonDouble(r.metrics[i].second) << ']';
    out << "], ";

    const AttackReport &rep = r.report;
    out << "\"report\": {";
    writeString(out, "machine", rep.machine);
    writeBool(out, "superpages", rep.superpages);
    writeString(out, "defense", rep.defense);
    writeDouble(out, "spray_ms", rep.sprayMs);
    writeDouble(out, "tlb_prep_ms", rep.tlbPrepMs);
    writeDouble(out, "llc_prep_minutes", rep.llcPrepMinutes);
    writeDouble(out, "tlb_select_micros", rep.tlbSelectMicros);
    writeDouble(out, "llc_select_ms", rep.llcSelectMs);
    writeDouble(out, "hammer_ms", rep.hammerMs);
    writeDouble(out, "check_seconds", rep.checkSeconds);
    writeDouble(out, "time_to_flip_minutes",
                rep.timeToFirstFlipMinutes);
    writeBool(out, "flipped", rep.flipped);
    writeBool(out, "escalated", rep.escalated);
    writeU64(out, "attempts", rep.attempts);
    writeU64(out, "flips_observed", rep.flipsObserved);
    writeU64(out, "flips_until_escalation", rep.flipsUntilEscalation);
    writeString(out, "exploit_path", rep.exploitPath,
                /*comma=*/false);
    out << "}}";
    return out.str();
}

bool
ResultStore::deserialize(const std::string &line, Entry &out)
{
    JsonValue doc;
    if (!JsonValue::parse(line, doc) || !doc.isObject())
        return false;

    bool ok = true;
    if (getU64(doc, "v", ok) != 1)
        return false;

    const JsonValue *keyField = doc.find("key");
    if (!keyField || !keyField->isString())
        return false;
    Entry entry;
    entry.key =
        std::strtoull(keyField->asString().c_str(), nullptr, 16);

    RunResult &r = entry.result;
    r.index = getU64(doc, "index", ok);
    r.label = getString(doc, "label", ok);
    r.machine = getString(doc, "machine", ok);
    r.defense = getString(doc, "defense", ok);
    r.strategy = getString(doc, "strategy", ok);
    // dram_model is optional: absent on pre-field journals (stays
    // empty = "unrecorded"), but mistyped-if-present is corrupt.
    if (const JsonValue *dm = doc.find("dram_model")) {
        if (!dm->isString())
            return false;
        r.dramModel = dm->asString();
    }
    r.seed = getU64(doc, "seed", ok);
    r.ok = getBool(doc, "ok", ok);
    r.error = getString(doc, "error", ok);
    r.flipped = getBool(doc, "flipped", ok);
    r.escalated = getBool(doc, "escalated", ok);
    r.flips = getU64(doc, "flips", ok);
    r.attempts = static_cast<unsigned>(getU64(doc, "attempts", ok));
    r.flipsUntilEscalation = static_cast<unsigned>(
        getU64(doc, "flips_until_escalation", ok));
    r.exploitPath = getString(doc, "exploit_path", ok);
    r.simSeconds = getDouble(doc, "sim_seconds", ok);
    r.wallSeconds = getDouble(doc, "wall_seconds", ok);

    const JsonValue *metrics = doc.find("metrics");
    if (!metrics || !metrics->isArray())
        return false;
    for (const JsonValue &item : metrics->items()) {
        double value = 0.0;
        if (!item.isArray() || item.items().size() != 2 ||
            !item.items()[0].isString() ||
            !numberValue(item.items()[1], value))
            return false;
        r.metrics.emplace_back(item.items()[0].asString(), value);
    }

    const JsonValue *report = doc.find("report");
    if (!report || !report->isObject())
        return false;
    AttackReport &rep = r.report;
    rep.machine = getString(*report, "machine", ok);
    rep.superpages = getBool(*report, "superpages", ok);
    rep.defense = getString(*report, "defense", ok);
    rep.sprayMs = getDouble(*report, "spray_ms", ok);
    rep.tlbPrepMs = getDouble(*report, "tlb_prep_ms", ok);
    rep.llcPrepMinutes = getDouble(*report, "llc_prep_minutes", ok);
    rep.tlbSelectMicros =
        getDouble(*report, "tlb_select_micros", ok);
    rep.llcSelectMs = getDouble(*report, "llc_select_ms", ok);
    rep.hammerMs = getDouble(*report, "hammer_ms", ok);
    rep.checkSeconds = getDouble(*report, "check_seconds", ok);
    rep.timeToFirstFlipMinutes =
        getDouble(*report, "time_to_flip_minutes", ok);
    rep.flipped = getBool(*report, "flipped", ok);
    rep.escalated = getBool(*report, "escalated", ok);
    rep.attempts =
        static_cast<unsigned>(getU64(*report, "attempts", ok));
    rep.flipsObserved =
        static_cast<unsigned>(getU64(*report, "flips_observed", ok));
    rep.flipsUntilEscalation = static_cast<unsigned>(
        getU64(*report, "flips_until_escalation", ok));
    rep.exploitPath = getString(*report, "exploit_path", ok);

    if (!ok)
        return false;
    out = std::move(entry);
    return true;
}

std::map<std::size_t, ResultStore::Entry>
ResultStore::load(const std::string &path, std::size_t *corruptLines)
{
    std::map<std::size_t, Entry> entries;
    if (corruptLines)
        *corruptLines = 0;
    std::ifstream in(path);
    if (!in)
        return entries;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Entry entry;
        if (deserialize(line, entry))
            entries[entry.result.index] = std::move(entry);
        else if (corruptLines)
            ++*corruptLines;
    }
    return entries;
}

bool
ResultStore::merge(const std::vector<std::string> &inputs,
                   std::ostream &out, MergeStats *stats)
{
    MergeStats local;
    std::map<std::size_t, Entry> merged;
    for (const std::string &path : inputs) {
        std::ifstream in(path);
        if (!in) {
            ++local.missingInputs;
            continue;
        }
        ++local.inputs;
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            Entry entry;
            if (!deserialize(line, entry)) {
                ++local.corruptLines;
                continue;
            }
            const std::size_t index = entry.result.index;
            if (merged.count(index))
                ++local.overwritten;
            merged[index] = std::move(entry);
        }
    }
    local.entries = merged.size();

    for (const auto &item : merged)
        out << serialize(item.second.result, item.second.key) << '\n';
    out.flush();
    if (stats)
        *stats = local;
    return static_cast<bool>(out);
}

bool
ResultStore::merge(const std::vector<std::string> &inputs,
                   const std::string &outPath, MergeStats *stats,
                   std::string *error)
{
    std::ofstream out(outPath, std::ios::out | std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot write merged journal: " + outPath;
        return false;
    }
    if (!merge(inputs, out, stats)) {
        if (error)
            *error = "short write on merged journal: " + outPath;
        return false;
    }
    return true;
}

} // namespace pth
