#include "harness/scratch_dir.hh"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>

namespace pth
{

ScratchDirGuard
ScratchDirGuard::create(const std::string &pattern)
{
    // mkdtemp edits its argument in place.
    std::vector<char> buf(pattern.begin(), pattern.end());
    buf.push_back('\0');
    if (!::mkdtemp(buf.data()))
        throw std::runtime_error("cannot create scratch directory: " +
                                 pattern);
    ScratchDirGuard guard;
    guard.dir = buf.data();
    return guard;
}

void
ScratchDirGuard::removeNow()
{
    if (dir.empty())
        return;
    // Delete the files first — rmdir refuses non-empty directories,
    // which is exactly how stale worker journals and logs used to pin
    // the whole directory in /tmp. Best-effort: no subdirectories are
    // ever created here, and a failure only leaves the directory for
    // manual inspection.
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *entry = ::readdir(d)) {
            if (!std::strcmp(entry->d_name, ".") ||
                !std::strcmp(entry->d_name, ".."))
                continue;
            std::remove((dir + "/" + entry->d_name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
    dir.clear();
}

} // namespace pth
