/**
 * @file
 * Fixed-size worker pool used by the campaign runner to fan
 * independent simulations out across host cores.
 *
 * Tasks are submitted as callables and their results (or exceptions)
 * come back through std::future, so a worker that throws propagates
 * the error to whoever joins the campaign instead of killing the
 * process. Shutdown drains the queue: every task submitted before
 * shutdown() (or destruction) runs to completion — which is also why
 * a checkpointing campaign may journal a few more runs than its
 * caller ever sees when it aborts early (rethrow): those runs are
 * not lost, a resume picks them up.
 */

#ifndef PTH_HARNESS_THREAD_POOL_HH
#define PTH_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace pth
{

/** Fixed pool of worker threads with a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 picks the hardware concurrency
     *        (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue and joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Enqueue a callable; its return value or thrown exception is
     * delivered through the returned future.
     *
     * @throws std::runtime_error when called after shutdown().
     */
    template <class F>
    auto submit(F f) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(f));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (stopping)
                throw std::runtime_error(
                    "ThreadPool::submit after shutdown");
            queue.emplace_back([task] { (*task)(); });
        }
        cv.notify_one();
        return result;
    }

    /**
     * Run every already-queued task, then join the workers.
     * Idempotent; called by the destructor.
     */
    void shutdown();

  private:
    /** Worker loop: pop and run tasks until told to stop. */
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace pth

#endif // PTH_HARNESS_THREAD_POOL_HH
