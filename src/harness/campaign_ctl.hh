/**
 * @file
 * Campaign orchestrator: run a manifest of sharded campaigns across a
 * bounded pool of worker subprocesses — the layer above `bench
 * --workers N`, which dispatches ONE campaign. campaign_ctl keeps a
 * whole suite's shards flowing through the same pool, so a manifest
 * of heterogeneous campaigns (different bench binaries, args, shard
 * counts) saturates the machine without oversubscribing it.
 *
 * The dispatch contract is the shard_runner one: every shard worker
 * is `program args... --shard I/N --journal J --threads 1`, every
 * campaign's shard journals merge (ResultStore::merge) into the
 * campaign journal, and the final report is rendered by re-invoking
 * the bench with the merged journal — so the orchestrated report is
 * byte-identical to a serial `program args --json=...` run.
 *
 * Fault handling, per shard task:
 *  - a dead worker (nonzero exit, signal, failed exec) is respawned
 *    with the same journal up to maxRespawns times; the replacement
 *    resumes from the dead attempt's checkpoint;
 *  - once the queue drains, idle pool slots speculatively re-issue
 *    still-running shard tasks (classic straggler mitigation): a
 *    backup instance starts from a snapshot copy of the primary's
 *    journal, the first instance to finish wins and its siblings are
 *    killed — safe because instances never share a journal file and
 *    the merged result is index-keyed, not instance-keyed;
 *  - a task whose every instance died permanently fails its campaign,
 *    which is surfaced (no merge, no report, nonzero exit) instead of
 *    quietly shrinking the suite.
 *
 * The scheduler is deterministic where determinism is visible: tasks
 * are dispatched in manifest order, so the sequence of first-attempt
 * spawn log lines is the same for any pool width; only respawn /
 * re-issue lines depend on timing.
 */

#ifndef PTH_HARNESS_CAMPAIGN_CTL_HH
#define PTH_HARNESS_CAMPAIGN_CTL_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/result_store.hh"

namespace pth
{

/** One campaign of a manifest: a bench invocation plus its shard
 * count and artifact paths. */
struct ManifestCampaign
{
    std::string name;               //!< unique; names artifacts + logs
    std::string program;            //!< bench binary to exec
    std::vector<std::string> args;  //!< bench-specific knobs
    unsigned shards = 1;            //!< worker slice count

    /** Campaign journal / report paths; empty means derive
     * "<outDir>/<name>.jsonl" and "<outDir>/<name>.json". */
    std::string journal;
    std::string report;
};

/** A parsed campaign manifest. */
struct Manifest
{
    std::vector<ManifestCampaign> campaigns;

    /**
     * Parse manifest JSON:
     *
     *   { "campaigns": [ { "name": "t1",
     *                      "program": "./bench/bench_table1_configs",
     *                      "args": ["--dram-model=trr"],
     *                      "shards": 3,
     *                      "journal": "out/t1.jsonl",   // optional
     *                      "report": "out/t1.json" },   // optional
     *                    ... ] }
     *
     * Validation is strict — unknown keys, missing/empty name or
     * program, zero shards and duplicate names are errors. Returns
     * false with a message in error.
     */
    static bool parse(const std::string &text, Manifest &out,
                      std::string &error);

    /** Read and parse a manifest file. */
    static bool load(const std::string &path, Manifest &out,
                     std::string &error);
};

/** Orchestrator knobs. */
struct CampaignCtlOptions
{
    /** Pool width: live worker subprocesses (0 = one per core). */
    unsigned workers = 2;

    /** Extra attempts after an instance dies before giving it up. */
    unsigned maxRespawns = 2;

    /** Speculative backup instances a straggling shard task may get
     * once the queue is empty (0 disables re-issue). */
    unsigned maxReissues = 1;

    /** Discard existing journals; rerun everything. */
    bool fresh = false;

    /** Directory for derived journal/report paths. */
    std::string outDir = ".";

    /** Fault injection: "name/shard" first attempts to SIGKILL right
     * after spawn — the deterministic worker-crash hook the CI smoke
     * and the tests drive respawn-with-resume through. */
    std::vector<std::pair<std::string, unsigned>> injectKills;

    /** Dispatch log sink (spawn/exit/respawn/merge lines); null
     * silences it. */
    std::ostream *log = nullptr;
};

/** What happened to one campaign of the manifest. */
struct CampaignOutcome
{
    std::string name;
    std::string journal;        //!< merged campaign journal
    std::string report;         //!< rendered JSON report
    bool ok = false;            //!< shards + merge + render all good
    std::string error;          //!< first failure reason when !ok
    unsigned spawns = 0;        //!< worker attempts across shards
    unsigned reissues = 0;      //!< backup instances spawned
    ResultStore::MergeStats mergeStats;
};

/** Runs a manifest through the bounded worker pool. */
class CampaignCtl
{
  public:
    CampaignCtl(Manifest manifest, CampaignCtlOptions options);
    ~CampaignCtl(); // out of line: Task is incomplete here

    /**
     * Dispatch every campaign's shards over the pool, merge and
     * render each campaign as its shards complete, and return the
     * number of failed campaigns (0 = whole manifest succeeded).
     * POSIX-only (fork/exec/waitpid), like shard_runner.
     */
    unsigned run();

    /** Per-campaign outcomes, in manifest order (valid after run). */
    const std::vector<CampaignOutcome> &outcomes() const
    {
        return outcomes_;
    }

    /** The artifact paths a campaign will use (derivation applied). */
    std::string journalPath(const ManifestCampaign &campaign) const;
    std::string reportPath(const ManifestCampaign &campaign) const;

  private:
    struct Task;

    void logLine(const std::string &line) const;
    bool startTask(std::size_t taskId);
    bool reissueStraggler();
    void finishCampaign(std::size_t campaignIdx);

    Manifest manifest_;
    CampaignCtlOptions options_;
    std::vector<CampaignOutcome> outcomes_;

    std::vector<Task> tasks_;
    std::vector<std::size_t> pending_;  //!< task ids awaiting a slot
    std::size_t nextPending_ = 0;
    std::vector<std::pair<long, std::pair<std::size_t, unsigned>>>
        live_;                          //!< pid -> (task, instance)
    std::vector<unsigned> shardsLeft_;  //!< per campaign, incl. render
};

} // namespace pth

#endif // PTH_HARNESS_CAMPAIGN_CTL_HH
