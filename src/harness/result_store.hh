/**
 * @file
 * Persistent result store for the campaign runner: an append-only
 * JSONL journal that records every completed RunResult, keyed by a
 * content hash of its RunSpec, so an interrupted campaign can resume
 * without repeating finished work.
 *
 * Contract:
 *  - One journal line per completed run, written and flushed as the
 *    run finishes (checkpoint granularity = one run). record() is
 *    thread-safe; workers journal their own results.
 *  - load() tolerates corruption: a line that does not parse — the
 *    typical artifact of a process killed mid-write — is skipped, and
 *    the run it would have described is simply executed again on
 *    resume. When an index appears on several lines, the last valid
 *    one wins.
 *  - A journaled result is only reused when its stored spec key
 *    matches the current spec at the same index (see specKey), so
 *    editing the sweep grid invalidates exactly the runs it changed.
 *  - serialize()/deserialize() round-trip every RunResult field that
 *    feeds Campaign::toJson, the aggregate and the bench tables —
 *    doubles via %.17g, 64-bit integers without a double detour — so
 *    a resumed campaign's report is byte-identical to an
 *    uninterrupted one.
 */

#ifndef PTH_HARNESS_RESULT_STORE_HH
#define PTH_HARNESS_RESULT_STORE_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/sync.hh"
#include "harness/campaign_result.hh"

namespace pth
{

struct RunSpec;

/**
 * Content hash of a RunSpec's declarative fields: label, preset,
 * defense, strategy, seed, the explicit-hammer knobs and every
 * AttackConfig field. The tweakMachine/body hooks cannot be hashed;
 * only their presence is folded in, so a journaled result is presumed
 * valid as long as the declarative spec (and the code) is unchanged —
 * pass CampaignOptions::resume = false after changing a hook's
 * behavior.
 */
std::uint64_t specKey(const RunSpec &spec);

/**
 * specKey with the campaign's snapshot-sharing decision folded in:
 * sharedMachine is true when the run forks a shared warm machine
 * instead of cold-constructing (Campaign::sharePlan). Folded only
 * when set, so existing journals (all cold runs) stay valid, while a
 * result produced under one execution mode never satisfies a resume
 * under the other — the byte-identity contract makes the results
 * equal, but the key keeps the provenance honest and lets the
 * contract's own tests compare the two modes through journals.
 */
std::uint64_t specKey(const RunSpec &spec, bool sharedMachine);

/** Append-only JSONL journal of completed campaign runs. */
class ResultStore
{
  public:
    /** One journal record: the spec key it was produced under and the
     * reconstructed result. */
    struct Entry
    {
        std::uint64_t key = 0;
        RunResult result;
    };

    /**
     * Open the journal at path for appending; truncate discards any
     * existing content (a fresh, non-resuming campaign).
     *
     * @throws std::runtime_error when the file cannot be opened.
     */
    ResultStore(const std::string &path, bool truncate);

    /** Journal one completed run (thread-safe; flushes the line). */
    void record(const RunResult &result, std::uint64_t key);

    /** Journal file path. */
    const std::string &path() const { return path_; }

    /** Render one journal line (no trailing newline). */
    static std::string serialize(const RunResult &result,
                                 std::uint64_t key);

    /**
     * Parse one journal line. Returns false on any syntax error or
     * missing required field (corrupt line → caller skips it).
     */
    static bool deserialize(const std::string &line, Entry &out);

    /**
     * Load every valid journal line, keyed by run index; invalid
     * lines are skipped and duplicate indices keep the last valid
     * entry. A missing file yields an empty map.
     *
     * When corruptLines is non-null it receives the number of
     * non-empty lines that failed to parse — the visible trace of a
     * truncated or mangled journal. Callers that resume or merge
     * should surface the count instead of letting a torn shard
     * journal quietly shrink a campaign.
     */
    static std::map<std::size_t, Entry>
    load(const std::string &path, std::size_t *corruptLines = nullptr);

    /** What ResultStore::merge saw and produced. */
    struct MergeStats
    {
        unsigned inputs = 0;         //!< journals read
        unsigned missingInputs = 0;  //!< listed but absent on disk
        std::size_t entries = 0;     //!< runs in the merged journal
        std::size_t overwritten = 0; //!< duplicate indices superseded
        std::size_t corruptLines = 0;//!< unparsable lines skipped
    };

    /**
     * Merge shard journals into one canonical journal: inputs are
     * read in argument order, corrupt lines are skipped (counted in
     * stats), and when several entries claim the same run index the
     * last one read wins — so listing an old journal first and
     * fresher shard journals after yields shard-wins semantics. The
     * output is re-serialized in ascending index order, i.e. the
     * same bytes a single process journaling the same results would
     * have produced. A missing input is tolerated (a worker may die
     * before its first checkpoint) and counted in stats.
     *
     * The stream overload writes the merged lines to out; the path
     * overload truncates outPath and returns false — with a message
     * in *error when given — only when it cannot be written.
     */
    static bool merge(const std::vector<std::string> &inputs,
                      std::ostream &out,
                      MergeStats *stats = nullptr);
    static bool merge(const std::vector<std::string> &inputs,
                      const std::string &outPath,
                      MergeStats *stats = nullptr,
                      std::string *error = nullptr);

  private:
    const std::string path_; // immutable after construction
    Mutex mtx_;
    std::ofstream out_ PTH_GUARDED_BY(mtx_);
};

} // namespace pth

#endif // PTH_HARNESS_RESULT_STORE_HH
