/**
 * @file
 * The experiment campaign runner: build a sweep of independent
 * simulations (machine preset x defense x hammer strategy x seed),
 * fan them out across a worker pool, and fold the results into a
 * deterministic aggregate, a JSON report and a summary table.
 *
 * Every run constructs its own Machine and seeds every stochastic
 * stream from the run's seed alone, so runs share no state and the
 * campaign's output is bit-identical serial vs. parallel. Results are
 * returned and aggregated in submission (index) order regardless of
 * worker completion order.
 *
 * With CampaignOptions::journalPath set, every completed run is also
 * checkpointed to an append-only JSONL journal (see result_store.hh);
 * a campaign that was killed mid-sweep resumes from the journal,
 * skips the runs it already finished, and — because results are
 * merged back in index order and the journal round-trips every
 * report-feeding field exactly — produces a byte-identical JSON
 * report to an uninterrupted run.
 */

#ifndef PTH_HARNESS_CAMPAIGN_HH
#define PTH_HARNESS_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "attack/attack_config.hh"
#include "cpu/interleaver.hh"
#include "cpu/machine_config.hh"
#include "harness/campaign_result.hh"

namespace pth
{

class Machine;
class MachineSnapshot;
class Table;

/** The three Table-I laptops plus the scaled-down test machine. */
enum class MachinePreset { LenovoT420, LenovoX230, DellE6420, TestSmall };

/**
 * Which stochastic streams a nonzero RunSpec::seed re-keys.
 *
 * AllStreams (default) re-keys the machine-side streams (weak-cell
 * placement, kernel boot noise, TLB replacement) and the attacker RNG,
 * so every run of a sweep boots a different world. AttackOnly re-keys
 * the attacker RNG alone: every run of the sweep derives the same
 * MachineConfig, which is what lets the campaign construct one warm
 * machine and fork it per run (CampaignOptions::reuseMachines).
 */
enum class SeedScope { AllStreams, AttackOnly };

/** Which hammering front end a run drives. */
enum class HammerStrategy
{
    Explicit,   //!< clflush-based double-sided baseline (Section II)
    Implicit,   //!< prepare + one implicit-hammer run on the first pair
    PThammer,   //!< the full end-to-end attack (prepare + run)
    MultiHart,  //!< prepare + interleaved hammering from every hart
};

/** Human-readable preset name (matches MachineConfig::name). */
std::string machinePresetName(MachinePreset preset);

/** The three evaluated Table-I machines, in the paper's order — the
 * sweep axis every per-machine bench iterates. */
const std::array<MachinePreset, 3> &paperPresets();

/** Human-readable strategy name. */
std::string hammerStrategyName(HammerStrategy strategy);

/** Build the MachineConfig for a preset. */
MachineConfig makeMachineConfig(MachinePreset preset);

struct RunSpec;

/**
 * RunResult shell carrying the identity fields derived from a spec
 * (index, label, seed, preset/defense/strategy names) — the one
 * place they are filled, shared by run execution, shard
 * placeholders, and dead-worker fallbacks.
 */
RunResult specResultShell(const RunSpec &spec, std::size_t index);

/** One point of a campaign sweep. */
struct RunSpec
{
    std::string label;                 //!< row label for reports
    MachinePreset preset = MachinePreset::TestSmall;
    DefenseKind defense = DefenseKind::None;
    HammerStrategy strategy = HammerStrategy::PThammer;

    /**
     * DRAM flip model the run's machine installs (applied on top of
     * the preset via MachineConfig::withDramModel, before
     * tweakMachine). Folded into the journal spec key, so results
     * from different models never collide on resume.
     */
    FlipModelKind dramModel = FlipModelKind::Ddr3Seeded;

    /**
     * Run seed. When nonzero, every stochastic stream of the run
     * (weak-cell placement, kernel boot noise, TLB replacement,
     * attacker RNG) is re-keyed from it with independent stream ids,
     * so two specs with the same seed replay identically and
     * different seeds decorrelate completely. Seed 0 keeps the
     * library's default seeds — the run replays exactly like the
     * stand-alone (un-swept) configuration.
     */
    std::uint64_t seed = 0;

    /**
     * Which streams the seed re-keys (see SeedScope). Folded into the
     * journal spec key only when non-default, so journals written
     * before attack-scoped sweeps existed stay valid.
     */
    SeedScope seedScope = SeedScope::AllStreams;

    /**
     * Harts the run's machine hosts (MachineConfig::harts). Folded
     * into the journal spec key only when non-default, so single-hart
     * journals written before multi-hart runs existed stay valid.
     */
    unsigned harts = 1;

    /**
     * How the multi-hart strategy merges the per-hart streams into
     * the global clock order, and the seed of the Seeded mode. Both
     * spec-key folded only when non-default, like harts.
     */
    InterleaveMode interleave = InterleaveMode::RoundRobin;
    std::uint64_t interleaveSeed = 0;

    AttackConfig attack;               //!< attacker-side knobs

    /** Explicit strategy only: NOPs per iteration and buffer size. */
    unsigned nopPadding = 0;
    std::uint64_t explicitBufferBytes = 64ull << 20;

    /**
     * Optional last-word hook over the machine configuration. May be
     * invoked more than once per run — config derivation is repeated
     * for snapshot-sharing detection — so it must be deterministic
     * and side-effect-free.
     */
    std::function<void(MachineConfig &)> tweakMachine;

    /**
     * Optional custom run body. When set it replaces the built-in
     * strategy dispatch: the campaign builds the seeded machine and
     * attack config, then hands control to the callable, which fills
     * the result (flips, metrics, ...). Used by experiment benches
     * whose measurement loop is not a stock attack run. Must depend
     * only on its arguments for the serial/parallel determinism
     * guarantee to hold.
     */
    std::function<void(Machine &, const AttackConfig &, RunResult &)>
        body;
};

/** How to execute a campaign. */
struct CampaignOptions
{
    /** Worker threads; 1 = serial in the calling thread, 0 = one per
     * hardware thread. */
    unsigned threads = 1;

    /**
     * Worker count from the PTH_THREADS environment variable, the
     * convention every campaign-driven bench follows. Unset, empty,
     * non-numeric or negative values mean 0 (all cores).
     */
    static unsigned threadsFromEnv();

    /**
     * When set, a run that throws aborts the whole campaign by
     * rethrowing; otherwise the exception is recorded in that run's
     * RunResult (ok = false) and the sweep continues.
     */
    bool rethrow = false;

    /**
     * When non-empty, checkpoint the campaign to the JSONL journal
     * at this path: every completed run is appended (and flushed) as
     * it finishes, so an interruption loses at most the runs still
     * in flight. See result_store.hh for the journal contract.
     */
    std::string journalPath;

    /**
     * With a journalPath: load the journal before running and skip
     * every run whose stored spec key matches the current spec at
     * the same index (failed runs are always re-executed). The
     * merged results are returned in index order as usual, so a
     * resumed campaign's aggregate/JSON/table output is
     * byte-identical to an uninterrupted run's. Set to false to
     * discard the journal and start fresh.
     */
    bool resume = true;

    /**
     * Shard slicing for multi-process (or multi-host) dispatch: with
     * shardCount > 1 this process executes only runs whose
     * index % shardCount == shardIndex. Results are still returned
     * for the full campaign in index order — runs outside the slice
     * are served from the journal when it holds them (the case after
     * shard journals were merged back; see result_store.hh and
     * tools/campaign_merge) and otherwise marked failed with a
     * "not executed" error, so a partial report is visibly partial.
     * Disjoint shards of the same campaign journal disjoint run sets,
     * which is what makes the merged, journal-served report
     * byte-identical to a single-process serial run. shardCount == 0
     * or 1 disables slicing.
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;

    /**
     * Machine snapshot/fork: runs that resolve to the same derived
     * MachineConfig share one warm machine, built lazily by the first
     * such run to execute and forked (deep-copied) by every run of
     * the group — instead of each run replaying boot. The fork is
     * byte-identical to cold construction (the Machine copy
     * contract), so reports do not change; only setup cost does.
     * Sharing needs a group of at least two runs, and eligibility is
     * a pure function of the spec list, so shard workers and their
     * parent always agree on it (it is folded into the journal spec
     * keys — see Campaign::specKeys). Disable to force cold
     * construction for every run (bench_cli: --cold-machines).
     */
    bool reuseMachines = true;
};

/** A set of runs executed together. */
class Campaign
{
  public:
    Campaign() = default;

    /** Append one run; returns its index. */
    std::size_t add(RunSpec spec);

    /**
     * Append count copies of base with seeds seedBase, seedBase+1, ...
     * and "/seed<N>" appended to the label — the standard way to turn
     * one configuration into a statistical sample.
     */
    void addSeedSweep(const RunSpec &base, std::uint64_t seedBase,
                      unsigned count);

    /**
     * addSeedSweep scoped to the attacker streams only
     * (SeedScope::AttackOnly): the machine replays identically across
     * the sweep, so with CampaignOptions::reuseMachines the campaign
     * constructs it once and forks it per run. Use when the sweep
     * varies the attacker, not the hardware sample.
     */
    void addAttackSeedSweep(const RunSpec &base, std::uint64_t seedBase,
                            unsigned count);

    /** Number of runs queued. */
    std::size_t size() const { return specs_.size(); }

    /** The queued specs. */
    const std::vector<RunSpec> &specs() const { return specs_; }

    /**
     * Execute every queued run and return results in index order.
     * threads == 1 runs inline; otherwise runs are submitted to a
     * ThreadPool and joined in order. With options.journalPath the
     * campaign checkpoints each completed run and, when resuming,
     * only executes runs the journal does not already hold.
     */
    std::vector<RunResult> run(const CampaignOptions &options = {}) const;

    /**
     * The journal spec keys run() records under the given options —
     * including the snapshot-sharing bit when a run forks a shared
     * machine. Multi-process drivers that validate a merged journal
     * against the spec list must use these keys, not raw
     * specKey(spec), or shared-machine entries would look stale.
     */
    std::vector<std::uint64_t>
    specKeys(const CampaignOptions &options = {}) const;

    /**
     * Execute a single spec (what each worker does). With a non-null
     * snapshot the run's machine is forked from it instead of
     * cold-constructed; the snapshot must have been built from the
     * spec's own derived MachineConfig (asserted).
     */
    static RunResult runOne(const RunSpec &spec, std::size_t index,
                            const MachineSnapshot *snapshot = nullptr);

    /** Fold results (in index order) into the aggregate. */
    static CampaignAggregate aggregate(
        const std::vector<RunResult> &results);

    /**
     * Deterministic JSON report: one object per run in index order
     * plus the aggregate. Host wall-clock is deliberately omitted.
     */
    static std::string toJson(const std::vector<RunResult> &results);

    /** One-row-per-run summary table. */
    static Table summaryTable(const std::vector<RunResult> &results);

  private:
    /**
     * Snapshot-sharing plan: groups[i] is the sharing-group id of run
     * i, or -1 when it cold-constructs (group of one, or sharing
     * disabled). A pure function of the spec list, so every process
     * of a sharded campaign computes the same plan. When configsOut
     * is non-null it receives each run's derived MachineConfig.
     */
    std::vector<int> sharePlan(
        bool reuseMachines,
        std::vector<MachineConfig> *configsOut = nullptr) const;

    std::vector<RunSpec> specs_;
};

} // namespace pth

#endif // PTH_HARNESS_CAMPAIGN_HH
