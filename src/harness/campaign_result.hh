/**
 * @file
 * Result types for the campaign runner: the per-run record every
 * worker fills in, and the deterministic aggregate folded over all
 * runs in index order.
 *
 * Everything that feeds the aggregate or the JSON report is simulated
 * state, derived only from the run's configuration and seed — host
 * wall-clock lives in a separate field that reports exclude — so a
 * campaign's output is bit-identical whether it ran on one worker or
 * eight.
 *
 * Every field of RunResult (and its embedded AttackReport) also
 * round-trips exactly through the result-store journal (see
 * result_store.hh); adding a field here means adding it to the
 * journal serialization, or resumed campaigns will drop it.
 */

#ifndef PTH_HARNESS_CAMPAIGN_RESULT_HH
#define PTH_HARNESS_CAMPAIGN_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attack/pthammer.hh"
#include "common/random.hh"
#include "common/stats.hh"

namespace pth
{

/** What one campaign run produced. */
struct RunResult
{
    std::size_t index = 0;      //!< position in the campaign
    std::string label;          //!< spec label (sweep point name)
    std::string machine;        //!< machine preset name
    std::string defense;        //!< defense policy name
    std::string strategy;       //!< hammer strategy name

    /**
     * DRAM flip-model name ("ddr3", "trr", ...), the journal-visible
     * trace of RunSpec::dramModel that journal_index filters and
     * groups on. Empty when the result came from a journal written
     * before the field existed ("unrecorded"); reports (toJson) do
     * not carry it, so adding it changed no report bytes.
     */
    std::string dramModel;

    std::uint64_t seed = 0;     //!< run seed

    bool ok = true;             //!< run completed without throwing
    std::string error;          //!< exception text when !ok

    bool flipped = false;       //!< at least one bit flip observed
    bool escalated = false;     //!< privilege escalation achieved
    std::uint64_t flips = 0;    //!< bit flips observed
    unsigned attempts = 0;      //!< hammer attempts / pairs hammered
    unsigned flipsUntilEscalation = 0;
    std::string exploitPath = "none";
    double simSeconds = 0;      //!< simulated machine-seconds consumed

    /** Named metrics a custom run body records (ablation variants,
     * sweep measurements); serialized to JSON in insertion order. */
    std::vector<std::pair<std::string, double>> metrics;

    /** Full phase timings (populated by the PThammer strategy). */
    AttackReport report;

    /** Host wall-clock seconds; excluded from aggregates and JSON. */
    double wallSeconds = 0;
};

/** Deterministic fold over a campaign's runs, in index order. */
struct CampaignAggregate
{
    std::uint64_t runs = 0;
    std::uint64_t failedRuns = 0;
    std::uint64_t flippedRuns = 0;
    std::uint64_t escalatedRuns = 0;
    std::uint64_t totalFlips = 0;
    std::uint64_t totalAttempts = 0;

    RunningStat simSeconds;             //!< per-run simulated time
    RunningStat timeToFlipMinutes;      //!< over runs that flipped
    RunningStat flipsPerRun;            //!< over all completed runs

    /** Fold one run in. */
    void
    add(const RunResult &r)
    {
        ++runs;
        if (!r.ok) {
            ++failedRuns;
            return;
        }
        flippedRuns += r.flipped;
        escalatedRuns += r.escalated;
        totalFlips += r.flips;
        totalAttempts += r.attempts;
        simSeconds.sample(r.simSeconds);
        flipsPerRun.sample(static_cast<double>(r.flips));
        if (r.flipped)
            timeToFlipMinutes.sample(r.report.timeToFirstFlipMinutes);
    }

    /**
     * Order-sensitive 64-bit digest of the integer aggregate state;
     * the determinism tests compare serial vs. parallel campaigns
     * through this.
     */
    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = hashCombine(0x9ca3, runs, failedRuns);
        h = hashCombine(h, flippedRuns, escalatedRuns);
        h = hashCombine(h, totalFlips, totalAttempts);
        h = hashCombine(h, simSeconds.count(),
                        timeToFlipMinutes.count());
        return h;
    }
};

} // namespace pth

#endif // PTH_HARNESS_CAMPAIGN_RESULT_HH
