#include "harness/bench_cli.hh"

#include "common/table.hh"
#include "dram/flip_model.hh"
#include "harness/result_store.hh"
#include "harness/scratch_dir.hh"
#include "harness/self_exe.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

namespace pth
{

namespace
{

void
usage(const char *prog, const char *summary)
{
    std::printf("%s — %s\n\n", prog, summary);
    std::printf(
        "usage: %s [--json[=PATH]] [--journal PATH] [--fresh]\n"
        "       %*s [--threads N] [--shard I/N] [--workers N]\n"
        "       %*s [--pool-algo A] [--pool-threads N]\n"
        "       %*s [--dram-model M] [--cold-machines]\n"
        "       %*s [--harts N] [--interleave M[:SEED]]\n\n"
        "  --json[=PATH]   dump the raw campaign JSON report after\n"
        "                  the table (stdout, or clean to PATH)\n"
        "  --journal PATH  checkpoint completed runs to the JSONL\n"
        "                  journal at PATH; an existing journal is\n"
        "                  resumed (finished runs are skipped)\n"
        "  --fresh         with --journal: discard the journal and\n"
        "                  rerun everything\n"
        "  --threads N     worker threads (overrides PTH_THREADS;\n"
        "                  0 = all cores, 1 = serial)\n"
        "  --shard I/N     execute only runs with index %% N == I\n"
        "                  into this process's journal (requires\n"
        "                  --journal); merge the N shard journals\n"
        "                  with campaign_merge, then rerun with the\n"
        "                  merged journal for the full report\n"
        "  --workers N     local multi-process dispatch: fork N\n"
        "                  shard workers of this binary, merge\n"
        "                  their journals, report from the merge\n"
        "                  (0 = one worker per core)\n"
        "  --pool-algo A   LLC pool-build algorithm where pools are\n"
        "                  built: single[-elimination] or\n"
        "                  group[-testing] (default)\n"
        "  --pool-threads N  extraction workers inside one pool\n"
        "                  build (1 = serial, 0 = all cores)\n"
        "  --dram-model M  DRAM flip model for every run: ddr3\n"
        "                  (default), trr (ddr4-trr), distance2\n"
        "                  (half-double) or ecc\n"
        "  --cold-machines construct every run's machine from scratch\n"
        "                  instead of forking runs that share a\n"
        "                  machine configuration from one warm\n"
        "                  snapshot (results are identical either\n"
        "                  way; this trades setup time for isolation)\n"
        "  --harts N       harts per machine for multi-hart benches\n"
        "                  (default 1: exact single-hart replay)\n"
        "  --interleave M[:SEED]  multi-hart stream merge order:\n"
        "                  round-robin (rr, default) or seeded\n"
        "                  (random), with an optional seed\n"
        "  --help          this text\n",
        prog, static_cast<int>(std::strlen(prog)), "",
        static_cast<int>(std::strlen(prog)), "",
        static_cast<int>(std::strlen(prog)), "",
        static_cast<int>(std::strlen(prog)), "");
}

/**
 * Value of "--flag VALUE" or "--flag=VALUE"; advances i. A following
 * token that is itself a flag does not count as a value, so
 * "--journal --fresh" reports a missing value instead of creating a
 * journal file named "--fresh".
 */
const char *
flagValue(int argc, char **argv, int &i, const char *flag)
{
    const std::size_t n = std::strlen(flag);
    if (!std::strncmp(argv[i], flag, n) && argv[i][n] == '=')
        return argv[i] + n + 1;
    if (!std::strcmp(argv[i], flag) && i + 1 < argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0)
        return argv[++i];
    return nullptr;
}

} // namespace

BenchCli
BenchCli::parse(int argc, char **argv, const char *summary,
                const std::vector<std::string> &passthrough)
{
    BenchCli cli;
    cli.options.threads = CampaignOptions::threadsFromEnv();
    cli.program = argc > 0 ? argv[0] : "";
    // Bench-specific flags first, then the sweep-shaping standard
    // flags as they parse — together they let a spawned shard worker
    // rebuild the identical campaign.
    cli.forwardArgs = passthrough;

    bool fresh = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            usage(argv[0], summary);
            std::exit(0);
        }
        if (!std::strcmp(arg, "--json")) {
            cli.json = true;
            continue;
        }
        if (!std::strncmp(arg, "--json=", 7)) {
            cli.json = true;
            cli.jsonPath = arg + 7;
            continue;
        }
        if (!std::strcmp(arg, "--fresh")) {
            fresh = true;
            continue;
        }
        if (!std::strcmp(arg, "--cold-machines")) {
            cli.options.reuseMachines = false;
            // Forwarded so shard workers compute the same journal
            // spec keys (snapshot eligibility is folded into them).
            cli.forwardArgs.push_back("--cold-machines");
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--journal")) {
            cli.options.journalPath = value;
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--threads")) {
            long n = std::strtol(value, nullptr, 10);
            cli.options.threads =
                n >= 0 ? static_cast<unsigned>(n) : 0;
            cli.threadsExplicit = true;
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--shard")) {
            unsigned index = 0;
            unsigned count = 0;
            char excess = 0;
            if (std::sscanf(value, "%u/%u%c", &index, &count,
                            &excess) != 2 ||
                count == 0 || index >= count) {
                std::fprintf(stderr,
                             "%s: bad --shard '%s' (use I/N with"
                             " 0 <= I < N)\n",
                             argv[0], value);
                std::exit(2);
            }
            cli.options.shardIndex = index;
            cli.options.shardCount = count;
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--workers")) {
            long n = std::strtol(value, nullptr, 10);
            cli.workers = n >= 0 ? static_cast<unsigned>(n) : 0;
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--pool-algo")) {
            if (!parsePoolBuildAlgorithm(value, cli.pool.algorithm)) {
                std::fprintf(stderr,
                             "%s: unknown pool algorithm '%s' (use"
                             " single[-elimination] or"
                             " group[-testing])\n",
                             argv[0], value);
                std::exit(2);
            }
            cli.forwardArgs.push_back(std::string("--pool-algo=") +
                                      value);
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--pool-threads")) {
            // Negative values mean 0 (all cores), like --threads.
            long n = std::strtol(value, nullptr, 10);
            cli.pool.threads = n >= 0 ? static_cast<unsigned>(n) : 0;
            cli.forwardArgs.push_back(
                std::string("--pool-threads=") + value);
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--dram-model")) {
            if (!parseFlipModelKind(value, cli.dramModel)) {
                std::fprintf(stderr,
                             "%s: unknown DRAM model '%s' (use ddr3,"
                             " trr, distance2 or ecc)\n",
                             argv[0], value);
                std::exit(2);
            }
            cli.forwardArgs.push_back(
                std::string("--dram-model=") + value);
            continue;
        }
        if (const char *value = flagValue(argc, argv, i, "--harts")) {
            long n = std::strtol(value, nullptr, 10);
            if (n < 1) {
                std::fprintf(stderr,
                             "%s: bad --harts '%s' (need a positive"
                             " count)\n",
                             argv[0], value);
                std::exit(2);
            }
            cli.harts = static_cast<unsigned>(n);
            cli.forwardArgs.push_back(std::string("--harts=") + value);
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--interleave")) {
            std::string mode = value;
            const std::size_t colon = mode.find(':');
            if (colon != std::string::npos) {
                cli.interleaveSeed = std::strtoull(
                    mode.c_str() + colon + 1, nullptr, 10);
                mode.resize(colon);
            }
            if (!parseInterleaveMode(mode.c_str(), cli.interleave)) {
                std::fprintf(stderr,
                             "%s: unknown interleave mode '%s' (use"
                             " round-robin/rr or seeded/random,"
                             " optionally :SEED)\n",
                             argv[0], mode.c_str());
                std::exit(2);
            }
            cli.forwardArgs.push_back(std::string("--interleave=") +
                                      value);
            continue;
        }
        if (!std::strcmp(arg, "--journal") ||
            !std::strcmp(arg, "--threads") ||
            !std::strcmp(arg, "--shard") ||
            !std::strcmp(arg, "--workers") ||
            !std::strcmp(arg, "--pool-algo") ||
            !std::strcmp(arg, "--pool-threads") ||
            !std::strcmp(arg, "--dram-model") ||
            !std::strcmp(arg, "--harts") ||
            !std::strcmp(arg, "--interleave")) {
            // flagValue only fails for these when the value is gone.
            std::fprintf(stderr, "%s: missing value for '%s'\n",
                         argv[0], arg);
            std::exit(2);
        }
        std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                     arg);
        usage(argv[0], summary);
        std::exit(2);
    }
    cli.options.resume = !fresh;

    if (cli.options.shardCount > 1 &&
        cli.options.journalPath.empty()) {
        std::fprintf(stderr,
                     "%s: --shard requires --journal (the slice's"
                     " results live in the journal)\n",
                     argv[0]);
        std::exit(2);
    }
    if (cli.options.shardCount > 1 && cli.workers != 1) {
        std::fprintf(stderr,
                     "%s: --shard (manual dispatch) and --workers"
                     " (automatic dispatch) are mutually"
                     " exclusive\n",
                     argv[0]);
        std::exit(2);
    }
    return cli;
}

std::vector<RunResult>
BenchCli::runCampaign(const Campaign &campaign)
{
    // Worker mode (--shard I/N): execute the slice into this
    // process's journal and stop — the full report is the merged
    // journal's job. Exit status 0 means the slice completed; runs
    // that failed inside the simulation are recorded in the journal
    // (and re-surface from the merge), not in the exit code.
    if (options.shardCount > 1) {
        if (json)
            std::fprintf(stderr,
                         "warning: --json is ignored in --shard"
                         " worker mode; render the report from the"
                         " merged journal (--journal MERGED"
                         " --json=...)\n");
        const std::vector<RunResult> results = campaign.run(options);
        std::size_t owned = 0;
        std::size_t failed = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (i % options.shardCount != options.shardIndex)
                continue;
            ++owned;
            failed += !results[i].ok;
        }
        std::fprintf(stderr,
                     "shard %u/%u: %zu of %zu run(s), %zu failed,"
                     " journal %s\n",
                     options.shardIndex, options.shardCount, owned,
                     results.size(), failed,
                     options.journalPath.c_str());
        std::exit(0);
    }

    unsigned workerCount = workers;
    if (workerCount == 0) {
        workerCount = std::thread::hardware_concurrency();
        if (workerCount == 0)
            workerCount = 1;
    }
    if (workerCount <= 1)
        return campaign.run(options);

    // Parent mode (--workers N): fan the campaign out across N shard
    // subprocesses, merge their journals, and serve the report from
    // the merge. Without --journal the artifacts live in a scratch
    // directory the guard removes on every exit path — success,
    // merge failure or exception — unless kept for inspection.
    std::string journal = options.journalPath;
    ScratchDirGuard scratch;
    if (journal.empty()) {
        scratch = ScratchDirGuard::create("/tmp/pth_workersXXXXXX");
        journal = scratch.path() + "/campaign.jsonl";
    }

    ShardRunnerOptions spawn;
    // execv does no PATH search; prefer the kernel's record of this
    // very binary over argv[0], which may be a bare name.
    spawn.program = resolveSelfExe(program);
    spawn.args = forwardArgs;
    spawn.workers = workerCount;
    spawn.journalBase = journal;
    spawn.threadsPerWorker = threadsExplicit ? options.threads : 1;
    spawn.fresh = !options.resume;
    ShardRunner runner(spawn);

    // Resume across dispatch modes: seed each shard journal with the
    // parent journal's entries for its residue class, so a campaign
    // previously completed (or partially completed) single-process —
    // or by an earlier --workers run that merged — is not recomputed.
    if (options.resume)
        seedShardJournalsFromParent(journal, journal, workerCount);

    workerReports = runner.run();

    workerDeaths = 0;
    for (const ShardWorkerReport &report : workerReports) {
        if (report.ok)
            continue;
        ++workerDeaths;
        std::fprintf(stderr,
                     "shard worker %u/%u died after %u attempt(s):"
                     " %s (log: %s)\n",
                     report.shard, workerCount, report.spawns,
                     report.error.c_str(), report.logPath.c_str());
        if (!report.logTail.empty())
            std::fprintf(stderr, "--- worker %u output tail ---\n%s%s",
                         report.shard, report.logTail.c_str(),
                         report.logTail.back() == '\n' ? "" : "\n");
    }

    // Merge: the parent's previous journal first (resume), then the
    // shard journals — last wins, so fresher shard results supersede.
    std::vector<std::string> inputs;
    if (options.resume)
        inputs.push_back(journal);
    for (unsigned w = 0; w < workerCount; ++w)
        inputs.push_back(runner.shardJournalPath(w));
    ResultStore::MergeStats stats;
    std::string mergeError;
    const std::string merging = journal + ".merging";
    if (!ResultStore::merge(inputs, merging, &stats, &mergeError) ||
        std::rename(merging.c_str(), journal.c_str()) != 0) {
        std::remove(merging.c_str());
        throw std::runtime_error(
            mergeError.empty() ? "cannot finalize merged journal: " +
                                     journal
                               : mergeError);
    }
    if (stats.corruptLines)
        std::fprintf(stderr,
                     "warning: skipped %zu corrupt line(s) while"
                     " merging %u shard journal(s) into %s\n",
                     stats.corruptLines, workerCount,
                     journal.c_str());

    // Serve the report from the merged journal. A run the merge
    // cannot account for belongs to a dead worker; surface that as
    // the run's failure instead of quietly re-executing (masking the
    // death) or shrinking the report.
    const std::vector<RunSpec> &specs = campaign.specs();
    // Validate against the keys the workers actually journal under —
    // they fold in the snapshot-sharing bit (Campaign::specKeys), so
    // raw specKey(spec) would reject every shared-machine entry.
    const std::vector<std::uint64_t> expectedKeys =
        campaign.specKeys(options);
    auto entries = ResultStore::load(journal);
    std::vector<RunResult> results(specs.size());
    bool missing = false;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto it = entries.find(i);
        if (it != entries.end() &&
            it->second.key == expectedKeys[i]) {
            results[i] = std::move(it->second.result);
            continue;
        }
        missing = true;
        const unsigned shard =
            static_cast<unsigned>(i % workerCount);
        const ShardWorkerReport &report = workerReports[shard];
        RunResult &res = results[i];
        res = specResultShell(specs[i], i);
        res.ok = false;
        res.error = strfmt("shard worker %u/%u ", shard, workerCount);
        res.error += report.ok
                         ? "did not journal this run"
                         : "died: " + report.error;
        if (!report.logTail.empty())
            res.error += "; stderr: " + report.logTail;
    }

    if (scratch.active() && (workerDeaths || missing)) {
        std::fprintf(stderr,
                     "worker artifacts kept for inspection in %s\n",
                     scratch.path().c_str());
        scratch.keep();
    }
    // Otherwise the guard removes the scratch directory — worker
    // journals, logs and the merged journal — as it goes out of scope.
    return results;
}

unsigned
BenchCli::reportFailures(const std::vector<RunResult> &results)
{
    unsigned failures = 0;
    for (const RunResult &run : results) {
        if (run.ok)
            continue;
        ++failures;
        std::printf("run %s failed: %s\n", run.label.c_str(),
                    run.error.c_str());
    }
    return failures;
}

bool
BenchCli::staleMetrics(const RunResult &run, std::size_t expected)
{
    if (!run.ok || run.metrics.size() >= expected)
        return false;
    std::fprintf(stderr,
                 "run %s: journal entry has %zu metrics, this bench"
                 " expects %zu — stale journal (body changed?);"
                 " rerun with --fresh\n",
                 run.label.c_str(), run.metrics.size(), expected);
    return true;
}

bool
BenchCli::emitJson(const std::vector<RunResult> &results) const
{
    if (!json)
        return true;
    const std::string report = Campaign::toJson(results);
    if (jsonPath.empty()) {
        std::fputs(report.c_str(), stdout);
        return true;
    }
    std::ofstream out(jsonPath, std::ios::out | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write JSON report to %s\n",
                     jsonPath.c_str());
        return false;
    }
    out << report;
    return true;
}

} // namespace pth
