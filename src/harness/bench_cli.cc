#include "harness/bench_cli.hh"

#include "dram/flip_model.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace pth
{

namespace
{

void
usage(const char *prog, const char *summary)
{
    std::printf("%s — %s\n\n", prog, summary);
    std::printf(
        "usage: %s [--json[=PATH]] [--journal PATH] [--fresh]\n"
        "       %*s [--threads N] [--pool-algo A] [--pool-threads N]\n"
        "       %*s [--dram-model M]\n\n"
        "  --json[=PATH]   dump the raw campaign JSON report after\n"
        "                  the table (stdout, or clean to PATH)\n"
        "  --journal PATH  checkpoint completed runs to the JSONL\n"
        "                  journal at PATH; an existing journal is\n"
        "                  resumed (finished runs are skipped)\n"
        "  --fresh         with --journal: discard the journal and\n"
        "                  rerun everything\n"
        "  --threads N     worker threads (overrides PTH_THREADS;\n"
        "                  0 = all cores, 1 = serial)\n"
        "  --pool-algo A   LLC pool-build algorithm where pools are\n"
        "                  built: single[-elimination] or\n"
        "                  group[-testing] (default)\n"
        "  --pool-threads N  extraction workers inside one pool\n"
        "                  build (1 = serial, 0 = all cores)\n"
        "  --dram-model M  DRAM flip model for every run: ddr3\n"
        "                  (default), trr (ddr4-trr), distance2\n"
        "                  (half-double) or ecc\n"
        "  --help          this text\n",
        prog, static_cast<int>(std::strlen(prog)), "",
        static_cast<int>(std::strlen(prog)), "");
}

/**
 * Value of "--flag VALUE" or "--flag=VALUE"; advances i. A following
 * token that is itself a flag does not count as a value, so
 * "--journal --fresh" reports a missing value instead of creating a
 * journal file named "--fresh".
 */
const char *
flagValue(int argc, char **argv, int &i, const char *flag)
{
    const std::size_t n = std::strlen(flag);
    if (!std::strncmp(argv[i], flag, n) && argv[i][n] == '=')
        return argv[i] + n + 1;
    if (!std::strcmp(argv[i], flag) && i + 1 < argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0)
        return argv[++i];
    return nullptr;
}

} // namespace

BenchCli
BenchCli::parse(int argc, char **argv, const char *summary)
{
    BenchCli cli;
    cli.options.threads = CampaignOptions::threadsFromEnv();

    bool fresh = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            usage(argv[0], summary);
            std::exit(0);
        }
        if (!std::strcmp(arg, "--json")) {
            cli.json = true;
            continue;
        }
        if (!std::strncmp(arg, "--json=", 7)) {
            cli.json = true;
            cli.jsonPath = arg + 7;
            continue;
        }
        if (!std::strcmp(arg, "--fresh")) {
            fresh = true;
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--journal")) {
            cli.options.journalPath = value;
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--threads")) {
            long n = std::strtol(value, nullptr, 10);
            cli.options.threads =
                n >= 0 ? static_cast<unsigned>(n) : 0;
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--pool-algo")) {
            if (!parsePoolBuildAlgorithm(value, cli.pool.algorithm)) {
                std::fprintf(stderr,
                             "%s: unknown pool algorithm '%s' (use"
                             " single[-elimination] or"
                             " group[-testing])\n",
                             argv[0], value);
                std::exit(2);
            }
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--pool-threads")) {
            // Negative values mean 0 (all cores), like --threads.
            long n = std::strtol(value, nullptr, 10);
            cli.pool.threads = n >= 0 ? static_cast<unsigned>(n) : 0;
            continue;
        }
        if (const char *value =
                flagValue(argc, argv, i, "--dram-model")) {
            if (!parseFlipModelKind(value, cli.dramModel)) {
                std::fprintf(stderr,
                             "%s: unknown DRAM model '%s' (use ddr3,"
                             " trr, distance2 or ecc)\n",
                             argv[0], value);
                std::exit(2);
            }
            continue;
        }
        if (!std::strcmp(arg, "--journal") ||
            !std::strcmp(arg, "--threads") ||
            !std::strcmp(arg, "--pool-algo") ||
            !std::strcmp(arg, "--pool-threads") ||
            !std::strcmp(arg, "--dram-model")) {
            // flagValue only fails for these when the value is gone.
            std::fprintf(stderr, "%s: missing value for '%s'\n",
                         argv[0], arg);
            std::exit(2);
        }
        std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                     arg);
        usage(argv[0], summary);
        std::exit(2);
    }
    cli.options.resume = !fresh;
    return cli;
}

unsigned
BenchCli::reportFailures(const std::vector<RunResult> &results)
{
    unsigned failures = 0;
    for (const RunResult &run : results) {
        if (run.ok)
            continue;
        ++failures;
        std::printf("run %s failed: %s\n", run.label.c_str(),
                    run.error.c_str());
    }
    return failures;
}

bool
BenchCli::staleMetrics(const RunResult &run, std::size_t expected)
{
    if (!run.ok || run.metrics.size() >= expected)
        return false;
    std::fprintf(stderr,
                 "run %s: journal entry has %zu metrics, this bench"
                 " expects %zu — stale journal (body changed?);"
                 " rerun with --fresh\n",
                 run.label.c_str(), run.metrics.size(), expected);
    return true;
}

bool
BenchCli::emitJson(const std::vector<RunResult> &results) const
{
    if (!json)
        return true;
    const std::string report = Campaign::toJson(results);
    if (jsonPath.empty()) {
        std::fputs(report.c_str(), stdout);
        return true;
    }
    std::ofstream out(jsonPath, std::ios::out | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write JSON report to %s\n",
                     jsonPath.c_str());
        return false;
    }
    out << report;
    return true;
}

} // namespace pth
