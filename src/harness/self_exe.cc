#include "harness/self_exe.hh"

#include <unistd.h>

namespace pth
{

std::string
resolveSelfExe(const std::string &argv0)
{
    char self[4096];
    const ssize_t len = ::readlink("/proc/self/exe", self, sizeof(self));
    if (len <= 0 || static_cast<std::size_t>(len) >= sizeof(self))
        return argv0;
    return std::string(self, static_cast<std::size_t>(len));
}

} // namespace pth
