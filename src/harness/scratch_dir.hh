/**
 * @file
 * RAII ownership of a scratch directory. The --workers scratch
 * directory used to be removed only on the all-success path, so any
 * failure — a dead worker, a merge error, an exception — leaked
 * /tmp/pth_workersXXXXXX with every per-worker journal and log in it.
 * The guard deletes the directory's regular files and then the
 * directory itself whenever it dies still armed (rmdir alone fails on
 * non-empty directories); keep() is the explicit opt-out for the
 * "artifacts kept for inspection" path.
 */

#ifndef PTH_HARNESS_SCRATCH_DIR_HH
#define PTH_HARNESS_SCRATCH_DIR_HH

#include <string>

namespace pth
{

/** Owns a scratch directory; removes it (contents first) on death. */
class ScratchDirGuard
{
  public:
    /** An empty, disarmed guard (no directory). */
    ScratchDirGuard() = default;

    /**
     * Create a fresh directory from a mkdtemp pattern (trailing
     * "XXXXXX") and own it.
     * @throws std::runtime_error when the directory cannot be made.
     */
    static ScratchDirGuard create(const std::string &pattern);

    ~ScratchDirGuard() { removeNow(); }

    ScratchDirGuard(ScratchDirGuard &&other) noexcept
        : dir(std::move(other.dir))
    {
        other.dir.clear();
    }

    ScratchDirGuard &operator=(ScratchDirGuard &&other) noexcept
    {
        if (this != &other) {
            removeNow();
            dir = std::move(other.dir);
            other.dir.clear();
        }
        return *this;
    }

    ScratchDirGuard(const ScratchDirGuard &) = delete;
    ScratchDirGuard &operator=(const ScratchDirGuard &) = delete;

    /** The owned directory; empty when disarmed. */
    const std::string &path() const { return dir; }

    /** Whether the guard still owns a directory. */
    bool active() const { return !dir.empty(); }

    /** Disarm: leave the directory (and its files) on disk. */
    void keep() { dir.clear(); }

    /** Best-effort removal right now (also disarms). */
    void removeNow();

  private:
    std::string dir;
};

} // namespace pth

#endif // PTH_HARNESS_SCRATCH_DIR_HH
