/**
 * @file
 * Queryable index over stored campaign results — the read side of the
 * "millions of runs" story. A JournalIndex ingests one or many
 * result-store journals (and campaign --json reports; the loader
 * sniffs), folds them with the same last-wins-by-run-index semantics
 * as ResultStore::merge, and answers the questions flat JSONL cannot:
 *
 *  - filter by spec axis: label / machine preset / defense / hammer
 *    strategy / seed / DRAM flip model (AND of "axis=value" filters);
 *  - group-by aggregation: fold any selection into per-group
 *    CampaignAggregates, deterministically ordered;
 *  - two-artifact diff: the regression/trend comparison engine that
 *    tools/campaign_compare fronts and tools/campaign_query exposes
 *    as --trend, extracted here so both share one definition of
 *    "regression".
 *
 * Corrupt journal lines are tolerated exactly like everywhere else in
 * the harness — skipped, counted in LoadStats, surfaced by callers —
 * so a torn shard journal can be queried without ceremony but never
 * silently shrinks an answer.
 */

#ifndef PTH_HARNESS_JOURNAL_INDEX_HH
#define PTH_HARNESS_JOURNAL_INDEX_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/campaign_result.hh"

namespace pth
{

class Table;

/** The spec axes an indexed run can be filtered or grouped by. */
enum class RunAxis
{
    Label,
    Machine,
    Defense,
    Strategy,
    Seed,
    DramModel,
};

/** Canonical CLI name of an axis ("label", "machine", ...). */
const char *runAxisName(RunAxis axis);

/**
 * Parse an axis name: the canonical names plus the aliases "preset"
 * (machine) and "dram-model"/"dram_model"/"model" (dram model).
 * Returns false without touching out when the name is unknown.
 */
bool parseRunAxis(const std::string &text, RunAxis &out);

/** One run loaded from a journal or a campaign JSON report. */
struct IndexedRun
{
    std::size_t index = 0;      //!< run index within its campaign
    std::string label;
    std::string machine;        //!< machine preset name
    std::string defense;
    std::string strategy;

    /** DRAM flip-model name; empty when the artifact predates the
     * field (axisValue renders that as "unrecorded"). */
    std::string dramModel;

    std::uint64_t seed = 0;
    std::uint64_t key = 0;      //!< journal spec key; 0 for report runs

    bool ok = true;
    bool flipped = false;
    bool escalated = false;
    std::uint64_t flips = 0;
    std::uint64_t attempts = 0;
    double simSeconds = 0;
    double timeToFlipMinutes = 0;
    std::vector<std::pair<std::string, double>> metrics;

    /** The run's value on an axis, as the string filters match
     * against (seed in decimal; empty dramModel -> "unrecorded"). */
    std::string axisValue(RunAxis axis) const;
};

/** Project a journal RunResult onto the indexable view. */
IndexedRun indexedRunFromResult(const RunResult &result,
                                std::uint64_t key = 0);

/** An indexed set of runs from one or many stored artifacts. */
class JournalIndex
{
  public:
    /** What loading saw; corrupt lines are the visible trace of torn
     * shard journals and must be surfaced by query tools. */
    struct LoadStats
    {
        unsigned journals = 0;      //!< JSONL artifacts ingested
        unsigned reports = 0;       //!< campaign JSON reports ingested
        std::size_t entries = 0;    //!< run records read (pre-dedup)
        std::size_t superseded = 0; //!< duplicate indices overwritten
        std::size_t corruptLines = 0;
    };

    /**
     * Ingest a result-store journal. Later entries supersede earlier
     * ones with the same run index — within the file and across
     * files, in ingestion order — matching ResultStore::merge, so
     * indexing shard journals answers like querying their merge.
     * Returns false (and indexes nothing) when the file is
     * unreadable; a readable journal with only corrupt lines still
     * "loads" with the damage counted in stats().
     */
    bool addJournal(const std::string &path);

    /**
     * Ingest either stored artifact: a campaign JSON report (object
     * with "runs") or a journal — the sniffing loader
     * campaign_compare uses for its arguments. On failure returns
     * false and, when error is non-null, says why.
     */
    bool addArtifact(const std::string &path,
                     std::string *error = nullptr);

    const LoadStats &stats() const { return stats_; }
    bool empty() const { return byIndex_.empty(); }
    std::size_t size() const { return byIndex_.size(); }

    /** Every indexed run, ascending run index. Pointers are owned by
     * the index and valid until the next add. */
    std::vector<const IndexedRun *> runs() const;

    /** One "axis=value" selection term. */
    struct Filter
    {
        RunAxis axis = RunAxis::Label;
        std::string value;
    };

    /**
     * Parse "axis=value" (e.g. "defense=none", "seed=7"). Returns
     * false with a message in *error (when non-null) on an unknown
     * axis or missing '='.
     */
    static bool parseFilter(const std::string &text, Filter &out,
                            std::string *error = nullptr);

    /** Runs matching every filter (AND), ascending run index. */
    std::vector<const IndexedRun *>
    select(const std::vector<Filter> &filters) const;

    /** One group of a group-by: the axis value and the fold over the
     * group's runs (same fold as Campaign::aggregate). */
    struct Group
    {
        std::string value;
        CampaignAggregate agg;
    };

    /**
     * Fold runs into per-group aggregates on an axis. Groups are
     * ordered deterministically: numerically for Seed, else
     * lexicographically.
     */
    static std::vector<Group>
    groupBy(const std::vector<const IndexedRun *> &runs, RunAxis axis);

    /** Render a group-by as a summary table. */
    static Table groupTable(const std::vector<Group> &groups,
                            RunAxis axis);

    /** Render a selection as a one-row-per-run table. */
    static Table runTable(const std::vector<const IndexedRun *> &runs);

  private:
    /** Fold one freshly parsed run in (last-wins by index). */
    void insert(IndexedRun run);

    std::map<std::size_t, IndexedRun> byIndex_;
    LoadStats stats_;
};

/** Fold one indexed run into a CampaignAggregate (the same fold
 * Campaign::aggregate applies to RunResults). */
void aggregateIndexedRun(CampaignAggregate &agg, const IndexedRun &run);

/**
 * Equality at the JSON report's precision: reports render doubles
 * with %.9g while journals keep all 17 digits, so the same campaign
 * read from a journal and from its report differs below ~1e-9
 * relative. The diff treats that as equal rather than flagging
 * phantom deltas.
 */
bool sameReportValue(double a, double b);

/** Knobs of the two-artifact diff. */
struct RunDiffOptions
{
    /** Simulated-seconds growth tolerated before a run counts as
     * regressed, in percent. */
    double tolerancePct = 10.0;
};

/** What happened to one matched run between two artifacts. */
enum class RunDeltaStatus
{
    Unchanged,
    Changed,     //!< differs, but no regression criterion fired
    Regressed,
    Added,       //!< only in the current artifact
    Removed,     //!< only in the baseline
};

/** One row of the diff. */
struct RunDelta
{
    /** Match name: the label, disambiguated with "#<index>" when the
     * label repeats in either artifact. */
    std::string name;
    const IndexedRun *base = nullptr;    //!< null when Added
    const IndexedRun *current = nullptr; //!< null when Removed
    RunDeltaStatus status = RunDeltaStatus::Unchanged;
    std::string detail;                  //!< "now fails", "fewer flips", ...
};

/** The whole comparison, rows plus the counters the summary and the
 * exit status are built from. */
struct RunDiff
{
    std::vector<RunDelta> deltas; //!< baseline rows (by name), then Added
    unsigned regressions = 0;
    unsigned changed = 0;
    unsigned unchanged = 0;
    unsigned added = 0;
    unsigned removed = 0;
};

/**
 * Compare two run sets — the regression engine behind
 * campaign_compare and campaign_query --trend. A run REGRESSES when,
 * versus the baseline, it stops completing, stops flipping, stops
 * escalating, loses flips, or its simulated seconds grow beyond
 * options.tolerancePct. Runs are matched by label with "#<index>"
 * disambiguation of duplicated labels (both sides must disambiguate
 * the same way, so duplication on either side triggers it for both).
 */
RunDiff diffRuns(const std::vector<const IndexedRun *> &baseline,
                 const std::vector<const IndexedRun *> &current,
                 const RunDiffOptions &options = {});

/**
 * Render the diff as campaign_compare's delta table. Unchanged rows
 * are included only with showAll.
 */
Table diffTable(const RunDiff &diff, bool showAll);

} // namespace pth

#endif // PTH_HARNESS_JOURNAL_INDEX_HH
