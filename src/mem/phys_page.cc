#include "mem/phys_page.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"

namespace pth
{

PhysPage::PhysPage(const PhysPage &other) : pattern(other.pattern)
{
    if (other.dense)
        dense = std::make_unique<std::array<std::uint8_t, kPageBytes>>(
            *other.dense);
}

PhysPage &
PhysPage::operator=(const PhysPage &other)
{
    if (this == &other)
        return *this;
    pattern = other.pattern;
    dense = other.dense
                ? std::make_unique<std::array<std::uint8_t, kPageBytes>>(
                      *other.dense)
                : nullptr;
    return *this;
}

PhysPage::Kind
PhysPage::kind() const
{
    if (dense)
        return Kind::Dense;
    return pattern ? Kind::Pattern : Kind::Zero;
}

std::uint64_t
PhysPage::read64(std::uint64_t offset) const
{
    pth_assert(offset + 8 <= kPageBytes && offset % 8 == 0,
               "unaligned page read at %llu",
               static_cast<unsigned long long>(offset));
    if (dense) {
        std::uint64_t v;
        std::memcpy(&v, dense->data() + offset, 8);
        return v;
    }
    return pattern;
}

void
PhysPage::write64(std::uint64_t offset, std::uint64_t value)
{
    pth_assert(offset + 8 <= kPageBytes && offset % 8 == 0,
               "unaligned page write at %llu",
               static_cast<unsigned long long>(offset));
    if (!dense) {
        if (value == pattern)
            return;
        densify();
    }
    std::memcpy(dense->data() + offset, &value, 8);
}

std::uint8_t
PhysPage::read8(std::uint64_t offset) const
{
    pth_assert(offset < kPageBytes, "page read out of range");
    if (dense)
        return (*dense)[offset];
    return static_cast<std::uint8_t>(pattern >> (8 * (offset % 8)));
}

void
PhysPage::write8(std::uint64_t offset, std::uint8_t value)
{
    pth_assert(offset < kPageBytes, "page write out of range");
    if (!dense) {
        if (read8(offset) == value)
            return;
        densify();
    }
    (*dense)[offset] = value;
}

void
PhysPage::fillPattern(std::uint64_t value)
{
    dense.reset();
    pattern = value;
}

std::uint8_t
PhysPage::flipBit(std::uint64_t offset, unsigned bitPos)
{
    pth_assert(offset < kPageBytes && bitPos < 8, "flip out of range");
    std::uint8_t next =
        static_cast<std::uint8_t>(read8(offset) ^ (1u << bitPos));
    write8(offset, next);
    return next;
}

bool
PhysPage::isZero() const
{
    if (!dense)
        return pattern == 0;
    for (std::uint8_t b : *dense)
        if (b)
            return false;
    return true;
}

std::uint64_t
PhysPage::contentHash() const
{
    // Hash the content, not the representation: a Pattern page and the
    // dense page holding the same bytes hash identically, so equality
    // means "the machine would read the same values", which is the
    // snapshot byte-identity contract.
    std::uint64_t h = 0x70a6e;
    for (std::uint64_t off = 0; off < kPageBytes; off += 8)
        h = hashCombine(h, read64(off));
    return h;
}

void
PhysPage::densify()
{
    dense = std::make_unique<std::array<std::uint8_t, kPageBytes>>();
    for (std::uint64_t off = 0; off < kPageBytes; off += 8)
        std::memcpy(dense->data() + off, &pattern, 8);
}

} // namespace pth
