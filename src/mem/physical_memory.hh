/**
 * @file
 * Sparse simulated physical memory.
 *
 * Pages are materialized on first write (or flip); unmaterialized pages
 * read as zero. This lets experiments run at the paper's full 8 GiB
 * scale while host memory stays proportional to the touched footprint.
 */

#ifndef PTH_MEM_PHYSICAL_MEMORY_HH
#define PTH_MEM_PHYSICAL_MEMORY_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "mem/phys_page.hh"

namespace pth
{

/** Byte-addressable sparse physical memory of a fixed size. */
class PhysicalMemory
{
  public:
    /** @param sizeBytes Total simulated physical memory size. */
    explicit PhysicalMemory(std::uint64_t sizeBytes);

    /** Total size in bytes. */
    std::uint64_t size() const { return bytes; }

    /** Total size in 4 KiB frames. */
    std::uint64_t frames() const { return bytes >> kPageShift; }

    /** Read the aligned 64-bit word at a physical address. */
    std::uint64_t read64(PhysAddr pa) const;

    /** Write the aligned 64-bit word at a physical address. */
    void write64(PhysAddr pa, std::uint64_t value);

    /** Read one byte. */
    std::uint8_t read8(PhysAddr pa) const;

    /** Write one byte. */
    void write8(PhysAddr pa, std::uint8_t value);

    /** Fill an entire frame with a repeating 64-bit pattern. */
    void fillFramePattern(PhysFrame frame, std::uint64_t value);

    /**
     * Flip one bit in DRAM (the fault-injection entry point used by the
     * rowhammer disturbance model).
     *
     * @param pa Physical byte address.
     * @param bitPos Bit within the byte (0-7).
     */
    void flipBit(PhysAddr pa, unsigned bitPos);

    /** Number of host-materialized pages (memory-audit hook). */
    std::uint64_t materializedPages() const { return pages.size(); }

    /** True when the frame has been materialized. */
    bool isMaterialized(PhysFrame frame) const;

    /**
     * Order-independent hash over every materialized page's content
     * (snapshot audits; see Machine::stateFingerprint). Two memories
     * whose reads can never differ hash equally, regardless of page
     * representation or map iteration order.
     */
    std::uint64_t contentHash() const;

  private:
    PhysPage &pageFor(PhysFrame frame);
    const PhysPage *pageIfPresent(PhysFrame frame) const;
    void checkRange(PhysAddr pa) const;

    std::uint64_t bytes;
    std::unordered_map<PhysFrame, PhysPage> pages;
};

} // namespace pth

#endif // PTH_MEM_PHYSICAL_MEMORY_HH
