/**
 * @file
 * Compressed representation of one simulated physical page.
 *
 * The attack sprays gigabytes of Level-1 page tables whose 512 entries
 * all hold the same PTE value (they map the same shared user frame), so
 * a constant-pattern representation keeps host memory proportional to
 * the number of pages rather than their content. A page is densified
 * only when heterogeneous data or a bit flip forces it.
 */

#ifndef PTH_MEM_PHYS_PAGE_HH
#define PTH_MEM_PHYS_PAGE_HH

#include <array>
#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace pth
{

/** One 4 KiB simulated physical page with copy-on-write densification. */
class PhysPage
{
  public:
    /** Representation currently backing the page. */
    enum class Kind { Zero, Pattern, Dense };

    /** Create an all-zero page. */
    PhysPage() = default;

    /** Deep copy, preserving the representation (a densified page
     * stays dense so a snapshot clone replays byte-identically). */
    PhysPage(const PhysPage &other);
    PhysPage &operator=(const PhysPage &other);

    PhysPage(PhysPage &&) = default;
    PhysPage &operator=(PhysPage &&) = default;

    /** Current representation (observable for tests / memory audits). */
    Kind kind() const;

    /** Read the aligned 64-bit word at byte offset (offset % 8 == 0). */
    std::uint64_t read64(std::uint64_t offset) const;

    /** Write the aligned 64-bit word at byte offset. */
    void write64(std::uint64_t offset, std::uint64_t value);

    /** Read one byte. */
    std::uint8_t read8(std::uint64_t offset) const;

    /** Write one byte. */
    void write8(std::uint64_t offset, std::uint8_t value);

    /**
     * Fill the whole page with a repeating 64-bit pattern. This is the
     * cheap path used when populating sprayed L1PT pages.
     */
    void fillPattern(std::uint64_t value);

    /**
     * Flip a single bit.
     *
     * @param offset Byte offset within the page.
     * @param bitPos Bit position within that byte (0-7).
     * @return The new value of the byte.
     */
    std::uint8_t flipBit(std::uint64_t offset, unsigned bitPos);

    /** True when every byte is zero. */
    bool isZero() const;

    /** Representation-independent content hash (snapshot audits). */
    std::uint64_t contentHash() const;

  private:
    /** Convert to the dense representation. */
    void densify();

    std::uint64_t pattern = 0;
    std::unique_ptr<std::array<std::uint8_t, kPageBytes>> dense;
};

} // namespace pth

#endif // PTH_MEM_PHYS_PAGE_HH
