#include "mem/physical_memory.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace pth
{

PhysicalMemory::PhysicalMemory(std::uint64_t sizeBytes) : bytes(sizeBytes)
{
    pth_assert(sizeBytes >= kPageBytes && sizeBytes % kPageBytes == 0,
               "physical memory size must be page aligned");
}

void
PhysicalMemory::checkRange(PhysAddr pa) const
{
    pth_assert(pa < bytes, "physical access 0x%llx beyond memory end 0x%llx",
               static_cast<unsigned long long>(pa),
               static_cast<unsigned long long>(bytes));
}

std::uint64_t
PhysicalMemory::read64(PhysAddr pa) const
{
    checkRange(pa);
    const PhysPage *page = pageIfPresent(pa >> kPageShift);
    return page ? page->read64(pa & (kPageBytes - 1)) : 0;
}

void
PhysicalMemory::write64(PhysAddr pa, std::uint64_t value)
{
    checkRange(pa);
    pageFor(pa >> kPageShift).write64(pa & (kPageBytes - 1), value);
}

std::uint8_t
PhysicalMemory::read8(PhysAddr pa) const
{
    checkRange(pa);
    const PhysPage *page = pageIfPresent(pa >> kPageShift);
    return page ? page->read8(pa & (kPageBytes - 1)) : 0;
}

void
PhysicalMemory::write8(PhysAddr pa, std::uint8_t value)
{
    checkRange(pa);
    pageFor(pa >> kPageShift).write8(pa & (kPageBytes - 1), value);
}

void
PhysicalMemory::fillFramePattern(PhysFrame frame, std::uint64_t value)
{
    checkRange(frame << kPageShift);
    pageFor(frame).fillPattern(value);
}

void
PhysicalMemory::flipBit(PhysAddr pa, unsigned bitPos)
{
    checkRange(pa);
    pageFor(pa >> kPageShift).flipBit(pa & (kPageBytes - 1), bitPos);
}

bool
PhysicalMemory::isMaterialized(PhysFrame frame) const
{
    return pages.find(frame) != pages.end();
}

std::uint64_t
PhysicalMemory::contentHash() const
{
    // Commutative combine (sum of per-page mixes) so the hash does not
    // depend on the unordered_map's iteration order, which differs
    // between an original and its copy. An all-zero materialized page
    // hashes like its own content, not like absence — kind() changes
    // are invisible, presence changes are not behaviourally observable
    // anyway (unmaterialized pages read as zero).
    std::uint64_t h = 0;
    // determinism: commutative fold — iteration order of the
    // unordered map cannot affect the sum.
    for (const auto &item : pages)
        h += mix64(item.first ^ item.second.contentHash());
    return h;
}

PhysPage &
PhysicalMemory::pageFor(PhysFrame frame)
{
    return pages[frame];
}

const PhysPage *
PhysicalMemory::pageIfPresent(PhysFrame frame) const
{
    auto it = pages.find(frame);
    return it == pages.end() ? nullptr : &it->second;
}

} // namespace pth
