#include "kernel/kernel.hh"

#include "common/logging.hh"
#include "dram/address_mapping.hh"
#include "dram/vulnerability_model.hh"
#include "mem/physical_memory.hh"

namespace pth
{

namespace
{

/** Bytes per struct cred slot in the cred slab. */
constexpr std::uint64_t kCredSlotBytes = 64;

} // namespace

void
Kernel::exhaustKernelZone(double fraction)
{
    std::uint64_t zone = policy->zoneFrames(AllocIntent::KernelData);
    std::uint64_t target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(zone));
    for (std::uint64_t i = burnedKernelFrames.size(); i < target; ++i) {
        PhysFrame f = policy->alloc(AllocIntent::KernelData, 0);
        if (f == kInvalidFrame)
            break;
        burnedKernelFrames.push_back(f);
    }
}

Kernel::Kernel(const KernelConfig &config, PhysicalMemory &memory,
               const AddressMapping &mapping,
               const VulnerabilityModel &vulnerability, Clock &clock,
               DefenseKind defense)
    : cfg(config), mem(memory), map(mapping), clk(clock),
      policy(Defense::create(defense, mapping, vulnerability,
                             memory.frames(), config.seed)),
      rng(config.seed)
{
    applyBootNoise(memory.frames());
}

Kernel::Kernel(const Kernel &other, PhysicalMemory &memory,
               const AddressMapping &mapping,
               const VulnerabilityModel &vulnerability, Clock &clock)
    : cfg(other.cfg), mem(memory), map(mapping), clk(clock),
      policy(other.policy->clone(mapping, vulnerability)), rng(other.rng),
      nextPid(other.nextPid), l1ptFrames(other.l1ptFrames),
      credFrames(other.credFrames), credPage(other.credPage),
      credSlot(other.credSlot),
      burnedKernelFrames(other.burnedKernelFrames)
{
    // determinism: copy into a fresh map — visit order does not
    // affect the resulting container contents.
    for (const auto &item : other.processes) {
        const Process &src = *item.second;
        auto proc = std::make_unique<Process>(src.pid_v, src.uid_v);
        proc->credAddr = src.credAddr;
        proc->userFrames = src.userFrames;
        if (src.tables)
            proc->tables = std::make_unique<PageTables>(
                *src.tables, memory, frameSourceFor(src.pid_v));
        processes.emplace(item.first, std::move(proc));
    }
}

void
Kernel::applyBootNoise(std::uint64_t totalFrames)
{
    // Emulate boot-time fragmentation: a sprinkling of allocations that
    // stay live, so streaming allocations later are *mostly* but not
    // perfectly consecutive — the source of the paper's ~90 %
    // one-row-apart rate (Section IV-D).
    std::uint64_t burn =
        static_cast<std::uint64_t>(cfg.bootNoiseFraction *
                                   static_cast<double>(totalFrames));
    for (std::uint64_t i = 0; i < burn; ++i) {
        // Alternate intents so every zone of every defense fragments.
        AllocIntent intent = (i % 8 == 0) ? AllocIntent::KernelData
                                          : AllocIntent::UserData;
        PhysFrame f = policy->alloc(intent, /*owner=*/0);
        if (f == kInvalidFrame)
            break;
        // Keep ~1/3 of them; return the rest to punch holes.
        if (rng.chance(0.66))
            policy->free(f, intent, 0);
    }
}

PhysFrame
Kernel::allocFrame(AllocIntent intent, std::uint64_t owner)
{
    PhysFrame f = policy->alloc(intent, owner);
    if (f == kInvalidFrame)
        fatal("out of physical memory (defense=%s, intent=%d)",
              policy->name().c_str(), static_cast<int>(intent));
    return f;
}

PageTables::FrameSource
Kernel::frameSourceFor(std::uint64_t pid)
{
    return [this, pid](PtLevel level) {
        AllocIntent intent = level == PtLevel::Pte
                                 ? AllocIntent::PageTableL1
                                 : AllocIntent::PageTableUpper;
        PhysFrame f = allocFrame(intent, pid);
        if (level == PtLevel::Pte)
            l1ptFrames.emplace(f, 0);
        clk.advance(cfg.ptPageAllocCycles);
        return f;
    };
}

Process &
Kernel::createProcess(std::uint32_t uid, bool lightweight)
{
    std::uint64_t pid = nextPid++;
    auto proc = std::make_unique<Process>(pid, uid);
    proc->credAddr = allocCred(pid, uid);
    // Every process also costs the kernel task_struct, stack and
    // housekeeping pages.
    for (unsigned i = 0; i < cfg.processKernelFootprintFrames; ++i)
        burnedKernelFrames.push_back(
            allocFrame(AllocIntent::KernelData, 0));
    if (!lightweight)
        proc->tables =
            std::make_unique<PageTables>(mem, frameSourceFor(pid));
    clk.advance(cfg.syscallCycles);
    Process &ref = *proc;
    processes.emplace(pid, std::move(proc));
    return ref;
}

Process &
Kernel::process(std::uint64_t pid)
{
    auto it = processes.find(pid);
    pth_assert(it != processes.end(), "no such pid %llu",
               static_cast<unsigned long long>(pid));
    return *it->second;
}

PhysAddr
Kernel::allocCred(std::uint64_t pid, std::uint32_t uid)
{
    std::uint64_t slotsPerPage = std::min<std::uint64_t>(
        cfg.credSlotsPerPage, kPageBytes / kCredSlotBytes);
    if (credPage == kInvalidFrame || credSlot >= slotsPerPage) {
        credPage = allocFrame(AllocIntent::KernelData, 0);
        credFrames.emplace(credPage, 0);
        credSlot = 0;
    }
    PhysAddr base = (credPage << kPageShift) + credSlot * kCredSlotBytes;
    ++credSlot;

    mem.write64(base + 0, cfg.credMagic);
    mem.write64(base + 8,
                (static_cast<std::uint64_t>(uid) << 32) | uid);
    mem.write64(base + 16, pid);
    return base;
}

bool
Kernel::processIsRoot(const Process &proc) const
{
    // The kernel trusts the in-memory cred, exactly like the real one:
    // an attacker who can write the cred page becomes root.
    std::uint64_t uidWord = mem.read64(proc.credAddr + 8);
    return static_cast<std::uint32_t>(uidWord) == 0;
}

void
Kernel::mmapSharedSameFrame(Process &proc, VirtAddr va,
                            std::uint64_t bytes, PhysFrame frame)
{
    pth_assert(proc.pageTables(), "lightweight process has no mm");
    pth_assert(va % kPageBytes == 0 && bytes % kPageBytes == 0,
               "unaligned mmap");
    std::uint64_t pages = bytes / kPageBytes;
    std::uint64_t l1ptsBefore = l1ptFrames.size();
    proc.pageTables()->mapRange4kSameFrame(va, pages, frame);
    std::uint64_t l1ptsCreated = l1ptFrames.size() - l1ptsBefore;
    // Population cost: one fault-ish charge per page-table page built
    // (the per-PTE work is batched by the kernel's fault-around).
    clk.advance(cfg.syscallCycles +
                l1ptsCreated * cfg.pageFaultCycles);
}

void
Kernel::mmapAnon(Process &proc, VirtAddr va, std::uint64_t bytes)
{
    pth_assert(proc.pageTables(), "lightweight process has no mm");
    pth_assert(va % kPageBytes == 0 && bytes % kPageBytes == 0,
               "unaligned mmap");
    std::uint64_t pages = bytes / kPageBytes;
    for (std::uint64_t i = 0; i < pages; ++i) {
        PhysFrame f = allocFrame(AllocIntent::UserData, proc.pid());
        proc.userFrames.push_back(f);
        proc.pageTables()->map4k(va + i * kPageBytes, f);
        clk.advance(cfg.pageFaultCycles);
    }
    clk.advance(cfg.syscallCycles);
}

void
Kernel::mmapHuge(Process &proc, VirtAddr va, std::uint64_t bytes)
{
    pth_assert(proc.pageTables(), "lightweight process has no mm");
    pth_assert(va % kSuperPageBytes == 0 && bytes % kSuperPageBytes == 0,
               "unaligned huge mmap");
    std::uint64_t supers = bytes / kSuperPageBytes;
    for (std::uint64_t i = 0; i < supers; ++i) {
        // A 2 MiB page needs 512 consecutive, aligned frames: order-9
        // allocation. Defenses expose only single-frame allocation, so
        // grab frames until a naturally-aligned run materializes; with
        // buddy-backed zones the very first attempt is aligned.
        PhysFrame f = kInvalidFrame;
        for (int attempt = 0; attempt < 4096; ++attempt) {
            PhysFrame candidate = allocFrame(AllocIntent::UserData,
                                             proc.pid());
            bool aligned = (candidate & 0x1ffull) == 0;
            bool runFree = true;
            if (aligned) {
                // Claim the remaining 511 frames of the run.
                std::vector<PhysFrame> claimed;
                for (unsigned k = 1; k < 512 && runFree; ++k) {
                    PhysFrame nf = allocFrame(AllocIntent::UserData,
                                              proc.pid());
                    claimed.push_back(nf);
                    if (nf != candidate + k)
                        runFree = false;
                }
                if (runFree) {
                    f = candidate;
                    proc.userFrames.push_back(candidate);
                    for (PhysFrame cf : claimed)
                        proc.userFrames.push_back(cf);
                    break;
                }
                for (PhysFrame cf : claimed)
                    policy->free(cf, AllocIntent::UserData, proc.pid());
            }
            proc.userFrames.push_back(candidate);  // burned, stays live
        }
        if (f == kInvalidFrame)
            fatal("could not assemble a 2 MiB superpage");
        proc.pageTables()->map2m(va + i * kSuperPageBytes, f);
        clk.advance(cfg.pageFaultCycles);
    }
    clk.advance(cfg.syscallCycles);
}

PhysFrame
Kernel::allocUserFrame(Process &proc)
{
    PhysFrame f = allocFrame(AllocIntent::UserData, proc.pid());
    proc.userFrames.push_back(f);
    return f;
}

std::uint64_t
Kernel::stateHash() const
{
    std::uint64_t h = hashCombine(0x6e1, nextPid, credPage);
    h = hashCombine(h, credSlot, policy->stateHash(), rng.stateHash());
    for (PhysFrame frame : burnedKernelFrames)
        h = hashCombine(h, frame);
    // determinism: commutative folds — iteration order of the
    // unordered maps cannot affect the sums.
    std::uint64_t frameSets = 0;
    for (const auto &item : l1ptFrames)
        frameSets += mix64(item.first);
    // determinism: commutative fold (see above).
    for (const auto &item : credFrames)
        frameSets += mix64(~item.first);
    h = hashCombine(h, frameSets);
    std::uint64_t procs = 0;
    // determinism: commutative fold (see above).
    for (const auto &item : processes) {
        const Process &proc = *item.second;
        std::uint64_t p = hashCombine(proc.pid_v, proc.uid_v,
                                      proc.credAddr);
        p = hashCombine(p, proc.userFrames.size(),
                        proc.tables ? proc.tables->root() + 1 : 0);
        for (PhysFrame frame : proc.userFrames)
            p = hashCombine(p, frame);
        procs += mix64(p);
    }
    return hashCombine(h, procs);
}

} // namespace pth
