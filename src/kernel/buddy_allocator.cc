#include "kernel/buddy_allocator.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace pth
{

BuddyAllocator::BuddyAllocator(PhysFrame firstFrame,
                               std::uint64_t frameCount)
    : first(firstFrame), count(frameCount), freeLists(kMaxOrder + 1)
{
    // Carve the range into maximal naturally-aligned blocks.
    PhysFrame frame = firstFrame;
    std::uint64_t remaining = frameCount;
    while (remaining) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               (((frame - first) & ((1ull << order) - 1)) != 0 ||
                (1ull << order) > remaining)) {
            --order;
        }
        insertFree(frame, order);
        frame += 1ull << order;
        remaining -= 1ull << order;
    }
}

PhysFrame
BuddyAllocator::buddyOf(PhysFrame frame, unsigned order) const
{
    return first + (((frame - first) ^ (1ull << order)));
}

void
BuddyAllocator::insertFree(PhysFrame frame, unsigned order)
{
    freeLists[order].insert(frame);
    nFree += 1ull << order;
}

PhysFrame
BuddyAllocator::alloc(unsigned order)
{
    pth_assert(order <= kMaxOrder, "order too large");

    unsigned found = order;
    while (found <= kMaxOrder && freeLists[found].empty())
        ++found;
    if (found > kMaxOrder)
        return kInvalidFrame;

    PhysFrame frame = *freeLists[found].begin();
    freeLists[found].erase(freeLists[found].begin());
    nFree -= 1ull << found;

    // Split down to the requested order, returning the upper halves.
    while (found > order) {
        --found;
        insertFree(frame + (1ull << found), found);
    }
    return frame;
}

void
BuddyAllocator::free(PhysFrame frame, unsigned order)
{
    pth_assert(contains(frame), "freeing frame outside allocator");
    nFree += 1ull << order;

    // Coalesce with the buddy while possible.
    while (order < kMaxOrder) {
        PhysFrame buddy = buddyOf(frame, order);
        auto it = freeLists[order].find(buddy);
        if (it == freeLists[order].end())
            break;
        freeLists[order].erase(it);
        frame = std::min(frame, buddy);
        ++order;
    }
    freeLists[order].insert(frame);
}

bool
BuddyAllocator::contains(PhysFrame frame) const
{
    return frame >= first && frame < first + count;
}

std::uint64_t
BuddyAllocator::stateHash() const
{
    std::uint64_t h = hashCombine(0xb0dd, first, count, nFree);
    for (std::size_t order = 0; order < freeLists.size(); ++order)
        for (PhysFrame frame : freeLists[order])  // std::set: ordered
            h = hashCombine(h, order, frame);
    return h;
}

FrameListAllocator::FrameListAllocator(std::vector<PhysFrame> frames)
{
    for (PhysFrame f : frames) {
        freeList.insert(f);
        universe.insert(f);
    }
}

PhysFrame
FrameListAllocator::alloc()
{
    if (freeList.empty())
        return kInvalidFrame;
    PhysFrame frame = *freeList.begin();
    freeList.erase(freeList.begin());
    return frame;
}

void
FrameListAllocator::free(PhysFrame frame)
{
    pth_assert(universe.count(frame), "freeing foreign frame");
    freeList.insert(frame);
}

bool
FrameListAllocator::contains(PhysFrame frame) const
{
    return universe.count(frame) > 0;
}

std::uint64_t
FrameListAllocator::stateHash() const
{
    std::uint64_t h = hashCombine(0xf7ee, universe.size());
    for (PhysFrame frame : freeList)  // std::set: ordered
        h = hashCombine(h, frame);
    return h;
}

} // namespace pth
