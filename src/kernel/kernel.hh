/**
 * @file
 * Minimal operating-system substrate: processes with credentials,
 * address spaces backed by the defense-controlled frame allocator, and
 * the mmap flavours the attack needs (anonymous, shared-same-frame
 * spraying, 2 MiB superpages).
 *
 * Syscall and page-population costs are charged to the machine clock
 * so that Table II's preparation-time columns are simulated, not
 * invented.
 */

#ifndef PTH_KERNEL_KERNEL_HH
#define PTH_KERNEL_KERNEL_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "kernel/defense.hh"
#include "paging/page_tables.hh"

namespace pth
{

class PhysicalMemory;
class AddressMapping;
class VulnerabilityModel;

/** Simulated-time source shared by CPU and kernel. */
class Clock
{
  public:
    /** Current simulated cycle. */
    Cycles now() const { return tick; }

    /** Advance simulated time. */
    void advance(Cycles cycles) { tick += cycles; }

  private:
    Cycles tick = 0;
};

/** Kernel cost/behaviour knobs. */
struct KernelConfig
{
    Cycles syscallCycles = 1500;     //!< fixed syscall entry/exit cost
    Cycles pageFaultCycles = 6200;   //!< per-page population cost
    Cycles ptPageAllocCycles = 2600; //!< per page-table page created
    double bootNoiseFraction = 0.04; //!< frames burned at boot (fragmentation)
    std::uint64_t seed = 0xb007;
    std::uint64_t credMagic = 0x637265645f6d6167ull;  //!< "cred_mag"

    /** struct cred slots packed per slab page. */
    unsigned credSlotsPerPage = 1;

    /** Other kernel frames (task_struct, stacks, ...) a process costs;
     * this sets the cred-page density the CTA exploit relies on. */
    unsigned processKernelFootprintFrames = 6;
};

/** Field-wise equality (campaign snapshot-sharing detection). */
inline bool
operator==(const KernelConfig &a, const KernelConfig &b)
{
    return a.syscallCycles == b.syscallCycles &&
           a.pageFaultCycles == b.pageFaultCycles &&
           a.ptPageAllocCycles == b.ptPageAllocCycles &&
           a.bootNoiseFraction == b.bootNoiseFraction &&
           a.seed == b.seed && a.credMagic == b.credMagic &&
           a.credSlotsPerPage == b.credSlotsPerPage &&
           a.processKernelFootprintFrames ==
               b.processKernelFootprintFrames;
}

inline bool
operator!=(const KernelConfig &a, const KernelConfig &b)
{
    return !(a == b);
}

/** Magic value marking struct cred slots in kernel pages. */
struct Cred
{
    std::uint64_t magic;
    std::uint32_t uid;
    std::uint32_t gid;
    std::uint64_t pid;
};

/** One process. */
class Process
{
  public:
    Process(std::uint64_t pid_, std::uint32_t uid_) : pid_v(pid_),
        uid_v(uid_) {}

    std::uint64_t pid() const { return pid_v; }
    std::uint32_t uid() const { return uid_v; }

    /** Address space; null for lightweight (kernel-thread) processes. */
    PageTables *pageTables() { return tables.get(); }
    const PageTables *pageTables() const { return tables.get(); }

  private:
    friend class Kernel;
    std::uint64_t pid_v;
    std::uint32_t uid_v;
    std::unique_ptr<PageTables> tables;
    PhysAddr credAddr = 0;
    std::vector<PhysFrame> userFrames;
};

/** The kernel. */
class Kernel
{
  public:
    Kernel(const KernelConfig &config, PhysicalMemory &memory,
           const AddressMapping &mapping,
           const VulnerabilityModel &vulnerability, Clock &clock,
           DefenseKind defense);

    /**
     * Deep copy rewired to the new machine's devices (Machine
     * snapshot/fork). Boot noise is NOT replayed — the defense policy
     * (including allocator cursors), RNG, process table, and all
     * bookkeeping carry over, and each cloned process's page tables
     * are rebuilt around this kernel's frame source so future
     * page-table pages charge and register here, not in the original.
     */
    Kernel(const Kernel &other, PhysicalMemory &memory,
           const AddressMapping &mapping,
           const VulnerabilityModel &vulnerability, Clock &clock);

    /**
     * Create a process.
     * @param uid Owner user id (nonzero = unprivileged).
     * @param lightweight When set, no address space is built (used to
     *        spray struct cred without paying a page-table page per
     *        process, like a kernel thread / shared-mm clone).
     */
    Process &createProcess(std::uint32_t uid, bool lightweight = false);

    /** Look up a process by pid. */
    Process &process(std::uint64_t pid);

    /**
     * mmap MAP_SHARED | MAP_FIXED | MAP_POPULATE of one physical frame
     * repeated across [va, va + bytes): the paper's spraying primitive.
     * Level-1 page tables are created eagerly; population cost is
     * charged per page-table page.
     */
    void mmapSharedSameFrame(Process &proc, VirtAddr va,
                             std::uint64_t bytes, PhysFrame frame);

    /** mmap MAP_ANONYMOUS | MAP_FIXED | MAP_POPULATE, 4 KiB pages. */
    void mmapAnon(Process &proc, VirtAddr va, std::uint64_t bytes);

    /** mmap with MAP_HUGETLB: 2 MiB superpages. */
    void mmapHuge(Process &proc, VirtAddr va, std::uint64_t bytes);

    /** Allocate one user frame for a process (owner charged). */
    PhysFrame allocUserFrame(Process &proc);

    /**
     * Burn kernel-zone frames until roughly the given fraction of the
     * zone is allocated. Models the attacker-triggered exhaustion that
     * pushes subsequent page-table allocations toward the top of the
     * kernel zone (Cheng et al.; used against CATT in Section IV-G1).
     */
    void exhaustKernelZone(double fraction);

    /** Privileged check: does this pid now run as root? */
    bool processIsRoot(const Process &proc) const;

    /** Physical address of the process's struct cred. */
    PhysAddr credAddress(const Process &proc) const { return proc.credAddr; }

    /** The placement policy in force. */
    Defense &defense() { return *policy; }
    const Defense &defense() const { return *policy; }

    /** Frames holding Level-1 page tables, across all processes. */
    bool frameIsL1pt(PhysFrame frame) const
    {
        return l1ptFrames.count(frame) > 0;
    }

    /** Frames holding struct cred slabs. */
    bool frameIsCredPage(PhysFrame frame) const
    {
        return credFrames.count(frame) > 0;
    }

    /** Number of Level-1 page-table pages currently allocated. */
    std::uint64_t l1ptCount() const { return l1ptFrames.size(); }

    /** Configuration in force. */
    const KernelConfig &config() const { return cfg; }

    /** Digest of kernel bookkeeping — pids, cred slab cursor, L1PT and
     * cred frame sets, per-process state (snapshot audits). */
    std::uint64_t stateHash() const;

  private:
    /** Defense-routed frame allocation; fatal when exhausted. */
    PhysFrame allocFrame(AllocIntent intent, std::uint64_t owner);

    /** Page-table frame source for one process. */
    PageTables::FrameSource frameSourceFor(std::uint64_t pid);

    /** Place a new struct cred and write it to kernel memory. */
    PhysAddr allocCred(std::uint64_t pid, std::uint32_t uid);

    /** Burn a few random-order frames to model boot fragmentation. */
    void applyBootNoise(std::uint64_t totalFrames);

    KernelConfig cfg;
    PhysicalMemory &mem;
    const AddressMapping &map;
    Clock &clk;
    std::unique_ptr<Defense> policy;
    Rng rng;

    std::unordered_map<std::uint64_t, std::unique_ptr<Process>> processes;
    std::uint64_t nextPid = 1;

    std::unordered_map<PhysFrame, char> l1ptFrames;
    std::unordered_map<PhysFrame, char> credFrames;
    PhysFrame credPage = kInvalidFrame;
    std::uint64_t credSlot = 0;
    std::vector<PhysFrame> burnedKernelFrames;
};

} // namespace pth

#endif // PTH_KERNEL_KERNEL_HH
