/**
 * @file
 * Physical-frame allocators.
 *
 * BuddyAllocator mirrors the Linux buddy system's tendency to hand out
 * *consecutive* physical pages under streaming allocation — the
 * property the paper's pair-selection step exploits (Section IV-D).
 * FrameListAllocator is a simple ordered free list used by defense
 * zones whose frame sets are not contiguous (CTA true-cell rows,
 * ZebRAM even rows).
 */

#ifndef PTH_KERNEL_BUDDY_ALLOCATOR_HH
#define PTH_KERNEL_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <set>
#include <vector>

#include "common/types.hh"

namespace pth
{

/** Binary buddy allocator over a contiguous frame range. */
class BuddyAllocator
{
  public:
    /** Highest supported order (2^10 frames = 4 MiB blocks). */
    static constexpr unsigned kMaxOrder = 10;

    /**
     * @param firstFrame First frame managed.
     * @param frameCount Number of frames managed (any value; the range
     *        is carved into power-of-two blocks).
     */
    BuddyAllocator(PhysFrame firstFrame, std::uint64_t frameCount);

    /**
     * Allocate a 2^order-frame block, lowest address first.
     * @return First frame of the block, or kInvalidFrame when empty.
     */
    PhysFrame alloc(unsigned order = 0);

    /** Free a block previously allocated with the same order. */
    void free(PhysFrame frame, unsigned order = 0);

    /** Frames currently free. */
    std::uint64_t freeFrames() const { return nFree; }

    /** Total frames managed. */
    std::uint64_t totalFrames() const { return count; }

    /** True when the frame lies inside the managed range. */
    bool contains(PhysFrame frame) const;

    /** First managed frame. */
    PhysFrame base() const { return first; }

    /**
     * Digest of the allocator position (free lists per order). Folded
     * into Defense/Kernel stateHash: two allocators with equal digests
     * hand out the same frames in the same order forever.
     */
    std::uint64_t stateHash() const;

  private:
    PhysFrame buddyOf(PhysFrame frame, unsigned order) const;
    void insertFree(PhysFrame frame, unsigned order);

    PhysFrame first;
    std::uint64_t count;
    std::uint64_t nFree = 0;
    std::vector<std::set<PhysFrame>> freeLists;  //!< per order
};

/** Ordered single-frame free list over an arbitrary frame set. */
class FrameListAllocator
{
  public:
    FrameListAllocator() = default;

    /** Seed the allocator with a set of usable frames. */
    explicit FrameListAllocator(std::vector<PhysFrame> frames);

    /** Allocate the lowest-address free frame. */
    PhysFrame alloc();

    /** Return a frame to the pool. */
    void free(PhysFrame frame);

    /** Frames currently free. */
    std::uint64_t freeFrames() const { return freeList.size(); }

    /** True when the frame belongs to this allocator's universe. */
    bool contains(PhysFrame frame) const;

    /** Digest of the free list (see BuddyAllocator::stateHash). */
    std::uint64_t stateHash() const;

  private:
    std::set<PhysFrame> freeList;
    std::set<PhysFrame> universe;
};

} // namespace pth

#endif // PTH_KERNEL_BUDDY_ALLOCATOR_HH
