#include "kernel/kernel_module.hh"

#include "cpu/machine.hh"

namespace pth
{

KernelModule::KernelModule(Machine &machine) : m(machine)
{
}

std::uint64_t
KernelModule::readPmc(PmcEvent event) const
{
    if (event == PmcEvent::LongestLatCacheMiss)
        return m.caches().llcMisses();
    return m.mmu().counters().read(event);
}

std::optional<PhysAddr>
KernelModule::l1pteAddress(const Process &proc, VirtAddr va) const
{
    if (!proc.pageTables())
        return std::nullopt;
    return proc.pageTables()->l1pteAddress(va);
}

DramLocation
KernelModule::dramLocation(PhysAddr pa) const
{
    return m.dram().mapping().decompose(pa);
}

bool
KernelModule::l1ptesSameBank(const Process &proc, VirtAddr va1,
                             VirtAddr va2) const
{
    auto a1 = l1pteAddress(proc, va1);
    auto a2 = l1pteAddress(proc, va2);
    if (!a1 || !a2)
        return false;
    return dramLocation(*a1).bank == dramLocation(*a2).bank;
}

std::uint64_t
KernelModule::l1pteRowDistance(const Process &proc, VirtAddr va1,
                               VirtAddr va2) const
{
    auto a1 = l1pteAddress(proc, va1);
    auto a2 = l1pteAddress(proc, va2);
    if (!a1 || !a2)
        return ~0ull;
    DramLocation l1 = dramLocation(*a1);
    DramLocation l2 = dramLocation(*a2);
    if (l1.bank != l2.bank)
        return ~0ull;
    return l1.row > l2.row ? l1.row - l2.row : l2.row - l1.row;
}

std::optional<std::uint64_t>
KernelModule::l1pteLlcSet(const Process &proc, VirtAddr va) const
{
    auto a = l1pteAddress(proc, va);
    if (!a)
        return std::nullopt;
    return m.caches().llc().globalSet(*a);
}

} // namespace pth
