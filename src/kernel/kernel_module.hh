/**
 * @file
 * Evaluation-only privileged kernel module.
 *
 * The paper's authors load a kernel module to (a) read PMCs while
 * calibrating eviction sets and (b) obtain L1PTE physical addresses to
 * *measure* the attack's false-positive rates. The attack itself never
 * uses it — and neither does ours; only calibration code and the
 * benches that reproduce Sections IV-C/IV-D do.
 */

#ifndef PTH_KERNEL_KERNEL_MODULE_HH
#define PTH_KERNEL_KERNEL_MODULE_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "dram/address_mapping.hh"
#include "mmu/perf_counters.hh"

namespace pth
{

class Machine;
class Process;

/** Privileged introspection handle. */
class KernelModule
{
  public:
    explicit KernelModule(Machine &machine);

    /** Read a PMC event (TLB-miss-walk, LLC-miss, ...). */
    std::uint64_t readPmc(PmcEvent event) const;

    /** Physical address of the L1PTE mapping va in proc. */
    std::optional<PhysAddr> l1pteAddress(const Process &proc,
                                         VirtAddr va) const;

    /** DRAM location of a physical address. */
    DramLocation dramLocation(PhysAddr pa) const;

    /** Ground truth: are the L1PTEs of two vas in the same bank? */
    bool l1ptesSameBank(const Process &proc, VirtAddr va1,
                        VirtAddr va2) const;

    /** Ground truth: row-index distance between two vas' L1PTEs
     * (returns ~0ull when different banks or unmapped). */
    std::uint64_t l1pteRowDistance(const Process &proc, VirtAddr va1,
                                   VirtAddr va2) const;

    /** Ground truth: LLC global set of the L1PTE mapping va. */
    std::optional<std::uint64_t> l1pteLlcSet(const Process &proc,
                                             VirtAddr va) const;

  private:
    Machine &m;
};

} // namespace pth

#endif // PTH_KERNEL_KERNEL_MODULE_HH
