#include "kernel/defense.hh"

#include <functional>
#include <unordered_map>

#include "common/logging.hh"
#include "common/random.hh"
#include "dram/address_mapping.hh"
#include "dram/vulnerability_model.hh"

namespace pth
{

std::string
defenseKindName(DefenseKind kind)
{
    switch (kind) {
      case DefenseKind::None:
        return "none";
      case DefenseKind::Catt:
        return "CATT";
      case DefenseKind::RipRh:
        return "RIP-RH";
      case DefenseKind::Cta:
        return "CTA";
      case DefenseKind::ZebRam:
        return "ZebRAM";
    }
    return "?";
}

namespace
{

/** First frames are reserved for the kernel image / boot structures. */
constexpr PhysFrame kReservedFrames = 256;

/**
 * Frame allocator that walks a cursor across [lo, hi) keeping only
 * frames that satisfy a predicate. Freed frames are recycled first.
 * Used by zones whose frame sets are large but cheaply enumerable
 * (CTA's true-cell rows, ZebRAM's even rows).
 */
class CursorAllocator
{
  public:
    CursorAllocator(PhysFrame lo_, PhysFrame hi_, bool descending_,
                    std::function<bool(PhysFrame)> predicate)
        : lo(lo_), hi(hi_), descending(descending_),
          pred(std::move(predicate))
    {
        cursor = descending ? hi : lo;
    }

    /**
     * Copy the allocator's position (cursor, recycled list) but swap
     * in a fresh predicate — the old one captures its owning defense,
     * which a clone must not keep pointing at.
     */
    CursorAllocator(const CursorAllocator &other,
                    std::function<bool(PhysFrame)> predicate)
        : lo(other.lo), hi(other.hi), cursor(other.cursor),
          descending(other.descending), pred(std::move(predicate)),
          recycled(other.recycled)
    {
    }

    PhysFrame
    alloc()
    {
        if (!recycled.empty()) {
            PhysFrame f = *recycled.begin();
            recycled.erase(recycled.begin());
            return f;
        }
        while (true) {
            if (descending) {
                if (cursor == lo)
                    return kInvalidFrame;
                --cursor;
                if (pred(cursor))
                    return cursor;
            } else {
                if (cursor == hi)
                    return kInvalidFrame;
                PhysFrame f = cursor++;
                if (pred(f))
                    return f;
            }
        }
    }

    void
    free(PhysFrame frame)
    {
        recycled.insert(frame);
    }

    bool
    inRange(PhysFrame frame) const
    {
        return frame >= lo && frame < hi && pred(frame);
    }

    std::uint64_t
    stateHash() const
    {
        std::uint64_t h = hashCombine(0xc0a5, lo, hi, cursor);
        h = hashCombine(h, descending);
        for (PhysFrame frame : recycled)  // std::set: ordered
            h = hashCombine(h, frame);
        return h;
    }

  private:
    PhysFrame lo;
    PhysFrame hi;
    PhysFrame cursor;
    bool descending;
    std::function<bool(PhysFrame)> pred;
    std::set<PhysFrame> recycled;
};

/** No defense: one buddy pool for everything. */
class NoDefense : public Defense
{
  public:
    explicit NoDefense(std::uint64_t totalFrames)
        : pool(kReservedFrames, totalFrames - kReservedFrames)
    {
    }

    std::string name() const override { return "none"; }

    PhysFrame
    alloc(AllocIntent, std::uint64_t) override
    {
        return pool.alloc();
    }

    void
    free(PhysFrame frame, AllocIntent, std::uint64_t) override
    {
        pool.free(frame);
    }

    bool
    frameAllowed(AllocIntent, PhysFrame frame) const override
    {
        return pool.contains(frame);
    }

    std::uint64_t
    zoneFrames(AllocIntent) const override
    {
        return pool.totalFrames();
    }

    std::unique_ptr<Defense>
    clone(const AddressMapping &, const VulnerabilityModel &) const override
    {
        return std::unique_ptr<Defense>(new NoDefense(*this));
    }

    std::uint64_t
    stateHash() const override
    {
        return hashCombine(0xd0, pool.stateHash());
    }

  private:
    NoDefense(const NoDefense &) = default;

    BuddyAllocator pool;
};

/** CATT: kernel zone low, guard rows, user zone high. */
class CattDefense : public Defense
{
  public:
    CattDefense(const AddressMapping &mapping, std::uint64_t totalFrames)
    {
        // The kernel zone takes the low quarter; a full row-index
        // stride of guard frames separates it from user memory, so no
        // user-reachable row is adjacent to a kernel row.
        std::uint64_t guardFrames =
            mapping.rowBytes() * mapping.banks() / kPageBytes;
        kernelEnd = kReservedFrames + (totalFrames / 4);
        userStart = kernelEnd + guardFrames;
        kernelPool = std::make_unique<BuddyAllocator>(
            kReservedFrames, kernelEnd - kReservedFrames);
        userPool = std::make_unique<BuddyAllocator>(
            userStart, totalFrames - userStart);
    }

    std::string name() const override { return "CATT"; }

    PhysFrame
    alloc(AllocIntent intent, std::uint64_t) override
    {
        if (intent == AllocIntent::UserData)
            return userPool->alloc();
        PhysFrame f = kernelPool->alloc();
        if (f != kInvalidFrame)
            return f;
        // Kernel zone exhausted: like the deployed CATT prototype, the
        // allocator falls back to movable (user) memory rather than
        // failing — the weakness Cheng et al. (CATTmew) identified and
        // that the paper's Section IV-G1 attack provokes on purpose.
        if (!warnedFallback) {
            warn("CATT kernel zone exhausted; falling back to user zone");
            warnedFallback = true;
        }
        return userPool->alloc();
    }

    void
    free(PhysFrame frame, AllocIntent intent, std::uint64_t) override
    {
        if (intent == AllocIntent::UserData || frame >= userStart)
            userPool->free(frame);
        else
            kernelPool->free(frame);
    }

    bool
    frameAllowed(AllocIntent intent, PhysFrame frame) const override
    {
        if (intent == AllocIntent::UserData)
            return frame >= userStart;
        // Kernel intents: the dedicated zone, or the documented
        // exhaustion fallback into user memory.
        return frame >= kReservedFrames;
    }

    std::uint64_t
    zoneFrames(AllocIntent intent) const override
    {
        return intent == AllocIntent::UserData ? userPool->totalFrames()
                                               : kernelPool->totalFrames();
    }

    std::unique_ptr<Defense>
    clone(const AddressMapping &, const VulnerabilityModel &) const override
    {
        return std::unique_ptr<Defense>(new CattDefense(*this));
    }

    std::uint64_t
    stateHash() const override
    {
        std::uint64_t h = hashCombine(0xd1, kernelEnd, userStart);
        h = hashCombine(h, warnedFallback, kernelPool->stateHash(),
                        userPool->stateHash());
        return h;
    }

  private:
    CattDefense(const CattDefense &other)
        : kernelEnd(other.kernelEnd), userStart(other.userStart),
          warnedFallback(other.warnedFallback),
          kernelPool(std::make_unique<BuddyAllocator>(*other.kernelPool)),
          userPool(std::make_unique<BuddyAllocator>(*other.userPool))
    {
    }

    PhysFrame kernelEnd;
    PhysFrame userStart;
    bool warnedFallback = false;
    std::unique_ptr<BuddyAllocator> kernelPool;
    std::unique_ptr<BuddyAllocator> userPool;
};

/** RIP-RH: per-process user regions; unprotected kernel zone. */
class RipRhDefense : public Defense
{
  public:
    RipRhDefense(const AddressMapping &mapping, std::uint64_t totalFrames)
        : map(mapping)
    {
        kernelEnd = kReservedFrames + (totalFrames / 4);
        userStart = kernelEnd;
        // One region per user; enough regions for realistic process
        // counts, but never so many that a region cannot hold a
        // process's working set (>= 32 MiB each).
        partitions_n = 64;
        while (partitions_n > 4 &&
               (totalFrames - userStart) / partitions_n < 8192)
            partitions_n /= 2;
        userFramesPerPartition = (totalFrames - userStart) / partitions_n;
        // Keep one guard row between neighbouring user partitions.
        guardFrames = mapping.rowBytes() * mapping.banks() / kPageBytes;
        kernelPool = std::make_unique<BuddyAllocator>(
            kReservedFrames, kernelEnd - kReservedFrames);
    }

    std::string name() const override { return "RIP-RH"; }

    PhysFrame
    alloc(AllocIntent intent, std::uint64_t owner) override
    {
        if (intent != AllocIntent::UserData) {
            PhysFrame f = kernelPool->alloc();
            if (f != kInvalidFrame)
                return f;
            // RIP-RH protects user-user isolation only; the kernel
            // spills into user memory under pressure.
            return partitionFor(owner).alloc();
        }
        return partitionFor(owner).alloc();
    }

    void
    free(PhysFrame frame, AllocIntent intent, std::uint64_t owner) override
    {
        if (intent != AllocIntent::UserData && frame < kernelEnd)
            kernelPool->free(frame);
        else
            partitionFor(owner).free(frame);
    }

    bool
    frameAllowed(AllocIntent intent, PhysFrame frame) const override
    {
        if (intent == AllocIntent::UserData)
            return frame >= userStart;
        return frame >= kReservedFrames;
    }

  private:
    BuddyAllocator &
    partitionFor(std::uint64_t owner)
    {
        unsigned idx = static_cast<unsigned>(owner % partitions_n);
        auto it = partitions.find(idx);
        if (it == partitions.end()) {
            PhysFrame start = userStart + idx * userFramesPerPartition;
            std::uint64_t usable = userFramesPerPartition > guardFrames
                                       ? userFramesPerPartition - guardFrames
                                       : userFramesPerPartition;
            it = partitions
                     .emplace(idx, std::make_unique<BuddyAllocator>(start,
                                                                    usable))
                     .first;
        }
        return *it->second;
    }

    std::uint64_t zoneFramesImpl(AllocIntent intent) const
    {
        return intent == AllocIntent::UserData ? userFramesPerPartition
                                               : kernelPool->totalFrames();
    }

  public:
    std::uint64_t
    zoneFrames(AllocIntent intent) const override
    {
        return zoneFramesImpl(intent);
    }

    std::unique_ptr<Defense>
    clone(const AddressMapping &mapping,
          const VulnerabilityModel &) const override
    {
        return std::unique_ptr<Defense>(new RipRhDefense(*this, mapping));
    }

    std::uint64_t
    stateHash() const override
    {
        std::uint64_t h = hashCombine(0xd2, kernelEnd, userStart);
        h = hashCombine(h, partitions_n, userFramesPerPartition,
                        guardFrames);
        h = hashCombine(h, kernelPool->stateHash());
        // determinism: commutative fold — iteration order of the
        // unordered map cannot affect the sum.
        std::uint64_t fold = 0;
        for (const auto &[idx, pool] : partitions)
            fold += mix64(hashCombine(idx, pool->stateHash()));
        return hashCombine(h, fold);
    }

  private:
    RipRhDefense(const RipRhDefense &other, const AddressMapping &mapping)
        : map(mapping), kernelEnd(other.kernelEnd),
          userStart(other.userStart), partitions_n(other.partitions_n),
          userFramesPerPartition(other.userFramesPerPartition),
          guardFrames(other.guardFrames),
          kernelPool(std::make_unique<BuddyAllocator>(*other.kernelPool))
    {
        // determinism: copy into a fresh map — visit order does not
        // affect the resulting container contents.
        for (const auto &item : other.partitions)
            partitions.emplace(
                item.first,
                std::make_unique<BuddyAllocator>(*item.second));
    }

    const AddressMapping &map;
    PhysFrame kernelEnd;
    PhysFrame userStart;
    unsigned partitions_n;
    std::uint64_t userFramesPerPartition;
    std::uint64_t guardFrames;
    std::unique_ptr<BuddyAllocator> kernelPool;
    std::unordered_map<unsigned, std::unique_ptr<BuddyAllocator>> partitions;
};

/** CTA: L1PTs descend from the top of memory in true-cell-only rows. */
class CtaDefense : public Defense
{
  public:
    CtaDefense(const AddressMapping &mapping,
               const VulnerabilityModel &vulnerability,
               std::uint64_t totalFrames)
        : map(mapping), vuln(vulnerability)
    {
        // The top 3/8 of physical memory is reserved for L1PTs; rows
        // containing anti cells are screened out (CTA's memory test).
        ptZoneStart = totalFrames - (totalFrames * 3) / 8;
        ptPool = std::make_unique<CursorAllocator>(
            ptZoneStart, totalFrames, /*descending=*/true,
            [this](PhysFrame f) { return rowIsTrueCellOnly(f); });
        mainPool = std::make_unique<BuddyAllocator>(
            kReservedFrames, ptZoneStart - kReservedFrames);
    }

    std::string name() const override { return "CTA"; }

    PhysFrame
    alloc(AllocIntent intent, std::uint64_t) override
    {
        if (intent == AllocIntent::PageTableL1) {
            PhysFrame f = ptPool->alloc();
            if (f != kInvalidFrame)
                return f;
            // Zone exhausted: CTA falls back to refusing, we fail hard
            // in the caller via kInvalidFrame.
            return kInvalidFrame;
        }
        return mainPool->alloc();
    }

    void
    free(PhysFrame frame, AllocIntent intent, std::uint64_t) override
    {
        if (intent == AllocIntent::PageTableL1)
            ptPool->free(frame);
        else
            mainPool->free(frame);
    }

    bool
    frameAllowed(AllocIntent intent, PhysFrame frame) const override
    {
        if (intent == AllocIntent::PageTableL1)
            return frame >= ptZoneStart && rowIsTrueCellOnly(frame);
        return frame >= kReservedFrames && frame < ptZoneStart;
    }

    /** First frame of the protected L1PT zone (for the exploit check). */
    PhysFrame ptZoneFirstFrame() const { return ptZoneStart; }

    std::uint64_t
    zoneFrames(AllocIntent intent) const override
    {
        if (intent == AllocIntent::PageTableL1)
            return 0;  // cursor-based; capacity not meaningfully bounded
        return mainPool->totalFrames();
    }

    std::unique_ptr<Defense>
    clone(const AddressMapping &mapping,
          const VulnerabilityModel &vulnerability) const override
    {
        return std::unique_ptr<Defense>(
            new CtaDefense(*this, mapping, vulnerability));
    }

    std::uint64_t
    stateHash() const override
    {
        return hashCombine(0xd3, ptZoneStart, ptPool->stateHash(),
                           mainPool->stateHash());
    }

  private:
    CtaDefense(const CtaDefense &other, const AddressMapping &mapping,
               const VulnerabilityModel &vulnerability)
        : map(mapping), vuln(vulnerability), ptZoneStart(other.ptZoneStart),
          ptPool(std::make_unique<CursorAllocator>(
              *other.ptPool,
              [this](PhysFrame f) { return rowIsTrueCellOnly(f); })),
          mainPool(std::make_unique<BuddyAllocator>(*other.mainPool))
    {
    }

    bool
    rowIsTrueCellOnly(PhysFrame frame) const
    {
        DramLocation loc = map.decompose(frame << kPageShift);
        return vuln.rowHasOnlyTrueCells(loc.bank, loc.row);
    }

    const AddressMapping &map;
    const VulnerabilityModel &vuln;
    PhysFrame ptZoneStart;
    std::unique_ptr<CursorAllocator> ptPool;
    std::unique_ptr<BuddyAllocator> mainPool;
};

/** ZebRAM: only even row indices hold data; odd rows are guards. */
class ZebRamDefense : public Defense
{
  public:
    ZebRamDefense(const AddressMapping &mapping, std::uint64_t totalFrames)
        : map(mapping), total(totalFrames)
    {
        pool = std::make_unique<CursorAllocator>(
            kReservedFrames, totalFrames, /*descending=*/false,
            [this](PhysFrame f) { return rowIsEven(f); });
    }

    std::string name() const override { return "ZebRAM"; }

    PhysFrame
    alloc(AllocIntent, std::uint64_t) override
    {
        return pool->alloc();
    }

    void
    free(PhysFrame frame, AllocIntent, std::uint64_t) override
    {
        pool->free(frame);
    }

    bool
    frameAllowed(AllocIntent, PhysFrame frame) const override
    {
        return frame >= kReservedFrames && rowIsEven(frame);
    }

    std::uint64_t
    zoneFrames(AllocIntent) const override
    {
        return total / 2;
    }

    std::unique_ptr<Defense>
    clone(const AddressMapping &mapping,
          const VulnerabilityModel &) const override
    {
        return std::unique_ptr<Defense>(new ZebRamDefense(*this, mapping));
    }

    std::uint64_t
    stateHash() const override
    {
        return hashCombine(0xd4, total, pool->stateHash());
    }

  private:
    ZebRamDefense(const ZebRamDefense &other, const AddressMapping &mapping)
        : map(mapping), total(other.total),
          pool(std::make_unique<CursorAllocator>(
              *other.pool, [this](PhysFrame f) { return rowIsEven(f); }))
    {
    }

    bool
    rowIsEven(PhysFrame frame) const
    {
        return (map.decompose(frame << kPageShift).row & 1) == 0;
    }

    const AddressMapping &map;
    std::uint64_t total;
    std::unique_ptr<CursorAllocator> pool;
};

} // namespace

std::unique_ptr<Defense>
Defense::create(DefenseKind kind, const AddressMapping &mapping,
                const VulnerabilityModel &vulnerability,
                std::uint64_t totalFrames, std::uint64_t)
{
    pth_assert(totalFrames > 2 * kReservedFrames, "memory too small");
    switch (kind) {
      case DefenseKind::None:
        return std::make_unique<NoDefense>(totalFrames);
      case DefenseKind::Catt:
        return std::make_unique<CattDefense>(mapping, totalFrames);
      case DefenseKind::RipRh:
        return std::make_unique<RipRhDefense>(mapping, totalFrames);
      case DefenseKind::Cta:
        return std::make_unique<CtaDefense>(mapping, vulnerability,
                                            totalFrames);
      case DefenseKind::ZebRam:
        return std::make_unique<ZebRamDefense>(mapping, totalFrames);
    }
    panic("unknown defense kind");
}

} // namespace pth
