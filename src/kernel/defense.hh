/**
 * @file
 * Software-only rowhammer defenses as frame-placement policies.
 *
 * Each defense decides which physical frame backs an allocation of a
 * given intent, implementing the isolation contract its paper
 * describes:
 *
 *  - CATT (Brasser et al.) partitions memory into a kernel zone and a
 *    user zone separated by guard rows: user-reachable rows are never
 *    adjacent to kernel rows.
 *  - RIP-RH (Bock et al.) segregates each user process into its own
 *    DRAM region; the kernel is not protected.
 *  - CTA (Wu et al.) additionally confines Level-1 page tables to the
 *    *top* of physical memory in rows screened to contain only true
 *    cells, so any flip lowers a PTE's pointer and can never redirect
 *    it into the L1PT region.
 *  - ZebRAM (Konoth et al.) uses only every second row for data and
 *    keeps odd rows as guards.
 *
 * PThammer's claim, which the benches reproduce, is that placement
 * defenses do not help when the *processor* performs the access.
 */

#ifndef PTH_KERNEL_DEFENSE_HH
#define PTH_KERNEL_DEFENSE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/types.hh"
#include "kernel/buddy_allocator.hh"

namespace pth
{

class AddressMapping;
class VulnerabilityModel;

/** What an allocation will hold; drives defense placement. */
enum class AllocIntent
{
    UserData,        //!< user-space anonymous/shared pages
    PageTableL1,     //!< Level-1 page-table pages (the attack target)
    PageTableUpper,  //!< PML4/PDPT/PD pages
    KernelData,      //!< other kernel objects (e.g. struct cred slabs)
};

/** Selectable defense policies. */
enum class DefenseKind { None, Catt, RipRh, Cta, ZebRam };

/** Human-readable defense name. */
std::string defenseKindName(DefenseKind kind);

/** Frame-placement policy interface. */
class Defense
{
  public:
    virtual ~Defense() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Allocate one frame.
     * @param intent What the frame will hold.
     * @param owner Owning process id (used by RIP-RH).
     * @return Frame, or kInvalidFrame when the zone is exhausted.
     */
    virtual PhysFrame alloc(AllocIntent intent, std::uint64_t owner) = 0;

    /** Free a frame previously allocated with the same intent/owner. */
    virtual void free(PhysFrame frame, AllocIntent intent,
                      std::uint64_t owner) = 0;

    /**
     * Placement predicate, used by property tests: would this policy
     * ever place an allocation of this intent in this frame?
     */
    virtual bool frameAllowed(AllocIntent intent, PhysFrame frame)
        const = 0;

    /**
     * Approximate zone capacity (frames) for an intent; lets the
     * CATT-exhaustion counter-technique size its allocations.
     */
    virtual std::uint64_t zoneFrames(AllocIntent intent) const = 0;

    /**
     * Deep copy for Machine snapshot/fork: allocator pools, cursors,
     * recycled-frame lists, and fallback flags all carry over so the
     * clone hands out the same frames in the same order. The clone is
     * rewired to the *new* machine's mapping/vulnerability (same
     * values, different objects).
     */
    virtual std::unique_ptr<Defense> clone(
        const AddressMapping &mapping,
        const VulnerabilityModel &vulnerability) const = 0;

    /**
     * Digest of the allocator state (pool free lists, cursors,
     * recycled frames, fallback flags). Folded into Kernel::stateHash
     * so equal machine fingerprints imply identical future frame
     * placement — an advanced allocation cursor was previously
     * invisible to snapshot audits.
     */
    virtual std::uint64_t stateHash() const = 0;

    /** Factory wiring a policy to the machine's DRAM layout. */
    static std::unique_ptr<Defense> create(
        DefenseKind kind, const AddressMapping &mapping,
        const VulnerabilityModel &vulnerability, std::uint64_t totalFrames,
        std::uint64_t seed);
};

} // namespace pth

#endif // PTH_KERNEL_DEFENSE_HH
