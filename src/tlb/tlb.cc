#include "tlb/tlb.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace pth
{

Tlb::Tlb(const TlbLevelConfig &config)
    : cfg(config), slots(config.sets * config.ways),
      policy(ReplacementPolicy::create(config.replacement, config.sets,
                                       config.ways,
                                       mix64(config.seed ^ (config.sets * 7 + config.ways))))
{
    pth_assert(isPow2(cfg.sets), "TLB sets must be a power of two");
}

Tlb::Tlb(const Tlb &other)
    : cfg(other.cfg), slots(other.slots), policy(other.policy->clone())
{
}

std::uint64_t
Tlb::stateHash() const
{
    std::uint64_t h = hashCombine(0x71b, policy->stateHash());
    for (const Slot &slot : slots) {
        h = hashCombine(h, slot.valid, slot.entry.vpn);
        h = hashCombine(h, slot.entry.pfn, slot.entry.huge);
    }
    return h;
}

std::uint64_t
Tlb::setOf(VirtPage vpn) const
{
    // Linear mapping: low vpn bits select the set (Gras et al.).
    return vpn & (cfg.sets - 1);
}

Tlb::Slot &
Tlb::slotAt(std::uint64_t set, unsigned way)
{
    return slots[set * cfg.ways + way];
}

const Tlb::Slot &
Tlb::slotAt(std::uint64_t set, unsigned way) const
{
    return slots[set * cfg.ways + way];
}

std::optional<TlbEntry>
Tlb::lookup(VirtPage vpn, bool huge)
{
    // Slot base hoisted out of the way scan (see Cache::access) —
    // every translate() probes both TLB levels through here.
    const std::uint64_t set = setOf(vpn);
    Slot *row = &slots[set * cfg.ways];
    const unsigned ways = cfg.ways;
    for (unsigned w = 0; w < ways; ++w) {
        Slot &slot = row[w];
        if (slot.valid && slot.entry.vpn == vpn &&
            slot.entry.huge == huge) {
            policy->touch(set, w);
            return slot.entry;
        }
    }
    return std::nullopt;
}

bool
Tlb::contains(VirtPage vpn, bool huge) const
{
    std::uint64_t set = setOf(vpn);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        const Slot &slot = slotAt(set, w);
        if (slot.valid && slot.entry.vpn == vpn && slot.entry.huge == huge)
            return true;
    }
    return false;
}

void
Tlb::insert(const TlbEntry &entry)
{
    const std::uint64_t set = setOf(entry.vpn);
    Slot *row = &slots[set * cfg.ways];
    const unsigned ways = cfg.ways;

    // One scan finds both an already-cached entry (refresh in place)
    // and the first free way.
    unsigned freeWay = ways;
    for (unsigned w = 0; w < ways; ++w) {
        Slot &slot = row[w];
        if (!slot.valid) {
            if (freeWay == ways)
                freeWay = w;
            continue;
        }
        if (slot.entry.vpn == entry.vpn &&
            slot.entry.huge == entry.huge) {
            slot.entry = entry;
            policy->touch(set, w);
            return;
        }
    }

    if (freeWay != ways) {
        Slot &slot = row[freeWay];
        slot.valid = true;
        slot.entry = entry;
        policy->insert(set, freeWay);
        return;
    }

    unsigned w = policy->victim(set);
    Slot &slot = row[w];
    slot.entry = entry;
    policy->insert(set, w);
}

void
Tlb::invalidate(VirtPage vpn, bool huge)
{
    std::uint64_t set = setOf(vpn);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Slot &slot = slotAt(set, w);
        if (slot.valid && slot.entry.vpn == vpn && slot.entry.huge == huge)
            slot.valid = false;
    }
}

void
Tlb::flushAll()
{
    for (Slot &slot : slots)
        slot.valid = false;
}

std::uint64_t
Tlb::validEntries() const
{
    std::uint64_t count = 0;
    for (const Slot &slot : slots)
        if (slot.valid)
            ++count;
    return count;
}

} // namespace pth
