#include "tlb/tlb.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace pth
{

Tlb::Tlb(const TlbLevelConfig &config)
    : cfg(config), slots(config.sets * config.ways),
      policy(ReplacementPolicy::create(config.replacement, config.sets,
                                       config.ways,
                                       mix64(config.seed ^ (config.sets * 7 + config.ways))))
{
    pth_assert(isPow2(cfg.sets), "TLB sets must be a power of two");
}

std::uint64_t
Tlb::setOf(VirtPage vpn) const
{
    // Linear mapping: low vpn bits select the set (Gras et al.).
    return vpn & (cfg.sets - 1);
}

Tlb::Slot &
Tlb::slotAt(std::uint64_t set, unsigned way)
{
    return slots[set * cfg.ways + way];
}

const Tlb::Slot &
Tlb::slotAt(std::uint64_t set, unsigned way) const
{
    return slots[set * cfg.ways + way];
}

std::optional<TlbEntry>
Tlb::lookup(VirtPage vpn, bool huge)
{
    std::uint64_t set = setOf(vpn);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Slot &slot = slotAt(set, w);
        if (slot.valid && slot.entry.vpn == vpn &&
            slot.entry.huge == huge) {
            policy->touch(set, w);
            return slot.entry;
        }
    }
    return std::nullopt;
}

bool
Tlb::contains(VirtPage vpn, bool huge) const
{
    std::uint64_t set = setOf(vpn);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        const Slot &slot = slotAt(set, w);
        if (slot.valid && slot.entry.vpn == vpn && slot.entry.huge == huge)
            return true;
    }
    return false;
}

void
Tlb::insert(const TlbEntry &entry)
{
    std::uint64_t set = setOf(entry.vpn);

    // Refresh in place when already cached.
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Slot &slot = slotAt(set, w);
        if (slot.valid && slot.entry.vpn == entry.vpn &&
            slot.entry.huge == entry.huge) {
            slot.entry = entry;
            policy->touch(set, w);
            return;
        }
    }

    for (unsigned w = 0; w < cfg.ways; ++w) {
        Slot &slot = slotAt(set, w);
        if (!slot.valid) {
            slot.valid = true;
            slot.entry = entry;
            policy->insert(set, w);
            return;
        }
    }

    unsigned w = policy->victim(set);
    Slot &slot = slotAt(set, w);
    slot.entry = entry;
    policy->insert(set, w);
}

void
Tlb::invalidate(VirtPage vpn, bool huge)
{
    std::uint64_t set = setOf(vpn);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Slot &slot = slotAt(set, w);
        if (slot.valid && slot.entry.vpn == vpn && slot.entry.huge == huge)
            slot.valid = false;
    }
}

void
Tlb::flushAll()
{
    for (Slot &slot : slots)
        slot.valid = false;
}

std::uint64_t
Tlb::validEntries() const
{
    std::uint64_t count = 0;
    for (const Slot &slot : slots)
        if (slot.valid)
            ++count;
    return count;
}

} // namespace pth
