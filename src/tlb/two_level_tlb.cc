#include "tlb/two_level_tlb.hh"

#include "common/random.hh"

namespace pth
{

TwoLevelTlb::TwoLevelTlb(const TlbConfig &config)
    : l1Tlb(config.l1d), l2Tlb(config.l2s), l2HitLatency(config.l2HitLatency)
{
}

TlbLookupResult
TwoLevelTlb::lookup(VirtPage vpn, bool huge)
{
    TlbLookupResult result;
    if (auto entry = l1Tlb.lookup(vpn, huge)) {
        result.hit = true;
        result.entry = *entry;
        return result;
    }
    if (auto entry = l2Tlb.lookup(vpn, huge)) {
        result.hit = true;
        result.latency = l2HitLatency;
        result.entry = *entry;
        // Promote into the L1.
        l1Tlb.insert(*entry);
        return result;
    }
    result.latency = l2HitLatency;
    return result;
}

bool
TwoLevelTlb::contains(VirtPage vpn, bool huge) const
{
    return l1Tlb.contains(vpn, huge) || l2Tlb.contains(vpn, huge);
}

void
TwoLevelTlb::insert(const TlbEntry &entry)
{
    l1Tlb.insert(entry);
    l2Tlb.insert(entry);
}

void
TwoLevelTlb::invalidate(VirtPage vpn, bool huge)
{
    l1Tlb.invalidate(vpn, huge);
    l2Tlb.invalidate(vpn, huge);
}

void
TwoLevelTlb::flushAll()
{
    l1Tlb.flushAll();
    l2Tlb.flushAll();
}

std::uint64_t
TwoLevelTlb::totalEntries() const
{
    return l1Tlb.config().sets * l1Tlb.config().ways +
           l2Tlb.config().sets * l2Tlb.config().ways;
}

std::uint64_t
TwoLevelTlb::stateHash() const
{
    return hashCombine(l1Tlb.stateHash(), l2Tlb.stateHash());
}

} // namespace pth
