/**
 * @file
 * TLB configuration for the two-level dTLB/sTLB of the paper's
 * machines: 4-way 64-entry L1 dTLB and 4-way 512-entry L2 sTLB with a
 * linear virtual-page-number set mapping (Gras et al.).
 */

#ifndef PTH_TLB_TLB_CONFIG_HH
#define PTH_TLB_TLB_CONFIG_HH

#include <cstdint>

#include "cache/replacement_policy.hh"
#include "common/types.hh"

namespace pth
{

/** Geometry of one TLB level. */
struct TlbLevelConfig
{
    std::uint64_t sets = 16;
    unsigned ways = 4;
    ReplacementKind replacement = ReplacementKind::TreePlru;
    std::uint64_t seed = 0;   //!< per-machine replacement seed
};

/** Field-wise equality (campaign snapshot-sharing detection). */
inline bool
operator==(const TlbLevelConfig &a, const TlbLevelConfig &b)
{
    return a.sets == b.sets && a.ways == b.ways &&
           a.replacement == b.replacement && a.seed == b.seed;
}

inline bool
operator!=(const TlbLevelConfig &a, const TlbLevelConfig &b)
{
    return !(a == b);
}

/** Two-level TLB configuration. */
struct TlbConfig
{
    TlbLevelConfig l1d{16, 4, ReplacementKind::TreePlru};
    TlbLevelConfig l2s{128, 4, ReplacementKind::TreePlru};
    Cycles l2HitLatency = 7;   //!< extra cycles for an sTLB hit
};

inline bool
operator==(const TlbConfig &a, const TlbConfig &b)
{
    return a.l1d == b.l1d && a.l2s == b.l2s &&
           a.l2HitLatency == b.l2HitLatency;
}

inline bool
operator!=(const TlbConfig &a, const TlbConfig &b)
{
    return !(a == b);
}

} // namespace pth

#endif // PTH_TLB_TLB_CONFIG_HH
