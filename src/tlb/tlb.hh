/**
 * @file
 * One level of a set-associative TLB.
 *
 * Indexed linearly by virtual page number (the mapping Gras et al.
 * reverse-engineered for the paper's SandyBridge/IvyBridge parts).
 * Replacement defaults to tree-PLRU — deliberately not true LRU, which
 * is why minimal eviction sets exceed the associativity (Figure 3).
 */

#ifndef PTH_TLB_TLB_HH
#define PTH_TLB_TLB_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "tlb/tlb_config.hh"

namespace pth
{

/** A cached address translation. */
struct TlbEntry
{
    VirtPage vpn = 0;      //!< virtual page number (va >> pageShift)
    PhysFrame pfn = 0;     //!< physical frame number
    bool huge = false;     //!< 2 MiB translation
};

/** One TLB level. */
class Tlb
{
  public:
    explicit Tlb(const TlbLevelConfig &config);

    /** Deep copy including replacement-policy state (Machine
     * snapshot/fork support; makes TwoLevelTlb copyable). */
    Tlb(const Tlb &other);

    /** Digest of every slot in index order (snapshot audits). */
    std::uint64_t stateHash() const;

    /**
     * Look up a translation.
     * @param vpn Virtual page number.
     * @param huge Whether the lookup is for a 2 MiB page.
     */
    std::optional<TlbEntry> lookup(VirtPage vpn, bool huge);

    /** Presence check without touching replacement state. */
    bool contains(VirtPage vpn, bool huge) const;

    /** Insert (possibly evicting) a translation. */
    void insert(const TlbEntry &entry);

    /** Invalidate one translation (invlpg). */
    void invalidate(VirtPage vpn, bool huge);

    /** Invalidate everything (CR3 write without PCID). */
    void flushAll();

    /** Linear set index of a vpn — exposed so the attack can build
     * congruent eviction sets exactly as Gras et al. do. */
    std::uint64_t setOf(VirtPage vpn) const;

    /** Geometry. */
    const TlbLevelConfig &config() const { return cfg; }

    /** Number of valid entries. */
    std::uint64_t validEntries() const;

  private:
    struct Slot
    {
        TlbEntry entry;
        bool valid = false;
    };

    Slot &slotAt(std::uint64_t set, unsigned way);
    const Slot &slotAt(std::uint64_t set, unsigned way) const;

    TlbLevelConfig cfg;
    std::vector<Slot> slots;
    std::unique_ptr<ReplacementPolicy> policy;
};

} // namespace pth

#endif // PTH_TLB_TLB_HH
