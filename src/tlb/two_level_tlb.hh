/**
 * @file
 * The two-level dTLB/sTLB pair. Lookups try the L1 dTLB, then the L2
 * sTLB; fills populate both (the sTLB acts as a victim-inclusive second
 * level). A target translation is only "evicted" for the attack's
 * purposes when it is gone from *both* levels — which is why the
 * minimal eviction set in the paper spans both L1 and L2 set mappings.
 */

#ifndef PTH_TLB_TWO_LEVEL_TLB_HH
#define PTH_TLB_TWO_LEVEL_TLB_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "tlb/tlb.hh"

namespace pth
{

/** Result of a two-level TLB lookup. */
struct TlbLookupResult
{
    bool hit = false;
    Cycles latency = 0;   //!< extra cycles when served by the sTLB
    TlbEntry entry;
};

/** The dTLB + sTLB pair. */
class TwoLevelTlb
{
  public:
    explicit TwoLevelTlb(const TlbConfig &config);

    /** Look up a translation (updates replacement in levels probed). */
    TlbLookupResult lookup(VirtPage vpn, bool huge);

    /** Presence in either level, without state updates. */
    bool contains(VirtPage vpn, bool huge) const;

    /** Fill both levels after a page-table walk. */
    void insert(const TlbEntry &entry);

    /** invlpg semantics: drop from both levels. */
    void invalidate(VirtPage vpn, bool huge);

    /** Full flush (context switch). */
    void flushAll();

    /** Level accessors for tests and the attack's set mapping. */
    Tlb &l1() { return l1Tlb; }
    Tlb &l2() { return l2Tlb; }
    const Tlb &l1() const { return l1Tlb; }
    const Tlb &l2() const { return l2Tlb; }

    /** Total entries across both levels for 4 KiB pages. */
    std::uint64_t totalEntries() const;

    /** Digest of both levels (snapshot audits). */
    std::uint64_t stateHash() const;

  private:
    Tlb l1Tlb;
    Tlb l2Tlb;
    Cycles l2HitLatency;
};

} // namespace pth

#endif // PTH_TLB_TWO_LEVEL_TLB_HH
