#include "mmu/mmu.hh"

#include "cache/cache_hierarchy.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "mem/physical_memory.hh"

namespace pth
{

Mmu::Mmu(const TlbConfig &tlbConfig, const PscConfig &pscConfig,
         PhysicalMemory &memory, CacheHierarchy &caches, unsigned hart)
    : tlbs(tlbConfig), pscs(pscConfig),
      ptWalker(memory, caches, pscs, hart)
{
}

Mmu::Mmu(const Mmu &other, PhysicalMemory &memory, CacheHierarchy &caches)
    : tlbs(other.tlbs), pscs(other.pscs),
      ptWalker(other.ptWalker, memory, caches, pscs), pmc(other.pmc),
      cr3(other.cr3)
{
}

void
Mmu::setRoot(PhysFrame root)
{
    cr3 = root;
    flushTranslationCaches();
}

void
Mmu::flushTranslationCaches()
{
    tlbs.flushAll();
    pscs.flushAll();
}

void
Mmu::invalidatePage(VirtAddr va)
{
    tlbs.invalidate(va >> kPageShift, false);
    tlbs.invalidate(va >> kSuperPageShift, true);
}

TranslateResult
Mmu::translate(VirtAddr va, Cycles now)
{
    ++pmc.tlbLookups;
    TranslateResult result;

    // Probe the 4 KiB translation, then the 2 MiB one.
    TlbLookupResult hit4k = tlbs.lookup(va >> kPageShift, false);
    if (hit4k.hit) {
        result.ok = true;
        result.latency = hit4k.latency;
        result.pa = (hit4k.entry.pfn << kPageShift) | (va & (kPageBytes - 1));
        return result;
    }
    TlbLookupResult hit2m = tlbs.lookup(va >> kSuperPageShift, true);
    if (hit2m.hit) {
        result.ok = true;
        result.huge = true;
        result.latency = std::max(hit4k.latency, hit2m.latency);
        PhysAddr base = hit2m.entry.pfn << kPageShift;
        result.pa = base + (va & (kSuperPageBytes - 1));
        return result;
    }

    // TLB miss: hardware walk.
    ++pmc.dtlbLoadMissesWalk;
    ++pmc.pageWalks;
    result.causedWalk = true;
    result.latency = hit4k.latency;

    WalkResult walk = ptWalker.walk(cr3, va, now + result.latency);
    result.latency += walk.latency;
    result.walkStartLevel = walk.startLevel;
    result.leafFromDram = walk.leafFromDram;
    if (!walk.ok)
        return result;

    result.ok = true;
    result.huge = walk.huge;
    if (walk.huge) {
        TlbEntry entry{va >> kSuperPageShift, walk.frame, true};
        tlbs.insert(entry);
        PhysAddr base = walk.frame << kPageShift;
        result.pa = base + (va & (kSuperPageBytes - 1));
    } else {
        TlbEntry entry{va >> kPageShift, walk.frame, false};
        tlbs.insert(entry);
        result.pa = (walk.frame << kPageShift) | (va & (kPageBytes - 1));
    }
    return result;
}

std::uint64_t
Mmu::stateHash() const
{
    std::uint64_t h = hashCombine(cr3, tlbs.stateHash());
    h = hashCombine(h, pscs.stateHash());
    h = hashCombine(h, ptWalker.walks(), ptWalker.pdeCacheStarts());
    h = hashCombine(h, pmc.dtlbLoadMissesWalk, pmc.llcMiss);
    return hashCombine(h, pmc.pageWalks, pmc.tlbLookups);
}

} // namespace pth
