/**
 * @file
 * Performance-monitoring counters exposed to the evaluation-only
 * kernel module, mirroring the events the paper programs:
 * dtlb_load_misses.miss_causes_a_walk and longest_lat_cache.miss.
 */

#ifndef PTH_MMU_PERF_COUNTERS_HH
#define PTH_MMU_PERF_COUNTERS_HH

#include <cstdint>

namespace pth
{

/** PMC event identifiers. */
enum class PmcEvent
{
    DtlbLoadMissesWalk,   //!< dtlb_load_misses.miss_causes_a_walk
    LongestLatCacheMiss,  //!< longest_lat_cache.miss (LLC misses)
    PageWalks,            //!< total hardware walks
    TlbLookups,           //!< translation requests
};

/** Simple monotonically increasing counter block. */
struct PerfCounters
{
    std::uint64_t dtlbLoadMissesWalk = 0;
    std::uint64_t llcMiss = 0;
    std::uint64_t pageWalks = 0;
    std::uint64_t tlbLookups = 0;

    /** Read one event. */
    std::uint64_t
    read(PmcEvent event) const
    {
        switch (event) {
          case PmcEvent::DtlbLoadMissesWalk:
            return dtlbLoadMissesWalk;
          case PmcEvent::LongestLatCacheMiss:
            return llcMiss;
          case PmcEvent::PageWalks:
            return pageWalks;
          case PmcEvent::TlbLookups:
            return tlbLookups;
        }
        return 0;
    }
};

} // namespace pth

#endif // PTH_MMU_PERF_COUNTERS_HH
