/**
 * @file
 * Memory-management unit: the Figure-2 translation flow.
 *
 * translate() consults the two-level TLB, then the paging-structure
 * caches via the hardware walker, fetching page-table entries through
 * the data caches and filling TLB + PSCs on the way out.
 */

#ifndef PTH_MMU_MMU_HH
#define PTH_MMU_MMU_HH

#include <cstdint>

#include "common/types.hh"
#include "mmu/perf_counters.hh"
#include "paging/page_table_walker.hh"
#include "paging/paging_structure_cache.hh"
#include "tlb/two_level_tlb.hh"

namespace pth
{

class CacheHierarchy;
class PhysicalMemory;

/** Outcome of one timed address translation. */
struct TranslateResult
{
    bool ok = false;
    PhysAddr pa = 0;           //!< translated physical address
    bool huge = false;
    Cycles latency = 0;        //!< translation-only latency
    bool causedWalk = false;   //!< TLB miss walked the tables
    bool leafFromDram = false; //!< the L1PTE fetch reached DRAM
    unsigned walkStartLevel = 0;  //!< 0 when no walk happened
};

/** The MMU. */
class Mmu
{
  public:
    /** @param hart Hart this MMU serves; its page-table walker fetches
     * PTEs through that hart's private L1. */
    Mmu(const TlbConfig &tlbConfig, const PscConfig &pscConfig,
        PhysicalMemory &memory, CacheHierarchy &caches,
        unsigned hart = 0);

    /** Deep copy rewired to the new machine's memory and caches
     * (Machine snapshot/fork): TLBs, PSCs, walker counters, perf
     * counters and CR3 all carry over. */
    Mmu(const Mmu &other, PhysicalMemory &memory, CacheHierarchy &caches);

    /** Install a new address space root (CR3 write: flushes TLB+PSC). */
    void setRoot(PhysFrame root);

    /** Current CR3 frame. */
    PhysFrame root() const { return cr3; }

    /** Translate va at simulated time now. */
    TranslateResult translate(VirtAddr va, Cycles now);

    /** Privileged invlpg. */
    void invalidatePage(VirtAddr va);

    /** Flush TLB and paging-structure caches (CR3 reload). */
    void flushTranslationCaches();

    /** Structures, exposed for tests and the attack's set mapping. */
    TwoLevelTlb &tlb() { return tlbs; }
    PagingStructureCaches &pagingCaches() { return pscs; }
    PageTableWalker &walker() { return ptWalker; }
    const PerfCounters &counters() const { return pmc; }

    /** Digest of TLBs, PSCs, walker and perf counters, and CR3
     * (snapshot audits). */
    std::uint64_t stateHash() const;

  private:
    TwoLevelTlb tlbs;
    PagingStructureCaches pscs;
    PageTableWalker ptWalker;
    PerfCounters pmc;
    PhysFrame cr3 = 0;
};

} // namespace pth

#endif // PTH_MMU_MMU_HH
