/**
 * @file
 * Timed hardware page-table walker implementing Figure 2 of the paper.
 *
 * On a TLB miss the walker starts from the deepest paging-structure
 * cache hit (PDE cache first, then PDPTE, then PML4E, else CR3) and
 * fetches the remaining entries through the data-cache hierarchy, so a
 * fetch misses to DRAM exactly when the entry's line is in no cache —
 * the implicit DRAM access PThammer weaponizes.
 */

#ifndef PTH_PAGING_PAGE_TABLE_WALKER_HH
#define PTH_PAGING_PAGE_TABLE_WALKER_HH

#include <cstdint>

#include "common/types.hh"
#include "paging/paging_structure_cache.hh"
#include "paging/pte.hh"

namespace pth
{

class CacheHierarchy;
class PhysicalMemory;

/** Outcome of one timed page-table walk. */
struct WalkResult
{
    bool ok = false;        //!< a present leaf mapping was found
    PhysFrame frame = 0;    //!< translated 4 KiB frame
    bool huge = false;      //!< mapped by a 2 MiB PDE
    Cycles latency = 0;     //!< total walk latency
    unsigned fetches = 0;   //!< page-table entry fetches performed
    bool leafFromDram = false;  //!< the leaf PTE fetch went to DRAM
    unsigned startLevel = 4;    //!< deepest PSC hit + 1 (4 = from CR3)
};

/** The walker. */
class PageTableWalker
{
  public:
    /** @param hart Hart whose private L1 the walker's PTE fetches go
     * through (page-table entries are cacheable data on the fetching
     * core). */
    PageTableWalker(PhysicalMemory &memory, CacheHierarchy &caches,
                    PagingStructureCaches &pscs, unsigned hart = 0);

    /** Copy the walk counters (and hart binding) but rewire the
     * structure references to the new machine's copies (Machine
     * snapshot/fork support). */
    PageTableWalker(const PageTableWalker &other, PhysicalMemory &memory,
                    CacheHierarchy &caches, PagingStructureCaches &pscs);

    /**
     * Walk the tables rooted at root for va at simulated time now.
     * Fills the paging-structure caches with the partial translations
     * discovered on the way down.
     */
    WalkResult walk(PhysFrame root, VirtAddr va, Cycles now);

    /** Total walks performed. */
    std::uint64_t walks() const { return nWalks; }

    /** Walks that started from a PDE-cache hit (PThammer's fast path). */
    std::uint64_t pdeCacheStarts() const { return nPdeStarts; }

  private:
    PhysicalMemory &mem;
    CacheHierarchy &caches;
    PagingStructureCaches &psc;
    unsigned hartIndex;
    std::uint64_t nWalks = 0;
    std::uint64_t nPdeStarts = 0;
};

} // namespace pth

#endif // PTH_PAGING_PAGE_TABLE_WALKER_HH
