#include "paging/paging_structure_cache.hh"

#include "common/random.hh"

#include "common/logging.hh"

namespace pth
{

PagingStructureCache::PagingStructureCache(unsigned entries)
    : capacity(entries), slots(entries)
{
    pth_assert(entries >= 1, "PSC needs at least one entry");
}

std::optional<PhysFrame>
PagingStructureCache::lookup(std::uint64_t tag)
{
    for (Slot &slot : slots) {
        if (slot.valid && slot.tag == tag) {
            slot.stamp = ++tick;
            return slot.frame;
        }
    }
    return std::nullopt;
}

bool
PagingStructureCache::contains(std::uint64_t tag) const
{
    for (const Slot &slot : slots)
        if (slot.valid && slot.tag == tag)
            return true;
    return false;
}

void
PagingStructureCache::insert(std::uint64_t tag, PhysFrame frame)
{
    Slot *victim = nullptr;
    for (Slot &slot : slots) {
        if (slot.valid && slot.tag == tag) {
            victim = &slot;
            break;
        }
        if (!slot.valid && !victim)
            victim = &slot;
    }
    if (!victim) {
        victim = &slots[0];
        for (Slot &slot : slots)
            if (slot.stamp < victim->stamp)
                victim = &slot;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->frame = frame;
    victim->stamp = ++tick;
}

void
PagingStructureCache::flushAll()
{
    for (Slot &slot : slots)
        slot.valid = false;
}

unsigned
PagingStructureCache::validEntries() const
{
    unsigned count = 0;
    for (const Slot &slot : slots)
        if (slot.valid)
            ++count;
    return count;
}

PagingStructureCaches::PagingStructureCaches(const PscConfig &config)
    : pml4Cache(config.pml4Entries), pdpteCache(config.pdpteEntries),
      pdeCache(config.pdeEntries)
{
}

std::uint64_t
PagingStructureCaches::tagFor(VirtAddr va, PtLevel level)
{
    switch (level) {
      case PtLevel::Pml4e:
        return va >> 39;
      case PtLevel::Pdpte:
        return va >> 30;
      case PtLevel::Pde:
        return va >> 21;
      default:
        panic("no paging-structure cache for level 1");
    }
}

PagingStructureCache &
PagingStructureCaches::level(PtLevel level)
{
    switch (level) {
      case PtLevel::Pml4e:
        return pml4Cache;
      case PtLevel::Pdpte:
        return pdpteCache;
      case PtLevel::Pde:
        return pdeCache;
      default:
        panic("no paging-structure cache for level 1");
    }
}

const PagingStructureCache &
PagingStructureCaches::level(PtLevel level) const
{
    return const_cast<PagingStructureCaches *>(this)->level(level);
}

void
PagingStructureCaches::flushAll()
{
    pml4Cache.flushAll();
    pdpteCache.flushAll();
    pdeCache.flushAll();
}

std::uint64_t
PagingStructureCache::stateHash() const
{
    std::uint64_t h = hashCombine(0x95c, tick);
    for (const Slot &slot : slots) {
        h = hashCombine(h, slot.valid, slot.tag);
        h = hashCombine(h, slot.frame, slot.stamp);
    }
    return h;
}

std::uint64_t
PagingStructureCaches::stateHash() const
{
    std::uint64_t h = pml4Cache.stateHash();
    return hashCombine(h, pdpteCache.stateHash(), pdeCache.stateHash());
}

} // namespace pth
