/**
 * @file
 * One address space's 4-level x86-64 page tables, stored *in* the
 * simulated physical memory so that DRAM bit flips corrupt translations
 * with no extra plumbing.
 */

#ifndef PTH_PAGING_PAGE_TABLES_HH
#define PTH_PAGING_PAGE_TABLES_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "paging/pte.hh"

namespace pth
{

class PhysicalMemory;

/** Functional (timing-free) walk outcome. */
struct FunctionalTranslation
{
    PhysFrame frame = 0;   //!< 4 KiB frame (or first frame of 2 MiB page)
    bool huge = false;
};

/** Page tables for one process. */
class PageTables
{
  public:
    /**
     * Allocator callback invoked when a new page-table page of the
     * given level is needed; returns the frame to use. This is where
     * the kernel's defense policy (CATT/CTA/...) decides placement.
     */
    using FrameSource = std::function<PhysFrame(PtLevel)>;

    PageTables(PhysicalMemory &memory, FrameSource allocator);

    /**
     * Copy rewired to a new backing store and allocator (Machine
     * snapshot/fork): adopts the original's root and table-frame list
     * without allocating — the table *contents* live in the physical
     * memory, which the machine clone copies wholesale.
     */
    PageTables(const PageTables &other, PhysicalMemory &memory,
               FrameSource allocator);

    /** CR3: frame of the PML4 table. */
    PhysFrame root() const { return rootFrame; }

    /** Map one 4 KiB page. */
    void map4k(VirtAddr va, PhysFrame frame);

    /**
     * Map count consecutive 4 KiB pages, all pointing at the *same*
     * frame (the paper's spraying pattern). Whole L1PT pages filled
     * this way use the compressed constant-pattern representation.
     */
    void mapRange4kSameFrame(VirtAddr vaStart, std::uint64_t count,
                             PhysFrame frame);

    /** Map one 2 MiB superpage (va and frame 2 MiB-aligned). */
    void map2m(VirtAddr va, PhysFrame firstFrame);

    /** Remove a 4 KiB mapping (entry cleared; tables not freed). */
    void unmap4k(VirtAddr va);

    /** Timing-free walk used by the kernel and by test oracles. */
    std::optional<FunctionalTranslation> translate(VirtAddr va) const;

    /**
     * Physical address of the Level-1 PTE that maps va. This is what
     * the paper's evaluation-only kernel module exposes; the attacker
     * never calls it.
     */
    std::optional<PhysAddr> l1pteAddress(VirtAddr va) const;

    /** Frame of the L1 page table covering va, if present. */
    std::optional<PhysFrame> l1ptFrame(VirtAddr va) const;

    /** Every page-table page frame owned by this address space. */
    const std::vector<PhysFrame> &tableFrames() const { return frames; }

  private:
    /** Walk to the table at the given level, allocating as needed. */
    PhysFrame tableFor(VirtAddr va, PtLevel level);

    /** Read the entry for va at level from a given table frame. */
    std::uint64_t readEntry(PhysFrame table, VirtAddr va,
                            PtLevel level) const;
    void writeEntry(PhysFrame table, VirtAddr va, PtLevel level,
                    std::uint64_t entry);

    PhysicalMemory &mem;
    FrameSource alloc;
    PhysFrame rootFrame;
    std::vector<PhysFrame> frames;
};

} // namespace pth

#endif // PTH_PAGING_PAGE_TABLES_HH
