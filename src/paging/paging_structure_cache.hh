/**
 * @file
 * Paging-structure caches (Barr et al., "Translation caching: skip,
 * don't walk"). One small LRU cache per upper page-table level stores
 * partial translations:
 *
 *   PML4E cache : va[47:39] -> PDPT frame
 *   PDPTE cache : va[47:30] -> PD frame
 *   PDE cache   : va[47:21] -> L1PT frame
 *
 * PThammer's fast path needs the walk to *hit* the PDE cache (so only
 * the Level-1 PTE is fetched from memory) — the red path of Figure 2.
 */

#ifndef PTH_PAGING_PAGING_STRUCTURE_CACHE_HH
#define PTH_PAGING_PAGING_STRUCTURE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "paging/pte.hh"

namespace pth
{

/** Sizes of the three paging-structure caches. */
struct PscConfig
{
    unsigned pml4Entries = 16;
    unsigned pdpteEntries = 16;
    unsigned pdeEntries = 32;
};

/** Field-wise equality (campaign snapshot-sharing detection). */
inline bool
operator==(const PscConfig &a, const PscConfig &b)
{
    return a.pml4Entries == b.pml4Entries &&
           a.pdpteEntries == b.pdpteEntries && a.pdeEntries == b.pdeEntries;
}

inline bool
operator!=(const PscConfig &a, const PscConfig &b)
{
    return !(a == b);
}

/** One fully-associative LRU partial-translation cache. */
class PagingStructureCache
{
  public:
    explicit PagingStructureCache(unsigned entries);

    /** Look up a partial translation by its tag. */
    std::optional<PhysFrame> lookup(std::uint64_t tag);

    /** Presence check without LRU update. */
    bool contains(std::uint64_t tag) const;

    /** Insert (evicting the LRU victim when full). */
    void insert(std::uint64_t tag, PhysFrame frame);

    /** Drop everything (CR3 write). */
    void flushAll();

    /** Valid entry count. */
    unsigned validEntries() const;

    /** Digest of every slot, LRU stamps included (snapshot audits). */
    std::uint64_t stateHash() const;

  private:
    struct Slot
    {
        std::uint64_t tag = 0;
        PhysFrame frame = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    unsigned capacity;
    std::uint64_t tick = 0;
    std::vector<Slot> slots;
};

/** The per-level trio, with tag extraction per level. */
class PagingStructureCaches
{
  public:
    explicit PagingStructureCaches(const PscConfig &config);

    /** Tag for a va at the cache of the given upper level. */
    static std::uint64_t tagFor(VirtAddr va, PtLevel level);

    /** The cache caching entries *of* the given level (2, 3 or 4). */
    PagingStructureCache &level(PtLevel level);
    const PagingStructureCache &level(PtLevel level) const;

    /** Flush all three (CR3 write). */
    void flushAll();

    /** Digest of all three caches (snapshot audits). */
    std::uint64_t stateHash() const;

  private:
    PagingStructureCache pml4Cache;
    PagingStructureCache pdpteCache;
    PagingStructureCache pdeCache;
};

} // namespace pth

#endif // PTH_PAGING_PAGING_STRUCTURE_CACHE_HH
