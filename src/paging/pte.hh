/**
 * @file
 * x86-64 page-table entry encoding helpers.
 *
 * Only the fields the simulation needs are modelled: present (bit 0),
 * writable (bit 1), user (bit 2), page-size (bit 7, PDE level) and the
 * physical frame number (bits 12-47). Rowhammer flips land in real PTE
 * bit positions, so a flip in the PFN field redirects a mapping exactly
 * as in the paper's exploit.
 */

#ifndef PTH_PAGING_PTE_HH
#define PTH_PAGING_PTE_HH

#include <cstdint>

#include "common/bitops.hh"
#include "common/types.hh"

namespace pth
{

/** Page-table levels, numbered as in the paper (level 1 holds PTEs). */
enum class PtLevel : unsigned { Pte = 1, Pde = 2, Pdpte = 3, Pml4e = 4 };

inline constexpr std::uint64_t kPtePresent = 1ull << 0;
inline constexpr std::uint64_t kPteWritable = 1ull << 1;
inline constexpr std::uint64_t kPteUser = 1ull << 2;
inline constexpr std::uint64_t kPteHuge = 1ull << 7;

/** First bit of the PFN field. */
inline constexpr unsigned kPteFrameLo = 12;

/** Last bit of the PFN field. */
inline constexpr unsigned kPteFrameHi = 47;

/** Build an entry pointing at a frame. */
constexpr std::uint64_t
makePte(PhysFrame frame, bool user = true, bool writable = true,
        bool huge = false)
{
    std::uint64_t e = kPtePresent | (frame << kPteFrameLo);
    if (user)
        e |= kPteUser;
    if (writable)
        e |= kPteWritable;
    if (huge)
        e |= kPteHuge;
    return e;
}

/** Frame number stored in an entry. */
constexpr PhysFrame
pteFrame(std::uint64_t entry)
{
    return bits(entry, kPteFrameHi, kPteFrameLo);
}

/** Present bit. */
constexpr bool
ptePresent(std::uint64_t entry)
{
    return entry & kPtePresent;
}

/** Page-size bit (2 MiB mapping when set in a PDE). */
constexpr bool
pteHuge(std::uint64_t entry)
{
    return entry & kPteHuge;
}

/** Index of va into the table at the given level (9 bits per level). */
constexpr std::uint64_t
pteIndex(VirtAddr va, PtLevel level)
{
    unsigned shift = 12 + 9 * (static_cast<unsigned>(level) - 1);
    return (va >> shift) & 0x1ff;
}

} // namespace pth

#endif // PTH_PAGING_PTE_HH
