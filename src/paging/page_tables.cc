#include "paging/page_tables.hh"

#include "common/logging.hh"
#include "mem/physical_memory.hh"

namespace pth
{

PageTables::PageTables(PhysicalMemory &memory, FrameSource allocator)
    : mem(memory), alloc(std::move(allocator))
{
    rootFrame = alloc(PtLevel::Pml4e);
    frames.push_back(rootFrame);
    mem.fillFramePattern(rootFrame, 0);
}

PageTables::PageTables(const PageTables &other, PhysicalMemory &memory,
                       FrameSource allocator)
    : mem(memory), alloc(std::move(allocator)), rootFrame(other.rootFrame),
      frames(other.frames)
{
}

std::uint64_t
PageTables::readEntry(PhysFrame table, VirtAddr va, PtLevel level) const
{
    PhysAddr ea = (table << kPageShift) + pteIndex(va, level) * kPteBytes;
    return mem.read64(ea);
}

void
PageTables::writeEntry(PhysFrame table, VirtAddr va, PtLevel level,
                       std::uint64_t entry)
{
    PhysAddr ea = (table << kPageShift) + pteIndex(va, level) * kPteBytes;
    mem.write64(ea, entry);
}

PhysFrame
PageTables::tableFor(VirtAddr va, PtLevel target)
{
    PhysFrame table = rootFrame;
    for (unsigned level = 4; level > static_cast<unsigned>(target);
         --level) {
        PtLevel lv = static_cast<PtLevel>(level);
        std::uint64_t entry = readEntry(table, va, lv);
        if (!ptePresent(entry)) {
            // Allocate the next-level table.
            PtLevel childLevel = static_cast<PtLevel>(level - 1);
            PhysFrame child = alloc(childLevel);
            frames.push_back(child);
            mem.fillFramePattern(child, 0);
            writeEntry(table, va, lv, makePte(child));
            table = child;
        } else {
            pth_assert(!pteHuge(entry),
                       "walking through an existing huge mapping");
            table = pteFrame(entry);
        }
    }
    return table;
}

void
PageTables::map4k(VirtAddr va, PhysFrame frame)
{
    PhysFrame l1pt = tableFor(va, PtLevel::Pte);
    writeEntry(l1pt, va, PtLevel::Pte, makePte(frame));
}

void
PageTables::mapRange4kSameFrame(VirtAddr vaStart, std::uint64_t count,
                                PhysFrame frame)
{
    pth_assert((vaStart & (kPageBytes - 1)) == 0, "unaligned spray start");
    std::uint64_t pte = makePte(frame);
    std::uint64_t done = 0;
    while (done < count) {
        VirtAddr va = vaStart + done * kPageBytes;
        PhysFrame l1pt = tableFor(va, PtLevel::Pte);
        std::uint64_t idx = pteIndex(va, PtLevel::Pte);
        std::uint64_t inThisTable =
            std::min<std::uint64_t>(kPtesPerPage - idx, count - done);
        if (idx == 0 && inThisTable == kPtesPerPage) {
            // A whole L1PT page with identical entries: use the
            // compressed pattern representation.
            mem.fillFramePattern(l1pt, pte);
        } else {
            for (std::uint64_t i = 0; i < inThisTable; ++i)
                writeEntry(l1pt, va + i * kPageBytes, PtLevel::Pte, pte);
        }
        done += inThisTable;
    }
}

void
PageTables::map2m(VirtAddr va, PhysFrame firstFrame)
{
    pth_assert((va & (kSuperPageBytes - 1)) == 0, "unaligned 2 MiB va");
    pth_assert((firstFrame & 0x1ff) == 0, "unaligned 2 MiB frame");
    PhysFrame pd = tableFor(va, PtLevel::Pde);
    writeEntry(pd, va, PtLevel::Pde,
               makePte(firstFrame, true, true, true));
}

void
PageTables::unmap4k(VirtAddr va)
{
    auto l1pt = l1ptFrame(va);
    if (l1pt)
        writeEntry(*l1pt, va, PtLevel::Pte, 0);
}

std::optional<FunctionalTranslation>
PageTables::translate(VirtAddr va) const
{
    PhysFrame table = rootFrame;
    for (unsigned level = 4; level >= 1; --level) {
        PtLevel lv = static_cast<PtLevel>(level);
        std::uint64_t entry = readEntry(table, va, lv);
        // A rowhammer flip can set PFN bits beyond the installed
        // memory; such accesses hit a hole in the physical map and
        // fault, which the attacker observes as a lost mapping.
        if (!ptePresent(entry) || pteFrame(entry) >= mem.frames())
            return std::nullopt;
        if (level == 2 && pteHuge(entry)) {
            FunctionalTranslation t;
            t.frame = (pteFrame(entry) + ((va >> kPageShift) & 0x1ff)) %
                      mem.frames();
            t.huge = true;
            return t;
        }
        if (level == 1) {
            FunctionalTranslation t;
            t.frame = pteFrame(entry);
            return t;
        }
        table = pteFrame(entry);
    }
    return std::nullopt;
}

std::optional<PhysAddr>
PageTables::l1pteAddress(VirtAddr va) const
{
    auto l1pt = l1ptFrame(va);
    if (!l1pt)
        return std::nullopt;
    return (*l1pt << kPageShift) + pteIndex(va, PtLevel::Pte) * kPteBytes;
}

std::optional<PhysFrame>
PageTables::l1ptFrame(VirtAddr va) const
{
    PhysFrame table = rootFrame;
    for (unsigned level = 4; level >= 2; --level) {
        PtLevel lv = static_cast<PtLevel>(level);
        std::uint64_t entry = readEntry(table, va, lv);
        if (!ptePresent(entry) || (level == 2 && pteHuge(entry)) ||
            pteFrame(entry) >= mem.frames())
            return std::nullopt;
        table = pteFrame(entry);
    }
    return table;
}

} // namespace pth
