#include "paging/page_table_walker.hh"

#include "cache/cache_hierarchy.hh"
#include "common/logging.hh"
#include "mem/physical_memory.hh"

namespace pth
{

PageTableWalker::PageTableWalker(PhysicalMemory &memory,
                                 CacheHierarchy &caches_,
                                 PagingStructureCaches &pscs,
                                 unsigned hart)
    : mem(memory), caches(caches_), psc(pscs), hartIndex(hart)
{
}

PageTableWalker::PageTableWalker(const PageTableWalker &other,
                                 PhysicalMemory &memory,
                                 CacheHierarchy &caches_,
                                 PagingStructureCaches &pscs)
    : mem(memory), caches(caches_), psc(pscs),
      hartIndex(other.hartIndex), nWalks(other.nWalks),
      nPdeStarts(other.nPdeStarts)
{
}

WalkResult
PageTableWalker::walk(PhysFrame root, VirtAddr va, Cycles now)
{
    ++nWalks;
    WalkResult result;

    // Find the deepest partial translation: try the PDE cache (which
    // skips straight to the Level-1 PTE fetch), then up the hierarchy.
    PhysFrame table = root;
    unsigned level = 4;
    for (PtLevel cached : {PtLevel::Pde, PtLevel::Pdpte, PtLevel::Pml4e}) {
        if (auto frame = psc.level(cached).lookup(
                PagingStructureCaches::tagFor(va, cached))) {
            table = *frame;
            level = static_cast<unsigned>(cached) - 1;
            break;
        }
    }
    result.startLevel = level;
    if (level == 1)
        ++nPdeStarts;

    // Walk the remaining levels, fetching each entry through the data
    // caches (page-table entries are cacheable data on x86).
    while (true) {
        PtLevel lv = static_cast<PtLevel>(level);
        PhysAddr entryAddr =
            (table << kPageShift) + pteIndex(va, lv) * kPteBytes;
        MemAccessResult fetch =
            caches.access(entryAddr, now + result.latency, hartIndex);
        result.latency += fetch.latency;
        ++result.fetches;

        std::uint64_t entry = mem.read64(entryAddr);
        if (level == 1)
            result.leafFromDram = fetch.fromDram();

        if (!ptePresent(entry) || pteFrame(entry) >= mem.frames())
            return result;  // fault: ok stays false

        if (level == 2 && pteHuge(entry)) {
            result.ok = true;
            result.frame = pteFrame(entry) % mem.frames();
            result.huge = true;
            return result;
        }

        if (level == 1) {
            result.ok = true;
            result.frame = pteFrame(entry);
            return result;
        }

        // Interior entry: descend and cache the partial translation.
        PhysFrame child = pteFrame(entry);
        psc.level(lv).insert(PagingStructureCaches::tagFor(va, lv), child);
        table = child;
        --level;
    }
}

} // namespace pth
