/**
 * @file
 * Lightweight statistics: scalar counters, running averages and
 * fixed-bucket histograms used by experiment harnesses.
 */

#ifndef PTH_COMMON_STATS_HH
#define PTH_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pth
{

/** Running mean / min / max / count over double samples. */
class RunningStat
{
  public:
    /** Record one sample. */
    void sample(double value);

    /** Number of samples recorded. */
    std::uint64_t count() const { return n; }

    /** Mean of the samples (0 when empty). */
    double mean() const;

    /** Smallest sample (0 when empty). */
    double min() const { return n ? lo : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return n ? hi : 0.0; }

    /** Sum of all samples. */
    double total() const { return sum; }

    /**
     * Fold another stat in, as if its samples had been recorded here
     * after this one's. Lets independently collected statistics (e.g.
     * per-shard campaign results) combine into one.
     */
    void merge(const RunningStat &other);

    /** Forget all samples. */
    void reset();

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Equal-width bucket histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo_ Inclusive lower bound of the tracked range.
     * @param hi_ Exclusive upper bound of the tracked range.
     * @param buckets_ Number of equal-width buckets.
     */
    Histogram(double lo_, double hi_, unsigned buckets_);

    /** Record one sample; out-of-range samples land in edge buckets. */
    void sample(double value);

    /** Count in bucket i. */
    std::uint64_t bucketCount(unsigned i) const { return counts.at(i); }

    /** Inclusive lower edge of bucket i. */
    double bucketLo(unsigned i) const;

    /** Number of buckets. */
    unsigned buckets() const { return static_cast<unsigned>(counts.size()); }

    /** Total samples. */
    std::uint64_t total() const { return n; }

    /** Fraction of samples strictly below value. */
    double fractionBelow(double value) const;

    /** Quantile q in [0,1] via bucket interpolation. */
    double quantile(double q) const;

  private:
    double lo;
    double hi;
    double width;
    std::uint64_t n = 0;
    std::vector<std::uint64_t> counts;
    std::vector<double> raw;
};

/** Median of a sample vector (by copy; empty vectors return 0). */
double median(std::vector<double> samples);

} // namespace pth

#endif // PTH_COMMON_STATS_HH
