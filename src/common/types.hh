/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef PTH_COMMON_TYPES_HH
#define PTH_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace pth
{

/** A simulated physical byte address. */
using PhysAddr = std::uint64_t;

/** A simulated virtual byte address. */
using VirtAddr = std::uint64_t;

/** A simulated physical frame number (PhysAddr >> 12). */
using PhysFrame = std::uint64_t;

/** A simulated virtual page number (VirtAddr >> 12 for 4 KiB pages). */
using VirtPage = std::uint64_t;

/** Simulated processor cycles. */
using Cycles = std::uint64_t;

/** Bytes per page (regular 4 KiB pages). */
inline constexpr std::uint64_t kPageBytes = 4096;

/** log2 of kPageBytes. */
inline constexpr unsigned kPageShift = 12;

/** Bytes per superpage (2 MiB). */
inline constexpr std::uint64_t kSuperPageBytes = 2ull * 1024 * 1024;

/** log2 of kSuperPageBytes. */
inline constexpr unsigned kSuperPageShift = 21;

/** Bytes per cache line. */
inline constexpr std::uint64_t kLineBytes = 64;

/** log2 of kLineBytes. */
inline constexpr unsigned kLineShift = 6;

/** Page-table entries per page-table page (x86-64). */
inline constexpr std::uint64_t kPtesPerPage = 512;

/** Invalid frame sentinel. */
inline constexpr PhysFrame kInvalidFrame = ~0ull;

/** Size of a page-table entry in bytes. */
inline constexpr std::uint64_t kPteBytes = 8;

} // namespace pth

#endif // PTH_COMMON_TYPES_HH
