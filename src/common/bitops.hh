/**
 * @file
 * Bit-manipulation helpers used by address mappings and hash functions.
 */

#ifndef PTH_COMMON_BITOPS_HH
#define PTH_COMMON_BITOPS_HH

#include <cstdint>

namespace pth
{

/** Extract bits [lo, hi] (inclusive) of value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & ((hi - lo == 63) ? ~0ull
                                            : ((1ull << (hi - lo + 1)) - 1));
}

/** Extract a single bit. */
constexpr std::uint64_t
bit(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/** Insert bits [lo, hi] of value into base (bits cleared first). */
constexpr std::uint64_t
insertBits(std::uint64_t base, unsigned hi, unsigned lo, std::uint64_t value)
{
    const std::uint64_t mask = ((hi - lo == 63) ? ~0ull
                                                : ((1ull << (hi - lo + 1)) -
                                                   1))
                               << lo;
    return (base & ~mask) | ((value << lo) & mask);
}

/** Parity (XOR reduction) of value & mask. */
constexpr unsigned
maskedParity(std::uint64_t value, std::uint64_t mask)
{
    return __builtin_parityll(value & mask);
}

/** True when value is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t value)
{
    return value && !(value & (value - 1));
}

/** Integer log2 (value must be a power of two). */
constexpr unsigned
log2i(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(__builtin_clzll(value));
}

} // namespace pth

#endif // PTH_COMMON_BITOPS_HH
