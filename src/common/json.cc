#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/table.hh"

namespace pth
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (u < 0x20) {
            out += strfmt("\\u%04x", u);
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string
jsonDouble(double value)
{
    // JSON has no non-finite numbers; quote them so the journal line
    // stays parseable (readers strtod the string back).
    if (std::isnan(value))
        return "\"nan\"";
    if (std::isinf(value))
        return value > 0 ? "\"inf\"" : "\"-inf\"";
    return strfmt("%.17g", value);
}

bool
JsonValue::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? boolean_ : fallback;
}

double
JsonValue::asDouble(double fallback) const
{
    if (kind_ != Kind::Number)
        return fallback;
    return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t
JsonValue::asU64(std::uint64_t fallback) const
{
    if (kind_ != Kind::Number || scalar_.empty() || scalar_[0] == '-')
        return fallback;
    if (scalar_.find_first_of(".eE") != std::string::npos)
        return fallback;
    return std::strtoull(scalar_.c_str(), nullptr, 10);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

/** Recursive-descent parser over the writer's dialect. */
class JsonParser
{
  public:
    JsonParser(const std::string &text) : s(text) {}

    bool
    parseDocument(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        return pos == s.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = 0;
        while (word[n])
            ++n;
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos >= s.size())
            return false;
        // Containers recurse; bound the depth so a hostile or mangled
        // document ("[[[[...") is rejected instead of overflowing the
        // stack. The writer's dialect nests three levels deep.
        switch (s[pos]) {
        case '{':
        case '[': {
            if (++depth > kMaxDepth)
                return false;
            const bool ok = s[pos] == '{' ? parseObject(out)
                                          : parseArray(out);
            --depth;
            return ok;
        }
        case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.scalar_);
        case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.boolean_ = true;
            return literal("true");
        case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.boolean_ = false;
            return literal("false");
        case 'n':
            out.kind_ = JsonValue::Kind::Null;
            return literal("null");
        default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind_ = JsonValue::Kind::Object;
        ++pos; // '{'
        skipSpace();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string key;
            if (pos >= s.size() || s[pos] != '"' || !parseString(key))
                return false;
            skipSpace();
            if (pos >= s.size() || s[pos] != ':')
                return false;
            ++pos;
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.members_.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind_ = JsonValue::Kind::Array;
        ++pos; // '['
        skipSpace();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.items_.push_back(std::move(value));
            skipSpace();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos; // opening quote
        out.clear();
        while (pos < s.size()) {
            char c = s[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= s.size())
                return false;
            char esc = s[pos++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos + 4 > s.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // The writer only emits \u for control characters;
                // encode anything else as UTF-8 for robustness.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default: return false;
            }
        }
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return false;
        // Validate by reparsing the token with strtod.
        std::string token = s.substr(start, pos - start);
        char *end = nullptr;
        std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return false;
        out.kind_ = JsonValue::Kind::Number;
        out.scalar_ = std::move(token);
        return true;
    }

    /** Far above anything the repo writes, far below stack limits. */
    static constexpr std::size_t kMaxDepth = 64;

    const std::string &s;
    std::size_t pos = 0;
    std::size_t depth = 0;
};

bool
JsonValue::parse(const std::string &text, JsonValue &out)
{
    JsonValue value;
    JsonParser parser(text);
    if (!parser.parseDocument(value))
        return false;
    out = std::move(value);
    return true;
}

} // namespace pth
