/**
 * @file
 * Fixed-size worker pool used by the campaign runner to fan
 * independent simulations out across host cores.
 *
 * Tasks are submitted as callables and their results (or exceptions)
 * come back through std::future, so a worker that throws propagates
 * the error to whoever joins the campaign instead of killing the
 * process. Shutdown drains the queue: every task submitted before
 * shutdown() (or destruction) runs to completion — which is also why
 * a checkpointing campaign may journal a few more runs than its
 * caller ever sees when it aborts early (rethrow): those runs are
 * not lost, a resume picks them up.
 *
 * Lives in common/ (not harness/): the attack layer's parallel
 * eviction-pool extraction uses it too, and the subsystem include DAG
 * (tools/lint/layering_lint.py) forbids attack → harness includes.
 *
 * Lock discipline (enforced by -DPTH_THREAD_SAFETY=ON): the task
 * queue and the stopping flag are guarded by mtx; the workers vector
 * and the thread count are owner-thread state — the constructing
 * thread alone spawns, joins and clears workers, worker threads never
 * touch them. Concurrent submit()/shutdown() from other threads is
 * supported; concurrent shutdown()/shutdown() is the owner's job to
 * avoid, like concurrent destruction.
 */

#ifndef PTH_COMMON_THREAD_POOL_HH
#define PTH_COMMON_THREAD_POOL_HH

#include <deque>
#include <functional>
#include <future>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/sync.hh"

namespace pth
{

/** Fixed pool of worker threads with a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 picks the hardware concurrency
     *        (at least 1).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue and joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Number of worker threads. Immutable after construction, so it
     * is safe to call from any thread at any time — including
     * concurrently with shutdown(), which mutates the workers vector
     * (the previous implementation read workers.size() here and
     * raced exactly that).
     */
    unsigned threadCount() const { return threadCount_; }

    /**
     * Enqueue a callable; its return value or thrown exception is
     * delivered through the returned future.
     *
     * @throws std::runtime_error when called after shutdown().
     */
    template <class F>
    auto submit(F f) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(f));
        std::future<R> result = task->get_future();
        {
            MutexLock lock(mtx);
            if (stopping)
                throw std::runtime_error(
                    "ThreadPool::submit after shutdown");
            queue.emplace_back([task] { (*task)(); });
        }
        cv.notifyOne();
        return result;
    }

    /**
     * Run every already-queued task, then join the workers.
     * Idempotent; called by the destructor. Owner-thread only (like
     * destruction): two concurrent shutdown() calls would race on the
     * join.
     */
    void shutdown();

  private:
    /** Worker loop: pop and run tasks until told to stop. */
    void workerLoop();

    /** 0 -> hardware concurrency, at least 1. */
    static unsigned resolveThreadCount(unsigned threads);

    const unsigned threadCount_;
    std::vector<std::thread> workers; // owner thread only, see above
    Mutex mtx;
    CondVar cv;
    std::deque<std::function<void()>> queue PTH_GUARDED_BY(mtx);
    bool stopping PTH_GUARDED_BY(mtx) = false;
};

} // namespace pth

#endif // PTH_COMMON_THREAD_POOL_HH
