/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * same rows the paper's tables and figures report.
 */

#ifndef PTH_COMMON_TABLE_HH
#define PTH_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace pth
{

/** Column-aligned ASCII table. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Render the whole table. */
    std::string render() const;

    /** Render and print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace pth

#endif // PTH_COMMON_TABLE_HH
