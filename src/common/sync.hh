/**
 * @file
 * Capability-annotated synchronization primitives.
 *
 * Thin zero-cost wrappers over std::mutex / std::condition_variable
 * carrying the Clang Thread Safety attributes libstdc++'s own types
 * lack (see common/thread_annotations.hh). Every mutex in the tree
 * must be a pth::Mutex and every scoped lock a pth::MutexLock —
 * tools/lint/lock_audit.py rejects raw std primitives — so that
 * -DPTH_THREAD_SAFETY=ON can prove, at compile time and on every
 * path, that no guarded member is ever touched unlocked.
 *
 * CondVar deliberately offers only the un-predicated wait(Mutex&):
 * a predicate lambda would be analyzed as a separate unannotated
 * function and every guarded member it reads would warn. Callers
 * write the standard `while (!cond) cv.wait(mtx);` loop instead,
 * which the analysis sees through (the loop body runs with the lock
 * held), and which is wakeup-spurious-safe by construction.
 */

#ifndef PTH_COMMON_SYNC_HH
#define PTH_COMMON_SYNC_HH

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace pth
{

class CondVar;

/** A std::mutex the thread-safety analysis understands. */
class PTH_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() PTH_ACQUIRE() { m_.lock(); }
    void unlock() PTH_RELEASE() { m_.unlock(); }
    bool tryLock() PTH_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/** RAII scoped lock over pth::Mutex (the annotated lock_guard). */
class PTH_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) PTH_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() PTH_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable waiting on a pth::Mutex the caller already
 * holds. Backed by std::condition_variable (not the heavier
 * condition_variable_any): wait() adopts the held mutex into a
 * unique_lock for the duration of the wait and releases the adoption
 * before returning, so ownership stays with the caller's scoped lock
 * exactly as the analysis believes it does.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Block until notified (or spuriously woken); the mutex is
     * released while blocked and re-held on return. */
    void wait(Mutex &mutex) PTH_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> lock(mutex.m_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    void notifyOne() noexcept { cv_.notify_one(); }
    void notifyAll() noexcept { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace pth

#endif // PTH_COMMON_SYNC_HH
