/**
 * @file
 * gem5-style status and error reporting.
 *
 * fatal() terminates on user error (bad configuration); panic()
 * terminates on internal simulator bugs; inform()/warn() report status
 * without stopping the simulation.
 */

#ifndef PTH_COMMON_LOGGING_HH
#define PTH_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pth
{

/** Print an informational message to stderr ("info: ..."). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr ("warn: ..."). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of a user-level error (bad configuration or
 * arguments). Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of an internal simulator bug. Calls abort() so a
 * core dump or debugger can inspect the failure.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds. */
#define pth_assert(cond, fmt, ...)                                       \
    do {                                                                 \
        if (!(cond))                                                     \
            ::pth::panic("assertion '%s' failed at %s:%d: " fmt, #cond,  \
                         __FILE__, __LINE__, ##__VA_ARGS__);             \
    } while (0)

} // namespace pth

#endif // PTH_COMMON_LOGGING_HH
