/**
 * @file
 * Minimal JSON support for the harness's persistent artifacts: the
 * escaping/formatting helpers the campaign report writer uses, and a
 * small strict parser for reading campaign reports and result-store
 * journals back in.
 *
 * This is deliberately not a general-purpose JSON library: it parses
 * exactly the dialect the repo writes (objects, arrays, strings,
 * numbers, booleans, null; ASCII with \uXXXX escapes). Numbers keep
 * their source token so 64-bit integers (seeds, flip counts) round-trip
 * without passing through a double, and doubles written with
 * jsonDouble() reparse to the identical bit pattern.
 */

#ifndef PTH_COMMON_JSON_HH
#define PTH_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pth
{

/**
 * Escape a string for inclusion in a JSON string literal: quotes,
 * backslashes and control characters (the latter as \uXXXX).
 */
std::string jsonEscape(const std::string &s);

/**
 * Format a double with enough digits (%.17g) that parsing the token
 * back with strtod recovers the exact bit pattern — the property the
 * resume bit-identity guarantee rests on. Non-finite values, which
 * JSON cannot represent as numbers, are emitted as the strings
 * "nan"/"inf"/"-inf"; journal readers strtod them back.
 */
std::string jsonDouble(double value);

/** One parsed JSON value; object members keep insertion order. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool isNumber() const { return kind_ == Kind::Number; }

    /** Boolean value; fallback when this is not a Bool. */
    bool asBool(bool fallback = false) const;

    /** Number as double; fallback when this is not a Number. */
    double asDouble(double fallback = 0.0) const;

    /**
     * Number as a 64-bit unsigned integer, parsed from the source
     * token so values above 2^53 survive; fallback when this is not
     * an integral Number.
     */
    std::uint64_t asU64(std::uint64_t fallback = 0) const;

    /** String value (empty when this is not a String). */
    const std::string &asString() const { return scalar_; }

    /** Array elements (empty unless this is an Array). */
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object members in insertion order (empty unless an Object). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** First object member named key, or nullptr. */
    const JsonValue *find(const std::string &key) const;

    /**
     * Parse text as exactly one JSON value (surrounding whitespace
     * allowed, trailing garbage rejected). Returns false on any
     * syntax error, leaving out untouched — the result-store treats
     * that as a corrupt journal line and skips it.
     */
    static bool parse(const std::string &text, JsonValue &out);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool boolean_ = false;
    std::string scalar_;  //!< number token or decoded string value
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace pth

#endif // PTH_COMMON_JSON_HH
