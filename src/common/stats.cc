#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pth
{

void
RunningStat::sample(double value)
{
    if (n == 0) {
        lo = value;
        hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    sum += value;
    ++n;
}

double
RunningStat::mean() const
{
    return n ? sum / static_cast<double>(n) : 0.0;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    sum += other.sum;
    n += other.n;
}

void
RunningStat::reset()
{
    n = 0;
    sum = 0.0;
    lo = 0.0;
    hi = 0.0;
}

Histogram::Histogram(double lo_, double hi_, unsigned buckets_)
    : lo(lo_), hi(hi_), width((hi_ - lo_) / buckets_), counts(buckets_, 0)
{
    pth_assert(hi_ > lo_ && buckets_ > 0, "bad histogram bounds");
}

void
Histogram::sample(double value)
{
    double idx = (value - lo) / width;
    long i = static_cast<long>(std::floor(idx));
    i = std::clamp<long>(i, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(i)];
    ++n;
    raw.push_back(value);
}

double
Histogram::bucketLo(unsigned i) const
{
    return lo + width * i;
}

double
Histogram::fractionBelow(double value) const
{
    if (!n)
        return 0.0;
    std::uint64_t below = 0;
    for (double v : raw)
        if (v < value)
            ++below;
    return static_cast<double>(below) / static_cast<double>(n);
}

double
Histogram::quantile(double q) const
{
    if (raw.empty())
        return 0.0;
    std::vector<double> sorted(raw);
    std::sort(sorted.begin(), sorted.end());
    double pos = q * static_cast<double>(sorted.size() - 1);
    std::size_t base = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(base);
    if (base + 1 >= sorted.size())
        return sorted.back();
    return sorted[base] * (1.0 - frac) + sorted[base + 1] * frac;
}

double
median(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::size_t mid = samples.size() / 2;
    std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
    double hi = samples[mid];
    if (samples.size() % 2)
        return hi;
    std::nth_element(samples.begin(), samples.begin() + mid - 1,
                     samples.end());
    return 0.5 * (hi + samples[mid - 1]);
}

} // namespace pth
