#include "common/table.hh"

#include <cstdarg>
#include <cstdio>

#include "common/logging.hh"

namespace pth
{

Table::Table(std::vector<std::string> headers_) : headers(std::move(headers_))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    pth_assert(row.size() == headers.size(), "table row width mismatch");
    rows.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers.size(), 0);
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string out = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += " " + row[c];
            out.append(widths[c] - row[c].size(), ' ');
            out += " |";
        }
        return out + "\n";
    };

    std::string sep = "+";
    for (std::size_t c = 0; c < headers.size(); ++c) {
        sep.append(widths[c] + 2, '-');
        sep += "+";
    }
    sep += "\n";

    std::string out = sep + renderRow(headers) + sep;
    for (const auto &row : rows)
        out += renderRow(row);
    out += sep;
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
strfmt(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

} // namespace pth
