/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulation (weak-cell placement,
 * replacement tie-breaks, allocation jitter) draws from seeded
 * generators so that experiments replay bit-identically.
 */

#ifndef PTH_COMMON_RANDOM_HH
#define PTH_COMMON_RANDOM_HH

#include <cstdint>

namespace pth
{

/** Finalizer from SplitMix64; a high-quality 64-bit mixing function. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine a seed with up to three stream identifiers. */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
            std::uint64_t c = 0)
{
    return mix64(mix64(mix64(seed ^ a) + b) + c);
}

/**
 * Small fast xoshiro-style generator (xorshift128+). Deterministic and
 * cheap enough to sit on the simulator's hot paths.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        s0 = mix64(seed);
        s1 = mix64(s0);
        if (!s0 && !s1)
            s1 = 1;
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0;
        const std::uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Uniform draw in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform draw in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

    /**
     * Digest of the generator position. Two generators with equal
     * hashes produce the same draw sequence, so any consumer folding
     * this into a state fingerprint pins its future randomness
     * (Machine snapshot audits).
     */
    std::uint64_t
    stateHash() const
    {
        return hashCombine(0x96e9, s0, s1);
    }

  private:
    std::uint64_t s0;
    std::uint64_t s1;
};

} // namespace pth

#endif // PTH_COMMON_RANDOM_HH
