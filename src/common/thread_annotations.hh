/**
 * @file
 * Portable Clang Thread Safety Analysis attribute macros.
 *
 * Clang's -Wthread-safety proves lock discipline at compile time:
 * every access to a PTH_GUARDED_BY member is checked against the set
 * of capabilities (mutexes) held on every path, so an unlocked read
 * in a code path no test exercises is a build error, not a latent
 * race TSan may or may not interleave into. The macros compile away
 * on every other compiler (gcc builds them as empty), so annotating
 * costs nothing off-clang.
 *
 * The analysis only understands types that carry the capability
 * attributes. libstdc++'s std::mutex / std::lock_guard carry none, so
 * annotating members with a raw std::mutex as the capability is a
 * no-op at best and an attribute error at worst — use the annotated
 * wrappers in common/sync.hh (pth::Mutex, pth::MutexLock,
 * pth::CondVar) instead; tools/lint/lock_audit.py enforces this.
 *
 * Build gate: -DPTH_THREAD_SAFETY=ON (clang only) compiles with
 * -Werror=thread-safety -Wthread-safety-beta; the CI `thread-safety`
 * job runs it on every PR. See docs/STATIC_ANALYSIS.md.
 */

#ifndef PTH_COMMON_THREAD_ANNOTATIONS_HH
#define PTH_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PTH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PTH_THREAD_ANNOTATION
#define PTH_THREAD_ANNOTATION(x)
#endif

/** Type attribute: this class is a lockable capability. */
#define PTH_CAPABILITY(x) PTH_THREAD_ANNOTATION(capability(x))

/** Type attribute: RAII object acquiring on construction, releasing
 * on destruction (pth::MutexLock). */
#define PTH_SCOPED_CAPABILITY PTH_THREAD_ANNOTATION(scoped_lockable)

/** Member attribute: reads/writes require holding the capability. */
#define PTH_GUARDED_BY(x) PTH_THREAD_ANNOTATION(guarded_by(x))

/** Member attribute: the pointed-to data requires the capability. */
#define PTH_PT_GUARDED_BY(x) PTH_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function attribute: acquires the capability (not released on
 * return). */
#define PTH_ACQUIRE(...) \
    PTH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function attribute: releases the capability. */
#define PTH_RELEASE(...) \
    PTH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function attribute: acquires the capability when returning the
 * given value (try_lock). */
#define PTH_TRY_ACQUIRE(...) \
    PTH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function attribute: the caller must hold the capability. */
#define PTH_REQUIRES(...) \
    PTH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function attribute: the caller must NOT hold the capability
 * (deadlock prevention on non-recursive mutexes). */
#define PTH_EXCLUDES(...) \
    PTH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function attribute: asserts the capability is held (runtime
 * check the analysis trusts). */
#define PTH_ASSERT_CAPABILITY(x) \
    PTH_THREAD_ANNOTATION(assert_capability(x))

/** Function attribute: returns a reference to the given capability. */
#define PTH_RETURN_CAPABILITY(x) \
    PTH_THREAD_ANNOTATION(lock_returned(x))

/**
 * Function attribute: opt this function out of the analysis. The
 * escape hatch of last resort — every use must carry a comment saying
 * why the discipline cannot be expressed, the same rule as tsan.supp
 * entries and `// determinism:` annotations.
 */
#define PTH_NO_THREAD_SAFETY_ANALYSIS \
    PTH_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // PTH_COMMON_THREAD_ANNOTATIONS_HH
