#include "common/thread_pool.hh"

#include <algorithm>

namespace pth
{

unsigned
ThreadPool::resolveThreadCount(unsigned threads)
{
    if (threads == 0)
        return std::max(1u, std::thread::hardware_concurrency());
    return threads;
}

ThreadPool::ThreadPool(unsigned threads)
    : threadCount_(resolveThreadCount(threads))
{
    workers.reserve(threadCount_);
    for (unsigned i = 0; i < threadCount_; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        MutexLock lock(mtx);
        if (stopping)
            return;
        stopping = true;
    }
    cv.notifyAll();
    for (std::thread &worker : workers)
        worker.join();
    workers.clear();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mtx);
            while (!stopping && queue.empty())
                cv.wait(mtx);
            if (queue.empty())
                return;  // stopping, and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();  // packaged_task captures any exception in its future
    }
}

} // namespace pth
