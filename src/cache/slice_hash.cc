#include "cache/slice_hash.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace pth
{

namespace
{

// Published parity functions (Maurice et al.). o0/o1/o2 are the three
// base functions; CPUs with 2 slices use o0, 4 slices use {o0, o1},
// 8 slices use {o0, o1, o2}.
constexpr std::uint64_t kMaskO0 = 0x1b5f575440ull;
constexpr std::uint64_t kMaskO1 = 0x2eb5faa880ull;
constexpr std::uint64_t kMaskO2 = 0x3cccc93100ull;

} // namespace

SliceHash::SliceHash(unsigned slices) : nSlices(slices)
{
    pth_assert(isPow2(slices) && slices <= 8,
               "slice count must be 1, 2, 4 or 8");
    if (slices >= 2)
        bitMasks.push_back(kMaskO0);
    if (slices >= 4)
        bitMasks.push_back(kMaskO1);
    if (slices >= 8)
        bitMasks.push_back(kMaskO2);
}

unsigned
SliceHash::slice(PhysAddr pa) const
{
    unsigned s = 0;
    for (std::size_t b = 0; b < bitMasks.size(); ++b)
        s |= maskedParity(pa, bitMasks[b]) << b;
    return s;
}

} // namespace pth
