#include "cache/cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace pth
{

Cache::Cache(const CacheConfig &config, std::string name)
    : cfg(config), label(std::move(name)), hash(config.slices),
      lines(config.sets * config.slices * config.ways),
      policy(ReplacementPolicy::create(config.replacement,
                                       config.sets * config.slices,
                                       config.ways,
                                       mix64(config.sets + config.ways)))
{
    pth_assert(isPow2(cfg.sets), "cache sets must be a power of two");
    pth_assert(cfg.ways >= 1, "cache needs at least one way");
}

Cache::Cache(const Cache &other)
    : cfg(other.cfg), label(other.label), hash(other.hash),
      lines(other.lines), policy(other.policy->clone()),
      nHits(other.nHits), nMisses(other.nMisses)
{
}

std::uint64_t
Cache::stateHash() const
{
    std::uint64_t h = hashCombine(0x5ca1e, nHits);
    h = hashCombine(h, nMisses, policy->stateHash());
    for (const Line &line : lines)
        h = hashCombine(h, line.valid ? line.tag | (1ull << 63) : 0);
    return h;
}

std::uint64_t
Cache::setIndex(PhysAddr pa) const
{
    return (pa >> kLineShift) & (cfg.sets - 1);
}

unsigned
Cache::sliceIndex(PhysAddr pa) const
{
    return hash.slice(pa);
}

std::uint64_t
Cache::globalSet(PhysAddr pa) const
{
    return static_cast<std::uint64_t>(sliceIndex(pa)) * cfg.sets +
           setIndex(pa);
}

std::uint64_t
Cache::tagOf(PhysAddr pa) const
{
    // The full line address doubles as the tag: exact reconstruction of
    // evicted line addresses is required for inclusive back-invalidation.
    return pa >> kLineShift;
}

Cache::Line &
Cache::lineAt(std::uint64_t set, unsigned way)
{
    return lines[set * cfg.ways + way];
}

const Cache::Line &
Cache::lineAt(std::uint64_t set, unsigned way) const
{
    return lines[set * cfg.ways + way];
}

bool
Cache::contains(PhysAddr pa) const
{
    std::uint64_t set = globalSet(pa);
    std::uint64_t tag = tagOf(pa);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

bool
Cache::access(PhysAddr pa)
{
    // Row base hoisted out of the way scan: lineAt() re-derives
    // set * ways per probe, and all three levels run this loop on
    // every memory reference — it dominates the per-access profile.
    const std::uint64_t set = globalSet(pa);
    const std::uint64_t tag = tagOf(pa);
    Line *row = &lines[set * cfg.ways];
    const unsigned ways = cfg.ways;
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = row[w];
        if (line.valid && line.tag == tag) {
            policy->touch(set, w);
            ++nHits;
            return true;
        }
    }
    ++nMisses;
    return false;
}

std::optional<PhysAddr>
Cache::fill(PhysAddr pa)
{
    const std::uint64_t set = globalSet(pa);
    const std::uint64_t tag = tagOf(pa);
    Line *row = &lines[set * cfg.ways];
    const unsigned ways = cfg.ways;

    // One scan finds both an already-present line and the first free
    // way (the former used to be a separate full pass).
    unsigned freeWay = ways;
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = row[w];
        if (!line.valid) {
            if (freeWay == ways)
                freeWay = w;
            continue;
        }
        if (line.tag == tag) {
            // Already present: refresh replacement state only.
            policy->touch(set, w);
            return std::nullopt;
        }
    }

    if (freeWay != ways) {
        Line &line = row[freeWay];
        line.valid = true;
        line.tag = tag;
        policy->insert(set, freeWay);
        return std::nullopt;
    }

    unsigned w = policy->victim(set);
    Line &line = row[w];
    PhysAddr evicted = line.tag << kLineShift;
    line.tag = tag;
    policy->insert(set, w);
    return evicted;
}

bool
Cache::invalidate(PhysAddr pa)
{
    std::uint64_t set = globalSet(pa);
    std::uint64_t tag = tagOf(pa);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag) {
            line.valid = false;
            return true;
        }
    }
    return false;
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t count = 0;
    for (const Line &line : lines)
        if (line.valid)
            ++count;
    return count;
}

void
Cache::flushAll()
{
    for (Line &line : lines)
        line.valid = false;
}

PhysAddr
Cache::lineAddrOf(std::uint64_t, const Line &line) const
{
    return line.tag << kLineShift;
}

} // namespace pth
