#include "cache/cache_hierarchy.hh"

#include "dram/dram.hh"
#include "common/random.hh"

namespace pth
{

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &config,
                               Dram &dram_)
    : l1Cache(config.l1d, "l1d"), l2Cache(config.l2, "l2"),
      llcCache(config.llc, "llc"), dram(dram_)
{
}

CacheHierarchy::CacheHierarchy(const CacheHierarchy &other, Dram &dram_)
    : l1Cache(other.l1Cache), l2Cache(other.l2Cache),
      llcCache(other.llcCache), dram(dram_), nLlcMisses(other.nLlcMisses)
{
}

std::uint64_t
CacheHierarchy::stateHash() const
{
    std::uint64_t h = hashCombine(nLlcMisses, l1Cache.stateHash());
    return hashCombine(h, l2Cache.stateHash(), llcCache.stateHash());
}

MemAccessResult
CacheHierarchy::access(PhysAddr pa, Cycles now)
{
    MemAccessResult result;
    result.latency = l1Cache.config().latency;
    if (l1Cache.access(pa)) {
        result.servedBy = ServedBy::L1;
        return result;
    }

    result.latency += l2Cache.config().latency;
    if (l2Cache.access(pa)) {
        result.servedBy = ServedBy::L2;
        l1Cache.fill(pa);
        return result;
    }

    result.latency += llcCache.config().latency;
    if (llcCache.access(pa)) {
        result.servedBy = ServedBy::Llc;
        l2Cache.fill(pa);
        l1Cache.fill(pa);
        return result;
    }

    // LLC miss: go to memory.
    ++nLlcMisses;
    DramAccessResult dramResult = dram.access(pa, now);
    result.latency += dramResult.latency;
    result.servedBy = ServedBy::Dram;

    // Fill back. Inclusive LLC: whoever the LLC displaces must leave
    // the core caches too.
    if (auto evicted = llcCache.fill(pa)) {
        l1Cache.invalidate(*evicted);
        l2Cache.invalidate(*evicted);
    }
    l2Cache.fill(pa);
    l1Cache.fill(pa);
    return result;
}

Cycles
CacheHierarchy::clflush(PhysAddr pa)
{
    l1Cache.invalidate(pa);
    l2Cache.invalidate(pa);
    llcCache.invalidate(pa);
    return 60;
}

void
CacheHierarchy::flushAll()
{
    l1Cache.flushAll();
    l2Cache.flushAll();
    llcCache.flushAll();
}

} // namespace pth
