#include "cache/cache_hierarchy.hh"

#include "dram/dram.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"

namespace pth
{

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &config,
                               Dram &dram_, unsigned harts)
    : l2Cache(config.l2, "l2"), llcCache(config.llc, "llc"), dram(dram_)
{
    pth_assert(harts >= 1, "a machine needs at least one hart");
    l1Caches.reserve(harts);
    for (unsigned h = 0; h < harts; ++h)
        l1Caches.emplace_back(config.l1d,
                              h == 0 ? "l1d" : strfmt("l1d#%u", h));
}

CacheHierarchy::CacheHierarchy(const CacheHierarchy &other, Dram &dram_)
    : l1Caches(other.l1Caches), l2Cache(other.l2Cache),
      llcCache(other.llcCache), dram(dram_), nLlcMisses(other.nLlcMisses)
{
}

std::uint64_t
CacheHierarchy::stateHash() const
{
    std::uint64_t h = hashCombine(nLlcMisses, l1Caches[0].stateHash());
    h = hashCombine(h, l2Cache.stateHash(), llcCache.stateHash());
    // Extra harts' private L1s fold in after the single-hart digest so
    // a harts=1 hierarchy hashes byte-identically to the pre-multi-hart
    // code (the harts=1 pin test depends on this).
    for (std::size_t i = 1; i < l1Caches.size(); ++i)
        h = hashCombine(h, l1Caches[i].stateHash());
    return h;
}

MemAccessResult
CacheHierarchy::access(PhysAddr pa, Cycles now, unsigned hart)
{
    Cache &l1Cache = l1Caches.at(hart);
    MemAccessResult result;
    result.latency = l1Cache.config().latency;
    if (l1Cache.access(pa)) {
        result.servedBy = ServedBy::L1;
        return result;
    }

    result.latency += l2Cache.config().latency;
    if (l2Cache.access(pa)) {
        result.servedBy = ServedBy::L2;
        l1Cache.fill(pa);
        return result;
    }

    result.latency += llcCache.config().latency;
    if (llcCache.access(pa)) {
        result.servedBy = ServedBy::Llc;
        l2Cache.fill(pa);
        l1Cache.fill(pa);
        return result;
    }

    // LLC miss: go to memory.
    ++nLlcMisses;
    DramAccessResult dramResult = dram.access(pa, now);
    result.latency += dramResult.latency;
    result.servedBy = ServedBy::Dram;

    // Fill back. Inclusive LLC: whoever the LLC displaces must leave
    // the core caches too — every hart's L1, not just the accessor's.
    if (auto evicted = llcCache.fill(pa)) {
        for (Cache &l1 : l1Caches)
            l1.invalidate(*evicted);
        l2Cache.invalidate(*evicted);
    }
    l2Cache.fill(pa);
    l1Cache.fill(pa);
    return result;
}

Cycles
CacheHierarchy::clflush(PhysAddr pa)
{
    for (Cache &l1 : l1Caches)
        l1.invalidate(pa);
    l2Cache.invalidate(pa);
    llcCache.invalidate(pa);
    return 60;
}

void
CacheHierarchy::flushAll()
{
    for (Cache &l1 : l1Caches)
        l1.flushAll();
    l2Cache.flushAll();
    llcCache.flushAll();
}

} // namespace pth
