/**
 * @file
 * One level of a physically-indexed, physically-tagged set-associative
 * cache. Tracks line presence only (the functional data lives in
 * PhysicalMemory); timing is composed by the hierarchy.
 */

#ifndef PTH_CACHE_CACHE_HH
#define PTH_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/slice_hash.hh"
#include "common/types.hh"

namespace pth
{

/** A single cache level. */
class Cache
{
  public:
    /**
     * @param config Geometry / policy for this level.
     * @param name Short name for diagnostics ("l1d", "llc", ...).
     */
    Cache(const CacheConfig &config, std::string name = "cache");

    /** Deep copy: lines, replacement-policy state, and hit/miss
     * counters all carry over (Machine snapshot/fork support). */
    Cache(const Cache &other);

    /**
     * Digest of the observable state — every line (tag + valid) in
     * index order plus the hit/miss counters. Used by
     * Machine::stateFingerprint for snapshot audits.
     */
    std::uint64_t stateHash() const;

    /** True when the line holding pa is present. */
    bool contains(PhysAddr pa) const;

    /**
     * Look up the line; on a hit, update replacement state.
     * @return true on hit.
     */
    bool access(PhysAddr pa);

    /**
     * Insert the line holding pa, evicting if the set is full.
     * @return The physical line address evicted, if any.
     */
    std::optional<PhysAddr> fill(PhysAddr pa);

    /**
     * Remove the line holding pa if present.
     * @return true when the line was present.
     */
    bool invalidate(PhysAddr pa);

    /** Global set index (slice-major) of pa — exposed for tests. */
    std::uint64_t globalSet(PhysAddr pa) const;

    /** Set index within a slice. */
    std::uint64_t setIndex(PhysAddr pa) const;

    /** Slice index. */
    unsigned sliceIndex(PhysAddr pa) const;

    /** Number of lines currently valid. */
    std::uint64_t validLines() const;

    /** Geometry. */
    const CacheConfig &config() const { return cfg; }

    /** Hit count since construction. */
    std::uint64_t hits() const { return nHits; }

    /** Miss count since construction. */
    std::uint64_t misses() const { return nMisses; }

    /** Drop every line. */
    void flushAll();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
    };

    Line &lineAt(std::uint64_t set, unsigned way);
    const Line &lineAt(std::uint64_t set, unsigned way) const;
    std::uint64_t tagOf(PhysAddr pa) const;
    PhysAddr lineAddrOf(std::uint64_t set, const Line &line) const;

    CacheConfig cfg;
    std::string label;
    SliceHash hash;
    std::vector<Line> lines;
    std::unique_ptr<ReplacementPolicy> policy;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

} // namespace pth

#endif // PTH_CACHE_CACHE_HH
