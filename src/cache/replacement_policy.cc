#include "cache/replacement_policy.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace pth
{

std::string
replacementKindName(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::Lru:
        return "lru";
      case ReplacementKind::TreePlru:
        return "tree-plru";
      case ReplacementKind::Random:
        return "random";
      case ReplacementKind::Nru:
        return "nru";
      case ReplacementKind::Aging:
        return "aging";
    }
    return "?";
}

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(ReplacementKind kind, std::uint64_t sets,
                          unsigned ways, std::uint64_t seed)
{
    switch (kind) {
      case ReplacementKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplacementKind::TreePlru:
        return std::make_unique<TreePlruPolicy>(sets, ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(ways, seed);
      case ReplacementKind::Nru:
        return std::make_unique<NruPolicy>(sets, ways, seed);
      case ReplacementKind::Aging:
        return std::make_unique<AgingPolicy>(sets, ways, seed);
    }
    panic("unknown replacement kind");
}

LruPolicy::LruPolicy(std::uint64_t sets, unsigned ways_)
    : ways(ways_), stamps(sets * ways_, 0)
{
}

void
LruPolicy::touch(std::uint64_t set, unsigned way)
{
    stamps[set * ways + way] = ++tick;
}

void
LruPolicy::insert(std::uint64_t set, unsigned way)
{
    touch(set, way);
}

unsigned
LruPolicy::victim(std::uint64_t set)
{
    unsigned best = 0;
    std::uint64_t bestStamp = ~0ull;
    for (unsigned w = 0; w < ways; ++w) {
        std::uint64_t s = stamps[set * ways + w];
        if (s < bestStamp) {
            bestStamp = s;
            best = w;
        }
    }
    return best;
}

std::unique_ptr<ReplacementPolicy>
LruPolicy::clone() const
{
    return std::make_unique<LruPolicy>(*this);
}

std::uint64_t
LruPolicy::stateHash() const
{
    std::uint64_t h = hashCombine(0x12c0, ways, tick);
    for (std::uint64_t stamp : stamps)
        h = hashCombine(h, stamp);
    return h;
}

TreePlruPolicy::TreePlruPolicy(std::uint64_t sets, unsigned ways_)
    : ways(ways_)
{
    treeWays = 1;
    while (treeWays < ways)
        treeWays <<= 1;
    levels = log2i(treeWays);
    bits.assign(sets * (treeWays - 1), 0);
}

void
TreePlruPolicy::updatePath(std::uint64_t set, unsigned way)
{
    // Walk from the root; at each node, point the bit *away* from the
    // touched way.
    std::uint8_t *tree = &bits[set * (treeWays - 1)];
    unsigned node = 0;
    for (unsigned level = 0; level < levels; ++level) {
        unsigned shift = levels - 1 - level;
        unsigned dir = (way >> shift) & 1;
        tree[node] = static_cast<std::uint8_t>(dir ^ 1);
        node = 2 * node + 1 + dir;
    }
}

void
TreePlruPolicy::touch(std::uint64_t set, unsigned way)
{
    updatePath(set, way);
}

void
TreePlruPolicy::insert(std::uint64_t set, unsigned way)
{
    updatePath(set, way);
}

unsigned
TreePlruPolicy::victim(std::uint64_t set)
{
    std::uint8_t *tree = &bits[set * (treeWays - 1)];
    for (unsigned attempt = 0; attempt < 2 * treeWays; ++attempt) {
        unsigned node = 0;
        unsigned way = 0;
        for (unsigned level = 0; level < levels; ++level) {
            unsigned dir = tree[node];
            way = (way << 1) | dir;
            node = 2 * node + 1 + dir;
        }
        if (way < ways)
            return way;
        // The tree pointed into the padded range (non-power-of-two
        // associativity); steer away and retry.
        updatePath(set, way >= ways ? ways - 1 : way);
    }
    return ways - 1;
}

std::unique_ptr<ReplacementPolicy>
TreePlruPolicy::clone() const
{
    return std::make_unique<TreePlruPolicy>(*this);
}

std::uint64_t
TreePlruPolicy::stateHash() const
{
    std::uint64_t h = hashCombine(0x92e9, ways, treeWays);
    for (std::uint8_t bit : bits)
        h = hashCombine(h, bit);
    return h;
}

NruPolicy::NruPolicy(std::uint64_t sets, unsigned ways_, std::uint64_t seed)
    : ways(ways_), refBits(sets * ways_, 0), rng(seed)
{
}

void
NruPolicy::touch(std::uint64_t set, unsigned way)
{
    refBits[set * ways + way] = 1;
}

void
NruPolicy::insert(std::uint64_t set, unsigned way)
{
    refBits[set * ways + way] = 1;
}

unsigned
NruPolicy::victim(std::uint64_t set)
{
    std::uint8_t *refs = &refBits[set * ways];
    unsigned clearCount = 0;
    for (unsigned w = 0; w < ways; ++w)
        if (!refs[w])
            ++clearCount;
    if (clearCount == 0) {
        // Everything was recently used: clear the epoch and pick any.
        for (unsigned w = 0; w < ways; ++w)
            refs[w] = 0;
        return static_cast<unsigned>(rng.below(ways));
    }
    unsigned pick = static_cast<unsigned>(rng.below(clearCount));
    for (unsigned w = 0; w < ways; ++w) {
        if (!refs[w]) {
            if (pick == 0)
                return w;
            --pick;
        }
    }
    return ways - 1;
}

std::unique_ptr<ReplacementPolicy>
NruPolicy::clone() const
{
    return std::make_unique<NruPolicy>(*this);
}

std::uint64_t
NruPolicy::stateHash() const
{
    std::uint64_t h = hashCombine(0x9eb, ways, rng.stateHash());
    for (std::uint8_t bit : refBits)
        h = hashCombine(h, bit);
    return h;
}

AgingPolicy::AgingPolicy(std::uint64_t sets, unsigned ways_,
                         std::uint64_t seed)
    : ways(ways_), ages(sets * ways_, 0), rng(seed)
{
}

void
AgingPolicy::touch(std::uint64_t set, unsigned way)
{
    ages[set * ways + way] = touchAge;
}

void
AgingPolicy::insert(std::uint64_t set, unsigned way)
{
    ages[set * ways + way] = insertAge;
}

unsigned
AgingPolicy::victim(std::uint64_t set)
{
    std::uint8_t *age = &ages[set * ways];
    auto pickAmong = [&](std::uint8_t wanted) -> int {
        unsigned count = 0;
        for (unsigned w = 0; w < ways; ++w)
            if (age[w] == wanted)
                ++count;
        if (!count)
            return -1;
        unsigned pick = static_cast<unsigned>(rng.below(count));
        for (unsigned w = 0; w < ways; ++w) {
            if (age[w] == wanted) {
                if (pick == 0)
                    return static_cast<int>(w);
                --pick;
            }
        }
        return -1;
    };

    for (unsigned round = 0; round < 2u * touchAge + 2; ++round) {
        int zero = pickAmong(0);
        if (zero >= 0)
            return static_cast<unsigned>(zero);
        // No way is stale. Sometimes the hardware heuristic punts and
        // replaces a young fill instead of ageing the whole set; this
        // keeps referenced entries alive past exact multiples of the
        // associativity.
        if (rng.chance(skipAgeProbability)) {
            std::uint8_t minAge = 255;
            for (unsigned w = 0; w < ways; ++w)
                minAge = std::min(minAge, age[w]);
            int young = pickAmong(minAge);
            if (young >= 0)
                return static_cast<unsigned>(young);
        }
        for (unsigned w = 0; w < ways; ++w)
            if (age[w] > 0)
                --age[w];
    }
    return static_cast<unsigned>(rng.below(ways));
}

std::unique_ptr<ReplacementPolicy>
AgingPolicy::clone() const
{
    return std::make_unique<AgingPolicy>(*this);
}

std::uint64_t
AgingPolicy::stateHash() const
{
    std::uint64_t h = hashCombine(0xa917, ways, rng.stateHash());
    for (std::uint8_t age : ages)
        h = hashCombine(h, age);
    return h;
}

RandomPolicy::RandomPolicy(unsigned ways_, std::uint64_t seed)
    : ways(ways_), rng(seed)
{
}

void
RandomPolicy::touch(std::uint64_t, unsigned)
{
}

void
RandomPolicy::insert(std::uint64_t, unsigned)
{
}

unsigned
RandomPolicy::victim(std::uint64_t)
{
    return static_cast<unsigned>(rng.below(ways));
}

std::unique_ptr<ReplacementPolicy>
RandomPolicy::clone() const
{
    return std::make_unique<RandomPolicy>(*this);
}

std::uint64_t
RandomPolicy::stateHash() const
{
    return hashCombine(0x9a2d, ways, rng.stateHash());
}

} // namespace pth
