/**
 * @file
 * Set-associative replacement policies.
 *
 * True LRU, tree pseudo-LRU and random replacement are provided. The
 * TLB uses tree-PLRU: the paper observes that a TLB eviction set equal
 * to the associativity does not reliably evict ("the eviction policy on
 * TLB is not true LRU"), and tree-PLRU reproduces exactly that
 * behaviour, which drives the Figure 3 minimal-set-size result.
 */

#ifndef PTH_CACHE_REPLACEMENT_POLICY_HH
#define PTH_CACHE_REPLACEMENT_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"

namespace pth
{

/** Replacement policy kinds selectable from configuration. */
enum class ReplacementKind { Lru, TreePlru, Random, Nru, Aging };

/** Human-readable policy name. */
std::string replacementKindName(ReplacementKind kind);

/**
 * Per-structure replacement state covering all sets of one
 * set-associative structure.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Note a hit on (set, way). */
    virtual void touch(std::uint64_t set, unsigned way) = 0;

    /** Note a fill into (set, way). */
    virtual void insert(std::uint64_t set, unsigned way) = 0;

    /** Choose the way to evict from the given (full) set. */
    virtual unsigned victim(std::uint64_t set) = 0;

    /**
     * Deep copy, including per-set state and any internal RNG, so a
     * cloned structure replays victim choices bit-identically
     * (Machine snapshot/fork support).
     */
    virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

    /**
     * Digest of the replacement metadata (age stamps, tree bits,
     * reference bits, RNG position). Folded into Cache/Tlb stateHash
     * so two structures with equal fingerprints also agree on every
     * future victim choice — without this, snapshot audits could pass
     * on states that replay differently.
     */
    virtual std::uint64_t stateHash() const = 0;

    /** Factory. */
    static std::unique_ptr<ReplacementPolicy> create(
        ReplacementKind kind, std::uint64_t sets, unsigned ways,
        std::uint64_t seed = 1);
};

/** True least-recently-used via per-way age stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    void insert(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    std::uint64_t stateHash() const override;

  private:
    unsigned ways;
    std::uint64_t tick = 0;
    std::vector<std::uint64_t> stamps;  //!< sets x ways age stamps
};

/**
 * Tree pseudo-LRU for power-of-two associativity. Associativities that
 * are not a power of two (e.g. 12-way LLC slices) use the next larger
 * tree and re-draw when the tree points at a nonexistent way.
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    void insert(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    std::uint64_t stateHash() const override;

  private:
    void updatePath(std::uint64_t set, unsigned way);

    unsigned ways;
    unsigned treeWays;   //!< ways rounded up to a power of two
    unsigned levels;     //!< log2(treeWays)
    std::vector<std::uint8_t> bits;  //!< sets x (treeWays - 1) tree bits
};

/**
 * Not-recently-used: one reference bit per way. A hit sets the bit; a
 * fill victimizes a random way whose bit is clear, clearing all bits
 * when every way is referenced. A recently-touched entry therefore
 * survives bursts of fills probabilistically, so evicting it reliably
 * takes noticeably more congruent accesses than the associativity —
 * the TLB behaviour the paper measures in Figure 3.
 */
class NruPolicy : public ReplacementPolicy
{
  public:
    NruPolicy(std::uint64_t sets, unsigned ways, std::uint64_t seed);

    void touch(std::uint64_t set, unsigned way) override;
    void insert(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    std::uint64_t stateHash() const override;

  private:
    unsigned ways;
    std::vector<std::uint8_t> refBits;  //!< sets x ways
    Rng rng;
};

/**
 * Clock-style aging with a 2-bit re-reference counter per way. Hits
 * recharge an entry to the maximum age; fills start low; victim
 * selection picks (randomly) among ways at age 0, ageing the whole set
 * when none qualifies. A freshly-touched entry therefore survives
 * roughly touchAge ageing rounds of fills, pushing the reliable
 * eviction-set size to ~3x the associativity — the TLB behaviour
 * behind the paper's Figure 3 knee at 12 pages for 4-way TLBs.
 */
class AgingPolicy : public ReplacementPolicy
{
  public:
    AgingPolicy(std::uint64_t sets, unsigned ways, std::uint64_t seed);

    void touch(std::uint64_t set, unsigned way) override;
    void insert(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    std::uint64_t stateHash() const override;

  private:
    static constexpr std::uint8_t touchAge = 4;
    static constexpr std::uint8_t insertAge = 1;
    static constexpr double skipAgeProbability = 0.60;

    unsigned ways;
    std::vector<std::uint8_t> ages;  //!< sets x ways
    Rng rng;
};

/** Uniform random victim selection (deterministic, seeded). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(unsigned ways, std::uint64_t seed);

    void touch(std::uint64_t set, unsigned way) override;
    void insert(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    std::uint64_t stateHash() const override;

  private:
    unsigned ways;
    Rng rng;
};

} // namespace pth

#endif // PTH_CACHE_REPLACEMENT_POLICY_HH
