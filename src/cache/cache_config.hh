/**
 * @file
 * Cache hierarchy configuration.
 */

#ifndef PTH_CACHE_CACHE_CONFIG_HH
#define PTH_CACHE_CACHE_CONFIG_HH

#include <cstdint>

#include "cache/replacement_policy.hh"
#include "common/types.hh"

namespace pth
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::uint64_t sets = 64;       //!< sets per slice
    unsigned ways = 8;
    unsigned slices = 1;           //!< > 1 only for the LLC
    Cycles latency = 4;            //!< hit latency contribution
    ReplacementKind replacement = ReplacementKind::Lru;

    /** Total capacity in bytes. */
    std::uint64_t capacity() const
    {
        return sets * ways * slices * kLineBytes;
    }
};

/** Field-wise equality (campaign snapshot-sharing detection). */
inline bool
operator==(const CacheConfig &a, const CacheConfig &b)
{
    return a.sets == b.sets && a.ways == b.ways && a.slices == b.slices &&
           a.latency == b.latency && a.replacement == b.replacement;
}

inline bool
operator!=(const CacheConfig &a, const CacheConfig &b)
{
    return !(a == b);
}

/** The three-level hierarchy used by the paper's machines. */
struct CacheHierarchyConfig
{
    CacheConfig l1d{64, 8, 1, 4, ReplacementKind::Lru};
    CacheConfig l2{512, 8, 1, 12, ReplacementKind::Lru};
    CacheConfig llc{2048, 12, 2, 30, ReplacementKind::Lru};
};

inline bool
operator==(const CacheHierarchyConfig &a, const CacheHierarchyConfig &b)
{
    return a.l1d == b.l1d && a.l2 == b.l2 && a.llc == b.llc;
}

inline bool
operator!=(const CacheHierarchyConfig &a, const CacheHierarchyConfig &b)
{
    return !(a == b);
}

} // namespace pth

#endif // PTH_CACHE_CACHE_CONFIG_HH
