/**
 * @file
 * Three-level inclusive cache hierarchy (per-hart L1D, shared L2,
 * sliced LLC) in front of DRAM. The LLC is inclusive: evicting an LLC
 * line back-invalidates it from every L1 and the L2, which is why an
 * unprivileged LLC eviction set is enough to force the next PTE fetch
 * to DRAM — the property PThammer depends on (Section III-D of the
 * paper). With more than one hart, each hart owns a private L1 while
 * L2/LLC are shared, so one hart's evictions are visible to every
 * other hart at those levels — the coupling multi-hart interleaved
 * hammering and noisy-neighbor scenarios exercise.
 */

#ifndef PTH_CACHE_CACHE_HIERARCHY_HH
#define PTH_CACHE_CACHE_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "cache/cache_config.hh"
#include "common/types.hh"

namespace pth
{

class Dram;

/** Where a memory access was served from. */
enum class ServedBy { L1, L2, Llc, Dram };

/** Timing/result of one memory access through the hierarchy. */
struct MemAccessResult
{
    Cycles latency = 0;
    ServedBy servedBy = ServedBy::L1;

    bool fromDram() const { return servedBy == ServedBy::Dram; }
};

/** The cache hierarchy. */
class CacheHierarchy
{
  public:
    /** @param harts Number of private L1Ds to build (one per hart). */
    CacheHierarchy(const CacheHierarchyConfig &config, Dram &dram,
                   unsigned harts = 1);

    /** Deep copy rewired to a new Dram (Machine snapshot/fork): all
     * levels (every hart's L1), replacement state, and the LLC-miss
     * counter. */
    CacheHierarchy(const CacheHierarchy &other, Dram &dram);

    /**
     * Read or write the line holding pa at simulated time now through
     * hart's private L1, filling the shared levels and that L1 on the
     * way back.
     */
    MemAccessResult access(PhysAddr pa, Cycles now, unsigned hart = 0);

    /**
     * x86 clflush: remove the line from every level on every hart
     * (the instruction is coherent machine-wide).
     * @return Constant instruction latency.
     */
    Cycles clflush(PhysAddr pa);

    /** Level accessors for tests and diagnostics (hart 0's L1). */
    Cache &l1d() { return l1Caches[0]; }
    Cache &l2() { return l2Cache; }
    Cache &llc() { return llcCache; }
    const Cache &l1d() const { return l1Caches[0]; }
    const Cache &l2() const { return l2Cache; }
    const Cache &llc() const { return llcCache; }

    /** A specific hart's private L1. */
    Cache &l1d(unsigned hart) { return l1Caches.at(hart); }
    const Cache &l1d(unsigned hart) const { return l1Caches.at(hart); }

    /** Number of private L1s (the machine's hart count). */
    unsigned hartCount() const
    {
        return static_cast<unsigned>(l1Caches.size());
    }

    /** LLC misses observed (the longest_lat_cache.miss PMC event). */
    std::uint64_t llcMisses() const { return nLlcMisses; }

    /** Drop all cached lines (context-switch-free full flush). */
    void flushAll();

    /** Digest of all levels plus the LLC-miss counter (snapshot
     * audits). Extra harts' L1s are folded after the single-hart
     * digest, so a harts=1 hierarchy hashes byte-identically to the
     * pre-multi-hart code. */
    std::uint64_t stateHash() const;

  private:
    std::vector<Cache> l1Caches;
    Cache l2Cache;
    Cache llcCache;
    Dram &dram;
    std::uint64_t nLlcMisses = 0;
};

} // namespace pth

#endif // PTH_CACHE_CACHE_HIERARCHY_HH
