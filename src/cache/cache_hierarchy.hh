/**
 * @file
 * Three-level inclusive cache hierarchy (L1D, L2, sliced LLC) in front
 * of DRAM. The LLC is inclusive: evicting an LLC line back-invalidates
 * it from L1 and L2, which is why an unprivileged LLC eviction set is
 * enough to force the next PTE fetch to DRAM — the property PThammer
 * depends on (Section III-D of the paper).
 */

#ifndef PTH_CACHE_CACHE_HIERARCHY_HH
#define PTH_CACHE_CACHE_HIERARCHY_HH

#include <cstdint>

#include "cache/cache.hh"
#include "cache/cache_config.hh"
#include "common/types.hh"

namespace pth
{

class Dram;

/** Where a memory access was served from. */
enum class ServedBy { L1, L2, Llc, Dram };

/** Timing/result of one memory access through the hierarchy. */
struct MemAccessResult
{
    Cycles latency = 0;
    ServedBy servedBy = ServedBy::L1;

    bool fromDram() const { return servedBy == ServedBy::Dram; }
};

/** The cache hierarchy. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheHierarchyConfig &config, Dram &dram);

    /** Deep copy rewired to a new Dram (Machine snapshot/fork): all
     * three levels, replacement state, and the LLC-miss counter. */
    CacheHierarchy(const CacheHierarchy &other, Dram &dram);

    /**
     * Read or write the line holding pa at simulated time now,
     * filling all levels on the way back.
     */
    MemAccessResult access(PhysAddr pa, Cycles now);

    /**
     * x86 clflush: remove the line from every level.
     * @return Constant instruction latency.
     */
    Cycles clflush(PhysAddr pa);

    /** LLC misses observed (the longest_lat_cache.miss PMC event). */
    std::uint64_t llcMisses() const { return nLlcMisses; }

    /** Level accessors for tests and diagnostics. */
    Cache &l1d() { return l1Cache; }
    Cache &l2() { return l2Cache; }
    Cache &llc() { return llcCache; }
    const Cache &l1d() const { return l1Cache; }
    const Cache &l2() const { return l2Cache; }
    const Cache &llc() const { return llcCache; }

    /** Drop all cached lines (context-switch-free full flush). */
    void flushAll();

    /** Digest of all three levels plus the LLC-miss counter
     * (snapshot audits). */
    std::uint64_t stateHash() const;

  private:
    Cache l1Cache;
    Cache l2Cache;
    Cache llcCache;
    Dram &dram;
    std::uint64_t nLlcMisses = 0;
};

} // namespace pth

#endif // PTH_CACHE_CACHE_HIERARCHY_HH
