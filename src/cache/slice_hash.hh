/**
 * @file
 * Intel LLC complex-addressing slice hash.
 *
 * The slice index is the XOR-parity of the physical address with one
 * published mask per slice bit (Maurice et al., "Reverse Engineering
 * Intel Last-Level Cache Complex Addressing Using Performance
 * Counters", RAID 2015). Eviction-set construction must solve exactly
 * this hash, which is why the regular-page pool build is so much slower
 * than the superpage build.
 */

#ifndef PTH_CACHE_SLICE_HASH_HH
#define PTH_CACHE_SLICE_HASH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pth
{

/** Parity-mask slice hash for a power-of-two slice count. */
class SliceHash
{
  public:
    /**
     * @param slices Number of LLC slices (1, 2, 4 or 8).
     * @param seed Unused for the published masks; reserved.
     */
    explicit SliceHash(unsigned slices);

    /** Slice index of a physical address. */
    unsigned slice(PhysAddr pa) const;

    /** Number of slices. */
    unsigned slices() const { return nSlices; }

    /** Parity masks in use (one per slice-index bit). */
    const std::vector<std::uint64_t> &masks() const { return bitMasks; }

  private:
    unsigned nSlices;
    std::vector<std::uint64_t> bitMasks;
};

} // namespace pth

#endif // PTH_CACHE_SLICE_HASH_HH
