#include "attack/implicit_hammer.hh"

#include "common/logging.hh"
#include "cpu/machine.hh"

namespace pth
{

ImplicitHammer::ImplicitHammer(Machine &machine, const AttackConfig &config)
    : m(machine), cfg(config)
{
}

Cycles
ImplicitHammer::iteration(const HammerPair &pair, unsigned &dramFetches,
                          unsigned hart)
{
    Cycles start = m.clock().now();
    Cpu &cpu = m.cpu(hart);

    // Evict both TLB entries and both L1PTE lines. The four streams
    // are independent loads, so they overlap (accessBatch).
    std::vector<VirtAddr> stream;
    stream.reserve(pair.tlbSet1.size() + pair.tlbSet2.size() +
                   pair.llcSet1.size() + pair.llcSet2.size());
    stream.insert(stream.end(), pair.tlbSet1.begin(), pair.tlbSet1.end());
    stream.insert(stream.end(), pair.tlbSet2.begin(), pair.tlbSet2.end());
    stream.insert(stream.end(), pair.llcSet1.begin(), pair.llcSet1.end());
    stream.insert(stream.end(), pair.llcSet2.begin(), pair.llcSet2.end());
    cpu.accessBatch(stream);

    // Touch the two targets: TLB miss -> PDE-cache hit -> L1PTE fetch
    // from DRAM. These two are dependent on the eviction completing,
    // so they are charged at full latency.
    AccessOutcome a1 = cpu.access(pair.va1);
    AccessOutcome a2 = cpu.access(pair.va2);
    if (a1.l1pteFromDram)
        ++dramFetches;
    if (a2.l1pteFromDram)
        ++dramFetches;

    return m.clock().now() - start;
}

HammerRunResult
ImplicitHammer::run(const HammerPair &pair, std::uint64_t iterations)
{
    HammerRunResult result;
    result.iterations = iterations;
    Cycles start = m.clock().now();
    std::uint64_t flipsBefore = m.dram().totalFlips();

    unsigned warmup = static_cast<unsigned>(
        std::min<std::uint64_t>(cfg.hammerWarmupIterations, iterations));
    unsigned dramFetches = 0;
    Cycles warmupCycles = 0;
    result.detailedTimings.reserve(warmup);
    for (unsigned i = 0; i < warmup; ++i) {
        Cycles c = iteration(pair, dramFetches);
        result.detailedTimings.push_back(c);
        warmupCycles += c;
    }

    if (warmup > 0) {
        result.meanCyclesPerIteration =
            static_cast<double>(warmupCycles) / warmup;
        result.dramFetchRate =
            static_cast<double>(dramFetches) / (2.0 * warmup);
    }

    std::uint64_t remaining = iterations - warmup;
    if (remaining > 0 && result.meanCyclesPerIteration > 0) {
        // Analytic bulk: advance time and apply the aggressor-row
        // activations per refresh window.
        Cycles bulkCycles = static_cast<Cycles>(
            static_cast<double>(remaining) *
            result.meanCyclesPerIteration);
        Cycles window = m.config().disturbance.refreshWindowCycles;
        std::uint64_t windows = bulkCycles / window;

        auto pt = m.cpu().process().pageTables();
        auto pte1 = pt->l1pteAddress(pair.va1);
        auto pte2 = pt->l1pteAddress(pair.va2);
        if (pte1 && pte2 && windows > 0) {
            DramLocation l1 = m.dram().mapping().decompose(*pte1);
            DramLocation l2 = m.dram().mapping().decompose(*pte2);
            if (l1.bank == l2.bank) {
                double actsPerIter = result.dramFetchRate;
                std::uint64_t actsPerWindow = static_cast<std::uint64_t>(
                    actsPerIter * static_cast<double>(window) /
                    result.meanCyclesPerIteration);
                m.dram().hammerBulk(l1.bank, {l1.row, l2.row},
                                    actsPerWindow, windows);
            }
        }
        m.clock().advance(bulkCycles);
    }

    result.totalCycles = m.clock().now() - start;
    result.flips = m.dram().totalFlips() - flipsBefore;
    return result;
}

std::vector<Cycles>
ImplicitHammer::measureRounds(const HammerPair &pair, unsigned rounds)
{
    std::vector<Cycles> timings;
    timings.reserve(rounds);
    unsigned dramFetches = 0;
    for (unsigned i = 0; i < rounds; ++i)
        timings.push_back(iteration(pair, dramFetches));
    return timings;
}

} // namespace pth
