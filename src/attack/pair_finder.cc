#include "attack/pair_finder.hh"

#include "common/logging.hh"
#include "cpu/machine.hh"

namespace pth
{

PairFinder::PairFinder(Machine &machine, const AttackConfig &config,
                       SprayManager &sprayer_, TlbEvictionTool &tlbTool_,
                       EvictionSetSelector &selector_)
    : m(machine), cfg(config), sprayer(sprayer_), tlbTool(tlbTool_),
      selector(selector_), probe(machine.cpu(), machine.config(), config)
{
}

std::uint64_t
PairFinder::pairStride()
 const
{
    // 2 * RowsSize * 512: two addresses this far apart have L1PTEs two
    // row indices apart (sandwiching the victim row) when the kernel
    // allocated their L1PTs consecutively.
    return 2 * m.config().dramGeometry.rowIndexStride() * kPtesPerPage;
}

std::optional<HammerPair>
PairFinder::provision(VirtAddr va1, VirtAddr va2)
{
    HammerPair pair;
    pair.va1 = va1;
    pair.va2 = va2;

    // TLB eviction-set selection is table lookup: ~1 us.
    Cycles tlbStart = m.clock().now();
    pair.tlbSet1 = tlbTool.evictionSetFor(va1, tlbTool.workingSetSize());
    pair.tlbSet2 = tlbTool.evictionSetFor(va2, tlbTool.workingSetSize());
    m.clock().advance(m.config().cycles(1e-6));
    pair.tlbSelectCycles = m.clock().now() - tlbStart;

    // Algorithm 2 for both L1PTEs.
    SetSelection sel1 = selector.select(va1);
    SetSelection sel2 = selector.select(va2);
    if (!sel1.set || !sel2.set)
        return std::nullopt;
    unsigned size = std::min<unsigned>(
        static_cast<unsigned>(sel1.set->lines.size()),
        m.config().caches.llc.ways + cfg.llcSetSizeMargin);
    pair.llcSet1 = sel1.set->firstLines(size);
    pair.llcSet2 = sel2.set->firstLines(size);
    pair.llcSelectCycles = sel1.elapsed + sel2.elapsed;
    return pair;
}

bool
PairFinder::verifySameBank(const HammerPair &pair)
{
    // Row-buffer-conflict probing: force both L1PTE fetches to DRAM;
    // when they share a bank, the second fetch pays a row conflict.
    unsigned conflicts = 0;
    for (unsigned i = 0; i < cfg.bankProbeCount; ++i) {
        m.cpu().accessBatch(pair.tlbSet1);
        m.cpu().accessBatch(pair.tlbSet2);
        m.cpu().accessBatch(pair.llcSet1);
        m.cpu().accessBatch(pair.llcSet2);
        m.cpu().access(pair.va1);
        if (probe.timeAccess(pair.va2) > probe.bankConflictThreshold())
            ++conflicts;
    }
    return conflicts * 2 > cfg.bankProbeCount;
}

std::optional<HammerPair>
PairFinder::next()
{
    std::uint64_t stride = pairStride();
    std::uint64_t regionSpan = stride / kSuperPageBytes;

    for (unsigned attempt = 0; attempt < 4096; ++attempt) {
        ++tried;
        VirtAddr va1 = sprayer.randomTarget(salt++);
        if (sprayer.regionOf(va1) + regionSpan >= sprayer.ptPages()) {
            continue;  // would fall off the sprayed range
        }
        VirtAddr va2 = va1 + stride;

        auto pair = provision(va1, va2);
        if (!pair)
            continue;

        Cycles verifyStart = m.clock().now();
        bool sameBank = verifySameBank(*pair);
        pair->verifyCycles = m.clock().now() - verifyStart;
        if (!sameBank)
            continue;

        ++acceptedCount;
        return pair;
    }
    return std::nullopt;
}

} // namespace pth
