#include "attack/pthammer.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"

namespace pth
{

PThammerAttack::PThammerAttack(Machine &machine, const AttackConfig &config)
    : m(machine), cfg(config)
{
    report.machine = m.config().name;
    report.superpages = cfg.superpages;
    report.defense = m.kernel().defense().name();
}

void
PThammerAttack::prepare()
{
    pth_assert(!preparedFlag, "prepare() ran twice");

    // The unprivileged attacker process.
    attackerProc = &m.kernel().createProcess(/*uid=*/1000);
    m.cpu().setProcess(*attackerProc);

    // Defense-specific counter-preparation.
    if (cfg.exhaustKernelFraction > 0)
        m.kernel().exhaustKernelZone(cfg.exhaustKernelFraction);
    for (unsigned i = 0; i < cfg.credSprayProcesses; ++i)
        m.kernel().createProcess(/*uid=*/1000, /*lightweight=*/true);

    spray_ = std::make_unique<SprayManager>(m, cfg);
    Cycles sprayCycles = spray_->spray();
    report.sprayMs = m.seconds(sprayCycles) * 1e3;

    // TLB pool + Algorithm 1 (the PMC-assisted minimal-size search is
    // offline calibration, exactly as in the paper).
    tlb_ = std::make_unique<TlbEvictionTool>(m, cfg);
    Cycles tlbCycles = tlb_->prepare();
    report.tlbPrepMs = m.seconds(tlbCycles) * 1e3;
    KernelModule module(m);
    unsigned minimal =
        tlb_->findMinimalSetSize(spray_->randomTarget(0x7001), module);
    tlb_->setWorkingSetSize(minimal + cfg.tlbSetSizeMargin);

    // LLC pool.
    pool_ = std::make_unique<LlcEvictionPool>(m, cfg);
    Cycles bufferCycles = pool_->allocateBuffer();
    PoolBuildReport build =
        cfg.superpages
            ? pool_->buildSuperpage(cfg.superpageSampleClasses)
            : pool_->buildRegularSampled(cfg.regularSampleClasses,
                                         cfg.regularSampleGroups);
    report.llcPrepMinutes =
        m.seconds(bufferCycles + build.extrapolatedCycles) / 60.0;

    selector_ = std::make_unique<EvictionSetSelector>(m, cfg, *pool_,
                                                      *tlb_);
    pairs_ = std::make_unique<PairFinder>(m, cfg, *spray_, *tlb_,
                                          *selector_);
    hammer_ = std::make_unique<ImplicitHammer>(m, cfg);
    checker_ = std::make_unique<FlipChecker>(m, cfg, *spray_);
    exploit_ = std::make_unique<Exploit>(m, cfg, *spray_);
    preparedFlag = true;
}

AttackReport
PThammerAttack::run()
{
    if (!preparedFlag)
        prepare();

    RunningStat tlbSelect;
    RunningStat llcSelect;
    RunningStat hammerTime;
    RunningStat checkTime;

    Cycles loopStart = m.clock().now();
    Cycles budget = m.config().cycles(cfg.hammerBudgetSeconds);

    while (report.attempts < cfg.maxAttempts &&
           m.clock().now() - loopStart < budget) {
        auto pair = pairs_->next();
        if (!pair)
            break;
        ++report.attempts;
        tlbSelect.sample(m.seconds(pair->tlbSelectCycles) * 1e6);
        llcSelect.sample(m.seconds(pair->llcSelectCycles / 2) * 1e3);

        HammerRunResult hr = hammer_->run(*pair, cfg.hammerIterations);
        hammerTime.sample(m.seconds(hr.totalCycles) * 1e3);

        Cycles checkStart = m.clock().now();
        auto findings = checker_->check();
        checkTime.sample(m.seconds(m.clock().now() - checkStart));

        for (const FlipFinding &finding : findings) {
            ++report.flipsObserved;
            if (!report.flipped) {
                report.flipped = true;
                report.timeToFirstFlipMinutes =
                    m.seconds(m.clock().now() - loopStart) / 60.0;
            }
            ExploitOutcome outcome = exploit_->attempt(finding);
            if (outcome.escalated) {
                report.escalated = true;
                report.flipsUntilEscalation = report.flipsObserved;
                report.exploitPath = exploitPathName(outcome.path);
                break;
            }
        }
        if (report.escalated)
            break;
    }

    report.tlbSelectMicros = tlbSelect.mean();
    report.llcSelectMs = llcSelect.mean();
    report.hammerMs = hammerTime.mean();
    report.checkSeconds = checkTime.mean();
    if (!report.flipped)
        report.timeToFirstFlipMinutes =
            m.seconds(m.clock().now() - loopStart) / 60.0;
    return report;
}

} // namespace pth
