/**
 * @file
 * Attacker-side configuration: address-space layout, spray size,
 * profiling repeat counts and the hammer/check budgets.
 */

#ifndef PTH_ATTACK_ATTACK_CONFIG_HH
#define PTH_ATTACK_ATTACK_CONFIG_HH

#include <cstdint>
#include <cstring>

#include "common/types.hh"

namespace pth
{

/** How LlcEvictionPool reduces candidate sets to eviction sets. */
enum class PoolBuildAlgorithm
{
    /** The paper's baseline: drop one candidate per conflict test,
     * O(N^2) tests per class. */
    SingleElimination,

    /** Binary-split group testing (Vila et al. style): discard whole
     * chunks of the working set per conflict test, O(ways * N)
     * accesses per class, plus a batched one-pass membership
     * classification of the remaining candidates. */
    GroupTesting,
};

/** Pool-construction execution knobs. */
struct PoolBuildOptions
{
    PoolBuildAlgorithm algorithm = PoolBuildAlgorithm::GroupTesting;

    /** Worker threads for per-class extraction (group-testing path
     * only): 1 = serial, 0 = one per hardware thread. The built pool
     * is byte-identical regardless of the worker count. */
    unsigned threads = 1;
};

/** Stable CLI/report name of a pool-build algorithm. */
inline const char *
poolBuildAlgorithmName(PoolBuildAlgorithm algorithm)
{
    return algorithm == PoolBuildAlgorithm::SingleElimination
               ? "single-elimination"
               : "group-testing";
}

/** Parse a pool-build algorithm name ("single[-elimination]" or
 * "group[-testing]"). @return false on an unknown name. */
inline bool
parsePoolBuildAlgorithm(const char *text, PoolBuildAlgorithm &out)
{
    if (!std::strcmp(text, "single-elimination") ||
        !std::strcmp(text, "single")) {
        out = PoolBuildAlgorithm::SingleElimination;
        return true;
    }
    if (!std::strcmp(text, "group-testing") ||
        !std::strcmp(text, "group")) {
        out = PoolBuildAlgorithm::GroupTesting;
        return true;
    }
    return false;
}

/** PThammer configuration. */
struct AttackConfig
{
    /** Use 2 MiB superpages for the LLC eviction buffer (Section IV:
     * makes pool preparation dramatically faster). */
    bool superpages = false;

    /** Bytes of Level-1 page tables to spray (paper: 2 GiB of 8 GiB). */
    std::uint64_t sprayBytes = 2ull * 1024 * 1024 * 1024;

    /** Distinct user frames the spray maps over and over. */
    unsigned userSharedFrames = 4;

    /** Algorithm 1 profiling repetitions. */
    unsigned tlbProfileCount = 64;

    /** TLB pool over-provisioning factor (paper: eight times). */
    unsigned tlbPoolFactor = 8;

    /** Algorithm 2 profiling repetitions (paper-scale accounting). */
    unsigned llcSelectCount = 32000;

    /** Algorithm 2 repetitions actually simulated in detail; the
     * remaining (llcSelectCount - this) are charged analytically. */
    unsigned llcSelectDetailedCount = 64;

    /** Superpage pool build: classes run in detail (0 = all 2048). */
    unsigned superpageSampleClasses = 96;

    /** Regular pool build: classes / groups-per-class run in detail. */
    unsigned regularSampleClasses = 1;
    unsigned regularSampleGroups = 4;

    /** 'evicts' test repetitions during pool construction. */
    unsigned llcBuildRepeats = 6;

    /** Pool-construction algorithm and extraction worker count. */
    PoolBuildOptions poolBuild;

    /** Extra lines beyond LLC associativity in a working set
     * (paper: one larger). */
    unsigned llcSetSizeMargin = 1;

    /** Extra pages beyond the discovered minimal TLB set size. */
    unsigned tlbSetSizeMargin = 0;

    /** Double-sided hammer iterations per attempt (paper-scale). */
    std::uint64_t hammerIterations = 1'000'000;

    /** Iterations simulated in full micro-architectural detail before
     * the analytic extrapolation takes over. */
    unsigned hammerWarmupIterations = 48;

    /** Bank-conflict verification probes per candidate pair. */
    unsigned bankProbeCount = 24;

    /** Give up after this many hammering attempts. */
    unsigned maxAttempts = 3000;

    /** Simulated-time budget for the hammering phase (seconds). */
    double hammerBudgetSeconds = 7200;

    /** Measurement noise: probability / magnitude of a latency spike
     * (interrupts etc.), the source of Algorithm 2's false positives. */
    double timingNoiseProbability = 0.015;
    Cycles timingNoiseCycles = 400;

    /** Per-sprayed-page cycles charged for a bit-flip content scan. */
    Cycles checkCyclesPerPage = 42;

    /** CATT counter-measure: fraction of the kernel zone the attacker
     * exhausts before spraying so L1PTs land near the user boundary
     * (Cheng et al.'s technique, Section IV-G1). */
    double exhaustKernelFraction = 0.0;

    /** Processes to spawn for the CTA cred-spray (Section IV-G3). */
    unsigned credSprayProcesses = 0;

    /** Multi-hart runs: harts reserved for co-tenant (noisy-neighbor)
     * victim traffic instead of hammering. Clamped so at least one
     * hart always hammers. */
    unsigned victimHarts = 0;

    /** Pages in each victim hart's private working set. */
    unsigned victimTrafficPages = 64;

    /** Victim loads issued per interleaver slot. */
    unsigned victimAccessesPerSlot = 8;

    std::uint64_t seed = 0xa77acc;

    /** Attacker virtual address-space layout. */
    VirtAddr userDataBase = 0x7f00'0000'0000ull;
    VirtAddr sprayBase = 0x0100'0000'0000ull;
    VirtAddr tlbPoolBase = 0x0200'0000'0000ull;
    VirtAddr llcBufferBase = 0x0300'0000'0000ull;
    VirtAddr scratchBase = 0x0400'0000'0000ull;
};

} // namespace pth

#endif // PTH_ATTACK_ATTACK_CONFIG_HH
