#include "attack/eviction_selection.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "cpu/machine.hh"
#include "paging/pte.hh"

namespace pth
{

EvictionSetSelector::EvictionSetSelector(Machine &machine,
                                         const AttackConfig &config,
                                         LlcEvictionPool &pool_,
                                         TlbEvictionTool &tlbTool_)
    : m(machine), cfg(config), pool(pool_), tlbTool(tlbTool_),
      probe(machine.cpu(), machine.config(), config)
{
}

std::uint64_t
EvictionSetSelector::l1pteLineOffset(VirtAddr va)
{
    // The L1PTE of va sits at byte pteIndex(va) * 8 of its page-table
    // page; its cache-line index within the page is bits 6-11.
    return (pteIndex(va, PtLevel::Pte) * kPteBytes) >> kLineShift;
}

double
EvictionSetSelector::profileSet(const EvictionSet &set, VirtAddr target)
{
    unsigned detailed = std::min(cfg.llcSelectDetailedCount,
                                 cfg.llcSelectCount);
    std::vector<VirtAddr> lines = set.firstLines(pool.workingSetSize());
    std::vector<double> latencies;
    latencies.reserve(detailed);

    Cycles detailedStart = m.clock().now();
    for (unsigned i = 0; i < detailed; ++i) {
        // Access every memory line of the eviction set...
        m.cpu().accessBatch(lines);
        // ...flush the target's TLB entry so the next access walks...
        tlbTool.evictNow(target, tlbTool.workingSetSize());
        // ...and time the target access.
        latencies.push_back(
            static_cast<double>(probe.timeAccess(target)));
    }
    // The paper profiles with a large repeat count; we simulate a
    // detailed prefix and charge the rest analytically.
    if (cfg.llcSelectCount > detailed && detailed > 0) {
        Cycles detailedCost = m.clock().now() - detailedStart;
        m.clock().advance(detailedCost *
                          (cfg.llcSelectCount - detailed) / detailed);
    }
    return median(latencies);
}

SetSelection
EvictionSetSelector::select(VirtAddr target)
{
    pth_assert((target & (kPageBytes - 1)) == 0, "target not page-aligned");
    pth_assert((target & (kSuperPageBytes - 1)) != 0,
               "target must not be superpage-aligned");

    SetSelection result;
    Cycles start = m.clock().now();

    std::uint64_t wantOffset = l1pteLineOffset(target);
    // The target line's own offset is 0 (page-aligned) and wantOffset
    // of a non-superpage-aligned target is nonzero, so the selected
    // set can never evict the target's own data line.
    auto candidates = pool.candidatesForLineOffset(wantOffset);
    pth_assert(!candidates.empty(), "pool has no candidate sets");

    for (const EvictionSet *candidate : candidates) {
        double medianLatency = profileSet(*candidate, target);
        if (medianLatency > result.maxMedianLatency) {
            result.maxMedianLatency = medianLatency;
            result.set = candidate;
        }
    }
    result.elapsed = m.clock().now() - start;
    return result;
}

} // namespace pth
