/**
 * @file
 * Explicit clflush-based double-sided hammering — the published
 * rowhammer-test-style tool the paper uses in Section IV-E to find the
 * maximum per-iteration cost that still flips bits (Figure 5). NOP
 * padding stretches each iteration, exactly as the paper does.
 */

#ifndef PTH_ATTACK_EXPLICIT_HAMMER_HH
#define PTH_ATTACK_EXPLICIT_HAMMER_HH

#include <cstdint>
#include <optional>
#include <utility>

#include "attack/attack_config.hh"
#include "common/types.hh"

namespace pth
{

class Machine;

/** Outcome of a padded explicit hammering campaign. */
struct ExplicitHammerResult
{
    bool flipped = false;
    double secondsToFirstFlip = 0;     //!< simulated seconds
    double meanCyclesPerIteration = 0;
    std::uint64_t pairsHammered = 0;
};

/** The baseline tool. */
class ExplicitHammer
{
  public:
    ExplicitHammer(Machine &machine, const AttackConfig &config);

    /**
     * Allocate the tool's buffer (call once).
     * @param bytes Buffer size (default 64 MiB).
     */
    void setup(std::uint64_t bytes = 64ull * 1024 * 1024);

    /**
     * Hammer random double-sided pairs with nopPadding NOPs per
     * iteration until a bit flips or the simulated budget expires.
     */
    ExplicitHammerResult run(unsigned nopPadding, double budgetSeconds);

    /** Detailed cost of one iteration at the given padding. */
    double measureIterationCycles(unsigned nopPadding);

    /**
     * Single-sided variant (Seaborn et al., Section II-A): hammer one
     * aggressor per victim side only. Needs roughly twice the per-row
     * activation rate to flip the same cells, so it stops flipping at
     * about half the double-sided NOP budget — a property test pins
     * this ordering.
     */
    ExplicitHammerResult runSingleSided(unsigned nopPadding,
                                        double budgetSeconds);

  private:
    /** Pick a double-sided pair of buffer addresses (same bank, rows
     * two apart), as the tool does with physical-address hints. */
    std::optional<std::pair<VirtAddr, VirtAddr>> pickPair(
        std::uint64_t salt) const;

    /** One clflush + access + NOP iteration. */
    Cycles iteration(VirtAddr a1, VirtAddr a2, unsigned nopPadding);

    Machine &m;
    const AttackConfig &cfg;
    VirtAddr bufferBase = 0;
    std::uint64_t bufferBytes = 0;
};

} // namespace pth

#endif // PTH_ATTACK_EXPLICIT_HAMMER_HH
