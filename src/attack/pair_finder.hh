/**
 * @file
 * Double-sided pair selection (Section IV-D).
 *
 * Step 1: pick virtual addresses 2 * RowsSize * 512 bytes apart
 * (256 MiB with 256 KiB row stride); thanks to the buddy allocator's
 * consecutive page-table allocation their L1PTEs are very likely one
 * victim row apart in the same bank. Step 2: verify the same-bank
 * property through the row-buffer-conflict timing side channel.
 */

#ifndef PTH_ATTACK_PAIR_FINDER_HH
#define PTH_ATTACK_PAIR_FINDER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "attack/attack_config.hh"
#include "attack/eviction_selection.hh"
#include "attack/spray.hh"
#include "attack/timing.hh"
#include "attack/tlb_eviction.hh"
#include "common/types.hh"

namespace pth
{

class Machine;

/** A fully-provisioned double-sided hammer pair. */
struct HammerPair
{
    VirtAddr va1 = 0;
    VirtAddr va2 = 0;
    std::vector<VirtAddr> tlbSet1;   //!< TLB eviction set for va1
    std::vector<VirtAddr> tlbSet2;
    std::vector<VirtAddr> llcSet1;   //!< LLC eviction set for va1's L1PTE
    std::vector<VirtAddr> llcSet2;
    Cycles tlbSelectCycles = 0;      //!< ~1 us per the paper
    Cycles llcSelectCycles = 0;      //!< ~285 ms per the paper
    Cycles verifyCycles = 0;         //!< bank-conflict verification
};

/** The pair-finding pipeline. */
class PairFinder
{
  public:
    PairFinder(Machine &machine, const AttackConfig &config,
               SprayManager &sprayer, TlbEvictionTool &tlbTool,
               EvictionSetSelector &selector);

    /**
     * Produce the next timing-verified pair. Candidates failing the
     * bank-conflict test are discarded (their cost is still charged).
     */
    std::optional<HammerPair> next();

    /** Candidate pairs examined so far. */
    std::uint64_t candidatesTried() const { return tried; }

    /** Pairs that passed the timing verification. */
    std::uint64_t accepted() const { return acceptedCount; }

    /** The raw same-bank timing test, exposed for the IV-D bench. */
    bool verifySameBank(const HammerPair &pair);

    /** Build (without verifying) the pair for given addresses. */
    std::optional<HammerPair> provision(VirtAddr va1, VirtAddr va2);

    /** The virtual-address stride between pair members. */
    std::uint64_t pairStride() const;

  private:
    Machine &m;
    const AttackConfig &cfg;
    SprayManager &sprayer;
    TlbEvictionTool &tlbTool;
    EvictionSetSelector &selector;
    LatencyProbe probe;
    std::uint64_t tried = 0;
    std::uint64_t acceptedCount = 0;
    std::uint64_t salt = 0;
};

} // namespace pth

#endif // PTH_ATTACK_PAIR_FINDER_HH
