#include "attack/explicit_hammer.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "cpu/machine.hh"

namespace pth
{

ExplicitHammer::ExplicitHammer(Machine &machine, const AttackConfig &config)
    : m(machine), cfg(config)
{
}

void
ExplicitHammer::setup(std::uint64_t bytes)
{
    bufferBase = cfg.scratchBase;
    bufferBytes = bytes;
    m.kernel().mmapAnon(m.cpu().process(), bufferBase, bytes);
}

std::optional<std::pair<VirtAddr, VirtAddr>>
ExplicitHammer::pickPair(std::uint64_t salt) const
{
    // The published tool knows physical addresses (pagemap); emulate
    // by picking a random buffer page and the page two row-indices
    // later, then checking they really share a bank.
    Rng rng(cfg.seed ^ mix64(salt));
    std::uint64_t stride = 2 * m.config().dramGeometry.rowIndexStride();
    if (bufferBytes <= stride)
        return std::nullopt;
    auto pt = m.cpu().process().pageTables();

    for (unsigned attempt = 0; attempt < 64; ++attempt) {
        VirtAddr a1 = bufferBase +
                      (rng.below((bufferBytes - stride) / kPageBytes)
                       << kPageShift);
        VirtAddr a2 = a1 + stride;
        auto t1 = pt->translate(a1);
        auto t2 = pt->translate(a2);
        if (!t1 || !t2)
            continue;
        DramLocation l1 =
            m.dram().mapping().decompose(t1->frame << kPageShift);
        DramLocation l2 =
            m.dram().mapping().decompose(t2->frame << kPageShift);
        if (l1.bank == l2.bank && (l1.row + 2 == l2.row))
            return std::make_pair(a1, a2);
    }
    return std::nullopt;
}

Cycles
ExplicitHammer::iteration(VirtAddr a1, VirtAddr a2, unsigned nopPadding)
{
    Cycles start = m.clock().now();
    m.cpu().clflush(a1);
    m.cpu().clflush(a2);
    m.cpu().accessBatch({a1, a2});
    if (nopPadding)
        m.cpu().nops(nopPadding);
    return m.clock().now() - start;
}

double
ExplicitHammer::measureIterationCycles(unsigned nopPadding)
{
    auto pair = pickPair(0x715);
    pth_assert(pair.has_value(), "no hammerable pair in buffer");
    Cycles total = 0;
    const unsigned reps = 32;
    for (unsigned i = 0; i < reps; ++i)
        total += iteration(pair->first, pair->second, nopPadding);
    return static_cast<double>(total) / reps;
}

ExplicitHammerResult
ExplicitHammer::runSingleSided(unsigned nopPadding, double budgetSeconds)
{
    pth_assert(bufferBytes > 0, "setup() has not run");
    ExplicitHammerResult result;
    Cycles budget = m.config().cycles(budgetSeconds);
    Cycles start = m.clock().now();
    Cycles window = m.config().disturbance.refreshWindowCycles;
    const std::uint64_t windowsPerPair = 8;
    std::uint64_t salt = 0x55;

    while (m.clock().now() - start < budget) {
        auto pair = pickPair(salt++);
        if (!pair)
            continue;
        ++result.pairsHammered;

        // Hammer only the first aggressor; alternate with a far-away
        // row in the same bank to defeat the row buffer.
        VirtAddr flushPartner = pair->second + 8 *
                                m.config().dramGeometry.rowIndexStride();
        Cycles warmupTotal = 0;
        const unsigned warmup = 16;
        for (unsigned i = 0; i < warmup; ++i)
            warmupTotal += iteration(pair->first, flushPartner,
                                     nopPadding);
        double perIter = static_cast<double>(warmupTotal) / warmup;
        result.meanCyclesPerIteration = perIter;

        auto pt = m.cpu().process().pageTables();
        auto t1 = pt->translate(pair->first);
        DramLocation l1 =
            m.dram().mapping().decompose(t1->frame << kPageShift);
        std::uint64_t actsPerWindow = static_cast<std::uint64_t>(
            static_cast<double>(window) / perIter);
        std::uint64_t flipsBefore = m.dram().totalFlips();
        m.dram().hammerBulk(l1.bank, {l1.row}, actsPerWindow,
                            windowsPerPair);
        m.clock().advance(window * windowsPerPair);
        m.clock().advance(bufferBytes / kLineBytes * 4);

        if (m.dram().totalFlips() > flipsBefore) {
            result.flipped = true;
            result.secondsToFirstFlip =
                m.config().seconds(m.clock().now() - start);
            return result;
        }
    }
    result.secondsToFirstFlip =
        m.config().seconds(m.clock().now() - start);
    return result;
}

ExplicitHammerResult
ExplicitHammer::run(unsigned nopPadding, double budgetSeconds)
{
    pth_assert(bufferBytes > 0, "setup() has not run");
    ExplicitHammerResult result;
    Cycles budget = m.config().cycles(budgetSeconds);
    Cycles start = m.clock().now();
    Cycles window = m.config().disturbance.refreshWindowCycles;

    // Like the published tool: hammer one address set for a while,
    // check for flips, move on.
    const std::uint64_t windowsPerPair = 8;
    std::uint64_t salt = 0;

    while (m.clock().now() - start < budget) {
        auto pair = pickPair(salt++);
        if (!pair)
            continue;
        ++result.pairsHammered;

        // Detailed warmup for the per-iteration cost.
        Cycles warmupTotal = 0;
        const unsigned warmup = 16;
        for (unsigned i = 0; i < warmup; ++i)
            warmupTotal += iteration(pair->first, pair->second,
                                     nopPadding);
        double perIter = static_cast<double>(warmupTotal) / warmup;
        result.meanCyclesPerIteration = perIter;

        // Bulk-apply the rest of this pair's budget.
        auto pt = m.cpu().process().pageTables();
        auto t1 = pt->translate(pair->first);
        auto t2 = pt->translate(pair->second);
        DramLocation l1 =
            m.dram().mapping().decompose(t1->frame << kPageShift);
        DramLocation l2 =
            m.dram().mapping().decompose(t2->frame << kPageShift);
        std::uint64_t actsPerWindow = static_cast<std::uint64_t>(
            static_cast<double>(window) / perIter);
        std::uint64_t flipsBefore = m.dram().totalFlips();
        m.dram().hammerBulk(l1.bank, {l1.row, l2.row}, actsPerWindow,
                            windowsPerPair);
        m.clock().advance(window * windowsPerPair);

        // The tool scans its buffer for changes after each set.
        m.clock().advance(bufferBytes / kLineBytes * 4);

        if (m.dram().totalFlips() > flipsBefore) {
            result.flipped = true;
            result.secondsToFirstFlip =
                m.config().seconds(m.clock().now() - start);
            return result;
        }
    }
    result.secondsToFirstFlip =
        m.config().seconds(m.clock().now() - start);
    return result;
}

} // namespace pth
